// Trace recording for simulated executions.
//
// Tests use traces to assert message-level facts (e.g. the Figure 4 /
// Lemma 5 happened-before structure); benches use the aggregate
// counters. Every payload-bearing event records (size, hash) metadata;
// the payload itself is *shared* with the in-flight frame rather than
// copied — the trace holds a reference, never a duplicate body.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "sim/types.hpp"

namespace sbft {

enum class TraceKind : std::uint8_t {
  kSend,              // src queued a frame to dst
  kDeliver,           // dst's automaton consumed a frame from src
  kDrop,              // frame discarded (stopped node, dropped by fault)
  kTimerFired,
  kNodeCorrupted,     // transient fault overwrote a node's local state
  kChannelCorrupted,  // garbage frames planted in a channel
  kNodeStopped,       // client crash
};

struct TraceEvent {
  VirtualTime time = 0;
  TraceKind kind = TraceKind::kSend;
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  // Frame metadata for kSend / kDeliver / kDrop (zero/empty otherwise).
  // The hash is FNV-1a of the payload — enough to correlate a send with
  // its delivery without holding bytes at all.
  std::uint32_t frame_size = 0;
  std::uint64_t frame_hash = 0;
  // The payload, shared with the frame that was in flight (never a
  // copy). A recorded frame's storage is pinned by this reference, so
  // it is exempt from pool recycling.
  std::shared_ptr<const Bytes> payload;

  TraceEvent() = default;
  TraceEvent(VirtualTime t, TraceKind k, NodeId s, NodeId d)
      : time(t), kind(k), src(s), dst(d) {}

  void SetPayload(std::shared_ptr<const Bytes> bytes) {
    payload = std::move(bytes);
    if (payload) {
      frame_size = static_cast<std::uint32_t>(payload->size());
      frame_hash = Fnv1a(*payload);
    }
  }

  /// The recorded payload (empty view if the event carried none).
  [[nodiscard]] BytesView frame() const {
    return payload ? BytesView(*payload) : BytesView();
  }
};

class TraceRecorder {
 public:
  /// Recording is off by default; benches leave it off, tests opt in.
  void Enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void Record(TraceEvent event) {
    if (enabled_) events_.push_back(std::move(event));
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void Clear() { events_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

/// Optional hook turning a raw frame payload into a protocol-level tag
/// (e.g. a message type name). The sim layer knows nothing about wire
/// formats, so callers wanting decoded traces inject the describer —
/// the fuzz replayer passes one built on net's MessageTypeName.
using PayloadDescriber = std::function<std::string(BytesView)>;

/// One event as a single human-readable line (no trailing newline).
[[nodiscard]] std::string FormatTraceEvent(
    const TraceEvent& event, const PayloadDescriber& describe = {});

/// The whole trace, one line per event — the export format sbft_fuzz
/// --replay --trace emits for schedule triage.
[[nodiscard]] std::string FormatTrace(
    const std::vector<TraceEvent>& events,
    const PayloadDescriber& describe = {});

/// Aggregate counters, always maintained (cheap), reported by benches.
struct NetworkStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t garbage_frames_injected = 0;
};

}  // namespace sbft
