// E3: message and latency complexity versus system size. For n in
// {6, 11, 16, 21, 26, 31} (f = (n-1)/5), measures frames per operation
// and simulated round-trip latency for writes and reads. Prediction:
// Theta(n) frames per op (write ~6n: flush + get_ts + write, each a
// round trip to all servers; read ~5n) and constant round counts.
#include "bench_json.hpp"
#include "bench_util.hpp"
#include "core/deployment.hpp"

using namespace sbft;
using namespace sbft::bench;

int main(int argc, char** argv) {
  JsonReport report("complexity", ParseBenchArgs(argc, argv));
  Header("E3", "message complexity and latency vs n (delay U[1,10], "
               "20 ops each, all-correct servers)");
  Row("%-4s %-4s | %-12s %-12s | %-12s %-12s | %-10s %-10s", "n", "f",
      "write frames", "frames/n", "read frames", "frames/n", "write ticks",
      "read ticks");

  for (std::uint32_t n : {6u, 11u, 16u, 21u, 26u, 31u}) {
    Deployment::Options options;
    options.config = ProtocolConfig::ForServers(n);
    options.seed = n;
    Deployment deployment(std::move(options));

    std::vector<double> write_frames, read_frames, write_ticks, read_ticks;
    for (int i = 0; i < 20; ++i) {
      auto write = deployment.Write(0, Value{static_cast<std::uint8_t>(i)});
      if (write.completed) {
        write_frames.push_back(static_cast<double>(write.frames_sent));
        write_ticks.push_back(
            static_cast<double>(write.returned_at - write.invoked_at));
      }
      auto read = deployment.Read(0);
      if (read.completed) {
        read_frames.push_back(static_cast<double>(read.frames_sent));
        read_ticks.push_back(
            static_cast<double>(read.returned_at - read.invoked_at));
      }
    }
    const double wf = Mean(write_frames);
    const double rf = Mean(read_frames);
    Row("%-4u %-4u | %-12.1f %-12.2f | %-12.1f %-12.2f | %-10.1f %-10.1f",
        n, deployment.config().f, wf, wf / n, rf, rf / n, Mean(write_ticks),
        Mean(read_ticks));
    const std::string key = "n" + std::to_string(n);
    report.Metric(key + ".write_frames_per_n", wf / n, "frames");
    report.Metric(key + ".read_frames_per_n", rf / n, "frames");
    report.Metric(key + ".write_ticks", Mean(write_ticks), "ticks");
    report.Metric(key + ".read_ticks", Mean(read_ticks), "ticks");
  }
  Row("%s", "\nexpected shape: frames/op grow linearly in n (constant "
            "frames/n per op type); latency stays ~constant (fixed number "
            "of message rounds, independent of n).");
  return report.Flush() ? 0 : 1;
}
