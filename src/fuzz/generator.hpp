// Random scenario generation: swarm-style composition of topology,
// asynchrony, Byzantine mixes and transient faults.
//
// The generator is deliberately biased rather than uniform: plain
// uniform sampling almost never produces the schedule shapes the
// proofs reason about (a write quorum that excludes specific correct
// servers while a reader still hears them). Each draw independently
// switches a handful of *ingredients* on or off — stale-replay
// Byzantine servers, directed channel slowdowns between one writer and
// one server, fault bursts, hostile clients — so interesting
// combinations appear every few dozen runs instead of once per epoch.
#pragma once

#include "common/rng.hpp"
#include "fuzz/scenario.hpp"

namespace sbft::fuzz {

struct GeneratorOptions {
  /// Permit n = 5f topologies (Theorem 1's impossible setting). Off by
  /// default: sub-resilient runs are expected to violate eventually and
  /// would drown the signal of a genuine bug at n > 5f.
  bool allow_sub_resilience = false;
  /// Cap on f (n grows as 5f+extra; big topologies are slow).
  std::uint32_t max_f = 2;
  /// Byzantine client strategies to draw from. Forged writers are
  /// excluded: a Byzantine *writer* is outside the paper's model, so
  /// histories it pollutes have no specification to check against.
  bool enable_byzantine_clients = true;
};

/// Draw one scenario. Consumes `rng`; the scenario embeds its own seed
/// (also drawn from `rng`), so the draw sequence and the execution
/// randomness are decoupled.
[[nodiscard]] Scenario GenerateScenario(Rng& rng,
                                        const GeneratorOptions& options);

}  // namespace sbft::fuzz
