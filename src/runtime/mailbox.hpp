// Blocking MPSC mailbox used by the threaded runtime. Producers are any
// threads (peers' node threads, TCP reader threads, external drivers);
// the consumer is the owning node thread.
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/frame.hpp"
#include "common/thread_annotations.hpp"
#include "sim/types.hpp"

namespace sbft {

/// A frame from a peer, or a task to run on the node thread (used to
/// inject client operations with single-threaded automaton semantics).
/// Frames move through the mailbox — a broadcast pushes one shared
/// payload to every destination without copying bodies.
struct MailItem {
  NodeId src = kNoNode;
  Frame frame;
  std::function<void()> task;  // non-null => task item
};

class Mailbox {
 public:
  /// Returns false if the mailbox is closed.
  bool Push(MailItem item) {
    {
      MutexLock lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.NotifyOne();
    return true;
  }

  /// Push a whole burst (e.g. every frame decoded from one recv) under
  /// a single lock acquisition. Returns false if the mailbox is closed;
  /// the batch is then dropped, matching Push-after-Close semantics.
  bool PushBatch(std::vector<MailItem>&& batch) {
    if (batch.empty()) return true;
    {
      MutexLock lock(mutex_);
      if (closed_) return false;
      for (auto& item : batch) items_.push_back(std::move(item));
    }
    batch.clear();
    ready_.NotifyOne();
    return true;
  }

  /// Blocks until an item arrives or the mailbox is closed and drained.
  std::optional<MailItem> Pop() {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) ready_.Wait(mutex_);
    if (items_.empty()) return std::nullopt;  // closed and drained
    MailItem item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocks until at least one item is available, then swaps the whole
  /// queue into `out` — one lock per drain, however many items arrived.
  /// `out` is cleared first. Returns false only when the mailbox is
  /// closed AND drained (runtime shutdown).
  bool Drain(std::deque<MailItem>& out) {
    out.clear();
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) ready_.Wait(mutex_);
    if (items_.empty()) return false;  // closed and drained
    out.swap(items_);
    return true;
  }

  /// Drain with a deadline: blocks until an item arrives, the mailbox
  /// closes, or `deadline` passes — a timeout returns true with `out`
  /// empty so the node loop can fire due timers and re-enter. Returns
  /// false only when the mailbox is closed AND drained.
  bool DrainUntil(std::deque<MailItem>& out,
                  std::chrono::steady_clock::time_point deadline) {
    out.clear();
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return true;
      ready_.WaitFor(mutex_, deadline - now);
    }
    if (items_.empty()) return false;  // closed and drained
    out.swap(items_);
    return true;
  }

  void Close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    ready_.NotifyAll();
  }

  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  /// Leaf-ish lock: pushes happen with the load driver's run-state
  /// mutex held (StartOp under RunState::mutex reaches Push), and
  /// nothing is acquired while this mutex is held.
  mutable Mutex mutex_ ACQUIRED_AFTER(lock_order::kLoadDriver);
  CondVar ready_;
  std::deque<MailItem> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace sbft
