#include "baselines/naive_quorum.hpp"

#include <algorithm>

namespace sbft {

void NqServer::OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<NqGetTsMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(NqTsReplyMsg{m->rid, ts_})));
  } else if (const auto* m = std::get_if<NqWriteMsg>(&message)) {
    // One-shot adopt-if-newer, as in the Theorem 1 protocol class.
    Timestamp incoming{labels_.Sanitize(m->ts.label), m->ts.writer_id};
    if (Precedes(ts_, incoming, labels_.params())) {
      ts_ = incoming;
      value_ = ToBytes(m->value);  // copy the frame-borrowed view into state
    }
    endpoint.Send(from, EncodeMessage(Message(NqWriteAckMsg{m->rid})));
  } else if (const auto* m = std::get_if<NqReadMsg>(&message)) {
    endpoint.Send(from,
                  EncodeMessage(Message(NqReadReplyMsg{m->rid, ts_, value_})));
  }
}

void NqServer::CorruptState(Rng& rng) {
  ts_ = Timestamp{RandomValidLabel(rng, labels_.params()),
                  static_cast<ClientId>(rng.NextBelow(8))};
  value_ = RandomBytes(rng, 1 + rng.NextBelow(8));
}

void NqScriptedServer::OnFrame(NodeId from, BytesView frame,
                               IEndpoint& endpoint) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<NqGetTsMsg>(&message)) {
    endpoint.Send(from,
                  EncodeMessage(Message(NqTsReplyMsg{m->rid, ts_for_get_ts})));
  } else if (const auto* m = std::get_if<NqWriteMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(NqWriteAckMsg{m->rid})));
  } else if (const auto* m = std::get_if<NqReadMsg>(&message)) {
    if (read_script.empty()) return;  // silent when out of script
    auto [ts, value] = read_script.front();
    if (read_script.size() > 1) read_script.pop_front();
    endpoint.Send(from,
                  EncodeMessage(Message(NqReadReplyMsg{m->rid, ts, value})));
  }
}

NqClient::NqClient(std::vector<NodeId> servers, std::uint32_t f,
                   std::uint32_t k, std::uint32_t client_id)
    : servers_(std::move(servers)),
      f_(f),
      labels_(k),
      client_id_(client_id) {
  last_write_ts_ = Timestamp{labels_.Initial(), client_id_};
}

void NqClient::OnStart(IEndpoint& endpoint) { endpoint_ = &endpoint; }

std::optional<std::size_t> NqClient::ServerIndex(NodeId node) const {
  auto it = std::find(servers_.begin(), servers_.end(), node);
  if (it == servers_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - servers_.begin());
}

void NqClient::StartWrite(Value value, std::function<void(bool)> callback) {
  SBFT_ASSERT(endpoint_ != nullptr && idle());
  write_value_ = std::move(value);
  write_callback_ = std::move(callback);
  collected_ts_.clear();
  phase_ = Phase::kGetTs;
  ++rid_;
  endpoint_->Broadcast(servers_, EncodeMessage(Message(NqGetTsMsg{rid_})));
}

void NqClient::StartRead(std::function<void(const NqReadOutcome&)> callback) {
  SBFT_ASSERT(endpoint_ != nullptr && idle());
  read_callback_ = std::move(callback);
  read_replies_.clear();
  phase_ = Phase::kRead;
  ++rid_;
  endpoint_->Broadcast(servers_, EncodeMessage(Message(NqReadMsg{rid_})));
}

void NqClient::OnFrame(NodeId from, BytesView frame, IEndpoint&) {
  const auto index = ServerIndex(from);
  if (!index) return;
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<NqTsReplyMsg>(&message)) {
    if (phase_ != Phase::kGetTs || m->rid != rid_) return;
    collected_ts_.emplace(*index,
                          Timestamp{labels_.Sanitize(m->ts.label),
                                    m->ts.writer_id});
    if (collected_ts_.size() < Quorum()) return;
    std::vector<Label> inputs;
    for (const auto& [idx, ts] : collected_ts_) inputs.push_back(ts.label);
    last_write_ts_ = Timestamp{labels_.Next(inputs), client_id_};
    phase_ = Phase::kWrite;
    write_replies_.clear();
    endpoint_->Broadcast(
        servers_, EncodeMessage(Message(NqWriteMsg{rid_, last_write_ts_,
                                                   write_value_})));
  } else if (const auto* m = std::get_if<NqWriteAckMsg>(&message)) {
    if (phase_ != Phase::kWrite || m->rid != rid_) return;
    write_replies_.emplace(*index, true);
    if (write_replies_.size() >= Quorum()) {
      phase_ = Phase::kIdle;
      if (write_callback_) {
        auto callback = std::move(write_callback_);
        write_callback_ = nullptr;
        callback(true);
      }
    }
  } else if (const auto* m = std::get_if<NqReadReplyMsg>(&message)) {
    if (phase_ != Phase::kRead || m->rid != rid_) return;
    read_replies_.emplace(
        *index, std::make_pair(Timestamp{labels_.Sanitize(m->ts.label),
                                         m->ts.writer_id},
                               ToBytes(m->value)));
    if (read_replies_.size() >= Quorum()) DecideRead();
  }
}

void NqClient::DecideRead() {
  // The TM_1R decision: a deterministic function of the timestamp
  // multiset — plurality vote, ties broken by canonical representation
  // order. (Theorem 1 shows *no* such function can be correct with
  // n <= 5f; this one is as good as any.)
  std::map<std::size_t, std::size_t> count_by_index;
  NqReadOutcome outcome;
  std::size_t best_count = 0;
  std::optional<Timestamp> best_ts;
  for (const auto& [idx, reply] : read_replies_) {
    std::size_t count = 0;
    for (const auto& [idx2, reply2] : read_replies_) {
      if (reply2.first == reply.first) ++count;
    }
    const bool better =
        count > best_count ||
        (count == best_count &&
         (!best_ts || best_ts->CompareRepr(reply.first) < 0));
    if (better) {
      best_count = count;
      best_ts = reply.first;
      outcome.value = reply.second;
      outcome.ts = reply.first;
    }
  }
  outcome.ok = best_ts.has_value();
  phase_ = Phase::kIdle;
  if (read_callback_) {
    auto callback = std::move(read_callback_);
    read_callback_ = nullptr;
    callback(outcome);
  }
}

}  // namespace sbft
