// E8: recovery micro-dynamics of the bounded-label machinery.
//   E8a — find_read_label convergence: operations needed to regain a
//         usable label after the client's label state is corrupted.
//   E8b — stabilizing data-link: channel rounds until the delivered
//         stream converges, vs channel capacity and preloaded garbage.
//   E8c — ablation of the epoch-extended operation labels: stale reads
//         per 1000 operations with the paper-pure label matching vs the
//         hardened one, under an adversarial mix (gap #1 in DESIGN.md).
#include <string>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "net/datalink.hpp"
#include "net/lossy_channel.hpp"
#include "spec/regular_checker.hpp"
#include "spec/workload.hpp"

using namespace sbft;
using namespace sbft::bench;

namespace {

void FindLabelRecovery(JsonReport& report) {
  Header("E8a", "operations to recover after client label-state corruption "
                "(n=6, mean over 50 corruptions)");
  Row("%-14s %-22s %-18s", "label pool", "first op ok (frac)",
      "mean extra ticks vs clean");
  const int runs = report.smoke() ? 10 : 50;
  for (std::uint32_t pool : {2u, 4u, 8u}) {
    int first_ok = 0;
    std::vector<double> clean_ticks, corrupt_ticks;
    for (int run = 0; run < runs; ++run) {
      Deployment::Options options;
      options.config = ProtocolConfig::ForServers(6);
      options.config.read_label_count = pool;
      options.config.write_label_count = pool;
      options.seed = 500 + static_cast<std::uint64_t>(run);
      Deployment deployment(std::move(options));
      (void)deployment.Write(0, Value{1});
      auto clean = deployment.Read(0);
      clean_ticks.push_back(
          static_cast<double>(clean.returned_at - clean.invoked_at));
      deployment.CorruptClient(0);
      auto read = deployment.Read(0, 500'000);
      corrupt_ticks.push_back(
          static_cast<double>(read.returned_at - read.invoked_at));
      if (read.completed && read.outcome.status == OpStatus::kOk &&
          read.outcome.value == Value{1}) {
        ++first_ok;
      }
    }
    Row("%-14u %2d/%-2d                  %+.1f", pool, first_ok, runs,
        Mean(corrupt_ticks) - Mean(clean_ticks));
    report.Metric("recovery.pool" + std::to_string(pool) + ".first_ok_frac",
                  static_cast<double>(first_ok) / runs, "runs");
  }
}

void DatalinkStabilization(JsonReport& report) {
  Header("E8b", "stabilizing data-link: rounds until the suffix converges "
                "(20 messages, 15% loss, mean over 20 seeds)");
  Row("%-10s %-10s | %-14s %-16s", "capacity", "garbage", "rounds",
      "spurious deliveries");
  for (std::size_t capacity : {1u, 2u, 4u, 8u}) {
    for (std::size_t garbage : {std::size_t{0}, capacity}) {
      std::vector<double> rounds_used, spurious;
      const std::uint64_t seeds = report.smoke() ? 5 : 20;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        LossyChannel forward({capacity, 0.15}, Rng(seed * 2 + 1));
        LossyChannel backward({capacity, 0.15}, Rng(seed * 2 + 2));
        std::vector<Bytes> delivered;
        DataLinkSender sender(capacity);
        DataLinkReceiver receiver(
            capacity, [&](Bytes m) { delivered.push_back(std::move(m)); });
        Rng corruption(seed * 7);
        if (garbage > 0) {
          sender.CorruptState(corruption);
          receiver.CorruptState(corruption);
          forward.PreloadGarbage(garbage);
          backward.PreloadGarbage(garbage);
        }
        const int kMessages = 20;
        std::vector<Bytes> sent;
        for (int i = 0; i < kMessages; ++i) {
          const std::string text = "m" + std::to_string(i);
          sent.emplace_back(text.begin(), text.end());
          sender.Submit(sent.back());
        }
        int rounds = 0;
        while (!sender.idle() && rounds < 2'000'000) {
          ++rounds;
          if (auto frame = sender.Tick()) forward.Push(std::move(*frame));
          if (auto frame = forward.Pop()) {
            if (auto ack = receiver.OnFrame(*frame)) {
              backward.Push(std::move(*ack));
            }
          }
          if (auto frame = backward.Pop()) sender.OnFrame(*frame);
        }
        rounds_used.push_back(rounds);
        // Spurious = delivered entries that are not genuine in-order
        // suffix members.
        int expect = kMessages - 1;
        std::size_t genuine = 0;
        for (auto it = delivered.rbegin(); it != delivered.rend(); ++it) {
          if (expect >= 0 && *it == sent[static_cast<std::size_t>(expect)]) {
            --expect;
            ++genuine;
          }
        }
        spurious.push_back(
            static_cast<double>(delivered.size() - genuine));
      }
      Row("%-10zu %-10zu | %-14.0f %-16.2f", capacity, garbage,
          Mean(rounds_used), Mean(spurious));
      const std::string key = "datalink.cap" + std::to_string(capacity) +
                              ".garb" + std::to_string(garbage);
      report.Metric(key + ".rounds", Mean(rounds_used), "rounds");
      report.Metric(key + ".spurious", Mean(spurious), "frames");
    }
  }
}

void EpochAblation(JsonReport& report) {
  Header("E8c", "ablation: paper-pure op-label matching vs epoch-extended "
                "(n=11, f=2 Byzantine, concurrent workload, 20 seeds)");
  Row("%-18s | %-14s %-14s", "matching", "violations", "stalled runs");
  for (bool epochs : {false, true}) {
    std::uint64_t violations = 0;
    int stalled = 0;
    const std::uint64_t seeds = report.smoke() ? 8 : 30;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      Deployment::Options options;
      options.config = ProtocolConfig::ForServers(11);
      options.config.epoch_extended_op_labels = epochs;
      // Harshest legal setting for the aliasing hazard: minimum label
      // pools (reuse every other operation) and high delay variance
      // (stale traffic lingers across reuses).
      options.config.read_label_count = 2;
      options.config.write_label_count = 2;
      options.delay = std::make_unique<UniformDelay>(1, 60);
      options.seed = 3000 + seed;
      options.n_clients = 3;
      options.byzantine[0] = ByzantineStrategy::kStaleReplay;
      options.byzantine[5] = ByzantineStrategy::kGarbage;
      Deployment deployment(std::move(options));
      // The hazard window needs a transient fault in the mix (corrupted
      // label state makes stale traffic for the reused label plentiful).
      deployment.CorruptAllCorrectServers();
      deployment.CorruptAllChannels(2);
      for (std::size_t c = 0; c < 3; ++c) deployment.CorruptClient(c);
      WorkloadOptions workload;
      workload.ops_per_client = 30;
      workload.max_think_time = 4;  // dense traffic
      workload.seed = seed * 17;
      auto result = RunConcurrentWorkload(deployment, workload);
      if (!result.all_completed) {
        ++stalled;
        continue;
      }
      CheckOptions check;
      check.stabilized_from = result.first_write_done;
      check.grandfathered_values = {Value{}};
      violations += CheckRegular(result.history, check).violations.size();
    }
    Row("%-18s | %-14llu %-14d", epochs ? "epoch-extended" : "paper-pure",
        static_cast<unsigned long long>(violations), stalled);
    const std::string key =
        std::string("ablation.") + (epochs ? "epoch" : "pure");
    report.Metric(key + ".violations", static_cast<double>(violations),
                  "violations");
    report.Metric(key + ".stalled", stalled, "runs");
  }
  Row("%s", "\nexpected shape: recovery within a single operation (E8a); "
            "data-link convergence cost grows with capacity and garbage "
            "but spurious deliveries stay bounded by ~capacity (E8b). "
            "E8c: during development the paper-pure matching DID produce "
            "stale reads, but those executions also depended on the label "
            "wrap-around weaknesses that the rotation/domain/padding fixes "
            "closed (DESIGN.md gap #3); with those in place neither arm "
            "violates at this scale. The aliasing hazard of gap #1 "
            "remains real but needs a channel stalled across an entire "
            "label-reuse cycle — the epoch extension closes it by "
            "construction and is kept as the default.");
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report("recovery", ParseBenchArgs(argc, argv));
  FindLabelRecovery(report);
  DatalinkStabilization(report);
  EpochAblation(report);
  return report.Flush() ? 0 : 1;
}
