// E9: fuzz-harness throughput — scenarios/second of the full
// generate -> run -> check loop, per topology mix. This is the number
// that sizes CI budgets: a 60-second smoke explores (60 * rate)
// schedules, and the 200-run acceptance campaign costs 200 / rate
// seconds. Also reports coverage quality (vacuous-run fraction) so a
// generator change that silently stops producing checkable suffixes
// shows up as an experiment regression, not just a quieter fuzzer.
#include <chrono>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "fuzz/campaign.hpp"

using namespace sbft;
using namespace sbft::bench;
using namespace sbft::fuzz;

int main(int argc, char** argv) {
  JsonReport report("fuzz", ParseBenchArgs(argc, argv));
  Header("E9", "fuzz campaign throughput (seeded, 150 runs per row)");
  Row("%-24s | %-10s %-12s %-10s %-10s", "generator mix", "runs/s",
      "violations", "stalled", "vacuous");

  struct Mix {
    const char* name;
    const char* key;
    GeneratorOptions options;
  } mixes[] = {
      {"safe f<=2 (default)", "safe_f2", {}},
      {"safe f<=4", "safe_f4", {.allow_sub_resilience = false, .max_f = 4}},
      {"sub-resilience f<=2", "subres_f2", {.allow_sub_resilience = true}},
  };

  for (const Mix& mix : mixes) {
    CampaignOptions options;
    options.seed = 1;
    options.runs = report.smoke() ? 30 : 150;
    options.generator = mix.options;
    options.do_shrink = false;  // measure the explore loop, not triage
    const auto start = std::chrono::steady_clock::now();
    const CampaignResult result = RunCampaign(options);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double rate =
        static_cast<double>(result.runs_executed) / elapsed.count();
    Row("%-24s | %-10.0f %-12zu %-10zu %-10zu", mix.name, rate,
        result.violations.size(), result.stalled, result.vacuous);
    report.Metric(std::string(mix.key) + ".runs_per_sec", rate, "runs/s");
    report.Metric(std::string(mix.key) + ".violations",
                  static_cast<double>(result.violations.size()), "runs");
    report.Metric(std::string(mix.key) + ".vacuous",
                  static_cast<double>(result.vacuous), "runs");
  }
  Row("%s", "\nexpected shape: hundreds of runs/s unsanitized (tens under "
            "ASan); violations only in the sub-resilience row; vacuous "
            "fraction < 10%.");
  return report.Flush() ? 0 : 1;
}
