#include "runtime/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>

#include "common/error.hpp"

namespace sbft {

Reactor::Reactor(std::size_t n_threads) {
  if (n_threads == 0) n_threads = 1;
  for (std::size_t i = 0; i < n_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    SBFT_ASSERT(loop->epoll_fd >= 0);
    loop->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    SBFT_ASSERT(loop->wake_fd >= 0);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    SBFT_ASSERT(::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd,
                            &ev) == 0);
    loops_.push_back(std::move(loop));
  }
}

Reactor::~Reactor() {
  Stop();
  for (auto& loop : loops_) {
    if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
    if (loop->wake_fd >= 0) ::close(loop->wake_fd);
  }
}

void Reactor::Start() {
  if (started_) return;
  started_ = true;
  running_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    loop->thread = std::thread([this, raw = loop.get()] { RunLoop(*raw); });
  }
}

void Reactor::Stop() {
  if (stopped_ || !started_) {
    stopped_ = true;
    return;
  }
  stopped_ = true;
  running_.store(false, std::memory_order_release);
  for (auto& loop : loops_) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(loop->wake_fd, &one, sizeof(one));
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Run commands that were posted but never dispatched (typically
  // deferred closes); the loops are gone, so inline is race-free.
  for (auto& loop : loops_) {
    std::vector<std::function<void()>> commands;
    {
      MutexLock lock(loop->mutex);
      commands.swap(loop->commands);
    }
    for (auto& command : commands) command();
  }
}

Reactor::Loop* Reactor::OwnerOf(int fd) {
  MutexLock lock(owner_mutex_);
  auto it = owner_.find(fd);
  return it == owner_.end() ? nullptr : loops_[it->second].get();
}

bool Reactor::Add(int fd, std::uint32_t events, Handler handler) {
  std::size_t index;
  {
    MutexLock lock(owner_mutex_);
    index = next_loop_++ % loops_.size();
    owner_[fd] = index;
  }
  Loop& loop = *loops_[index];
  {
    // Install the handler before the fd can fire on the loop thread.
    MutexLock lock(loop.mutex);
    loop.handlers[fd] = std::make_shared<Handler>(std::move(handler));
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    MutexLock lock(loop.mutex);
    loop.handlers.erase(fd);
    MutexLock owner_lock(owner_mutex_);
    owner_.erase(fd);
    return false;
  }
  return true;
}

bool Reactor::Modify(int fd, std::uint32_t events) {
  Loop* loop = OwnerOf(fd);
  if (loop == nullptr) return false;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void Reactor::RemoveAndClose(int fd, std::function<void()> on_closed) {
  Loop* loop = nullptr;
  {
    MutexLock lock(owner_mutex_);
    auto it = owner_.find(fd);
    if (it == owner_.end()) {
      if (on_closed) on_closed();
      return;
    }
    loop = loops_[it->second].get();
    owner_.erase(it);
  }
  Post(*loop, [loop, fd, on_closed = std::move(on_closed)] {
    {
      MutexLock lock(loop->mutex);
      loop->handlers.erase(fd);
    }
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    if (on_closed) on_closed();
  });
}

void Reactor::Post(Loop& loop, std::function<void()> fn) {
  if (!running_.load(std::memory_order_acquire)) {
    fn();  // loops joined (or never started): inline is race-free
    return;
  }
  {
    MutexLock lock(loop.mutex);
    loop.commands.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(loop.wake_fd, &one, sizeof(one));
}

void Reactor::RunLoop(Loop& loop) {
  std::array<epoll_event, 64> events;
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(loop.epoll_fd, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == loop.wake_fd) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(loop.wake_fd, &drained, sizeof(drained));
        std::vector<std::function<void()>> commands;
        {
          MutexLock lock(loop.mutex);
          commands.swap(loop.commands);
        }
        for (auto& command : commands) command();
        continue;
      }
      std::shared_ptr<Handler> handler;
      {
        MutexLock lock(loop.mutex);
        auto it = loop.handlers.find(fd);
        if (it != loop.handlers.end()) handler = it->second;
      }
      if (handler) (*handler)(events[static_cast<std::size_t>(i)].events);
    }
  }
}

}  // namespace sbft
