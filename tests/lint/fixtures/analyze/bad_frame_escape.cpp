// Fixture: borrowed frame payloads escaping their drain scope — the
// zero-copy spine's biggest footgun. The BytesView handed to OnFrame
// borrows pooled frame memory that is reused as soon as the drain
// returns; storing it into a member and capturing it in a deferred
// lambda both read recycled bytes later. Expected: exactly one check
// trips — frame-escape (two findings, both of it).

namespace sbft {

struct BytesView {
  const unsigned char* data = nullptr;
  unsigned long size = 0;
};

class Executor {
 public:
  template <class Task>
  void Post(Task task);
};

class Session {
 public:
  void OnFrame(BytesView payload) {
    last_payload_ = payload;
    executor_.Post([payload] { Decode(payload); });
  }

 private:
  static void Decode(BytesView view);

  Executor executor_;
  BytesView last_payload_;
};

}  // namespace sbft
