#include "runtime/cluster.hpp"

#include <ctime>

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "common/error.hpp"

namespace sbft {
namespace {

/// CPU time consumed by the calling thread. One syscall per call —
/// sampled once per drained batch, not per frame, so the cost
/// amortizes over the batch like everything else on this path.
std::uint64_t ThreadCpuNs() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// Node whose NodeLoop owns the current thread (kNoNode elsewhere).
/// Thread-local, so OnNodeThread needs no synchronization.
thread_local NodeId tls_node = kNoNode;

}  // namespace

// Endpoint bound to one node of the threaded cluster. Send is called
// from the node's own thread (handlers run there); it is nevertheless
// thread-safe because mailbox pushes and TCP writes are synchronized.
class ThreadCluster::Endpoint final : public IEndpoint {
 public:
  Endpoint(ThreadCluster& cluster, NodeId id, Rng rng)
      : cluster_(cluster), id_(id), rng_(rng) {}

  void Send(NodeId dst, Bytes frame) override {
    cluster_.Deliver(id_, dst, std::move(frame));
  }

  void Broadcast(std::span<const NodeId> dsts, Bytes frame) override {
    cluster_.DeliverBroadcast(id_, dsts, std::move(frame));
  }

  void SetTimer(VirtualTime delay, int timer_id) override {
    // Called only from the node's own thread (handlers, OnStart hooks
    // and posted tasks all run inside NodeLoop), so the timer list
    // needs no lock: NodeLoop reads it between batches on that same
    // thread. Delays are microseconds, matching Now().
    timers_.emplace_back(
        std::chrono::steady_clock::now() + std::chrono::microseconds(delay),
        timer_id);
  }

  /// Earliest pending timer deadline, if any. Node-thread only.
  [[nodiscard]] std::optional<std::chrono::steady_clock::time_point>
  NextTimerDeadline() const {
    if (timers_.empty()) return std::nullopt;
    auto best = timers_.front().first;
    for (const auto& [when, id] : timers_) best = std::min(best, when);
    return best;
  }

  /// Fire every due timer in arming order. Node-thread only.
  void FireDueTimers(Automaton& automaton) {
    if (timers_.empty()) return;
    const auto now = std::chrono::steady_clock::now();
    // Collect ids first: OnTimer may re-arm, appending to timers_.
    std::vector<int> due;
    std::erase_if(timers_, [&](const auto& timer) {
      if (timer.first > now) return false;
      due.push_back(timer.second);
      return true;
    });
    for (const int timer_id : due) automaton.OnTimer(timer_id, *this);
  }

  [[nodiscard]] VirtualTime Now() const override {
    using Clock = std::chrono::steady_clock;
    return static_cast<VirtualTime>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

  [[nodiscard]] NodeId self() const override { return id_; }
  Rng& rng() override { return rng_; }

 private:
  ThreadCluster& cluster_;
  NodeId id_;
  Rng rng_;
  /// Pending timers, unordered (the list stays tiny — the mux batch
  /// window arms at most one). Touched only by the owning node thread.
  std::vector<std::pair<std::chrono::steady_clock::time_point, int>> timers_;
};

ThreadCluster::ThreadCluster(Options options) : options_(options) {
  if (options_.shaping.enabled()) {
    shaper_ = std::make_unique<LinkShaper>(
        options_.shaping, [this](NodeId src, NodeId dst, Frame frame) {
          PushFrame(src, dst, std::move(frame));
        });
  }
  if (options_.use_tcp) {
    TcpBus::Options tcp_options;
    tcp_options.reactor_threads = options_.reactor_threads;
    tcp_ = std::make_unique<TcpBus>(
        [this](NodeId dst, std::vector<TcpBus::Delivery>&& batch) {
          // Reactor thread -> destination mailbox: every frame of the
          // receive burst lands under one mailbox lock.
          if (dst >= mailboxes_.size()) return;
          std::vector<MailItem> items;
          items.reserve(batch.size());
          for (auto& delivery : batch) {
            Frame frame(std::move(delivery.frame));
            if (Shape(delivery.src, dst, frame)) continue;
            items.push_back(MailItem{delivery.src, std::move(frame), nullptr});
          }
          mailboxes_[dst]->PushBatch(std::move(items));
        },
        tcp_options);
  }
}

void ThreadCluster::PushFrame(NodeId src, NodeId dst, Frame frame) {
  if (dst >= mailboxes_.size()) return;
  mailboxes_[dst]->Push(MailItem{src, std::move(frame), nullptr});
}

bool ThreadCluster::Shape(NodeId src, NodeId dst, Frame& frame) {
  // Offer leaves `frame` intact when it declines (returns false), so
  // the caller can continue down the direct-delivery path.
  return shaper_ && shaper_->Offer(src, dst, std::move(frame));
}

ThreadCluster::~ThreadCluster() { Stop(); }

NodeId ThreadCluster::AddNode(std::unique_ptr<Automaton> automaton) {
  SBFT_ASSERT(!started_);
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(automaton));
  mailboxes_.push_back(std::make_unique<Mailbox>());
  Rng seeder(options_.seed + id * 7919);
  endpoints_.push_back(std::make_unique<Endpoint>(*this, id, seeder.Fork()));
  if (tcp_) tcp_->AddNode(id);
  return id;
}

void ThreadCluster::Start() {
  SBFT_ASSERT(!started_);
  started_ = true;
  if (shaper_) shaper_->Start();
  if (tcp_) tcp_->Start();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    threads_.emplace_back([this, id] { NodeLoop(id); });
  }
  // OnStart on each node's own thread, synchronously.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    RunOnNode(id, [this, id] { nodes_[id]->OnStart(*endpoints_[id]); });
  }
}

bool ThreadCluster::OnNodeThread(NodeId id) const { return tls_node == id; }

void ThreadCluster::NodeLoop(NodeId id) {
  tls_node = id;
  Mailbox& mailbox = *mailboxes_[id];
  Endpoint& endpoint = *endpoints_[id];
  std::deque<MailItem> batch;
  for (;;) {
    // With a timer armed, the drain wakes at its deadline even if no
    // frames arrive (an empty batch then just fires the timer below).
    bool alive;
    if (const auto deadline = endpoint.NextTimerDeadline()) {
      alive = mailbox.DrainUntil(batch, *deadline);
    } else {
      alive = mailbox.Drain(batch);
    }
    if (!alive) break;
    std::uint64_t frames = 0;
    // The dispatch bracket below — batch hooks, handlers, timers — is
    // the protocol work of this wakeup; everything before (mailbox
    // wait) and after (socket flush) is transport. Sample thread CPU
    // at its edges to attribute cost accordingly.
    const bool measure = !batch.empty();
    const std::uint64_t cpu_start = measure ? ThreadCpuNs() : 0;
    // Bracket the batch so the node can coalesce everything it sends
    // in response to this wakeup (protocol-round batching seam — one
    // drain, one shared round; shared by the mailbox and TCP paths).
    if (!batch.empty()) nodes_[id]->OnBatchStart(endpoint);
    for (auto& item : batch) {
      if (item.task) {
        item.task();
      } else {
        ++frames;
        nodes_[id]->OnFrame(item.src, item.frame.view(), endpoint);
        // Recycle into this node thread's pool — its own sends draw
        // from the same pool, so a steady request/reply load reuses
        // storage.
        item.frame.Recycle(FramePool());
      }
    }
    if (!batch.empty()) nodes_[id]->OnBatchEnd(endpoint);
    if (frames != 0) {
      frames_delivered_.fetch_add(frames, std::memory_order_relaxed);
    }
    // Due timers fire after the batch, on the same thread that runs
    // handlers — automata stay single-threaded here as in the sim.
    endpoint.FireDueTimers(*nodes_[id]);
    if (measure) {
      protocol_cpu_ns_.fetch_add(ThreadCpuNs() - cpu_start,
                                 std::memory_order_relaxed);
    }
    // Everything this batch queued on the wire goes out in (at most)
    // one syscall per touched connection.
    if (tcp_) tcp_->Flush(id);
  }
}

void ThreadCluster::Deliver(NodeId src, NodeId dst, Bytes frame) {
  if (dst >= nodes_.size()) return;
  if (tcp_) {
    tcp_->Send(src, dst, frame);
    FramePool().Release(std::move(frame));
    return;
  }
  Frame wrapped(std::move(frame));
  if (Shape(src, dst, wrapped)) return;
  mailboxes_[dst]->Push(MailItem{src, std::move(wrapped), nullptr});
}

void ThreadCluster::DeliverBroadcast(NodeId src, std::span<const NodeId> dsts,
                                     Bytes frame) {
  if (tcp_) {
    // One encode, one socket write per destination, zero frame copies.
    for (NodeId dst : dsts) {
      if (dst < nodes_.size()) tcp_->Send(src, dst, frame);
    }
    FramePool().Release(std::move(frame));
    return;
  }
  // One payload shared by every destination mailbox.
  auto payload = std::make_shared<Bytes>(std::move(frame));
  for (NodeId dst : dsts) {
    if (dst < nodes_.size()) {
      Frame wrapped(payload);  // per-destination shaping decisions
      if (Shape(src, dst, wrapped)) continue;
      mailboxes_[dst]->Push(MailItem{src, std::move(wrapped), nullptr});
    }
  }
}

void ThreadCluster::RunOnNode(NodeId id, std::function<void()> fn) {
  SBFT_ASSERT(id < nodes_.size());
  std::promise<void> done;
  auto future = done.get_future();
  const bool pushed = mailboxes_[id]->Push(MailItem{
      kNoNode, {}, [fn = std::move(fn), &done] {
        fn();
        done.set_value();
      }});
  SBFT_ASSERT(pushed);
  future.wait();
}

void ThreadCluster::PostToNode(NodeId id, std::function<void()> fn) {
  if (id >= nodes_.size()) return;
  mailboxes_[id]->Push(MailItem{kNoNode, {}, std::move(fn)});
}

void ThreadCluster::Stop() {
  if (stopped_ || !started_) {
    stopped_ = true;
    return;
  }
  stopped_ = true;
  // The shaper stops first: frames it still holds are dropped, and
  // later Offers decline so sends fall through to (soon-closed)
  // mailboxes. Node threads are the only callers of tcp_->Send/Flush,
  // so closing mailboxes and joining them before the transport means
  // it is torn down only once nothing can touch it.
  if (shaper_) shaper_->Stop();
  for (auto& mailbox : mailboxes_) mailbox->Close();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  if (tcp_) tcp_->Stop();
}

}  // namespace sbft
