// Bounds-checked binary serialization.
//
// Everything that crosses a channel in sbftreg goes through BufWriter /
// BufReader. The reader is hardened: transient faults may replace channel
// contents with arbitrary bytes (§II of the paper), so decoding garbage
// must fail cleanly (sticky error flag) instead of crashing or reading
// out of bounds. Integers are little-endian; containers are
// length-prefixed with a sanity cap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace sbft {

/// Maximum element count accepted for any length-prefixed container.
/// Garbage frames routinely decode to absurd lengths; this cap bounds
/// allocation before the frame is rejected by higher-level validation.
constexpr std::uint32_t kMaxWireElements = 1u << 20;

namespace detail {
// Unsigned carrier type for an integral or enum T, computed lazily so
// the non-enum branch never instantiates underlying_type.
template <typename T, bool = std::is_enum_v<T>>
struct WireCarrier {
  using type = std::make_unsigned_t<T>;
};
template <typename T>
struct WireCarrier<T, true> {
  using type = std::make_unsigned_t<std::underlying_type_t<T>>;
};
template <typename T>
using WireCarrierT = typename WireCarrier<T>::type;
}  // namespace detail

class BufWriter {
 public:
  BufWriter() = default;

  /// Write into a caller-supplied buffer — typically drawn from a
  /// BufferPool so repeated encodes reuse capacity. The buffer is
  /// cleared; Take() hands it back with the encoded frame.
  explicit BufWriter(Bytes reuse) : buf_(std::move(reuse)) { buf_.clear(); }

  /// Pre-size for a frame whose length the caller can compute, so the
  /// encode runs without reallocation.
  void Reserve(std::size_t bytes) { buf_.reserve(buf_.size() + bytes); }

  template <typename T>
    requires std::is_integral_v<T> || std::is_enum_v<T>
  void Put(T value) {
    using U = detail::WireCarrierT<T>;
    auto u = static_cast<U>(value);
    std::uint8_t le[sizeof(U)];
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      le[i] = static_cast<std::uint8_t>(u & 0xFF);
      u = static_cast<U>(u >> 8);
    }
    const std::size_t at = buf_.size();
    buf_.resize(at + sizeof(U));
    std::memcpy(buf_.data() + at, le, sizeof(U));
  }

  void PutBytes(BytesView data) {
    Put<std::uint32_t>(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void PutString(const std::string& s) {
    PutBytes(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size()));
  }

  template <typename T, typename Fn>
  void PutVector(const std::vector<T>& items, Fn&& encode_one) {
    Put<std::uint32_t>(static_cast<std::uint32_t>(items.size()));
    for (const T& item : items) encode_one(*this, item);
  }

  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class BufReader {
 public:
  explicit BufReader(BytesView data) : data_(data) {}

  template <typename T>
    requires std::is_integral_v<T> || std::is_enum_v<T>
  T Get() {
    using U = detail::WireCarrierT<T>;
    if (!Need(sizeof(U))) return T{};
    U u = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      u |= static_cast<U>(static_cast<U>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(U);
    return static_cast<T>(u);
  }

  /// Zero-copy: a view of the next length-prefixed run, borrowed from
  /// the frame being decoded. Valid only while the frame's storage is —
  /// copy (ToBytes) before storing into long-lived state.
  BytesView GetBytesView() {
    const auto size = Get<std::uint32_t>();
    if (failed_ || size > kMaxWireElements || !Need(size)) {
      failed_ = true;
      return {};
    }
    BytesView out = data_.subspan(pos_, size);
    pos_ += size;
    return out;
  }

  Bytes GetBytes() {
    BytesView view = GetBytesView();
    return Bytes(view.begin(), view.end());
  }

  std::string GetString() {
    Bytes raw = GetBytes();
    return std::string(raw.begin(), raw.end());
  }

  template <typename T, typename Fn>
  std::vector<T> GetVector(Fn&& decode_one) {
    const auto count = Get<std::uint32_t>();
    if (failed_ || count > kMaxWireElements) {
      failed_ = true;
      return {};
    }
    std::vector<T> out;
    // Cap the speculative reserve by the bytes actually left: every
    // element consumes at least one byte in every codec, so a garbage
    // length can never force an allocation larger than the frame.
    out.reserve(std::min<std::size_t>(count, remaining()));
    for (std::uint32_t i = 0; i < count && !failed_; ++i) {
      out.push_back(decode_one(*this));
    }
    return out;
  }

  /// True once any read ran past the buffer or a length prefix was
  /// implausible. Callers check this once after decoding a whole frame.
  [[nodiscard]] bool failed() const { return failed_; }

  /// True iff the whole buffer was consumed and nothing failed —
  /// trailing garbage also marks a frame invalid.
  [[nodiscard]] bool AtEndOk() const { return !failed_ && pos_ == data_.size(); }

  std::size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }

 private:
  bool Need(std::size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  BytesView data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace sbft
