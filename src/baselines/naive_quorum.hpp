// Baseline 3: a register in the class TM_1R of Theorem 1 — bounded
// timestamps, one-phase reads (no write-back), decisions taken as a
// deterministic function of the collected timestamp multiset.
//
// This protocol is the *subject* of the lower bound: Theorem 1 proves no
// such protocol can implement a stabilizing BFT regular register with
// n <= 5f servers. bench_lower_bound replays the exact adversarial
// execution of the proof (w0, w1, r1, w2, r2 with scripted holds and a
// replaying Byzantine server) and exhibits the regularity violation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "labels/labeling_system.hpp"
#include "net/message.hpp"
#include "sim/world.hpp"

namespace sbft {

class NqServer : public Automaton {
 public:
  explicit NqServer(std::uint32_t k) : labels_(k) {
    ts_ = Timestamp{labels_.Initial(), 0};
  }

  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;
  void CorruptState(Rng& rng) override;

  [[nodiscard]] const Timestamp& ts() const { return ts_; }
  [[nodiscard]] const Value& value() const { return value_; }
  void SetState(Timestamp ts, Value value) {
    ts_ = std::move(ts);
    value_ = std::move(value);
  }

 private:
  LabelingSystem labels_;
  Timestamp ts_;
  Value value_;
};

/// Fully scripted Byzantine server for the Theorem 1 replay: replies to
/// GET_TS with `ts_for_get_ts`, ACKs every write, and answers READs from
/// a queue of scripted (ts, value) pairs (falling back to the last one).
class NqScriptedServer : public Automaton {
 public:
  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;

  Timestamp ts_for_get_ts;
  std::deque<std::pair<Timestamp, Value>> read_script;
};

struct NqReadOutcome {
  bool ok = false;
  Value value;
  Timestamp ts;
};

class NqClient : public Automaton {
 public:
  NqClient(std::vector<NodeId> servers, std::uint32_t f, std::uint32_t k,
           std::uint32_t client_id);

  void OnStart(IEndpoint& endpoint) override;
  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;

  void StartWrite(Value value, std::function<void(bool)> callback);
  void StartRead(std::function<void(const NqReadOutcome&)> callback);
  [[nodiscard]] bool idle() const { return phase_ == Phase::kIdle; }
  /// Timestamp introduced by the most recent write (for replay setup).
  [[nodiscard]] const Timestamp& last_write_ts() const {
    return last_write_ts_;
  }

 private:
  enum class Phase : std::uint8_t { kIdle, kGetTs, kWrite, kRead };

  [[nodiscard]] std::size_t Quorum() const { return servers_.size() - f_; }
  [[nodiscard]] std::optional<std::size_t> ServerIndex(NodeId node) const;
  void DecideRead();

  std::vector<NodeId> servers_;
  std::uint32_t f_;
  LabelingSystem labels_;
  std::uint32_t client_id_;
  IEndpoint* endpoint_ = nullptr;

  Phase phase_ = Phase::kIdle;
  std::uint64_t rid_ = 0;
  Value write_value_;
  Timestamp last_write_ts_;
  std::function<void(bool)> write_callback_;
  std::function<void(const NqReadOutcome&)> read_callback_;
  // Index-dense per-server state (vectors sized n + presence bits);
  // ascending-index iteration matches the ordered containers this
  // replaced, so decisions are unchanged. First reply per server wins.
  std::vector<Timestamp> collected_ts_;
  std::vector<std::uint8_t> collected_bits_;
  std::uint32_t collected_count_ = 0;
  std::vector<std::uint8_t> write_replies_;
  std::uint32_t write_reply_count_ = 0;
  std::vector<Timestamp> read_ts_;
  std::vector<Value> read_vals_;
  std::vector<std::uint8_t> read_bits_;
  std::uint32_t read_count_ = 0;
};

}  // namespace sbft
