// Property tests for convergent adoption (DESIGN.md gap #4 repair):
// the final server state after a set of writes must be independent of
// arrival order, and the WTsG head election must be stable across
// witness subsets.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "core/server.hpp"
#include "core/wtsg.hpp"
#include "sim/world.hpp"

namespace sbft {
namespace {

// WriteMsg carries a view of its value, so test values need storage
// that outlives the message. One static byte per possible value.
BytesView ByteVal(std::uint8_t b) {
  static const auto table = [] {
    std::array<std::uint8_t, 256> t{};
    for (std::size_t i = 0; i < t.size(); ++i) {
      t[i] = static_cast<std::uint8_t>(i);
    }
    return t;
  }();
  return BytesView(&table[b], 1);
}

// Deliver the same multiset of WRITE frames to fresh servers in every
// permutation (k small) or in shuffled orders (k larger): identical
// final (value, ts).
class WriteFeeder final : public Automaton {
 public:
  WriteFeeder(NodeId target, std::vector<WriteMsg> writes)
      : target_(target), writes_(std::move(writes)) {}
  void OnStart(IEndpoint& endpoint) override {
    for (const WriteMsg& write : writes_) {
      endpoint.Send(target_, EncodeMessage(Message(write)));
    }
  }
  void OnFrame(NodeId, BytesView, IEndpoint&) override {}

 private:
  NodeId target_;
  std::vector<WriteMsg> writes_;
};

VersionedValue FinalStateAfter(const std::vector<WriteMsg>& writes,
                               std::uint64_t seed) {
  World world(World::Options{seed, std::make_unique<FixedDelay>(1)});
  auto server_owner =
      std::make_unique<RegisterServer>(ProtocolConfig::ForServers(6), 0);
  RegisterServer* server = server_owner.get();
  const NodeId id = world.AddNode(std::move(server_owner));
  world.AddNode(std::make_unique<WriteFeeder>(id, writes));
  world.Run();
  return server->current();
}

TEST(Convergence, ArrivalOrderIrrelevantForConcurrentPair) {
  LabelingSystem system(6);
  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    // Two *realistic* concurrent writes: each label is next() over the
    // initial state plus a different set of stray labels (the writers
    // sampled slightly different snapshots) — frequently incomparable
    // to each other, but both dominating the server's current label, as
    // honest writes always do.
    const Label init = system.Initial();
    const Label a_label = system.Next(std::vector<Label>{
        init, RandomValidLabel(rng, system.params())});
    const Label b_label = system.Next(std::vector<Label>{
        init, RandomValidLabel(rng, system.params()),
        RandomValidLabel(rng, system.params())});
    WriteMsg a{ByteVal(1), Timestamp{a_label, 6}, 1};
    WriteMsg b{ByteVal(2), Timestamp{b_label, 7}, 2};
    auto ab = FinalStateAfter({a, b}, 1);
    auto ba = FinalStateAfter({b, a}, 1);
    EXPECT_EQ(ab, ba) << "round " << round << ": " << a.ts.ToString()
                      << " vs " << b.ts.ToString();
  }
}

TEST(Convergence, ArrivalOrderIrrelevantForTriples) {
  LabelingSystem system(6);
  Rng rng(12);
  for (int round = 0; round < 25; ++round) {
    std::vector<WriteMsg> writes;
    const Label init = system.Initial();
    for (std::uint8_t i = 0; i < 3; ++i) {
      // Realistic concurrent labels: all dominate the initial state.
      writes.push_back(WriteMsg{
          ByteVal(i),
          Timestamp{system.Next(std::vector<Label>{
                        init, RandomValidLabel(rng, system.params())}),
                    static_cast<ClientId>(6 + i)},
          1u});
    }
    std::sort(writes.begin(), writes.end(),
              [](const WriteMsg& x, const WriteMsg& y) {
                return x.value[0] < y.value[0];
              });
    std::optional<VersionedValue> reference;
    std::vector<WriteMsg> permutation = writes;
    // All 6 permutations of three writes.
    std::sort(permutation.begin(), permutation.end(),
              [](const WriteMsg& x, const WriteMsg& y) {
                return x.value[0] < y.value[0];
              });
    int disagreements = 0;
    do {
      auto state = FinalStateAfter(permutation, 1);
      if (!reference) {
        reference = state;
      } else if (!(state == *reference)) {
        ++disagreements;
      }
    } while (std::next_permutation(
        permutation.begin(), permutation.end(),
        [](const WriteMsg& x, const WriteMsg& y) {
          return x.value[0] < y.value[0];
        }));
    // With three mutually incomparable labels the pairwise order can be
    // cyclic, in which case full permutation-independence is impossible
    // for ANY pairwise rule; those rounds are tolerated (they resolve at
    // the next dominating write). Non-cyclic rounds must agree exactly.
    const auto& params = system.params();
    auto precedes_ts = [&](const WriteMsg& x, const WriteMsg& y) {
      if (Precedes(x.ts.label, y.ts.label, params)) return true;
      if (Precedes(y.ts.label, x.ts.label, params)) return false;
      return x.ts.writer_id < y.ts.writer_id;
    };
    const bool cyclic =
        (precedes_ts(writes[0], writes[1]) &&
         precedes_ts(writes[1], writes[2]) &&
         precedes_ts(writes[2], writes[0])) ||
        (precedes_ts(writes[1], writes[0]) &&
         precedes_ts(writes[0], writes[2]) &&
         precedes_ts(writes[2], writes[1]));
    if (!cyclic) {
      EXPECT_EQ(disagreements, 0) << "round " << round;
    }
  }
}

TEST(Convergence, DominatedWriteNeverDisplacesDominating) {
  LabelingSystem system(6);
  Label l0 = system.Initial();
  Label l1 = system.Next(std::vector<Label>{l0});
  WriteMsg newer{ByteVal(2), Timestamp{l1, 6}, 1};
  WriteMsg older{ByteVal(1), Timestamp{l0, 9}, 2};  // higher id, older label
  auto state = FinalStateAfter({newer, older}, 1);
  EXPECT_EQ(state.value, Value{2}) << "label order must beat writer id";
}

TEST(Convergence, InvalidLocalLabelAlwaysAdopts) {
  // A corrupted server (garbage label) must adopt the next write no
  // matter what — the stabilization requirement that forbids strict
  // conditional adoption.
  World world(World::Options{3, std::make_unique<FixedDelay>(1)});
  auto server_owner =
      std::make_unique<RegisterServer>(ProtocolConfig::ForServers(6), 0);
  RegisterServer* server = server_owner.get();
  const NodeId id = world.AddNode(std::move(server_owner));
  Rng rng(5);
  server->CorruptState(rng);  // garbage label, maybe invalid

  LabelingSystem system(6);
  WriteMsg heal{ByteVal(7), Timestamp{system.Initial(), 6}, 1};
  world.AddNode(std::make_unique<WriteFeeder>(id, std::vector<WriteMsg>{
                                                      heal}));
  world.Run();
  if (!system.IsValid(server->current().ts.label) ||
      server->current().value == Value{7}) {
    SUCCEED();  // either adopted, or local label was (rare) valid garbage
  }
}

TEST(Convergence, RejectedWriteStillWitnessedInHistory) {
  LabelingSystem system(6);
  Label l0 = system.Initial();
  Label l1 = system.Next(std::vector<Label>{l0});
  WriteMsg newer{ByteVal(2), Timestamp{l1, 6}, 1};
  WriteMsg older{ByteVal(1), Timestamp{l0, 9}, 2};
  World world(World::Options{4, std::make_unique<FixedDelay>(1)});
  auto server_owner =
      std::make_unique<RegisterServer>(ProtocolConfig::ForServers(6), 0);
  RegisterServer* server = server_owner.get();
  const NodeId id = world.AddNode(std::move(server_owner));
  world.AddNode(std::make_unique<WriteFeeder>(
      id, std::vector<WriteMsg>{newer, older}));
  world.Run();
  // `older` was rejected but must appear in old_vals for union reads.
  bool witnessed = false;
  for (const VersionedValue& vv : server->old_vals()) {
    if (vv.value == Value{1}) witnessed = true;
  }
  EXPECT_TRUE(witnessed);
}

TEST(Convergence, WtsgElectionStableAcrossWitnessSubsets) {
  // Build a union-style graph for a chain of writes; any 5-server
  // sample that certifies anything must elect the same vertex.
  LabelingSystem system(6);
  std::vector<Label> chain{system.Initial()};
  for (int i = 0; i < 4; ++i) {
    chain.push_back(system.Next(std::vector<Label>{chain.back()}));
  }
  // All 6 servers witness the full chain (union semantics).
  auto build = [&](const std::vector<std::size_t>& sample) {
    Wtsg graph(system.params());
    for (std::size_t server : sample) {
      for (std::size_t v = 0; v < chain.size(); ++v) {
        graph.AddWitness(server,
                         VersionedValue{Value{static_cast<std::uint8_t>(v)},
                                        Timestamp{chain[v], 6}});
      }
    }
    return graph.FindWitnessed(3);
  };
  std::optional<Value> elected;
  std::vector<std::size_t> all{0, 1, 2, 3, 4, 5};
  do {
    std::vector<std::size_t> sample(all.begin(), all.begin() + 5);
    auto winner = build(sample);
    ASSERT_TRUE(winner.has_value());
    if (!elected) {
      elected = winner->value;
    } else {
      EXPECT_EQ(winner->value, *elected);
    }
  } while (std::next_permutation(all.begin(), all.end()));
  EXPECT_EQ(*elected, Value{4});  // the newest in the chain
}

}  // namespace
}  // namespace sbft
