// Randomized concurrent workload driver.
//
// Runs a mix of read() and write() operations across the deployment's
// clients with genuine concurrency (clients interleave in virtual time)
// and produces a History for CheckRegular. Write values are unique by
// construction ("c<client>#<seq>"), which the checker requires.
#pragma once

#include <cstdint>

#include "core/deployment.hpp"
#include "spec/history.hpp"

namespace sbft {

struct WorkloadOptions {
  /// Operations per client.
  std::uint32_t ops_per_client = 20;
  double write_fraction = 0.5;
  /// Uniform think-time between a client's operations, in ticks.
  VirtualTime max_think_time = 20;
  std::uint64_t seed = 1;
  /// Safety valve on total simulation events.
  std::uint64_t max_events = 20'000'000;
};

struct WorkloadResult {
  History history;
  /// True iff every launched operation returned within the event cap.
  bool all_completed = true;
  /// Virtual time at which the first write completed successfully —
  /// the stabilization point of Theorem 2 (kTimeForever if none did).
  VirtualTime first_write_done = kTimeForever;
};

/// Drive the workload to completion (or to the event cap).
WorkloadResult RunConcurrentWorkload(Deployment& deployment,
                                     const WorkloadOptions& options);

}  // namespace sbft
