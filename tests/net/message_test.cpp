// Round-trip and garbage-hardening tests for the frame codec.
#include "net/message.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "labels/labeling_system.hpp"

namespace sbft {
namespace {

Timestamp MakeTs(Rng& rng, const LabelingSystem& system) {
  return Timestamp{RandomValidLabel(rng, system.params()),
                   static_cast<ClientId>(rng.NextBelow(100))};
}

template <typename T>
T RoundTrip(const T& in) {
  Bytes wire = EncodeMessage(Message(in));
  auto decoded = DecodeMessage(wire);
  EXPECT_TRUE(decoded.ok()) << (decoded.ok() ? "" : decoded.error());
  const T* out = std::get_if<T>(&decoded.value());
  EXPECT_NE(out, nullptr);
  return out ? *out : T{};
}

TEST(MessageCodec, CoreMessagesRoundTrip) {
  Rng rng(51);
  LabelingSystem system(6);

  GetTsMsg get_ts{.op_label = 3};
  EXPECT_EQ(RoundTrip(get_ts).op_label, 3u);

  TsReplyMsg ts_reply{MakeTs(rng, system), 7};
  auto ts_reply_out = RoundTrip(ts_reply);
  EXPECT_EQ(ts_reply_out.ts, ts_reply.ts);
  EXPECT_EQ(ts_reply_out.op_label, 7u);

  WriteMsg write{Value{1, 2, 3}, MakeTs(rng, system), 9};
  auto write_out = RoundTrip(write);
  EXPECT_EQ(write_out.value, write.value);
  EXPECT_EQ(write_out.ts, write.ts);

  WriteReplyMsg wr{.ack = true, .op_label = 2};
  EXPECT_TRUE(RoundTrip(wr).ack);

  ReadMsg read{.label = 1};
  EXPECT_EQ(RoundTrip(read).label, 1u);

  ReplyMsg reply;
  reply.value = Value{9, 9};
  reply.ts = MakeTs(rng, system);
  reply.old_vals = {{Value{1}, MakeTs(rng, system)},
                    {Value{2}, MakeTs(rng, system)}};
  reply.label = 4;
  auto reply_out = RoundTrip(reply);
  EXPECT_EQ(reply_out.value, reply.value);
  EXPECT_EQ(reply_out.old_vals, reply.old_vals);

  CompleteReadMsg complete{.label = 2};
  EXPECT_EQ(RoundTrip(complete).label, 2u);

  FlushMsg flush{.label = 5, .scope = OpScope::kWrite};
  auto flush_out = RoundTrip(flush);
  EXPECT_EQ(flush_out.scope, OpScope::kWrite);

  FlushAckMsg flush_ack{.label = 5, .scope = OpScope::kRead};
  EXPECT_EQ(RoundTrip(flush_ack).label, 5u);
}

TEST(MessageCodec, BaselineMessagesRoundTrip) {
  Rng rng(52);
  LabelingSystem system(4);
  UnboundedTs uts{123456789, 42};

  EXPECT_EQ(RoundTrip(AbdReadMsg{77}).rid, 77u);
  auto abd_reply = RoundTrip(AbdReadReplyMsg{1, uts, Value{5}});
  EXPECT_EQ(abd_reply.ts, uts);
  EXPECT_EQ(abd_reply.value, Value{5});
  EXPECT_EQ(RoundTrip(AbdWriteMsg{2, uts, Value{6}}).ts, uts);
  EXPECT_EQ(RoundTrip(AbdWriteAckMsg{3}).rid, 3u);
  EXPECT_EQ(RoundTrip(AbdGetTsMsg{4}).rid, 4u);
  EXPECT_EQ(RoundTrip(AbdTsReplyMsg{5, uts}).ts, uts);

  EXPECT_EQ(RoundTrip(BuGetTsMsg{6}).rid, 6u);
  EXPECT_EQ(RoundTrip(BuTsReplyMsg{7, uts}).ts, uts);
  EXPECT_EQ(RoundTrip(BuWriteMsg{8, uts, Value{9}}).value, Value{9});
  EXPECT_EQ(RoundTrip(BuWriteAckMsg{9}).rid, 9u);
  EXPECT_EQ(RoundTrip(BuReadMsg{10}).rid, 10u);
  EXPECT_EQ(RoundTrip(BuReadReplyMsg{11, uts, Value{1}}).rid, 11u);

  Timestamp ts = MakeTs(rng, system);
  EXPECT_EQ(RoundTrip(NqGetTsMsg{12}).rid, 12u);
  EXPECT_EQ(RoundTrip(NqTsReplyMsg{13, ts}).ts, ts);
  EXPECT_EQ(RoundTrip(NqWriteMsg{14, ts, Value{2}}).ts, ts);
  EXPECT_EQ(RoundTrip(NqWriteAckMsg{15}).rid, 15u);
  EXPECT_EQ(RoundTrip(NqReadMsg{16}).rid, 16u);
  EXPECT_EQ(RoundTrip(NqReadReplyMsg{17, ts, Value{3}}).value, Value{3});
}

TEST(MessageCodec, MuxEnvelopeRoundTrip) {
  MuxMsg mux;
  mux.register_id = 0xDEADBEEFCAFEF00Dull;
  mux.inner = EncodeMessage(Message(ReadMsg{.label = 3}));
  Bytes wire = EncodeMessage(Message(mux));
  auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded.ok());
  const auto* out = std::get_if<MuxMsg>(&decoded.value());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->register_id, mux.register_id);
  auto inner = DecodeMessage(out->inner);
  ASSERT_TRUE(inner.ok());
  EXPECT_NE(std::get_if<ReadMsg>(&inner.value()), nullptr);
}

TEST(MessageCodec, MuxNestingIsPossibleButBounded) {
  // Nested envelopes decode fine (the shim never nests, but garbage
  // might look nested); depth is naturally bounded by frame size.
  MuxMsg innermost;
  innermost.register_id = 1;
  innermost.inner = Bytes{0xFF};
  MuxMsg outer;
  outer.register_id = 2;
  outer.inner = EncodeMessage(Message(innermost));
  auto decoded = DecodeMessage(EncodeMessage(Message(outer)));
  ASSERT_TRUE(decoded.ok());
}

TEST(MessageCodec, EmptyFrameRejected) {
  EXPECT_FALSE(DecodeMessage(Bytes{}).ok());
}

TEST(MessageCodec, UnknownTagRejected) {
  Bytes frame{0xEE, 1, 2, 3};
  EXPECT_FALSE(DecodeMessage(frame).ok());
}

TEST(MessageCodec, TruncatedFrameRejected) {
  Bytes wire = EncodeMessage(Message(WriteMsg{Value{1, 2, 3},
                                              Timestamp{}, 1}));
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(),
                    wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeMessage(truncated).ok()) << "cut=" << cut;
  }
}

TEST(MessageCodec, TrailingBytesRejected) {
  Bytes wire = EncodeMessage(Message(ReadMsg{1}));
  wire.push_back(0xAB);
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

// One populated instance of every wire variant, so hardening tests can
// exercise every decoder rather than a lucky subset.
std::vector<Message> AllVariantSamples(Rng& rng,
                                       const LabelingSystem& system) {
  const Timestamp ts = MakeTs(rng, system);
  const UnboundedTs uts{987654321, 17};
  ReplyMsg reply;
  reply.value = Value{4, 5};
  reply.ts = MakeTs(rng, system);
  reply.old_vals = {{Value{6}, MakeTs(rng, system)}};
  reply.label = 11;
  MuxMsg mux;
  mux.register_id = 0x1122334455667788ull;
  mux.inner = EncodeMessage(Message(ReadMsg{.label = 9}));
  return {
      GetTsMsg{3},
      TsReplyMsg{ts, 7},
      WriteMsg{Value{1, 2, 3}, ts, 9},
      WriteReplyMsg{true, 2},
      ReadMsg{1},
      reply,
      CompleteReadMsg{2},
      FlushMsg{5, OpScope::kWrite},
      FlushAckMsg{5, OpScope::kRead},
      AbdReadMsg{77},
      AbdReadReplyMsg{1, uts, Value{5}},
      AbdWriteMsg{2, uts, Value{6}},
      AbdWriteAckMsg{3},
      AbdGetTsMsg{4},
      AbdTsReplyMsg{5, uts},
      BuGetTsMsg{6},
      BuTsReplyMsg{7, uts},
      BuWriteMsg{8, uts, Value{9}},
      BuWriteAckMsg{9},
      BuReadMsg{10},
      BuReadReplyMsg{11, uts, Value{1}},
      NqGetTsMsg{12},
      NqTsReplyMsg{13, ts},
      NqWriteMsg{14, ts, Value{2}},
      NqWriteAckMsg{15},
      NqReadMsg{16},
      NqReadReplyMsg{17, ts, Value{3}},
      mux,
  };
}

TEST(MessageCodec, SampleSetCoversEveryVariant) {
  Rng rng(54);
  LabelingSystem system(6);
  EXPECT_EQ(AllVariantSamples(rng, system).size(),
            std::variant_size_v<Message>);
}

TEST(MessageCodec, EveryVariantTruncationRejected) {
  Rng rng(54);
  LabelingSystem system(6);
  for (const Message& sample : AllVariantSamples(rng, system)) {
    const Bytes wire = EncodeMessage(sample);
    ASSERT_TRUE(DecodeMessage(wire).ok()) << MessageTypeName(sample);
    // Every strict prefix must produce a clean decode error: length
    // prefixes precede their data and decoders demand exact consumption,
    // so no truncation can re-validate.
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      Bytes truncated(wire.begin(),
                      wire.begin() + static_cast<std::ptrdiff_t>(cut));
      auto decoded = DecodeMessage(truncated);
      EXPECT_FALSE(decoded.ok())
          << MessageTypeName(sample) << " cut=" << cut;
    }
  }
}

TEST(MessageCodec, EveryVariantBitFlipsDecodeOrErrorCleanly) {
  // Flip each byte of each valid frame: the decoder must either reject
  // or return a structurally valid message, never misbehave. (ASan/UBSan
  // in CI give this test its teeth.)
  Rng rng(55);
  LabelingSystem system(6);
  for (const Message& sample : AllVariantSamples(rng, system)) {
    Bytes wire = EncodeMessage(sample);
    for (std::size_t i = 0; i < wire.size(); ++i) {
      const std::uint8_t saved = wire[i];
      wire[i] ^= static_cast<std::uint8_t>(1 + rng.NextBelow(255));
      auto decoded = DecodeMessage(wire);
      if (decoded.ok()) {
        EXPECT_FALSE(MessageTypeName(decoded.value()).empty());
      }
      wire[i] = saved;
    }
  }
}

TEST(MessageCodec, TypedGarbagePayloadsNeverCrash) {
  // Valid type byte, random payload: the adversarial shape garbage
  // injection actually produces (the type byte survives, fields don't).
  Rng rng(56);
  LabelingSystem system(6);
  const auto samples = AllVariantSamples(rng, system);
  for (const Message& sample : samples) {
    const std::uint8_t type_byte = EncodeMessage(sample)[0];
    for (int i = 0; i < 64; ++i) {
      Bytes frame{type_byte};
      const Bytes payload = RandomBytes(rng, rng.NextBelow(120));
      frame.insert(frame.end(), payload.begin(), payload.end());
      (void)DecodeMessage(frame);  // must not crash; outcome is free
    }
  }
}

TEST(MessageCodec, FuzzGarbageFramesNeverCrash) {
  Rng rng(53);
  int decoded_ok = 0;
  for (int i = 0; i < 5000; ++i) {
    Bytes garbage = RandomBytes(rng, rng.NextBelow(80));
    auto result = DecodeMessage(garbage);
    if (result.ok()) ++decoded_ok;  // structurally valid garbage is fine
  }
  // Overwhelming majority of random frames must be rejected outright.
  EXPECT_LT(decoded_ok, 500);
}

TEST(MessageCodec, TypeNamesAreStable) {
  EXPECT_EQ(MessageTypeName(Message(GetTsMsg{})), "GET_TS");
  EXPECT_EQ(MessageTypeName(Message(WriteReplyMsg{.ack = true})), "ACK");
  EXPECT_EQ(MessageTypeName(Message(WriteReplyMsg{.ack = false})), "NACK");
  EXPECT_EQ(MessageTypeName(Message(FlushMsg{})), "FLUSH");
  EXPECT_EQ(MessageTypeName(Message(NqReadReplyMsg{})), "NQ_READ_REPLY");
}

}  // namespace
}  // namespace sbft
