#include "fuzz/generator.hpp"

#include <algorithm>

namespace sbft::fuzz {
namespace {

// Strategies that still answer reader traffic. These are the ones that
// matter near the resilience boundary: a server must be *in* the read
// quorum to displace a fresh witness (a silent server just shrinks the
// quorum to the correct ones).
constexpr ByzantineStrategy kTalkativeStrategies[] = {
    ByzantineStrategy::kStaleReplay,
    ByzantineStrategy::kEquivocate,
    ByzantineStrategy::kNack,
};

constexpr ByzantineClientStrategy kInModelClientStrategies[] = {
    ByzantineClientStrategy::kReadFlooder,
    ByzantineClientStrategy::kGarbageSprayer,
};

template <typename T, std::size_t N>
T Pick(Rng& rng, const T (&choices)[N]) {
  return choices[rng.NextBelow(N)];
}

}  // namespace

Scenario GenerateScenario(Rng& rng, const GeneratorOptions& options) {
  Scenario s;
  s.seed = rng();

  s.f = 1 + static_cast<std::uint32_t>(
                rng.NextBelow(std::max<std::uint32_t>(options.max_f, 1)));
  // Cluster around the boundary: mostly the tight bound 5f+1, sometimes
  // slack, and (only when allowed) the impossible setting 5f itself.
  if (options.allow_sub_resilience && rng.NextBool(0.5)) {
    s.extra = 0;
  } else {
    s.extra = rng.NextBool(0.8) ? 1 : 2;
  }
  s.n_clients = 2 + static_cast<std::uint32_t>(rng.NextBelow(3));

  s.delay_lo = 1;
  s.delay_hi = 4 + rng.NextBelow(12);

  // --- Byzantine servers: up to f, biased toward talkative strategies.
  const std::uint32_t byz_count =
      static_cast<std::uint32_t>(rng.NextBelow(s.f + 1));
  for (std::uint32_t i = 0; i < byz_count; ++i) {
    ByzantineServerSpec spec;
    spec.server = static_cast<std::uint32_t>(rng.NextBelow(s.n()));
    spec.strategy = rng.NextBool(0.7)
                        ? Pick(rng, kTalkativeStrategies)
                        : Pick(rng, kAllByzantineStrategies);
    s.byz_servers.push_back(spec);
  }

  // --- Directed slowdowns: the scripted-adversary ingredient. Slowing
  // one client's path to a few servers lets its write quorums complete
  // without them while other clients still hear those servers promptly
  // — the Theorem 1 schedule shape, found here by chance composition.
  if (rng.NextBool(0.6)) {
    const std::uint32_t lagged =
        1 + static_cast<std::uint32_t>(rng.NextBelow(s.f));
    const std::uint32_t victim_client =
        static_cast<std::uint32_t>(rng.NextBelow(s.n_clients));
    for (std::uint32_t i = 0; i < lagged; ++i) {
      ChannelSlowdown slow;
      slow.client = victim_client;
      slow.server = static_cast<std::uint32_t>(rng.NextBelow(s.n()));
      slow.client_to_server = rng.NextBool(0.8);
      slow.delay = 40 + rng.NextBelow(120);
      s.slowdowns.push_back(slow);
      // Usually slow both phases of the same write (FLUSH and WRITE ride
      // the same channel), occasionally the reply direction too.
      if (rng.NextBool(0.3)) {
        ChannelSlowdown back = slow;
        back.client_to_server = !slow.client_to_server;
        back.delay = 40 + rng.NextBelow(120);
        s.slowdowns.push_back(back);
      }
    }
  }

  // --- Byzantine clients (in-model attackers only).
  if (options.enable_byzantine_clients && rng.NextBool(0.25)) {
    ByzantineClientSpec spec;
    spec.strategy = Pick(rng, kInModelClientStrategies);
    spec.rounds = 8 + static_cast<std::uint32_t>(rng.NextBelow(56));
    s.byz_clients.push_back(spec);
  }

  // --- Transient faults: an initial burst (arbitrary starting state,
  // the paper's core premise) and sometimes a mid-run burst that
  // re-anchors the checked suffix.
  auto add_fault_burst = [&](VirtualTime at) {
    const std::size_t count = 1 + rng.NextBelow(4);
    for (std::size_t i = 0; i < count; ++i) {
      FaultInjection fault;
      fault.at = at;
      switch (rng.NextBelow(4)) {
        case 0:
          fault.kind = FaultKind::kCorruptServer;
          fault.a = static_cast<std::uint32_t>(rng.NextBelow(s.n()));
          break;
        case 1:
          fault.kind = FaultKind::kCorruptClient;
          fault.a = static_cast<std::uint32_t>(rng.NextBelow(s.n_clients));
          break;
        case 2:
          fault.kind = FaultKind::kGarbageFrames;
          fault.a = static_cast<std::uint32_t>(rng.NextBelow(s.n_clients));
          fault.b = static_cast<std::uint32_t>(rng.NextBelow(s.n()));
          fault.count = 1 + static_cast<std::uint32_t>(rng.NextBelow(4));
          break;
        default:
          fault.kind = FaultKind::kScrambleChannel;
          fault.a = static_cast<std::uint32_t>(rng.NextBelow(s.n_clients));
          fault.b = static_cast<std::uint32_t>(rng.NextBelow(s.n()));
          break;
      }
      s.faults.push_back(fault);
    }
  };
  if (rng.NextBool(0.5)) add_fault_burst(0);
  if (rng.NextBool(0.2)) add_fault_burst(50 + rng.NextBelow(400));

  // --- Workload: enough operations that write/write/read chains with
  // different writers occur, small enough that a run stays in the tens
  // of milliseconds.
  s.ops_per_client = 6 + static_cast<std::uint32_t>(rng.NextBelow(15));
  s.write_percent = 30 + static_cast<std::uint32_t>(rng.NextBelow(50));
  s.max_think_time = 5 + rng.NextBelow(40);
  s.max_events = 4'000'000;

  // --- Mux / shared-FLUSH ingredient: sometimes run the whole scenario
  // through one MuxClient with batched shared FLUSH rounds (per-key
  // regularity). When Byzantine servers are present, usually make them
  // equivocate the node-flush acks too — the attack surface the shared
  // round adds. Drawn from a stream forked off the scenario seed so the
  // campaign rng sequence (every other dimension) is unchanged by this
  // ingredient's existence. Sub-resilient topologies stay on the plain
  // path: Theorem 1's counterexample needs two clients contending on
  // one register, which the per-key mux workload cannot express.
  if (s.extra > 0) {
    std::uint64_t mux_salt = s.seed ^ 0x5B4FCAB96D3EA1ull;
    const std::uint64_t draw = SplitMix64(mux_salt);
    if ((draw & 0xFF) < 64) {  // p = 0.25
      s.mux_window = 2 + static_cast<std::uint32_t>((draw >> 8) % 15);
      if (!s.byz_servers.empty() && ((draw >> 16) & 0xFF) < 179) {  // 0.7
        s.mux_flush_equivocate = 1;
      }
    }
  }

  s.Normalize();
  return s;
}

}  // namespace sbft::fuzz
