// Bounded labels for the k-stabilizing bounded labeling system of
// Alon, Attiya, Dolev, Dubois, Potop-Butucaru, Tixeuil (DISC 2010),
// which the paper (Definition 2) uses to timestamp write operations.
//
// Construction (the paper cites [18] without repeating it; this is the
// standard sting/antisting construction):
//   * fix k >= 2 and a finite domain D = {0, ..., m-1} with m = k^2+k+1;
//   * a label is a pair (sting s in D, antistings A subset of D, |A| = k,
//     s not in A);
//   * order:  l_i < l_j  iff  s_i in A_j  and  s_j not in A_i;
//   * next(L') for |L'| <= k: A_new := {stings of L'} padded to size k,
//     s_new := smallest domain element outside (union of antistings of
//     L') and outside A_new. At most k*k + k elements are excluded, so a
//     sting always exists, and by construction every l in L' satisfies
//     l < next(L').
//
// The relation < is antisymmetric but NOT transitive — that is the price
// of boundedness, and exactly why the protocol reasons with Weighted
// Timestamp Graphs instead of a single maximum.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/small_vector.hpp"

namespace sbft {

/// Parameters of the labeling system: k is the maximum cardinality of a
/// label set that next() must dominate (Definition 2 of the paper).
struct LabelParams {
  std::uint32_t k = 2;

  /// Size of the label domain D. Correctness of next() needs only
  /// k^2 + k + 1 (k^2 excludes every antisting of k input labels, +k
  /// keeps the fresh sting outside its own antisting set, +1 guarantees
  /// an element remains). We provision 4x that: the slack stretches the
  /// sting-rotation period of next() (see labeling_system.cpp) so that
  /// labels of writes still inside the servers' old_vals window never
  /// collide with freshly issued ones. Wire size is unaffected — a label
  /// is one sting plus exactly k antistings regardless of domain size.
  [[nodiscard]] std::uint32_t Domain() const {
    return 4 * (k * k + k) + 1;
  }

  friend bool operator==(const LabelParams&, const LabelParams&) = default;
};

/// One bounded label. Invariants (when valid for params p):
///   sting < p.Domain(); antistings sorted, distinct, all < p.Domain(),
///   exactly p.k of them, and sting is not among them.
/// A Label object may hold arbitrary garbage after a transient fault;
/// IsValid/Sanitize handle that case explicitly.
/// Antisting sets hold exactly k elements (k = n; n <= 16 across the
/// experiment suite), so inline storage covers every real label and the
/// heap fallback only fires for fault-injected garbage.
using AntistingSet = SmallVector<std::uint32_t, 16>;

struct Label {
  std::uint32_t sting = 0;
  AntistingSet antistings;

  friend bool operator==(const Label&, const Label&) = default;

  /// Deterministic total order on representations. This is NOT the
  /// temporal precedence relation — it is used only for canonical
  /// tie-breaking and container keys.
  [[nodiscard]] std::strong_ordering CompareRepr(const Label& other) const;

  [[nodiscard]] std::string ToString() const;

  // Inline: labels are the most-serialized structure in the protocol
  // (one per timestamp, ~7 timestamps per quorum reply), and the codec
  // loop is hot enough that the out-of-line call cost showed in
  // bench_hotpath profiles.
  void Encode(BufWriter& w) const {
    w.Put<std::uint32_t>(sting);
    w.PutIntegralRun<std::uint32_t>(antistings);
  }
  static Label Decode(BufReader& r) {
    Label label;
    label.sting = r.Get<std::uint32_t>();
    r.GetIntegralRun<std::uint32_t>(label.antistings);
    return label;
  }
};

/// True iff `label` satisfies every structural invariant for `params`.
[[nodiscard]] bool IsValid(const Label& label, const LabelParams& params);

/// Coerce arbitrary bytes into a valid label, deterministically.
/// Self-stabilization requires every code path to make progress from
/// arbitrary state, so garbage labels are normalized rather than
/// rejected: sting is reduced mod Domain(), antistings are reduced,
/// deduplicated and padded/truncated to exactly k elements != sting.
[[nodiscard]] Label Sanitize(Label label, const LabelParams& params);

/// The temporal precedence relation (Definition 2): a < b.
[[nodiscard]] bool Precedes(const Label& a, const Label& b,
                            const LabelParams& params);

/// A fixed valid label, used for clean bootstraps (a freshly started,
/// uncorrupted server). Any valid label works; this one is canonical.
[[nodiscard]] Label InitialLabel(const LabelParams& params);

/// A uniformly random *valid* label — models a corrupted-but-plausible
/// state. (For corrupted-and-implausible states the fault injector
/// writes raw garbage and relies on Sanitize at use sites.)
[[nodiscard]] Label RandomValidLabel(Rng& rng, const LabelParams& params);

/// A random, possibly structurally invalid label (arbitrary memory).
[[nodiscard]] Label RandomGarbageLabel(Rng& rng, const LabelParams& params);

}  // namespace sbft
