// FNV-1a hashing, used for value fingerprints in the Weighted Timestamp
// Graph and for deterministic tie-breaking. Not cryptographic — the
// threat model of the paper has no message authentication either (the
// algorithm tolerates Byzantine servers by counting witnesses, not by
// verifying signatures).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace sbft {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

constexpr std::uint64_t Fnv1a(std::span<const std::uint8_t> data,
                              std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

constexpr std::uint64_t Fnv1a(std::string_view text,
                              std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Mix an integer into a running hash (order-sensitive).
constexpr std::uint64_t HashCombine(std::uint64_t h, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (v >> shift) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

/// Finalizing bit-mixer (splitmix64's): XOR-shifts propagate high bits
/// DOWN, which FNV's multiply never does, so nearby inputs land far
/// apart. Required wherever hash values are used as POSITIONS (the
/// shard map's consistent-hash ring): raw FNV of sequential integers
/// forms an arithmetic progression whose points cluster on small
/// prefixes — measurably: the first 256 register ids split 126/3/67/60
/// over 4 groups unmixed, ~64 each mixed.
constexpr std::uint64_t AvalancheMix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// Hash functor keying unordered containers by a byte string (std::hash
/// has no std::vector<std::uint8_t> specialization). Deterministic
/// across runs, unlike address-seeded hashing, so checker diagnostics
/// stay reproducible.
struct BytesHash {
  std::size_t operator()(std::span<const std::uint8_t> data) const noexcept {
    return static_cast<std::size_t>(Fnv1a(data));
  }
};

}  // namespace sbft
