// Twin of bad_raw_alloc.cpp: the buffer is acquired from the caller's
// pool and reuses its capacity. Must pass clean.
#include <cstdint>
#include <vector>

namespace sbft {

template <typename Pool>
std::vector<std::uint8_t> CopyFrame(Pool& pool, const std::uint8_t* data,
                                    std::size_t size) {
  std::vector<std::uint8_t> frame = pool.Acquire();
  frame.assign(data, data + size);
  return frame;
}

}  // namespace sbft
