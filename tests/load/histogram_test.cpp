// Regression tests over the log-linear histogram math that
// bench_throughput and bench_load percentiles now rest on: bucket
// index/value round-trips, the advertised error bound against exact
// nearest-rank percentiles, and merge semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "load/histogram.hpp"

namespace sbft::load {
namespace {

/// Exact nearest-rank percentile matching LatencyHistogram::Percentile's
/// target rank (ceil-ish via +0.5), for ground truth.
std::uint64_t ExactPercentile(std::vector<std::uint64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const auto target = static_cast<std::size_t>(std::max<double>(
      1.0, q * static_cast<double>(values.size()) + 0.5));
  return values[std::min(target, values.size()) - 1];
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < LatencyHistogram::kSub; ++v) {
    EXPECT_EQ(LatencyHistogram::ValueAt(LatencyHistogram::IndexOf(v)), v);
  }
}

TEST(LatencyHistogram, IndexValueRoundTripWithinBound) {
  // For any value, the representative of its bucket is within the
  // advertised worst-case relative error (2^-(kSubBits-1) ~ 3.1%).
  Rng rng(21);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.NextBelow(1ull << 40) + 1;
    const std::uint64_t rep =
        LatencyHistogram::ValueAt(LatencyHistogram::IndexOf(v));
    const double err =
        std::abs(static_cast<double>(rep) - static_cast<double>(v)) /
        static_cast<double>(v);
    ASSERT_LE(err, 0.032) << "value " << v << " -> rep " << rep;
  }
}

TEST(LatencyHistogram, IndicesAreMonotoneAndInRange) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 1'000'000; v += 37) {
    const std::size_t index = LatencyHistogram::IndexOf(v);
    ASSERT_LT(index, LatencyHistogram::kBuckets);
    ASSERT_GE(index, prev);
    prev = index;
  }
  // Absurdly large values clamp into the top bucket instead of
  // indexing out of bounds.
  EXPECT_LT(LatencyHistogram::IndexOf(~0ull), LatencyHistogram::kBuckets);
}

TEST(LatencyHistogram, CountMeanMaxExact) {
  LatencyHistogram h;
  std::uint64_t sum = 0;
  for (std::uint64_t v : {3ull, 77ull, 1024ull, 500'000ull, 12ull}) {
    h.Record(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.max(), 500'000u);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) / 5.0);
}

TEST(LatencyHistogram, EmptyPercentileIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

class PercentileAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileAccuracy, WithinRelativeErrorOfExact) {
  // The coordinated-omission fix moved bench percentiles onto this
  // histogram: pin its accuracy against exact nearest-rank math over a
  // long-tailed sample resembling queueing latencies.
  Rng rng(GetParam());
  LatencyHistogram h;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 30000; ++i) {
    // Mixture: 90% "fast path" around 100-2000us, 10% long tail.
    const bool tail = rng.NextBool(0.1);
    const std::uint64_t v = tail ? 10'000 + rng.NextBelow(2'000'000)
                                 : 100 + rng.NextBelow(1900);
    values.push_back(v);
    h.Record(v);
  }
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::uint64_t exact = ExactPercentile(values, q);
    const auto approx = static_cast<double>(h.Percentile(q));
    ASSERT_NEAR(approx, static_cast<double>(exact),
                std::max(1.0, 0.032 * static_cast<double>(exact)))
        << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileAccuracy,
                         ::testing::Values(1u, 2u, 3u));

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
  Rng rng(5);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.NextBelow(1'000'000);
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Percentile(q), combined.Percentile(q)) << "q=" << q;
  }
}

}  // namespace
}  // namespace sbft::load
