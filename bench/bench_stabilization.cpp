// E2: pseudo-stabilization (Theorem 2). From arbitrary initial
// configurations (corrupted servers / channels / clients / all three,
// with and without Byzantine servers), measure:
//   * read outcomes BEFORE the first complete write (aborts and garbage
//     are permitted there);
//   * regularity violations AFTER the first complete write (the paper
//     predicts exactly zero);
//   * virtual-time cost of the stabilizing write.
#include <cstring>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "spec/regular_checker.hpp"
#include "spec/workload.hpp"

using namespace sbft;
using namespace sbft::bench;

namespace {

struct Scenario {
  const char* name;
  bool corrupt_servers;
  bool corrupt_channels;
  bool corrupt_clients;
  bool byzantine;
};

constexpr Scenario kScenarios[] = {
    {"clean", false, false, false, false},
    {"servers", true, false, false, false},
    {"channels", false, true, false, false},
    {"clients", false, false, true, false},
    {"all", true, true, true, false},
    {"all+byz", true, true, true, true},
};

}  // namespace

int main(int argc, char** argv) {
  JsonReport json("stabilization", ParseBenchArgs(argc, argv));
  Header("E2 (Theorem 2)",
         "pseudo-stabilization from arbitrary initial configurations "
         "(n=6, f=1, 40 seeded runs each)");
  Row("%-10s | %-28s | %-28s | %s", "corruption",
      "pre-write reads (ok/abort/garb)", "post-write violations",
      "stabilizing write ticks (mean)");

  const int kRuns = json.smoke() ? 8 : 40;
  for (const Scenario& scenario : kScenarios) {
    std::uint64_t pre_ok = 0, pre_abort = 0, pre_garbage = 0;
    std::uint64_t violations = 0, checked_runs = 0;
    std::vector<double> write_ticks;

    for (int run = 0; run < kRuns; ++run) {
      Deployment::Options options;
      options.config = ProtocolConfig::ForServers(6);
      options.seed = 1000 + static_cast<std::uint64_t>(run);
      options.n_clients = 2;
      if (scenario.byzantine) {
        options.byzantine[run % 6] =
            kAllByzantineStrategies[run % std::size(kAllByzantineStrategies)];
      }
      Deployment deployment(std::move(options));
      if (scenario.corrupt_servers) deployment.CorruptAllCorrectServers();
      if (scenario.corrupt_channels) deployment.CorruptAllChannels(2);
      if (scenario.corrupt_clients) {
        deployment.CorruptClient(0);
        deployment.CorruptClient(1);
      }

      // Pre-write probes: three reads before any write.
      for (int i = 0; i < 3; ++i) {
        auto read = deployment.Read(1, 200'000);
        if (!read.completed) continue;
        switch (read.outcome.status) {
          case OpStatus::kOk:
            if (read.outcome.value.empty()) {
              pre_ok++;  // pristine initial value
            } else {
              pre_garbage++;
            }
            break;
          case OpStatus::kAborted:
            pre_abort++;
            break;
          default:
            break;
        }
      }

      // The stabilizing write, then a checked concurrent workload.
      auto write = deployment.Write(0, Value{0xAA}, 500'000);
      if (!write.completed || write.outcome.status != OpStatus::kOk) {
        continue;
      }
      write_ticks.push_back(
          static_cast<double>(write.returned_at - write.invoked_at));

      WorkloadOptions workload;
      workload.ops_per_client = 10;
      workload.seed = 77 + static_cast<std::uint64_t>(run);
      auto result = RunConcurrentWorkload(deployment, workload);
      if (!result.all_completed) continue;
      checked_runs++;
      CheckOptions check;
      check.stabilized_from = 0;  // already post-first-write
      check.grandfathered_values = {Value{0xAA}, Value{}};
      auto report = CheckRegular(result.history, check);
      violations += report.violations.size();
    }

    char pre[64];
    std::snprintf(pre, sizeof(pre), "%llu/%llu/%llu",
                  static_cast<unsigned long long>(pre_ok),
                  static_cast<unsigned long long>(pre_abort),
                  static_cast<unsigned long long>(pre_garbage));
    char post[64];
    std::snprintf(post, sizeof(post), "%llu in %llu checked runs",
                  static_cast<unsigned long long>(violations),
                  static_cast<unsigned long long>(checked_runs));
    Row("%-10s | %-28s | %-28s | %.0f", scenario.name, pre, post,
        Mean(write_ticks));
    const std::string key = scenario.name;
    json.Metric(key + ".post_write_violations",
                static_cast<double>(violations), "violations");
    json.Metric(key + ".checked_runs", static_cast<double>(checked_runs),
                "runs");
    json.Metric(key + ".stabilizing_write_ticks", Mean(write_ticks),
                "ticks");
  }
  Row("%s", "\nexpected shape: garbage/aborts appear only pre-write and "
            "only under corruption; post-write violations are 0 everywhere "
            "(pseudo-stabilization).");
  return json.Flush() ? 0 : 1;
}
