#include "runtime/link_shaper.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace sbft {
namespace {

std::uint64_t NowUs() {
  using Clock = std::chrono::steady_clock;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now().time_since_epoch())
          .count());
}

}  // namespace

LinkShaper::LinkShaper(LinkShaping options, ForwardFn forward)
    : options_(options), forward_(std::move(forward)), rng_(options.seed) {}

LinkShaper::~LinkShaper() { Stop(); }

void LinkShaper::Start() {
  {
    MutexLock lock(mutex_);
    if (running_) return;
    running_ = true;
  }
  thread_ = std::thread([this] { Loop(); });
}

void LinkShaper::Stop() {
  {
    MutexLock lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  wake_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  MutexLock lock(mutex_);
  heap_.clear();  // teardown: in-flight shaped frames are dropped
}

bool LinkShaper::Offer(NodeId src, NodeId dst, Frame&& frame) {
  std::uint64_t delay;
  {
    MutexLock lock(mutex_);
    if (!running_) return false;
    if (options_.loss_prob > 0.0 && rng_.NextBool(options_.loss_prob)) {
      ++dropped_;
      return true;  // consumed: silently lost
    }
    delay = options_.delay_us;
    if (options_.jitter_us != 0) {
      delay += rng_.NextBelow(options_.jitter_us + 1);
    }
    if (delay == 0) return false;  // survived a lossy-only link
    Pending pending{NowUs() + delay, next_order_++, src, dst,
                    std::move(frame)};
    heap_.push_back(std::move(pending));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++delayed_;
  }
  wake_.NotifyOne();
  return true;
}

void LinkShaper::Loop() {
  std::vector<Pending> due;
  while (true) {
    {
      MutexLock lock(mutex_);
      if (!running_) return;
      const std::uint64_t now = NowUs();
      while (!heap_.empty() && heap_.front().release_us <= now) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        due.push_back(std::move(heap_.back()));
        heap_.pop_back();
      }
      if (due.empty()) {
        if (heap_.empty()) {
          wake_.Wait(mutex_);
        } else {
          wake_.WaitFor(mutex_, std::chrono::microseconds(
                                    heap_.front().release_us - now));
        }
      }
    }
    // Forward outside the lock: the forward fn takes mailbox locks.
    for (Pending& pending : due) {
      forward_(pending.src, pending.dst, std::move(pending.frame));
    }
    due.clear();
  }
}

}  // namespace sbft
