// Message-order validation against the Figure 4 / Lemma 5 structure.
//
// Facts 1-4 of Lemma 5, restated as a checkable pattern per
// (client, server, read label):
//   a READ(l) may be sent to a server only after a FLUSH(l) was sent to
//   it and the matching FLUSH_ACK(l) was delivered back (facts 1-3), and
//   every REPLY(l) the client counts arrives after its READ(l) (fact 4,
//   implied by causality but asserted over the recorded trace anyway).
//
// The checker consumes a World trace (sends and deliveries in virtual-
// time order) and reports every violation of this discipline by a
// correct client against a correct server. Byzantine nodes are excluded:
// they may emit anything.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace sbft {

struct TraceCheckReport {
  bool ok = true;
  std::vector<std::string> violations;
  std::uint64_t reads_checked = 0;
  std::uint64_t flush_rounds = 0;
  std::uint64_t replies_seen = 0;
};

[[nodiscard]] TraceCheckReport CheckReadMessageOrder(
    const std::vector<TraceEvent>& events, const std::set<NodeId>& clients,
    const std::set<NodeId>& correct_servers);

}  // namespace sbft
