// Deployment parameters of the register emulation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "sim/types.hpp"

namespace sbft {

/// Static configuration shared by all protocol participants. The paper's
/// resilience bound is n > 5f (Theorems 1-3); ForServers() picks the
/// largest tolerated f and Validate() enforces the bound, except that
/// benches may construct deliberately under-provisioned configs (e.g.
/// n = 5f for the Theorem 1 replay) by setting `allow_unsafe`.
struct ProtocolConfig {
  std::uint32_t n = 6;  // number of servers
  std::uint32_t f = 1;  // bound on Byzantine servers

  /// Labeling parameter k of Definition 2. The writer feeds up to n
  /// collected timestamps into next(), so k >= n.
  std::uint32_t k = 8;

  /// Length of each server's old_vals sliding window (paper: n entries,
  /// "the last n written values"). E6 ablates this.
  std::uint32_t history_window = 6;

  /// Bounded per-client label pools (>= 2 suffices; see Figure 3).
  std::uint32_t read_label_count = 4;
  std::uint32_t write_label_count = 4;

  /// Cap on the per-server running-reads table. The paper bounds it by
  /// the (finite) number of clients; a corrupted table may hold garbage
  /// entries, so we bound it explicitly and evict oldest.
  std::uint32_t max_running_reads = 64;

  /// Maximum automatic retries when a write observes a quorum of
  /// replies yet fewer than 2f+1 ACKs (possible only under write
  /// concurrency or pre-stabilization; see DESIGN.md reconstruction
  /// notes). 0 reproduces the paper's blocking semantics.
  std::uint32_t write_retry_limit = 32;

  /// Figure 1 server side: forward each adopted write to readers in the
  /// running_read table. Ablated in bench E6 — with forwarding on, reads
  /// concurrent with write bursts virtually always certify on the local
  /// graph; with it off they fall back to the union graph and, when the
  /// burst exceeds the old_vals window, abort (the regime Assumption 2
  /// excludes).
  bool forward_to_running_reads = true;

  /// Harden operation-label matching with a bounded epoch counter
  /// (24 bits) prepended to the pool index. The paper's pure scheme
  /// (false) matches replies by pool index alone; an ack from a previous
  /// use of the same label is then indistinguishable from a fresh one,
  /// which under adversarial delay lets up to f stale-correct replies
  /// into a read quorum and erodes the (exactly tight) 2f+1 witness
  /// intersection — observed as rare stale reads in randomized runs.
  /// Epochs keep labels bounded while making aliasing require ~2^24
  /// operations' worth of in-flight traffic. Ablated in bench E8.
  bool epoch_extended_op_labels = true;

  bool allow_unsafe = false;

  /// Replies a client must collect before deciding: n - f.
  [[nodiscard]] std::uint32_t Quorum() const { return n - f; }
  /// Witnesses a value needs in a WTsG: 2f + 1.
  [[nodiscard]] std::uint32_t WitnessThreshold() const { return 2 * f + 1; }

  void Validate() const {
    SBFT_ASSERT(n >= 1);
    SBFT_ASSERT(allow_unsafe || n > 5 * f);
    SBFT_ASSERT(k >= n);
    SBFT_ASSERT(k >= 2);
    SBFT_ASSERT(read_label_count >= 2);
    SBFT_ASSERT(write_label_count >= 2);
    SBFT_ASSERT(history_window >= 1);
  }

  /// Canonical config for n servers: f = floor((n-1)/5), k = n (min 2),
  /// history window = n, as in the paper.
  static ProtocolConfig ForServers(std::uint32_t n) {
    ProtocolConfig config;
    config.n = n;
    config.f = n >= 6 ? (n - 1) / 5 : 0;
    config.k = n < 2 ? 2 : n;
    config.history_window = n;
    config.Validate();
    return config;
  }
};

}  // namespace sbft
