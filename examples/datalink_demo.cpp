// Stabilizing data-link demo: the substrate the paper assumes away in
// §II ("reliable FIFO channels … ensured by a stabilization preserving
// data-link protocol [8]"). Sends a message sequence over a bounded,
// lossy, reordering channel whose initial content is garbage, and shows
// the delivered stream converging to exactly the sent sequence.
//
//   $ ./build/examples/datalink_demo
#include <cstdio>
#include <string>
#include <vector>

#include "net/datalink.hpp"
#include "net/lossy_channel.hpp"

using namespace sbft;

int main() {
  const std::size_t kCapacity = 4;
  LossyChannel forward({kCapacity, /*drop=*/0.25}, Rng(101));
  LossyChannel backward({kCapacity, /*drop=*/0.25}, Rng(202));

  std::vector<std::string> delivered;
  DataLinkSender sender(kCapacity);
  DataLinkReceiver receiver(kCapacity, [&](Bytes m) {
    delivered.emplace_back(m.begin(), m.end());
  });

  // Arbitrary initial configuration: garbage everywhere.
  Rng corruption(303);
  sender.CorruptState(corruption);
  receiver.CorruptState(corruption);
  forward.PreloadGarbage(kCapacity);
  backward.PreloadGarbage(kCapacity);
  std::printf("initial state: corrupted sender+receiver, channels full of "
              "garbage (capacity %zu, 25%% loss, reordering)\n",
              kCapacity);

  const int kMessages = 12;
  for (int i = 0; i < kMessages; ++i) {
    const std::string text = "msg-" + std::to_string(i);
    sender.Submit(Bytes(text.begin(), text.end()));
  }

  // Note: the corrupted sender may believe a phantom "message" was in
  // flight and count one extra completion, so run until it is idle (all
  // genuinely submitted messages confirmed) rather than counting.
  int rounds = 0;
  while (!sender.idle() && rounds < 1'000'000) {
    ++rounds;
    if (auto frame = sender.Tick()) forward.Push(std::move(*frame));
    if (auto frame = forward.Pop()) {
      if (auto ack = receiver.OnFrame(*frame)) {
        backward.Push(std::move(*ack));
      }
    }
    if (auto frame = backward.Pop()) sender.OnFrame(*frame);
  }

  std::printf("completed %zu/%d messages in %d channel rounds\n",
              sender.completed(), kMessages, rounds);
  std::printf("delivered stream (garbage prefix allowed, correct suffix "
              "required):\n");
  for (const std::string& m : delivered) {
    std::string clean = m;
    for (char& c : clean) {
      if (c < 0x20 || c > 0x7E) c = '?';
    }
    std::printf("  %s\n", clean.c_str());
  }

  // Verify the suffix property.
  int expect = kMessages - 1;
  for (auto it = delivered.rbegin(); it != delivered.rend() && expect >= 0;
       ++it) {
    if (*it == "msg-" + std::to_string(expect)) --expect;
  }
  const bool ok = expect < static_cast<int>(kCapacity) + 2;
  std::printf("%s\n", ok ? "suffix converged to the sent sequence"
                         : "SUFFIX CHECK FAILED");
  return ok ? 0 : 1;
}
