// Weighted Timestamp Graph (Definition 3).
//
// Vertices are distinct (timestamp, value) pairs — see DESIGN.md for why
// the value participates in the key: with timestamp-only vertices a
// Byzantine server could attach garbage values to the legitimate newest
// timestamp and poison its witness count. The weight of a vertex is the
// number of *distinct servers* witnessing the pair; a directed edge
// (u, v) exists when u.ts precedes v.ts in the bounded label order.
//
// The reader builds two graphs (Figure 2 lines 09 and 15):
//   * the local graph over the current (value, ts) of each replier;
//   * the union graph additionally folding in each replier's old_vals
//     history, so values displaced by concurrent writes keep witnesses.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "net/message.hpp"

namespace sbft {

class Wtsg {
 public:
  explicit Wtsg(const LabelParams& params) : params_(params) {}

  /// Record that `server` witnesses `vv`. Repeated witnessing by the
  /// same server for the same vertex counts once (a server reporting a
  /// pair both as current and in its history is still one witness).
  void AddWitness(std::size_t server, const VersionedValue& vv);

  struct Node {
    VersionedValue vv;
    std::vector<std::size_t> witnesses;  // sorted server indices
    [[nodiscard]] std::size_t weight() const { return witnesses.size(); }
  };

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Number of precedence edges among vertices (diagnostics/tests).
  [[nodiscard]] std::size_t EdgeCount() const;
  [[nodiscard]] bool HasEdge(const VersionedValue& from,
                             const VersionedValue& to) const;

  /// The decision rule of Figure 2 lines 10/16: among vertices with
  /// weight >= threshold, return the one maximal under the timestamp
  /// selection order (deterministic; see Timestamp::SelectionLess).
  /// nullopt when no vertex qualifies.
  [[nodiscard]] std::optional<VersionedValue> FindWitnessed(
      std::size_t threshold) const;

  [[nodiscard]] std::string ToString() const;

 private:
  LabelParams params_;
  std::vector<Node> nodes_;
};

}  // namespace sbft
