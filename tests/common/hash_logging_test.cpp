// Hashing and logging utilities.
#include <gtest/gtest.h>

#include "common/hash.hpp"
#include "common/logging.hpp"

namespace sbft {
namespace {

TEST(Hash, Fnv1aKnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(Fnv1a("a"), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(Fnv1a("foobar"), 0x85944171F73967E8ull);
}

TEST(Hash, BytesAndStringAgree) {
  const char* text = "register";
  std::vector<std::uint8_t> bytes(text, text + 8);
  EXPECT_EQ(Fnv1a(std::string_view(text)),
            Fnv1a(std::span<const std::uint8_t>(bytes)));
}

TEST(Hash, CombineIsOrderSensitive) {
  const std::uint64_t a = HashCombine(HashCombine(kFnvOffset, 1), 2);
  const std::uint64_t b = HashCombine(HashCombine(kFnvOffset, 2), 1);
  EXPECT_NE(a, b);
}

TEST(Hash, ConstexprUsable) {
  constexpr std::uint64_t h = Fnv1a("compile-time");
  static_assert(h != 0);
  EXPECT_NE(h, 0u);
}

TEST(Logging, LevelRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kNone);
  EXPECT_EQ(GetLogLevel(), LogLevel::kNone);
  // Emitting below threshold must be a no-op (and not crash).
  SBFT_LOG_DEBUG << "suppressed " << 42;
  SetLogLevel(before);
}

}  // namespace
}  // namespace sbft
