#include "core/byzantine.hpp"

namespace sbft {
namespace {

class SilentServer final : public RegisterServer {
 public:
  using RegisterServer::RegisterServer;
  void OnFrame(NodeId, BytesView, IEndpoint&) override {}
};

class GarbageServer final : public RegisterServer {
 public:
  GarbageServer(const ProtocolConfig& config, std::size_t index,
                std::uint64_t seed)
      : RegisterServer(config, index), noise_(seed) {}

  void OnFrame(NodeId from, BytesView, IEndpoint& endpoint) override {
    // Reply to everything with a burst of random frames. Some will fail
    // to decode, some will decode into random well-formed messages.
    const auto burst = 1 + noise_.NextBelow(3);
    for (std::uint64_t i = 0; i < burst; ++i) {
      endpoint.Send(from, RandomBytes(noise_, 1 + noise_.NextBelow(48)));
    }
  }

 private:
  Rng noise_;
};

// Reports its initial state forever; ACKs writes without adopting them.
class StaleReplayServer final : public RegisterServer {
 public:
  StaleReplayServer(const ProtocolConfig& config, std::size_t index,
                    std::uint64_t seed)
      : RegisterServer(config, index) {
    Rng rng(seed);
    // A plausible stale state: a valid label unrelated to the current run.
    frozen_.value = RandomBytes(rng, 4);
    frozen_.ts = Timestamp{RandomValidLabel(rng, labels().params()),
                           static_cast<ClientId>(rng.NextBelow(8))};
    SetState(frozen_);
  }

 protected:
  void HandleGetTs(NodeId from, const GetTsMsg& msg,
                   IEndpoint& endpoint) override {
    TsReplyMsg reply{frozen_.ts, msg.op_label};
    endpoint.Send(from, EncodeMessage(Message(reply)));
  }
  void HandleWrite(NodeId from, const WriteMsg& msg,
                   IEndpoint& endpoint) override {
    WriteReplyMsg reply{true, msg.op_label};  // lie: "accepted as new"
    endpoint.Send(from, EncodeMessage(Message(reply)));
  }
  void HandleRead(NodeId from, const ReadMsg& msg,
                  IEndpoint& endpoint) override {
    ReplyMsg reply;
    reply.value = frozen_.value;
    reply.ts = frozen_.ts;
    reply.old_vals = {AsWire(frozen_)};
    reply.label = msg.label;
    endpoint.Send(from, EncodeMessage(Message(reply)));
  }

 private:
  VersionedValue frozen_;
};

// Tracks the honest state but reports fabricated values under the
// legitimate timestamp, a different one per destination.
class EquivocateServer final : public RegisterServer {
 public:
  EquivocateServer(const ProtocolConfig& config, std::size_t index,
                   std::uint64_t seed)
      : RegisterServer(config, index), noise_(seed) {}

 protected:
  void HandleRead(NodeId from, const ReadMsg& msg,
                  IEndpoint& endpoint) override {
    // Forged values need owned storage: ReplyMsg carries views, and a
    // view of a temporary would dangle before the encode below.
    const Bytes forged = RandomBytes(noise_, 4);
    std::vector<Bytes> forged_hist;
    forged_hist.reserve(old_vals().size());
    ReplyMsg reply;
    reply.value = forged;  // forged value, real timestamp
    reply.ts = current().ts;
    for (const VersionedValue& old : old_vals()) {
      forged_hist.push_back(RandomBytes(noise_, 4));
      reply.old_vals.push_back(WireVersioned{forged_hist.back(), old.ts});
    }
    reply.label = msg.label;
    endpoint.Send(from, EncodeMessage(Message(reply)));
    (void)from;
  }

 private:
  Rng noise_;
};

// NACKs all writes, exports a fixed private timestamp.
class NackServer final : public RegisterServer {
 public:
  NackServer(const ProtocolConfig& config, std::size_t index,
             std::uint64_t seed)
      : RegisterServer(config, index) {
    Rng rng(seed);
    private_ts_ = Timestamp{RandomValidLabel(rng, labels().params()),
                            static_cast<ClientId>(rng.NextBelow(8))};
  }

 protected:
  void HandleGetTs(NodeId from, const GetTsMsg& msg,
                   IEndpoint& endpoint) override {
    TsReplyMsg reply{private_ts_, msg.op_label};
    endpoint.Send(from, EncodeMessage(Message(reply)));
  }
  void HandleWrite(NodeId from, const WriteMsg& msg,
                   IEndpoint& endpoint) override {
    WriteReplyMsg reply{false, msg.op_label};
    endpoint.Send(from, EncodeMessage(Message(reply)));
  }

 private:
  Timestamp private_ts_;
};

// Answers FLUSH only: sits inside safe sets, then starves the client.
class MuteServer final : public RegisterServer {
 public:
  using RegisterServer::RegisterServer;

 protected:
  void HandleGetTs(NodeId, const GetTsMsg&, IEndpoint&) override {}
  void HandleWrite(NodeId, const WriteMsg&, IEndpoint&) override {}
  void HandleRead(NodeId, const ReadMsg&, IEndpoint&) override {}
};

}  // namespace

std::unique_ptr<RegisterServer> MakeByzantineServer(
    ByzantineStrategy strategy, const ProtocolConfig& config,
    std::size_t server_index, std::uint64_t seed) {
  switch (strategy) {
    case ByzantineStrategy::kSilent:
      return std::make_unique<SilentServer>(config, server_index);
    case ByzantineStrategy::kGarbage:
      return std::make_unique<GarbageServer>(config, server_index, seed);
    case ByzantineStrategy::kStaleReplay:
      return std::make_unique<StaleReplayServer>(config, server_index, seed);
    case ByzantineStrategy::kEquivocate:
      return std::make_unique<EquivocateServer>(config, server_index, seed);
    case ByzantineStrategy::kNack:
      return std::make_unique<NackServer>(config, server_index, seed);
    case ByzantineStrategy::kMute:
      return std::make_unique<MuteServer>(config, server_index);
  }
  return std::make_unique<SilentServer>(config, server_index);
}

const char* ByzantineStrategyName(ByzantineStrategy strategy) {
  switch (strategy) {
    case ByzantineStrategy::kSilent:
      return "silent";
    case ByzantineStrategy::kGarbage:
      return "garbage";
    case ByzantineStrategy::kStaleReplay:
      return "stale-replay";
    case ByzantineStrategy::kEquivocate:
      return "equivocate";
    case ByzantineStrategy::kNack:
      return "nack";
    case ByzantineStrategy::kMute:
      return "mute";
  }
  return "unknown";
}

std::optional<ByzantineStrategy> ByzantineStrategyFromName(
    std::string_view name) {
  for (ByzantineStrategy strategy : kAllByzantineStrategies) {
    if (name == ByzantineStrategyName(strategy)) return strategy;
  }
  return std::nullopt;
}

}  // namespace sbft
