// Tests for the deterministic RNG: reproducibility is the foundation of
// every simulation experiment in this repo.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sbft {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent1(5), parent2(5);
  Rng child1 = parent1.Fork();
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1(), child2());
  // Parent stream continues identically after forking.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(parent1(), parent2());
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, RoughUniformity) {
  Rng rng(17);
  std::vector<int> buckets(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) buckets[rng.NextBelow(10)]++;
  for (int count : buckets) {
    EXPECT_NEAR(count, draws / 10, draws / 100);
  }
}

}  // namespace
}  // namespace sbft
