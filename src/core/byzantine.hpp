// Byzantine server strategies.
//
// A Byzantine server is an arbitrary automaton; these strategies cover
// the attack families the proofs reason about, plus generic noise:
//
//   * kSilent      — simulates a crash (cases 2/4 of Lemma 2);
//   * kGarbage     — answers every message with random bytes;
//   * kStaleReplay — joins flush rounds honestly (to get into safe sets)
//                    but forever reports its initial, possibly stale,
//                    (value, ts) and never adopts writes, while ACKing
//                    them (maximally plausible lie);
//   * kEquivocate  — tracks the legitimate register state but attaches a
//                    fabricated value to the legitimate newest timestamp
//                    (attacks timestamp-keyed witness counting; defeated
//                    by (ts,value) vertex keying, see wtsg.hpp);
//   * kNack        — participates but NACKs every write and reports a
//                    fixed private timestamp (tries to starve writers);
//   * kMute        — drops client traffic but still answers FLUSH (gets
//                    into safe sets, then withholds replies to slow the
//                    client down to the n-f quorum path).
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "core/server.hpp"

namespace sbft {

enum class ByzantineStrategy : std::uint8_t {
  kSilent,
  kGarbage,
  kStaleReplay,
  kEquivocate,
  kNack,
  kMute,
};

/// Factory: build a Byzantine server automaton with the given strategy.
/// `seed` drives any randomness in the strategy.
std::unique_ptr<RegisterServer> MakeByzantineServer(
    ByzantineStrategy strategy, const ProtocolConfig& config,
    std::size_t server_index, std::uint64_t seed);

/// All strategies, for parameterized sweeps.
inline constexpr ByzantineStrategy kAllByzantineStrategies[] = {
    ByzantineStrategy::kSilent,      ByzantineStrategy::kGarbage,
    ByzantineStrategy::kStaleReplay, ByzantineStrategy::kEquivocate,
    ByzantineStrategy::kNack,        ByzantineStrategy::kMute,
};

const char* ByzantineStrategyName(ByzantineStrategy strategy);

/// Registry lookup: inverse of ByzantineStrategyName. Scenario tokens
/// and CLI filters (tools/sbft_fuzz --byz) address strategies by name;
/// nullopt for unknown names keeps parsing total.
std::optional<ByzantineStrategy> ByzantineStrategyFromName(
    std::string_view name);

}  // namespace sbft
