// Fuzz scenarios: a complete, self-contained description of one
// simulated execution — topology around the n = 5f+1 resilience
// boundary, delay policy (base distribution plus directed per-channel
// slowdowns), Byzantine server/client mixes, transient-fault
// injections, and the randomized workload that drives it.
//
// A Scenario is the unit of everything the fuzzer does: the generator
// draws one from an Rng, the runner executes it deterministically (the
// same Scenario always produces byte-identical executions), the
// shrinker edits it, and the token codec round-trips it through a
// single-line ASCII string so a violation found on one machine replays
// anywhere. See docs/FUZZING.md for the grammar and the token format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/byzantine.hpp"
#include "core/byzantine_client.hpp"
#include "core/config.hpp"
#include "sim/types.hpp"

namespace sbft::fuzz {

/// Transient faults a scenario can inject. Faults with `at == 0` model
/// the paper's arbitrary initial configuration (applied before the
/// first event); later times model a fault burst mid-execution, after
/// which the checker window restarts at the next complete write (the
/// Definition 1 suffix is re-anchored — see runner.cpp).
enum class FaultKind : std::uint8_t {
  kCorruptServer = 0,    // World::CorruptNode on server `a`
  kCorruptClient = 1,    // World::CorruptNode on honest client `a`
  kGarbageFrames = 2,    // World::InjectGarbageFrames a->b (count frames)
  kScrambleChannel = 3,  // World::ScrambleChannel between client a/server b
};

struct FaultInjection {
  FaultKind kind = FaultKind::kCorruptServer;
  VirtualTime at = 0;
  /// Operands, interpreted per kind: kCorruptServer/kCorruptClient use
  /// `a` as the server/client index; kGarbageFrames and kScrambleChannel
  /// corrupt the client-`a` <-> server-`b` channel pair.
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t count = 0;  // kGarbageFrames: frames per direction

  friend bool operator==(const FaultInjection&, const FaultInjection&) =
      default;
};

/// A directed per-channel delay override (the scripted-adversary lever
/// of the Theorem 1 schedule: "server s was slow"). Directions matter:
/// slowing only writer->server traffic lets a server miss a write while
/// still answering a concurrent reader promptly.
struct ChannelSlowdown {
  std::uint32_t client = 0;      // client index
  std::uint32_t server = 0;      // server index
  bool client_to_server = true;  // false: server->client direction
  VirtualTime delay = 50;

  friend bool operator==(const ChannelSlowdown&, const ChannelSlowdown&) =
      default;
};

struct ByzantineServerSpec {
  std::uint32_t server = 0;
  ByzantineStrategy strategy = ByzantineStrategy::kSilent;

  friend bool operator==(const ByzantineServerSpec&,
                         const ByzantineServerSpec&) = default;
};

struct ByzantineClientSpec {
  ByzantineClientStrategy strategy = ByzantineClientStrategy::kReadFlooder;
  std::uint32_t rounds = 32;

  friend bool operator==(const ByzantineClientSpec&,
                         const ByzantineClientSpec&) = default;
};

struct Scenario {
  std::uint64_t seed = 1;

  // --- Topology: n = 5f + extra servers. extra == 0 is the provably
  // impossible setting of Theorem 1 and is only generated/replayed when
  // sub-resilience is explicitly allowed.
  std::uint32_t f = 1;
  std::uint32_t extra = 1;
  std::uint32_t n_clients = 2;

  // --- Delay policy: UniformDelay(delay_lo, delay_hi) base plus
  // directed overrides.
  VirtualTime delay_lo = 1;
  VirtualTime delay_hi = 10;
  std::vector<ChannelSlowdown> slowdowns;

  // --- Adversary mix.
  std::vector<ByzantineServerSpec> byz_servers;
  std::vector<ByzantineClientSpec> byz_clients;
  std::vector<FaultInjection> faults;

  // --- Workload.
  std::uint32_t ops_per_client = 10;
  std::uint32_t write_percent = 50;  // integral so tokens stay exact
  VirtualTime max_think_time = 20;
  std::uint64_t max_events = 4'000'000;

  // --- Mux / shared-FLUSH mode. mux_window > 0 runs the workload over
  // ONE MuxClient hosting each logical client as its own register
  // (RegisterId = index + 1) behind MuxServer replicas, with
  // protocol-round batching at this window size and node-level shared
  // FLUSH rounds on (core/mux_flush.hpp); regularity is then checked
  // per key. mux_flush_equivocate != 0 additionally makes every
  // Byzantine server equivocate the per-register labels/scopes inside
  // the node-level flush acks it sends (MakeFlushEquivocator) — the
  // sharpest shared-flush attack: the window appears to drain while
  // every per-register element of the ack lies.
  std::uint32_t mux_window = 0;
  std::uint32_t mux_flush_equivocate = 0;

  [[nodiscard]] std::uint32_t n() const { return 5 * f + extra; }
  [[nodiscard]] bool sub_resilient() const { return extra == 0; }

  /// The ProtocolConfig this scenario deploys (allow_unsafe is set for
  /// sub-resilient topologies).
  [[nodiscard]] ProtocolConfig Config() const;

  /// Canonical form: byzantine specs sorted/deduped by server index and
  /// clamped to f entries, operand indices reduced into range. The
  /// generator and the token decoder both normalize, so equal tokens
  /// mean equal executions.
  void Normalize();

  /// Human-readable multi-line description (sbft_fuzz --describe).
  [[nodiscard]] std::string Describe() const;
  /// One-line summary for campaign logs.
  [[nodiscard]] std::string Summary() const;

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

/// Replay token: "SBFZ1:" + lowercase hex of the length-prefixed binary
/// encoding, with a trailing FNV-1a checksum guarding against truncated
/// copy-paste. Stable across platforms (little-endian, fixed widths).
[[nodiscard]] std::string EncodeToken(const Scenario& scenario);

/// Decode and validate a token. Fails cleanly on bad prefix, non-hex
/// characters, checksum mismatch, trailing bytes, or out-of-range
/// fields (the same hardening discipline as the wire codec).
[[nodiscard]] Result<Scenario> DecodeToken(const std::string& token);

}  // namespace sbft::fuzz
