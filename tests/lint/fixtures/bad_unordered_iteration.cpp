// Fixture: serializes by walking an unordered_map. Must trip
// [unordered-iteration] — bucket order leaks into the output.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sbft {

std::vector<std::uint32_t> SerializeCounts(
    const std::unordered_map<std::string, std::uint32_t>& counts_in) {
  std::unordered_map<std::string, std::uint32_t> counts = counts_in;
  std::vector<std::uint32_t> out;
  for (const auto& [key, count] : counts) {
    out.push_back(count);
  }
  return out;
}

}  // namespace sbft
