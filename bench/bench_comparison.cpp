// E5: resilience matrix — the paper's protocol vs the two baseline
// families, under (i) Byzantine servers only, (ii) transient corruption
// only, (iii) both. Each cell: after the fault is injected and one
// recovery write completes, what fraction of 20 reads return the last
// written value?
//
// Predictions from the theory:
//   * ABD (crash-only, n=3):     fails (i) and (iii); corruption of its
//                                unbounded timestamps also sticks (ii);
//   * BFT-unbounded (n=4, [14]): survives (i); saturated-timestamp
//                                corruption is permanent in (ii)/(iii);
//   * this paper (n=6):          survives all three (Theorem 2).
#include <array>
#include <limits>
#include <memory>
#include <string>

#include "baselines/abd.hpp"
#include "baselines/bft_unbounded.hpp"
#include "bench_json.hpp"
#include "bench_util.hpp"
#include "core/deployment.hpp"
#include "sim/parallel.hpp"

using namespace sbft;
using namespace sbft::bench;

namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

constexpr int kReads = 20;

// --- ABD arm -------------------------------------------------------------

int RunAbd(bool byzantine, bool corruption, std::uint64_t seed) {
  World world(World::Options{seed, nullptr});
  std::vector<AbdServer*> servers;
  std::vector<NodeId> ids;
  for (int i = 0; i < 3; ++i) {
    auto server = std::make_unique<AbdServer>();
    if (byzantine && i == 0) {
      // ABD has no Byzantine defence; model the attacker as a frozen
      // max-timestamp liar.
      server->SetState(UnboundedTs{~0ull, 9}, Val("evil"));
    }
    servers.push_back(server.get());
    ids.push_back(world.AddNode(std::move(server)));
  }
  auto client_owner = std::make_unique<AbdClient>(ids, 50);
  AbdClient* client = client_owner.get();
  world.AddNode(std::move(client_owner));
  world.RunUntil([] { return true; }, 0);

  if (corruption) {
    Rng rng(seed);
    for (std::size_t i = byzantine ? 1 : 0; i < servers.size(); ++i) {
      servers[i]->SetState(
          UnboundedTs{std::numeric_limits<std::uint64_t>::max(),
                      std::numeric_limits<std::uint32_t>::max()},
          RandomBytes(rng, 4));
    }
  }

  bool done = false;
  client->StartWrite(Val("recover"), [&](bool) { done = true; });
  if (!world.RunUntil([&] { return done; }, 200'000)) return 0;

  int good = 0;
  for (int i = 0; i < kReads; ++i) {
    AbdReadOutcome outcome;
    done = false;
    client->StartRead([&](const AbdReadOutcome& o) {
      outcome = o;
      done = true;
    });
    if (!world.RunUntil([&] { return done; }, 200'000)) break;
    if (outcome.ok && outcome.value == Val("recover")) ++good;
  }
  return good;
}

// --- BFT-unbounded arm ----------------------------------------------------

int RunBu(bool byzantine, bool corruption, std::uint64_t seed) {
  World world(World::Options{seed, nullptr});
  std::vector<BuServer*> servers;
  std::vector<NodeId> ids;
  for (int i = 0; i < 4; ++i) {
    if (byzantine && i == 0) {
      servers.push_back(nullptr);
      ids.push_back(world.AddNode(std::make_unique<BuByzantineServer>(seed)));
    } else {
      auto server = std::make_unique<BuServer>();
      servers.push_back(server.get());
      ids.push_back(world.AddNode(std::move(server)));
    }
  }
  auto client_owner = std::make_unique<BuClient>(ids, 1, 50);
  BuClient* client = client_owner.get();
  world.AddNode(std::move(client_owner));
  world.RunUntil([] { return true; }, 0);

  if (corruption) {
    Rng rng(seed);
    for (BuServer* server : servers) {
      if (server == nullptr) continue;
      server->SetState(
          UnboundedTs{std::numeric_limits<std::uint64_t>::max(),
                      std::numeric_limits<std::uint32_t>::max()},
          RandomBytes(rng, 4));
    }
  }

  bool done = false;
  client->StartWrite(Val("recover"), [&](bool) { done = true; });
  if (!world.RunUntil([&] { return done; }, 200'000)) return 0;

  int good = 0;
  for (int i = 0; i < kReads; ++i) {
    BuReadOutcome outcome;
    done = false;
    client->StartRead([&](const BuReadOutcome& o) {
      outcome = o;
      done = true;
    });
    if (!world.RunUntil([&] { return done; }, 200'000)) break;
    if (outcome.ok && outcome.value == Val("recover")) ++good;
  }
  return good;
}

// --- This paper's protocol -------------------------------------------------

int RunOurs(bool byzantine, bool corruption, std::uint64_t seed) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = seed;
  if (byzantine) {
    options.byzantine[0] = kAllByzantineStrategies[
        seed % std::size(kAllByzantineStrategies)];
  }
  Deployment deployment(std::move(options));
  if (corruption) {
    deployment.CorruptAllCorrectServers();
    deployment.CorruptAllChannels(2);
  }

  auto write = deployment.Write(0, Val("recover"), 500'000);
  if (!write.completed || write.outcome.status != OpStatus::kOk) return 0;
  int good = 0;
  for (int i = 0; i < kReads; ++i) {
    auto read = deployment.Read(0, 500'000);
    if (read.completed && read.outcome.status == OpStatus::kOk &&
        read.outcome.value == Val("recover")) {
      ++good;
    }
  }
  return good;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report("comparison", ParseBenchArgs(argc, argv));
  Header("E5", "resilience comparison: correct reads out of 20 after fault "
               "injection + one recovery write (mean over 10 seeds)");
  Row("%-28s | %-12s | %-12s | %-12s", "protocol / fault", "(i) byz",
      "(ii) corrupt", "(iii) both");

  struct Arm {
    const char* name;
    const char* key;
    int (*run)(bool, bool, std::uint64_t);
  };
  const Arm arms[] = {
      {"ABD (n=3, crash-only)", "abd", RunAbd},
      {"BFT-unbounded (n=4, [14])", "bft_unbounded", RunBu},
      {"this paper (n=6, 5f+1)", "ours", RunOurs},
  };
  const char* fault_keys[3] = {"byz", "corrupt", "both"};
  const std::size_t jobs =
      report.jobs() == 0 ? HardwareJobs() : report.jobs();
  for (const Arm& arm : arms) {
    double cells[3] = {0, 0, 0};
    const int kSeeds = report.smoke() ? 3 : 10;
    // Each (seed, fault) cell is an independent deterministic sim;
    // ParallelMap collects by seed index and the sums below run in that
    // fixed order, so the table is identical for every --jobs value.
    const auto per_seed = ParallelMap<std::array<int, 3>>(
        static_cast<std::size_t>(kSeeds), jobs,
        [&arm](std::size_t s) {
          const auto seed = static_cast<std::uint64_t>(s + 1);
          return std::array<int, 3>{arm.run(true, false, seed),
                                    arm.run(false, true, seed),
                                    arm.run(true, true, seed)};
        });
    for (const auto& row : per_seed) {
      for (int fault = 0; fault < 3; ++fault) {
        cells[fault] += row[static_cast<std::size_t>(fault)];
      }
    }
    Row("%-28s | %6.1f/20    | %6.1f/20    | %6.1f/20", arm.name,
        cells[0] / kSeeds, cells[1] / kSeeds, cells[2] / kSeeds);
    for (int fault = 0; fault < 3; ++fault) {
      report.Metric(std::string(arm.key) + "." + fault_keys[fault] +
                        ".good_reads",
                    cells[fault] / kSeeds, "reads/20");
    }
  }
  Row("%s", "\nexpected shape: ABD fails whenever a Byzantine server is "
            "present and stays poisoned after corruption; BFT-unbounded "
            "masks Byzantine servers but never recovers from saturated "
            "timestamps; this paper's protocol scores 20/20 everywhere.");
  return report.Flush() ? 0 : 1;
}
