// Fixture: the correct zero-copy boundary discipline. Borrowed views
// are decoded in place during the drain; anything that outlives the
// drain (the stored member, the deferred task) gets an owned copy
// first. Expected: clean.

namespace sbft {

struct BytesView {
  const unsigned char* data = nullptr;
  unsigned long size = 0;
};

struct Bytes {
  unsigned char* data = nullptr;
  unsigned long size = 0;
};

Bytes ToBytes(BytesView view);

class Executor {
 public:
  template <class Task>
  void Post(Task task);
};

class Session {
 public:
  void OnFrame(BytesView payload) {
    DecodeInPlace(payload);
    Bytes copy = ToBytes(payload);
    last_payload_ = ToBytes(payload);
    executor_.Post([copy] { Consume(copy); });
  }

 private:
  static void DecodeInPlace(BytesView view);
  static void Consume(const Bytes& owned);

  Executor executor_;
  Bytes last_payload_;
};

}  // namespace sbft
