// Unit tests for the black-box MWMR regularity checker, using
// hand-crafted histories with known verdicts.
#include "spec/regular_checker.hpp"

#include <gtest/gtest.h>

namespace sbft {
namespace {

Bytes Val(const std::string& text) { return Bytes(text.begin(), text.end()); }

OpRecord Write(std::uint32_t client, VirtualTime from, VirtualTime to,
               const std::string& value,
               OpRecord::Result result = OpRecord::Result::kOk) {
  OpRecord op;
  op.kind = OpRecord::Kind::kWrite;
  op.result = result;
  op.client = client;
  op.invoked_at = from;
  op.returned_at = to;
  op.value = Val(value);
  return op;
}

OpRecord Read(std::uint32_t client, VirtualTime from, VirtualTime to,
              const std::string& value,
              OpRecord::Result result = OpRecord::Result::kOk) {
  OpRecord op;
  op.kind = OpRecord::Kind::kRead;
  op.result = result;
  op.client = client;
  op.invoked_at = from;
  op.returned_at = to;
  op.value = Val(value);
  return op;
}

TEST(RegularChecker, EmptyHistoryOk) {
  History history;
  EXPECT_TRUE(CheckRegular(history).ok);
}

TEST(RegularChecker, SimpleWriteReadOk) {
  History history;
  history.Add(Write(0, 0, 10, "a"));
  history.Add(Read(1, 20, 30, "a"));
  EXPECT_TRUE(CheckRegular(history).ok);
}

TEST(RegularChecker, ReadOfLatestPrecedingWriteOk) {
  History history;
  history.Add(Write(0, 0, 10, "a"));
  history.Add(Write(0, 20, 30, "b"));
  history.Add(Read(1, 40, 50, "b"));
  EXPECT_TRUE(CheckRegular(history).ok);
}

TEST(RegularChecker, StaleReadViolates) {
  History history;
  history.Add(Write(0, 0, 10, "a"));
  history.Add(Write(0, 20, 30, "b"));
  history.Add(Read(1, 40, 50, "a"));  // superseded by "b"
  auto report = CheckRegular(history);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.Summary().find("stale read"), std::string::npos);
}

TEST(RegularChecker, ConcurrentWriteValueOk) {
  History history;
  history.Add(Write(0, 0, 10, "a"));
  history.Add(Write(0, 20, 60, "b"));   // concurrent with the read
  history.Add(Read(1, 30, 50, "b"));    // may see the in-flight write
  EXPECT_TRUE(CheckRegular(history).ok);
  History history2;
  history2.Add(Write(0, 0, 10, "a"));
  history2.Add(Write(0, 20, 60, "b"));
  history2.Add(Read(1, 30, 50, "a"));   // or the previous value
  EXPECT_TRUE(CheckRegular(history2).ok);
}

TEST(RegularChecker, FutureReadViolates) {
  History history;
  history.Add(Read(1, 0, 10, "a"));   // returns before the write begins
  history.Add(Write(0, 20, 30, "a"));
  auto report = CheckRegular(history);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.Summary().find("future"), std::string::npos);
}

TEST(RegularChecker, GarbageValueViolates) {
  History history;
  history.Add(Write(0, 0, 10, "a"));
  history.Add(Read(1, 20, 30, "never-written"));
  auto report = CheckRegular(history);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.Summary().find("never written"), std::string::npos);
}

TEST(RegularChecker, GrandfatheredValueAllowed) {
  History history;
  history.Add(Read(1, 0, 5, "initial"));
  CheckOptions options;
  options.grandfathered_values = {Val("initial")};
  EXPECT_TRUE(CheckRegular(history, options).ok);
}

TEST(RegularChecker, StabilizationWindowExcludesEarlyReads) {
  History history;
  history.Add(Read(1, 0, 5, "garbage"));   // pre-stabilization
  history.Add(Write(0, 10, 20, "a"));
  history.Add(Read(1, 30, 40, "a"));
  CheckOptions options;
  options.stabilized_from = 10;
  EXPECT_TRUE(CheckRegular(history, options).ok);
  // Without the window the garbage read is a violation.
  EXPECT_FALSE(CheckRegular(history).ok);
}

TEST(RegularChecker, AbortedReadsAreNotJudged) {
  History history;
  history.Add(Write(0, 0, 10, "a"));
  history.Add(Read(1, 20, 30, "", OpRecord::Result::kAborted));
  EXPECT_TRUE(CheckRegular(history).ok);
}

TEST(RegularChecker, ConsistencyCycleDetected) {
  // Two concurrent writes a, b; two later reads perceive them in
  // opposite orders: r1 (after both) returns a, r2 (after r1) returns b,
  // then a third read after r2 returns a again — wait, simplest cycle:
  // both writes precede both reads; r1 returns a (forcing b -> a),
  // r2 returns b (forcing a -> b): contradiction.
  History history;
  history.Add(Write(0, 0, 10, "a"));   // concurrent with "b"
  history.Add(Write(1, 5, 15, "b"));
  history.Add(Read(2, 20, 30, "a"));
  history.Add(Read(3, 20, 30, "b"));
  auto report = CheckRegular(history);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.Summary().find("serialization"), std::string::npos);
}

TEST(RegularChecker, AgreeingReadsOfConcurrentWritesOk) {
  History history;
  history.Add(Write(0, 0, 10, "a"));
  history.Add(Write(1, 5, 15, "b"));
  history.Add(Read(2, 20, 30, "b"));
  history.Add(Read(3, 20, 30, "b"));  // both perceive a -> b
  EXPECT_TRUE(CheckRegular(history).ok);
}

TEST(RegularChecker, NewOldInversionAcrossConcurrentReadsOk) {
  // Regular (not atomic) registers permit new/old inversion while the
  // write is concurrent with the reads.
  History history;
  history.Add(Write(0, 0, 10, "a"));
  history.Add(Write(0, 20, 60, "b"));
  history.Add(Read(1, 25, 35, "b"));  // sees the concurrent write
  history.Add(Read(1, 40, 50, "a"));  // then the old value again
  EXPECT_TRUE(CheckRegular(history).ok);
}

TEST(RegularChecker, FailedWritesNotRequired) {
  History history;
  history.Add(Write(0, 0, 10, "a"));
  history.Add(Write(0, 20, 30, "lost", OpRecord::Result::kFailed));
  history.Add(Read(1, 40, 50, "a"));
  // "a" superseded only by a failed write: still acceptable.
  EXPECT_TRUE(CheckRegular(history).ok);
}

TEST(RegularChecker, DuplicateWriteValuesRejected) {
  History history;
  history.Add(Write(0, 0, 10, "same"));
  history.Add(Write(1, 20, 30, "same"));
  auto report = CheckRegular(history);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.Summary().find("duplicate"), std::string::npos);
}

}  // namespace
}  // namespace sbft
