// Run the register on real OS threads and TCP sockets (loopback): six
// server processes-worth of automata, one Byzantine, and a client doing
// a small workload with wall-clock latency measurements.
//
//   $ ./build/examples/tcp_cluster
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/register_cluster.hpp"

using namespace sbft;

int main() {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.use_tcp = true;
  options.n_clients = 1;
  options.byzantine[1] = ByzantineStrategy::kStaleReplay;
  RegisterCluster cluster(std::move(options));
  cluster.Start();
  std::printf("cluster up: 6 register servers + 1 client over TCP "
              "loopback (server 1 is Byzantine)\n");

  using Clock = std::chrono::steady_clock;
  std::vector<double> write_us;
  std::vector<double> read_us;
  const int kOps = 50;
  int ok = 0;
  for (int i = 0; i < kOps; ++i) {
    const std::string text = "value-" + std::to_string(i);
    const Value value(text.begin(), text.end());

    auto t0 = Clock::now();
    auto write = cluster.Write(0, value);
    auto t1 = Clock::now();
    auto read = cluster.Read(0);
    auto t2 = Clock::now();

    write_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    read_us.push_back(
        std::chrono::duration<double, std::micro>(t2 - t1).count());
    if (write.status == OpStatus::kOk && read.status == OpStatus::kOk &&
        read.value == value) {
      ++ok;
    }
  }
  cluster.Stop();

  auto percentile = [](std::vector<double> values, double p) {
    std::sort(values.begin(), values.end());
    return values[static_cast<std::size_t>(p * (values.size() - 1))];
  };
  std::printf("%d/%d write+read round trips correct\n", ok, kOps);
  std::printf("write latency: p50=%.0fus p99=%.0fus\n",
              percentile(write_us, 0.5), percentile(write_us, 0.99));
  std::printf("read  latency: p50=%.0fus p99=%.0fus\n",
              percentile(read_us, 0.5), percentile(read_us, 0.99));
  return ok == kOps ? 0 : 1;
}
