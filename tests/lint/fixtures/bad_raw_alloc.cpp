// Fixture: hot-path code allocating per frame with raw new/malloc.
// Must trip [raw-alloc] — frame storage comes from the FramePool.
#include <cstdlib>
#include <cstring>

namespace sbft {

unsigned char* CopyFrame(const unsigned char* data, unsigned long size) {
  auto* scratch = static_cast<unsigned char*>(malloc(size));
  std::memcpy(scratch, data, size);
  unsigned char* owned = new unsigned char[size];
  std::memcpy(owned, scratch, size);
  free(scratch);
  return owned;
}

}  // namespace sbft
