// Slow/lossy link emulation for the threaded runtime.
//
// The simulator degrades channels natively (World::DegradeChannel);
// the threaded cluster's links are real mailbox pushes or TCP frames
// with whatever latency the machine gives them. LinkShaper puts a
// configurable wide-area link in front of delivery: each frame is
// delayed by delay_us +/- uniform jitter and/or dropped with
// loss_prob, using a seeded Rng so a given run shapes the same way
// each time (modulo thread scheduling).
//
// Placement: ThreadCluster routes frames through the shaper at
// DELIVERY time — after the transport, before the destination mailbox
// — which covers both the in-process and the TCP backend with one
// mechanism and keeps the TcpBus send-side threading contract intact.
// Jittered delays may reorder frames between a pair of nodes; the
// protocol tolerates reordering (see tests/integration/
// full_stack_test.cpp), and the paper's model only assumes eventual
// delivery on correct links.
//
// Threading: Offer is called from node threads and reactor threads;
// one shaper thread owns the release heap and forwards due frames.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/frame.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "sim/types.hpp"

namespace sbft {

/// Link-shaping parameters; all-zero means "no shaping" and the
/// cluster bypasses the shaper entirely.
struct LinkShaping {
  /// Added one-way delay per frame, microseconds.
  std::uint64_t delay_us = 0;
  /// Uniform jitter: the actual delay is delay_us + U[0, jitter_us].
  std::uint64_t jitter_us = 0;
  /// Probability a frame is silently dropped. NOTE: the register
  /// protocol has no retransmission timer in the threaded runtime, so
  /// sustained loss can wedge individual operations — use for
  /// degraded-mode experiments, not for gated trajectories.
  double loss_prob = 0.0;
  std::uint64_t seed = 1;

  [[nodiscard]] bool enabled() const {
    return delay_us != 0 || jitter_us != 0 || loss_prob > 0.0;
  }
};

class LinkShaper {
 public:
  /// Delivers a frame that finished its shaped delay.
  using ForwardFn = std::function<void(NodeId src, NodeId dst, Frame frame)>;

  LinkShaper(LinkShaping options, ForwardFn forward);
  ~LinkShaper();

  LinkShaper(const LinkShaper&) = delete;
  LinkShaper& operator=(const LinkShaper&) = delete;

  void Start();
  /// Stop the shaper thread; frames still queued are dropped (only
  /// called while the cluster is tearing down).
  void Stop();

  /// Hand a frame to the shaper. Returns true when the shaper consumed
  /// it (delayed or dropped); false when the caller should deliver
  /// directly (shaper not running, or this frame drew zero delay).
  bool Offer(NodeId src, NodeId dst, Frame&& frame);

  [[nodiscard]] std::uint64_t dropped() const {
    MutexLock lock(mutex_);
    return dropped_;
  }
  [[nodiscard]] std::uint64_t delayed() const {
    MutexLock lock(mutex_);
    return delayed_;
  }

 private:
  struct Pending {
    std::uint64_t release_us;  // steady_clock, microseconds
    std::uint64_t order;       // FIFO tiebreak for equal deadlines
    NodeId src;
    NodeId dst;
    Frame frame;
  };
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      return a.release_us != b.release_us ? a.release_us > b.release_us
                                          : a.order > b.order;
    }
  };

  void Loop();

  LinkShaping options_;
  ForwardFn forward_;
  /// Leaf lock (lock_order::kLinkShaper): Loop releases it before
  /// calling forward_, so no mailbox acquisition ever nests under it.
  mutable Mutex mutex_;
  /// Min-heap on release_us via std::push_heap/pop_heap (a
  /// priority_queue cannot move out its top; Frame is move-only).
  std::vector<Pending> heap_ GUARDED_BY(mutex_);
  Rng rng_ GUARDED_BY(mutex_);
  std::uint64_t next_order_ GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ GUARDED_BY(mutex_) = 0;
  std::uint64_t delayed_ GUARDED_BY(mutex_) = 0;
  bool running_ GUARDED_BY(mutex_) = false;
  CondVar wake_;
  std::thread thread_;
};

}  // namespace sbft
