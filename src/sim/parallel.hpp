// Deterministic parallel sweep engine for independent simulations.
//
// Each sim World is single-threaded and deterministic given its seed, so
// a sweep over seeds or configurations is embarrassingly parallel.
// ParallelMap fans the tasks over a transient thread pool and collects
// results BY INDEX, so the output is a pure function of the inputs —
// independent of the job count and of thread interleaving. `--jobs N`
// never changes what a campaign or bench reports, only how fast it
// arrives.
//
// jobs <= 1 runs inline on the calling thread (no pool, no atomics):
// sequential callers pay nothing, and the sequential path remains the
// reference behavior the parallel path must reproduce.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace sbft {

/// Worker count when the caller asked for "all cores":
/// std::thread::hardware_concurrency(), at least 1.
[[nodiscard]] std::size_t HardwareJobs();

/// Invoke body(0) .. body(count-1), each exactly once, across up to
/// `jobs` threads (inline when jobs <= 1). Indices are claimed from a
/// shared atomic counter, so uneven task costs load-balance. body must
/// be thread-safe for distinct indices. The first exception thrown by
/// any task is rethrown on the caller after all workers have finished;
/// remaining tasks still run.
void ParallelFor(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& body);

/// ParallelFor that collects fn(i) into slot i of the result vector —
/// deterministic output order regardless of jobs. Result must be
/// default-constructible and movable.
template <typename Result>
[[nodiscard]] std::vector<Result> ParallelMap(
    std::size_t count, std::size_t jobs,
    const std::function<Result(std::size_t)>& fn) {
  std::vector<Result> results(count);
  ParallelFor(count, jobs,
              [&results, &fn](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace sbft
