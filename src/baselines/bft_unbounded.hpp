// Baseline 2: non-stabilizing BFT MWMR regular register with unbounded
// timestamps, in the style of Kanjani, Lee, Maguffee, Welch [14]:
// n >= 3f+1 servers, quorum n-f, reads accept a value only when the
// identical (ts, value) pair is reported by at least f+1 servers
// (masking the f Byzantine replies), and return the maximal such pair.
//
// Correct under f Byzantine servers from a clean start — but NOT
// self-stabilizing: transient corruption that plants near-maximal
// sequence numbers in correct servers leaves the register permanently
// unable to certify values (reads abort forever, or return pre-fault
// garbage), because unbounded timestamps cannot be dominated once
// corrupted. Experiment E5 contrasts this with the paper's bounded
// labels, which *can* always be dominated by next().
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "labels/unbounded_timestamp.hpp"
#include "net/message.hpp"
#include "sim/world.hpp"

namespace sbft {

class BuServer : public Automaton {
 public:
  BuServer() = default;

  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;
  void CorruptState(Rng& rng) override;

  [[nodiscard]] const UnboundedTs& ts() const { return ts_; }
  [[nodiscard]] const Value& value() const { return value_; }
  void SetState(UnboundedTs ts, Value value) {
    ts_ = ts;
    value_ = std::move(value);
  }

 private:
  UnboundedTs ts_;
  Value value_;
};

/// Byzantine variant for E5: reports a maximal timestamp with garbage.
class BuByzantineServer : public Automaton {
 public:
  explicit BuByzantineServer(std::uint64_t seed) : rng_(seed) {}
  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;

 private:
  Rng rng_;
};

struct BuReadOutcome {
  bool ok = false;      // false = aborted (no f+1-witnessed pair)
  Value value;
  UnboundedTs ts;
};

class BuClient : public Automaton {
 public:
  /// `f` is the Byzantine bound the deployment was sized for (n >= 3f+1).
  BuClient(std::vector<NodeId> servers, std::uint32_t f,
           std::uint32_t client_id);

  void OnStart(IEndpoint& endpoint) override;
  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;
  void CorruptState(Rng& rng) override;

  void StartWrite(Value value, std::function<void(bool)> callback);
  void StartRead(std::function<void(const BuReadOutcome&)> callback);
  [[nodiscard]] bool idle() const { return phase_ == Phase::kIdle; }

 private:
  enum class Phase : std::uint8_t { kIdle, kGetTs, kWrite, kRead };

  [[nodiscard]] std::size_t Quorum() const { return servers_.size() - f_; }
  [[nodiscard]] std::optional<std::size_t> ServerIndex(NodeId node) const;

  std::vector<NodeId> servers_;
  std::uint32_t f_;
  std::uint32_t client_id_;
  IEndpoint* endpoint_ = nullptr;

  Phase phase_ = Phase::kIdle;
  std::uint64_t rid_ = 0;
  Value write_value_;
  std::function<void(bool)> write_callback_;
  std::function<void(const BuReadOutcome&)> read_callback_;
  // Index-dense per-server state (vectors sized n + presence bits);
  // ascending-index iteration matches the ordered containers this
  // replaced, so decisions are unchanged. First reply per server wins.
  std::vector<UnboundedTs> collected_ts_;
  std::vector<std::uint8_t> collected_bits_;
  std::uint32_t collected_count_ = 0;
  std::vector<std::uint8_t> write_acks_;
  std::uint32_t write_ack_count_ = 0;
  std::vector<UnboundedTs> read_ts_;
  std::vector<Value> read_vals_;
  std::vector<std::uint8_t> read_bits_;
  std::uint32_t read_count_ = 0;
};

}  // namespace sbft
