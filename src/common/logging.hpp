// Tiny leveled logger. Off (kNone) by default so simulations stay quiet;
// tests and examples raise the level to trace protocol decisions.
// Thread-safe: the threaded runtime logs from multiple node threads.
#pragma once

#include <sstream>
#include <string>

namespace sbft {

enum class LogLevel : int { kNone = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold. Messages with a level above it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emit one line (with level tag and timestamp) to stderr.
void LogLine(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogLine(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define SBFT_LOG(level)                                  \
  if (static_cast<int>(level) > static_cast<int>(::sbft::GetLogLevel())) { \
  } else                                                 \
    ::sbft::detail::LogStream(level)

#define SBFT_LOG_DEBUG SBFT_LOG(::sbft::LogLevel::kDebug)
#define SBFT_LOG_INFO SBFT_LOG(::sbft::LogLevel::kInfo)
#define SBFT_LOG_ERROR SBFT_LOG(::sbft::LogLevel::kError)

}  // namespace sbft
