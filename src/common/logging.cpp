#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/thread_annotations.hpp"

namespace sbft {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kNone)};
Mutex g_sink_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
    default:
      return "?????";
  }
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(GetLogLevel())) return;
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const auto elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                              Clock::now() - start)
                              .count();
  MutexLock lock(g_sink_mutex);
  std::fprintf(stderr, "[%s %9lld.%03lldms] %s\n", LevelTag(level),
               static_cast<long long>(elapsed_us / 1000),
               static_cast<long long>(elapsed_us % 1000), message.c_str());
}

}  // namespace sbft
