// Fixture: reads host time inside deterministic code. Must trip
// [wall-clock] — simulated time comes from the World clock.
#include <chrono>

namespace sbft {

long NowMicros() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::microseconds>(now).count();
}

}  // namespace sbft
