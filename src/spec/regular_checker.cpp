#include "spec/regular_checker.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"

namespace sbft {
namespace {

std::string Describe(const OpRecord& op) {
  std::ostringstream out;
  out << (op.kind == OpRecord::Kind::kWrite ? "write" : "read") << "(c"
      << op.client << ", [" << op.invoked_at << "," << op.returned_at
      << "], v=" << ToHex(op.value) << ")";
  return out.str();
}

// DFS cycle detection over adjacency lists.
bool HasCycle(const std::vector<std::vector<std::size_t>>& adjacency) {
  enum class Mark : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Mark> marks(adjacency.size(), Mark::kWhite);
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // node, edge idx
  for (std::size_t root = 0; root < adjacency.size(); ++root) {
    if (marks[root] != Mark::kWhite) continue;
    stack.push_back({root, 0});
    marks[root] = Mark::kGray;
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      if (edge < adjacency[node].size()) {
        const std::size_t next = adjacency[node][edge++];
        if (marks[next] == Mark::kGray) return true;
        if (marks[next] == Mark::kWhite) {
          marks[next] = Mark::kGray;
          stack.push_back({next, 0});
        }
      } else {
        marks[node] = Mark::kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

std::string CheckReport::Summary() const {
  if (ok) return "OK";
  std::ostringstream out;
  out << violations.size() << " violation(s):";
  for (const std::string& violation : violations) {
    out << "\n  - " << violation;
  }
  return out.str();
}

CheckReport CheckRegular(const History& history, const CheckOptions& options) {
  CheckReport report;
  const auto capped = [&report, &options] {
    return options.max_violations != 0 &&
           report.violations.size() >= options.max_violations;
  };
  const auto writes = history.Writes();
  const auto reads = history.Reads();

  // Unique write values are a precondition for identification. Failed
  // writes are indexed too: their value may have been installed at some
  // servers before the failure (like a crashed writer's), so a read
  // returning it is legal — but it imposes no ordering constraints.
  // Hashed, not ordered: the map is only ever probed by exact value
  // (one lookup per read), never iterated, so lookup cost is what
  // matters for long fuzz histories.
  std::unordered_map<Bytes, std::size_t, BytesHash> write_by_value;
  write_by_value.reserve(writes.size());
  for (std::size_t i = 0; i < writes.size(); ++i) {
    if (!write_by_value.emplace(writes[i]->value, i).second) {
      report.AddViolation("duplicate write value (driver bug): " +
                          Describe(*writes[i]));
      return report;
    }
  }

  // Constraint graph over writes.
  std::vector<std::vector<std::size_t>> adjacency(writes.size());
  auto add_edge = [&](std::size_t from, std::size_t to) {
    if (from != to) adjacency[from].push_back(to);
  };

  // Real-time precedence among completed writes.
  for (std::size_t i = 0; i < writes.size(); ++i) {
    for (std::size_t j = 0; j < writes.size(); ++j) {
      if (i != j && writes[i]->PrecedesRt(*writes[j])) add_edge(i, j);
    }
  }

  for (const OpRecord* read : reads) {
    if (capped()) return report;
    if (read->result != OpRecord::Result::kOk) continue;
    if (read->invoked_at < options.stabilized_from) continue;

    const bool grandfathered =
        std::find(options.grandfathered_values.begin(),
                  options.grandfathered_values.end(),
                  read->value) != options.grandfathered_values.end();
    auto it = write_by_value.find(read->value);
    if (it == write_by_value.end()) {
      if (!grandfathered) {
        report.AddViolation("read returned a value never written: " +
                            Describe(*read));
      }
      continue;
    }
    const OpRecord& write = *writes[it->second];

    // Validity, first filter: the write must not strictly follow the read.
    if (read->PrecedesRt(write)) {
      report.AddViolation("read returned a future write: " + Describe(*read) +
                          " <- " + Describe(write));
      continue;
    }
    // A failed write never completed: like a crashed writer's operation
    // it is treated as concurrent with everything after its invocation,
    // so it neither constrains nor is constrained.
    if (write.result == OpRecord::Result::kFailed) continue;
    // A write concurrent with the read is always admissible.
    if (write.ConcurrentWith(*read)) continue;

    // The write precedes the read: it must not be superseded by another
    // write also preceding the read.
    for (std::size_t j = 0; j < writes.size(); ++j) {
      const OpRecord& other = *writes[j];
      if (&other == &write || other.result == OpRecord::Result::kFailed) {
        continue;
      }
      if (write.PrecedesRt(other) && other.PrecedesRt(*read)) {
        report.AddViolation("stale read: " + Describe(*read) +
                            " returned " + Describe(write) +
                            " superseded by " + Describe(other));
        if (capped()) return report;
      }
    }
    // Serialization constraint: every write completed before the read
    // must be ordered at or before the returned write.
    for (std::size_t j = 0; j < writes.size(); ++j) {
      if (j == it->second) continue;
      if (writes[j]->result == OpRecord::Result::kFailed) continue;
      if (writes[j]->PrecedesRt(*read)) add_edge(j, it->second);
    }
  }

  if (report.ok && HasCycle(adjacency)) {
    report.AddViolation(
        "no write serialization satisfies all reads (Consistency violated: "
        "two reads perceive prefix writes in different orders)");
  }
  return report;
}

CheckReport CheckNoNewOldInversion(const History& history,
                                   const CheckOptions& options) {
  CheckReport report;
  const auto writes = history.Writes();
  const auto reads = history.Reads();
  std::unordered_map<Bytes, const OpRecord*, BytesHash> write_by_value;
  write_by_value.reserve(writes.size());
  for (const OpRecord* write : writes) write_by_value[write->value] = write;

  for (const OpRecord* r1 : reads) {
    if (r1->result != OpRecord::Result::kOk) continue;
    if (r1->invoked_at < options.stabilized_from) continue;
    auto w1_it = write_by_value.find(r1->value);
    if (w1_it == write_by_value.end()) continue;
    for (const OpRecord* r2 : reads) {
      if (r2->result != OpRecord::Result::kOk) continue;
      if (!r1->PrecedesRt(*r2)) continue;  // need r1 strictly before r2
      auto w2_it = write_by_value.find(r2->value);
      if (w2_it == write_by_value.end()) continue;
      // Inversion: the earlier read saw a write that strictly supersedes
      // what the later read returned.
      if (w2_it->second->PrecedesRt(*w1_it->second)) {
        report.AddViolation("new/old inversion: " + Describe(*r1) +
                            " then " + Describe(*r2));
      }
    }
  }
  return report;
}

}  // namespace sbft
