#include "spec/trace_check.hpp"

#include <map>
#include <sstream>
#include <tuple>

#include "net/message.hpp"

namespace sbft {
namespace {

enum class LabelState : std::uint8_t {
  kUnflushed,  // no flush round seen yet for this label
  kFlushed,    // FLUSH sent, ack outstanding
  kAcked,      // FLUSH_ACK received: READ(l) is now legitimate
  kReading,    // READ sent under a valid ack
};

struct ChannelKey {
  NodeId client;
  NodeId server;
  OpLabel label;
  auto operator<=>(const ChannelKey&) const = default;
};

}  // namespace

TraceCheckReport CheckReadMessageOrder(
    const std::vector<TraceEvent>& events, const std::set<NodeId>& clients,
    const std::set<NodeId>& correct_servers) {
  TraceCheckReport report;
  std::map<ChannelKey, LabelState> state;

  auto violation = [&](const ChannelKey& key, const std::string& what,
                       VirtualTime when) {
    std::ostringstream out;
    out << what << " (client " << key.client << ", server " << key.server
        << ", label " << key.label << ", t=" << when << ")";
    report.ok = false;
    report.violations.push_back(out.str());
  };

  for (const TraceEvent& event : events) {
    if (event.kind != TraceKind::kSend && event.kind != TraceKind::kDeliver) {
      continue;
    }
    auto decoded = DecodeMessage(event.frame());
    if (!decoded.ok()) continue;
    const Message& message = decoded.value();

    // Client -> server sends.
    if (event.kind == TraceKind::kSend && clients.count(event.src) &&
        correct_servers.count(event.dst)) {
      if (const auto* flush = std::get_if<FlushMsg>(&message)) {
        if (flush->scope == OpScope::kRead) {
          state[{event.src, event.dst, flush->label}] = LabelState::kFlushed;
          report.flush_rounds++;
        }
      } else if (const auto* read = std::get_if<ReadMsg>(&message)) {
        const ChannelKey key{event.src, event.dst, read->label};
        auto it = state.find(key);
        const LabelState current =
            it == state.end() ? LabelState::kUnflushed : it->second;
        if (current != LabelState::kAcked) {
          violation(key,
                    current == LabelState::kFlushed
                        ? "READ sent before FLUSH_ACK returned"
                        : (current == LabelState::kReading
                               ? "READ re-sent without a fresh flush round"
                               : "READ sent with no flush round at all"),
                    event.time);
        }
        state[key] = LabelState::kReading;
        report.reads_checked++;
      }
    }

    // Server -> client deliveries.
    if (event.kind == TraceKind::kDeliver &&
        correct_servers.count(event.src) && clients.count(event.dst)) {
      if (const auto* ack = std::get_if<FlushAckMsg>(&message)) {
        if (ack->scope == OpScope::kRead) {
          const ChannelKey key{event.dst, event.src, ack->label};
          auto it = state.find(key);
          if (it != state.end() && it->second == LabelState::kFlushed) {
            it->second = LabelState::kAcked;
          }
        }
      } else if (std::get_if<ReplyMsg>(&message) != nullptr) {
        report.replies_seen++;
      }
    }
  }
  return report;
}

}  // namespace sbft
