// Free-list of reusable byte buffers for the messaging hot path.
//
// Every frame the system encodes used to be a fresh std::vector that
// died after one hop. A BufferPool keeps recently freed buffers (with
// their capacity) and hands them back to the next encode, so a steady
// quorum workload reaches a fixed point with no heap traffic at all.
//
// A pool is NOT thread-safe; each thread uses its own via FramePool().
// The sim world is single-threaded, and in the threaded runtime each
// node loop touches only its own thread's pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.hpp"

namespace sbft {

class BufferPool {
 public:
  struct Stats {
    std::uint64_t acquired = 0;  // total Acquire() calls
    std::uint64_t reused = 0;    // Acquire() satisfied from the free list
    std::uint64_t recycled = 0;  // Release() that kept the buffer
  };

  explicit BufferPool(std::size_t max_buffers = 64,
                      std::size_t max_retained_capacity = 1u << 20)
      : max_buffers_(max_buffers),
        max_retained_capacity_(max_retained_capacity) {}

  /// An empty buffer, reusing pooled capacity when available.
  [[nodiscard]] Bytes Acquire() {
    ++stats_.acquired;
    if (free_.empty()) return {};
    ++stats_.reused;
    Bytes out = std::move(free_.back());
    free_.pop_back();
    out.clear();
    return out;
  }

  /// Return a dead buffer's storage to the pool. Buffers with no
  /// capacity, oversized ones, and overflow beyond max_buffers are
  /// simply dropped — Release never allocates.
  void Release(Bytes&& buf) {
    if (buf.capacity() == 0 || buf.capacity() > max_retained_capacity_ ||
        free_.size() >= max_buffers_) {
      return;
    }
    ++stats_.recycled;
    buf.clear();
    free_.push_back(std::move(buf));
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return free_.size(); }

 private:
  std::size_t max_buffers_;
  std::size_t max_retained_capacity_;
  std::vector<Bytes> free_;
  Stats stats_;
};

/// The per-thread pool wire frames cycle through: EncodeMessage draws
/// its output buffer here, and transports return delivered frames once
/// the receiving automaton is done with them.
inline BufferPool& FramePool() {
  thread_local BufferPool pool;
  return pool;
}

}  // namespace sbft
