// Sharded deployment: G independent register groups behind the
// consistent-hash router (runtime/sharded_cluster.hpp).
//
// What must hold:
//   * routing is read-your-writes per key across groups, on both
//     transports, under pipelined concurrency — and the recorded
//     history passes the per-key regular-register checker;
//   * live growth (AddGroup) migrates ~1/(G+1) of the keys with
//     drain-and-handoff reads: a migrated key keeps reading its old
//     group's value until its first write completes in the new group,
//     so regularity holds straight through the epoch bump.
#include "runtime/sharded_cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "load/stabilization.hpp"
#include "spec/history.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

ShardedCluster::Options BaseOptions(std::size_t n_groups, bool use_tcp,
                                    std::size_t n_keys) {
  ShardedCluster::Options options;
  options.group.config = ProtocolConfig::ForServers(6);
  options.group.use_tcp = use_tcp;
  options.group.multiplex = true;
  options.group.n_clients = n_keys;
  options.group.batch_max_ops = 8;
  options.group.batch_max_delay_us = 200;
  options.group.shared_flush = true;
  options.n_groups = n_groups;
  return options;
}

struct ShardedRun {
  int failures = 0;
  History history;  // wall-clock µs stamps, OpRecord::client = key
};

// Pipelined closed loop over the sharded deployment: each key runs
// `pairs` write+read pairs, the next op issued from the completion
// callback (callbacks arrive on G different mux node threads, hence
// the lock). `on_progress`, when set, sees the running completed-op
// count — the hook the migration test uses to AddGroup mid-run.
ShardedRun RunShardedWorkload(ShardedCluster& cluster, std::size_t n_keys,
                              int pairs,
                              std::function<void(int)> on_progress = nullptr) {
  const auto start = std::chrono::steady_clock::now();
  auto now_us = [start] {
    return static_cast<VirtualTime>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };

  ShardedRun run;
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t done_keys = 0;
  int completed = 0;
  std::atomic<int> failures{0};

  std::function<void(std::uint64_t, int)> inject_write = [&](std::uint64_t k,
                                                             int i) {
    const std::string text = "k" + std::to_string(k) + "#" + std::to_string(i);
    OpRecord write_rec;
    write_rec.kind = OpRecord::Kind::kWrite;
    write_rec.client = static_cast<std::uint32_t>(k);
    write_rec.invoked_at = now_us();
    write_rec.value = Val(text);
    cluster.AsyncWrite(k, Val(text), [&, k, i,
                                      write_rec](const WriteOutcome& write) {
      if (write.status != OpStatus::kOk) failures.fetch_add(1);
      int done_count = 0;
      {
        std::lock_guard<std::mutex> lock(mutex);
        OpRecord done = write_rec;
        done.returned_at = now_us();
        done.result = write.status == OpStatus::kOk
                          ? OpRecord::Result::kOk
                          : OpRecord::Result::kFailed;
        run.history.Add(std::move(done));
        done_count = ++completed;
      }
      if (on_progress) on_progress(done_count);
      OpRecord read_rec;
      read_rec.kind = OpRecord::Kind::kRead;
      read_rec.client = static_cast<std::uint32_t>(k);
      read_rec.invoked_at = now_us();
      cluster.AsyncRead(k, [&, k, i, read_rec](const ReadOutcome& read) {
        if (read.status != OpStatus::kOk) failures.fetch_add(1);
        int after_read = 0;
        {
          std::lock_guard<std::mutex> lock(mutex);
          OpRecord done = read_rec;
          done.returned_at = now_us();
          done.result = read.status == OpStatus::kOk
                            ? OpRecord::Result::kOk
                            : OpRecord::Result::kAborted;
          done.value = read.value;
          run.history.Add(std::move(done));
          after_read = ++completed;
        }
        if (on_progress) on_progress(after_read);
        if (i + 1 < pairs) {
          inject_write(k, i + 1);
          return;
        }
        std::lock_guard<std::mutex> lock(mutex);
        ++done_keys;
        done_cv.notify_one();
      });
    });
  };
  for (std::uint64_t k = 0; k < n_keys; ++k) inject_write(k, 0);

  {
    std::unique_lock<std::mutex> lock(mutex);
    EXPECT_TRUE(done_cv.wait_for(lock, std::chrono::seconds(120), [&] {
      return done_keys == n_keys;
    })) << "sharded closed loop did not finish";
  }
  run.failures = failures.load();
  return run;
}

TEST(ShardedCluster, RoutesReadYourWritesAcrossGroups) {
  ShardedCluster cluster(BaseOptions(3, /*use_tcp=*/false, 32));
  cluster.Start();
  EXPECT_EQ(cluster.n_groups(), 3u);
  EXPECT_EQ(cluster.epoch(), 0u);

  bool multiple_groups = false;
  for (std::uint64_t k = 0; k < 32; ++k) {
    if (cluster.WriteGroupOf(k) != cluster.WriteGroupOf(0)) {
      multiple_groups = true;
    }
    ASSERT_EQ(cluster.Write(k, Val("v" + std::to_string(k))).status,
              OpStatus::kOk);
  }
  EXPECT_TRUE(multiple_groups) << "32 keys all routed to one group";
  for (std::uint64_t k = 0; k < 32; ++k) {
    const ReadOutcome read = cluster.Read(k);
    ASSERT_EQ(read.status, OpStatus::kOk) << k;
    EXPECT_EQ(read.value, Val("v" + std::to_string(k))) << k;
    EXPECT_EQ(cluster.ReadGroupOf(k), cluster.WriteGroupOf(k)) << k;
  }
  EXPECT_EQ(cluster.keys_awaiting_handoff(), 0u);
  cluster.Stop();
}

TEST(ShardedCluster, TwoGroupsPipelinedRegularInproc) {
  ShardedCluster cluster(BaseOptions(2, /*use_tcp=*/false, 32));
  cluster.Start();
  const ShardedRun run = RunShardedWorkload(cluster, 32, 4);
  cluster.Stop();
  EXPECT_EQ(run.failures, 0);
  const CheckReport report = load::CheckRegularPerKey(run.history, {});
  EXPECT_TRUE(report.ok) << report.Summary();
}

TEST(ShardedCluster, TwoGroupsPipelinedRegularTcp) {
  ShardedCluster cluster(BaseOptions(2, /*use_tcp=*/true, 32));
  cluster.Start();
  const ShardedRun run = RunShardedWorkload(cluster, 32, 3);
  cluster.Stop();
  EXPECT_EQ(run.failures, 0);
  const CheckReport report = load::CheckRegularPerKey(run.history, {});
  EXPECT_TRUE(report.ok) << report.Summary();
}

// Drain-and-handoff semantics, step by step: after AddGroup, a
// migrated key's reads stay anchored to the group holding its latest
// complete write; the first write AFTER migration flips the anchor.
TEST(ShardedCluster, GroupAddAnchorsReadsUntilFirstNewWrite) {
  constexpr std::uint64_t kKeys = 64;
  ShardedCluster cluster(BaseOptions(1, /*use_tcp=*/false, kKeys));
  cluster.Start();
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(cluster.Write(k, Val("old" + std::to_string(k))).status,
              OpStatus::kOk);
  }

  ASSERT_EQ(cluster.AddGroup(), 1u);
  EXPECT_EQ(cluster.n_groups(), 2u);
  EXPECT_EQ(cluster.epoch(), 1u);

  // ~half the keys now map to group 1 while every write lives in
  // group 0; with 64 keys at least one migrated key exists.
  std::uint64_t migrated = kKeys;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    if (cluster.WriteGroupOf(k) != cluster.ReadGroupOf(k)) {
      migrated = k;
      break;
    }
  }
  ASSERT_LT(migrated, kKeys) << "no key migrated on group add";
  EXPECT_EQ(cluster.ReadGroupOf(migrated), 0u);
  EXPECT_EQ(cluster.WriteGroupOf(migrated), 1u);
  EXPECT_GT(cluster.keys_awaiting_handoff(), 0u);

  // Anchored read: the new group has no data for this key; the value
  // must still come from group 0.
  ReadOutcome anchored = cluster.Read(migrated);
  ASSERT_EQ(anchored.status, OpStatus::kOk);
  EXPECT_EQ(anchored.value, Val("old" + std::to_string(migrated)));

  // First write post-migration goes to the new group and flips the
  // anchor — the handoff moment for this key.
  ASSERT_EQ(cluster.Write(migrated, Val("new")).status, OpStatus::kOk);
  EXPECT_EQ(cluster.ReadGroupOf(migrated), 1u);
  ReadOutcome handed_off = cluster.Read(migrated);
  ASSERT_EQ(handed_off.status, OpStatus::kOk);
  EXPECT_EQ(handed_off.value, Val("new"));

  // Non-migrated keys were never disturbed.
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    if (k == migrated || cluster.WriteGroupOf(k) != cluster.ReadGroupOf(k)) {
      continue;
    }
    const ReadOutcome read = cluster.Read(k);
    ASSERT_EQ(read.status, OpStatus::kOk) << k;
    EXPECT_EQ(read.value, Val("old" + std::to_string(k))) << k;
  }
  cluster.Stop();
}

// End-to-end live migration: traffic flows while AddGroup installs the
// next epoch at the halfway mark, and the whole recorded history —
// spanning both epochs — passes the per-key regularity checker.
TEST(ShardedCluster, LiveGroupAddKeepsHistoryRegular) {
  constexpr std::size_t kKeys = 32;
  constexpr int kPairs = 6;
  ShardedCluster cluster(BaseOptions(1, /*use_tcp=*/false, kKeys));
  cluster.Start();

  // AddGroup blocks on the new group's startup, so it must not run on
  // a node thread (where on_progress fires): a side thread waits for
  // the halfway signal.
  constexpr int kHalfway = static_cast<int>(kKeys) * kPairs;  // of 2x
  std::mutex mutex;
  std::condition_variable cv;
  int completed = 0;
  bool stop = false;
  std::thread adder([&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return stop || completed >= kHalfway; });
    if (stop) return;
    lock.unlock();
    cluster.AddGroup();
  });

  const ShardedRun run =
      RunShardedWorkload(cluster, kKeys, kPairs, [&](int done) {
        std::lock_guard<std::mutex> lock(mutex);
        completed = done;
        cv.notify_one();
      });
  {
    std::lock_guard<std::mutex> lock(mutex);
    stop = true;
    cv.notify_one();
  }
  adder.join();

  EXPECT_EQ(cluster.n_groups(), 2u);
  EXPECT_EQ(cluster.epoch(), 1u);
  cluster.Stop();

  EXPECT_EQ(run.failures, 0);
  const CheckReport report = load::CheckRegularPerKey(run.history, {});
  EXPECT_TRUE(report.ok) << report.Summary();
}

}  // namespace
}  // namespace sbft
