// The bounded fair-lossy non-FIFO channel model under the data-link.
#include "net/lossy_channel.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sbft {
namespace {

TEST(LossyChannel, CapacityBoundEnforced) {
  LossyChannel channel({.capacity = 3, .drop_probability = 0.0}, Rng(1));
  EXPECT_TRUE(channel.Push(Bytes{1}));
  EXPECT_TRUE(channel.Push(Bytes{2}));
  EXPECT_TRUE(channel.Push(Bytes{3}));
  EXPECT_FALSE(channel.Push(Bytes{4}));  // over capacity: dropped
  EXPECT_EQ(channel.size(), 3u);
}

TEST(LossyChannel, PopDrainsEverythingNoDuplication) {
  LossyChannel channel({.capacity = 8, .drop_probability = 0.0}, Rng(2));
  std::multiset<Bytes> pushed;
  for (std::uint8_t i = 0; i < 8; ++i) {
    channel.Push(Bytes{i});
    pushed.insert(Bytes{i});
  }
  std::multiset<Bytes> popped;
  while (auto frame = channel.Pop()) popped.insert(*frame);
  EXPECT_EQ(popped, pushed);  // exactly once each, any order
  EXPECT_FALSE(channel.Pop().has_value());
}

TEST(LossyChannel, ReordersButNeverInvents) {
  LossyChannel channel({.capacity = 16, .drop_probability = 0.0}, Rng(3));
  bool reordered = false;
  for (int round = 0; round < 50 && !reordered; ++round) {
    for (std::uint8_t i = 0; i < 10; ++i) channel.Push(Bytes{i});
    for (std::uint8_t i = 0; i < 10; ++i) {
      auto frame = channel.Pop();
      ASSERT_TRUE(frame.has_value());
      ASSERT_LT((*frame)[0], 10);  // never invented
      if ((*frame)[0] != i) reordered = true;
    }
  }
  EXPECT_TRUE(reordered);
}

TEST(LossyChannel, DropProbabilityRoughlyHolds) {
  LossyChannel channel({.capacity = 100000, .drop_probability = 0.3},
                       Rng(4));
  int accepted = 0;
  const int kPushes = 20000;
  for (int i = 0; i < kPushes; ++i) {
    if (channel.Push(Bytes{1})) ++accepted;
  }
  EXPECT_NEAR(accepted, kPushes * 0.7, kPushes * 0.03);
}

TEST(LossyChannel, PreloadGarbageClipsToCapacity) {
  LossyChannel channel({.capacity = 4, .drop_probability = 0.0}, Rng(5));
  channel.PreloadGarbage(10);
  EXPECT_EQ(channel.size(), 4u);
}

TEST(LossyChannel, CorruptInFlightPreservesSizes) {
  LossyChannel channel({.capacity = 4, .drop_probability = 0.0}, Rng(6));
  channel.Push(Bytes{1, 2, 3});
  channel.Push(Bytes{4});
  channel.CorruptInFlight();
  std::multiset<std::size_t> sizes;
  while (auto frame = channel.Pop()) sizes.insert(frame->size());
  EXPECT_EQ(sizes, (std::multiset<std::size_t>{1, 3}));
}

}  // namespace
}  // namespace sbft
