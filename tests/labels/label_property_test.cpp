// Property-based tests for the bounded labeling system: random label
// pools drawn from Rng, checked against the Definition 2 contracts the
// protocol's correctness argument actually uses. Counterexamples print
// the seed and the offending labels, so a failure here is replayable.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "labels/labeling_system.hpp"
#include "labels/timestamp.hpp"

namespace sbft {
namespace {

// A pool the protocol could plausibly hand to next(): mostly valid
// labels, occasionally raw garbage (arbitrary post-fault memory).
std::vector<Label> RandomPool(Rng& rng, const LabelParams& params,
                              std::size_t size) {
  std::vector<Label> pool;
  pool.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    pool.push_back(rng.NextBool(0.8) ? RandomValidLabel(rng, params)
                                     : RandomGarbageLabel(rng, params));
  }
  return pool;
}

TEST(LabelProperty, NextDominatesEveryPoolMember) {
  // Definition 2's one-line spec: for |L'| <= k, every l in L'
  // satisfies l < next(L'). Checked across k values and pool sizes,
  // including pools containing garbage (sanitized internally) and the
  // distrusted-suffix variants the register client uses.
  Rng rng(2026);
  for (std::uint32_t k : {2u, 3u, 5u, 8u}) {
    LabelingSystem system(k);
    for (int round = 0; round < 400; ++round) {
      const std::size_t size = rng.NextBelow(k + 1);
      const std::vector<Label> pool = RandomPool(rng, system.params(), size);
      const std::size_t distrusted = rng.NextBelow(size + 1);
      const Label next = system.Next(pool, distrusted);
      ASSERT_TRUE(system.IsValid(next)) << "k=" << k << " round=" << round;
      for (const Label& member : pool) {
        const Label sanitized = system.Sanitize(member);
        EXPECT_TRUE(system.Precedes(sanitized, next))
            << "k=" << k << " round=" << round << " member "
            << sanitized.ToString() << " not dominated by "
            << next.ToString();
        EXPECT_FALSE(system.Precedes(next, sanitized))
            << "k=" << k << " round=" << round;
      }
    }
  }
}

TEST(LabelProperty, PrecedenceIsIrreflexiveAndAntisymmetric) {
  // Transitivity is intentionally absent (that is the price of
  // boundedness), but irreflexivity and antisymmetry must be absolute —
  // a 2-cycle in < would let the WTsG certify two values as dominating
  // each other.
  Rng rng(2027);
  for (std::uint32_t k : {2u, 3u, 6u}) {
    LabelingSystem system(k);
    for (int round = 0; round < 2000; ++round) {
      const Label a = RandomValidLabel(rng, system.params());
      const Label b = RandomValidLabel(rng, system.params());
      EXPECT_FALSE(system.Precedes(a, a));
      EXPECT_FALSE(system.Precedes(a, b) && system.Precedes(b, a))
          << a.ToString() << " <> " << b.ToString();
    }
  }
}

TEST(LabelProperty, InvalidLabelsAreIncomparable) {
  Rng rng(2028);
  LabelingSystem system(4);
  for (int round = 0; round < 500; ++round) {
    Label garbage = RandomGarbageLabel(rng, system.params());
    if (system.IsValid(garbage)) continue;  // rarely lands valid
    const Label valid = RandomValidLabel(rng, system.params());
    EXPECT_FALSE(system.Precedes(garbage, valid));
    EXPECT_FALSE(system.Precedes(valid, garbage));
    EXPECT_FALSE(system.Precedes(garbage, garbage));
  }
}

TEST(LabelProperty, SanitizeIsValidIdempotentAndIdentityOnValid) {
  Rng rng(2029);
  for (std::uint32_t k : {2u, 4u, 7u}) {
    LabelingSystem system(k);
    for (int round = 0; round < 1000; ++round) {
      const Label garbage = RandomGarbageLabel(rng, system.params());
      const Label sanitized = system.Sanitize(garbage);
      ASSERT_TRUE(system.IsValid(sanitized))
          << "k=" << k << " from " << garbage.ToString();
      EXPECT_EQ(system.Sanitize(sanitized), sanitized);
      const Label valid = RandomValidLabel(rng, system.params());
      EXPECT_EQ(system.Sanitize(valid), valid);
    }
  }
}

TEST(LabelProperty, SelectionOrderIsTotalAndAntisymmetricOnTimestamps) {
  // SelectionLess breaks WTsG election ties; if two distinct
  // timestamps were mutually unordered the election would depend on
  // scan order, so totality and antisymmetry are load-bearing.
  Rng rng(2030);
  LabelingSystem system(4);
  const auto random_ts = [&] {
    Timestamp ts;
    ts.label = rng.NextBool(0.9) ? RandomValidLabel(rng, system.params())
                                 : RandomGarbageLabel(rng, system.params());
    // Small id range so equal-label and equal-id collisions actually
    // occur in the sample.
    ts.writer_id = static_cast<ClientId>(rng.NextBelow(4));
    return ts;
  };
  for (int round = 0; round < 3000; ++round) {
    const Timestamp a = random_ts();
    const Timestamp b = random_ts();
    const bool ab = SelectionLess(a, b, system.params());
    const bool ba = SelectionLess(b, a, system.params());
    if (a == b) {
      EXPECT_FALSE(ab || ba) << a.ToString();
    } else {
      EXPECT_TRUE(ab != ba)
          << a.ToString() << " vs " << b.ToString() << " ab=" << ab;
    }
  }
}

TEST(LabelProperty, TimestampPrecedenceRefusesToOrderIncomparableLabels) {
  // Writer ids order timestamps only when labels are equal; for
  // incomparable labels an id edge would let a stale write dominate a
  // fresh one (see timestamp.cpp). Find incomparable pairs by sampling.
  Rng rng(2031);
  LabelingSystem system(3);
  int incomparable_seen = 0;
  for (int round = 0; round < 4000 && incomparable_seen < 50; ++round) {
    const Label la = RandomValidLabel(rng, system.params());
    const Label lb = RandomValidLabel(rng, system.params());
    if (la == lb || system.Precedes(la, lb) || system.Precedes(lb, la)) {
      continue;
    }
    incomparable_seen++;
    const Timestamp a{la, 0};
    const Timestamp b{lb, 1};
    EXPECT_FALSE(Precedes(a, b, system.params()));
    EXPECT_FALSE(Precedes(b, a, system.params()));
  }
  EXPECT_GE(incomparable_seen, 10)
      << "sampling never produced incomparable labels; weak test";
}

}  // namespace
}  // namespace sbft
