// Reactor + reactor-backed TcpBus tests: event dispatch and deferred
// close on the owning loop; torn-frame reassembly across recv
// boundaries (raw-socket byte dribbling); interleaved writers to one
// connection under backpressure; clean shutdown with writes queued
// behind a full socket.
#include "runtime/reactor.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/tcp.hpp"

namespace sbft {
namespace {

bool WaitUntil(const std::function<bool()>& done, int ms = 5000) {
  for (int waited = 0; waited < ms; ++waited) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

TEST(Reactor, DispatchesOnRegisteredFd) {
  Reactor reactor(1);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::atomic<int> fired{0};
  ASSERT_TRUE(reactor.Add(fds[0], EPOLLIN, [&](std::uint32_t events) {
    EXPECT_TRUE(events & EPOLLIN);
    char buffer[8];
    [[maybe_unused]] ssize_t n = ::read(fds[0], buffer, sizeof(buffer));
    fired.fetch_add(1);
  }));
  reactor.Start();
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  EXPECT_TRUE(WaitUntil([&] { return fired.load() >= 1; }));
  reactor.Stop();
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Reactor, RemoveAndCloseRunsOnLoopAndCloses) {
  Reactor reactor(2);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(reactor.Add(fds[0], EPOLLIN, [](std::uint32_t) {}));
  reactor.Start();
  std::atomic<bool> closed{false};
  reactor.RemoveAndClose(fds[0], [&] { closed.store(true); });
  EXPECT_TRUE(WaitUntil([&] { return closed.load(); }));
  // The fd is really closed: writing to the pipe now raises EPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  EXPECT_EQ(::write(fds[1], "x", 1), -1);
  reactor.Stop();
  ::close(fds[1]);
}

TEST(Reactor, StopRunsPendingRemovalsInline) {
  Reactor reactor(1);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(reactor.Add(fds[0], EPOLLIN, [](std::uint32_t) {}));
  reactor.Start();
  reactor.Stop();
  // Post-stop removal must still run (inline) and not hang.
  std::atomic<bool> closed{false};
  reactor.RemoveAndClose(fds[0], [&] { closed.store(true); });
  EXPECT_TRUE(closed.load());
  ::close(fds[1]);
}

// --- Torn-frame reassembly ----------------------------------------------

void StoreLe32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

struct BatchCollector {
  std::mutex mutex;
  std::vector<Bytes> frames;
  std::vector<NodeId> sources;

  TcpBus::DeliverFn Fn() {
    return [this](NodeId, std::vector<TcpBus::Delivery>&& batch) {
      std::lock_guard<std::mutex> lock(mutex);
      for (auto& delivery : batch) {
        sources.push_back(delivery.src);
        frames.push_back(std::move(delivery.frame));
      }
    };
  }
  std::size_t Count() {
    std::lock_guard<std::mutex> lock(mutex);
    return frames.size();
  }
};

TEST(ReactorTcp, TornFramesReassembleAcrossRecvBoundaries) {
  BatchCollector collector;
  TcpBus bus(collector.Fn());
  const std::uint16_t port = bus.AddNode(0);
  bus.Start();

  // Hand-framed wire bytes: three frames from "node 7", the middle one
  // empty, the last one 1000 bytes.
  std::vector<std::uint8_t> wire;
  auto append_frame = [&wire](std::uint32_t src, const Bytes& payload) {
    std::uint8_t header[8];
    StoreLe32(header, static_cast<std::uint32_t>(payload.size()));
    StoreLe32(header + 4, src);
    wire.insert(wire.end(), header, header + 8);
    wire.insert(wire.end(), payload.begin(), payload.end());
  };
  append_frame(7, Bytes{1, 2, 3});
  append_frame(7, Bytes{});
  Bytes big(1000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i);
  }
  append_frame(7, big);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Dribble the stream in 7-byte chunks with small pauses, so headers
  // and payloads tear across recv calls in every possible alignment.
  for (std::size_t off = 0; off < wire.size(); off += 7) {
    const std::size_t len = std::min<std::size_t>(7, wire.size() - off);
    ASSERT_EQ(::send(fd, wire.data() + off, len, 0),
              static_cast<ssize_t>(len));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  ASSERT_TRUE(WaitUntil([&] { return collector.Count() >= 3; }));
  std::lock_guard<std::mutex> lock(collector.mutex);
  EXPECT_EQ(collector.sources, (std::vector<NodeId>{7, 7, 7}));
  EXPECT_EQ(collector.frames[0], (Bytes{1, 2, 3}));
  EXPECT_TRUE(collector.frames[1].empty());
  EXPECT_EQ(collector.frames[2], big);
  ::close(fd);
  bus.Stop();
}

TEST(ReactorTcp, OversizedFrameDropsConnectionNotProcess) {
  BatchCollector collector;
  TcpBus bus(collector.Fn());
  const std::uint16_t port = bus.AddNode(0);
  bus.Start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::uint8_t header[8];
  StoreLe32(header, 0xffffffffu);  // length far beyond kMaxTcpFrame
  StoreLe32(header + 4, 3);
  ASSERT_EQ(::send(fd, header, sizeof(header), 0), 8);

  // The bus must close the connection: the peer observes EOF/reset.
  char buffer[16];
  ssize_t n = -2;
  EXPECT_TRUE(WaitUntil([&] {
    n = ::recv(fd, buffer, sizeof(buffer), MSG_DONTWAIT);
    return n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK);
  }));
  EXPECT_EQ(collector.Count(), 0u);
  ::close(fd);
  bus.Stop();
}

// --- Backpressure: interleaved writers to one connection ----------------

// Node thread (Send+Flush) and reactor loop (EPOLLOUT continuation)
// alternate writing one connection while the receiving side is slowed
// by a deliberately blocking deliver callback. Total volume (~24MB of
// 64KB frames) far exceeds socket buffers, so the EAGAIN path and the
// epollout_armed handoff are exercised continuously. Frames must still
// arrive complete and in order.
TEST(ReactorTcp, BackpressurePreservesOrderAcrossInterleavedFlushers) {
  std::mutex mutex;
  std::vector<std::uint32_t> seen;
  std::atomic<bool> slow{true};
  TcpBus::Options options;
  options.reactor_threads = 2;  // receiver loop can stall independently
  TcpBus bus(
      [&](NodeId, std::vector<TcpBus::Delivery>&& batch) {
        if (slow.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        std::lock_guard<std::mutex> lock(mutex);
        for (auto& delivery : batch) {
          ASSERT_EQ(delivery.frame.size(), std::size_t{64} << 10);
          std::uint32_t sequence;
          std::memcpy(&sequence, delivery.frame.data(), sizeof(sequence));
          seen.push_back(sequence);
        }
      },
      options);
  bus.AddNode(0);
  bus.AddNode(1);
  bus.Start();

  constexpr std::uint32_t kFrames = 384;  // * 64KB = 24MB
  Bytes payload(std::size_t{64} << 10, 0xab);
  for (std::uint32_t i = 0; i < kFrames; ++i) {
    std::memcpy(payload.data(), &i, sizeof(i));
    ASSERT_TRUE(bus.Send(0, 1, payload));
    if (i % 4 == 3) bus.Flush(0);
    if (i == kFrames / 2) slow.store(false);  // let the tail drain fast
  }
  bus.Flush(0);

  ASSERT_TRUE(WaitUntil(
      [&] {
        std::lock_guard<std::mutex> lock(mutex);
        return seen.size() >= kFrames;
      },
      20000));
  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(seen.size(), kFrames);
  for (std::uint32_t i = 0; i < kFrames; ++i) {
    ASSERT_EQ(seen[i], i) << "frame order broke at " << i;
  }
  bus.Stop();
}

TEST(ReactorTcp, StopWhileBackpressured) {
  std::atomic<std::size_t> delivered{0};
  TcpBus bus([&](NodeId, std::vector<TcpBus::Delivery>&& batch) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    delivered.fetch_add(batch.size());
  });
  bus.AddNode(0);
  bus.AddNode(1);
  bus.Start();
  Bytes payload(std::size_t{256} << 10, 0xcd);
  for (int i = 0; i < 64; ++i) {
    if (!bus.Send(0, 1, payload)) break;
    bus.Flush(0);
  }
  // Stop with megabytes still queued behind a stalled reader: must not
  // hang, crash, or leak (ASan/TSan runs cover the latter).
  bus.Stop();
}

}  // namespace
}  // namespace sbft
