// Black-box checker for the MWMR regular register specification
// (§II-A; multi-writer regularity per Shao, Pierce, Welch [11]).
//
// Requirements on the history:
//   * write values must be unique (drivers tag values with client id and
//     sequence number), so a read's value identifies its write;
//   * the history carries invocation/return times on the fictional
//     global clock (virtual time of the simulation).
//
// The check constructs a constraint graph over writes and tests it for
// acyclicity:
//   * real-time edges: w -> w' when w returned before w' was invoked
//     (any serialization must extend real-time precedence);
//   * read edges: an ok-read r returning write w_r that is NOT
//     concurrent with r requires w' ->* w_r for every write w'
//     completed before r's invocation (w_r must be the last such write
//     in the common serialization); a read may alternatively return any
//     write concurrent with it (Validity's second disjunct), which adds
//     no ordering constraint.
// A cycle means no total order of writes satisfies all reads: the
// Consistency clause ("perceived in the same order by any two reads")
// or Validity is violated. Point-wise violations (value never written,
// value from the future, read of a superseded write) are reported with
// their own messages.
#pragma once

#include <string>
#include <vector>

#include "spec/history.hpp"

namespace sbft {

struct CheckReport {
  bool ok = true;
  std::vector<std::string> violations;

  void AddViolation(std::string what) {
    ok = false;
    violations.push_back(std::move(what));
  }
  [[nodiscard]] std::string Summary() const;
};

struct CheckOptions {
  /// Reads invoked before this time are in the stabilization window:
  /// their outcome (garbage, abort) is not judged. The paper guarantees
  /// regularity only for reads starting after the first complete write
  /// (Theorem 2 / Definition 1's suffix).
  VirtualTime stabilized_from = 0;
  /// Values that may legally be returned without a matching write (the
  /// pre-fault register content in scenarios without corruption).
  std::vector<Bytes> grandfathered_values;
  /// Fuzz mode: stop collecting after this many violations (0 = no cap).
  /// Campaign loops only need to know *that* a scenario violates, plus a
  /// sample message for triage — not the full quadratic enumeration over
  /// a large randomized history.
  std::size_t max_violations = 0;
};

/// Validate the MWMR regular register specification over `history`.
[[nodiscard]] CheckReport CheckRegular(const History& history,
                                       const CheckOptions& options = {});

/// Necessary condition for ATOMICITY that regular registers may
/// violate: two non-concurrent reads must not observe writes in
/// inverted order (read r1 preceding r2 returning a write that strictly
/// supersedes r2's). The paper's protocol only promises regularity;
/// this check measures how far the implementation is from atomic in
/// practice (spoiler: the union-graph head election makes inversions
/// rare to nonexistent — see tests/spec/atomicity_gap_test.cpp).
[[nodiscard]] CheckReport CheckNoNewOldInversion(
    const History& history, const CheckOptions& options = {});

}  // namespace sbft
