// Unbounded (sequence-number) timestamps, used by the baseline
// protocols (ABD and the non-stabilizing BFT register of [14]). Their
// unbounded growth — and their inability to recover once a transient
// fault plants a huge corrupted value — is what experiment E4/E5
// contrasts with the paper's bounded labels.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/serialize.hpp"

namespace sbft {

struct UnboundedTs {
  std::uint64_t seq = 0;
  std::uint32_t writer_id = 0;

  friend auto operator<=>(const UnboundedTs&, const UnboundedTs&) = default;

  [[nodiscard]] std::string ToString() const {
    return "uts{" + std::to_string(seq) + "," + std::to_string(writer_id) +
           "}";
  }

  void Encode(BufWriter& w) const {
    w.Put<std::uint64_t>(seq);
    w.Put<std::uint32_t>(writer_id);
  }
  static UnboundedTs Decode(BufReader& r) {
    UnboundedTs ts;
    ts.seq = r.Get<std::uint64_t>();
    ts.writer_id = r.Get<std::uint32_t>();
    return ts;
  }
};

}  // namespace sbft
