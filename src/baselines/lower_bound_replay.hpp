// Executable Theorem 1: the adversarial execution from the lower-bound
// proof, replayed against a TM_1R protocol (naive_quorum.hpp).
//
// Proof structure (§III), generalized from 5 servers to 5f by replacing
// each server with a group of f:
//   * groups: A_fast (2f correct), A_slow (f correct), S4 (f correct,
//     initially corrupted to hold ts2), B (f Byzantine, scripted);
//     with `extra_correct`, A_fast grows by that many servers (n > 5f
//     deployments, where the attack provably fails);
//   * labels precomputed exactly as the adversary would:
//       tsx = initial, tb = Byzantine's private label,
//       ts0 = next({tsx, tb}), ts1 = next({ts0, tb}),
//       ts2 = next({ts1, tb})   <- planted in S4 by the transient fault;
//   * schedule: w0 and w1 run with S4 fully held (the proof's "s4 was
//     slow"); r1 reads with A_slow held, so its reply multiset is
//     {ts1 x (A_fast), ts2 x (S4 + Byzantine mimicking S4)};
//     w2 runs with S4's replies held until the timestamp is computed
//     (so it introduces exactly ts2) and with the WRITE to A_slow frozen
//     in flight (the proof's "s3 is slow in modifying its timestamp");
//     r2 reads with S4 held, so its multiset is
//     {ts2 x (A_fast), ts1 x (A_slow + Byzantine mimicking A_slow)}.
//
// With n = 5f the two reads face timestamp multisets with identical
// counts ({X x 2f, Y x 2f}), so any deterministic multiset decision
// returns "the same shape" twice while regularity demands w1's value
// from r1 and w2's value from r2 — at least one read must violate.
// With one extra correct server (n = 5f+1) the fresh timestamp holds a
// strict plurality (2f+1 vs 2f) in both reads and the attack fails.
#pragma once

#include <cstdint>
#include <string>

#include "spec/history.hpp"
#include "spec/regular_checker.hpp"

namespace sbft {

struct ReplayOptions {
  std::uint32_t f = 1;
  /// Additional correct servers beyond 5f (0 = the impossible setting,
  /// 1 = the paper's tight bound n = 5f+1).
  std::uint32_t extra_correct = 0;
  std::uint64_t seed = 1;
};

struct ReplayResult {
  bool all_ops_completed = false;
  Bytes r1_value;
  Bytes r2_value;
  History history;
  CheckReport report;
  /// Convenience: !report.ok.
  [[nodiscard]] bool violated() const { return !report.ok; }
  [[nodiscard]] std::string Summary() const;
};

ReplayResult RunTheorem1Replay(const ReplayOptions& options);

}  // namespace sbft
