#!/usr/bin/env python3
"""Repo-aware linter for determinism and hot-path invariants.

Generic linters cannot know that src/sim must be bit-deterministic or
that Frame buffers must come from the pool; this tool encodes those
repo rules and runs in CI next to clang-tidy (which covers the generic
checks). Rules:

  wall-clock          No wall-clock reads (steady/system/high_resolution
                      clock, time(), gettimeofday, clock_gettime) in the
                      deterministic zone: simulated time comes from the
                      World, never the host.
  nondet-random       No std::random_device / rand() / srand() /
                      random() in the deterministic zone: all randomness
                      flows from the seeded sbft::Rng so a replay token
                      reproduces bit-identically.
  thread-id           No std::this_thread::get_id / pthread_self in the
                      deterministic zone: thread identity varies run to
                      run.
  address-as-value    No reinterpret_cast to [u]intptr_t and no
                      std::hash over pointers in the deterministic zone:
                      ASLR makes addresses non-reproducible, so they
                      must never feed traces, hashes, or ordering.
  unordered-iteration No range-for / begin() iteration over
                      std::unordered_map / std::unordered_set in code
                      that feeds traces, checker verdicts, or serialized
                      output (deterministic zone + src/spec + src/net):
                      bucket order is libstdc++-internal and changes
                      with seed/ABI. Iterate a sorted mirror or switch
                      to std::map.
  raw-alloc           No raw `new` / malloc / calloc in hot-path files
                      that are supposed to draw from FramePool /
                      SmallVector (see HOT_PATH_FILES).

Escape hatches, for the few legitimate sites:

  * inline: a `// sbft-lint: allow(<rule>)` comment on the offending
    line or the line directly above it;
  * committed allowlist: tools/sbft_lint_allow.txt with
    `<path-glob>:<rule>[:<substring>]` entries (see that file).

Usage:
  tools/sbft_lint.py [--repo-root DIR] [paths...]   # default: src
  tools/sbft_lint.py --list-rules
  tools/sbft_lint.py --all-zones file.cpp     # fixture mode: every rule
  tools/sbft_lint.py --check-fixture tests/lint/fixtures/bad_wall_clock.cpp

Exit codes: 0 clean, 1 findings (or fixture expectation failed),
2 usage error.

Implementation: token-level by default — comments and string literals
are blanked (preserving line numbers) before the rules run, so prose
like "the new value" never trips raw-alloc. When the libclang python
bindings are importable the unordered-iteration rule upgrades to a real
AST walk (range-for over a declared unordered container); everything
else stays token-level, which is exact enough for these patterns and
keeps the tool dependency-free in CI.
"""

from __future__ import annotations

import argparse
import fnmatch
import os
import re
import sys
from dataclasses import dataclass

# --- Repo layout -----------------------------------------------------------

# Directories whose code must be bit-deterministic (the simulator, the
# protocol automata, labels, baselines, and fuzz replay).
DETERMINISTIC_ZONE = (
    "src/sim",
    "src/core",
    "src/labels",
    "src/baselines",
    "src/fuzz",
)

# Zone for unordered-iteration: everything deterministic plus the
# checker (verdicts) and the codec (serialized output).
TRACE_ZONE = DETERMINISTIC_ZONE + ("src/spec", "src/net")

# Files whose allocations are part of a measured hot path and must use
# FramePool / SmallVector / reused capacity instead of raw new/malloc.
HOT_PATH_FILES = (
    "src/common/buffer_pool.hpp",
    "src/common/frame.hpp",
    "src/common/serialize.hpp",
    "src/common/small_vector.hpp",
    "src/net/message.cpp",
    "src/net/message.hpp",
    "src/core/mux.cpp",
    "src/core/mux.hpp",
    "src/core/mux_flush.cpp",
    "src/core/mux_flush.hpp",
    "src/core/shard_map.cpp",
    "src/core/shard_map.hpp",
    "src/sim/event_queue.hpp",
    "src/runtime/mailbox.hpp",
    "src/runtime/sharded_cluster.cpp",
    "src/runtime/sharded_cluster.hpp",
    "src/runtime/tcp.cpp",
)

ALLOWLIST_FILE = os.path.join("tools", "sbft_lint_allow.txt")

# (rel-path, rule) pairs delegated to the flow-aware analyzer
# (tools/sbft_analyze.py), which runs in the same lint tier. Its
# wall-clock-flow check distinguishes reporting-only clock reads
# (elapsed/budget arithmetic, count(), comparisons) from clock values
# seeding state — precision this token pass cannot have, which used to
# cost a whole-file allowlist entry. Fixture mode (--all-zones) keeps
# the token rule armed so the corpus still covers it.
AST_DELEGATED = {
    ("src/fuzz/campaign.cpp", "wall-clock"),
}

# --- Rules -----------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    name: str
    pattern: re.Pattern
    zone: tuple  # path prefixes (or exact files) the rule applies to
    message: str


RULES = [
    Rule(
        "wall-clock",
        re.compile(
            r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
            r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"
        ),
        DETERMINISTIC_ZONE,
        "wall-clock read in the deterministic zone (use World time)",
    ),
    Rule(
        "nondet-random",
        re.compile(
            r"std::random_device|\brandom_device\b"
            r"|(?<![:\w])s?rand\s*\(|(?<![:\w])random\s*\("
        ),
        DETERMINISTIC_ZONE,
        "non-seeded randomness in the deterministic zone (use sbft::Rng)",
    ),
    Rule(
        "thread-id",
        re.compile(r"this_thread::get_id|\bpthread_self\s*\("),
        DETERMINISTIC_ZONE,
        "thread identity in the deterministic zone (varies run to run)",
    ),
    Rule(
        "address-as-value",
        re.compile(
            r"reinterpret_cast<\s*(std::)?u?intptr_t\s*>"
            r"|std::hash<[^>\n]*\*\s*>"
        ),
        DETERMINISTIC_ZONE,
        "pointer value used as data in the deterministic zone (ASLR breaks replay)",
    ),
    Rule(
        "raw-alloc",
        re.compile(r"(?<![:\w.])\bnew\b(?!\s*\()|\b(m|c)alloc\s*\("),
        HOT_PATH_FILES,
        "raw allocation in a hot-path file (use FramePool/SmallVector/reuse)",
    ),
]

UNORDERED_RULE = Rule(
    "unordered-iteration",
    re.compile(r""),  # structural; see check_unordered_iteration
    TRACE_ZONE,
    "iteration over an unordered container feeding traces/verdicts/output "
    "(bucket order is not deterministic)",
)

ALL_RULE_NAMES = [r.name for r in RULES] + [UNORDERED_RULE.name]

ALLOW_RE = re.compile(r"//\s*sbft-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str
    snippet: str


# --- Source preprocessing --------------------------------------------------


def blank_comments_and_strings(text: str) -> str:
    """Replace comment/string contents with spaces, preserving newlines
    and column positions so findings report real locations."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def inline_allows(text: str) -> dict:
    """Map line number -> set of allowed rules, from the raw (un-blanked)
    source. An allow covers its own line and the next line."""
    allows: dict = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            allows.setdefault(lineno, set()).update(rules)
            allows.setdefault(lineno + 1, set()).update(rules)
    return allows


# --- Allowlist -------------------------------------------------------------


def load_allowlist(repo_root: str):
    entries = []
    path = os.path.join(repo_root, ALLOWLIST_FILE)
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(":", 2)
            if len(parts) < 2:
                continue
            glob, rule = parts[0], parts[1]
            substring = parts[2] if len(parts) > 2 else None
            entries.append((glob, rule, substring))
    return entries


def allowlisted(entries, rel_path: str, rule: str, snippet: str) -> bool:
    for glob, allowed_rule, substring in entries:
        if allowed_rule != rule:
            continue
        if not fnmatch.fnmatch(rel_path, glob):
            continue
        if substring is not None and substring not in snippet:
            continue
        return True
    return False


# --- unordered-iteration ---------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+(\w+)\s*[;{=(]"
)


def check_unordered_iteration(blanked: str):
    """Token-level: collect names declared as unordered containers, then
    flag range-for or .begin() iteration over them. Lookup/find/erase
    stay allowed — only ordered traversal leaks bucket order."""
    names = set(UNORDERED_DECL_RE.findall(blanked))
    findings = []
    if not names:
        return findings
    alt = "|".join(re.escape(n) for n in sorted(names))
    # Comparing a find() result against end() is a lookup, not a
    # traversal, so only begin()-family calls and range-for count.
    iter_re = re.compile(
        r"for\s*\([^;)]*:\s*[*&]?(?:this->)?(" + alt + r")\s*\)"
        r"|\b(" + alt + r")\s*\.\s*(?:c?begin|rbegin)\s*\("
    )
    for lineno, line in enumerate(blanked.splitlines(), 1):
        if iter_re.search(line):
            findings.append(lineno)
    return findings


def libclang_unordered_iteration(path: str, repo_root: str):
    """AST-precise variant when the libclang bindings are importable;
    returns None to signal fallback."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
        tu = index.parse(
            path,
            args=["-std=c++20", "-I", os.path.join(repo_root, "src")],
            options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0,
        )
    except Exception:  # unparsable without full flags: fall back
        return None
    hits = []

    def walk(node):
        if node.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
            for child in node.get_children():
                t = child.type.spelling
                if "unordered_map" in t or "unordered_set" in t:
                    hits.append(node.location.line)
                break
        for child in node.get_children():
            if child.location.file and child.location.file.name == path:
                walk(child)

    walk(tu.cursor)
    return hits


# --- Driver ----------------------------------------------------------------


def in_zone(rel_path: str, zone) -> bool:
    rel = rel_path.replace(os.sep, "/")
    for entry in zone:
        if rel == entry or rel.startswith(entry.rstrip("/") + "/"):
            return True
    return False


def lint_file(path: str, repo_root: str, entries, all_zones: bool):
    rel = os.path.relpath(os.path.abspath(path), repo_root).replace(os.sep, "/")
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"sbft_lint: cannot read {path}: {e}", file=sys.stderr)
        return []
    allows = inline_allows(text)
    blanked = blank_comments_and_strings(text)
    lines = blanked.splitlines()
    findings = []

    def emit(lineno, rule, message):
        if rule in allows.get(lineno, ()):
            return
        snippet = lines[lineno - 1].strip() if lineno - 1 < len(lines) else ""
        if allowlisted(entries, rel, rule, snippet):
            return
        findings.append(Finding(rel, lineno, rule, message, snippet))

    for rule in RULES:
        if not (all_zones or in_zone(rel, rule.zone)):
            continue
        if not all_zones and (rel, rule.name) in AST_DELEGATED:
            continue
        for lineno, line in enumerate(lines, 1):
            if rule.pattern.search(line):
                emit(lineno, rule.name, rule.message)

    if all_zones or in_zone(rel, UNORDERED_RULE.zone):
        hits = libclang_unordered_iteration(path, repo_root)
        if hits is None:
            hits = check_unordered_iteration(blanked)
        for lineno in hits:
            emit(lineno, UNORDERED_RULE.name, UNORDERED_RULE.message)

    return findings


def collect_files(paths):
    exts = (".cpp", ".hpp", ".cc", ".h")
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(exts):
                        files.append(os.path.join(root, name))
        elif p.endswith(exts):
            files.append(p)
    return files


def check_fixture(path: str, repo_root: str) -> int:
    """Fixture protocol: bad_<rule>[...].cpp must flag exactly <rule>
    (with every other rule silent); good_*.cpp must be clean. Both run
    with --all-zones semantics and no allowlist."""
    base = os.path.basename(path)
    findings = lint_file(path, repo_root, entries=[], all_zones=True)
    rules_hit = {f.rule for f in findings}
    if base.startswith("good_"):
        if findings:
            for f in findings:
                print(f"{f.path}:{f.line}: [{f.rule}] unexpected: {f.snippet}")
            return 1
        print(f"{base}: clean, as expected")
        return 0
    if base.startswith("bad_"):
        stem = base[len("bad_"):].rsplit(".", 1)[0]
        expected = next(
            (r for r in sorted(ALL_RULE_NAMES, key=len, reverse=True)
             if stem.replace("_", "-").startswith(r)),
            None,
        )
        if expected is None:
            print(f"{base}: cannot derive expected rule from name", file=sys.stderr)
            return 2
        if rules_hit == {expected}:
            print(f"{base}: flagged [{expected}], as expected")
            return 0
        print(f"{base}: expected exactly [{expected}], got {sorted(rules_hit)}")
        return 1
    print(f"{base}: fixture names must start with bad_ or good_", file=sys.stderr)
    return 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--repo-root", default=None,
                        help="repo root (default: this script's parent dir)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--all-zones", action="store_true",
                        help="apply every rule to every input file "
                             "(fixture corpus mode)")
    parser.add_argument("--check-fixture", metavar="FILE",
                        help="verify one tests/lint fixture's expected verdict")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES + [UNORDERED_RULE]:
            print(f"{rule.name}: {rule.message}")
        return 0

    repo_root = args.repo_root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.check_fixture:
        return check_fixture(args.check_fixture, repo_root)

    paths = args.paths or [os.path.join(repo_root, "src")]
    entries = [] if args.all_zones else load_allowlist(repo_root)
    findings = []
    for path in collect_files(paths):
        findings.extend(lint_file(path, repo_root, entries, args.all_zones))

    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}\n    {f.snippet}")
    if findings:
        print(f"sbft_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
