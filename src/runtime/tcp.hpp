// TCP transport on 127.0.0.1 for the threaded runtime, built on the
// epoll Reactor (runtime/reactor.hpp) instead of thread-per-connection.
//
// Every node owns a listening socket on an ephemeral port; peers
// connect lazily on first send and keep the connection. Frames are
// length-prefixed: [u32 length][u32 sender id][payload]. All sockets
// are non-blocking and TCP_NODELAY; batching happens at the
// application layer:
//
//   * Send() only QUEUES a framed buffer on the (src, dst) connection
//     and marks it dirty for `src`. Flush(src) walks the dirty list and
//     writes each connection's whole queue with one sendmsg/iovec —
//     a quorum broadcast or a batch of pipelined replies coalesces
//     into one syscall per connection. The node loop calls Flush once
//     per mailbox drain.
//   * When the socket buffer fills (EAGAIN / partial write), the
//     reactor takes over: EPOLLOUT is armed and the owning loop
//     continues the flush, preserving frame order.
//   * Reads are edge-triggered: one reactor callback drains the socket,
//     decodes every complete frame in the receive buffer, and delivers
//     them as ONE batch (all frames of a burst share a single deliver
//     call, so the cluster pays one mailbox lock per burst).
//
// Error handling degrades instead of aborting: a connect failure or an
// EPIPE/ECONNRESET on send marks the connection dead, drops its queue,
// and the next Send reconnects lazily. Malformed inbound frames (length
// out of bounds) drop the connection — the peer reconnects; the
// protocol layer tolerates loss-free FIFO per connection, which each
// individual TCP connection provides.
//
// Threading contract: for each `src`, Send/Flush must be called from
// one thread at a time (the node's own thread in ThreadCluster).
// Different `src` values are fully concurrent, and the reactor loops
// run concurrently with everything.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/thread_annotations.hpp"
#include "runtime/reactor.hpp"
#include "sim/types.hpp"

namespace sbft {

class TcpBus {
 public:
  struct Options {
    /// Reactor loop threads shared by all sockets of this bus.
    std::size_t reactor_threads = 1;
    /// A connection whose unsent queue exceeds this is dropped (the
    /// peer stopped reading); ops on it fail/retry instead of the node
    /// buffering without bound.
    std::size_t max_pending_bytes = 64u << 20;
  };

  /// One decoded inbound frame: the sender id from the wire header plus
  /// the payload (drawn from the reactor thread's FramePool).
  struct Delivery {
    NodeId src = kNoNode;
    Bytes frame;
  };
  /// All frames of one receive burst on one connection, in order, for
  /// the node that owns the listening socket.
  using DeliverFn =
      std::function<void(NodeId dst, std::vector<Delivery>&& batch)>;

  TcpBus(DeliverFn deliver, Options options);
  explicit TcpBus(DeliverFn deliver) : TcpBus(std::move(deliver), Options{}) {}
  ~TcpBus();

  /// Create the listening socket for `node`; returns the bound port.
  /// Call once per node before Start().
  std::uint16_t AddNode(NodeId node);

  /// Register listeners with the reactor and start its loops.
  void Start();
  void Stop();

  /// Queue a frame from `src` to `dst` (connects lazily). Returns false
  /// if the bus is stopped, `dst` is unknown, or the connection could
  /// not be (re)established. The frame is not on the wire until
  /// Flush(src) — or the reactor, if the connection is backlogged.
  bool Send(NodeId src, NodeId dst, BytesView frame);

  /// Write out everything queued by `src` since its last Flush; one
  /// sendmsg per touched connection (more only if a queue exceeds the
  /// iovec limit or the socket buffer fills).
  void Flush(NodeId src);

  /// Chaos hook: forcibly drop the (src, dst) connection as if the peer
  /// reset it. Queued frames are lost; the next Send reconnects.
  void DropConnection(NodeId src, NodeId dst);

  /// Connections dropped on error so far (send-side degradation).
  [[nodiscard]] std::uint64_t connections_dropped() const {
    return connections_dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Listener {
    int fd = -1;
    std::uint16_t port = 0;
    std::atomic<bool> fd_closed{false};
  };

  /// Outgoing connection state. `pending`/`front_offset`/flags are
  /// guarded by `mutex` (contended only between the sending node thread
  /// and the reactor loop continuing a backlogged flush).
  struct Connection {
    int fd = -1;
    NodeId src = kNoNode;
    NodeId dst = kNoNode;
    /// Held across reactor interest-set changes (FlushLocked arming
    /// EPOLLOUT) and the deferred close (MarkDeadLocked), both of
    /// which take reactor locks — so it orders before them.
    Mutex mutex ACQUIRED_BEFORE(lock_order::kReactorLoop,
                                lock_order::kReactorOwner);
    std::deque<Bytes> pending GUARDED_BY(mutex);
    /// Bytes of pending.front() already sent.
    std::size_t front_offset GUARDED_BY(mutex) = 0;
    std::size_t pending_bytes GUARDED_BY(mutex) = 0;
    bool epollout_armed GUARDED_BY(mutex) = false;
    bool dead GUARDED_BY(mutex) = false;
    bool in_dirty = false;  // touched only by the src node thread
    std::atomic<bool> fd_closed{false};
  };

  /// Accepted (inbound) connection. All fields are owned by the reactor
  /// loop the fd is pinned to — no locking. `inbuf` is managed as a
  /// capacity buffer: `size()` is capacity, `len`/`off` delimit the
  /// unparsed bytes, so a short recv never pays a resize/zero-fill.
  struct PeerConn {
    int fd = -1;
    NodeId dst = kNoNode;
    Bytes inbuf;
    std::size_t len = 0;
    std::size_t off = 0;
    bool closed = false;
    std::atomic<bool> fd_closed{false};
  };

  struct Tx {
    std::map<NodeId, std::shared_ptr<Connection>> conns;
    std::vector<std::shared_ptr<Connection>> dirty;
  };

  std::shared_ptr<Connection> Connect(NodeId src, NodeId dst);
  void AcceptEvent(NodeId node, int listen_fd);
  void ReadEvent(const std::shared_ptr<PeerConn>& peer, std::uint32_t events);
  void OutgoingEvent(const std::shared_ptr<Connection>& conn,
                     std::uint32_t events);
  /// Flush `conn->pending`; requires !conn->dead on entry. Returns a
  /// FlushResult (kDrained/kBlocked/kError) as int.
  int FlushLocked(const std::shared_ptr<Connection>& conn)
      REQUIRES(conn->mutex);
  void MarkDeadLocked(const std::shared_ptr<Connection>& conn)
      REQUIRES(conn->mutex);
  bool ParseFrames(PeerConn& peer, std::vector<Delivery>& batch);
  void ClosePeer(const std::shared_ptr<PeerConn>& peer);

  DeliverFn deliver_;
  Options options_;
  Reactor reactor_;
  /// Held across listener registration in Start (reactor_.Add takes
  /// both reactor locks under it). Never nests with Connection::mutex
  /// in either direction.
  Mutex mutex_ ACQUIRED_BEFORE(lock_order::kReactorLoop,
                               lock_order::kReactorOwner);
  std::map<NodeId, std::unique_ptr<Listener>> listeners_ GUARDED_BY(mutex_);
  std::vector<Tx> tx_;  // indexed by src; each entry single-threaded
  std::vector<std::shared_ptr<PeerConn>> peers_ GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> connections_dropped_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace sbft
