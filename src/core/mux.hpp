// Multi-register storage service: many independent registers multiplexed
// over one server/client population.
//
// The paper emulates a single register; a cloud storage service needs a
// namespace of them. Composition is by envelope: every inner protocol
// frame travels inside MuxMsg{register_id, inner}, and each side hosts a
// table of per-register automata behind an endpoint adaptor that
// re-wraps outgoing frames with the same register id. The inner automata
// are the UNCHANGED RegisterServer / RegisterClient — all correctness
// and stabilization arguments apply per register verbatim, because the
// registers share nothing but the transport.
//
// Bounded state: the server-side table is capped (LRU-evicting an idle
// register re-admits it later in its initial state — equivalent to a
// transient fault on that register, which the protocol tolerates by
// design).
#pragma once

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/byzantine.hpp"
#include "core/client.hpp"
#include "core/mux_flush.hpp"
#include "core/server.hpp"
#include "net/message.hpp"

namespace sbft {

/// Derive a register id from a string key (FNV-1a). Collisions alias
/// keys onto the same register — acceptable for a 64-bit space.
RegisterId RegisterIdOf(std::string_view key);

/// Batch window for protocol-round batching (0 disables it; see
/// docs/ARCHITECTURE.md, "Protocol-round batching"). While a batch
/// scope is open on the mux client, outgoing frames of ALL registers
/// coalesce into one MuxBatch frame per destination, and newly
/// submitted ops wait in a pending queue so they join the next shared
/// round.
struct MuxBatchOptions {
  /// Flush the pending-op queue as soon as it reaches this depth.
  std::size_t max_ops = 0;
  /// Latency bound: a timer fired this long after the first queued op
  /// flushes the queue even if max_ops was never reached. With
  /// max_delay = 0 no timer is ever armed: ops arriving in the same
  /// batch scope (one mailbox drain) still coalesce, but ops arriving
  /// outside any scope start their round immediately.
  VirtualTime max_delay = 0;
  /// Hoist the FLUSH round to the node level: registers starting an op
  /// in the same batch window share ONE NodeFlush probe instead of
  /// broadcasting one FlushMsg each (see core/mux_flush.hpp and
  /// docs/ARCHITECTURE.md, "Shared FLUSH rounds"). Per-op protocol
  /// rounds drop from ~2 to ~1 + 1/W at window size W.
  bool shared_flush = false;
};

/// Per-destination accumulation of enveloped inner frames during a
/// batch scope. Builders live in an ordered map and flush in ascending
/// NodeId order, so batched runs stay deterministic in the sim. The map
/// nodes persist across rounds; only the pooled frame buffers turn over.
class MuxBatchCollector {
 public:
  void Add(NodeId dst, RegisterId id, BytesView inner);
  void AddBroadcast(std::span<const NodeId> dsts, RegisterId id,
                    BytesView inner);
  /// Emit one MuxBatch frame per destination that has pending items.
  void Flush(IEndpoint& out);
  [[nodiscard]] bool empty() const { return pending_frames_ == 0; }

 private:
  std::map<NodeId, MuxBatchBuilder> builders_;
  std::size_t pending_frames_ = 0;
};

class MuxServer : public Automaton {
 public:
  /// `factory` builds the per-register server (honest by default;
  /// Byzantine factories let tests attack individual registers).
  using ServerFactory =
      std::function<std::unique_ptr<RegisterServer>(RegisterId)>;

  MuxServer(ProtocolConfig config, std::size_t server_index,
            std::size_t max_registers = 1024, ServerFactory factory = {});

  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;
  /// Across one runtime batch, replies to ALL dispatched batch frames
  /// coalesce and flush once at the boundary (per-frame otherwise).
  void OnBatchStart(IEndpoint& endpoint) override;
  void OnBatchEnd(IEndpoint& endpoint) override;
  void CorruptState(Rng& rng) override;

  [[nodiscard]] std::size_t register_count() const { return registers_.size(); }
  /// nullptr if the register was never touched (or was evicted).
  [[nodiscard]] RegisterServer* Find(RegisterId id);

  /// Byzantine test seam (see core/mux_flush.hpp): mutate the echoed
  /// items of every node-level flush ack this server sends.
  void SetFlushAckMutator(FlushAckMutator mutator) {
    flush_ack_mutator_ = std::move(mutator);
  }
  /// NodeFlush probes answered (diagnostics/tests).
  [[nodiscard]] std::uint64_t node_flushes_acked() const {
    return node_flushes_acked_;
  }

 private:
  RegisterServer& GetOrCreate(RegisterId id);

  ProtocolConfig config_;
  std::size_t index_;
  std::size_t max_registers_;
  ServerFactory factory_;
  /// Hash tables, not ordered maps: the per-item dispatch loop does one
  /// find per batch element (dozens per op at high concurrency), and
  /// nothing iterates these in a way that observes order (CorruptState
  /// forks the rng per register id, so corruption is order-independent).
  std::unordered_map<RegisterId, std::unique_ptr<RegisterServer>> registers_;
  std::list<RegisterId> lru_;  // front = most recent
  /// Position of each id inside lru_, so a touch is an O(1) splice
  /// instead of an O(n) list walk (hot with hundreds of live registers).
  std::unordered_map<RegisterId, std::list<RegisterId>::iterator> lru_pos_;
  /// Replies produced while dispatching incoming batch frames; they
  /// leave as one batch frame per destination, mirroring the request
  /// side. Reused across frames. Flushed per frame, or — inside a
  /// runtime batch (OnBatchStart/End) — once per drained batch.
  MuxBatchCollector collector_;
  int batch_depth_ = 0;
  FlushAckMutator flush_ack_mutator_;
  std::uint64_t node_flushes_acked_ = 0;
};

class MuxClient : public Automaton {
 public:
  MuxClient(ProtocolConfig config, std::vector<NodeId> servers,
            ClientId client_id, std::size_t max_registers = 1024,
            MuxBatchOptions batch = {});

  void OnStart(IEndpoint& endpoint) override;
  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;
  void OnTimer(int timer_id, IEndpoint& endpoint) override;
  /// Runtime batch boundary: with batching on, one scope spans the
  /// whole drained batch, so frames sent in response to EVERY item of
  /// one wakeup — and ops submitted by tasks or callbacks inside it —
  /// share one round (the 5-10x lever on the threaded backends).
  void OnBatchStart(IEndpoint& endpoint) override;
  void OnBatchEnd(IEndpoint& endpoint) override;
  void CorruptState(Rng& rng) override;

  /// Operations on independent registers may run concurrently; two
  /// operations on the SAME register must be sequential (as for a
  /// plain RegisterClient). With batching enabled, a submitted op may
  /// wait in the pending queue for up to max_delay before its first
  /// protocol phase goes out.
  void StartWrite(RegisterId id, Value value, WriteCallback callback);
  void StartRead(RegisterId id, ReadCallback callback);
  [[nodiscard]] bool idle(RegisterId id);

  [[nodiscard]] bool batching() const { return batch_.max_ops > 0; }
  [[nodiscard]] bool shared_flush() const { return batch_.shared_flush; }
  /// Ops queued but not yet started (diagnostics/tests).
  [[nodiscard]] std::size_t pending_ops() const { return pending_.size(); }
  /// NodeFlush rounds emitted so far — the amortization observable:
  /// with shared flush on, this grows ~W times slower than the op count
  /// for a full window of W.
  [[nodiscard]] std::uint64_t node_flush_rounds() const {
    return flush_.rounds();
  }

  // String-key convenience (KV store facade).
  void Put(std::string_view key, Value value, WriteCallback callback) {
    StartWrite(RegisterIdOf(key), std::move(value), std::move(callback));
  }
  void Get(std::string_view key, ReadCallback callback) {
    StartRead(RegisterIdOf(key), std::move(callback));
  }

 private:
  /// An inner client plus the routing endpoint it cached at OnStart
  /// (the router must live exactly as long as the client). With shared
  /// flush on, the flush provider routes the client's FLUSH rounds
  /// through the owning mux's coordinator the same way.
  ///
  /// This lifetime rule is per-NODE: each mux node owns the routers of
  /// its inner clients and nothing outside the node may hold one. The
  /// sharded deployment (runtime/sharded_cluster.hpp) adds a second
  /// routing layer ABOVE the mux — the consistent-hash ShardMap picking
  /// which group's mux an op enters — with the opposite lifetime
  /// discipline: shard maps are immutable values, grown by copy
  /// (WithGroupAdded) under the cluster lock, never mutated in place,
  /// so no mux ever observes a map changing beneath an op in flight.
  struct Entry {
    std::unique_ptr<IEndpoint> endpoint;
    std::unique_ptr<FlushProvider> flush_provider;
    std::unique_ptr<RegisterClient> client;
  };

  /// A submitted op waiting for the next shared round.
  struct PendingOp {
    RegisterId id = 0;
    bool is_write = false;
    Value value;
    WriteCallback write_cb;
    ReadCallback read_cb;
  };

  class RouteEndpoint;
  class RouteFlushProvider;
  struct BatchScope;

  RegisterClient& GetOrCreate(RegisterId id);
  void DispatchInner(NodeId from, RegisterId id, BytesView inner);
  void RouteSend(RegisterId id, NodeId dst, Bytes frame);
  void RouteBroadcast(RegisterId id, std::span<const NodeId> dsts,
                      Bytes frame);
  /// A register's FLUSH round joins the open window, or — outside any
  /// scope — goes out immediately as a one-item NodeFlush round.
  void RouteFlush(RegisterId id, OpLabel label, OpScope scope);
  /// Distribute a node-level flush ack element-wise to the inner
  /// automata (late acks included — the per-register safe-set extension
  /// of Figure 3 lines 13-15 happens inside the clients).
  void OnNodeFlushAck(NodeId from, const NodeFlushAckMsg& ack);
  void Enqueue(PendingOp op);
  /// Start queued ops and flush the collected frames as one round.
  void FlushRound();
  void DrainPending();
  void ArmTimer();

  ProtocolConfig config_;
  std::vector<NodeId> servers_;
  ClientId client_id_;
  std::size_t max_registers_;
  MuxBatchOptions batch_;
  IEndpoint* endpoint_ = nullptr;
  /// Hash tables for the same reason as MuxServer: reply dispatch and
  /// node-flush-ack distribution do one find per item.
  std::unordered_map<RegisterId, Entry> clients_;
  std::list<RegisterId> lru_;
  std::unordered_map<RegisterId, std::list<RegisterId>::iterator> lru_pos_;
  MuxBatchCollector collector_;
  SharedFlushCoordinator flush_;
  /// Depth of nested batch scopes; outgoing frames coalesce while > 0.
  int scope_depth_ = 0;
  bool timer_armed_ = false;
  std::vector<PendingOp> pending_;
  std::vector<PendingOp> draining_;  // scratch for DrainPending
};

}  // namespace sbft
