#include "runtime/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/buffer_pool.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"

namespace sbft {
namespace {

constexpr std::uint32_t kMaxTcpFrame = 16u << 20;

bool WriteAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n <= 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

std::uint32_t LoadU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void StoreU32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::uint16_t TcpBus::AddNode(NodeId node) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SBFT_ASSERT(fd >= 0);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  SBFT_ASSERT(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0);
  SBFT_ASSERT(::listen(fd, 64) == 0);

  socklen_t len = sizeof(addr);
  SBFT_ASSERT(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                            &len) == 0);
  std::lock_guard<std::mutex> lock(mutex_);
  listeners_[node] = Listener{fd, ntohs(addr.sin_port), {}};
  return ntohs(addr.sin_port);
}

void TcpBus::Start() {
  running_.store(true);
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [node, listener] : listeners_) {
    listener.acceptor = std::thread([this, id = node] { AcceptLoop(id); });
  }
}

void TcpBus::AcceptLoop(NodeId node) {
  int listen_fd = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    listen_fd = listeners_[node].fd;
  }
  while (running_.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listener closed
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mutex_);
    readers_.emplace_back([this, node, fd] { ReadLoop(node, fd); });
  }
}

void TcpBus::ReadLoop(NodeId node, int fd) {
  std::uint8_t header[8];
  while (running_.load()) {
    if (!ReadAll(fd, header, sizeof(header))) break;
    const std::uint32_t length = LoadU32(header);
    const NodeId src = LoadU32(header + 4);
    if (length > kMaxTcpFrame) break;  // malformed: drop connection
    // Draw the frame buffer from this reader thread's pool; the
    // consuming node loop recycles it after OnFrame.
    Bytes frame = FramePool().Acquire();
    frame.resize(length);
    if (!ReadAll(fd, frame.data(), length)) break;
    deliver_(src, node, std::move(frame));
  }
  ::close(fd);
}

bool TcpBus::Send(NodeId src, NodeId dst, BytesView frame) {
  if (!running_.load()) return false;
  int fd = -1;
  Connection* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& connection = connections_[{src, dst}];
    if (connection.fd < 0) {
      auto it = listeners_.find(dst);
      if (it == listeners_.end()) return false;
      const int new_fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (new_fd < 0) return false;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(it->second.port);
      if (::connect(new_fd, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
        ::close(new_fd);
        return false;
      }
      const int one = 1;
      ::setsockopt(new_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      connection.fd = new_fd;
    }
    fd = connection.fd;
    conn = &connection;  // std::map nodes are address-stable
  }

  // Build [header][payload] in the connection's reusable buffer and
  // write it with one send — no per-frame allocation once the buffer's
  // capacity has grown to the workload's frame size.
  std::lock_guard<std::mutex> lock(*conn->write_mutex);
  Bytes& buf = conn->write_buf;
  buf.clear();
  buf.resize(8);
  StoreU32(buf.data(), static_cast<std::uint32_t>(frame.size()));
  StoreU32(buf.data() + 4, src);
  buf.insert(buf.end(), frame.begin(), frame.end());
  return WriteAll(fd, buf.data(), buf.size());
}

void TcpBus::Stop() {
  if (stopped_.exchange(true)) return;
  running_.store(false);
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [node, listener] : listeners_) {
      if (listener.fd >= 0) ::shutdown(listener.fd, SHUT_RDWR);
      if (listener.fd >= 0) ::close(listener.fd);
      listener.fd = -1;
    }
    for (auto& [key, connection] : connections_) {
      if (connection.fd >= 0) ::shutdown(connection.fd, SHUT_RDWR);
      if (connection.fd >= 0) ::close(connection.fd);
      connection.fd = -1;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [node, listener] : listeners_) {
      if (listener.acceptor.joinable()) to_join.push_back(
          std::move(listener.acceptor));
    }
    for (auto& reader : readers_) {
      if (reader.joinable()) to_join.push_back(std::move(reader));
    }
    readers_.clear();
  }
  for (auto& thread : to_join) thread.join();
}

}  // namespace sbft
