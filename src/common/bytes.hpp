// Byte-buffer alias and small helpers used by the wire codec and the
// fault injector (which overwrites buffers with garbage).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace sbft {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Explicit copy out of a borrowed view — the one place where a decoded
/// zero-copy payload becomes owned state.
inline Bytes ToBytes(BytesView view) { return Bytes(view.begin(), view.end()); }

/// Content equality for views (std::span has no operator==).
inline bool SameBytes(BytesView a, BytesView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

/// Produce `size` uniformly random bytes; the fault injector uses this to
/// model arbitrary memory / channel corruption.
inline Bytes RandomBytes(Rng& rng, std::size_t size) {
  Bytes out(size);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.NextBelow(256));
  return out;
}

/// Hex dump for diagnostics and golden-trace tests.
inline std::string ToHex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

}  // namespace sbft
