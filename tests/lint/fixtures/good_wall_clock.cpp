// Twin of bad_wall_clock.cpp: virtual time threaded in by the caller
// (the World), no host clock anywhere. Must pass clean.
#include <cstdint>

namespace sbft {

std::uint64_t NowMicros(std::uint64_t virtual_now) { return virtual_now; }

}  // namespace sbft
