// Declarative scenario matrix for the open-loop workload engine.
//
// A Scenario is a small value struct: offered-load profile (flat rate
// or rate ramp), key popularity (Zipf skew over mux registers),
// read/write mix, link shaping, and transient-corruption injection
// points. Scenarios compose by setting fields — the presets below are
// just constructors for the matrix bench_load drives — and compile to
// a deterministic operation schedule via BuildSchedule: same seed,
// same arrival/key/kind sequence, on every machine (the acceptance
// test for the engine; see tests/load/generators_test.cpp).
//
// The schedule is the OFFERED load. What the cluster actually does
// with it (latencies, aborts, stabilization after corruption) is the
// measurement, taken by load::OpenLoopDriver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "load/generators.hpp"
#include "runtime/sharded_cluster.hpp"

namespace sbft::load {

/// Transient server-state corruption injected mid-load (the paper's
/// §II transient-fault model under real traffic): at `at_us` into the
/// run, CorruptState every server in `servers` (all servers when
/// empty).
struct CorruptionSpec {
  std::uint64_t at_us = 0;
  std::vector<std::size_t> servers;  // empty = all
};

struct Scenario {
  std::string name = "baseline";
  std::uint32_t n_servers = 6;
  bool use_tcp = false;
  /// Logical keys == mux registers == logical clients of the
  /// RegisterCluster (key k maps to logical client k).
  std::size_t n_keys = 32;
  /// Zipf skew over keys; 0 = uniform, ~1 = classic hot-key contention.
  double zipf_skew = 0.0;
  /// Fraction of operations that are reads.
  double read_fraction = 0.5;
  /// Flat offered rate. Ignored when `phases` is non-empty.
  double rate_ops_per_sec = 1000.0;
  std::uint64_t duration_us = 1'000'000;
  /// Piecewise-constant rate profile (flash crowds); overrides
  /// rate_ops_per_sec/duration_us when non-empty.
  std::vector<RatePhase> phases;
  /// Link shaping applied to every inter-node link of the cluster.
  LinkShaping shaping;
  /// Protocol-round batching window for the cluster (see
  /// RegisterCluster::Options::batch_max_ops); 0 runs unbatched.
  std::size_t batch_max_ops = 0;
  std::uint64_t batch_max_delay_us = 200;
  std::vector<CorruptionSpec> corruptions;
  /// Independent register groups behind the consistent-hash router
  /// (runtime/sharded_cluster.hpp). 1 = the classic single-group
  /// deployment (the router front-end costs one uncontended mutex
  /// acquisition per op).
  std::size_t n_groups = 1;
  /// When non-zero: at this point into the run, grow the deployment by
  /// one group (ShardedCluster::AddGroup) while traffic flows — the
  /// shard-map epoch bumps and ~1/(G+1) of the keys migrate via
  /// drain-and-handoff.
  std::uint64_t group_add_at_us = 0;
  std::uint64_t seed = 1;
  /// After the last scheduled arrival, wait at most this long for
  /// in-flight and queued operations to finish.
  std::uint64_t drain_timeout_us = 10'000'000;

  [[nodiscard]] std::uint64_t TotalDurationUs() const {
    return phases.empty() ? duration_us : ProfileDurationUs(phases);
  }
};

/// One scheduled operation of the offered load.
struct ScheduledOp {
  std::uint64_t at_us = 0;   // intended start, offset from run start
  std::uint32_t key = 0;     // logical key / mux register
  bool is_write = false;
  std::uint32_t seq = 0;     // per-key write sequence (unique values)
};

/// Compile a scenario to its deterministic operation schedule, sorted
/// by arrival time.
[[nodiscard]] std::vector<ScheduledOp> BuildSchedule(const Scenario& scenario);

/// The unique value written by a scheduled write (key + per-key
/// sequence): what the checker uses to identify writes.
[[nodiscard]] Value ValueFor(const ScheduledOp& op);

/// Per-group cluster options matching a scenario (topology, transport,
/// shaping).
[[nodiscard]] RegisterCluster::Options ClusterOptionsFor(
    const Scenario& scenario);

/// Sharded-deployment options: `n_groups` groups, each built from
/// ClusterOptionsFor (the driver always runs the sharded front-end;
/// n_groups = 1 degenerates to the classic deployment).
[[nodiscard]] ShardedCluster::Options ShardedOptionsFor(
    const Scenario& scenario);

// --- Presets: the adversarial traffic matrix ------------------------------

/// Uniform keys, 50/50 mix, flat rate.
[[nodiscard]] Scenario BaselineScenario(double rate, std::uint64_t duration_us,
                                        std::uint64_t seed);
/// Zipf-skewed popularity: most traffic lands on a handful of
/// registers, serializing on the per-register protocol instance.
[[nodiscard]] Scenario ZipfHotScenario(double rate, std::uint64_t duration_us,
                                       std::uint64_t seed);
/// Flash crowd: base rate, a 4x spike for the middle fifth of the run,
/// then base again.
[[nodiscard]] Scenario FlashCrowdScenario(double base_rate,
                                          std::uint64_t duration_us,
                                          std::uint64_t seed);
/// 90% reads.
[[nodiscard]] Scenario ReadHeavyScenario(double rate,
                                         std::uint64_t duration_us,
                                         std::uint64_t seed);
/// Every link delayed by `delay_us` (+/- jitter).
[[nodiscard]] Scenario SlowLinkScenario(double rate, std::uint64_t duration_us,
                                        std::uint64_t delay_us,
                                        std::uint64_t seed);
/// Mid-load transient corruption of every server at duration/4 — the
/// paper-specific measurement (stabilization under traffic).
[[nodiscard]] Scenario CorruptionScenario(double rate,
                                          std::uint64_t duration_us,
                                          std::uint64_t seed);
/// Sharded deployment: uniform keys over `n_groups` independent
/// register groups (name "g<N>").
[[nodiscard]] Scenario ShardedScenario(std::size_t n_groups, double rate,
                                       std::uint64_t duration_us,
                                       std::uint64_t seed);
/// Live scale-out: starts at one group, adds a second at duration/3
/// while traffic flows (name "g2_migrate"); the per-key regularity
/// checker must pass straight through the epoch bump.
[[nodiscard]] Scenario MigrateScenario(double rate,
                                       std::uint64_t duration_us,
                                       std::uint64_t seed);

}  // namespace sbft::load
