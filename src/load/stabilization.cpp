#include "load/stabilization.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace sbft::load {
namespace {

/// Partition a multiplexed history into one History per register
/// (OpRecord::client == logical key under the load driver).
std::map<std::uint32_t, History> SplitByKey(const History& history) {
  std::map<std::uint32_t, History> per_key;
  for (const OpRecord& op : history.ops()) per_key[op.client].Add(op);
  return per_key;
}

}  // namespace

CheckReport CheckRegularPerKey(const History& history,
                               const CheckOptions& options) {
  CheckReport merged;
  for (const auto& [key, sub] : SplitByKey(history)) {
    CheckOptions per_key = options;
    if (options.max_violations != 0) {
      const std::size_t found = merged.violations.size();
      if (found >= options.max_violations) break;
      per_key.max_violations = options.max_violations - found;
    }
    const CheckReport report = CheckRegular(sub, per_key);
    for (const std::string& violation : report.violations) {
      merged.AddViolation("key " + std::to_string(key) + ": " + violation);
    }
  }
  return merged;
}

StabilizationReport MeasureStabilization(const History& history,
                                         std::uint64_t corruption_at_us,
                                         const CheckOptions& base) {
  StabilizationReport report;

  // Distinct invocation times of judged (ok) reads at/after the
  // corruption — the only places the earliest clean threshold can sit.
  std::vector<VirtualTime> times;
  std::size_t post_reads = 0;
  for (const OpRecord& op : history.ops()) {
    if (op.kind != OpRecord::Kind::kRead ||
        op.result != OpRecord::Result::kOk) {
      continue;
    }
    if (op.invoked_at < corruption_at_us) continue;
    ++post_reads;
    times.push_back(op.invoked_at);
  }
  report.reads_after_corruption = post_reads;
  if (post_reads == 0) return report;  // vacuous: nothing to stabilize over
  std::sort(times.begin(), times.end());
  const std::vector<VirtualTime> invocations = times;  // with duplicates
  times.erase(std::unique(times.begin(), times.end()), times.end());

  // Candidate k: k == 0 judges every post-corruption read; k >= 1
  // additionally excuses reads invoked at times[0..k-1] (checker
  // excusal is strict-less-than, hence the +1).
  const auto threshold = [&](std::size_t k) -> VirtualTime {
    return k == 0 ? corruption_at_us : times[k - 1] + 1;
  };
  const auto per_key = SplitByKey(history);
  const auto clean = [&](std::size_t k) {
    CheckOptions options = base;
    options.stabilized_from = threshold(k);
    options.max_violations = 1;  // only need the verdict
    for (const auto& [key, sub] : per_key) {
      if (!CheckRegular(sub, options).ok) return false;
    }
    return true;
  };

  // clean is monotone in k (raising the threshold only excuses more
  // reads), and k == times.size() always passes (no read is judged and
  // write real-time edges alone cannot form a cycle): binary search
  // the smallest clean k.
  std::size_t lo = 0;
  std::size_t hi = times.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (clean(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  if (lo == times.size()) {
    // Even the last read is still disturbed: the history never
    // stabilized inside the observation window.
    return report;
  }
  report.stabilized = true;
  report.stabilized_at_us = threshold(lo);
  report.violation_window_us = report.stabilized_at_us > corruption_at_us
                                   ? report.stabilized_at_us - corruption_at_us
                                   : 0;
  for (VirtualTime t : invocations) {
    if (t < report.stabilized_at_us) ++report.excused_reads;
  }
  return report;
}

}  // namespace sbft::load
