// Tests for the discrete-event world: determinism, FIFO channels,
// adversarial holds, fault injection, crash semantics.
#include "sim/world.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace sbft {
namespace {

// Echo automaton: records every delivered frame; replies "pong" to "ping".
class Recorder final : public Automaton {
 public:
  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override {
    received.emplace_back(from, Bytes(frame.begin(), frame.end()));
    const std::string text(frame.begin(), frame.end());
    if (text == "ping") {
      const std::string pong = "pong";
      endpoint.Send(from, Bytes(pong.begin(), pong.end()));
    }
  }
  void OnTimer(int timer_id, IEndpoint&) override {
    timers.push_back(timer_id);
  }
  std::vector<std::pair<NodeId, Bytes>> received;
  std::vector<int> timers;
};

// Sends `count` numbered frames to a peer on start.
class Burster final : public Automaton {
 public:
  Burster(NodeId peer, int count) : peer_(peer), count_(count) {}
  void OnStart(IEndpoint& endpoint) override {
    for (int i = 0; i < count_; ++i) {
      endpoint.Send(peer_, Bytes{static_cast<std::uint8_t>(i)});
    }
  }
  void OnFrame(NodeId, BytesView, IEndpoint&) override {}

 private:
  NodeId peer_;
  int count_;
};

TEST(World, DeliversFrames) {
  World world;
  auto rec = std::make_unique<Recorder>();
  Recorder* rec_ptr = rec.get();
  const NodeId rec_id = world.AddNode(std::move(rec));
  const NodeId src_id = world.AddNode(std::make_unique<Burster>(rec_id, 3));
  world.Run();
  ASSERT_EQ(rec_ptr->received.size(), 3u);
  EXPECT_EQ(rec_ptr->received[0].first, src_id);
  EXPECT_EQ(world.stats().frames_delivered, 3u);
  EXPECT_EQ(world.stats().frames_sent, 3u);
}

TEST(World, PingPongBetweenAutomata) {
  // A Recorder replies "pong" to "ping": drive a ping via Burster-like
  // one-shot automaton and check the round trip.
  class Pinger final : public Automaton {
   public:
    explicit Pinger(NodeId peer) : peer_(peer) {}
    void OnStart(IEndpoint& endpoint) override {
      const std::string ping = "ping";
      endpoint.Send(peer_, Bytes(ping.begin(), ping.end()));
    }
    void OnFrame(NodeId, BytesView frame, IEndpoint&) override {
      got.emplace_back(frame.begin(), frame.end());
    }
    std::vector<Bytes> got;

   private:
    NodeId peer_;
  };
  World world;
  auto rec = std::make_unique<Recorder>();
  const NodeId rec_id = world.AddNode(std::move(rec));
  auto pinger = std::make_unique<Pinger>(rec_id);
  Pinger* pinger_ptr = pinger.get();
  world.AddNode(std::move(pinger));
  world.Run();
  ASSERT_EQ(pinger_ptr->got.size(), 1u);
  const std::string pong(pinger_ptr->got[0].begin(), pinger_ptr->got[0].end());
  EXPECT_EQ(pong, "pong");
}

TEST(World, FifoPerChannel) {
  // 200 frames on one channel must arrive in send order despite random
  // delays.
  World world(World::Options{.seed = 99,
                             .delay = std::make_unique<UniformDelay>(1, 50)});
  auto rec = std::make_unique<Recorder>();
  Recorder* rec_ptr = rec.get();
  const NodeId rec_id = world.AddNode(std::move(rec));
  world.AddNode(std::make_unique<Burster>(rec_id, 200));
  world.Run();
  ASSERT_EQ(rec_ptr->received.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rec_ptr->received[i].second[0], static_cast<std::uint8_t>(i));
  }
}

TEST(World, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    World world(World::Options{.seed = seed,
                               .delay = std::make_unique<UniformDelay>(1, 9)});
    auto rec = std::make_unique<Recorder>();
    Recorder* rec_ptr = rec.get();
    world.trace().Enable(true);
    const NodeId rec_id = world.AddNode(std::move(rec));
    world.AddNode(std::make_unique<Burster>(rec_id, 50));
    world.AddNode(std::make_unique<Burster>(rec_id, 50));
    world.Run();
    std::vector<VirtualTime> times;
    for (const auto& event : world.trace().events()) {
      times.push_back(event.time);
    }
    return std::make_pair(rec_ptr->received, times);
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7).second, run_once(8).second);
}

TEST(World, TimersFire) {
  class TimerNode final : public Automaton {
   public:
    void OnStart(IEndpoint& endpoint) override {
      endpoint.SetTimer(10, 1);
      endpoint.SetTimer(5, 2);
    }
    void OnFrame(NodeId, BytesView, IEndpoint&) override {}
    void OnTimer(int timer_id, IEndpoint&) override {
      fired.push_back(timer_id);
    }
    std::vector<int> fired;
  };
  World world;
  auto node = std::make_unique<TimerNode>();
  TimerNode* node_ptr = node.get();
  world.AddNode(std::move(node));
  world.Run();
  ASSERT_EQ(node_ptr->fired.size(), 2u);
  EXPECT_EQ(node_ptr->fired[0], 2);  // shorter timer first
  EXPECT_EQ(node_ptr->fired[1], 1);
}

TEST(World, HoldAndReleasePreservesOrder) {
  World world;
  auto rec = std::make_unique<Recorder>();
  Recorder* rec_ptr = rec.get();
  const NodeId rec_id = world.AddNode(std::move(rec));
  const NodeId src_id = world.AddNode(std::make_unique<Burster>(rec_id, 10));
  world.HoldChannel(src_id, rec_id);
  world.Run();
  EXPECT_TRUE(rec_ptr->received.empty());  // all held
  world.ReleaseChannel(src_id, rec_id);
  world.Run();
  ASSERT_EQ(rec_ptr->received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rec_ptr->received[i].second[0], static_cast<std::uint8_t>(i));
  }
}

TEST(World, StoppedNodeDropsFrames) {
  World world;
  auto rec = std::make_unique<Recorder>();
  Recorder* rec_ptr = rec.get();
  const NodeId rec_id = world.AddNode(std::move(rec));
  world.AddNode(std::make_unique<Burster>(rec_id, 5));
  world.StopNode(rec_id);
  world.Run();
  EXPECT_TRUE(rec_ptr->received.empty());
  EXPECT_EQ(world.stats().frames_dropped, 5u);
}

TEST(World, InjectedGarbageArrivesBeforeLaterSends) {
  // FIFO: garbage planted "in the channel" at time 0 must be consumed
  // before frames sent afterwards on the same channel.
  World world;
  auto rec = std::make_unique<Recorder>();
  Recorder* rec_ptr = rec.get();
  const NodeId rec_id = world.AddNode(std::move(rec));
  const NodeId src_id = world.AddNode(std::make_unique<Burster>(rec_id, 1));
  world.InjectGarbageFrames(src_id, rec_id, 3);
  world.Run();
  ASSERT_EQ(rec_ptr->received.size(), 4u);
  // The legitimate single-byte frame {0} is last.
  EXPECT_EQ(rec_ptr->received.back().second, Bytes{0});
  EXPECT_EQ(world.stats().garbage_frames_injected, 3u);
}

TEST(World, ScrambleChannelGarblesInFlight) {
  World world(World::Options{.seed = 3,
                             .delay = std::make_unique<FixedDelay>(100)});
  auto rec = std::make_unique<Recorder>();
  Recorder* rec_ptr = rec.get();
  const NodeId rec_id = world.AddNode(std::move(rec));
  const NodeId src_id = world.AddNode(std::make_unique<Burster>(rec_id, 8));
  // Let sends enqueue (OnStart runs on first Step), then corrupt.
  world.RunUntil([&] { return world.stats().frames_sent == 8; }, 1);
  world.ScrambleChannel(src_id, rec_id);
  world.Run();
  ASSERT_EQ(rec_ptr->received.size(), 8u);
  int changed = 0;
  for (int i = 0; i < 8; ++i) {
    if (rec_ptr->received[i].second != Bytes{static_cast<std::uint8_t>(i)}) {
      ++changed;
    }
  }
  EXPECT_GT(changed, 0);
}

TEST(World, RunUntilPredicate) {
  World world;
  auto rec = std::make_unique<Recorder>();
  Recorder* rec_ptr = rec.get();
  const NodeId rec_id = world.AddNode(std::move(rec));
  world.AddNode(std::make_unique<Burster>(rec_id, 100));
  const bool reached =
      world.RunUntil([&] { return rec_ptr->received.size() >= 10; });
  EXPECT_TRUE(reached);
  EXPECT_GE(rec_ptr->received.size(), 10u);
  EXPECT_LT(rec_ptr->received.size(), 100u);
}

TEST(World, ScheduleCallRunsAtRequestedTime) {
  World world(World::Options{.seed = 1,
                             .delay = std::make_unique<FixedDelay>(1)});
  std::vector<VirtualTime> called_at;
  world.ScheduleCall(50, [&] { called_at.push_back(world.now()); });
  world.ScheduleCall(10, [&] { called_at.push_back(world.now()); });
  world.Run();
  ASSERT_EQ(called_at.size(), 2u);
  EXPECT_EQ(called_at[0], 10u);
  EXPECT_EQ(called_at[1], 50u);
}

TEST(World, CorruptNodeInvokesHook) {
  class Corruptible final : public Automaton {
   public:
    void OnFrame(NodeId, BytesView, IEndpoint&) override {}
    void CorruptState(Rng&) override { corrupted = true; }
    bool corrupted = false;
  };
  World world;
  auto node = std::make_unique<Corruptible>();
  Corruptible* node_ptr = node.get();
  const NodeId id = world.AddNode(std::move(node));
  world.CorruptNode(id);
  EXPECT_TRUE(node_ptr->corrupted);
}

}  // namespace
}  // namespace sbft
