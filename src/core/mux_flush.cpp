#include "core/mux_flush.hpp"

#include <memory>
#include <utility>

namespace sbft {

void SharedFlushCoordinator::Request(RegisterId id, OpLabel label,
                                     OpScope scope) {
  // At most one request per register per window: operations are
  // sequential per register, and a flush resolves only after the window
  // closes, so a second request for the same register cannot arrive
  // before the first left with the previous window.
  items_.push_back(FlushItem{id, label, scope});
}

void SharedFlushCoordinator::CloseWindow(IEndpoint& out,
                                         std::span<const NodeId> servers) {
  if (items_.empty()) return;
  NodeFlushMsg msg;
  // Move the accumulated items through the encode and back, so the
  // vector's capacity survives across windows (steady state allocates
  // nothing here).
  msg.items = std::move(items_);
  out.Broadcast(servers, EncodeMessage(Message(msg)));
  items_ = std::move(msg.items);
  items_.clear();
  ++rounds_;
}

FlushAckMutator MakeFlushEquivocator(std::uint64_t seed) {
  // Shared state so copies of the std::function keep one stream; the
  // draws depend only on the seed and the call sequence, so a replayed
  // schedule equivocates identically.
  auto rng = std::make_shared<Rng>(seed);
  return [rng](std::vector<FlushItem>& items) {
    for (FlushItem& item : items) {
      const std::uint64_t draw = (*rng)();
      item.label = static_cast<OpLabel>(draw >> 8);
      if ((draw & 0x3) == 0) {
        item.scope = item.scope == OpScope::kRead ? OpScope::kWrite
                                                  : OpScope::kRead;
      }
    }
  };
}

}  // namespace sbft
