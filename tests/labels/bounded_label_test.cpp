// Unit + property tests for the sting/antisting bounded label
// construction (Definition 2 substrate).
#include "labels/bounded_label.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sbft {
namespace {

TEST(BoundedLabel, InitialLabelIsValid) {
  for (std::uint32_t k = 2; k <= 40; ++k) {
    LabelParams params{k};
    EXPECT_TRUE(IsValid(InitialLabel(params), params)) << "k=" << k;
  }
}

TEST(BoundedLabel, DomainSizeFormula) {
  // 4x the theoretical minimum k^2+k+1 (see LabelParams::Domain).
  EXPECT_EQ(LabelParams{2}.Domain(), 25u);
  EXPECT_EQ(LabelParams{5}.Domain(), 121u);
  EXPECT_EQ(LabelParams{10}.Domain(), 441u);
  // Always strictly above the correctness minimum.
  for (std::uint32_t k = 2; k <= 64; ++k) {
    EXPECT_GT(LabelParams{k}.Domain(), k * k + k);
  }
}

TEST(BoundedLabel, ValidityRejectsBadStructure) {
  LabelParams params{3};
  Label good = InitialLabel(params);
  ASSERT_TRUE(IsValid(good, params));

  Label sting_oob = good;
  sting_oob.sting = params.Domain();
  EXPECT_FALSE(IsValid(sting_oob, params));

  Label too_few = good;
  too_few.antistings.pop_back();
  EXPECT_FALSE(IsValid(too_few, params));

  Label dup = good;
  dup.antistings[1] = dup.antistings[0];
  EXPECT_FALSE(IsValid(dup, params));

  Label unsorted = good;
  std::swap(unsorted.antistings[0], unsorted.antistings[2]);
  EXPECT_FALSE(IsValid(unsorted, params));

  Label self_sting = good;
  self_sting.antistings[0] = self_sting.sting;
  // Re-sorting to isolate the "contains own sting" violation.
  std::sort(self_sting.antistings.begin(), self_sting.antistings.end());
  EXPECT_FALSE(IsValid(self_sting, params));

  Label anti_oob = good;
  anti_oob.antistings.back() = params.Domain() + 5;
  EXPECT_FALSE(IsValid(anti_oob, params));
}

TEST(BoundedLabel, PrecedenceBasics) {
  LabelParams params{2};  // domain 25
  Label a{.sting = 1, .antistings = {2, 3}};
  Label b{.sting = 4, .antistings = {1, 5}};  // a.sting in b.A, b.sting not in a.A
  ASSERT_TRUE(IsValid(a, params));
  ASSERT_TRUE(IsValid(b, params));
  EXPECT_TRUE(Precedes(a, b, params));
  EXPECT_FALSE(Precedes(b, a, params));
}

TEST(BoundedLabel, PrecedenceIrreflexive) {
  Rng rng(21);
  LabelParams params{4};
  for (int i = 0; i < 200; ++i) {
    Label l = RandomValidLabel(rng, params);
    EXPECT_FALSE(Precedes(l, l, params));
  }
}

TEST(BoundedLabel, PrecedenceAntisymmetric) {
  Rng rng(22);
  LabelParams params{4};
  for (int i = 0; i < 2000; ++i) {
    Label a = RandomValidLabel(rng, params);
    Label b = RandomValidLabel(rng, params);
    EXPECT_FALSE(Precedes(a, b, params) && Precedes(b, a, params))
        << a.ToString() << " vs " << b.ToString();
  }
}

TEST(BoundedLabel, GarbageIsIncomparable) {
  Rng rng(23);
  LabelParams params{3};
  Label valid = InitialLabel(params);
  for (int i = 0; i < 200; ++i) {
    Label garbage = RandomGarbageLabel(rng, params);
    if (IsValid(garbage, params)) continue;  // rare but possible
    EXPECT_FALSE(Precedes(garbage, valid, params));
    EXPECT_FALSE(Precedes(valid, garbage, params));
  }
}

TEST(BoundedLabel, SanitizeProducesValidFixpoint) {
  Rng rng(24);
  for (std::uint32_t k = 2; k <= 12; k += 2) {
    LabelParams params{k};
    for (int i = 0; i < 300; ++i) {
      Label garbage = RandomGarbageLabel(rng, params);
      Label clean = Sanitize(garbage, params);
      EXPECT_TRUE(IsValid(clean, params)) << clean.ToString();
      // Sanitizing twice is a no-op (fixpoint): a stabilized state stays.
      EXPECT_EQ(Sanitize(clean, params), clean);
    }
  }
}

TEST(BoundedLabel, SanitizePreservesValidLabels) {
  Rng rng(25);
  LabelParams params{5};
  for (int i = 0; i < 300; ++i) {
    Label l = RandomValidLabel(rng, params);
    EXPECT_EQ(Sanitize(l, params), l);
  }
}

TEST(BoundedLabel, EncodeDecodeRoundTrip) {
  Rng rng(26);
  LabelParams params{6};
  for (int i = 0; i < 200; ++i) {
    Label l = RandomValidLabel(rng, params);
    BufWriter w;
    l.Encode(w);
    BufReader r(w.data());
    Label back = Label::Decode(r);
    EXPECT_TRUE(r.AtEndOk());
    EXPECT_EQ(back, l);
  }
}

TEST(BoundedLabel, DecodeGarbageIsTotal) {
  Rng rng(27);
  for (int i = 0; i < 500; ++i) {
    Bytes garbage = RandomBytes(rng, rng.NextBelow(40));
    BufReader r(garbage);
    (void)Label::Decode(r);  // must not crash; validity checked by caller
  }
}

TEST(BoundedLabel, CompareReprIsTotalOrder) {
  Rng rng(28);
  LabelParams params{3};
  for (int i = 0; i < 500; ++i) {
    Label a = RandomValidLabel(rng, params);
    Label b = RandomValidLabel(rng, params);
    const bool ab = a.CompareRepr(b) < 0;
    const bool ba = b.CompareRepr(a) < 0;
    if (a == b) {
      EXPECT_FALSE(ab || ba);
    } else {
      EXPECT_NE(ab, ba);
    }
  }
}

}  // namespace
}  // namespace sbft
