#include "baselines/abd.hpp"

#include <algorithm>

namespace sbft {

void AbdServer::OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<AbdGetTsMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(AbdTsReplyMsg{m->rid, ts_})));
  } else if (const auto* m = std::get_if<AbdWriteMsg>(&message)) {
    if (ts_ < m->ts) {
      ts_ = m->ts;
      value_ = ToBytes(m->value);  // copy the frame-borrowed view into state
    }
    endpoint.Send(from, EncodeMessage(Message(AbdWriteAckMsg{m->rid})));
  } else if (const auto* m = std::get_if<AbdReadMsg>(&message)) {
    endpoint.Send(from,
                  EncodeMessage(Message(AbdReadReplyMsg{m->rid, ts_, value_})));
  }
}

void AbdServer::CorruptState(Rng& rng) {
  // The signature failure of unbounded timestamps: corruption can plant
  // a near-maximal sequence number that no legitimate write exceeds.
  ts_.seq = rng();
  if (rng.NextBool(0.5)) ts_.seq |= 0xF000000000000000ull;
  ts_.writer_id = static_cast<std::uint32_t>(rng());
  value_ = RandomBytes(rng, 1 + rng.NextBelow(8));
}

AbdClient::AbdClient(std::vector<NodeId> servers, std::uint32_t client_id)
    : servers_(std::move(servers)), client_id_(client_id) {}

void AbdClient::OnStart(IEndpoint& endpoint) { endpoint_ = &endpoint; }

std::optional<std::size_t> AbdClient::ServerIndex(NodeId node) const {
  auto it = std::find(servers_.begin(), servers_.end(), node);
  if (it == servers_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - servers_.begin());
}

void AbdClient::StartWrite(Value value, std::function<void(bool)> callback) {
  SBFT_ASSERT(endpoint_ != nullptr && idle());
  write_value_ = std::move(value);
  write_callback_ = std::move(callback);
  collected_ts_.clear();
  phase_ = Phase::kGetTs;
  ++rid_;
  endpoint_->Broadcast(servers_, EncodeMessage(Message(AbdGetTsMsg{rid_})));
}

void AbdClient::StartRead(
    std::function<void(const AbdReadOutcome&)> callback) {
  SBFT_ASSERT(endpoint_ != nullptr && idle());
  read_callback_ = std::move(callback);
  read_replies_.clear();
  phase_ = Phase::kRead;
  ++rid_;
  endpoint_->Broadcast(servers_, EncodeMessage(Message(AbdReadMsg{rid_})));
}

void AbdClient::OnFrame(NodeId from, BytesView frame, IEndpoint&) {
  const auto index = ServerIndex(from);
  if (!index) return;
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<AbdTsReplyMsg>(&message)) {
    if (phase_ != Phase::kGetTs || m->rid != rid_) return;
    collected_ts_.emplace(*index, m->ts);
    if (collected_ts_.size() < Majority()) return;
    UnboundedTs max_ts;
    for (const auto& [idx, ts] : collected_ts_) max_ts = std::max(max_ts, ts);
    // Saturating increment: documents that even an overflow guard cannot
    // save the protocol once corruption plants a near-maximal seq.
    UnboundedTs new_ts{max_ts.seq == std::numeric_limits<std::uint64_t>::max()
                           ? max_ts.seq
                           : max_ts.seq + 1,
                       client_id_};
    phase_ = Phase::kWrite;
    write_acks_.clear();
    // write_value_ is a stable member, so the view inside AbdWriteMsg is
    // valid for the duration of the encode.
    endpoint_->Broadcast(
        servers_, EncodeMessage(Message(AbdWriteMsg{rid_, new_ts,
                                                    write_value_})));
  } else if (const auto* m = std::get_if<AbdWriteAckMsg>(&message)) {
    if (phase_ != Phase::kWrite || m->rid != rid_) return;
    write_acks_.insert(*index);
    if (write_acks_.size() >= Majority()) {
      phase_ = Phase::kIdle;
      if (write_callback_) {
        auto callback = std::move(write_callback_);
        write_callback_ = nullptr;
        callback(true);
      }
    }
  } else if (const auto* m = std::get_if<AbdReadReplyMsg>(&message)) {
    if (phase_ != Phase::kRead || m->rid != rid_) return;
    read_replies_.emplace(*index, std::make_pair(m->ts, ToBytes(m->value)));
    if (read_replies_.size() >= Majority()) {
      AbdReadOutcome outcome;
      outcome.ok = true;
      for (const auto& [idx, reply] : read_replies_) {
        if (reply.first >= outcome.ts) {
          outcome.ts = reply.first;
          outcome.value = reply.second;
        }
      }
      phase_ = Phase::kIdle;
      if (read_callback_) {
        auto callback = std::move(read_callback_);
        read_callback_ = nullptr;
        callback(outcome);
      }
    }
  }
}

void AbdClient::CorruptState(Rng& rng) {
  rid_ = rng();  // unbounded id: corruption may collide with stale replies
  if (phase_ != Phase::kIdle) {
    phase_ = Phase::kIdle;
    if (write_callback_) {
      auto callback = std::move(write_callback_);
      write_callback_ = nullptr;
      callback(false);
    }
    if (read_callback_) {
      auto callback = std::move(read_callback_);
      read_callback_ = nullptr;
      callback(AbdReadOutcome{});
    }
  }
}

}  // namespace sbft
