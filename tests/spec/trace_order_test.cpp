// F4: validate the Figure 4 / Lemma 5 happened-before structure on
// recorded traces of real executions, and check the checker itself on a
// synthetic out-of-order trace.
#include "spec/trace_check.hpp"

#include <gtest/gtest.h>

#include "core/deployment.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

std::set<NodeId> CorrectServerIds(Deployment& deployment) {
  std::set<NodeId> out;
  for (std::size_t i = 0; i < deployment.config().n; ++i) {
    if (!deployment.is_byzantine(i)) out.insert(deployment.server_node(i));
  }
  return out;
}

TEST(TraceOrder, CleanRunSatisfiesLemma5Pattern) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 81;
  Deployment deployment(std::move(options));
  deployment.world().trace().Enable(true);

  ASSERT_TRUE(deployment.Write(0, Val("t")).completed);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(deployment.Read(0).completed);
  }

  const std::set<NodeId> clients{deployment.client_node(0)};
  auto report = CheckReadMessageOrder(deployment.world().trace().events(),
                                      clients, CorrectServerIds(deployment));
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
  EXPECT_GT(report.reads_checked, 0u);
  EXPECT_GT(report.flush_rounds, 0u);
  EXPECT_GT(report.replies_seen, 0u);
}

TEST(TraceOrder, HoldsAcrossCorruptionAndByzantine) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 82;
  options.byzantine[1] = ByzantineStrategy::kGarbage;
  Deployment deployment(std::move(options));
  deployment.world().trace().Enable(true);
  deployment.CorruptAllCorrectServers();
  deployment.CorruptClient(0);

  ASSERT_TRUE(deployment.Write(0, Val("x")).completed);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(deployment.Read(0).completed);
  }
  const std::set<NodeId> clients{deployment.client_node(0)};
  auto report = CheckReadMessageOrder(deployment.world().trace().events(),
                                      clients, CorrectServerIds(deployment));
  EXPECT_TRUE(report.ok);
}

TEST(TraceOrder, DetectsForgedOutOfOrderTrace) {
  // Synthetic violation: READ sent with no flush round at all.
  std::vector<TraceEvent> events;
  const NodeId client = 10;
  const NodeId server = 0;
  TraceEvent read_send;
  read_send.time = 5;
  read_send.kind = TraceKind::kSend;
  read_send.src = client;
  read_send.dst = server;
  read_send.SetPayload(std::make_shared<const Bytes>(
      EncodeMessage(Message(ReadMsg{.label = 1}))));
  events.push_back(read_send);

  auto report = CheckReadMessageOrder(events, {client}, {server});
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("no flush round"), std::string::npos);
}

TEST(TraceOrder, DetectsReadBeforeFlushAck) {
  std::vector<TraceEvent> events;
  const NodeId client = 10;
  const NodeId server = 0;
  TraceEvent flush_send;
  flush_send.time = 1;
  flush_send.kind = TraceKind::kSend;
  flush_send.src = client;
  flush_send.dst = server;
  flush_send.SetPayload(std::make_shared<const Bytes>(
      EncodeMessage(Message(FlushMsg{.label = 1, .scope = OpScope::kRead}))));
  events.push_back(flush_send);
  TraceEvent read_send;
  read_send.time = 2;
  read_send.kind = TraceKind::kSend;
  read_send.src = client;
  read_send.dst = server;
  read_send.SetPayload(std::make_shared<const Bytes>(
      EncodeMessage(Message(ReadMsg{.label = 1}))));
  events.push_back(read_send);

  auto report = CheckReadMessageOrder(events, {client}, {server});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violations[0].find("before FLUSH_ACK"), std::string::npos);
}

}  // namespace
}  // namespace sbft
