// Threaded deployment of the register: n servers (optionally Byzantine)
// plus clients, each on its own OS thread, over in-process mailboxes or
// TCP loopback. Mirrors core/deployment.hpp for the real-concurrency
// setting (experiment E7, tcp_cluster example).
//
// Two client topologies:
//   * default — one RegisterClient node per logical client, mirroring
//     the sim deployment one-to-one;
//   * multiplex — ONE MuxClient node hosts all logical clients, each as
//     its own register (RegisterId = logical index + 1) over MuxServer
//     replicas. Operations of distinct logical clients are independent
//     protocol instances, so hundreds of them pipeline over a handful
//     of connections — the topology the high-concurrency bench sweeps.
#pragma once

#include <chrono>
#include <map>

#include "core/byzantine.hpp"
#include "core/client.hpp"
#include "core/mux.hpp"
#include "runtime/cluster.hpp"

namespace sbft {

class RegisterCluster {
 public:
  struct Options {
    ProtocolConfig config;
    bool use_tcp = false;
    /// Host all logical clients in one MuxClient node (see file
    /// comment); servers become MuxServers.
    bool multiplex = false;
    /// Reactor threads for the TCP transport (ignored without use_tcp).
    std::size_t reactor_threads = 1;
    std::size_t n_clients = 1;
    std::map<std::size_t, ByzantineStrategy> byzantine;
    std::uint64_t seed = 1;
    /// Per-operation timeout; expired operations report kFailed (the
    /// asynchronous protocol never gives up on its own).
    std::chrono::milliseconds op_timeout{10'000};
    /// Slow/lossy link emulation for every inter-node link (see
    /// runtime/link_shaper.hpp); disabled when all-zero.
    LinkShaping shaping;
    /// Protocol-round batching window for the multiplex topology
    /// (core/mux.hpp MuxBatchOptions): coalesce up to batch_max_ops
    /// pending ops — and the protocol frames of every in-flight round —
    /// into shared MuxBatch frames. 0 disables batching; ignored
    /// without multiplex.
    std::size_t batch_max_ops = 0;
    /// Latency bound: a lone pending op waits at most this long before
    /// its round goes out.
    std::uint64_t batch_max_delay_us = 200;
    /// Share one node-level FLUSH round per batch window instead of one
    /// FlushMsg broadcast per op (core/mux_flush.hpp). Requires
    /// batching (batch_max_ops > 0); ignored without multiplex.
    bool shared_flush = false;
  };

  explicit RegisterCluster(const Options& options);
  ~RegisterCluster() { Stop(); }

  void Start() { cluster_.Start(); }
  void Stop() { cluster_.Stop(); }

  /// Asynchronous operations: the callback runs on the client node's
  /// thread once the protocol completes. Safe to call from any thread,
  /// but each logical client admits ONE in-flight operation at a time
  /// (issue the next from the callback for a closed loop).
  void AsyncWrite(std::size_t client, Value value, WriteCallback callback);
  void AsyncRead(std::size_t client, ReadCallback callback);

  /// Synchronous wrappers over the async API (block on a future, with
  /// op_timeout mapping to kFailed).
  WriteOutcome Write(std::size_t client, Value value);
  ReadOutcome Read(std::size_t client);

  /// Transient-fault injection hook: overwrite server `server_index`'s
  /// protocol state with seeded garbage (Automaton::CorruptState), on
  /// the server's own thread, while traffic keeps flowing. Safe to
  /// call from any thread after Start(); returns once the corruption
  /// task is queued (not applied).
  void CorruptServer(std::size_t server_index, std::uint64_t seed);

  [[nodiscard]] const ProtocolConfig& config() const { return config_; }
  [[nodiscard]] ThreadCluster& cluster() { return cluster_; }
  [[nodiscard]] std::size_t n_clients() const { return n_clients_; }
  [[nodiscard]] bool multiplexed() const { return mux_client_ != nullptr; }
  [[nodiscard]] bool batched() const { return batched_; }
  [[nodiscard]] bool shared_flush() const { return shared_flush_; }
  /// NodeFlush rounds the mux client emitted (0 on non-mux topologies).
  /// Thread-safe only once traffic has quiesced.
  [[nodiscard]] std::uint64_t node_flush_rounds() const {
    return mux_client_ != nullptr ? mux_client_->node_flush_rounds() : 0;
  }

 private:
  static ThreadCluster::Options ClusterOptions(const Options& options);

  ProtocolConfig config_;
  ThreadCluster cluster_;
  std::chrono::milliseconds op_timeout_;
  std::size_t n_clients_ = 0;
  std::vector<NodeId> server_ids_;
  // Default topology: one node per logical client.
  std::vector<RegisterClient*> clients_;
  std::vector<NodeId> client_ids_;
  // Multiplex topology: all logical clients live in this node.
  MuxClient* mux_client_ = nullptr;
  NodeId mux_client_id_ = kNoNode;
  bool batched_ = false;
  bool shared_flush_ = false;
};

}  // namespace sbft
