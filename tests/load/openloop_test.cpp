// End-to-end open-loop driver tests on the mailbox backend: a short
// burst stays regular under the per-key checker, and a mid-load
// transient corruption of every server stabilizes within the run with
// zero violations after the measured stabilization point (the
// engine's paper-facing measurement).
#include <gtest/gtest.h>

#include "load/driver.hpp"
#include "load/scenario.hpp"
#include "load/stabilization.hpp"
#include "spec/regular_checker.hpp"

namespace sbft::load {
namespace {

CheckOptions BaseCheck() {
  CheckOptions check;
  check.grandfathered_values = {Value{}};  // pre-first-write content
  return check;
}

TEST(OpenLoop, ShortBurstStaysRegular) {
  Scenario scenario = BaselineScenario(400.0, 300'000, 91);
  scenario.n_keys = 8;
  const LoadResult result = RunOpenLoop(scenario);

  ASSERT_GT(result.scheduled, 50u);
  EXPECT_EQ(result.unlaunched, 0u);
  EXPECT_EQ(result.pending, 0u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_DOUBLE_EQ(result.completed_frac, 1.0);
  EXPECT_EQ(result.history.size(), result.scheduled);
  EXPECT_EQ(result.write_latency.count() + result.read_latency.count(),
            result.ok);

  CheckOptions check = BaseCheck();
  check.stabilized_from = result.first_write_done_us;
  const CheckReport report = CheckRegularPerKey(result.history, check);
  EXPECT_TRUE(report.ok) << report.Summary();
}

TEST(OpenLoop, HistoryTimestampsAreOrdered) {
  Scenario scenario = BaselineScenario(300.0, 200'000, 92);
  scenario.n_keys = 4;
  const LoadResult result = RunOpenLoop(scenario);
  for (const OpRecord& op : result.history.ops()) {
    if (op.result == OpRecord::Result::kPending) continue;
    EXPECT_LE(op.invoked_at, op.returned_at);
    EXPECT_LT(op.client, scenario.n_keys);
  }
}

TEST(OpenLoop, MidLoadCorruptionStabilizesUnderTraffic) {
  // Corrupt EVERY server's protocol state at t=50ms while 400 ops/s
  // keep flowing, then demand: (a) the run keeps completing ops, (b)
  // the measured stabilization point exists inside the run, (c) the
  // checker finds zero violations among reads from that point on.
  Scenario scenario = CorruptionScenario(400.0, 300'000, 93);
  scenario.n_keys = 8;
  scenario.corruptions = {{50'000, {}}};
  const LoadResult result = RunOpenLoop(scenario);

  ASSERT_EQ(result.corruption_times_us.size(), 1u);
  EXPECT_DOUBLE_EQ(result.completed_frac, 1.0);
  ASSERT_GT(result.ok, 0u);

  const StabilizationReport stabilization = MeasureStabilization(
      result.history, result.corruption_times_us[0], BaseCheck());
  ASSERT_GT(stabilization.reads_after_corruption, 0u);
  EXPECT_TRUE(stabilization.stabilized)
      << "no clean suffix inside the observation window";

  // Zero violations after the measured stabilization point — by
  // construction of the binary search, but assert it end-to-end
  // through the public checker entry point.
  CheckOptions check = BaseCheck();
  check.stabilized_from = stabilization.stabilized_at_us;
  const CheckReport report = CheckRegularPerKey(result.history, check);
  EXPECT_TRUE(report.ok) << report.Summary();

  // And the window is bounded by the run itself.
  EXPECT_LE(stabilization.violation_window_us, result.run_duration_us);
}

TEST(OpenLoop, MidLoadCorruptionStabilizesBatched) {
  // Same corruption-under-traffic measurement, over the batched op
  // path: pending ops coalesce into shared MuxBatch rounds. The
  // coordinated corruption seeds (one seed per event across all
  // servers) make the injected garbage agree, so post-fault reads can
  // be ANSWERED with fabricated values — the checker and the
  // stabilization search must still converge on a clean suffix.
  Scenario scenario = CorruptionScenario(400.0, 300'000, 94);
  scenario.n_keys = 8;
  scenario.batch_max_ops = 8;
  scenario.batch_max_delay_us = 200;
  scenario.corruptions = {{50'000, {}}};
  const LoadResult result = RunOpenLoop(scenario);

  ASSERT_EQ(result.corruption_times_us.size(), 1u);
  EXPECT_DOUBLE_EQ(result.completed_frac, 1.0);
  EXPECT_EQ(result.failed, 0u);
  ASSERT_GT(result.ok, 0u);

  const StabilizationReport stabilization = MeasureStabilization(
      result.history, result.corruption_times_us[0], BaseCheck());
  ASSERT_GT(stabilization.reads_after_corruption, 0u);
  EXPECT_TRUE(stabilization.stabilized)
      << "no clean suffix inside the observation window";

  CheckOptions check = BaseCheck();
  check.stabilized_from = stabilization.stabilized_at_us;
  const CheckReport report = CheckRegularPerKey(result.history, check);
  EXPECT_TRUE(report.ok) << report.Summary();
  EXPECT_LE(stabilization.violation_window_us, result.run_duration_us);
}

TEST(Stabilization, DetectsDirtyPrefixOnSyntheticHistory) {
  // Synthetic single-key history: w1 then a stale read AFTER w2
  // completes (a genuine regularity violation), then clean reads. The
  // measured stabilization point must land after the dirty read and
  // the window must be positive.
  History history;
  auto add = [&](OpRecord::Kind kind, VirtualTime invoked, VirtualTime ret,
                 const char* value) {
    OpRecord op;
    op.kind = kind;
    op.result = OpRecord::Result::kOk;
    op.client = 0;
    op.invoked_at = invoked;
    op.returned_at = ret;
    const std::string text(value);
    op.value = Bytes(text.begin(), text.end());
    history.Add(op);
  };
  add(OpRecord::Kind::kWrite, 0, 10, "a");
  add(OpRecord::Kind::kWrite, 20, 30, "b");
  add(OpRecord::Kind::kRead, 40, 50, "a");  // stale: "b" superseded "a"
  add(OpRecord::Kind::kRead, 60, 70, "b");
  add(OpRecord::Kind::kRead, 80, 90, "b");

  const StabilizationReport report = MeasureStabilization(history, 0);
  EXPECT_TRUE(report.stabilized);
  EXPECT_EQ(report.stabilized_at_us, 41u);  // just past the dirty read
  EXPECT_EQ(report.violation_window_us, 41u);
  EXPECT_EQ(report.reads_after_corruption, 3u);
  EXPECT_EQ(report.excused_reads, 1u);
}

TEST(Stabilization, CleanHistoryHasZeroWindow) {
  History history;
  OpRecord write;
  write.kind = OpRecord::Kind::kWrite;
  write.result = OpRecord::Result::kOk;
  write.invoked_at = 0;
  write.returned_at = 10;
  write.value = Bytes{1};
  history.Add(write);
  OpRecord read;
  read.kind = OpRecord::Kind::kRead;
  read.result = OpRecord::Result::kOk;
  read.invoked_at = 20;
  read.returned_at = 30;
  read.value = Bytes{1};
  history.Add(read);

  const StabilizationReport report = MeasureStabilization(history, 15);
  EXPECT_TRUE(report.stabilized);
  EXPECT_EQ(report.violation_window_us, 0u);
  EXPECT_EQ(report.excused_reads, 0u);
}

TEST(Stabilization, NoReadsIsVacuous) {
  History history;
  const StabilizationReport report = MeasureStabilization(history, 0);
  EXPECT_FALSE(report.stabilized);
  EXPECT_EQ(report.reads_after_corruption, 0u);
}

}  // namespace
}  // namespace sbft::load
