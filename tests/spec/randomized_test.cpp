// Randomized end-to-end validation: concurrent multi-writer multi-reader
// workloads under Byzantine servers and transient corruption, checked
// against the MWMR regular specification (Theorems 2-3 empirically).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "spec/regular_checker.hpp"
#include "spec/workload.hpp"

namespace sbft {
namespace {

CheckOptions AfterStabilization(const WorkloadResult& result) {
  CheckOptions options;
  // Theorem 2 guarantees regularity for operations after the first
  // complete write; before it reads may return the (legal) initial
  // register content.
  options.stabilized_from = result.first_write_done;
  options.grandfathered_values = {Value{}};  // pristine initial value
  return options;
}

class RandomizedRegular
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(RandomizedRegular, CleanConcurrentWorkloadIsRegular) {
  const auto [n, seed] = GetParam();
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(n);
  options.seed = static_cast<std::uint64_t>(seed);
  options.n_clients = 3;
  Deployment deployment(std::move(options));

  WorkloadOptions workload;
  workload.ops_per_client = 25;
  workload.seed = static_cast<std::uint64_t>(seed) * 31 + n;
  auto result = RunConcurrentWorkload(deployment, workload);
  ASSERT_TRUE(result.all_completed);

  auto report = CheckRegular(result.history, AfterStabilization(result));
  EXPECT_TRUE(report.ok) << report.Summary();
  // With no faults and no corruption, nothing should abort.
  std::size_t aborted = 0;
  for (const auto& op : result.history.ops()) {
    if (op.result == OpRecord::Result::kAborted) ++aborted;
  }
  EXPECT_EQ(aborted, 0u);
}

TEST_P(RandomizedRegular, ByzantineConcurrentWorkloadIsRegular) {
  const auto [n, seed] = GetParam();
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(n);
  options.seed = static_cast<std::uint64_t>(seed) + 500;
  options.n_clients = 3;
  const std::uint32_t f = options.config.f;
  for (std::uint32_t b = 0; b < f; ++b) {
    options.byzantine[b * 3] = kAllByzantineStrategies[
        (static_cast<std::size_t>(seed) + b) %
        std::size(kAllByzantineStrategies)];
  }
  Deployment deployment(std::move(options));

  WorkloadOptions workload;
  workload.ops_per_client = 20;
  workload.seed = static_cast<std::uint64_t>(seed) * 37 + n;
  auto result = RunConcurrentWorkload(deployment, workload);
  ASSERT_TRUE(result.all_completed);
  auto report = CheckRegular(result.history, AfterStabilization(result));
  EXPECT_TRUE(report.ok) << report.Summary();
}

TEST_P(RandomizedRegular, CorruptionThenWorkloadStabilizes) {
  const auto [n, seed] = GetParam();
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(n);
  options.seed = static_cast<std::uint64_t>(seed) + 900;
  options.n_clients = 2;
  Deployment deployment(std::move(options));
  deployment.CorruptAllCorrectServers();
  deployment.CorruptAllChannels(2);
  for (std::size_t c = 0; c < 2; ++c) deployment.CorruptClient(c);

  WorkloadOptions workload;
  workload.ops_per_client = 20;
  workload.write_fraction = 0.6;  // ensure an early first write
  workload.seed = static_cast<std::uint64_t>(seed) * 41 + n;
  auto result = RunConcurrentWorkload(deployment, workload);
  ASSERT_TRUE(result.all_completed);
  ASSERT_NE(result.first_write_done, kTimeForever);

  // Judge only the post-stabilization suffix; pre-suffix reads may
  // return corrupted-state garbage, which is exactly what
  // pseudo-stabilization permits.
  CheckOptions check;
  check.stabilized_from = result.first_write_done;
  auto report = CheckRegular(result.history, check);
  EXPECT_TRUE(report.ok) << report.Summary();
}

TEST_P(RandomizedRegular, FullFaultCocktailStabilizes) {
  const auto [n, seed] = GetParam();
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(n);
  options.seed = static_cast<std::uint64_t>(seed) + 1300;
  options.n_clients = 2;
  const std::uint32_t f = options.config.f;
  for (std::uint32_t b = 0; b < f; ++b) {
    options.byzantine[b + 1] = kAllByzantineStrategies[
        static_cast<std::size_t>(seed + b) %
        std::size(kAllByzantineStrategies)];
  }
  Deployment deployment(std::move(options));
  deployment.CorruptAllCorrectServers();
  deployment.CorruptAllChannels(1);

  WorkloadOptions workload;
  workload.ops_per_client = 15;
  workload.write_fraction = 0.6;
  workload.seed = static_cast<std::uint64_t>(seed) * 43 + n;
  auto result = RunConcurrentWorkload(deployment, workload);
  ASSERT_TRUE(result.all_completed);
  ASSERT_NE(result.first_write_done, kTimeForever);
  CheckOptions check;
  check.stabilized_from = result.first_write_done;
  auto report = CheckRegular(result.history, check);
  EXPECT_TRUE(report.ok) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomizedRegular,
    ::testing::Combine(::testing::Values(6u, 11u),
                       ::testing::Values(1, 2, 3, 4)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(RandomizedRegularHeavy, ManySeedsCleanAndByzantine) {
  // Broad seed sweep with small workloads: catches rare interleavings.
  for (int seed = 0; seed < 30; ++seed) {
    Deployment::Options options;
    options.config = ProtocolConfig::ForServers(6);
    options.seed = static_cast<std::uint64_t>(seed) + 2000;
    options.n_clients = 2;
    if (seed % 2 == 1) {
      options.byzantine[seed % 6] = kAllByzantineStrategies[
          static_cast<std::size_t>(seed) %
          std::size(kAllByzantineStrategies)];
    }
    Deployment deployment(std::move(options));
    WorkloadOptions workload;
    workload.ops_per_client = 10;
    workload.seed = static_cast<std::uint64_t>(seed) * 101;
    auto result = RunConcurrentWorkload(deployment, workload);
    ASSERT_TRUE(result.all_completed) << "seed " << seed;
    CheckOptions check;
    check.stabilized_from = result.first_write_done;
    check.grandfathered_values = {Value{}};
    auto report = CheckRegular(result.history, check);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": " << report.Summary();
  }
}

}  // namespace
}  // namespace sbft
