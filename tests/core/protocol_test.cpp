// End-to-end protocol tests over the Deployment harness: write protocol
// (F1), read protocol (F2), find_read_label (F3), Byzantine tolerance,
// and pseudo-stabilization (Theorem 2) smoke tests. Heavier randomized
// sweeps live in stabilization_test.cpp.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/deployment.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

Deployment::Options BaseOptions(std::uint32_t n, std::uint64_t seed) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(n);
  options.seed = seed;
  return options;
}

TEST(Protocol, WriteThenReadReturnsValue) {
  Deployment deployment(BaseOptions(6, 1));
  auto write = deployment.Write(0, Val("hello"));
  ASSERT_TRUE(write.completed);
  EXPECT_EQ(write.outcome.status, OpStatus::kOk);
  EXPECT_EQ(write.outcome.retries, 0u);

  auto read = deployment.Read(0);
  ASSERT_TRUE(read.completed);
  EXPECT_EQ(read.outcome.status, OpStatus::kOk);
  EXPECT_EQ(read.outcome.value, Val("hello"));
  EXPECT_FALSE(read.outcome.used_union_graph);
}

TEST(Protocol, SequentialWritesEachVisible) {
  Deployment deployment(BaseOptions(6, 2));
  for (int i = 0; i < 25; ++i) {
    const Value value = Val("v" + std::to_string(i));
    auto write = deployment.Write(0, value);
    ASSERT_TRUE(write.completed) << i;
    ASSERT_EQ(write.outcome.status, OpStatus::kOk) << i;
    auto read = deployment.Read(0);
    ASSERT_TRUE(read.completed) << i;
    ASSERT_EQ(read.outcome.status, OpStatus::kOk) << i;
    EXPECT_EQ(read.outcome.value, value) << i;
  }
}

TEST(Protocol, WriteInstallsValueOnSupermajority) {
  // Lemma 2: after a write completes, at least 3f+1 servers store the
  // written value and timestamp.
  Deployment deployment(BaseOptions(11, 3));  // f = 2
  auto write = deployment.Write(0, Val("lemma2"));
  ASSERT_TRUE(write.completed);
  std::size_t holders = 0;
  for (std::size_t i = 0; i < 11; ++i) {
    if (deployment.server(i).current().value == Val("lemma2") &&
        deployment.server(i).current().ts == write.outcome.ts) {
      ++holders;
    }
  }
  EXPECT_GE(holders, 3u * 2 + 1);
}

TEST(Protocol, MultiWriterTotalOrder) {
  // Lemma 8: consecutive writes by different writers are ordered — the
  // later writer's timestamp follows the earlier one's.
  Deployment::Options options = BaseOptions(6, 4);
  options.n_clients = 2;
  Deployment deployment(std::move(options));
  LabelingSystem system(deployment.config().k);

  auto w1 = deployment.Write(0, Val("from-w0"));
  ASSERT_TRUE(w1.completed);
  auto w2 = deployment.Write(1, Val("from-w1"));
  ASSERT_TRUE(w2.completed);
  EXPECT_TRUE(Precedes(w1.outcome.ts, w2.outcome.ts, system.params()));

  auto read = deployment.Read(0);
  ASSERT_TRUE(read.completed);
  EXPECT_EQ(read.outcome.value, Val("from-w1"));
}

TEST(Protocol, ReaderSeesOtherWritersValue) {
  Deployment::Options options = BaseOptions(6, 5);
  options.n_clients = 3;
  Deployment deployment(std::move(options));
  ASSERT_TRUE(deployment.Write(2, Val("cross")).completed);
  auto read = deployment.Read(1);
  ASSERT_TRUE(read.completed);
  EXPECT_EQ(read.outcome.status, OpStatus::kOk);
  EXPECT_EQ(read.outcome.value, Val("cross"));
}

// --- F3: find_read_label / bounded label reuse -------------------------

TEST(Protocol, ManyReadsReuseBoundedLabels) {
  // More reads than labels in the pool: reuse must be safe and live.
  Deployment deployment(BaseOptions(6, 6));
  ASSERT_TRUE(deployment.Write(0, Val("stable")).completed);
  for (int i = 0; i < 20; ++i) {  // pool has 4 read labels
    auto read = deployment.Read(0);
    ASSERT_TRUE(read.completed) << i;
    EXPECT_EQ(read.outcome.status, OpStatus::kOk);
    EXPECT_EQ(read.outcome.value, Val("stable"));
  }
}

TEST(Protocol, CorruptedClientLabelStateRecovers) {
  // Transient fault on the client's label pools: the flush protocol
  // must re-acquire labels and the next operations must succeed.
  Deployment deployment(BaseOptions(6, 7));
  ASSERT_TRUE(deployment.Write(0, Val("pre")).completed);
  deployment.CorruptClient(0);
  auto write = deployment.Write(0, Val("post"));
  ASSERT_TRUE(write.completed);
  EXPECT_EQ(write.outcome.status, OpStatus::kOk);
  auto read = deployment.Read(0);
  ASSERT_TRUE(read.completed);
  EXPECT_EQ(read.outcome.status, OpStatus::kOk);
  EXPECT_EQ(read.outcome.value, Val("post"));
}

// --- Byzantine tolerance sweep -----------------------------------------

class ByzantineSweep
    : public ::testing::TestWithParam<std::tuple<ByzantineStrategy, int>> {};

TEST_P(ByzantineSweep, RegisterCorrectDespiteByzantineServers) {
  const auto [strategy, seed] = GetParam();
  Deployment::Options options = BaseOptions(6, seed);  // f = 1
  options.byzantine[5] = strategy;
  options.n_clients = 2;
  Deployment deployment(std::move(options));

  for (int i = 0; i < 10; ++i) {
    const Value value = Val("byz" + std::to_string(i));
    auto write = deployment.Write(i % 2, value);
    ASSERT_TRUE(write.completed) << ByzantineStrategyName(strategy);
    ASSERT_EQ(write.outcome.status, OpStatus::kOk);
    auto read = deployment.Read((i + 1) % 2);
    ASSERT_TRUE(read.completed) << ByzantineStrategyName(strategy);
    ASSERT_EQ(read.outcome.status, OpStatus::kOk);
    EXPECT_EQ(read.outcome.value, value)
        << "strategy=" << ByzantineStrategyName(strategy) << " i=" << i;
  }
}

TEST_P(ByzantineSweep, TwoByzantineAtF2) {
  const auto [strategy, seed] = GetParam();
  Deployment::Options options = BaseOptions(11, seed + 100);  // f = 2
  options.byzantine[3] = strategy;
  options.byzantine[8] = strategy;
  Deployment deployment(std::move(options));

  for (int i = 0; i < 5; ++i) {
    const Value value = Val("f2-" + std::to_string(i));
    ASSERT_TRUE(deployment.Write(0, value).completed);
    auto read = deployment.Read(0);
    ASSERT_TRUE(read.completed);
    ASSERT_EQ(read.outcome.status, OpStatus::kOk);
    EXPECT_EQ(read.outcome.value, value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ByzantineSweep,
    ::testing::Combine(::testing::ValuesIn(kAllByzantineStrategies),
                       ::testing::Values(11, 12)),
    [](const auto& param_info) {
      std::string name(ByzantineStrategyName(std::get<0>(param_info.param)));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(param_info.param));
    });

// --- Pseudo-stabilization (Theorem 2) -----------------------------------

TEST(Protocol, StabilizesAfterServerCorruption) {
  Deployment deployment(BaseOptions(6, 21));
  deployment.CorruptAllCorrectServers();
  // Assumption 1: the first write after the fault runs to completion.
  auto write = deployment.Write(0, Val("heal"));
  ASSERT_TRUE(write.completed);
  EXPECT_EQ(write.outcome.status, OpStatus::kOk);
  // Every subsequent read must return the regular value (Lemma 7).
  for (int i = 0; i < 5; ++i) {
    auto read = deployment.Read(0);
    ASSERT_TRUE(read.completed);
    ASSERT_EQ(read.outcome.status, OpStatus::kOk) << i;
    EXPECT_EQ(read.outcome.value, Val("heal"));
  }
}

TEST(Protocol, StabilizesAfterChannelCorruption) {
  Deployment deployment(BaseOptions(6, 22));
  deployment.CorruptAllChannels(3);
  auto write = deployment.Write(0, Val("flush-the-garbage"));
  ASSERT_TRUE(write.completed);
  auto read = deployment.Read(0);
  ASSERT_TRUE(read.completed);
  EXPECT_EQ(read.outcome.status, OpStatus::kOk);
  EXPECT_EQ(read.outcome.value, Val("flush-the-garbage"));
}

TEST(Protocol, StabilizesAfterFullCorruptionWithByzantine) {
  // The paper's headline scenario: arbitrary initial state at every
  // correct server AND client AND channels, plus a Byzantine server.
  Deployment::Options options = BaseOptions(6, 23);
  options.byzantine[2] = ByzantineStrategy::kStaleReplay;
  Deployment deployment(std::move(options));
  deployment.CorruptAllCorrectServers();
  deployment.CorruptClient(0);
  deployment.CorruptAllChannels(2);

  auto write = deployment.Write(0, Val("phoenix"));
  ASSERT_TRUE(write.completed);
  EXPECT_EQ(write.outcome.status, OpStatus::kOk);
  for (int i = 0; i < 5; ++i) {
    auto read = deployment.Read(0);
    ASSERT_TRUE(read.completed);
    ASSERT_EQ(read.outcome.status, OpStatus::kOk);
    EXPECT_EQ(read.outcome.value, Val("phoenix"));
  }
}

TEST(Protocol, ReadBeforeAnyWriteMayAbortButTerminates) {
  // From a corrupted initial state with no completed write, reads may
  // abort (or return garbage) but must terminate (Lemma 6).
  Deployment deployment(BaseOptions(6, 24));
  deployment.CorruptAllCorrectServers();
  auto read = deployment.Read(0);
  EXPECT_TRUE(read.completed);  // termination — outcome unconstrained
}

TEST(Protocol, LargerDeploymentsWork) {
  for (std::uint32_t n : {16u, 21u}) {
    Deployment deployment(BaseOptions(n, 30 + n));
    const Value value = Val("n" + std::to_string(n));
    ASSERT_TRUE(deployment.Write(0, value).completed);
    auto read = deployment.Read(0);
    ASSERT_TRUE(read.completed);
    EXPECT_EQ(read.outcome.value, value);
  }
}

TEST(Protocol, OperationMessageComplexityIsLinear) {
  // E3 sanity: one op costs Theta(n) frames. A write is flush(2n) +
  // get_ts(2n) + write(2n) = 6n frames with all-correct servers; a read
  // is flush(2n) + read/reply(2(n)) + complete(n) ~ 5n.
  Deployment deployment(BaseOptions(6, 40));
  auto write = deployment.Write(0, Val("count"));
  ASSERT_TRUE(write.completed);
  EXPECT_LE(write.frames_sent, 6u * 6 + 6);
  EXPECT_GE(write.frames_sent, 5u * 6);
  auto read = deployment.Read(0);
  ASSERT_TRUE(read.completed);
  EXPECT_LE(read.frames_sent, 5u * 6 + 6);
  EXPECT_GE(read.frames_sent, 4u * 6);
}

}  // namespace
}  // namespace sbft
