// E6: the quiescence assumption (Assumption 2) and the old_vals window.
// The paper stores the last W written values per server so reads racing
// a write burst can still certify a value from history; Assumption 2
// says bursts are bounded. Sweep the burst length (writes issued
// back-to-back while a reader reads concurrently) against the window
// size W and measure read aborts and union-graph usage.
#include <string>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "core/deployment.hpp"

using namespace sbft;
using namespace sbft::bench;

namespace {

struct Cell {
  int reads = 0;
  int aborted = 0;
  int union_path = 0;
};

// The reader's channels are slow (U[20,60] ticks) while the writer's
// are fast (U[1,6]): one read then spans several write generations,
// which is exactly the race the old_vals window exists for.
class SlowReaderDelay final : public DelayPolicy {
 public:
  explicit SlowReaderDelay(NodeId reader) : reader_(reader) {}
  VirtualTime Sample(NodeId src, NodeId dst, VirtualTime, Rng& rng) override {
    if (src == reader_ || dst == reader_) {
      return static_cast<VirtualTime>(rng.NextInRange(40, 140));
    }
    return static_cast<VirtualTime>(rng.NextInRange(1, 2));
  }

 private:
  NodeId reader_;
};

Cell RunBurst(std::uint32_t window, int burst_length, bool forwarding,
              std::uint64_t seed) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.config.history_window = window;
  options.config.forward_to_running_reads = forwarding;
  options.seed = seed;
  options.n_clients = 2;  // writer 0, reader 1
  options.delay = std::make_unique<SlowReaderDelay>(
      static_cast<NodeId>(6 + 1));  // reader node id = n + 1
  Deployment deployment(std::move(options));
  World& world = deployment.world();

  // Settle with one write.
  (void)deployment.Write(0, Value{0});

  Cell cell;
  // Writer issues `burst_length` writes back-to-back (next begins as
  // soon as the previous returns) while the reader loops reads.
  int writes_left = burst_length;
  std::function<void()> next_write = [&] {
    if (writes_left-- <= 0) return;
    deployment.client(0).StartWrite(
        Value{static_cast<std::uint8_t>(writes_left), 0x55},
        [&](const WriteOutcome&) { next_write(); });
  };
  bool reader_idle = true;
  int reads_to_go = 10;
  std::function<void()> next_read = [&] {
    if (reads_to_go-- <= 0) {
      reader_idle = true;
      return;
    }
    reader_idle = false;
    deployment.client(1).StartRead([&](const ReadOutcome& outcome) {
      cell.reads++;
      if (outcome.status == OpStatus::kAborted) cell.aborted++;
      if (outcome.used_union_graph) cell.union_path++;
      next_read();
    });
  };
  world.ScheduleCall(1, [&] { next_write(); });
  world.ScheduleCall(2, [&] { next_read(); });
  world.RunUntil([&] { return writes_left < 0 && reads_to_go < 0; },
                 5'000'000);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report("quiescence", ParseBenchArgs(argc, argv));
  const std::uint64_t seeds = report.smoke() ? 2 : 5;
  Header("E6 (Assumption 2)",
         "reads concurrent with a write burst: aborts and union-graph "
         "usage vs burst length and history window W (n=6, 10 reads, "
         "5 seeds)");
  Row("%-12s %-8s %-8s | %-10s %-12s %-12s", "forwarding", "W", "burst",
      "reads", "aborted", "union-path");
  for (bool forwarding : {true, false}) {
    for (std::uint32_t window : {1u, 2u, 6u, 12u}) {
      for (int burst : {1, 8, 32}) {
        Cell total;
        for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
          Cell cell = RunBurst(window, burst, forwarding, seed * 13);
          total.reads += cell.reads;
          total.aborted += cell.aborted;
          total.union_path += cell.union_path;
        }
        Row("%-12s %-8u %-8d | %-10d %-12d %-12d",
            forwarding ? "on (paper)" : "off (ablated)", window, burst,
            total.reads, total.aborted, total.union_path);
        const std::string key = std::string(forwarding ? "fwd" : "nofwd") +
                                ".w" + std::to_string(window) + ".b" +
                                std::to_string(burst);
        report.Metric(key + ".aborted", total.aborted, "reads");
        report.Metric(key + ".union_path", total.union_path, "reads");
      }
    }
  }
  Row("%s", "\nexpected shape: with forwarding on (Figure 1) reads always "
            "certify on the local graph regardless of burst length — the "
            "forwarding mechanism is what makes read-write concurrency "
            "cheap. With forwarding ablated, reads lean on the union "
            "graph, and once the burst far exceeds the window W the "
            "history cannot certify anything and reads abort — the regime "
            "Assumption 2 exists to exclude.");
  return report.Flush() ? 0 : 1;
}
