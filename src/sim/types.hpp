// Identifier and virtual-time types shared by the simulator, the
// messaging layer and the protocol automata.
#pragma once

#include <cstdint>
#include <limits>

namespace sbft {

/// Identifies one process (server or client). Servers of an n-server
/// deployment conventionally occupy ids 0..n-1 and clients follow.
using NodeId = std::uint32_t;
constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Identifies one logical register of a multi-register deployment
/// (core/mux.hpp multiplexes many over one server population;
/// core/shard_map.hpp consistent-hashes them across server groups).
/// String keys map in via RegisterIdOf (FNV-1a).
using RegisterId = std::uint64_t;

/// Discrete simulated time in abstract ticks. The asynchronous model of
/// §II has no real-time semantics; ticks only order events and let delay
/// policies express relative speeds.
using VirtualTime = std::uint64_t;
constexpr VirtualTime kTimeForever = std::numeric_limits<VirtualTime>::max();

}  // namespace sbft
