// Tests for MWMR timestamps (label, writer id) — the §IV-D extension.
#include "labels/timestamp.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "labels/unbounded_timestamp.hpp"

namespace sbft {
namespace {

TEST(Timestamp, LabelOrderDominatesWriterId) {
  LabelingSystem system(3);
  Label l0 = system.Initial();
  Label l1 = system.Next(std::vector<Label>{l0});
  // Higher writer id on the older label must not win.
  Timestamp old_ts{l0, /*writer_id=*/99};
  Timestamp new_ts{l1, /*writer_id=*/1};
  EXPECT_TRUE(Precedes(old_ts, new_ts, system.params()));
  EXPECT_FALSE(Precedes(new_ts, old_ts, system.params()));
}

TEST(Timestamp, EqualLabelsOrderedByWriterId) {
  LabelingSystem system(3);
  Label l = system.Initial();
  Timestamp a{l, 1};
  Timestamp b{l, 2};
  EXPECT_TRUE(Precedes(a, b, system.params()));
  EXPECT_FALSE(Precedes(b, a, system.params()));
}

TEST(Timestamp, IncomparableLabelsStayUnordered) {
  // Identifiers must not order incomparable labels (a stale label can be
  // incomparable to a fresh one; an id-based edge would let it dominate
  // fresh writes in the WTsG). Lemma 8's identifier ordering applies at
  // head election time instead.
  LabelingSystem system(2);  // domain 25
  Label a{.sting = 1, .antistings = {2, 3}};
  Label b{.sting = 4, .antistings = {5, 6}};  // mutually incomparable
  ASSERT_FALSE(Precedes(a, b, system.params()));
  ASSERT_FALSE(Precedes(b, a, system.params()));
  Timestamp ta{a, 1};
  Timestamp tb{b, 2};
  EXPECT_FALSE(Precedes(ta, tb, system.params()));
  EXPECT_FALSE(Precedes(tb, ta, system.params()));
  // SelectionLess still breaks the tie deterministically.
  EXPECT_NE(SelectionLess(ta, tb, system.params()),
            SelectionLess(tb, ta, system.params()));
}

TEST(Timestamp, AntisymmetryProperty) {
  Rng rng(31);
  LabelingSystem system(4);
  for (int i = 0; i < 2000; ++i) {
    Timestamp a{RandomValidLabel(rng, system.params()),
                static_cast<ClientId>(rng.NextBelow(4))};
    Timestamp b{RandomValidLabel(rng, system.params()),
                static_cast<ClientId>(rng.NextBelow(4))};
    EXPECT_FALSE(Precedes(a, b, system.params()) &&
                 Precedes(b, a, system.params()));
    EXPECT_FALSE(Precedes(a, a, system.params()));
  }
}

TEST(Timestamp, SelectionLessIsTotalOnDistinct) {
  Rng rng(32);
  LabelingSystem system(4);
  for (int i = 0; i < 1000; ++i) {
    Timestamp a{RandomValidLabel(rng, system.params()),
                static_cast<ClientId>(rng.NextBelow(3))};
    Timestamp b{RandomValidLabel(rng, system.params()),
                static_cast<ClientId>(rng.NextBelow(3))};
    if (a == b) continue;
    EXPECT_NE(SelectionLess(a, b, system.params()),
              SelectionLess(b, a, system.params()));
  }
}

TEST(Timestamp, EncodeDecodeRoundTrip) {
  Rng rng(33);
  LabelingSystem system(5);
  for (int i = 0; i < 200; ++i) {
    Timestamp ts{RandomValidLabel(rng, system.params()),
                 static_cast<ClientId>(rng())};
    BufWriter w;
    ts.Encode(w);
    BufReader r(w.data());
    Timestamp back = Timestamp::Decode(r);
    EXPECT_TRUE(r.AtEndOk());
    EXPECT_EQ(back, ts);
  }
}

TEST(UnboundedTsTest, TotalOrderAndRoundTrip) {
  UnboundedTs a{1, 5};
  UnboundedTs b{2, 0};
  UnboundedTs c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);  // transitive, unlike bounded labels

  BufWriter w;
  c.Encode(w);
  BufReader r(w.data());
  EXPECT_EQ(UnboundedTs::Decode(r), c);
  EXPECT_TRUE(r.AtEndOk());
}

}  // namespace
}  // namespace sbft
