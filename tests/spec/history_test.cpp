// OpRecord precedence/concurrency predicates and History projections —
// the temporal algebra everything in spec/ rests on.
#include "spec/history.hpp"

#include <gtest/gtest.h>

namespace sbft {
namespace {

OpRecord Make(OpRecord::Kind kind, VirtualTime from, VirtualTime to,
              OpRecord::Result result = OpRecord::Result::kOk) {
  OpRecord op;
  op.kind = kind;
  op.result = result;
  op.invoked_at = from;
  op.returned_at = to;
  return op;
}

TEST(HistoryOps, PrecedenceIsStrict) {
  auto a = Make(OpRecord::Kind::kWrite, 0, 10);
  auto b = Make(OpRecord::Kind::kRead, 20, 30);
  EXPECT_TRUE(a.PrecedesRt(b));
  EXPECT_FALSE(b.PrecedesRt(a));
  EXPECT_FALSE(a.ConcurrentWith(b));
}

TEST(HistoryOps, TouchingIntervalsAreConcurrent) {
  // op precedes op' iff t_E(op) < t_B(op') — equality means overlap at
  // an instant, which the paper's definition treats as concurrent.
  auto a = Make(OpRecord::Kind::kWrite, 0, 10);
  auto b = Make(OpRecord::Kind::kRead, 10, 20);
  EXPECT_FALSE(a.PrecedesRt(b));
  EXPECT_TRUE(a.ConcurrentWith(b));
}

TEST(HistoryOps, OverlapIsSymmetricConcurrency) {
  auto a = Make(OpRecord::Kind::kWrite, 0, 15);
  auto b = Make(OpRecord::Kind::kRead, 10, 20);
  EXPECT_TRUE(a.ConcurrentWith(b));
  EXPECT_TRUE(b.ConcurrentWith(a));
}

TEST(HistoryOps, PendingOpsNeverPrecede) {
  auto pending = Make(OpRecord::Kind::kWrite, 0, 0,
                      OpRecord::Result::kPending);
  auto later = Make(OpRecord::Kind::kRead, 100, 110);
  EXPECT_FALSE(pending.PrecedesRt(later));
  EXPECT_TRUE(pending.ConcurrentWith(later));  // forever in flight
}

TEST(HistoryOps, ProjectionsSplitByKind) {
  History history;
  history.Add(Make(OpRecord::Kind::kWrite, 0, 1));
  history.Add(Make(OpRecord::Kind::kRead, 2, 3));
  history.Add(Make(OpRecord::Kind::kWrite, 4, 5));
  EXPECT_EQ(history.Writes().size(), 2u);
  EXPECT_EQ(history.Reads().size(), 1u);
  EXPECT_EQ(history.size(), 3u);
  history.Clear();
  EXPECT_EQ(history.size(), 0u);
}

}  // namespace
}  // namespace sbft
