// F1 at the wire level: a write must appear on every correct channel as
// FLUSH before GET_TS before WRITE (the two protocol phases behind a
// label-acquisition round), with the WRITE carrying a timestamp that
// dominates every timestamp reported in that operation's TS replies.
#include <gtest/gtest.h>

#include <map>

#include "core/deployment.hpp"

namespace sbft {
namespace {

TEST(WriteOrder, PhasesAppearInOrderPerChannel) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 88;
  Deployment deployment(std::move(options));
  deployment.world().trace().Enable(true);

  ASSERT_TRUE(deployment.Write(0, Value{42}).completed);

  const NodeId client = deployment.client_node(0);
  // Per server: the send order of the write's phases.
  std::map<NodeId, std::vector<std::string>> sequence;
  for (const TraceEvent& event : deployment.world().trace().events()) {
    if (event.kind != TraceKind::kSend || event.src != client) continue;
    auto decoded = DecodeMessage(event.frame());
    if (!decoded.ok()) continue;
    const std::string name = MessageTypeName(decoded.value());
    if (name == "FLUSH" || name == "GET_TS" || name == "WRITE") {
      sequence[event.dst].push_back(name);
    }
  }
  ASSERT_EQ(sequence.size(), 6u);  // every server was contacted
  for (const auto& [server, names] : sequence) {
    ASSERT_EQ(names.size(), 3u) << "server " << server;
    EXPECT_EQ(names[0], "FLUSH");
    EXPECT_EQ(names[1], "GET_TS");
    EXPECT_EQ(names[2], "WRITE");
  }
}

TEST(WriteOrder, WriteTimestampDominatesCollectedReplies) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 89;
  Deployment deployment(std::move(options));
  deployment.world().trace().Enable(true);

  auto write = deployment.Write(0, Value{7});
  ASSERT_TRUE(write.completed);

  LabelingSystem system(deployment.config().k);
  const NodeId client = deployment.client_node(0);
  int ts_replies = 0;
  for (const TraceEvent& event : deployment.world().trace().events()) {
    if (event.kind != TraceKind::kDeliver || event.dst != client) continue;
    auto decoded = DecodeMessage(event.frame());
    if (!decoded.ok()) continue;
    if (const auto* reply = std::get_if<TsReplyMsg>(&decoded.value())) {
      ++ts_replies;
      EXPECT_TRUE(system.Precedes(reply->ts.label, write.outcome.ts.label))
          << reply->ts.ToString() << " !< " << write.outcome.ts.ToString();
    }
  }
  EXPECT_GE(ts_replies, static_cast<int>(deployment.config().Quorum()));
}

TEST(WriteOrder, ReadNeverSendsWritePhaseMessages) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 90;
  Deployment deployment(std::move(options));
  ASSERT_TRUE(deployment.Write(0, Value{1}).completed);
  deployment.world().trace().Enable(true);
  ASSERT_TRUE(deployment.Read(0).completed);

  const NodeId client = deployment.client_node(0);
  for (const TraceEvent& event : deployment.world().trace().events()) {
    if (event.kind != TraceKind::kSend || event.src != client) continue;
    auto decoded = DecodeMessage(event.frame());
    if (!decoded.ok()) continue;
    const std::string name = MessageTypeName(decoded.value());
    EXPECT_NE(name, "GET_TS");
    EXPECT_NE(name, "WRITE");
  }
}

}  // namespace
}  // namespace sbft
