// Fixture: blocking primitive reachable from a reactor handler. The
// lambda registered with Reactor::Add runs on the event loop; its
// OnReadable() path parks on an unbounded CondVar::Wait, stalling
// every connection hosted by that loop. Expected: exactly one check
// trips — reactor-blocking.

namespace sbft {

class Mutex {
 public:
  void lock();
  void unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mutex);
  ~MutexLock();
};

class CondVar {
 public:
  void Wait(Mutex& mutex);
  void NotifyOne();
};

class Reactor {
 public:
  template <class Handler>
  void Add(int fd, Handler handler);
};

class Server {
 public:
  void Start(int fd) {
    reactor_.Add(fd, [this] { OnReadable(); });
  }

 private:
  void OnReadable() {
    MutexLock guard(mutex_);
    while (!has_data_) {
      ready_.Wait(mutex_);
    }
    has_data_ = false;
  }

  Reactor reactor_;
  Mutex mutex_;
  CondVar ready_;
  bool has_data_ = false;
};

}  // namespace sbft
