// The weak channel underneath the stabilizing data-link (reference [8]
// of the paper): bounded capacity, non-FIFO, fair-lossy, and subject to
// transient corruption (arbitrary initial content).
//
// Model restrictions (documented in DESIGN.md): the channel never
// duplicates or creates frames after time 0 — it may only lose, reorder
// and delay them, and may hold arbitrary garbage initially. This is the
// model for which our simplified data-link is correct.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace sbft {

class LossyChannel {
 public:
  struct Options {
    std::size_t capacity = 4;   // max frames in flight
    double drop_probability = 0.1;
  };

  LossyChannel(Options options, Rng rng)
      : options_(options), rng_(rng) {}

  /// Offer a frame to the channel. Returns false if it was lost (random
  /// drop, or capacity overflow — overflow drops the *new* frame, which
  /// is the standard bounded-channel semantics).
  bool Push(Bytes frame);

  /// Deliver one frame, chosen uniformly (non-FIFO). Empty if none.
  std::optional<Bytes> Pop();

  /// Fill with `count` garbage frames (transient fault / arbitrary
  /// initial configuration). Clipped to capacity.
  void PreloadGarbage(std::size_t count, std::size_t max_frame_size = 32);

  /// Overwrite all current contents with garbage of the same sizes.
  void CorruptInFlight();

  [[nodiscard]] std::size_t size() const { return frames_.size(); }
  [[nodiscard]] std::size_t capacity() const { return options_.capacity; }

 private:
  Options options_;
  Rng rng_;
  std::vector<Bytes> frames_;
};

}  // namespace sbft
