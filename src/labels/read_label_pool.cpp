#include "labels/read_label_pool.hpp"

#include "common/error.hpp"

namespace sbft {

ReadLabelPool::ReadLabelPool(std::size_t n_servers, std::size_t n_labels)
    : n_labels_(n_labels),
      pending_(n_servers, std::vector<bool>(n_labels, false)) {
  SBFT_ASSERT(n_labels >= 2);
  SBFT_ASSERT(n_servers >= 1);
}

ReadLabel ReadLabelPool::PickCandidate() const {
  ReadLabel best = static_cast<ReadLabel>((last_ + 1) % n_labels_);
  std::size_t best_pending = PendingCount(best);
  for (std::size_t offset = 2; offset < n_labels_; ++offset) {
    const auto candidate =
        static_cast<ReadLabel>((last_ + offset) % n_labels_);
    const std::size_t pending = PendingCount(candidate);
    if (pending < best_pending) {
      best = candidate;
      best_pending = pending;
    }
  }
  return best;
}

void ReadLabelPool::MarkPending(ServerIndex server, ReadLabel label) {
  SBFT_ASSERT(server < pending_.size());
  SBFT_ASSERT(label < n_labels_);
  pending_[server][label] = true;
}

void ReadLabelPool::ClearPending(ServerIndex server, ReadLabel label) {
  if (server >= pending_.size() || label >= n_labels_) return;  // garbage msg
  pending_[server][label] = false;
}

bool ReadLabelPool::IsPending(ServerIndex server, ReadLabel label) const {
  SBFT_ASSERT(server < pending_.size());
  SBFT_ASSERT(label < n_labels_);
  return pending_[server][label];
}

std::size_t ReadLabelPool::PendingCount(ReadLabel label) const {
  SBFT_ASSERT(label < n_labels_);
  std::size_t count = 0;
  for (const auto& row : pending_) count += row[label] ? 1 : 0;
  return count;
}

void ReadLabelPool::Corrupt(Rng& rng) {
  last_ = static_cast<ReadLabel>(rng());
  for (auto& row : pending_) {
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = rng.NextBool(0.5);
  }
}

void ReadLabelPool::SanitizeState() {
  last_ %= n_labels_;
  // The matrix itself is structurally always in range; nothing else to fix.
}

}  // namespace sbft
