// Data-link shim: runs any Automaton over weak channels.
//
// §II assumes reliable FIFO channels and notes they "can be ensured by
// using a stabilization preserving data-link protocol built on top of
// bounded, non-reliable but fair, non-FIFO communication channels [8]".
// This shim makes that note executable: it wraps an inner automaton and
// tunnels every frame through a DataLinkSender/-Receiver pair per peer,
// so the register protocol runs end-to-end over channels that lose and
// reorder frames (World::DegradeChannel).
//
// Mechanics: outgoing inner frames are Submit()ted to the per-peer
// sender; a self-rearming tick timer drives retransmission while any
// sender is busy; incoming frames are classified by DlFrame kind (DATA
// feeds the per-peer receiver, which delivers the inner frame upward;
// ACK feeds the sender). The shim's own state is all bounded, and a
// transient fault on the shim (CorruptState) garbles both the inner
// automaton and every link endpoint.
#pragma once

#include <map>
#include <memory>

#include "net/datalink.hpp"
#include "sim/world.hpp"

namespace sbft {

class DatalinkShim final : public Automaton {
 public:
  /// `capacity` is the weak channel's bound c (must match the channel
  /// model); `peers` are the nodes this shim may talk to.
  DatalinkShim(std::unique_ptr<Automaton> inner, std::size_t capacity,
               std::vector<NodeId> peers);
  ~DatalinkShim() override;  // out-of-line: InnerEndpoint is incomplete

  void OnStart(IEndpoint& endpoint) override;
  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;
  void OnTimer(int timer_id, IEndpoint& endpoint) override;
  void CorruptState(Rng& rng) override;

  [[nodiscard]] Automaton& inner() { return *inner_; }

 private:
  // Endpoint seen by the inner automaton: Send() goes to the link layer.
  class InnerEndpoint;

  struct Link {
    std::unique_ptr<DataLinkSender> sender;
    std::unique_ptr<DataLinkReceiver> receiver;
  };

  Link& LinkTo(NodeId peer, IEndpoint& endpoint);
  void Pump(IEndpoint& endpoint);
  void ArmTimer(IEndpoint& endpoint);

  std::unique_ptr<Automaton> inner_;
  std::size_t capacity_;
  std::vector<NodeId> peers_;
  std::map<NodeId, Link> links_;
  std::unique_ptr<InnerEndpoint> inner_endpoint_;
  IEndpoint* outer_ = nullptr;
  bool timer_armed_ = false;
};

}  // namespace sbft
