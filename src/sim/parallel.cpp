#include "sim/parallel.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "common/thread_annotations.hpp"

namespace sbft {

std::size_t HardwareJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ParallelFor(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (jobs > count) jobs = count;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  Mutex error_mutex;
  std::exception_ptr first_error;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        const MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs - 1);
  for (std::size_t t = 1; t < jobs; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sbft
