#include "core/mux.hpp"

#include <algorithm>

#include "common/buffer_pool.hpp"
#include "common/hash.hpp"

namespace sbft {
namespace {

// Endpoint adaptor: outgoing inner frames get wrapped with the register
// id. Used per-call on the server side (RegisterServer never stores the
// endpoint) and persistently on the client side via OuterRef.
class WrapEndpoint final : public IEndpoint {
 public:
  WrapEndpoint(IEndpoint& outer, RegisterId id) : outer_(&outer), id_(id) {}

  void Send(NodeId dst, Bytes frame) override {
    // Envelope the already-encoded inner frame in place — no MuxMsg
    // variant construction, no second encode of the inner message.
    outer_->Send(dst, EncodeMuxEnvelope(id_, frame));
    FramePool().Release(std::move(frame));
  }

  void Broadcast(std::span<const NodeId> dsts, Bytes frame) override {
    // Envelope once; the outer endpoint fans the single wrapped frame
    // out (shared payload in the sim/threaded backends).
    outer_->Broadcast(dsts, EncodeMuxEnvelope(id_, frame));
    FramePool().Release(std::move(frame));
  }
  void SetTimer(VirtualTime delay, int timer_id) override {
    outer_->SetTimer(delay, timer_id);
  }
  [[nodiscard]] VirtualTime Now() const override { return outer_->Now(); }
  [[nodiscard]] NodeId self() const override { return outer_->self(); }
  Rng& rng() override { return outer_->rng(); }

 private:
  IEndpoint* outer_;
  RegisterId id_;
};

void TouchLru(std::list<RegisterId>& lru,
              std::map<RegisterId, std::list<RegisterId>::iterator>& pos,
              RegisterId id) {
  if (auto it = pos.find(id); it != pos.end()) {
    lru.splice(lru.begin(), lru, it->second);  // O(1); iterator stays valid
  } else {
    lru.push_front(id);
    pos.emplace(id, lru.begin());
  }
}

}  // namespace

RegisterId RegisterIdOf(std::string_view key) { return Fnv1a(key); }

// --- MuxServer -----------------------------------------------------------

MuxServer::MuxServer(ProtocolConfig config, std::size_t server_index,
                     std::size_t max_registers, ServerFactory factory)
    : config_(config),
      index_(server_index),
      max_registers_(max_registers),
      factory_(std::move(factory)) {
  SBFT_ASSERT(max_registers_ >= 1);
  if (!factory_) {
    factory_ = [this](RegisterId) {
      return std::make_unique<RegisterServer>(config_, index_);
    };
  }
}

RegisterServer* MuxServer::Find(RegisterId id) {
  auto it = registers_.find(id);
  return it == registers_.end() ? nullptr : it->second.get();
}

RegisterServer& MuxServer::GetOrCreate(RegisterId id) {
  auto it = registers_.find(id);
  if (it == registers_.end()) {
    if (registers_.size() >= max_registers_ && !lru_.empty()) {
      // Evict the coldest register. It re-enters later in its initial
      // state, which the protocol treats like a transient fault.
      const RegisterId cold = lru_.back();
      registers_.erase(cold);
      lru_.pop_back();
      lru_pos_.erase(cold);
    }
    it = registers_.emplace(id, factory_(id)).first;
  }
  TouchLru(lru_, lru_pos_, id);
  return *it->second;
}

void MuxServer::OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const auto* mux = std::get_if<MuxMsg>(&decoded.value());
  if (mux == nullptr) return;  // bare frames are not for a mux server
  WrapEndpoint wrapped(endpoint, mux->register_id);
  GetOrCreate(mux->register_id).OnFrame(from, mux->inner, wrapped);
}

void MuxServer::CorruptState(Rng& rng) {
  for (auto& [id, server] : registers_) server->CorruptState(rng);
}

// --- MuxClient -----------------------------------------------------------

MuxClient::MuxClient(ProtocolConfig config, std::vector<NodeId> servers,
                     ClientId client_id, std::size_t max_registers)
    : config_(config),
      servers_(std::move(servers)),
      client_id_(client_id),
      max_registers_(max_registers) {
  SBFT_ASSERT(max_registers_ >= 1);
}

void MuxClient::OnStart(IEndpoint& endpoint) { endpoint_ = &endpoint; }

RegisterClient& MuxClient::GetOrCreate(RegisterId id) {
  SBFT_ASSERT(endpoint_ != nullptr);
  auto it = clients_.find(id);
  if (it == clients_.end()) {
    if (clients_.size() >= max_registers_) {
      // Evict the coldest IDLE register client (an in-flight operation
      // must never lose its callback). If everything is busy, exceed
      // the cap rather than wedge.
      for (auto lru_it = lru_.rbegin(); lru_it != lru_.rend(); ++lru_it) {
        const RegisterId cold = *lru_it;
        auto candidate = clients_.find(cold);
        if (candidate != clients_.end() && candidate->second.client->idle()) {
          clients_.erase(candidate);
          lru_.erase(std::next(lru_it).base());
          lru_pos_.erase(cold);
          break;
        }
      }
    }
    Entry entry;
    entry.endpoint = std::make_unique<WrapEndpoint>(*endpoint_, id);
    entry.client = std::make_unique<RegisterClient>(config_, servers_,
                                                    client_id_);
    // RegisterClient caches the endpoint passed to OnStart; the wrapper
    // lives in the same Entry, so lifetimes match exactly.
    entry.client->OnStart(*entry.endpoint);
    it = clients_.emplace(id, std::move(entry)).first;
  }
  TouchLru(lru_, lru_pos_, id);
  return *it->second.client;
}

void MuxClient::OnFrame(NodeId from, BytesView frame, IEndpoint&) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const auto* mux = std::get_if<MuxMsg>(&decoded.value());
  if (mux == nullptr) return;
  auto it = clients_.find(mux->register_id);
  if (it == clients_.end()) return;  // reply for an evicted register
  it->second.client->OnFrame(from, mux->inner, *it->second.endpoint);
}

void MuxClient::StartWrite(RegisterId id, Value value,
                           WriteCallback callback) {
  GetOrCreate(id).StartWrite(std::move(value), std::move(callback));
}

void MuxClient::StartRead(RegisterId id, ReadCallback callback) {
  GetOrCreate(id).StartRead(std::move(callback));
}

bool MuxClient::idle(RegisterId id) {
  auto it = clients_.find(id);
  return it == clients_.end() || it->second.client->idle();
}

void MuxClient::CorruptState(Rng& rng) {
  for (auto& [id, entry] : clients_) entry.client->CorruptState(rng);
}

}  // namespace sbft
