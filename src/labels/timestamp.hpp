// MWMR timestamps: the §IV-D extension associates each written value
// with a (label, writer id) pair so that concurrent or consecutive
// writes by different writers are totally ordered (Lemma 8).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "labels/labeling_system.hpp"

namespace sbft {

using ClientId = std::uint32_t;

struct Timestamp {
  Label label;
  ClientId writer_id = 0;

  friend bool operator==(const Timestamp&, const Timestamp&) = default;

  [[nodiscard]] std::strong_ordering CompareRepr(const Timestamp& other) const {
    if (auto c = label.CompareRepr(other.label); c != 0) return c;
    return writer_id <=> other.writer_id;
  }

  [[nodiscard]] std::string ToString() const;

  // Inline for the same reason as Label::Encode/Decode: one timestamp
  // per wire value, deep inside the hottest codec loops.
  void Encode(BufWriter& w) const {
    label.Encode(w);
    w.Put<ClientId>(writer_id);
  }
  static Timestamp Decode(BufReader& r) {
    Timestamp ts;
    ts.label = Label::Decode(r);
    ts.writer_id = r.Get<ClientId>();
    return ts;
  }
};

/// Precedence on timestamps: label order when the labels are comparable;
/// otherwise the writer identifier breaks the tie (Lemma 8: "the use of
/// identifiers and the bounded labeling scheme ensures that concurrent
/// write operations can be totally ordered"). Like the label relation
/// itself this is antisymmetric but not transitive.
[[nodiscard]] bool Precedes(const Timestamp& a, const Timestamp& b,
                            const LabelParams& params);

/// Deterministic pairwise selection order used when one of several
/// candidates must be chosen (e.g. two >= 2f+1 nodes in a union WTsG):
/// precedence first, then writer id, then representation order. Total
/// and deterministic; not transitive (inherited from the label order) —
/// callers take a max by a fixed left-to-right scan, which is
/// deterministic for a deterministic input order.
[[nodiscard]] bool SelectionLess(const Timestamp& a, const Timestamp& b,
                                 const LabelParams& params);

}  // namespace sbft
