// Twin of bad_thread_id.cpp: the shard index is data the caller passes
// in (e.g. the node id), not an OS artifact. Must pass clean.
#include <cstddef>

namespace sbft {

std::size_t ShardOf(std::size_t node_id, std::size_t shards) {
  return node_id % shards;
}

}  // namespace sbft
