// Node-level shared FLUSH rounds: amortize the FLUSH quorum round of
// the bounded-label discipline (Figure 3) across every register that
// joins a mux batch window.
//
// Soundness rests on the channel-sharing argument: all registers
// multiplexed between one client node and one server node share ONE
// FIFO channel (the paper's per-link FIFO assumption; the server-based
// variant of Bonomi et al. leans on the same per-link delivery proof).
// A NodeFlush probe therefore drains the channel for EVERY register at
// once — when a server echoes the probe, all traffic it was sent
// earlier on that channel, for any register, has been delivered. The
// per-register label discipline is untouched: each register still picks
// its own label from its own pool, still demands >= n-f acks with at
// most f pending servers, and still extends its safe set on late acks.
// The coordinator only owns the transport of the probe; the acks are
// distributed back element-wise through RegisterClient::DeliverFlushAck.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "net/message.hpp"
#include "sim/world.hpp"

namespace sbft {

/// Accumulates the flush requests of one batch window and closes the
/// window as ONE NodeFlush broadcast. Owned by MuxClient; lives entirely
/// on the client node's thread (no locking — the runtime serializes all
/// automaton activity per node).
class SharedFlushCoordinator {
 public:
  /// Join the open window: register `id` is about to start an operation
  /// under `label`/`scope` and needs its FLUSH round.
  void Request(RegisterId id, OpLabel label, OpScope scope);

  /// Close the window: broadcast one NodeFlush frame carrying every
  /// joined request to all servers. No-op while the window is empty.
  void CloseWindow(IEndpoint& out, std::span<const NodeId> servers);

  /// Drop the open window (client-side transient fault: the ops whose
  /// flushes were queued have been destroyed).
  void Clear() { items_.clear(); }

  [[nodiscard]] bool has_pending() const { return !items_.empty(); }
  [[nodiscard]] std::size_t pending_items() const { return items_.size(); }
  /// NodeFlush rounds emitted so far — the amortization observable:
  /// under a full window of W ops this grows W times slower than the
  /// op count (tests and benches assert on it).
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

 private:
  std::vector<FlushItem> items_;
  std::uint64_t rounds_ = 0;
};

/// Test/fuzz seam on MuxServer: mutate the echoed item vector of a
/// node-level flush ack before it leaves the server. A Byzantine server
/// that acks the node-level probe but equivocates the per-register
/// labels is the sharpest attack on the label-distribution path — the
/// clients' stale-ack filters must absorb it per register.
using FlushAckMutator = std::function<void(std::vector<FlushItem>&)>;

/// Deterministic label-equivocating mutator (seeded): rewrites each
/// item's label — and occasionally its scope — through a forked rng
/// stream, so replays of the same schedule equivocate identically.
[[nodiscard]] FlushAckMutator MakeFlushEquivocator(std::uint64_t seed);

}  // namespace sbft
