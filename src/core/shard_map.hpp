// Versioned consistent-hash shard map: 64-bit register ids -> server
// groups.
//
// One n > 5f server population is a single capacity unit — its quorum
// round cost is paid per operation no matter how many registers the mux
// hosts, so the deployment-level throughput ceiling is the group, not
// the protocol (EXPERIMENTS.md E13/E14). The paper's §I cloud-storage
// motivation assumes MANY register instances serving a large
// population; the shard map is the piece that spreads a 64-bit register
// namespace over G independent groups so capacity comes from adding
// groups, not from squeezing the round.
//
// Design constraints, in order:
//   * deterministic across platforms and runs — the ring is pure
//     FNV-1a/HashCombine arithmetic (common/hash.hpp), no std::hash,
//     no pointers, no iteration over unordered containers, so every
//     client that builds ShardMap::Initial(G) routes identically (the
//     lint deterministic zone covers this file);
//   * stable under growth — WithGroupAdded() inserts only the new
//     group's virtual nodes, so ~1/(G+1) of the key space moves and
//     everything else keeps its group (pinned by
//     tests/core/shard_map_test.cpp);
//   * versioned — every map carries an epoch; a bump means routing
//     changed and migrated keys are mid-handoff (the router layer,
//     runtime/sharded_cluster.hpp, anchors reads to the old group until
//     the new group's first complete write per key).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace sbft {

/// Index of one independent register group (its own server population,
/// quorum system, and transport namespace).
using GroupId = std::uint32_t;

class ShardMap {
 public:
  /// Virtual nodes per group. 64 keeps the max/mean key-share ratio of
  /// a small ring under ~1.4 while the ring stays a few KB (see
  /// ShardMapTest.VirtualNodesBalanceTheRing).
  static constexpr std::size_t kDefaultVnodesPerGroup = 64;

  /// Empty map (routes nothing); Initial() builds the real thing.
  ShardMap() = default;

  /// Epoch-0 map over groups 0..n_groups-1.
  [[nodiscard]] static ShardMap Initial(
      std::size_t n_groups,
      std::size_t vnodes_per_group = kDefaultVnodesPerGroup);

  /// The group serving `id` under this epoch: successor-on-the-ring of
  /// the key's hash point. O(log(G * vnodes)).
  [[nodiscard]] GroupId GroupOf(RegisterId id) const;

  /// The next epoch, with group `n_groups()` added to the ring. Only
  /// keys whose ring successor is now one of the new group's virtual
  /// nodes move — an expected 1/(G+1) of the key space.
  [[nodiscard]] ShardMap WithGroupAdded() const;

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t n_groups() const { return n_groups_; }
  [[nodiscard]] std::size_t vnodes_per_group() const { return vnodes_; }
  [[nodiscard]] bool empty() const { return ring_.empty(); }

 private:
  struct VNode {
    std::uint64_t point = 0;
    GroupId group = 0;
  };

  void InsertGroup(GroupId group);

  /// Sorted by (point, group): the tie order is part of the map's
  /// determinism contract (64-bit FNV collisions are astronomically
  /// unlikely, but a tie must still break the same way everywhere).
  std::vector<VNode> ring_;
  std::uint64_t epoch_ = 0;
  std::size_t n_groups_ = 0;
  std::size_t vnodes_ = kDefaultVnodesPerGroup;
};

}  // namespace sbft
