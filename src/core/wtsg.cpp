#include "core/wtsg.hpp"

#include <algorithm>
#include <sstream>

#include "common/bytes.hpp"

namespace sbft {

void Wtsg::AddWitness(std::size_t server, const VersionedValue& vv) {
  for (Node& node : nodes_) {
    if (node.vv == vv) {
      auto it = std::lower_bound(node.witnesses.begin(), node.witnesses.end(),
                                 server);
      if (it == node.witnesses.end() || *it != server) {
        node.witnesses.insert(it, server);
      }
      return;
    }
  }
  nodes_.push_back(Node{vv, {server}});
}

std::size_t Wtsg::EdgeCount() const {
  std::size_t edges = 0;
  for (const Node& a : nodes_) {
    for (const Node& b : nodes_) {
      if (&a != &b && Precedes(a.vv.ts, b.vv.ts, params_)) ++edges;
    }
  }
  return edges;
}

bool Wtsg::HasEdge(const VersionedValue& from, const VersionedValue& to) const {
  return Precedes(from.ts, to.ts, params_);
}

std::optional<VersionedValue> Wtsg::FindWitnessed(std::size_t threshold) const {
  // Select among qualifying vertices using the graph's edges. Because
  // the label order is not transitive, a naive "take the max by pairwise
  // comparison" scan can elect a stale vertex (an old timestamp may be
  // incomparable to — or even spuriously dominate — the newest one).
  // Instead the rule is:
  //   1. prefer vertices with NO dominator among the qualifiers — the
  //      newest write is never dominated, while every certified older
  //      write is dominated by its certified successor (whose next()
  //      folded in the older label);
  //   2. among those, prefer the vertex dominating the most qualifiers;
  //   3. deterministic tie-break: writer id, then representation order
  //      (ties are concurrent writes, where either choice is regular).
  std::vector<const Node*> qualifying;
  for (const Node& node : nodes_) {
    if (node.weight() >= threshold) qualifying.push_back(&node);
  }
  if (qualifying.empty()) return std::nullopt;

  const Node* best = nullptr;
  bool best_undominated = false;
  std::size_t best_dominates = 0;
  for (const Node* candidate : qualifying) {
    bool undominated = true;
    std::size_t dominates = 0;
    for (const Node* other : qualifying) {
      if (other == candidate) continue;
      if (Precedes(candidate->vv.ts, other->vv.ts, params_)) {
        undominated = false;
      }
      if (Precedes(other->vv.ts, candidate->vv.ts, params_)) ++dominates;
    }
    bool better;
    if (best == nullptr) {
      better = true;
    } else if (undominated != best_undominated) {
      better = undominated;
    } else if (dominates != best_dominates) {
      better = dominates > best_dominates;
    } else if (candidate->vv.ts.writer_id != best->vv.ts.writer_id) {
      better = candidate->vv.ts.writer_id > best->vv.ts.writer_id;
    } else if (auto c = candidate->vv.ts.CompareRepr(best->vv.ts); c != 0) {
      better = c > 0;
    } else {
      better = candidate->vv.value > best->vv.value;
    }
    if (better) {
      best = candidate;
      best_undominated = undominated;
      best_dominates = dominates;
    }
  }
  return best->vv;
}

std::string Wtsg::ToString() const {
  std::ostringstream out;
  out << "WTsG{";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i != 0) out << ", ";
    out << nodes_[i].vv.ts.ToString() << "#" << ToHex(nodes_[i].vv.value)
        << " w=" << nodes_[i].weight();
  }
  out << "}";
  return out.str();
}

}  // namespace sbft
