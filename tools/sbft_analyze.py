#!/usr/bin/env python3
"""Whole-program concurrency & lifetime analyzer for the sbft runtime.

Where tools/sbft_lint.py matches tokens line-by-line, this tool builds
a structural model of the whole program — scopes, classes, members,
functions, lambdas, lock sites, call edges — and runs interprocedural
checks over it:

  lock-order           Extracts the mutex acquisition graph (which lock
                       families are taken while which are held, across
                       translation units and through call chains), takes
                       the union with the DAG *declared* via the
                       ACQUIRED_BEFORE/ACQUIRED_AFTER annotations on the
                       lock_order anchors (src/common/
                       thread_annotations.hpp), and reports (a) any
                       cycle — a static lock-order inversion — and (b)
                       any observed edge between two anchored families
                       that the declared DAG does not admit.
  reactor-blocking     Seeds a "runs on a reactor thread" taint at every
                       lambda handed to Reactor::Add/Post/RemoveAndClose
                       or to the TcpBus delivery callback, propagates it
                       through the call graph, and flags blocking
                       primitives (unbounded CondVar::Wait, sleeps,
                       thread joins, blocking syscalls) reachable from a
                       handler. Calls through std::function values are
                       opaque by design: deferred callbacks run on their
                       executor's thread, not the poster's.
  frame-escape         Flags borrowed BytesView/span payloads that
                       escape their drain scope: stored into a member of
                       a long-lived object, pushed into a member
                       container, or captured by a lambda handed to a
                       deferral sink (Post/PostToNode/Push/PushBatch).
                       Wire-message structs (src/net/message.hpp) hold
                       views *by design* — the hazard this check targets
                       is persisting a view past the frame pool's reuse
                       point, which member stores and deferred captures
                       are exactly.
  wall-clock-flow      Flow-aware port of sbft_lint's wall-clock rule
                       for the deterministic zone: reading a clock is
                       fine when the value only feeds operator-facing
                       reporting (elapsed/budget arithmetic, count(),
                       comparisons); it is flagged when a tainted value
                       seeds state (passed to a non-reporting call,
                       assigned to a member). This replaces the
                       file-wide allowlist entry sbft_lint needed for
                       src/fuzz/campaign.cpp.
  unordered-iteration  Scope-aware port of sbft_lint's rule: iteration
                       over std::unordered_* is resolved against the
                       innermost declaration (locals shadow members), so
                       a local std::vector named like an unordered
                       member no longer trips the check.
  nondet-random        Token ports of the remaining deterministic-zone
  thread-id            rules, applied inside the structural walk so one
  address-as-value     tool can be the single gate for fixture snippets.

Escape hatches:
  * inline: `// sbft-analyze: allow(<check>)` on the line or the line
    directly above;
  * committed suppression file tools/sbft_analyze_suppress.txt with
    `<path-glob>:<check>[:<substring>]  # rationale` entries.

Usage:
  tools/sbft_analyze.py [--repo-root DIR] [paths...]     # default: src
  tools/sbft_analyze.py --list-checks
  tools/sbft_analyze.py --check-fixture tests/lint/fixtures/analyze/bad_lock_order.cpp
  tools/sbft_analyze.py --frontend {auto,internal,libclang}

Exit codes: 0 clean, 1 findings (or fixture expectation failed),
2 usage/environment error.

Frontend: the internal structural frontend is dependency-free and
authoritative — it is what CI gates on. When the libclang python
bindings are importable (CI pins libclang==18.1.1), `--frontend auto`
additionally cross-checks the unordered-iteration findings against a
real AST walk; `--frontend libclang` makes their absence an error.
"""

from __future__ import annotations

import argparse
import bisect
import fnmatch
import os
import re
import sys
from dataclasses import dataclass, field

# --- Repo layout (kept in sync with tools/sbft_lint.py) --------------------

DETERMINISTIC_ZONE = (
    "src/sim",
    "src/core",
    "src/labels",
    "src/baselines",
    "src/fuzz",
)
TRACE_ZONE = DETERMINISTIC_ZONE + ("src/spec", "src/net")
# Threaded surface: where the lock-order / reactor-blocking /
# frame-escape families apply.
CONCURRENCY_ZONE = ("src/runtime", "src/core", "src/net", "src/load")

SUPPRESS_FILE = os.path.join("tools", "sbft_analyze_suppress.txt")
ANNOTATION_HEADER = os.path.join("src", "common", "thread_annotations.hpp")

CHECKS = {
    "lock-order": "lock acquisition graph has an inversion cycle or an "
                  "edge the declared ACQUIRED_BEFORE DAG does not admit",
    "reactor-blocking": "blocking primitive reachable from a reactor "
                        "handler (stalls every connection on that loop)",
    "frame-escape": "borrowed frame payload (BytesView/span) escapes its "
                    "drain scope (member store or deferred capture)",
    "wall-clock-flow": "clock value flows into state in the deterministic "
                       "zone (reporting-only uses are fine)",
    "unordered-iteration": "iteration over an unordered container feeding "
                           "traces/verdicts/output (scope-resolved)",
    "nondet-random": "non-seeded randomness in the deterministic zone "
                     "(use sbft::Rng)",
    "thread-id": "thread identity in the deterministic zone",
    "address-as-value": "pointer value used as data in the deterministic "
                        "zone (ASLR breaks replay)",
}

ALLOW_RE = re.compile(
    r"//\s*sbft-analyze:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Lambdas handed to these (receiver-typed Reactor) run on reactor
# threads; TcpBus's constructor delivery callback does too.
REACTOR_SINKS = ("Add", "Post", "RemoveAndClose")
# Lambdas handed to these run later, on another thread, after the
# current drain/batch scope is gone.
DEFER_SINKS = ("Post", "PostToNode", "Push", "PushBatch")
# Call names treated as blocking when reached from a reactor handler.
# `Wait` is the exact unbounded CondVar::Wait — WaitFor is bounded and
# allowed. recv/send/accept4 are excluded: every runtime socket is
# nonblocking (documented limitation, not an oversight).
BLOCKING_CALLS = ("Wait", "sleep_for", "sleep_until", "usleep",
                  "nanosleep", "sleep", "join", "epoll_wait", "ppoll",
                  "poll", "select")
VIEW_TYPE_RE = re.compile(r"\bBytesView\b|\bstd::span\s*<|\bstring_view\b")
UNORDERED_TYPE_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
MUTEX_TYPE_RE = re.compile(r"(?<!std::)\bMutex\b")

# Deterministic-zone token ports (same patterns as sbft_lint.py).
TOKEN_CHECKS = [
    ("nondet-random", re.compile(
        r"std::random_device|\brandom_device\b"
        r"|(?<![:\w])s?rand\s*\(|(?<![:\w])random\s*\(")),
    ("thread-id", re.compile(r"this_thread::get_id|\bpthread_self\s*\(")),
    ("address-as-value", re.compile(
        r"reinterpret_cast<\s*(std::)?u?intptr_t\s*>"
        r"|std::hash<[^>\n]*\*\s*>")),
]

CLOCK_NOW_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock|Clock)\s*::\s*"
    r"now\s*\(")
# Receiver-position methods on a tainted value that only *report* time.
CLOCK_SINKS = ("count", "time_since_epoch", "duration_cast", "now",
               "min", "max", "abs", "wait_for", "wait_until", "WaitFor")

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "static_cast", "dynamic_cast", "reinterpret_cast",
    "const_cast", "alignof", "decltype", "assert", "defined", "move",
    "forward", "swap", "throw", "co_await", "co_return", "else", "do",
}
CONTROL_WORDS = KEYWORDS | {
    "break", "continue", "case", "goto", "using", "typedef", "friend",
    "template", "typename", "namespace", "public", "private",
    "protected", "operator", "try",
}


@dataclass
class Finding:
    path: str
    line: int
    check: str
    message: str
    snippet: str = ""

    def key(self):
        return (self.path, self.line, self.check, self.message)


# --- Preprocessing ---------------------------------------------------------


def blank_comments_and_strings(text: str) -> str:
    """Replace comment/string contents with spaces, preserving newlines
    and column positions (same contract as sbft_lint.py, plus digit-
    separator awareness: a ' preceded by an identifier character is a
    C++14 digit separator like 1'000'000, not a char-literal open —
    treating it as a quote desyncs every brace after it)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        prev = text[i - 1] if i > 0 else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == "'" and (prev.isalnum() or prev == "_"):
            out.append(c)  # digit separator
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def blank_preprocessor(blanked: str) -> str:
    """Blank #include/#define/... lines (keeping newlines) so directives
    never look like declarations or calls."""
    out_lines = []
    continued = False
    for line in blanked.split("\n"):
        if continued or line.lstrip().startswith("#"):
            continued = line.rstrip().endswith("\\")
            out_lines.append(" " * len(line))
        else:
            continued = False
            out_lines.append(line)
    return "\n".join(out_lines)


def inline_allows(text: str) -> dict:
    allows: dict = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        m = ALLOW_RE.search(line)
        if m:
            checks = {c.strip() for c in m.group(1).split(",")}
            allows.setdefault(lineno, set()).update(checks)
            allows.setdefault(lineno + 1, set()).update(checks)
    return allows


def strip_templates(s: str) -> str:
    """Iteratively remove <...> groups (for classifying headers)."""
    prev = None
    while prev != s:
        prev = s
        s = re.sub(r"<[^<>]*>", "", s)
    return s


def split_top_level(s: str, sep: str = ",") -> list:
    """Split on sep at zero <>/()/[]/{} depth."""
    parts, depth, cur = [], 0, []
    for ch in s:
        if ch in "<([{":
            depth += 1
        elif ch in ">)]}":
            depth = max(0, depth - 1)
        if ch == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    parts.append("".join(cur))
    return [p.strip() for p in parts if p.strip()]


def balanced_parens(text: str, open_pos: int) -> tuple:
    """Return (content, close_pos) for the paren group opening at
    open_pos, or ("", open_pos) if unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_pos + 1:i], i
    return "", open_pos


# --- Scope model -----------------------------------------------------------


@dataclass
class Scope:
    kind: str            # root | namespace | class | function | lambda | block
    header: str
    header_start: int    # absolute offset where the header text begins
    start: int           # offset just after '{' (root: 0)
    end: int             # offset of '}' (root: len(text))
    parent: "Scope" = None
    children: list = field(default_factory=list)
    name: str = None     # namespace/class/function simple name
    qname: str = None    # fully qualified (anon namespaces skipped)


LAMBDA_TAIL_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\s*)?(?:constexpr\s*)?"
    r"(?:noexcept\s*(?:\([^()]*\))?\s*)?(?:->\s*[\w:<>,\s&*]+?)?\s*$")
CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct|union)\s+(?:SBFT_\w+\s*\([^)]*\)\s*|"
    r"CAPABILITY\s*\([^)]*\)\s*|SCOPED_CAPABILITY\s+|alignas\s*\([^)]*\)\s*)*"
    r"([A-Za-z_]\w*(?:::\w+)*)")
NAMESPACE_RE = re.compile(r"\bnamespace(?:\s+([A-Za-z_][\w:]*))?\s*$")
FUNC_NAME_RE = re.compile(r"([A-Za-z_~][\w]*(?:::~?\w+)*)\s*\(")


def classify_scope(header: str) -> tuple:
    """Return (kind, name) for a brace scope from its header text."""
    h = header.strip()
    m = NAMESPACE_RE.search(h)
    if m and "=" not in h:
        return "namespace", m.group(1)
    if LAMBDA_TAIL_RE.search(h):
        return "lambda", None
    stripped = strip_templates(h)
    if re.search(r"\benum\b", stripped):
        return "block", None
    cm = CLASS_HEAD_RE.search(stripped)
    if cm and "(" not in stripped[:cm.start()] and "=" not in stripped:
        # `class Foo final : public Bar` — name is the first identifier.
        return "class", cm.group(1).split("::")[-1]
    if re.search(r"=\s*$", h):
        return "block", None     # brace initializer
    for fm in FUNC_NAME_RE.finditer(stripped):
        name = fm.group(1)
        base = name.split("::")[-1].lstrip("~")
        if base in CONTROL_WORDS or name.split("::")[0] in CONTROL_WORDS:
            continue
        return "function", name
    return "block", None


def build_scopes(text: str) -> Scope:
    """Brace-structure scan over blanked text. Paren depth is saved and
    restored across scope push/pop so a lambda body inside a call's
    argument list does not desynchronize the statement-break tracking."""
    root = Scope("root", "", 0, 0, len(text))
    stack = [root]
    saved = []
    paren = 0
    last_break = 0
    for i, c in enumerate(text):
        if c == "(":
            paren += 1
        elif c == ")":
            paren = max(0, paren - 1)
        elif c == ";" and paren == 0:
            last_break = i + 1
        elif c == "{":
            header = text[last_break:i]
            kind, name = classify_scope(header)
            sc = Scope(kind, header, last_break, i + 1, len(text),
                       parent=stack[-1], name=name)
            stack[-1].children.append(sc)
            stack.append(sc)
            saved.append((paren, last_break))
            paren = 0
            last_break = i + 1
        elif c == "}":
            if len(stack) > 1:
                stack[-1].end = i
                stack.pop()
                paren, _ = saved.pop()
                last_break = i + 1
    return root


def assign_qnames(root: Scope):
    """Qualified names from the namespace/class nesting; anonymous
    namespaces contribute nothing to the path (matching how the
    annotation comments spell families)."""

    def walk(scope: Scope, path: tuple):
        for child in scope.children:
            child_path = path
            if child.kind == "namespace":
                if child.name:
                    child_path = path + tuple(child.name.split("::"))
                child.qname = "::".join(child_path) or None
            elif child.kind == "class":
                child_path = path + (child.name,)
                child.qname = "::".join(child_path)
            elif child.kind == "function":
                if "::" in child.name:
                    child.qname = "::".join(path + tuple(child.name.split("::")))
                else:
                    child.qname = "::".join(path + (child.name,))
                child_path = path
            walk(child, child_path)

    walk(root, ())

# --- Symbol model ----------------------------------------------------------


@dataclass
class Member:
    name: str
    type: str
    line: int
    guarded_by: str = None
    acquired_before: tuple = ()
    acquired_after: tuple = ()


@dataclass
class ClassInfo:
    qname: str
    path: str
    members: dict = field(default_factory=dict)  # name -> Member


@dataclass
class LockEvent:
    pos: int
    line: int
    expr: str
    scope_end: int
    family: str = None   # resolved later


@dataclass
class CallEvent:
    pos: int
    line: int
    receiver: str        # "a.b->" style chain text, may be ""
    name: str
    args: str


@dataclass
class AssignEvent:
    pos: int
    line: int
    lhs: str             # chain text
    op: str              # "=" or the container-insert method name
    rhs: str


@dataclass
class FunctionInfo:
    qname: str
    path: str
    line: int
    owner_class: str = None      # class qname or None
    is_lambda: bool = False
    params: dict = field(default_factory=dict)      # name -> type
    locals: list = field(default_factory=list)      # (pos, name, type)
    requires: list = field(default_factory=list)    # raw capability exprs
    lock_events: list = field(default_factory=list)
    call_events: list = field(default_factory=list)
    assign_events: list = field(default_factory=list)
    lambdas: list = field(default_factory=list)     # child FunctionInfo
    parent: "FunctionInfo" = None                   # for lambdas
    captures: tuple = ()        # (default, frozenset(by_value), frozenset(by_ref))
    sink: tuple = None          # (receiver_chain, call_name) the lambda is an arg of
    body_text: str = ""
    body_base: int = 0
    scope: Scope = None


class Program:
    def __init__(self):
        self.classes = {}        # qname -> ClassInfo
        self.functions = {}      # qname -> [FunctionInfo]
        self.all_functions = []  # every FunctionInfo incl. lambdas
        self.globals = {}        # simple name -> (qname, type)
        self.anchors = {}        # anchor simple name (kFoo) -> family qname
        self.pending_requires = {}   # (class_qname, method) -> [exprs]
        self.files = {}          # rel path -> (raw, blanked, line_starts)

    def add_function(self, fn: FunctionInfo):
        self.all_functions.append(fn)
        if not fn.is_lambda:
            self.functions.setdefault(fn.qname, []).append(fn)


ANNOT_RE = re.compile(
    r"\b(GUARDED_BY|PT_GUARDED_BY|ACQUIRED_BEFORE|ACQUIRED_AFTER|REQUIRES"
    r"|REQUIRES_SHARED|EXCLUDES|ACQUIRE|ACQUIRE_SHARED|RELEASE"
    r"|RELEASE_SHARED|TRY_ACQUIRE|RETURN_CAPABILITY|ASSERT_CAPABILITY)"
    r"\s*\(")
LOCK_RE = re.compile(
    r"\b(?:const\s+)?(?:MutexLock|std::scoped_lock(?:<[^>]*>)?"
    r"|std::lock_guard(?:<[^>]*>)?|std::unique_lock(?:<[^>]*>)?)\s+"
    r"\w+\s*[({]")
CALL_RE = re.compile(
    r"(?<![\w.>:])((?:\w+(?:\s*(?:\.|->|::)\s*))*)((?:~)?\w+)\s*\(")
DECL_RE = re.compile(
    r"^(?:const\s+|constexpr\s+|static\s+|mutable\s+|inline\s+)*"
    r"((?:::)?[A-Za-z_]\w*(?:::\w+)*(?:\s*<[^;=]*>)?(?:\s+const)?"
    r"(?:\s*[*&]+\s*|\s+))"
    r"([A-Za-z_]\w*)\s*(=|\(|\{|;|$)")
MAKE_RE = re.compile(r"\bmake_(?:unique|shared)\s*<\s*([\w:]+)")
ANCHOR_RE = re.compile(
    r"inline\s+Mutex\s+(k\w+)\s*;\s*//\s*anchor-for:\s*([\w:]+)")
INSERT_METHODS = ("push_back", "emplace_back", "push", "push_front",
                  "insert", "emplace", "assign")


def lineno_of(line_starts, pos) -> int:
    return bisect.bisect_right(line_starts, pos)


def extract_annotations(stmt: str):
    """Return (stripped_statement, [(annot, content)])."""
    found = []
    out = []
    i = 0
    while i < len(stmt):
        m = ANNOT_RE.search(stmt, i)
        if not m:
            out.append(stmt[i:])
            break
        out.append(stmt[i:m.start()])
        content, close = balanced_parens(stmt, m.end() - 1)
        found.append((m.group(1), content))
        i = close + 1
    return "".join(out), found


def split_statements(text: str, base: int):
    """Yield (offset, stmt) split at ';'/'{'/'}' outside parens."""
    depth = 0
    start = 0
    for i, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth = max(0, depth - 1)
        elif ch in ";{}" and depth == 0:
            stmt = text[start:i]
            if stmt.strip():
                yield base + start, stmt
            start = i + 1
    stmt = text[start:]
    if stmt.strip():
        yield base + start, stmt


def masked_region(text: str, scope: Scope, keep_lambda_headers=True) -> str:
    """Text of [scope.start, scope.end) with nested lambda/class/function
    subtrees blanked (block scopes kept). Lambda capture lists stay
    visible so the enclosing call's argument structure survives."""
    chars = list(text[scope.start:scope.end])

    def blank(child: Scope):
        lo = child.start if keep_lambda_headers and child.kind == "lambda" \
            else child.header_start
        lo = max(lo, scope.start)
        for k in range(lo - scope.start, child.end - scope.start):
            if chars[k] != "\n":
                chars[k] = " "

    def walk(s: Scope):
        for child in s.children:
            if child.kind in ("lambda", "class", "function", "namespace"):
                blank(child)
            else:
                walk(child)

    walk(scope)
    return "".join(chars)


def innermost_block_end(scope: Scope, pos: int) -> int:
    """End offset of the innermost block (or the scope itself)
    containing pos, not descending into lambda/class children."""
    end = scope.end
    cur = scope
    progressed = True
    while progressed:
        progressed = False
        for child in cur.children:
            if child.kind == "block" and child.start <= pos < child.end:
                cur = child
                end = child.end
                progressed = True
                break
    return end


def parse_params(header: str, name: str) -> dict:
    params = {}
    m = re.search(re.escape(name) + r"\s*\(", header)
    if not m:
        return params
    content, _ = balanced_parens(header, m.end() - 1)
    for part in split_top_level(content):
        part = split_top_level(part, "=")[0] if "=" in part else part
        part = part.strip()
        pm = re.match(r"^(.*?)([A-Za-z_]\w*)$", part, re.S)
        if pm and pm.group(1).strip():
            params[pm.group(2)] = pm.group(1).strip()
    return params


def parse_captures(header: str):
    m = re.search(r"\[([^\[\]]*)\]\s*(?:\([^()]*\))?\s*(?:mutable\s*)?"
                  r"(?:constexpr\s*)?(?:noexcept\s*(?:\([^()]*\))?\s*)?"
                  r"(?:->\s*[\w:<>,\s&*]+?)?\s*$", header)
    if not m:
        return ("", frozenset(), frozenset()), None
    by_value, by_ref, default = set(), set(), ""
    for item in split_top_level(m.group(1)):
        if item == "=":
            default = "="
        elif item == "&":
            default = "&"
        elif item == "this" or item == "*this":
            pass
        elif item.startswith("&"):
            nm = re.match(r"&\s*(\w+)", item)
            if nm:
                by_ref.add(nm.group(1))
        else:
            nm = re.match(r"(\w+)", item)
            if nm:
                by_value.add(nm.group(1))
    return (default, frozenset(by_value), frozenset(by_ref)), m.start()


def lambda_sink(parent_masked: str, parent_base: int, bracket_abs: int):
    """The call whose still-open '(' encloses the lambda's position:
    (receiver_chain, name) or None if the lambda is not a call argument."""
    upto = parent_masked[:max(0, bracket_abs - parent_base)]
    stack = []
    for i, ch in enumerate(upto):
        if ch == "(":
            stack.append(i)
        elif ch == ")":
            if stack:
                stack.pop()
    if not stack:
        return None
    head = upto[:stack[-1]]
    m = re.search(r"((?:[\w.\->:]|<[^<>]*>)+)\s*$", head)
    if not m:
        return None
    chain = re.sub(r"<[^<>]*>", "", m.group(1))
    parts = re.split(r"->|\.|::", chain)
    parts = [p for p in parts if p]
    if not parts:
        return None
    name = parts[-1]
    receiver = ".".join(parts[:-1])
    tmpl = re.search(r"<\s*([\w:]+)", m.group(1))
    return (receiver, name, tmpl.group(1) if tmpl else None)


# --- Per-file extraction ---------------------------------------------------


def parse_class(program: Program, scope: Scope, text: str, path: str,
                line_starts):
    info = program.classes.setdefault(scope.qname,
                                      ClassInfo(scope.qname, path))
    direct = []
    chars = list(text[scope.start:scope.end])
    for child in scope.children:
        for k in range(child.header_start - scope.start
                       if child.kind in ("function", "class", "namespace")
                       else child.start - scope.start,
                       child.end - scope.start):
            if 0 <= k < len(chars) and chars[k] != "\n":
                chars[k] = ";" if chars[k] == "}" else " "
    direct = "".join(chars)
    for off, stmt in split_statements(direct, scope.start):
        stripped, annots = extract_annotations(stmt)
        stripped = re.sub(r"^\s*(?:public|private|protected)\s*:", " ",
                          stripped)
        first = re.match(r"\s*(\w+)", stripped)
        if first and first.group(1) in ("using", "typedef", "friend",
                                        "static_assert", "template", "enum"):
            continue
        if "(" in stripped:
            # Method declaration: harvest REQUIRES for later merging
            # into the out-of-line definition.
            reqs = [c for (a, c) in annots
                    if a in ("REQUIRES", "REQUIRES_SHARED")]
            if reqs:
                nm = FUNC_NAME_RE.search(strip_templates(stripped))
                if nm:
                    key = (scope.qname, nm.group(1).split("::")[-1])
                    program.pending_requires.setdefault(key, [])
                    for r in reqs:
                        program.pending_requires[key].extend(
                            split_top_level(r))
            continue
        body = split_top_level(stripped, "=")[0] if "=" in stripped \
            else stripped
        body = re.sub(r"\[[^\[\]]*\]\s*$", "", body.strip())
        nm = re.match(r"^(.*?)([A-Za-z_]\w*)$", body, re.S)
        if not nm or not nm.group(1).strip():
            continue
        name, typ = nm.group(2), " ".join(nm.group(1).split())
        if name in CONTROL_WORDS or typ.split()[-1:] == ["return"]:
            continue
        member = Member(name, typ, lineno_of(line_starts, off))
        for annot, content in annots:
            if annot in ("GUARDED_BY", "PT_GUARDED_BY"):
                member.guarded_by = content.strip()
            elif annot == "ACQUIRED_BEFORE":
                member.acquired_before = tuple(split_top_level(content))
            elif annot == "ACQUIRED_AFTER":
                member.acquired_after = tuple(split_top_level(content))
        info.members[name] = member


def parse_namespace_vars(program: Program, scope: Scope, text: str,
                         path: str, line_starts):
    chars = list(text[scope.start:scope.end])
    for child in scope.children:
        for k in range(child.header_start - scope.start,
                       child.end - scope.start):
            if 0 <= k < len(chars) and chars[k] != "\n":
                chars[k] = ";" if chars[k] == "}" else " "
    direct = "".join(chars)
    for off, stmt in split_statements(direct, scope.start):
        stripped, _annots = extract_annotations(stmt)
        if "(" in stripped:
            continue
        first = re.match(r"\s*(\w+)", stripped)
        if first and first.group(1) in ("using", "typedef", "template",
                                        "enum", "extern", "static_assert"):
            continue
        body = split_top_level(stripped, "=")[0] if "=" in stripped \
            else stripped
        body = re.sub(r"\[[^\[\]]*\]\s*$", "", body.strip())
        nm = re.match(r"^(.*?)([A-Za-z_]\w*)$", body, re.S)
        if not nm or not nm.group(1).strip():
            continue
        name, typ = nm.group(2), " ".join(nm.group(1).split())
        if name in CONTROL_WORDS:
            continue
        qual = (scope.qname + "::" + name) if scope.qname else name
        program.globals.setdefault(name, (qual, typ))


def extract_function(program: Program, scope: Scope, text: str, path: str,
                     line_starts, parent_fn=None) -> FunctionInfo:
    header = text[scope.header_start:scope.start - 1]
    fn = FunctionInfo(
        qname=scope.qname or ((parent_fn.qname if parent_fn else "?")
                              + "::$lambda"
                              + str(lineno_of(line_starts, scope.start))),
        path=path,
        line=lineno_of(line_starts, scope.start),
        is_lambda=(scope.kind == "lambda"),
        parent=parent_fn,
        scope=scope,
    )
    # Owner class: lexical parent class scope, or the qualified-name
    # prefix for out-of-class definitions.
    p = scope.parent
    while p is not None and p.kind != "class":
        if p.kind in ("function", "lambda") and parent_fn is not None:
            fn.owner_class = parent_fn.owner_class
            break
        p = p.parent
    if p is not None and p.kind == "class":
        fn.owner_class = p.qname
    if not fn.is_lambda and fn.owner_class is None and scope.name \
            and "::" in scope.name:
        fn.owner_class = fn.qname.rsplit("::", 1)[0]

    if fn.is_lambda:
        captures, bracket_off = parse_captures(header)
        fn.captures = captures
        m = re.search(r"\[([^\[\]]*)\]\s*(\(([^()]*)\))?", header[bracket_off:]
                      if bracket_off is not None else header)
        if m and m.group(3) is not None:
            for part in split_top_level(m.group(3)):
                pm = re.match(r"^(.*?)([A-Za-z_]\w*)$", part.strip(), re.S)
                if pm and pm.group(1).strip():
                    fn.params[pm.group(2)] = pm.group(1).strip()
    else:
        name = scope.name.split("::")[-1] if scope.name else ""
        fn.params = parse_params(header, scope.name or name)
        if not fn.params and name:
            fn.params = parse_params(header, name)

    # REQUIRES on the definition header itself.
    for annot, content in extract_annotations(header)[1]:
        if annot in ("REQUIRES", "REQUIRES_SHARED"):
            fn.requires.extend(split_top_level(content))

    body = strip_subscripts(masked_region(text, scope))
    fn.body_text = body
    fn.body_base = scope.start

    # Range-for variables: typed as the element of the iterated chain
    # (resolved lazily — "$elem:" marker) so `MutexLock l(loop.mutex)`
    # over `for (auto& loop : loops_)` still lands in a family.
    for m in re.finditer(
            r"for\s*\(([^;()]*?)([A-Za-z_]\w*)\s*:\s*([^);]+)\)", body):
        fn.locals.append((scope.start + m.start(2), m.group(2),
                          "$elem:" + m.group(3).strip()))

    # Locals (declarations with positions, for shadow-aware lookup).
    for off, stmt in split_statements(body, 0):
        s = stmt.strip()
        dm = DECL_RE.match(s)
        if dm and dm.group(1).split()[0] not in CONTROL_WORDS:
            typ = dm.group(1).strip()
            if typ in ("return", "delete"):
                continue
            if typ.startswith("auto"):
                mk = MAKE_RE.search(stmt)
                typ = (mk.group(1) + "*") if mk else "auto"
            fn.locals.append((scope.start + off + stmt.find(dm.group(2)),
                              dm.group(2), typ))
        # Assignments / container inserts (frame-escape, wall-clock-flow).
        am = re.match(r"^([\w.\->\[\]]+?)\s*=\s*([^=].*)$", s, re.S)
        if am and not dm:
            fn.assign_events.append(AssignEvent(
                scope.start + off, lineno_of(line_starts, scope.start + off),
                am.group(1).strip(), "=", am.group(2).strip()))

    for m in re.finditer(
            r"([\w]+(?:\s*(?:\.|->)\s*[\w]+)*)\s*\.\s*(" +
            "|".join(INSERT_METHODS) + r")\s*\(", body):
        pos = scope.start + m.start()
        args, _ = balanced_parens(body, m.end() - 1)
        fn.assign_events.append(AssignEvent(
            pos, lineno_of(line_starts, pos), m.group(1), m.group(2),
            args.strip()))

    # Lock events.
    for m in LOCK_RE.finditer(body):
        open_pos = m.end() - 1
        if body[open_pos] == "(":
            content, _ = balanced_parens(body, open_pos)
        else:
            close = body.find("}", open_pos)
            content = body[open_pos + 1:close] if close > 0 else ""
        pos = scope.start + m.start()
        for expr in split_top_level(content):
            fn.lock_events.append(LockEvent(
                pos, lineno_of(line_starts, pos), expr.strip(),
                innermost_block_end(scope, pos)))

    # Call events.
    for m in CALL_RE.finditer(body):
        name = m.group(2)
        if name in KEYWORDS or name in CONTROL_WORDS:
            continue
        pos = scope.start + m.start()
        args, _ = balanced_parens(body, m.end() - 1)
        fn.call_events.append(CallEvent(
            pos, lineno_of(line_starts, pos),
            re.sub(r"\s+", "", m.group(1)), name, args))

    # make_unique<T>/make_shared<T> construct T: surface the ctor call
    # (CALL_RE cannot see through the template-argument syntax, and the
    # ShardedCluster-ctor inversion is exactly a lock held across a
    # make_unique'd constructor).
    for m in re.finditer(r"\bmake_(?:unique|shared)\s*<\s*([\w:]+)", body):
        pos = scope.start + m.start()
        cls = m.group(1)
        fn.call_events.append(CallEvent(
            pos, lineno_of(line_starts, pos), cls + "::",
            cls.split("::")[-1], ""))

    # Child lambdas (top-most ones, wherever they nest in blocks).
    def find_lambdas(s: Scope):
        for child in s.children:
            if child.kind == "lambda":
                sub = extract_function(program, child, text, path,
                                       line_starts, parent_fn=fn)
                _caps, bracket_off = parse_captures(
                    text[child.header_start:child.start - 1])
                if bracket_off is not None:
                    sub.sink = lambda_sink(body, scope.start,
                                           child.header_start + bracket_off)
                fn.lambdas.append(sub)
            elif child.kind == "block":
                find_lambdas(child)

    find_lambdas(scope)
    program.add_function(fn)
    return fn


def parse_file(program: Program, repo_root: str, path: str):
    rel = os.path.relpath(os.path.abspath(path), repo_root).replace(
        os.sep, "/")
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        print(f"sbft_analyze: cannot read {path}: {e}", file=sys.stderr)
        return
    blanked = blank_preprocessor(blank_comments_and_strings(raw))
    line_starts = [0]
    for i, ch in enumerate(blanked):
        if ch == "\n":
            line_starts.append(i + 1)
    program.files[rel] = (raw, blanked, line_starts)

    for m in ANCHOR_RE.finditer(raw):
        program.anchors[m.group(1)] = m.group(2)

    root = build_scopes(blanked)
    assign_qnames(root)

    def walk(scope: Scope):
        for child in scope.children:
            if child.kind == "namespace":
                parse_namespace_vars(program, child, blanked, rel,
                                     line_starts)
                walk(child)
            elif child.kind == "class":
                parse_class(program, child, blanked, rel, line_starts)
                walk(child)
            elif child.kind == "function":
                extract_function(program, child, blanked, rel, line_starts)
            # blocks/lambdas at namespace scope: nothing to do
    parse_namespace_vars(program, root, blanked, rel, line_starts)
    walk(root)


def strip_subscripts(body: str) -> str:
    """Blank [...] groups (subscripts, capture lists, attributes) so
    receiver chains like mailboxes_[id]->Push parse as chains. Balanced
    parens inside the group are blanked with it, keeping paren depth
    counters consistent."""
    chars = list(body)
    stack = []
    for i, ch in enumerate(body):
        if ch == "[":
            stack.append(i)
        elif ch == "]" and stack:
            lo = stack.pop()
            if not stack:
                for k in range(lo, i + 1):
                    if chars[k] != "\n":
                        chars[k] = " "
    return "".join(chars)


# --- Whole-program resolution ----------------------------------------------

TYPE_WRAPPERS = {
    "vector", "deque", "list", "queue", "stack", "array", "unique_ptr",
    "shared_ptr", "weak_ptr", "optional", "map", "multimap", "set",
    "multiset", "unordered_map", "unordered_set", "pair", "tuple",
    "atomic", "reference_wrapper", "span",
}
CHAIN_SPLIT_RE = re.compile(r"\s*(?:->|\.|::)\s*")


class Resolver:
    def __init__(self, program: Program):
        self.program = program
        self._acquires = {}

    # -- names --------------------------------------------------------

    def resolve_class(self, name: str, context: str):
        classes = self.program.classes
        name = name.strip()
        if not name:
            return None
        if name in classes:
            return name
        cands = sorted(q for q in classes
                       if q == name or q.endswith("::" + name))
        if not cands:
            return None
        if len(cands) == 1:
            return cands[0]
        context = context or ""

        def score(q):
            i = 0
            while i < min(len(q), len(context)) and q[i] == context[i]:
                i += 1
            return (i, -len(q), q)

        return max(cands, key=score)

    def type_to_class(self, t: str, context: str):
        if t is None:
            return None
        if t.startswith("$elem:"):
            return t[len("$elem:"):] if t[len("$elem:"):] in \
                self.program.classes else None
        t = re.sub(r"\b(const|mutable|inline|static|constexpr|typename"
                   r"|struct|class|volatile)\b", " ", t)
        t = t.replace("*", " ").replace("&", " ").strip()
        m = re.match(r"^(?:std::)?(\w+)\s*<(.*)>$", t, re.S)
        while m and m.group(1) in TYPE_WRAPPERS:
            args = split_top_level(m.group(2))
            if not args:
                return None
            t = args[-1].replace("*", " ").replace("&", " ").strip()
            m = re.match(r"^(?:std::)?(\w+)\s*<(.*)>$", t, re.S)
        t = re.sub(r"<.*>$", "", t).strip()
        if " " in t:
            t = t.split()[-1]
        return self.resolve_class(t, context) if t else None

    def lookup_name(self, fn: FunctionInfo, name: str, pos=None):
        """('type', type_str) | ('class', qname) | None. Locals are
        position-aware in the function the use appears in (shadow
        semantics); lambda lookups fall through to the parent chain."""
        f, p = fn, pos
        while f is not None:
            best = None
            for (dpos, n, t) in f.locals:
                if n == name and (p is None or dpos <= p):
                    best = t
            if best is not None:
                if best.startswith("$elem:"):
                    cls = self.resolve_chain_class(f, best[len("$elem:"):],
                                                   None)
                    return ("type", cls) if cls else None
                return ("type", best)
            if name in f.params:
                return ("type", f.params[name])
            if not f.is_lambda:
                break
            f, p = f.parent, None
        oc = fn.owner_class
        while oc:
            ci = self.program.classes.get(oc)
            if ci and name in ci.members:
                return ("type", ci.members[name].type)
            nxt = oc.rsplit("::", 1)[0] if "::" in oc else None
            oc = nxt if nxt in self.program.classes else None
        if name in self.program.globals:
            return ("global", self.program.globals[name])
        cq = self.resolve_class(name, fn.qname)
        if cq:
            return ("class", cq)
        return None

    def resolve_chain_type(self, fn: FunctionInfo, chain: str, pos=None):
        """Final declared type string of a member-access chain, or None."""
        comps = [c for c in CHAIN_SPLIT_RE.split(chain.strip()) if c]
        if not comps:
            return None
        cur_type = None
        cur_class = None
        for i, comp in enumerate(comps):
            if "(" in comp or ")" in comp:
                return None
            if i == 0:
                if comp == "this":
                    cur_class = fn.owner_class
                    cur_type = cur_class
                    continue
                r = self.lookup_name(fn, comp, pos)
                if r is None:
                    return None
                if r[0] == "class":
                    cur_class, cur_type = r[1], r[1]
                else:
                    cur_type = r[1][1] if r[0] == "global" else r[1]
                    cur_class = self.type_to_class(cur_type, fn.qname)
            else:
                ci = self.program.classes.get(cur_class) if cur_class else None
                if not ci or comp not in ci.members:
                    return None
                cur_type = ci.members[comp].type
                cur_class = self.type_to_class(cur_type, cur_class)
        return cur_type

    def resolve_chain_class(self, fn: FunctionInfo, chain: str, pos=None):
        t = self.resolve_chain_type(fn, chain, pos)
        if t is None:
            return None
        if t in self.program.classes:
            return t
        return self.type_to_class(t, fn.qname)

    # -- lock families ------------------------------------------------

    def lock_family(self, fn: FunctionInfo, expr: str, pos=None):
        """Canonical family for a mutex expression: ClassQName::member
        for members, the anchor's mapped family for lock_order::kFoo,
        namespace-qualified name for globals, '<fn>::<name>@local' for
        locals. None when unresolvable (the event is then ignored —
        resolution failure degrades to fewer edges, never false ones)."""
        expr = expr.strip().lstrip("&*").strip()
        comps = [c for c in CHAIN_SPLIT_RE.split(expr) if c]
        if not comps or any("(" in c for c in comps):
            return None
        if comps[-1] in self.program.anchors:
            return self.program.anchors[comps[-1]]
        if len(comps) == 1:
            name = comps[0]
            f, p = fn, pos
            while f is not None:
                for (dpos, n, t) in f.locals:
                    if n == name and not t.startswith("$elem:") \
                            and MUTEX_TYPE_RE.search(t):
                        return f.qname + "::" + name + "@local"
                if name in f.params:
                    return None  # caller's mutex by reference: no family
                if not f.is_lambda:
                    break
                f, p = f.parent, None
            oc = fn.owner_class
            while oc:
                ci = self.program.classes.get(oc)
                if ci and name in ci.members:
                    if MUTEX_TYPE_RE.search(ci.members[name].type):
                        return oc + "::" + name
                    return None
                nxt = oc.rsplit("::", 1)[0] if "::" in oc else None
                oc = nxt if nxt in self.program.classes else None
            if name in self.program.globals:
                qual, typ = self.program.globals[name]
                return qual if MUTEX_TYPE_RE.search(typ) else None
            return None
        owner = self.resolve_chain_class(
            fn, "::".join(comps[:-1]) if "::" in expr and "." not in expr
            and "->" not in expr else ".".join(comps[:-1]), pos)
        if owner is None:
            return None
        member = self.program.classes[owner].members.get(comps[-1])
        if member is None or not MUTEX_TYPE_RE.search(member.type):
            return None
        return owner + "::" + comps[-1]

    def requires_family(self, fn: FunctionInfo, expr: str):
        return self.lock_family(fn, expr, None)

    # -- call graph ---------------------------------------------------

    def callees(self, fn: FunctionInfo, call: CallEvent):
        name = call.name
        fns = self.program.functions
        if call.receiver:
            cls = self.resolve_chain_class(fn, call.receiver, call.pos)
            if cls is None:
                return []
            got = fns.get(cls + "::" + name)
            return got or []
        if fn.owner_class:
            got = fns.get(fn.owner_class + "::" + name)
            if got:
                return got
        q = fn.qname
        while "::" in q:
            q = q.rsplit("::", 1)[0]
            got = fns.get(q + "::" + name)
            if got:
                return got
        got = fns.get(name)
        if got:
            return got
        cq = self.resolve_class(name, fn.qname)
        if cq:  # direct constructor call `Widget w(...)`
            return fns.get(cq + "::" + name, [])
        return []

    def acquires(self, fn: FunctionInfo):
        """Transitive set of lock families a call to fn may acquire
        (REQUIRES-held families excluded: the caller already holds
        them). Memoized; recursion yields the partial set."""
        key = id(fn)
        if key in self._acquires:
            return self._acquires[key]
        self._acquires[key] = set()
        out = set()
        for ev in fn.lock_events:
            fam = self.lock_family(fn, ev.expr, ev.pos)
            if fam:
                out.add(fam)
        for c in fn.call_events:
            for callee in self.callees(fn, c):
                out |= self.acquires(callee)
        self._acquires[key] = out
        return out


# --- Checks ----------------------------------------------------------------

# Zone each check's findings apply to in tree mode (None = whole tree).
ZONE_OF_CHECK = {
    "frame-escape": CONCURRENCY_ZONE,
    "wall-clock-flow": DETERMINISTIC_ZONE,
    "nondet-random": DETERMINISTIC_ZONE,
    "thread-id": DETERMINISTIC_ZONE,
    "address-as-value": DETERMINISTIC_ZONE,
    "unordered-iteration": TRACE_ZONE,
}


def in_zone(rel: str, zones) -> bool:
    rel = rel.replace(os.sep, "/")
    return any(rel == z or rel.startswith(z + "/") for z in zones)


def merge_requires(program: Program):
    """Attach REQUIRES harvested from in-class declarations to the
    matching out-of-line definitions."""
    for fn in program.all_functions:
        if fn.is_lambda or not fn.owner_class:
            continue
        key = (fn.owner_class, fn.qname.split("::")[-1])
        for expr in program.pending_requires.get(key, ()):
            if expr not in fn.requires:
                fn.requires.append(expr)


def member_of_owner(resolver: Resolver, fn: FunctionInfo, name: str) -> bool:
    oc = fn.owner_class
    while oc:
        ci = resolver.program.classes.get(oc)
        if ci and name in ci.members:
            return True
        nxt = oc.rsplit("::", 1)[0] if "::" in oc else None
        oc = nxt if nxt in resolver.program.classes else None
    return False


def binds_to_local(fn: FunctionInfo, name: str) -> bool:
    f = fn
    while f is not None:
        if name in f.params or any(n == name for (_p, n, _t) in f.locals):
            return True
        if not f.is_lambda:
            return False
        f = f.parent
    return False


# -- lock-order -------------------------------------------------------------


def lock_order_edges(program: Program, resolver: Resolver) -> dict:
    """(held_family, acquired_family) -> (path, line, why) witnesses."""
    observed = {}
    for fn in program.all_functions:
        resolved = []
        for ev in sorted(fn.lock_events, key=lambda e: e.pos):
            fam = resolver.lock_family(fn, ev.expr, ev.pos)
            if fam:
                resolved.append((fam, ev))
        for i, (fa, ea) in enumerate(resolved):
            for fb, eb in resolved[i + 1:]:
                if eb.pos <= ea.scope_end:
                    observed.setdefault((fa, fb), (
                        fn.path, eb.line,
                        f"{fn.qname} acquires {fb} while holding {fa}"))
            for c in fn.call_events:
                if ea.pos < c.pos <= ea.scope_end:
                    for callee in resolver.callees(fn, c):
                        for fb in sorted(resolver.acquires(callee)):
                            observed.setdefault((fa, fb), (
                                fn.path, c.line,
                                f"{fn.qname} holds {fa} across a call to "
                                f"{callee.qname}, which acquires {fb}"))
        req = sorted({f for f in
                      (resolver.lock_family(fn, e) for e in fn.requires) if f})
        if req:
            inner = {f for f, _ in resolved}
            for c in fn.call_events:
                for callee in resolver.callees(fn, c):
                    inner |= resolver.acquires(callee)
            for r in req:
                for fb in sorted(inner):
                    if fb != r:
                        observed.setdefault((r, fb), (
                            fn.path, fn.line,
                            f"{fn.qname} REQUIRES {r} and acquires {fb}"))
    return observed


def anchor_family(program: Program, expr: str):
    m = re.search(r"(k\w+)\s*$", expr.strip())
    return program.anchors.get(m.group(1)) if m else None


def declared_lock_order(program: Program):
    """Edges declared via ACQUIRED_BEFORE/ACQUIRED_AFTER against the
    lock_order anchors, plus the set of anchored families."""
    edges = set()
    anchored = set(program.anchors.values())
    for ci in sorted(program.classes.values(), key=lambda c: c.qname):
        for name in sorted(ci.members):
            mem = ci.members[name]
            if not MUTEX_TYPE_RE.search(mem.type):
                continue
            fam = ci.qname + "::" + name
            for tgt in mem.acquired_before:
                t = anchor_family(program, tgt)
                if t:
                    edges.add((fam, t))
                    anchored.add(fam)
            for tgt in mem.acquired_after:
                t = anchor_family(program, tgt)
                if t:
                    edges.add((t, fam))
                    anchored.add(fam)
    return edges, anchored


def transitive_closure(nodes, edges):
    reach = {n: set() for n in nodes}
    for a, b in edges:
        reach.setdefault(a, set()).add(b)
    changed = True
    while changed:
        changed = False
        for n in sorted(reach):
            add = set()
            for m in reach[n]:
                add |= reach.get(m, set())
            if not add <= reach[n]:
                reach[n] |= add
                changed = True
    return reach


def check_lock_order(program: Program, resolver: Resolver):
    findings = []
    observed = lock_order_edges(program, resolver)
    declared, anchored = declared_lock_order(program)
    union = set(observed) | declared
    nodes = sorted({n for e in union for n in e})
    reach = transitive_closure(nodes, union)
    seen_comps = set()
    for n in nodes:
        if n not in reach.get(n, set()):
            continue
        comp = frozenset(m for m in nodes
                         if m in reach[n] and n in reach.get(m, set()))
        if comp in seen_comps:
            continue
        seen_comps.add(comp)
        wit = None
        for (a, b) in sorted(observed):
            if a in comp and b in comp:
                wit = observed[(a, b)]
                break
        path, line = (wit[0], wit[1]) if wit else (
            ANNOTATION_HEADER.replace(os.sep, "/"), 1)
        detail = wit[2] if wit else "the declared annotations alone form it"
        findings.append(Finding(
            path, line, "lock-order",
            "lock-order inversion cycle among {" + ", ".join(sorted(comp))
            + "}: " + detail))
    dreach = transitive_closure(sorted(anchored), declared)
    for (a, b) in sorted(observed):
        if a == b or a not in anchored or b not in anchored:
            continue
        if b not in dreach.get(a, set()):
            path, line, why = observed[(a, b)]
            findings.append(Finding(
                path, line, "lock-order",
                f"undeclared lock order: {why}; declare the edge with "
                f"ACQUIRED_BEFORE/ACQUIRED_AFTER against the lock_order "
                f"anchors (thread_annotations.hpp) or restructure"))
    return findings


# -- reactor-blocking -------------------------------------------------------


def reactor_roots(program: Program, resolver: Resolver):
    roots = []
    for fn in program.all_functions:
        if not fn.is_lambda or not fn.sink:
            continue
        recv, name, tmpl = fn.sink
        if tmpl and tmpl.split("::")[-1] == "TcpBus":
            roots.append(fn)  # TcpBus delivery callback runs on a loop
            continue
        if name not in REACTOR_SINKS:
            continue
        cls = resolver.resolve_chain_class(fn.parent, recv) \
            if (recv and fn.parent) else None
        if (cls and cls.split("::")[-1] == "Reactor") or \
                re.search(r"reactor", recv or "", re.I):
            roots.append(fn)
    return sorted(roots, key=lambda f: (f.path, f.line, f.qname))


def check_reactor_blocking(program: Program, resolver: Resolver):
    findings = []
    for root in reactor_roots(program, resolver):
        seen = set()
        work = [(root, (root.qname,))]
        while work:
            fn, chain = work.pop(0)
            if id(fn) in seen:
                continue
            seen.add(id(fn))
            for c in sorted(fn.call_events, key=lambda c: c.pos):
                if c.name in BLOCKING_CALLS:
                    findings.append(Finding(
                        fn.path, c.line, "reactor-blocking",
                        f"blocking call {c.name}() reachable from a reactor "
                        f"handler ({' -> '.join(chain)}); reactor threads "
                        f"must never block"))
                for callee in resolver.callees(fn, c):
                    work.append((callee, chain + (callee.qname,)))
    return findings


# -- frame-escape -----------------------------------------------------------


def view_typed(resolver: Resolver, fn: FunctionInfo, expr: str,
               pos=None) -> bool:
    expr = expr.strip()
    m = re.match(r"^(?:std\s*::\s*)?move\s*\((.*)\)$", expr, re.S)
    if m:
        expr = m.group(1).strip()
    if not re.match(r"^[\w.\->:\s]+$", expr) or not expr:
        return False
    t = resolver.resolve_chain_type(fn, expr, pos)
    return bool(t and isinstance(t, str) and VIEW_TYPE_RE.search(t))


def check_frame_escape(program: Program, resolver: Resolver):
    findings = []
    for fn in program.all_functions:
        for ev in fn.assign_events:
            root = re.split(r"->|\.|::", ev.lhs)[0].strip()
            if root != "this":
                if binds_to_local(fn, root) or \
                        not member_of_owner(resolver, fn, root):
                    continue
            if ev.op == "=":
                lt = resolver.resolve_chain_type(fn, ev.lhs, ev.pos)
                is_view_store = (
                    (lt and VIEW_TYPE_RE.search(lt)
                     and re.search(r"[A-Za-z_]", ev.rhs))
                    or view_typed(resolver, fn, ev.rhs, ev.pos))
                if is_view_store:
                    findings.append(Finding(
                        fn.path, ev.line, "frame-escape",
                        f"borrowed view stored into member '{ev.lhs}' in "
                        f"{fn.qname}; the frame backing it is pooled and "
                        f"reused after the drain — copy (ToBytes) instead"))
            else:
                for arg in split_top_level(ev.rhs):
                    if view_typed(resolver, fn, arg, ev.pos):
                        findings.append(Finding(
                            fn.path, ev.line, "frame-escape",
                            f"borrowed view '{arg.strip()}' inserted into "
                            f"member container '{ev.lhs}' via {ev.op}() in "
                            f"{fn.qname}; it outlives the drain scope"))
                        break
        if fn.is_lambda and fn.sink and fn.parent is not None:
            _recv, sname, _tmpl = fn.sink
            if sname in DEFER_SINKS:
                for n, t in captured_views(fn):
                    findings.append(Finding(
                        fn.path, fn.line, "frame-escape",
                        f"lambda deferred via {sname}() captures borrowed "
                        f"view '{n}' ({t}); the frame is reused before the "
                        f"deferred body runs — copy the payload first"))
    return findings


def captured_views(lam: FunctionInfo):
    default, by_value, by_ref = (lam.captures
                                 or (None, frozenset(), frozenset()))
    names = set(by_value) | set(by_ref)
    if default in ("=", "&"):
        for w in set(re.findall(r"\b[A-Za-z_]\w*\b", lam.body_text)):
            if w not in CONTROL_WORDS and w not in lam.params:
                names.add(w)
    out = []
    for n in sorted(names):
        t, f = None, lam.parent
        while f is not None:
            for (_p, nm, ty) in f.locals:
                if nm == n:
                    t = ty
            if t is None and n in f.params:
                t = f.params[n]
            if t is not None or not f.is_lambda:
                break
            f = f.parent
        if t and not t.startswith("$elem:") and VIEW_TYPE_RE.search(t):
            out.append((n, t))
    return out


# -- wall-clock-flow --------------------------------------------------------


def check_wall_clock_flow(program: Program, resolver: Resolver):
    findings = []

    def scan(fn: FunctionInfo, inherited):
        tainted = set(inherited)
        stmts = list(split_statements(fn.body_text, 0))
        for _ in range(2):  # two passes: forward refs via loops are rare
            for _off, stmt in stmts:
                s = stmt.strip()
                dm = DECL_RE.match(s)
                if not dm:
                    continue
                name = dm.group(2)
                rest = s[s.find(name) + len(name):]
                if CLOCK_NOW_RE.search(rest) or any(
                        re.search(r"\b%s\b" % re.escape(t), rest)
                        for t in tainted):
                    tainted.add(name)
        for c in sorted(fn.call_events, key=lambda c: c.pos):
            if c.name in CLOCK_SINKS or c.name in CONTROL_WORDS:
                continue
            hit = None
            if CLOCK_NOW_RE.search(c.args):
                hit = "a clock read"
            else:
                for t in sorted(tainted):
                    if re.search(r"\b%s\b" % re.escape(t), c.args):
                        hit = f"clock-derived value '{t}'"
                        break
            if hit:
                findings.append(Finding(
                    fn.path, c.line, "wall-clock-flow",
                    f"{hit} flows into {c.name}() in the deterministic "
                    f"zone; clock values may only feed reporting "
                    f"(count/comparison/duration_cast)"))
        for ev in fn.assign_events:
            if ev.op != "=":
                continue
            root = re.split(r"->|\.|::", ev.lhs)[0].strip()
            is_member = root == "this" or (
                not binds_to_local(fn, root)
                and member_of_owner(resolver, fn, root))
            if not is_member:
                continue
            if CLOCK_NOW_RE.search(ev.rhs) or any(
                    re.search(r"\b%s\b" % re.escape(t), ev.rhs)
                    for t in sorted(tainted)):
                findings.append(Finding(
                    fn.path, ev.line, "wall-clock-flow",
                    f"clock-derived value assigned to member '{ev.lhs}' "
                    f"in the deterministic zone; wall time must not seed "
                    f"state"))
        for lam in fn.lambdas:
            scan(lam, tainted)

    for fn in program.all_functions:
        if not fn.is_lambda:
            scan(fn, set())
    return findings


# -- unordered-iteration (scope-aware) -------------------------------------


def check_unordered_iteration(program: Program, resolver: Resolver):
    findings = []
    for fn in program.all_functions:
        _raw, _blanked, line_starts = program.files[fn.path]
        body = fn.body_text
        sites = []
        for m in re.finditer(
                r"for\s*\(([^;()]*?)([A-Za-z_]\w*)\s*:\s*([^);]+)\)", body):
            sites.append((m.start(3), m.group(3).strip(), "range-for over"))
        for c in fn.call_events:
            if c.name in ("begin", "cbegin") and c.receiver:
                sites.append((c.pos - fn.body_base,
                              c.receiver.rstrip(".->:"), "iteration over"))
        for off, chain, how in sites:
            pos = fn.body_base + off
            t = resolver.resolve_chain_type(fn, chain, pos)
            if t and UNORDERED_TYPE_RE.search(t):
                findings.append(Finding(
                    fn.path, lineno_of(line_starts, pos),
                    "unordered-iteration",
                    f"{how} unordered container '{chain}' ({t}) in "
                    f"{fn.qname}; iteration order is not deterministic — "
                    f"sort keys first or use an ordered container"))
    return findings


# -- deterministic-zone token ports ----------------------------------------


def check_tokens(program: Program):
    findings = []
    for rel in sorted(program.files):
        _raw, blanked, line_starts = program.files[rel]
        for check, rx in TOKEN_CHECKS:
            for m in rx.finditer(blanked):
                findings.append(Finding(
                    rel, lineno_of(line_starts, m.start()), check,
                    CHECKS[check]))
    return findings


# --- libclang cross-check (optional frontend) ------------------------------


def libclang_cross_check(repo_root: str, files, internal_unordered):
    """Re-derive unordered-iteration range-for sites with a real AST and
    warn on disagreement. Returns None when the bindings are missing,
    True otherwise. The internal frontend stays authoritative either
    way — this guards against the structural parser drifting."""
    try:
        import clang.cindex as cindex
        index = cindex.Index.create()
    except Exception:
        return None
    ast_sites = set()
    for path in files:
        if not path.endswith((".cpp", ".cc")):
            continue
        try:
            tu = index.parse(path, args=["-std=c++20", "-I",
                                         os.path.join(repo_root, "src")])
        except Exception:
            continue
        rel = os.path.relpath(os.path.abspath(path), repo_root).replace(
            os.sep, "/")
        for node in tu.cursor.walk_preorder():
            if node.kind != cindex.CursorKind.CXX_FOR_RANGE_STMT:
                continue
            if not node.location.file or \
                    os.path.abspath(node.location.file.name) != \
                    os.path.abspath(path):
                continue
            children = list(node.get_children())
            if not children:
                continue
            rng = children[-2] if len(children) >= 2 else children[0]
            if "unordered_" in rng.type.spelling:
                ast_sites.add((rel, node.location.line))
        del tu
    internal = {(f.path, f.line) for f in internal_unordered}
    for site in sorted(ast_sites - internal):
        print(f"sbft_analyze: note: libclang sees an unordered range-for "
              f"at {site[0]}:{site[1]} the internal frontend missed",
              file=sys.stderr)
    return True


# --- Suppressions ----------------------------------------------------------


def load_suppressions(repo_root: str):
    path = os.path.join(repo_root, SUPPRESS_FILE)
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for ln, line in enumerate(f, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split(":")
            if len(parts) < 2 or parts[1] not in CHECKS:
                print(f"sbft_analyze: bad suppression entry at "
                      f"{SUPPRESS_FILE}:{ln}", file=sys.stderr)
                sys.exit(2)
            entries.append((parts[0], parts[1],
                            ":".join(parts[2:]) or None))
    return entries


def suppressed(entries, finding: Finding, line_text: str) -> bool:
    for pat, check, sub in entries:
        if check != finding.check:
            continue
        if not fnmatch.fnmatch(finding.path, pat):
            continue
        if sub and sub not in line_text and sub not in finding.message:
            continue
        return True
    return False


# --- Driver ----------------------------------------------------------------


def build_program(repo_root: str, files) -> Program:
    program = Program()
    for path in files:
        parse_file(program, repo_root, path)
    merge_requires(program)
    return program


def run_checks(program: Program, fixture: bool = False):
    resolver = Resolver(program)
    findings = []
    findings += check_lock_order(program, resolver)
    findings += check_reactor_blocking(program, resolver)
    findings += check_frame_escape(program, resolver)
    findings += check_wall_clock_flow(program, resolver)
    findings += check_unordered_iteration(program, resolver)
    findings += check_tokens(program)
    if not fixture:
        findings = [f for f in findings
                    if ZONE_OF_CHECK.get(f.check) is None
                    or in_zone(f.path, ZONE_OF_CHECK[f.check])]
    out, seen = [], set()
    for f in sorted(findings,
                    key=lambda f: (f.path, f.line, f.check, f.message)):
        if f.key() not in seen:
            seen.add(f.key())
            out.append(f)
    return out


def collect_files(paths):
    out = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs.sort()
                for f in sorted(files):
                    if f.endswith((".cpp", ".hpp", ".cc", ".h")):
                        out.append(os.path.join(root, f))
        elif os.path.exists(p):
            out.append(p)
        else:
            print(f"sbft_analyze: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return out


def check_fixture(repo_root: str, path: str) -> int:
    base = os.path.basename(path)
    program = build_program(repo_root, [path])
    rel = os.path.relpath(os.path.abspath(path), repo_root).replace(
        os.sep, "/")
    findings = [f for f in run_checks(program, fixture=True)
                if f.path == rel]
    # Inline allows still apply inside fixtures (good_* files may carry
    # intentionally-allowed lines).
    raw = program.files[rel][0]
    allows = inline_allows(raw)
    findings = [f for f in findings
                if f.check not in allows.get(f.line, set())]
    names = sorted(CHECKS, key=len, reverse=True)
    if base.startswith("bad_"):
        stem = base[len("bad_"):].rsplit(".", 1)[0].replace("_", "-")
        expected = next((n for n in names if stem.startswith(n)), None)
        if expected is None:
            print(f"fixture {base}: cannot map name to a check")
            return 1
        hit = [f for f in findings if f.check == expected]
        other = [f for f in findings if f.check != expected]
        if hit and not other:
            print(f"ok: {base} trips {expected} "
                  f"({len(hit)} finding(s)), nothing else")
            return 0
        for f in findings:
            print(f"  {f.path}:{f.line}: [{f.check}] {f.message}")
        print(f"FIXTURE FAIL: {base} expected only {expected} findings "
              f"(got {len(hit)} of it, {len(other)} other)")
        return 1
    if base.startswith("good_"):
        if not findings:
            print(f"ok: {base} is clean")
            return 0
        for f in findings:
            print(f"  {f.path}:{f.line}: [{f.check}] {f.message}")
        print(f"FIXTURE FAIL: {base} expected clean, got "
              f"{len(findings)} finding(s)")
        return 1
    print(f"fixture {base}: name must start with bad_ or good_")
    return 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="whole-program concurrency & lifetime analyzer")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: <repo-root>/src)")
    ap.add_argument("--repo-root", default=".")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--check-fixture", metavar="FILE",
                    help="fixture protocol: bad_<check>*.cpp must trip "
                         "exactly <check>; good_*.cpp must be clean")
    ap.add_argument("--frontend", choices=("auto", "internal", "libclang"),
                    default="auto",
                    help="internal structural frontend is authoritative; "
                         "libclang (when importable) cross-checks "
                         "unordered-iteration")
    args = ap.parse_args(argv)

    if args.list_checks:
        for name in sorted(CHECKS):
            print(f"{name}: {CHECKS[name]}")
        return 0

    repo_root = os.path.abspath(args.repo_root)
    if args.check_fixture:
        return check_fixture(repo_root, args.check_fixture)

    paths = args.paths or [os.path.join(repo_root, "src")]
    files = collect_files(paths)
    if not files:
        print("sbft_analyze: no input files", file=sys.stderr)
        return 2

    program = build_program(repo_root, files)
    findings = run_checks(program)

    if args.frontend in ("auto", "libclang"):
        ok = libclang_cross_check(
            repo_root, files,
            [f for f in findings if f.check == "unordered-iteration"])
        if ok is None and args.frontend == "libclang":
            print("sbft_analyze: --frontend libclang requested but the "
                  "python clang bindings are not importable "
                  "(pip install libclang)", file=sys.stderr)
            return 2

    entries = load_suppressions(repo_root)
    allow_cache = {}
    kept = []
    for f in findings:
        raw = program.files.get(f.path, ("",))[0]
        if f.path not in allow_cache:
            allow_cache[f.path] = inline_allows(raw)
        if f.check in allow_cache[f.path].get(f.line, set()):
            continue
        lines = raw.splitlines()
        line_text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        if suppressed(entries, f, line_text):
            continue
        kept.append(f)

    for f in kept:
        print(f"{f.path}:{f.line}: [{f.check}] {f.message}")
    if kept:
        print(f"sbft_analyze: {len(kept)} finding(s)")
        return 1
    print(f"sbft_analyze: clean ({len(files)} files, "
          f"{len(program.classes)} classes, "
          f"{len(program.all_functions)} functions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
