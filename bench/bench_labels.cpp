// E4: bounded labels (the paper's second headline claim). Reports the
// label-space parameters versus k, contrasts wire size with unbounded
// timestamps over long executions, verifies wrap-around soundness
// (regular reads after far more writes than the label domain holds),
// and micro-benchmarks next()/Precedes with google-benchmark.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "core/deployment.hpp"
#include "labels/labeling_system.hpp"

using namespace sbft;
using namespace sbft::bench;

namespace {

void Tables(JsonReport& report) {
  Header("E4a", "bounded label space vs k (k >= n; wire size is constant "
                "per k regardless of execution length)");
  Row("%-5s %-8s %-14s %-12s %-16s", "k", "domain", "|L| (labels)",
      "bytes/label", "sting cycle (writes)");
  for (std::uint32_t k : {6u, 11u, 16u, 31u, 64u}) {
    LabelingSystem system(k);
    // Measure the solo-writer sting rotation period empirically.
    Label current = system.Initial();
    const std::uint32_t first_sting_after = [&] {
      Label l = system.Next(std::vector<Label>{current});
      return l.sting;
    }();
    std::uint32_t period = 0;
    Label walker = current;
    for (std::uint32_t i = 0; i < 10 * system.params().Domain(); ++i) {
      walker = system.Next(std::vector<Label>{walker});
      ++period;
      if (i > 0 && walker.sting == first_sting_after) break;
    }
    Row("%-5u %-8u %-14.3g %-12zu %-16u", k, system.params().Domain(),
        system.LabelSpaceSize(), system.LabelWireSize(), period);
    report.Metric("k" + std::to_string(k) + ".bytes_per_label",
                  static_cast<double>(system.LabelWireSize()), "bytes");
  }

  Header("E4b", "timestamp bytes on the wire after N writes: bounded labels "
                "vs unbounded counters");
  Row("%-12s %-22s %-22s", "writes", "bounded (k=11)", "unbounded u64");
  LabelingSystem system(11);
  for (double writes : {1e3, 1e6, 1e9, 1e12}) {
    // Unbounded counters conceptually need ~log2(N) bits; any fixed-width
    // implementation (8 bytes here) silently becomes saturating - the
    // failure E5 demonstrates. Bounded labels never grow.
    Row("%-12.0e %-22zu %-22s", writes, system.LabelWireSize(),
        "8 (saturates: unsound)");
  }

  Header("E4c", "wrap-around soundness: 600 writes (>> sting cycle) then "
                "reads, n=6");
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 99;
  Deployment deployment(std::move(options));
  int write_ok = 0;
  for (int i = 0; i < 600; ++i) {
    auto write = deployment.Write(
        0, Value{static_cast<std::uint8_t>(i & 0xFF),
                 static_cast<std::uint8_t>((i >> 8) & 0xFF)});
    write_ok += write.outcome.status == OpStatus::kOk ? 1 : 0;
  }
  int read_ok = 0;
  const Value last{static_cast<std::uint8_t>(599 & 0xFF),
                   static_cast<std::uint8_t>(599 >> 8)};
  for (int i = 0; i < 10; ++i) {
    auto read = deployment.Read(0);
    read_ok += (read.outcome.status == OpStatus::kOk &&
                read.outcome.value == last)
                   ? 1
                   : 0;
  }
  Row("writes ok: %d/600, reads returning the last write: %d/10", write_ok,
      read_ok);
  report.Metric("wraparound.writes_ok", write_ok, "writes");
  report.Metric("wraparound.reads_ok", read_ok, "reads");
  Row("%s", "\nexpected shape: label size constant in execution length; "
            "wrap-around never breaks regularity (labels are reused "
            "safely).");
}

void BM_Next(benchmark::State& state) {
  LabelingSystem system(static_cast<std::uint32_t>(state.range(0)));
  Rng rng(7);
  std::vector<Label> inputs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    inputs.push_back(RandomValidLabel(rng, system.params()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.Next(inputs));
  }
}
BENCHMARK(BM_Next)->Arg(6)->Arg(11)->Arg(31);

void BM_Precedes(benchmark::State& state) {
  LabelingSystem system(static_cast<std::uint32_t>(state.range(0)));
  Rng rng(9);
  Label a = RandomValidLabel(rng, system.params());
  Label b = RandomValidLabel(rng, system.params());
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.Precedes(a, b));
  }
}
BENCHMARK(BM_Precedes)->Arg(6)->Arg(31);

}  // namespace

int main(int argc, char** argv) {
  JsonReport report("labels", ParseBenchArgs(argc, argv));
  Tables(report);
  // google-benchmark rejects flags it does not know; strip ours before
  // handing the argument vector over.
  std::vector<char*> bm_args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;
    } else if (std::strcmp(argv[i], "--smoke") != 0) {
      bm_args.push_back(argv[i]);
    }
  }
  int bm_argc = static_cast<int>(bm_args.size());
  ::benchmark::Initialize(&bm_argc, bm_args.data());
  if (!report.smoke()) ::benchmark::RunSpecifiedBenchmarks();
  return report.Flush() ? 0 : 1;
}
