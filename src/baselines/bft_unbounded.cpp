#include "baselines/bft_unbounded.hpp"

#include <algorithm>
#include <limits>

namespace sbft {

void BuServer::OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<BuGetTsMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(BuTsReplyMsg{m->rid, ts_})));
  }
  if (const auto* m = std::get_if<BuWriteMsg>(&message)) {
    if (ts_ < m->ts) {
      ts_ = m->ts;
      value_ = ToBytes(m->value);  // copy the frame-borrowed view into state
    }
    endpoint.Send(from, EncodeMessage(Message(BuWriteAckMsg{m->rid})));
  }
  if (const auto* m = std::get_if<BuReadMsg>(&message)) {
    endpoint.Send(from,
                  EncodeMessage(Message(BuReadReplyMsg{m->rid, ts_, value_})));
  }
}

void BuServer::CorruptState(Rng& rng) {
  ts_.seq = rng();
  if (rng.NextBool(0.5)) ts_.seq |= 0xF000000000000000ull;
  ts_.writer_id = static_cast<std::uint32_t>(rng());
  value_ = RandomBytes(rng, 1 + rng.NextBelow(8));
}

void BuByzantineServer::OnFrame(NodeId from, BytesView frame,
                                IEndpoint& endpoint) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();
  const UnboundedTs huge{std::numeric_limits<std::uint64_t>::max(),
                         static_cast<std::uint32_t>(rng_())};
  if (const auto* m = std::get_if<BuGetTsMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(BuTsReplyMsg{m->rid, huge})));
  }
  if (const auto* m = std::get_if<BuWriteMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(BuWriteAckMsg{m->rid})));
  }
  if (const auto* m = std::get_if<BuReadMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(BuReadReplyMsg{
                            m->rid, huge, RandomBytes(rng_, 4)})));
  }
}

BuClient::BuClient(std::vector<NodeId> servers, std::uint32_t f,
                   std::uint32_t client_id)
    : servers_(std::move(servers)), f_(f), client_id_(client_id) {
  SBFT_ASSERT(servers_.size() >= 3 * static_cast<std::size_t>(f) + 1);
  const std::size_t n = servers_.size();
  collected_ts_.resize(n);
  collected_bits_.assign(n, 0);
  write_acks_.assign(n, 0);
  read_ts_.resize(n);
  read_vals_.resize(n);
  read_bits_.assign(n, 0);
}

void BuClient::OnStart(IEndpoint& endpoint) { endpoint_ = &endpoint; }

std::optional<std::size_t> BuClient::ServerIndex(NodeId node) const {
  auto it = std::find(servers_.begin(), servers_.end(), node);
  if (it == servers_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - servers_.begin());
}

void BuClient::StartWrite(Value value, std::function<void(bool)> callback) {
  SBFT_ASSERT(endpoint_ != nullptr && idle());
  write_value_ = std::move(value);
  write_callback_ = std::move(callback);
  std::fill(collected_bits_.begin(), collected_bits_.end(), std::uint8_t{0});
  collected_count_ = 0;
  phase_ = Phase::kGetTs;
  ++rid_;
  endpoint_->Broadcast(servers_, EncodeMessage(Message(BuGetTsMsg{rid_})));
}

void BuClient::StartRead(std::function<void(const BuReadOutcome&)> callback) {
  SBFT_ASSERT(endpoint_ != nullptr && idle());
  read_callback_ = std::move(callback);
  std::fill(read_bits_.begin(), read_bits_.end(), std::uint8_t{0});
  read_count_ = 0;
  phase_ = Phase::kRead;
  ++rid_;
  endpoint_->Broadcast(servers_, EncodeMessage(Message(BuReadMsg{rid_})));
}

void BuClient::OnFrame(NodeId from, BytesView frame, IEndpoint&) {
  const auto index = ServerIndex(from);
  if (!index) return;
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<BuTsReplyMsg>(&message)) {
    if (phase_ != Phase::kGetTs || m->rid != rid_) return;
    if (!collected_bits_[*index]) {  // first reply per server wins
      collected_bits_[*index] = 1;
      collected_ts_[*index] = m->ts;
      ++collected_count_;
    }
    if (collected_count_ < Quorum()) return;
    // Mask Byzantine inflation: up to f of the reported timestamps may
    // be arbitrarily large lies, so advance from the (f+1)-th largest
    // (standard in BFT storage; cf. non-skipping timestamps). This
    // defends against lying servers but NOT against transient
    // corruption of f+1 or more correct servers — the unbounded
    // timestamp then saturates and the register never recovers, which
    // is the failure mode experiment E5 contrasts with bounded labels.
    std::vector<UnboundedTs> sorted;
    sorted.reserve(collected_count_);
    for (std::size_t i = 0; i < collected_bits_.size(); ++i) {
      if (collected_bits_[i]) sorted.push_back(collected_ts_[i]);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const UnboundedTs& a, const UnboundedTs& b) { return b < a; });
    const UnboundedTs base = sorted[f_];
    UnboundedTs new_ts{base.seq == std::numeric_limits<std::uint64_t>::max()
                           ? base.seq
                           : base.seq + 1,
                       client_id_};
    phase_ = Phase::kWrite;
    std::fill(write_acks_.begin(), write_acks_.end(), std::uint8_t{0});
    write_ack_count_ = 0;
    endpoint_->Broadcast(
        servers_, EncodeMessage(Message(BuWriteMsg{rid_, new_ts,
                                                   write_value_})));
  }
  if (const auto* m = std::get_if<BuWriteAckMsg>(&message)) {
    if (phase_ != Phase::kWrite || m->rid != rid_) return;
    if (!write_acks_[*index]) {
      write_acks_[*index] = 1;
      ++write_ack_count_;
    }
    if (write_ack_count_ >= Quorum()) {
      phase_ = Phase::kIdle;
      if (write_callback_) {
        auto callback = std::move(write_callback_);
        write_callback_ = nullptr;
        callback(true);
      }
    }
  }
  if (const auto* m = std::get_if<BuReadReplyMsg>(&message)) {
    if (phase_ != Phase::kRead || m->rid != rid_) return;
    if (!read_bits_[*index]) {
      read_bits_[*index] = 1;
      read_ts_[*index] = m->ts;
      // In-place assign reuses the slot's Bytes capacity across reads.
      read_vals_[*index].assign(m->value.begin(), m->value.end());
      ++read_count_;
    }
    if (read_count_ >= Quorum()) {
      // Certify: identical (ts, value) reported by >= f+1 servers; take
      // the maximal certified pair.
      BuReadOutcome outcome;
      for (std::size_t i = 0; i < read_bits_.size(); ++i) {
        if (!read_bits_[i]) continue;
        std::size_t witnesses = 0;
        for (std::size_t j = 0; j < read_bits_.size(); ++j) {
          if (read_bits_[j] && read_ts_[j] == read_ts_[i] &&
              read_vals_[j] == read_vals_[i]) {
            ++witnesses;
          }
        }
        if (witnesses >= f_ + 1 && (!outcome.ok || outcome.ts < read_ts_[i])) {
          outcome.ok = true;
          outcome.ts = read_ts_[i];
          outcome.value = read_vals_[i];
        }
      }
      phase_ = Phase::kIdle;
      if (read_callback_) {
        auto callback = std::move(read_callback_);
        read_callback_ = nullptr;
        callback(outcome);
      }
    }
  }
}

void BuClient::CorruptState(Rng& rng) {
  rid_ = rng();
  if (phase_ != Phase::kIdle) {
    phase_ = Phase::kIdle;
    if (write_callback_) {
      auto callback = std::move(write_callback_);
      write_callback_ = nullptr;
      callback(false);
    }
    if (read_callback_) {
      auto callback = std::move(read_callback_);
      read_callback_ = nullptr;
      callback(BuReadOutcome{});
    }
  }
}

}  // namespace sbft
