// Unit tests for the Weighted Timestamp Graph (Definition 3).
#include "core/wtsg.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sbft {
namespace {

class WtsgTest : public ::testing::Test {
 protected:
  WtsgTest() : system_(4), graph_(system_.params()) {}

  VersionedValue Vv(std::uint8_t v, const Timestamp& ts) {
    return VersionedValue{Value{v}, ts};
  }
  Timestamp Ts(const Label& label, ClientId writer = 0) {
    return Timestamp{label, writer};
  }

  LabelingSystem system_;
  Wtsg graph_;
};

TEST_F(WtsgTest, WeightCountsDistinctServersOnce) {
  const Timestamp ts = Ts(system_.Initial());
  graph_.AddWitness(0, Vv(1, ts));
  graph_.AddWitness(1, Vv(1, ts));
  graph_.AddWitness(1, Vv(1, ts));  // duplicate witness
  graph_.AddWitness(2, Vv(1, ts));
  ASSERT_EQ(graph_.node_count(), 1u);
  EXPECT_EQ(graph_.nodes()[0].weight(), 3u);
}

TEST_F(WtsgTest, SameTimestampDifferentValueSplitsNodes) {
  // The Byzantine equivocation attack: forged value under the real ts
  // must land in a separate vertex.
  const Timestamp ts = Ts(system_.Initial());
  graph_.AddWitness(0, Vv(1, ts));
  graph_.AddWitness(1, Vv(1, ts));
  graph_.AddWitness(2, Vv(9, ts));  // forged
  EXPECT_EQ(graph_.node_count(), 2u);
  EXPECT_FALSE(graph_.FindWitnessed(3).has_value());
  auto two = graph_.FindWitnessed(2);
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(two->value, Value{1});
}

TEST_F(WtsgTest, EdgesFollowLabelPrecedence) {
  const Label l0 = system_.Initial();
  const Label l1 = system_.Next(std::vector<Label>{l0});
  graph_.AddWitness(0, Vv(1, Ts(l0)));
  graph_.AddWitness(1, Vv(2, Ts(l1)));
  EXPECT_EQ(graph_.EdgeCount(), 1u);
  EXPECT_TRUE(graph_.HasEdge(Vv(1, Ts(l0)), Vv(2, Ts(l1))));
  EXPECT_FALSE(graph_.HasEdge(Vv(2, Ts(l1)), Vv(1, Ts(l0))));
}

TEST_F(WtsgTest, FindWitnessedPicksNewestAmongQualifying) {
  const Label l0 = system_.Initial();
  const Label l1 = system_.Next(std::vector<Label>{l0});
  // Both values have >= 3 witnesses; the l1 vertex must win (it follows
  // l0 in the precedence order).
  for (std::size_t s = 0; s < 3; ++s) graph_.AddWitness(s, Vv(1, Ts(l0)));
  for (std::size_t s = 3; s < 6; ++s) graph_.AddWitness(s, Vv(2, Ts(l1)));
  auto winner = graph_.FindWitnessed(3);
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(winner->value, Value{2});
}

TEST_F(WtsgTest, FindWitnessedEmptyGraph) {
  EXPECT_FALSE(graph_.FindWitnessed(1).has_value());
}

TEST_F(WtsgTest, ThresholdBoundary) {
  const Timestamp ts = Ts(system_.Initial());
  graph_.AddWitness(0, Vv(1, ts));
  graph_.AddWitness(1, Vv(1, ts));
  EXPECT_TRUE(graph_.FindWitnessed(2).has_value());
  EXPECT_FALSE(graph_.FindWitnessed(3).has_value());
}

TEST_F(WtsgTest, DeterministicWinnerUnderInsertionOrder) {
  // Same witness multiset added in different orders must elect the same
  // vertex.
  Rng rng(71);
  const Label l0 = system_.Initial();
  const Label l1 = system_.Next(std::vector<Label>{l0});
  const Label l2 = system_.Next(std::vector<Label>{l1});
  std::vector<std::pair<std::size_t, VersionedValue>> witnesses;
  for (std::size_t s = 0; s < 3; ++s) {
    witnesses.push_back({s, Vv(1, Ts(l1))});
    witnesses.push_back({s + 3, Vv(2, Ts(l2))});
    witnesses.push_back({s + 6, Vv(3, Ts(l0))});
  }
  std::optional<VersionedValue> first;
  for (int round = 0; round < 20; ++round) {
    // Shuffle.
    for (std::size_t i = witnesses.size(); i > 1; --i) {
      std::swap(witnesses[i - 1], witnesses[rng.NextBelow(i)]);
    }
    Wtsg graph(system_.params());
    for (const auto& [server, vv] : witnesses) graph.AddWitness(server, vv);
    auto winner = graph.FindWitnessed(3);
    ASSERT_TRUE(winner.has_value());
    if (!first) {
      first = winner;
    } else {
      EXPECT_EQ(winner->value, first->value);
      EXPECT_EQ(winner->ts, first->ts);
    }
  }
}

TEST_F(WtsgTest, GarbageTimestampsFormIsolatedNodes) {
  // Invalid labels are incomparable to everything: no edges.
  Rng rng(72);
  graph_.AddWitness(0, Vv(1, Ts(RandomGarbageLabel(rng, system_.params()))));
  graph_.AddWitness(1, Vv(2, Ts(system_.Initial())));
  EXPECT_EQ(graph_.node_count(), 2u);
  EXPECT_EQ(graph_.EdgeCount(), 0u);
}

TEST_F(WtsgTest, UnionSemanticsServerWitnessesManyNodes) {
  // One server may witness several vertices (current + history); each
  // vertex counts it once.
  const Label l0 = system_.Initial();
  const Label l1 = system_.Next(std::vector<Label>{l0});
  graph_.AddWitness(0, Vv(1, Ts(l0)));
  graph_.AddWitness(0, Vv(2, Ts(l1)));
  EXPECT_EQ(graph_.node_count(), 2u);
  EXPECT_EQ(graph_.nodes()[0].weight(), 1u);
  EXPECT_EQ(graph_.nodes()[1].weight(), 1u);
}

}  // namespace
}  // namespace sbft
