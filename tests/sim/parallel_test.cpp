// Tests for the parallel sweep engine: full coverage of the index
// space, results independent of the job count (the property the fuzz
// campaign's --jobs flag relies on), exception propagation, and
// thread-isolation of whole sim runs (each worker gets its own
// thread_local frame pool, so concurrent Worlds never share state).
#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/hash.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"

namespace sbft {
namespace {

TEST(Parallel, HardwareJobsIsPositive) { EXPECT_GE(HardwareJobs(), 1u); }

TEST(Parallel, ForVisitsEveryIndexExactlyOnce) {
  for (const std::size_t jobs : {0u, 1u, 2u, 4u, 7u}) {
    constexpr std::size_t kCount = 257;  // not a multiple of any job count
    std::vector<std::atomic<int>> visits(kCount);
    ParallelFor(kCount, jobs, [&visits](std::size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(Parallel, ForWithZeroCountIsANoop) {
  bool called = false;
  ParallelFor(0, 4, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, MapOutputIndependentOfJobCount) {
  constexpr std::size_t kCount = 100;
  const auto fn = [](std::size_t i) {
    // Arbitrary deterministic per-index computation.
    std::uint64_t h = kFnvOffset;
    for (std::size_t r = 0; r < 50 + i; ++r) h = HashCombine(h, i * r);
    return h;
  };
  const auto reference = ParallelMap<std::uint64_t>(kCount, 1, fn);
  ASSERT_EQ(reference.size(), kCount);
  for (const std::size_t jobs : {2u, 3u, 8u}) {
    EXPECT_EQ(ParallelMap<std::uint64_t>(kCount, jobs, fn), reference)
        << "jobs " << jobs;
  }
}

TEST(Parallel, FirstExceptionPropagatesAfterAllTasksRan) {
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ParallelFor(64, 4,
                  [&ran](std::size_t i) {
                    ran.fetch_add(1, std::memory_order_relaxed);
                    if (i == 13) throw std::runtime_error("task 13");
                  }),
      std::runtime_error);
  // Remaining tasks are not cancelled: the engine drains the index
  // space and only then rethrows.
  EXPECT_EQ(ran.load(), 64);
}

TEST(Parallel, InlinePathPropagatesException) {
  EXPECT_THROW(ParallelFor(4, 1,
                           [](std::size_t i) {
                             if (i == 2) throw std::logic_error("inline");
                           }),
               std::logic_error);
}

// Whole-sim isolation: run the same seeded world concurrently under
// different job counts and require identical trace fingerprints. This
// is the exact usage pattern of the fuzz campaign and the bench sweeps
// (RunScenario per index) — a shared frame pool or cross-thread RNG
// would show up as hash divergence.
TEST(Parallel, ConcurrentSimRunsAreIsolatedAndDeterministic) {
  class Pinger final : public Automaton {
   public:
    explicit Pinger(NodeId peer, bool starts) : peer_(peer), starts_(starts) {}
    void OnStart(IEndpoint& endpoint) override {
      if (starts_) endpoint.Send(peer_, Bytes{0});
    }
    void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override {
      if (!frame.empty() && frame[0] < 30) {
        endpoint.Send(from, Bytes{static_cast<std::uint8_t>(frame[0] + 1)});
      }
    }

   private:
    NodeId peer_;
    bool starts_;
  };

  const auto run_sim = [](std::size_t index) {
    World world(World::Options{1000 + index, nullptr});
    world.trace().Enable(true);
    world.AddNode(std::make_unique<Pinger>(1, true));
    world.AddNode(std::make_unique<Pinger>(0, false));
    world.Run();
    std::uint64_t h = kFnvOffset;
    for (const TraceEvent& event : world.trace().events()) {
      h = HashCombine(h, event.time);
      h = HashCombine(h, event.frame_hash);
    }
    return h;
  };

  const auto sequential = ParallelMap<std::uint64_t>(16, 1, run_sim);
  const auto parallel4 = ParallelMap<std::uint64_t>(16, 4, run_sim);
  EXPECT_EQ(parallel4, sequential);
  // Distinct seeds genuinely produce distinct schedules (the map is not
  // trivially constant).
  EXPECT_NE(sequential[0], sequential[1]);
}

}  // namespace
}  // namespace sbft
