// A vector with inline storage for the first N elements and a heap
// fallback beyond, for the small fixed-cardinality sets the hot path
// copies constantly — above all label antisting sets (exactly k
// elements, k = n in every deployment, and n <= 16 across the whole
// experiment suite). Keeping them inline removes one heap allocation
// per decoded timestamp and keeps comparisons cache-local.
//
// Restricted to trivially copyable element types: growth and copies
// degenerate to memcpy and destruction never runs element destructors.
// The API is the std::vector subset the label code uses; semantics
// match std::vector (resize value-initializes, erase/insert return
// iterators into the sequence).
#pragma once

#include <algorithm>
#include <compare>
#include <cstddef>
#include <initializer_list>
#include <type_traits>

namespace sbft {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(N > 0);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;
  SmallVector(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
  }
  SmallVector(const SmallVector& other) {
    assign(other.begin(), other.end());
  }
  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  SmallVector& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }
  ~SmallVector() { FreeHeap(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n <= capacity_) return;
    // The one legitimate raw allocation: this IS the spill allocator
    // everything else is told to use.
    T* heap = new T[n];  // sbft-lint: allow(raw-alloc)
    std::copy(data_, data_ + size_, heap);
    if (OnHeap()) delete[] data_;
    data_ = heap;
    capacity_ = n;
  }

  void resize(std::size_t n) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = T{};
    size_ = n;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) reserve(capacity_ * 2);
    data_[size_++] = value;
  }

  void pop_back() { --size_; }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  iterator insert(const_iterator pos, const T& value) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    push_back(value);  // may reallocate; `at` stays valid
    std::rotate(data_ + at, data_ + size_ - 1, data_ + size_);
    return data_ + at;
  }

  iterator erase(const_iterator first, const_iterator last) {
    const std::size_t at = static_cast<std::size_t>(first - data_);
    const std::size_t count = static_cast<std::size_t>(last - first);
    std::copy(data_ + at + count, data_ + size_, data_ + at);
    size_ -= count;
    return data_ + at;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend auto operator<=>(const SmallVector& a, const SmallVector& b) {
    return std::lexicographical_compare_three_way(a.begin(), a.end(),
                                                  b.begin(), b.end());
  }

 private:
  [[nodiscard]] bool OnHeap() const { return data_ != inline_; }

  void FreeHeap() {
    if (OnHeap()) delete[] data_;
    data_ = inline_;
    capacity_ = N;
    size_ = 0;
  }

  /// Precondition: *this owns no heap storage (fresh or just freed).
  void MoveFrom(SmallVector&& other) noexcept {
    if (other.OnHeap()) {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      size_ = other.size_;
      std::copy(other.data_, other.data_ + other.size_, data_);
      other.size_ = 0;
    }
  }

  T inline_[N];
  T* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace sbft
