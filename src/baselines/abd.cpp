#include "baselines/abd.hpp"

#include <algorithm>

namespace sbft {

void AbdServer::OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<AbdGetTsMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(AbdTsReplyMsg{m->rid, ts_})));
  }
  if (const auto* m = std::get_if<AbdWriteMsg>(&message)) {
    if (ts_ < m->ts) {
      ts_ = m->ts;
      value_ = ToBytes(m->value);  // copy the frame-borrowed view into state
    }
    endpoint.Send(from, EncodeMessage(Message(AbdWriteAckMsg{m->rid})));
  }
  if (const auto* m = std::get_if<AbdReadMsg>(&message)) {
    endpoint.Send(from,
                  EncodeMessage(Message(AbdReadReplyMsg{m->rid, ts_, value_})));
  }
}

void AbdServer::CorruptState(Rng& rng) {
  // The signature failure of unbounded timestamps: corruption can plant
  // a near-maximal sequence number that no legitimate write exceeds.
  ts_.seq = rng();
  if (rng.NextBool(0.5)) ts_.seq |= 0xF000000000000000ull;
  ts_.writer_id = static_cast<std::uint32_t>(rng());
  value_ = RandomBytes(rng, 1 + rng.NextBelow(8));
}

AbdClient::AbdClient(std::vector<NodeId> servers, std::uint32_t client_id)
    : servers_(std::move(servers)), client_id_(client_id) {
  const std::size_t n = servers_.size();
  collected_ts_.resize(n);
  collected_bits_.assign(n, 0);
  write_acks_.assign(n, 0);
  read_ts_.resize(n);
  read_vals_.resize(n);
  read_bits_.assign(n, 0);
}

void AbdClient::OnStart(IEndpoint& endpoint) { endpoint_ = &endpoint; }

std::optional<std::size_t> AbdClient::ServerIndex(NodeId node) const {
  auto it = std::find(servers_.begin(), servers_.end(), node);
  if (it == servers_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - servers_.begin());
}

void AbdClient::StartWrite(Value value, std::function<void(bool)> callback) {
  SBFT_ASSERT(endpoint_ != nullptr && idle());
  write_value_ = std::move(value);
  write_callback_ = std::move(callback);
  std::fill(collected_bits_.begin(), collected_bits_.end(), std::uint8_t{0});
  collected_count_ = 0;
  phase_ = Phase::kGetTs;
  ++rid_;
  endpoint_->Broadcast(servers_, EncodeMessage(Message(AbdGetTsMsg{rid_})));
}

void AbdClient::StartRead(
    std::function<void(const AbdReadOutcome&)> callback) {
  SBFT_ASSERT(endpoint_ != nullptr && idle());
  read_callback_ = std::move(callback);
  std::fill(read_bits_.begin(), read_bits_.end(), std::uint8_t{0});
  read_count_ = 0;
  phase_ = Phase::kRead;
  ++rid_;
  endpoint_->Broadcast(servers_, EncodeMessage(Message(AbdReadMsg{rid_})));
}

void AbdClient::OnFrame(NodeId from, BytesView frame, IEndpoint&) {
  const auto index = ServerIndex(from);
  if (!index) return;
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<AbdTsReplyMsg>(&message)) {
    if (phase_ != Phase::kGetTs || m->rid != rid_) return;
    if (!collected_bits_[*index]) {  // first reply per server wins
      collected_bits_[*index] = 1;
      collected_ts_[*index] = m->ts;
      ++collected_count_;
    }
    if (collected_count_ < Majority()) return;
    UnboundedTs max_ts;
    for (std::size_t i = 0; i < collected_bits_.size(); ++i) {
      if (collected_bits_[i]) max_ts = std::max(max_ts, collected_ts_[i]);
    }
    // Saturating increment: documents that even an overflow guard cannot
    // save the protocol once corruption plants a near-maximal seq.
    UnboundedTs new_ts{max_ts.seq == std::numeric_limits<std::uint64_t>::max()
                           ? max_ts.seq
                           : max_ts.seq + 1,
                       client_id_};
    phase_ = Phase::kWrite;
    std::fill(write_acks_.begin(), write_acks_.end(), std::uint8_t{0});
    write_ack_count_ = 0;
    // write_value_ is a stable member, so the view inside AbdWriteMsg is
    // valid for the duration of the encode.
    endpoint_->Broadcast(
        servers_, EncodeMessage(Message(AbdWriteMsg{rid_, new_ts,
                                                    write_value_})));
  }
  if (const auto* m = std::get_if<AbdWriteAckMsg>(&message)) {
    if (phase_ != Phase::kWrite || m->rid != rid_) return;
    if (!write_acks_[*index]) {
      write_acks_[*index] = 1;
      ++write_ack_count_;
    }
    if (write_ack_count_ >= Majority()) {
      phase_ = Phase::kIdle;
      if (write_callback_) {
        auto callback = std::move(write_callback_);
        write_callback_ = nullptr;
        callback(true);
      }
    }
  }
  if (const auto* m = std::get_if<AbdReadReplyMsg>(&message)) {
    if (phase_ != Phase::kRead || m->rid != rid_) return;
    if (!read_bits_[*index]) {
      read_bits_[*index] = 1;
      read_ts_[*index] = m->ts;
      // In-place assign reuses the slot's Bytes capacity across reads.
      read_vals_[*index].assign(m->value.begin(), m->value.end());
      ++read_count_;
    }
    if (read_count_ >= Majority()) {
      AbdReadOutcome outcome;
      outcome.ok = true;
      for (std::size_t i = 0; i < read_bits_.size(); ++i) {
        if (read_bits_[i] && read_ts_[i] >= outcome.ts) {
          outcome.ts = read_ts_[i];
          outcome.value = read_vals_[i];
        }
      }
      phase_ = Phase::kIdle;
      if (read_callback_) {
        auto callback = std::move(read_callback_);
        read_callback_ = nullptr;
        callback(outcome);
      }
    }
  }
}

void AbdClient::CorruptState(Rng& rng) {
  rid_ = rng();  // unbounded id: corruption may collide with stale replies
  if (phase_ != Phase::kIdle) {
    phase_ = Phase::kIdle;
    if (write_callback_) {
      auto callback = std::move(write_callback_);
      write_callback_ = nullptr;
      callback(false);
    }
    if (read_callback_) {
      auto callback = std::move(read_callback_);
      read_callback_ = nullptr;
      callback(AbdReadOutcome{});
    }
  }
}

}  // namespace sbft
