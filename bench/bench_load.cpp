// Open-loop adversarial load engine (experiment E12): offered-load
// sweeps and a scenario matrix against the threaded register cluster,
// on both transports.
//
// Unlike bench_throughput's closed loop (which only ever asks for what
// the cluster just delivered), every arm here FIXES the offered load:
// operations start at precomputed Poisson arrival times whether or not
// earlier ones finished, and latency is charged from the intended
// arrival (coordinated-omission-free; see docs/LOAD_TESTING.md).
//
// Three measurement families:
//   * latency-vs-offered-load sweep with a saturation finder — a point
//     is SUSTAINED when (almost) every scheduled op returned and the
//     achieved ok-rate tracks the offered rate; saturation_frac (the
//     fraction of swept points sustained) is scale-invariant and gated
//     by tools/bench_compare.py, absolute rates stay advisory;
//   * adversarial traffic shapes (Zipf hot keys, flash crowd, 90%
//     reads, slow links), each history validated by CheckRegular;
//   * mid-load transient corruption: every server's state is garbled
//     while traffic keeps flowing, and MeasureStabilization reports
//     how long until reads are provably regular again — the paper's
//     stabilization guarantee as a latency-style number.
//
// Extra flags (on top of bench_json.hpp's): --backend mailbox|tcp
// restricts the transport; --scenario NAME runs only arms whose name
// contains NAME (e.g. --scenario corruption).
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "load/driver.hpp"
#include "load/scenario.hpp"
#include "load/stabilization.hpp"
#include "spec/regular_checker.hpp"

using namespace sbft;
using namespace sbft::bench;

namespace {

struct LoadArgs {
  std::string backend = "all";    // mailbox | tcp | all
  std::string scenario_filter;    // substring; empty = all arms
};

LoadArgs ParseLoadArgs(int argc, char** argv) {
  LoadArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      args.backend = argv[++i];
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      args.scenario_filter = argv[++i];
    }
  }
  return args;
}

bool Wanted(const LoadArgs& args, const std::string& name) {
  return args.scenario_filter.empty() ||
         name.find(args.scenario_filter) != std::string::npos;
}

/// A sweep point is sustained when (almost) everything scheduled came
/// back and the ok-rate tracked the offered rate. The 0.99/0.8 slack
/// absorbs drain-tail ops and scheduler hiccups without letting a
/// genuinely saturated point pass.
bool Sustained(const load::LoadResult& result, double offered) {
  return result.completed_frac >= 0.99 &&
         result.achieved_ops_per_sec >= 0.8 * offered;
}

void PointRow(const std::string& label, double offered,
              const load::LoadResult& result) {
  load::LatencyHistogram merged = result.write_latency;
  merged.Merge(result.read_latency);
  Row("%-22s %-9.0f | %-9.0f %-6.3f %-8llu %-8llu %-8llu %-6zu %-6zu",
      label.c_str(), offered, result.achieved_ops_per_sec,
      result.completed_frac,
      static_cast<unsigned long long>(merged.Percentile(0.5)),
      static_cast<unsigned long long>(merged.Percentile(0.99)),
      static_cast<unsigned long long>(merged.max()), result.aborted,
      result.failed + result.pending + result.unlaunched);
}

/// Shared metrics for every arm. completed_frac gates; the rest are
/// machine-dependent and advisory.
void CommonMetrics(JsonReport& report, const std::string& key,
                   double offered, const load::LoadResult& result) {
  report.Metric(key + ".offered_per_sec", offered, "ops/s");
  report.Metric(key + ".achieved_ops_per_sec", result.achieved_ops_per_sec,
                "ops/s");
  report.Metric(key + ".completed_frac", result.completed_frac, "frac");
  report.Metric(key + ".p99_write_us",
                static_cast<double>(result.write_latency.Percentile(0.99)),
                "us");
  report.Metric(key + ".p99_read_us",
                static_cast<double>(result.read_latency.Percentile(0.99)),
                "us");
}

/// Per-key regularity check over the run's history (each key is an
/// independent mux register; the stabilization point is the first
/// completed write, as in the soak tests). Returns the number of
/// violations found (capped).
std::size_t CheckHistory(const load::LoadResult& result) {
  CheckOptions check;
  check.stabilized_from = result.first_write_done_us;
  check.grandfathered_values = {Value{}};
  check.max_violations = 8;  // enough for triage output
  const CheckReport report = load::CheckRegularPerKey(result.history, check);
  if (!report.ok) {
    Row("  checker: %s", report.Summary().c_str());
  }
  return report.violations.size();
}

void RunSweep(JsonReport& report, const LoadArgs& args, bool use_tcp) {
  const std::string backend = use_tcp ? "tcp" : "mailbox";
  if (!Wanted(args, backend + ".sweep")) return;
  // Rates chosen to bracket one-core capacity from below: every point
  // is sustainable on the baseline machine, so the gated trajectory
  // asserts "the whole sweep stays sustained" (saturation_frac = 1)
  // and the latency curve shows the approach to the knee.
  const std::vector<double> rates = use_tcp
                                        ? std::vector<double>{250, 500, 1000}
                                        : std::vector<double>{500, 1000, 2000,
                                                              4000};
  const std::uint64_t duration_us = report.smoke() ? 300'000 : 1'500'000;

  std::size_t sustained = 0;
  double saturation_rate = 0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    load::Scenario scenario =
        load::BaselineScenario(rates[i], duration_us, 11 + i);
    scenario.use_tcp = use_tcp;
    const load::LoadResult result = load::RunOpenLoop(scenario);
    const std::string key = backend + ".sweep.p" + std::to_string(i);
    PointRow(key, rates[i], result);
    CommonMetrics(report, key, rates[i], result);
    if (Sustained(result, rates[i])) {
      ++sustained;
      saturation_rate = rates[i];
    }
  }
  // Saturation point: the highest offered rate the cluster sustained
  // (a lower bound when even the top point held). saturation_frac is
  // the scale-invariant, gated form.
  report.Metric(backend + ".sweep.saturation_frac",
                static_cast<double>(sustained) /
                    static_cast<double>(rates.size()),
                "frac");
  report.Metric(backend + ".sweep.saturation_ops_per_sec", saturation_rate,
                "ops/s");
  Row("%-22s sustained %zu/%zu points, saturation >= %.0f ops/s",
      (backend + ".sweep").c_str(), sustained, rates.size(),
      saturation_rate);
}

void RunScenarioArms(JsonReport& report, const LoadArgs& args, bool use_tcp) {
  const std::string backend = use_tcp ? "tcp" : "mailbox";
  const std::uint64_t duration_us = report.smoke() ? 400'000 : 2'000'000;

  // Rates per arm sit well under either transport's one-core capacity:
  // these arms measure traffic SHAPE effects and checker verdicts, not
  // the saturation knee (the sweep above does that).
  std::vector<load::Scenario> arms;
  arms.push_back(load::ZipfHotScenario(400, duration_us, 21));
  arms.push_back(load::FlashCrowdScenario(200, duration_us, 22));
  arms.push_back(load::ReadHeavyScenario(400, duration_us, 23));
  arms.push_back(load::SlowLinkScenario(200, duration_us, /*delay_us=*/2000,
                                        24));
  arms.push_back(load::CorruptionScenario(300, duration_us, 25));

  for (load::Scenario& scenario : arms) {
    scenario.use_tcp = use_tcp;
    const std::string key = backend + "." + scenario.name;
    if (!Wanted(args, key)) continue;
    const load::LoadResult result = load::RunOpenLoop(scenario);
    const double offered = scenario.phases.empty()
                               ? scenario.rate_ops_per_sec
                               : 0;  // profile: offered varies by phase
    PointRow(key, offered, result);
    CommonMetrics(report, key,
                  offered > 0 ? offered : scenario.rate_ops_per_sec, result);

    if (scenario.corruptions.empty()) {
      const std::size_t violations = CheckHistory(result);
      report.Metric(key + ".violations", static_cast<double>(violations),
                    "count");
      continue;
    }

    // Corruption arm: measure the stabilization point under traffic.
    const std::uint64_t corruption_at =
        result.corruption_times_us.empty() ? scenario.corruptions[0].at_us
                                           : result.corruption_times_us[0];
    CheckOptions base;
    base.grandfathered_values = {Value{}};
    const load::StabilizationReport stabilization =
        load::MeasureStabilization(result.history, corruption_at, base);
    report.Metric(key + ".stabilize_failed",
                  stabilization.stabilized ? 0.0 : 1.0, "count");
    report.Metric(key + ".violation_window_us",
                  static_cast<double>(stabilization.violation_window_us),
                  "us");
    report.Metric(key + ".reads_after_corruption",
                  static_cast<double>(stabilization.reads_after_corruption),
                  "reads");
    report.Metric(key + ".excused_reads",
                  static_cast<double>(stabilization.excused_reads), "reads");
    Row("  corruption @%llu us: stabilized=%d window=%llu us "
        "(excused %zu of %zu post-corruption reads)",
        static_cast<unsigned long long>(corruption_at),
        stabilization.stabilized ? 1 : 0,
        static_cast<unsigned long long>(stabilization.violation_window_us),
        stabilization.excused_reads, stabilization.reads_after_corruption);
  }
}

/// Sharded-deployment arms (E15, tcp only — the transport the CI
/// smoke leg gates): a G=2 offered-load sweep and the live-growth
/// scenario. Regularity is gated at zero violations on every arm;
/// throughput stays advisory like everywhere else.
void RunShardedArms(JsonReport& report, const LoadArgs& args) {
  const std::uint64_t duration_us = report.smoke() ? 300'000 : 1'500'000;

  if (Wanted(args, "tcp.g2.sweep")) {
    const std::vector<double> rates = {250, 500};
    std::size_t sustained = 0;
    double saturation_rate = 0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      load::Scenario scenario =
          load::ShardedScenario(2, rates[i], duration_us, 31 + i);
      scenario.use_tcp = true;
      const load::LoadResult result = load::RunOpenLoop(scenario);
      const std::string key = "tcp.g2.sweep.p" + std::to_string(i);
      PointRow(key, rates[i], result);
      CommonMetrics(report, key, rates[i], result);
      report.Metric(key + ".violations",
                    static_cast<double>(CheckHistory(result)), "count");
      report.Metric(key + ".failed",
                    static_cast<double>(result.failed), "ops");
      if (Sustained(result, rates[i])) {
        ++sustained;
        saturation_rate = rates[i];
      }
    }
    report.Metric("tcp.g2.sweep.saturation_frac",
                  static_cast<double>(sustained) /
                      static_cast<double>(rates.size()),
                  "frac");
    Row("%-22s sustained %zu/%zu points, saturation >= %.0f ops/s",
        "tcp.g2.sweep", sustained, rates.size(), saturation_rate);
  }

  // Live growth: one group serves the first third of the run, then
  // AddGroup installs the next shard-map epoch under traffic. The
  // per-key checker must pass straight through the bump — the
  // drain-and-handoff read anchor is what's under test.
  if (Wanted(args, "tcp.g2_migrate")) {
    load::Scenario scenario = load::MigrateScenario(250, duration_us, 35);
    scenario.use_tcp = true;
    const load::LoadResult result = load::RunOpenLoop(scenario);
    const std::string key = "tcp.g2_migrate";
    PointRow(key, scenario.rate_ops_per_sec, result);
    CommonMetrics(report, key, scenario.rate_ops_per_sec, result);
    report.Metric(key + ".violations",
                  static_cast<double>(CheckHistory(result)), "count");
    report.Metric(key + ".failed", static_cast<double>(result.failed),
                  "ops");
    report.Metric(key + ".final_groups",
                  static_cast<double>(result.final_groups), "groups");
    report.Metric(key + ".shard_epoch",
                  static_cast<double>(result.final_epoch), "epoch");
    Row("  group add @%llu us -> %zu groups (epoch %llu), "
        "%zu keys still read-anchored to their old group at run end",
        static_cast<unsigned long long>(result.group_add_time_us),
        result.final_groups,
        static_cast<unsigned long long>(result.final_epoch),
        result.keys_awaiting_handoff);
  }
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report("load", ParseBenchArgs(argc, argv));
  const LoadArgs load_args = ParseLoadArgs(argc, argv);
  Header("E12", "open-loop adversarial load (offered vs sustained)");
  Row("%-22s %-9s | %-9s %-6s %-8s %-8s %-8s %-6s %-6s", "arm", "offered",
      "ok/s", "compl", "p50 us", "p99 us", "max us", "abort", "lost");

  for (const bool use_tcp : {false, true}) {
    const std::string backend = use_tcp ? "tcp" : "mailbox";
    if (load_args.backend != "all" && load_args.backend != backend) continue;
    RunSweep(report, load_args, use_tcp);
    RunScenarioArms(report, load_args, use_tcp);
    if (use_tcp) RunShardedArms(report, load_args);
  }

  Row("%s", "\nexpected shape: p99 grows with offered load and explodes "
            "past the knee (completed_frac < 1 marks overload); Zipf and "
            "flash arms trade p99 for the same completed_frac; the "
            "corruption arm stabilizes within the run, with a bounded "
            "violation window and zero violations after it.");
  return report.Flush() ? 0 : 1;
}
