#include "core/shard_map.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace sbft {
namespace {

/// Ring point of virtual node `replica` of `group`. Seeded off a fixed
/// tag so ring points share no structure with key hashes, and offset by
/// one so group 0 / replica 0 do not collapse onto the seed itself.
/// The avalanche finalizer matters here: hash values are POSITIONS on
/// the ring, and raw FNV leaves sequential inputs clustered (see
/// AvalancheMix in common/hash.hpp).
std::uint64_t RingPoint(GroupId group, std::size_t replica) {
  std::uint64_t h = Fnv1a("sbft-shard-vnode");
  h = HashCombine(h, static_cast<std::uint64_t>(group) + 1);
  h = HashCombine(h, static_cast<std::uint64_t>(replica) + 1);
  return AvalancheMix(h);
}

/// Key point of a register id (same mixer, different tag). Without the
/// finalizer the first 256 sequential ids — exactly the id range the
/// load driver and benches use — split 126/3/67/60 over 4 groups.
std::uint64_t KeyPoint(RegisterId id) {
  return AvalancheMix(HashCombine(Fnv1a("sbft-shard-key"), id));
}

}  // namespace

ShardMap ShardMap::Initial(std::size_t n_groups,
                           std::size_t vnodes_per_group) {
  SBFT_ASSERT(n_groups >= 1);
  SBFT_ASSERT(vnodes_per_group >= 1);
  ShardMap map;
  map.vnodes_ = vnodes_per_group;
  map.ring_.reserve(n_groups * vnodes_per_group);
  for (std::size_t g = 0; g < n_groups; ++g) {
    map.InsertGroup(static_cast<GroupId>(g));
  }
  return map;
}

void ShardMap::InsertGroup(GroupId group) {
  for (std::size_t r = 0; r < vnodes_; ++r) {
    ring_.push_back(VNode{RingPoint(group, r), group});
  }
  std::sort(ring_.begin(), ring_.end(), [](const VNode& a, const VNode& b) {
    return a.point != b.point ? a.point < b.point : a.group < b.group;
  });
  ++n_groups_;
}

GroupId ShardMap::GroupOf(RegisterId id) const {
  SBFT_ASSERT(!ring_.empty());
  const std::uint64_t point = KeyPoint(id);
  // Successor on the ring: first vnode at or past the key point,
  // wrapping to the lowest point.
  auto it = std::lower_bound(ring_.begin(), ring_.end(), point,
                             [](const VNode& vnode, std::uint64_t p) {
                               return vnode.point < p;
                             });
  if (it == ring_.end()) it = ring_.begin();
  return it->group;
}

ShardMap ShardMap::WithGroupAdded() const {
  SBFT_ASSERT(!ring_.empty());
  ShardMap next = *this;
  next.InsertGroup(static_cast<GroupId>(n_groups_));
  ++next.epoch_;
  return next;
}

}  // namespace sbft
