// Clang thread-safety annotations plus annotated mutex wrappers.
//
// The macros expand to Clang's `thread_safety` attributes when the
// compiler supports them (clang with -Wthread-safety) and to nothing
// otherwise (gcc), so the same headers build everywhere while clang
// turns lock-discipline violations into compile errors:
//
//   Mutex mutex_;
//   std::deque<Item> items_ GUARDED_BY(mutex_);
//
//   void Push(Item item) {
//     MutexLock lock(mutex_);
//     items_.push_back(std::move(item));  // ok: mutex_ held
//   }
//   std::size_t UnsafeSize() { return items_.size(); }  // compile error
//
// CI builds the runtime/net targets with
// `clang++ -Wthread-safety -Werror` (see SBFTREG_THREAD_SAFETY in the
// top-level CMakeLists.txt and the `lint` workflow job), and
// tests/lint/negative_compile keeps the analysis honest by compiling a
// deliberately mis-locked access and expecting failure.
//
// The locking model itself (which mutex guards what) is documented in
// docs/ARCHITECTURE.md and enforced by the annotations in
// src/runtime/*.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SBFT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SBFT_THREAD_ANNOTATION
#define SBFT_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

#define CAPABILITY(x) SBFT_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY SBFT_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) SBFT_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) SBFT_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  SBFT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) SBFT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) SBFT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SBFT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) SBFT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SBFT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SBFT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SBFT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  SBFT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) SBFT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) SBFT_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) SBFT_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  SBFT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sbft {

/// std::mutex with the `capability` attribute so members can be
/// GUARDED_BY it. Lowercase lock/unlock keep it BasicLockable for
/// CondVar (condition_variable_any) and std::scoped_lock.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock over Mutex; the analysis tracks the capability for the
/// guard's whole scope (the annotated std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable over Mutex. Wait takes the mutex the caller
/// already holds — use a plain `while (!predicate()) cv.Wait(mutex_);`
/// loop rather than a predicate lambda, so the guarded reads in the
/// predicate stay inside the annotated function body.
class CondVar {
 public:
  /// Atomically releases `mutex`, blocks, and reacquires before
  /// returning. Spurious wakeups possible — always wait in a loop.
  void Wait(Mutex& mutex) REQUIRES(mutex) { cv_.wait(mutex); }

  /// Timed wait (same contract); returns after `timeout` at the
  /// latest. Used by components that sleep until a deadline but must
  /// wake early on new work (runtime/link_shaper.hpp).
  template <class Rep, class Period>
  void WaitFor(Mutex& mutex,
               const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mutex) {
    cv_.wait_for(mutex, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// Lock-order anchors: one annotation-only global Mutex per runtime
/// mutex family. Clang's ACQUIRED_BEFORE/ACQUIRED_AFTER attributes
/// cannot name another class's non-static member, so each family gets
/// a namespace-scope stand-in here and the real mutex declarations
/// order themselves against the anchors (the abseil idiom). The
/// anchors are never locked — they exist so the acquisition order is
/// machine-readable: tools/sbft_analyze.py parses the `anchor-for:`
/// comments to map each anchor to its family, reads the ACQUIRED_*
/// annotations as the declared DAG, and checks the acquisition edges
/// it observes in the code against it. docs/ARCHITECTURE.md renders
/// the same DAG as a table.
///
/// Edges declared today (held-while-acquiring, left before right):
///   kLoadDriver  -> kShardRouter, kMailbox
///   kTcpBus      -> kReactorLoop, kReactorOwner
///   kTcpConn     -> kReactorLoop, kReactorOwner
///   kReactorLoop -> kReactorOwner
/// kMailbox, kLinkShaper and the ad-hoc leaves (logging sink, parallel
/// sweep error mutex) acquire nothing nested.
namespace lock_order {
inline Mutex kLoadDriver;    // anchor-for: sbft::load::RunState::mutex
inline Mutex kShardRouter;   // anchor-for: sbft::ShardedCluster::mutex_
inline Mutex kMailbox;       // anchor-for: sbft::Mailbox::mutex_
inline Mutex kTcpBus;        // anchor-for: sbft::TcpBus::mutex_
inline Mutex kTcpConn;       // anchor-for: sbft::TcpBus::Connection::mutex
inline Mutex kReactorLoop;   // anchor-for: sbft::Reactor::Loop::mutex
inline Mutex kReactorOwner;  // anchor-for: sbft::Reactor::owner_mutex_
inline Mutex kLinkShaper;    // anchor-for: sbft::LinkShaper::mutex_
}  // namespace lock_order

}  // namespace sbft
