// Epoll I/O reactor for the threaded runtime.
//
// A Reactor owns a small pool of event-loop threads. Each loop has its
// own epoll instance plus an eventfd for cross-thread wakeups; every
// registered fd is pinned to exactly one loop (round-robin at Add), and
// its handler only ever runs on that loop's thread. That single-owner
// rule is what makes per-fd state (read reassembly buffers, accept
// bookkeeping) lock-free: the reactor never runs two handlers for one
// fd concurrently, and RemoveAndClose defers the close onto the owning
// loop so a handler can never race its own fd being closed and reused.
//
// Interest-set changes (Modify) go straight to epoll_ctl, which is
// thread-safe, so a writer thread can arm EPOLLOUT on a connection it
// does not own without a wakeup round-trip.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"

namespace sbft {

class Reactor {
 public:
  /// Runs on the owning loop thread with the epoll event mask.
  using Handler = std::function<void(std::uint32_t events)>;

  explicit Reactor(std::size_t n_threads = 1);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawn the loop threads. Add may be called before or after Start;
  /// events are only dispatched once the loops run.
  void Start();

  /// Wake and join every loop. Idempotent. Registered fds are NOT
  /// closed — the caller owns them and closes after Stop returns (at
  /// that point no handler can be running).
  void Stop();

  /// Register `fd` on one of the loops (round-robin) with the given
  /// epoll interest set. Returns false if epoll_ctl rejects the fd.
  bool Add(int fd, std::uint32_t events, Handler handler);

  /// Replace the interest set of a registered fd. Safe from any thread;
  /// with edge-triggered sets, EPOLL_CTL_MOD re-arms the fd so a level
  /// that is already up is reported again.
  bool Modify(int fd, std::uint32_t events);

  /// Unregister `fd` and close it on its owning loop thread, after any
  /// currently running handler for it has returned. `on_closed` (may be
  /// empty) runs on the loop thread right after the close. If the
  /// reactor is already stopped, everything happens inline.
  void RemoveAndClose(int fd, std::function<void()> on_closed = {});

  [[nodiscard]] std::size_t thread_count() const { return loops_.size(); }

 private:
  struct Loop {
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    /// Acquired with TcpBus locks held (Start registers listeners
    /// under the bus mutex; MarkDeadLocked posts the deferred close
    /// under a connection mutex) and held across the owner-map
    /// acquisition in Add's failure path — hence the ordering below.
    Mutex mutex ACQUIRED_BEFORE(lock_order::kReactorOwner)
        ACQUIRED_AFTER(lock_order::kTcpBus, lock_order::kTcpConn);
    std::unordered_map<int, std::shared_ptr<Handler>> handlers
        GUARDED_BY(mutex);
    std::vector<std::function<void()>> commands GUARDED_BY(mutex);
  };

  void RunLoop(Loop& loop);
  void Post(Loop& loop, std::function<void()> fn);
  Loop* OwnerOf(int fd);

  std::vector<std::unique_ptr<Loop>> loops_;
  /// Innermost reactor lock: taken while a Loop::mutex (Add failure
  /// path) or a TcpBus bus/connection mutex (Start, flush Modify,
  /// MarkDeadLocked) is held; acquires nothing itself.
  Mutex owner_mutex_ ACQUIRED_AFTER(lock_order::kTcpBus,
                                    lock_order::kTcpConn,
                                    lock_order::kReactorLoop);
  std::unordered_map<int, std::size_t> owner_ GUARDED_BY(owner_mutex_);
  std::size_t next_loop_ GUARDED_BY(owner_mutex_) = 0;
  std::atomic<bool> running_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace sbft
