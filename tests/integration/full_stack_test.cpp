// Full-stack integration: the register protocol tunneled through the
// stabilizing data-link over channels that LOSE and REORDER frames —
// the §II substrate note made executable. This exercises every layer
// of the repository at once: register automata -> data-link shim ->
// degraded simulated channels.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/client.hpp"
#include "core/server.hpp"
#include "net/datalink_shim.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

struct FullStackRig {
  explicit FullStackRig(std::uint64_t seed, double loss = 0.10) {
    World::Options world_options;
    world_options.seed = seed;
    world = std::make_unique<World>(std::move(world_options));
    config = ProtocolConfig::ForServers(6);

    // Node ids are assigned densely; precompute them so shims know
    // their peer sets up front: servers 0..5, client 6.
    std::vector<NodeId> server_ids{0, 1, 2, 3, 4, 5};
    const NodeId client_id = 6;

    for (std::size_t i = 0; i < 6; ++i) {
      auto inner = std::make_unique<RegisterServer>(config, i);
      servers.push_back(inner.get());
      const NodeId id = world->AddNode(std::make_unique<DatalinkShim>(
          std::move(inner), kCapacity, std::vector<NodeId>{client_id}));
      EXPECT_EQ(id, server_ids[i]);
    }
    auto inner_client =
        std::make_unique<RegisterClient>(config, server_ids, 100);
    client = inner_client.get();
    const NodeId id = world->AddNode(std::make_unique<DatalinkShim>(
        std::move(inner_client), kCapacity, server_ids));
    EXPECT_EQ(id, client_id);

    // Weak channels in BOTH directions between client and servers.
    for (NodeId server : server_ids) {
      world->DegradeChannel(server, client_id, loss, /*unordered=*/true);
      world->DegradeChannel(client_id, server, loss, /*unordered=*/true);
    }
    world->RunUntil([] { return true; }, 0);
  }

  WriteOutcome Write(const Value& value) {
    WriteOutcome outcome;
    bool done = false;
    client->StartWrite(value, [&](const WriteOutcome& o) {
      outcome = o;
      done = true;
    });
    EXPECT_TRUE(world->RunUntil([&] { return done; }, 30'000'000))
        << "write stalled over the weak channels";
    return outcome;
  }
  ReadOutcome Read() {
    ReadOutcome outcome;
    bool done = false;
    client->StartRead([&](const ReadOutcome& o) {
      outcome = o;
      done = true;
    });
    EXPECT_TRUE(world->RunUntil([&] { return done; }, 30'000'000))
        << "read stalled over the weak channels";
    return outcome;
  }

  static constexpr std::size_t kCapacity = 4;
  std::unique_ptr<World> world;
  ProtocolConfig config;
  std::vector<RegisterServer*> servers;
  RegisterClient* client = nullptr;
};

TEST(FullStack, WriteReadOverLossyUnorderedChannels) {
  FullStackRig rig(1);
  auto write = rig.Write(Val("through-the-storm"));
  ASSERT_EQ(write.status, OpStatus::kOk);
  auto read = rig.Read();
  ASSERT_EQ(read.status, OpStatus::kOk);
  EXPECT_EQ(read.value, Val("through-the-storm"));
}

TEST(FullStack, SequenceOfOpsStaysRegular) {
  FullStackRig rig(2);
  for (int i = 0; i < 5; ++i) {
    const Value value = Val("seq" + std::to_string(i));
    ASSERT_EQ(rig.Write(value).status, OpStatus::kOk) << i;
    auto read = rig.Read();
    ASSERT_EQ(read.status, OpStatus::kOk) << i;
    EXPECT_EQ(read.value, value) << i;
  }
}

TEST(FullStack, HighLossStillLive) {
  FullStackRig rig(3, /*loss=*/0.25);
  auto write = rig.Write(Val("heavy-weather"));
  ASSERT_EQ(write.status, OpStatus::kOk);
  auto read = rig.Read();
  ASSERT_EQ(read.status, OpStatus::kOk);
  EXPECT_EQ(read.value, Val("heavy-weather"));
}

TEST(FullStack, SurvivesShimCorruption) {
  // Transient fault hitting the WHOLE stack — register state and link
  // state on every server.
  FullStackRig rig(4);
  ASSERT_EQ(rig.Write(Val("before")).status, OpStatus::kOk);
  for (std::size_t i = 0; i < 6; ++i) {
    rig.world->CorruptNode(static_cast<NodeId>(i));
  }
  auto write = rig.Write(Val("after"));
  ASSERT_EQ(write.status, OpStatus::kOk);
  auto read = rig.Read();
  ASSERT_EQ(read.status, OpStatus::kOk);
  EXPECT_EQ(read.value, Val("after"));
}

}  // namespace
}  // namespace sbft
