// Wire messages for the core protocol (Figures 1-3) and the baseline
// protocols, plus the frame codec.
//
// A frame is [type: u8][payload]; decoding returns Result so garbage
// frames (transient channel corruption, Byzantine noise) degrade to a
// clean decode error. Even a *successfully* decoded frame may carry
// semantic garbage — handlers validate every field before use.
//
// Opaque payloads (register values, mux inner frames) are BytesView on
// the wire structs: encoding borrows the caller's bytes, decoding
// borrows the frame being decoded. A decoded message is therefore valid
// only while its frame is — handlers copy (ToBytes) exactly when a
// value is stored into long-lived state. See docs/ARCHITECTURE.md,
// "Buffer ownership".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "labels/read_label_pool.hpp"
#include "labels/timestamp.hpp"
#include "labels/unbounded_timestamp.hpp"

namespace sbft {

/// Register values are opaque bytes.
using Value = Bytes;

/// A (value, timestamp) pair as stored in servers' old_vals history and
/// clients' recent-write sets: the owned form.
struct VersionedValue {
  Value value;
  Timestamp ts;

  friend bool operator==(const VersionedValue&, const VersionedValue&) =
      default;
};

/// The same pair as it crosses the wire inside REPLY: the value borrows
/// either the sender's state (encode) or the frame (decode).
struct WireVersioned {
  BytesView value;
  Timestamp ts;

  void EncodeInto(BufWriter& w) const;
  static WireVersioned DecodeFrom(BufReader& r);

  friend bool operator==(const WireVersioned& a, const WireVersioned& b) {
    return a.ts == b.ts && SameBytes(a.value, b.value);
  }
};

[[nodiscard]] inline WireVersioned AsWire(const VersionedValue& v) {
  return WireVersioned{v.value, v.ts};
}
[[nodiscard]] inline VersionedValue ToOwned(const WireVersioned& v) {
  return VersionedValue{ToBytes(v.value), v.ts};
}

/// Which bounded-label pool a FLUSH round is draining. The paper flushes
/// read labels (Figure 3); we apply the identical mechanism to write
/// operation labels (see DESIGN.md, "Writer stale-reply disambiguation").
enum class OpScope : std::uint8_t { kRead = 0, kWrite = 1 };

using OpLabel = std::uint32_t;

// --- Core protocol messages (Figures 1-3) ----------------------------

/// Writer phase 1: request the server's current timestamp.
struct GetTsMsg {
  OpLabel op_label = 0;

  void EncodeInto(BufWriter& w) const;
  static GetTsMsg DecodeFrom(BufReader& r);
};
/// Server's answer to GET_TS.
struct TsReplyMsg {
  Timestamp ts;
  OpLabel op_label = 0;

  void EncodeInto(BufWriter& w) const;
  static TsReplyMsg DecodeFrom(BufReader& r);
};
/// Writer phase 2: the effective write.
struct WriteMsg {
  BytesView value;
  Timestamp ts;
  OpLabel op_label = 0;

  void EncodeInto(BufWriter& w) const;
  static WriteMsg DecodeFrom(BufReader& r);
};
/// ACK (ts accepted as new) or NACK (ts did not follow the local one);
/// either way the server adopted the write (Figure 1 server side).
struct WriteReplyMsg {
  bool ack = false;
  OpLabel op_label = 0;

  void EncodeInto(BufWriter& w) const;
  static WriteReplyMsg DecodeFrom(BufReader& r);
};
/// Reader request (Figure 2 line 05).
struct ReadMsg {
  OpLabel label = 0;

  void EncodeInto(BufWriter& w) const;
  static ReadMsg DecodeFrom(BufReader& r);
};
/// Server reply: current value+ts and the recent-writes history used to
/// build the union WTsG (Figure 2(b) line 02).
struct ReplyMsg {
  BytesView value;
  Timestamp ts;
  std::vector<WireVersioned> old_vals;
  OpLabel label = 0;

  void EncodeInto(BufWriter& w) const;
  static ReplyMsg DecodeFrom(BufReader& r);
};
/// A ReplyMsg whose old_vals history is validated but NOT materialized:
/// `old_vals_raw` is the count-prefixed encoded run, borrowed from the
/// frame. The history feeds only the union WTsG, which a read builds
/// only when the local graph fails to certify (contention or
/// pre-stabilization) — so the common path skips decoding
/// history_window timestamps per reply per server.
struct LazyReplyMsg {
  BytesView value;
  Timestamp ts;
  BytesView old_vals_raw;
  std::uint32_t old_count = 0;
  OpLabel label = 0;
};
/// Decode `frame` as a ReplyMsg without materializing old_vals.
/// Accepts and rejects exactly the frames DecodeMessage would (the
/// history region is fully bounds-walked); nullopt when the frame is
/// not a well-formed REPLY.
[[nodiscard]] std::optional<LazyReplyMsg> DecodeReplyLazy(BytesView frame);
/// Reader completion notice (Figure 2 lines 12/19).
struct CompleteReadMsg {
  OpLabel label = 0;

  void EncodeInto(BufWriter& w) const;
  static CompleteReadMsg DecodeFrom(BufReader& r);
};
/// FIFO flush probe (Figure 3 line 04).
struct FlushMsg {
  OpLabel label = 0;
  OpScope scope = OpScope::kRead;

  void EncodeInto(BufWriter& w) const;
  static FlushMsg DecodeFrom(BufReader& r);
};
/// Reflected flush probe (Figure 3(b)).
struct FlushAckMsg {
  OpLabel label = 0;
  OpScope scope = OpScope::kRead;

  void EncodeInto(BufWriter& w) const;
  static FlushAckMsg DecodeFrom(BufReader& r);
};

// --- Baseline: ABD-style crash-only register --------------------------

struct AbdReadMsg {
  std::uint64_t rid = 0;

  void EncodeInto(BufWriter& w) const;
  static AbdReadMsg DecodeFrom(BufReader& r);
};
struct AbdReadReplyMsg {
  std::uint64_t rid = 0;
  UnboundedTs ts;
  BytesView value;

  void EncodeInto(BufWriter& w) const;
  static AbdReadReplyMsg DecodeFrom(BufReader& r);
};
struct AbdWriteMsg {
  std::uint64_t rid = 0;
  UnboundedTs ts;
  BytesView value;

  void EncodeInto(BufWriter& w) const;
  static AbdWriteMsg DecodeFrom(BufReader& r);
};
struct AbdWriteAckMsg {
  std::uint64_t rid = 0;

  void EncodeInto(BufWriter& w) const;
  static AbdWriteAckMsg DecodeFrom(BufReader& r);
};
struct AbdGetTsMsg {
  std::uint64_t rid = 0;

  void EncodeInto(BufWriter& w) const;
  static AbdGetTsMsg DecodeFrom(BufReader& r);
};
struct AbdTsReplyMsg {
  std::uint64_t rid = 0;
  UnboundedTs ts;

  void EncodeInto(BufWriter& w) const;
  static AbdTsReplyMsg DecodeFrom(BufReader& r);
};

// --- Baseline: non-stabilizing BFT register, unbounded ts ([14]) ------

struct BuGetTsMsg {
  std::uint64_t rid = 0;

  void EncodeInto(BufWriter& w) const;
  static BuGetTsMsg DecodeFrom(BufReader& r);
};
struct BuTsReplyMsg {
  std::uint64_t rid = 0;
  UnboundedTs ts;

  void EncodeInto(BufWriter& w) const;
  static BuTsReplyMsg DecodeFrom(BufReader& r);
};
struct BuWriteMsg {
  std::uint64_t rid = 0;
  UnboundedTs ts;
  BytesView value;

  void EncodeInto(BufWriter& w) const;
  static BuWriteMsg DecodeFrom(BufReader& r);
};
struct BuWriteAckMsg {
  std::uint64_t rid = 0;

  void EncodeInto(BufWriter& w) const;
  static BuWriteAckMsg DecodeFrom(BufReader& r);
};
struct BuReadMsg {
  std::uint64_t rid = 0;

  void EncodeInto(BufWriter& w) const;
  static BuReadMsg DecodeFrom(BufReader& r);
};
struct BuReadReplyMsg {
  std::uint64_t rid = 0;
  UnboundedTs ts;
  BytesView value;

  void EncodeInto(BufWriter& w) const;
  static BuReadReplyMsg DecodeFrom(BufReader& r);
};

// --- Baseline: naive TM_1R quorum register (Theorem 1 replay) ---------

struct NqGetTsMsg {
  std::uint64_t rid = 0;

  void EncodeInto(BufWriter& w) const;
  static NqGetTsMsg DecodeFrom(BufReader& r);
};
struct NqTsReplyMsg {
  std::uint64_t rid = 0;
  Timestamp ts;

  void EncodeInto(BufWriter& w) const;
  static NqTsReplyMsg DecodeFrom(BufReader& r);
};
struct NqWriteMsg {
  std::uint64_t rid = 0;
  Timestamp ts;
  BytesView value;

  void EncodeInto(BufWriter& w) const;
  static NqWriteMsg DecodeFrom(BufReader& r);
};
struct NqWriteAckMsg {
  std::uint64_t rid = 0;

  void EncodeInto(BufWriter& w) const;
  static NqWriteAckMsg DecodeFrom(BufReader& r);
};
struct NqReadMsg {
  std::uint64_t rid = 0;

  void EncodeInto(BufWriter& w) const;
  static NqReadMsg DecodeFrom(BufReader& r);
};
struct NqReadReplyMsg {
  std::uint64_t rid = 0;
  Timestamp ts;
  BytesView value;

  void EncodeInto(BufWriter& w) const;
  static NqReadReplyMsg DecodeFrom(BufReader& r);
};

// --- Multiplexing envelope (multi-register storage service) -----------

/// Wraps an inner protocol frame with a register identifier, letting one
/// server process host many independent registers (core/mux.hpp). The
/// identifier is typically a 64-bit key hash. The inner frame is a view;
/// EncodeMuxEnvelope builds the envelope around an already-encoded inner
/// frame without re-encoding it.
struct MuxMsg {
  std::uint64_t register_id = 0;
  BytesView inner;

  void EncodeInto(BufWriter& w) const;
  static MuxMsg DecodeFrom(BufReader& r);
};

/// One register's sub-frame inside a MuxBatchMsg.
struct MuxItem {
  std::uint64_t register_id = 0;
  BytesView inner;

  void EncodeInto(BufWriter& w) const;
  static MuxItem DecodeFrom(BufReader& r);

  friend bool operator==(const MuxItem& a, const MuxItem& b) {
    return a.register_id == b.register_id && SameBytes(a.inner, b.inner);
  }
};

/// Many registers' sub-frames coalesced into one physical frame: the
/// protocol-round batching envelope. A server decodes one MuxBatchMsg
/// and applies the whole vector of register sub-ops; the replies it
/// produces while dispatching are coalesced the same way, so one frame
/// per link carries one protocol phase of many logical ops (see
/// docs/ARCHITECTURE.md, "Protocol-round batching"). Like MuxMsg, the
/// inner payloads are views into the frame being decoded.
struct MuxBatchMsg {
  std::vector<MuxItem> items;

  void EncodeInto(BufWriter& w) const;
  static MuxBatchMsg DecodeFrom(BufReader& r);
};

/// One register's flush request inside a node-level shared FLUSH round
/// (docs/ARCHITECTURE.md, "Shared FLUSH rounds"): the label the register
/// is about to use and the pool it drains.
struct FlushItem {
  std::uint64_t register_id = 0;
  OpLabel label = 0;
  OpScope scope = OpScope::kRead;

  void EncodeInto(BufWriter& w) const;
  static FlushItem DecodeFrom(BufReader& r);

  friend bool operator==(const FlushItem&, const FlushItem&) = default;
};

/// One FLUSH probe for a whole batch window: every register that joined
/// the window contributes a FlushItem, and a single ack from a server
/// proves FIFO drain for all of them at once, because multiplexed
/// registers share ONE FIFO channel per client-server pair. Like
/// MuxBatch, a malformed element rejects the whole frame.
struct NodeFlushMsg {
  std::vector<FlushItem> items;

  void EncodeInto(BufWriter& w) const;
  static NodeFlushMsg DecodeFrom(BufReader& r);
};

/// Reflected node-level flush probe. An honest server echoes the item
/// vector verbatim (the per-register FLUSH_ACK is a pure echo too); a
/// Byzantine server may equivocate labels per item, which the client's
/// per-register stale-ack filtering absorbs.
struct NodeFlushAckMsg {
  std::vector<FlushItem> items;

  void EncodeInto(BufWriter& w) const;
  static NodeFlushAckMsg DecodeFrom(BufReader& r);
};

using Message = std::variant<
    GetTsMsg, TsReplyMsg, WriteMsg, WriteReplyMsg, ReadMsg, ReplyMsg,
    CompleteReadMsg, FlushMsg, FlushAckMsg,
    AbdReadMsg, AbdReadReplyMsg, AbdWriteMsg, AbdWriteAckMsg, AbdGetTsMsg,
    AbdTsReplyMsg,
    BuGetTsMsg, BuTsReplyMsg, BuWriteMsg, BuWriteAckMsg, BuReadMsg,
    BuReadReplyMsg,
    NqGetTsMsg, NqTsReplyMsg, NqWriteMsg, NqWriteAckMsg, NqReadMsg,
    NqReadReplyMsg, MuxMsg, MuxBatchMsg, NodeFlushMsg, NodeFlushAckMsg>;

/// Frame codec. Encode never fails; Decode fails on unknown type bytes,
/// truncation, implausible lengths, or trailing garbage. Decode is
/// dispatched through a tag-indexed table built from the per-type
/// DecodeFrom entries — adding a message type means adding a struct, its
/// codec members, a tag, and a line in the variant; there is no switch
/// to keep in sync.
void EncodeMessageInto(const Message& message, BufWriter& w);
[[nodiscard]] Bytes EncodeMessage(const Message& message);
[[nodiscard]] Result<Message> DecodeMessage(BytesView frame);

/// The MuxMsg fast path: frame an already-encoded inner message in
/// place. Byte-identical to EncodeMessage(Message(MuxMsg{id, inner}))
/// with a single exact-size buffer and no second encode of the inner
/// payload.
[[nodiscard]] Bytes EncodeMuxEnvelope(std::uint64_t register_id,
                                      BytesView inner);

/// The MuxBatchMsg fast path — the batching counterpart of
/// EncodeMuxEnvelope. Already-encoded inner frames stream into one
/// pooled buffer as they are produced; the count prefix is patched when
/// the frame is taken, so there is no second encode and no intermediate
/// item vector. Take() is byte-identical to
/// EncodeMessage(Message(MuxBatchMsg{items})) for the same item
/// sequence and resets the builder for the next frame.
class MuxBatchBuilder {
 public:
  void Add(std::uint64_t register_id, BytesView inner);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  [[nodiscard]] Bytes Take();

 private:
  BufWriter writer_;
  std::uint32_t count_ = 0;
};

/// Human-readable tag, for traces and test diagnostics.
[[nodiscard]] std::string MessageTypeName(const Message& message);

}  // namespace sbft
