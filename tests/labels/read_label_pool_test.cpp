// Tests for the bounded read-label pool bookkeeping (Figure 3 substrate).
#include "labels/read_label_pool.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sbft {
namespace {

TEST(ReadLabelPool, CandidateDiffersFromLast) {
  ReadLabelPool pool(5, 3);
  for (int i = 0; i < 10; ++i) {
    ReadLabel candidate = pool.PickCandidate();
    EXPECT_NE(candidate, pool.last());
    EXPECT_LT(candidate, pool.n_labels());
    pool.SetLast(candidate);
  }
}

TEST(ReadLabelPool, PendingBookkeeping) {
  ReadLabelPool pool(4, 2);
  EXPECT_EQ(pool.PendingCount(0), 0u);
  pool.MarkPending(0, 0);
  pool.MarkPending(2, 0);
  pool.MarkPending(2, 1);
  EXPECT_EQ(pool.PendingCount(0), 2u);
  EXPECT_EQ(pool.PendingCount(1), 1u);
  EXPECT_TRUE(pool.IsPending(2, 0));
  pool.ClearPending(2, 0);
  EXPECT_FALSE(pool.IsPending(2, 0));
  EXPECT_EQ(pool.PendingCount(0), 1u);
}

TEST(ReadLabelPool, ClearPendingToleratesGarbageCoordinates) {
  // A REPLY/FLUSH_ACK forged by a Byzantine server (or corrupted in the
  // channel) may carry arbitrary server/label indices; clearing must be
  // a harmless no-op, never UB.
  ReadLabelPool pool(3, 2);
  pool.ClearPending(999, 0);
  pool.ClearPending(0, 999);
  pool.ClearPending(12345, 67890);
  EXPECT_EQ(pool.PendingCount(0), 0u);
}

TEST(ReadLabelPool, CorruptThenSanitizeRestoresInvariants) {
  Rng rng(41);
  ReadLabelPool pool(6, 4);
  for (int round = 0; round < 100; ++round) {
    pool.Corrupt(rng);
    pool.SanitizeState();
    EXPECT_LT(pool.last(), pool.n_labels());
    ReadLabel candidate = pool.PickCandidate();
    EXPECT_LT(candidate, pool.n_labels());
    EXPECT_NE(candidate, pool.last());
    for (ReadLabel l = 0; l < pool.n_labels(); ++l) {
      EXPECT_LE(pool.PendingCount(l), pool.n_servers());
    }
  }
}

TEST(ReadLabelPool, MinimumPoolOfTwoAlternates) {
  ReadLabelPool pool(1, 2);
  ReadLabel first = pool.PickCandidate();
  pool.SetLast(first);
  ReadLabel second = pool.PickCandidate();
  EXPECT_NE(first, second);
  pool.SetLast(second);
  EXPECT_EQ(pool.PickCandidate(), first);
}

TEST(ReadLabelPool, RejectsDegenerateShapes) {
  EXPECT_THROW(ReadLabelPool(0, 2), InvariantViolation);
  EXPECT_THROW(ReadLabelPool(3, 1), InvariantViolation);
}

}  // namespace
}  // namespace sbft
