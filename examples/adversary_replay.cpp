// Watch Theorem 1 happen: replays the lower-bound proof's adversarial
// execution against a TM_1R register at n = 5f, then runs the identical
// attack at n = 5f+1 where it provably fails.
//
//   $ ./build/examples/adversary_replay
#include <cstdio>
#include <string>

#include "baselines/lower_bound_replay.hpp"

using namespace sbft;

namespace {

void RunOne(std::uint32_t f, std::uint32_t extra) {
  ReplayOptions options;
  options.f = f;
  options.extra_correct = extra;
  const std::uint32_t n = 5 * f + extra;
  auto result = RunTheorem1Replay(options);
  std::printf("  n=%2u (=5f%s)  f=%u : ", n, extra ? "+1" : "  ", f);
  if (!result.all_ops_completed) {
    std::printf("schedule stalled (unexpected)\n");
    return;
  }
  std::printf("r1=%-12s r2=%-12s -> %s\n",
              std::string(result.r1_value.begin(), result.r1_value.end())
                  .c_str(),
              std::string(result.r2_value.begin(), result.r2_value.end())
                  .c_str(),
              result.violated() ? "REGULARITY VIOLATED" : "regular");
  if (result.violated()) {
    for (const std::string& violation : result.report.violations) {
      std::printf("      %s\n", violation.c_str());
    }
  }
}

}  // namespace

int main() {
  std::printf(
      "Theorem 1 replay: the proof's schedule (w0, w1, r1, w2, r2) with a\n"
      "replaying Byzantine group, a corrupted server group planted with\n"
      "ts2, and scripted slow channels. Expected: r1 must return v1 and\n"
      "r2 must return v2; with n = 5f both reads face the same timestamp\n"
      "multiset and the deterministic decision gets one of them wrong.\n\n");

  std::printf("impossible setting (n = 5f):\n");
  for (std::uint32_t f = 1; f <= 4; ++f) RunOne(f, 0);

  std::printf("\ntight bound (n = 5f+1): the same attack fails\n");
  for (std::uint32_t f = 1; f <= 4; ++f) RunOne(f, 1);
  return 0;
}
