// The concurrent workload driver itself: determinism, completeness of
// recording, stabilization-point detection.
#include "spec/workload.hpp"

#include <gtest/gtest.h>

namespace sbft {
namespace {

Deployment::Options BaseOptions(std::uint64_t seed) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = seed;
  options.n_clients = 2;
  return options;
}

TEST(Workload, RecordsEveryOperationOnce) {
  Deployment deployment(BaseOptions(11));
  WorkloadOptions workload;
  workload.ops_per_client = 12;
  workload.seed = 3;
  auto result = RunConcurrentWorkload(deployment, workload);
  ASSERT_TRUE(result.all_completed);
  EXPECT_EQ(result.history.size(), 24u);  // 12 ops x 2 clients
}

TEST(Workload, DeterministicGivenSeeds) {
  auto run_once = [] {
    Deployment deployment(BaseOptions(12));
    WorkloadOptions workload;
    workload.ops_per_client = 10;
    workload.seed = 5;
    auto result = RunConcurrentWorkload(deployment, workload);
    std::vector<std::tuple<int, std::uint32_t, VirtualTime, VirtualTime,
                           Bytes>>
        trace;
    for (const auto& op : result.history.ops()) {
      trace.emplace_back(static_cast<int>(op.kind), op.client,
                         op.invoked_at, op.returned_at, op.value);
    }
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Workload, WriteValuesAreUnique) {
  Deployment deployment(BaseOptions(13));
  WorkloadOptions workload;
  workload.ops_per_client = 15;
  workload.write_fraction = 1.0;
  workload.seed = 7;
  auto result = RunConcurrentWorkload(deployment, workload);
  std::set<Bytes> values;
  for (const auto& op : result.history.ops()) {
    ASSERT_EQ(op.kind, OpRecord::Kind::kWrite);
    EXPECT_TRUE(values.insert(op.value).second);
  }
}

TEST(Workload, FirstWriteDoneMatchesEarliestOkWrite) {
  Deployment deployment(BaseOptions(14));
  WorkloadOptions workload;
  workload.ops_per_client = 10;
  workload.seed = 9;
  auto result = RunConcurrentWorkload(deployment, workload);
  VirtualTime earliest = kTimeForever;
  for (const auto& op : result.history.ops()) {
    if (op.kind == OpRecord::Kind::kWrite &&
        op.result == OpRecord::Result::kOk) {
      earliest = std::min(earliest, op.returned_at);
    }
  }
  EXPECT_EQ(result.first_write_done, earliest);
}

TEST(Workload, ReadOnlyWorkloadHasNoStabilizationPoint) {
  Deployment deployment(BaseOptions(15));
  WorkloadOptions workload;
  workload.ops_per_client = 5;
  workload.write_fraction = 0.0;
  workload.seed = 11;
  auto result = RunConcurrentWorkload(deployment, workload);
  ASSERT_TRUE(result.all_completed);
  EXPECT_EQ(result.first_write_done, kTimeForever);
}

TEST(Workload, OperationsGenuinelyInterleave) {
  // With two clients and short think times, some operations from
  // different clients must overlap in virtual time.
  Deployment deployment(BaseOptions(16));
  WorkloadOptions workload;
  workload.ops_per_client = 20;
  workload.max_think_time = 2;
  workload.seed = 13;
  auto result = RunConcurrentWorkload(deployment, workload);
  bool overlap = false;
  const auto& ops = result.history.ops();
  for (std::size_t i = 0; i < ops.size() && !overlap; ++i) {
    for (std::size_t j = 0; j < ops.size(); ++j) {
      if (ops[i].client != ops[j].client &&
          ops[i].ConcurrentWith(ops[j])) {
        overlap = true;
        break;
      }
    }
  }
  EXPECT_TRUE(overlap);
}

}  // namespace
}  // namespace sbft
