#include "runtime/register_cluster.hpp"

#include <algorithm>
#include <future>

#include "common/error.hpp"

namespace sbft {
namespace {

/// Register hosting logical client `i` in multiplex mode. Offset by one
/// so no logical client lands on register 0 (kept free for tests that
/// poke the namespace directly).
RegisterId RegisterOf(std::size_t client) { return client + 1; }

}  // namespace

ThreadCluster::Options RegisterCluster::ClusterOptions(const Options& options) {
  ThreadCluster::Options cluster_options;
  cluster_options.use_tcp = options.use_tcp;
  cluster_options.reactor_threads = options.reactor_threads;
  cluster_options.seed = options.seed;
  cluster_options.shaping = options.shaping;
  return cluster_options;
}

RegisterCluster::RegisterCluster(const Options& options)
    : config_(options.config),
      cluster_(ClusterOptions(options)),
      op_timeout_(options.op_timeout),
      n_clients_(options.n_clients) {
  config_.Validate();
  std::vector<NodeId>& server_ids = server_ids_;
  for (std::size_t i = 0; i < config_.n; ++i) {
    std::unique_ptr<Automaton> server;
    if (options.multiplex) {
      MuxServer::ServerFactory factory;
      if (auto it = options.byzantine.find(i);
          it != options.byzantine.end()) {
        // Every register of a Byzantine replica misbehaves.
        factory = [strategy = it->second, config = config_, i,
                   seed = options.seed * 131 + i](RegisterId) {
          return MakeByzantineServer(strategy, config, i, seed);
        };
      }
      server = std::make_unique<MuxServer>(config_, i, /*max_registers=*/
                                           std::max<std::size_t>(
                                               1024, n_clients_ + 1),
                                           std::move(factory));
    } else if (auto it = options.byzantine.find(i);
               it != options.byzantine.end()) {
      server = MakeByzantineServer(it->second, config_, i,
                                   options.seed * 131 + i);
    } else {
      server = std::make_unique<RegisterServer>(config_, i);
    }
    server_ids.push_back(cluster_.AddNode(std::move(server)));
  }
  if (options.multiplex) {
    MuxBatchOptions batch;
    if (options.batch_max_ops > 0) {
      batch.max_ops = options.batch_max_ops;
      batch.max_delay = static_cast<VirtualTime>(options.batch_max_delay_us);
      batch.shared_flush = options.shared_flush;
      batched_ = true;
      shared_flush_ = options.shared_flush;
    }
    auto client = std::make_unique<MuxClient>(
        config_, server_ids, static_cast<ClientId>(config_.n),
        /*max_registers=*/std::max<std::size_t>(1024, n_clients_ + 1), batch);
    mux_client_ = client.get();
    mux_client_id_ = cluster_.AddNode(std::move(client));
  } else {
    for (std::size_t i = 0; i < options.n_clients; ++i) {
      auto client = std::make_unique<RegisterClient>(
          config_, server_ids, static_cast<ClientId>(config_.n + i));
      clients_.push_back(client.get());
      client_ids_.push_back(cluster_.AddNode(std::move(client)));
    }
  }
}

void RegisterCluster::AsyncWrite(std::size_t client, Value value,
                                 WriteCallback callback) {
  if (mux_client_ != nullptr) {
    // Always a mailbox post, even from the mux node's own thread: the
    // round-trip makes the mailbox an op accumulator, so follow-ups
    // submitted by one drain's completion callbacks all start together
    // in the next drain — one wide shared-flush window. Starting them
    // in place would close a small window at the end of every receive
    // burst, multiplying NodeFlush rounds on the TCP backend (measured
    // ~25% worse at c256).
    cluster_.PostToNode(mux_client_id_,
                        [this, client, value = std::move(value),
                         callback = std::move(callback)]() mutable {
                          mux_client_->StartWrite(RegisterOf(client),
                                                  std::move(value),
                                                  std::move(callback));
                        });
    return;
  }
  // Fast path: a follow-up op submitted from a completion callback (the
  // closed-loop shape) already runs on the owning node's thread, so it
  // can start in place instead of paying a std::function allocation and
  // a mailbox round-trip. Safe because RegisterClient goes idle before
  // invoking the callback; no batching window exists on this path.
  if (cluster_.OnNodeThread(client_ids_[client])) {
    clients_[client]->StartWrite(std::move(value), std::move(callback));
    return;
  }
  cluster_.PostToNode(client_ids_[client],
                      [this, client, value = std::move(value),
                       callback = std::move(callback)]() mutable {
                        clients_[client]->StartWrite(std::move(value),
                                                     std::move(callback));
                      });
}

void RegisterCluster::AsyncRead(std::size_t client, ReadCallback callback) {
  if (mux_client_ != nullptr) {
    // Mailbox post even from the mux node's thread — see AsyncWrite.
    cluster_.PostToNode(mux_client_id_,
                        [this, client,
                         callback = std::move(callback)]() mutable {
                          mux_client_->StartRead(RegisterOf(client),
                                                 std::move(callback));
                        });
    return;
  }
  if (cluster_.OnNodeThread(client_ids_[client])) {
    clients_[client]->StartRead(std::move(callback));
    return;
  }
  cluster_.PostToNode(client_ids_[client],
                      [this, client, callback = std::move(callback)]() mutable {
                        clients_[client]->StartRead(std::move(callback));
                      });
}

void RegisterCluster::CorruptServer(std::size_t server_index,
                                    std::uint64_t seed) {
  SBFT_ASSERT(server_index < server_ids_.size());
  const NodeId node = server_ids_[server_index];
  cluster_.PostToNode(node, [this, node, seed] {
    Rng rng(seed);
    cluster_.node(node).CorruptState(rng);
  });
}

WriteOutcome RegisterCluster::Write(std::size_t client, Value value) {
  auto done = std::make_shared<std::promise<WriteOutcome>>();
  auto future = done->get_future();
  AsyncWrite(client, std::move(value), [done](const WriteOutcome& outcome) {
    done->set_value(outcome);
  });
  if (future.wait_for(op_timeout_) != std::future_status::ready) {
    return WriteOutcome{};  // kFailed
  }
  return future.get();
}

ReadOutcome RegisterCluster::Read(std::size_t client) {
  auto done = std::make_shared<std::promise<ReadOutcome>>();
  auto future = done->get_future();
  AsyncRead(client, [done](const ReadOutcome& outcome) {
    done->set_value(outcome);
  });
  if (future.wait_for(op_timeout_) != std::future_status::ready) {
    return ReadOutcome{};  // kFailed
  }
  return future.get();
}

}  // namespace sbft
