#include "net/datalink_shim.hpp"

#include "common/error.hpp"

namespace sbft {

namespace {
constexpr int kPumpTimer = 0x0D71;
}  // namespace

// The inner automaton's view of the network: frames are handed to the
// per-peer data-link sender instead of the raw channel.
class DatalinkShim::InnerEndpoint final : public IEndpoint {
 public:
  explicit InnerEndpoint(DatalinkShim& shim) : shim_(shim) {}

  void Send(NodeId dst, Bytes frame) override {
    SBFT_ASSERT(shim_.outer_ != nullptr);
    shim_.LinkTo(dst, *shim_.outer_).sender->Submit(std::move(frame));
    shim_.ArmTimer(*shim_.outer_);
  }
  void SetTimer(VirtualTime delay, int timer_id) override {
    // Inner timer ids must not collide with the pump timer.
    SBFT_ASSERT(timer_id != kPumpTimer);
    shim_.outer_->SetTimer(delay, timer_id);
  }
  [[nodiscard]] VirtualTime Now() const override {
    return shim_.outer_->Now();
  }
  [[nodiscard]] NodeId self() const override { return shim_.outer_->self(); }
  Rng& rng() override { return shim_.outer_->rng(); }

 private:
  DatalinkShim& shim_;
};

DatalinkShim::~DatalinkShim() = default;

DatalinkShim::DatalinkShim(std::unique_ptr<Automaton> inner,
                           std::size_t capacity, std::vector<NodeId> peers)
    : inner_(std::move(inner)),
      capacity_(capacity),
      peers_(std::move(peers)),
      inner_endpoint_(std::make_unique<InnerEndpoint>(*this)) {
  SBFT_ASSERT(inner_ != nullptr);
}

DatalinkShim::Link& DatalinkShim::LinkTo(NodeId peer, IEndpoint& endpoint) {
  auto it = links_.find(peer);
  if (it == links_.end()) {
    Link link;
    link.sender = std::make_unique<DataLinkSender>(capacity_);
    link.receiver = std::make_unique<DataLinkReceiver>(
        capacity_, [this, peer](Bytes inner_frame) {
          // Deliver upward on the inner endpoint's thread of control.
          inner_->OnFrame(peer, inner_frame, *inner_endpoint_);
        });
    it = links_.emplace(peer, std::move(link)).first;
  }
  (void)endpoint;
  return it->second;
}

void DatalinkShim::OnStart(IEndpoint& endpoint) {
  outer_ = &endpoint;
  inner_->OnStart(*inner_endpoint_);
  ArmTimer(endpoint);
}

void DatalinkShim::OnFrame(NodeId from, BytesView frame,
                           IEndpoint& endpoint) {
  outer_ = &endpoint;
  auto decoded = DlFrame::Decode(frame);
  if (!decoded) return;  // garbage on the weak channel
  Link& link = LinkTo(from, endpoint);
  if (decoded->kind == DlFrame::Kind::kData) {
    if (auto ack = link.receiver->OnFrame(frame)) {
      endpoint.Send(from, std::move(*ack));
    }
  } else {
    link.sender->OnFrame(frame);
  }
  ArmTimer(endpoint);
}

void DatalinkShim::OnTimer(int timer_id, IEndpoint& endpoint) {
  outer_ = &endpoint;
  if (timer_id != kPumpTimer) {
    inner_->OnTimer(timer_id, *inner_endpoint_);
    return;
  }
  timer_armed_ = false;
  Pump(endpoint);
}

void DatalinkShim::Pump(IEndpoint& endpoint) {
  bool any_active = false;
  for (auto& [peer, link] : links_) {
    if (auto frame = link.sender->Tick()) {
      endpoint.Send(peer, std::move(*frame));
      any_active = true;
    }
  }
  if (any_active) ArmTimer(endpoint);
}

void DatalinkShim::ArmTimer(IEndpoint& endpoint) {
  if (timer_armed_) return;
  bool any_busy = false;
  for (auto& [peer, link] : links_) {
    if (!link.sender->idle()) any_busy = true;
  }
  if (!any_busy) return;
  timer_armed_ = true;
  endpoint.SetTimer(1, kPumpTimer);
}

void DatalinkShim::CorruptState(Rng& rng) {
  inner_->CorruptState(rng);
  for (auto& [peer, link] : links_) {
    link.sender->CorruptState(rng);
    link.receiver->CorruptState(rng);
  }
}

}  // namespace sbft
