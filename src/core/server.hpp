// The correct-server automaton (Figures 1(b), 2(b), 3(b)).
//
// Per the paper, a server keeps:
//   * v_i, ts_i            — current register copy and its timestamp;
//   * old_vals_i[]         — sliding window of the last W written values
//                            (W = history_window, paper uses n);
//   * running_read_i       — (reader, label) pairs of reads in progress,
//                            so concurrent writes are forwarded to them.
//
// All of this state is fair game for transient corruption; CorruptState
// overwrites every field with arbitrary (seeded) garbage, and every
// handler therefore sanitizes what it touches before use.
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "labels/labeling_system.hpp"
#include "net/message.hpp"
#include "sim/world.hpp"

namespace sbft {

class RegisterServer : public Automaton {
 public:
  RegisterServer(ProtocolConfig config, std::size_t server_index);

  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;
  void CorruptState(Rng& rng) override;

  // State inspection for tests and experiment harnesses.
  [[nodiscard]] const VersionedValue& current() const { return current_; }
  [[nodiscard]] const std::deque<VersionedValue>& old_vals() const {
    return old_vals_;
  }
  [[nodiscard]] std::size_t running_read_count() const {
    return running_reads_.size();
  }
  [[nodiscard]] std::size_t server_index() const { return index_; }

  /// Direct state override (used by scripted experiment setups that need
  /// a specific "corrupted" configuration, e.g. the Theorem 1 replay).
  void SetState(VersionedValue vv) {
    current_ = std::move(vv);
    reply_prefix_valid_ = false;
  }

 protected:
  // Handlers are virtual so Byzantine strategies can subclass and
  // selectively misbehave while inheriting honest behaviour elsewhere.
  virtual void HandleGetTs(NodeId from, const GetTsMsg& msg,
                           IEndpoint& endpoint);
  virtual void HandleWrite(NodeId from, const WriteMsg& msg,
                           IEndpoint& endpoint);
  virtual void HandleRead(NodeId from, const ReadMsg& msg,
                          IEndpoint& endpoint);
  virtual void HandleCompleteRead(NodeId from, const CompleteReadMsg& msg,
                                  IEndpoint& endpoint);
  virtual void HandleFlush(NodeId from, const FlushMsg& msg,
                           IEndpoint& endpoint);

  [[nodiscard]] const ProtocolConfig& config() const { return config_; }
  [[nodiscard]] const LabelingSystem& labels() const { return labels_; }

  /// (Re)encode reply_prefix_ from (current_, old_vals_). Every read
  /// reply between state changes is byte-identical except for the
  /// trailing reader op label, so the expensive part — the value plus
  /// one timestamp per history entry — is encoded once per state
  /// change instead of once per reader.
  void RebuildReplyPrefix();
  /// One reader's READ reply: the cached prefix plus their op label.
  [[nodiscard]] Bytes ReplyFrameFor(OpLabel label);

  ProtocolConfig config_;
  LabelingSystem labels_;
  std::size_t index_;

  VersionedValue current_;
  std::deque<VersionedValue> old_vals_;
  std::deque<std::pair<NodeId, OpLabel>> running_reads_;
  /// Encoded READ reply minus the trailing OpLabel; see
  /// RebuildReplyPrefix. Invalidated by every state mutation.
  Bytes reply_prefix_;
  bool reply_prefix_valid_ = false;
};

}  // namespace sbft
