// Unit tests for the fuzz machinery itself: token codec hardening,
// generator/runner determinism, and the shrinker's contract (the shrunk
// scenario still violates, and is no larger than the original).
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "fuzz/campaign.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"

namespace sbft::fuzz {
namespace {

TEST(FuzzToken, RoundTripsGeneratedScenarios) {
  Rng rng(7);
  GeneratorOptions options;
  options.allow_sub_resilience = true;
  for (int i = 0; i < 200; ++i) {
    const Scenario scenario = GenerateScenario(rng, options);
    const std::string token = EncodeToken(scenario);
    auto decoded = DecodeToken(token);
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    EXPECT_EQ(decoded.value(), scenario) << token;
    EXPECT_EQ(EncodeToken(decoded.value()), token);
  }
}

TEST(FuzzToken, RejectsTampering) {
  Rng rng(8);
  const Scenario scenario = GenerateScenario(rng, {});
  const std::string token = EncodeToken(scenario);

  EXPECT_FALSE(DecodeToken("").ok());
  EXPECT_FALSE(DecodeToken("SBFZ1:").ok());
  EXPECT_FALSE(DecodeToken("XXXX:" + token.substr(6)).ok());
  EXPECT_FALSE(DecodeToken(token + "00").ok());          // trailing bytes
  EXPECT_FALSE(DecodeToken(token.substr(0, 40)).ok());   // truncation
  EXPECT_FALSE(DecodeToken(token.substr(0, 41)).ok());   // odd hex length

  // Flip one payload nibble: the checksum must catch it.
  std::string corrupted = token;
  const std::size_t pos = 10;
  corrupted[pos] = corrupted[pos] == '0' ? '1' : '0';
  EXPECT_FALSE(DecodeToken(corrupted).ok());

  std::string nonhex = token;
  nonhex[12] = 'z';
  EXPECT_FALSE(DecodeToken(nonhex).ok());
}

TEST(FuzzGenerator, IsDeterministicInTheRngSeed) {
  GeneratorOptions options;
  options.allow_sub_resilience = true;
  Rng a(99), b(99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(GenerateScenario(a, options), GenerateScenario(b, options));
  }
}

TEST(FuzzGenerator, RespectsTopologyOptions) {
  Rng rng(11);
  GeneratorOptions safe;  // defaults: sub-resilience off
  for (int i = 0; i < 200; ++i) {
    const Scenario s = GenerateScenario(rng, safe);
    EXPECT_FALSE(s.sub_resilient());
    EXPECT_GT(s.n(), 5 * s.f);
    EXPECT_LE(s.f, safe.max_f);
    EXPECT_LE(s.byz_servers.size(), s.f);
  }
}

TEST(FuzzRunner, SameScenarioSameOutcome) {
  Rng rng(12);
  GeneratorOptions options;
  options.allow_sub_resilience = true;
  for (int i = 0; i < 10; ++i) {
    const Scenario scenario = GenerateScenario(rng, options);
    const RunOutcome first = RunScenario(scenario);
    const RunOutcome second = RunScenario(scenario);
    EXPECT_EQ(first.report.violations, second.report.violations);
    EXPECT_EQ(first.stabilized_from, second.stabilized_from);
    EXPECT_EQ(first.checked_reads, second.checked_reads);
    EXPECT_EQ(first.history.size(), second.history.size());
  }
}

TEST(FuzzRunner, SafeTopologiesStayRegular) {
  // A miniature of the CI campaign: every safe-topology scenario from
  // this seed must check clean. (The 200-run acceptance campaign runs
  // in CI via sbft_fuzz --smoke; this keeps a fast core in ctest.)
  Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    const Scenario scenario = GenerateScenario(rng, {});
    const RunOutcome outcome = RunScenario(scenario);
    EXPECT_FALSE(outcome.violation())
        << scenario.Summary() << ": " << outcome.report.violations.front()
        << "\n  repro: " << EncodeToken(scenario);
  }
}

// Find one sub-resilient violation by campaign (bounded work, seeded).
std::optional<Scenario> FindSubResilienceViolation() {
  CampaignOptions options;
  options.seed = 1;
  options.runs = 200;
  options.generator.allow_sub_resilience = true;
  options.do_shrink = false;
  const CampaignResult result = RunCampaign(options);
  if (result.violations.empty()) return std::nullopt;
  return result.violations.front().original;
}

TEST(FuzzShrink, PreservesViolationAndNeverGrows) {
  const auto found = FindSubResilienceViolation();
  // Theorem 1 says violations exist at n=5f; the generator is tuned to
  // find one within this budget, and losing that ability is itself a
  // regression worth failing on.
  ASSERT_TRUE(found.has_value())
      << "campaign found no n=5f violation in 200 runs";
  const Scenario original = *found;
  ASSERT_TRUE(RunScenario(original).violation());

  const ShrinkResult shrunk = Shrink(original);
  EXPECT_TRUE(RunScenario(shrunk.scenario).violation())
      << "shrinker returned a non-violating scenario";
  EXPECT_LE(shrunk.scenario.ops_per_client, original.ops_per_client);
  EXPECT_LE(shrunk.scenario.n_clients, original.n_clients);
  EXPECT_LE(shrunk.scenario.faults.size(), original.faults.size());
  EXPECT_LE(shrunk.scenario.byz_servers.size(), original.byz_servers.size());
  EXPECT_LE(shrunk.scenario.slowdowns.size(), original.slowdowns.size());
  EXPECT_LE(shrunk.attempts, ShrinkOptions{}.max_runs);

  // The whole point: the shrunk token replays to the same verdict.
  auto decoded = DecodeToken(EncodeToken(shrunk.scenario));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(RunScenario(decoded.value()).violation());
}

TEST(FuzzCampaign, CuratedCorpusIsNormalizedSafeAndDiverse) {
  const auto corpus = CuratedCorpus();
  ASSERT_GE(corpus.size(), 10u);
  bool has_f2 = false, has_byz_client = false, has_midrun_fault = false;
  for (const auto& entry : corpus) {
    Scenario normalized = entry.scenario;
    normalized.Normalize();
    EXPECT_EQ(normalized, entry.scenario)
        << entry.name << " is not stored in canonical form";
    EXPECT_FALSE(entry.scenario.sub_resilient()) << entry.name;
    has_f2 |= entry.scenario.f >= 2;
    has_byz_client |= !entry.scenario.byz_clients.empty();
    for (const auto& fault : entry.scenario.faults) {
      has_midrun_fault |= fault.at > 0;
    }
  }
  EXPECT_TRUE(has_f2);
  EXPECT_TRUE(has_byz_client);
  EXPECT_TRUE(has_midrun_fault);
}

}  // namespace
}  // namespace sbft::fuzz
