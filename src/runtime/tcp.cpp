#include "runtime/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/buffer_pool.hpp"
#include "common/error.hpp"

namespace sbft {
namespace {

constexpr std::uint32_t kMaxTcpFrame = 16u << 20;
constexpr std::size_t kReadChunk = 128u << 10;
constexpr int kMaxIov = 64;

std::uint32_t LoadU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void StoreU32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// The fd is closed by whichever of the reactor-side removal and
/// TcpBus::Stop gets there first; the flag makes that race benign.
void CloseOnce(std::atomic<bool>& fd_closed, int fd) {
  if (fd >= 0 && !fd_closed.exchange(true)) ::close(fd);
}

enum class FlushResult : std::uint8_t { kDrained, kBlocked, kError };

}  // namespace

TcpBus::TcpBus(DeliverFn deliver, Options options)
    : deliver_(std::move(deliver)),
      options_(options),
      reactor_(options.reactor_threads) {}

TcpBus::~TcpBus() { Stop(); }

std::uint16_t TcpBus::AddNode(NodeId node) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  SBFT_ASSERT(fd >= 0);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  SBFT_ASSERT(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0);
  SBFT_ASSERT(::listen(fd, 256) == 0);
  SetNonBlocking(fd);

  socklen_t len = sizeof(addr);
  SBFT_ASSERT(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                            &len) == 0);
  MutexLock lock(mutex_);
  auto listener = std::make_unique<Listener>();
  listener->fd = fd;
  listener->port = ntohs(addr.sin_port);
  const std::uint16_t port = listener->port;
  listeners_[node] = std::move(listener);
  if (tx_.size() <= node) tx_.resize(node + 1);
  return port;
}

void TcpBus::Start() {
  running_.store(true);
  reactor_.Start();
  MutexLock lock(mutex_);
  for (auto& [node, listener] : listeners_) {
    // Level-triggered accept; the handler drains until EAGAIN anyway.
    reactor_.Add(listener->fd, EPOLLIN,
                 [this, id = node, fd = listener->fd](std::uint32_t) {
                   AcceptEvent(id, fd);
                 });
  }
}

void TcpBus::AcceptEvent(NodeId node, int listen_fd) {
  while (true) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or the listener is going down
    SetNoDelay(fd);
    auto peer = std::make_shared<PeerConn>();
    peer->fd = fd;
    peer->dst = node;
    {
      MutexLock lock(mutex_);
      peers_.push_back(peer);
    }
    if (!reactor_.Add(fd, EPOLLIN | EPOLLRDHUP | EPOLLET,
                      [this, peer](std::uint32_t events) {
                        ReadEvent(peer, events);
                      })) {
      CloseOnce(peer->fd_closed, fd);
    }
  }
}

bool TcpBus::ParseFrames(PeerConn& peer, std::vector<Delivery>& batch) {
  const std::uint8_t* data = peer.inbuf.data();
  while (peer.len - peer.off >= 8) {
    const std::uint32_t length = LoadU32(data + peer.off);
    const NodeId src = LoadU32(data + peer.off + 4);
    if (length > kMaxTcpFrame) return false;  // malformed: drop connection
    if (peer.len - peer.off - 8 < length) break;  // torn frame: wait
    Bytes frame = FramePool().Acquire();
    frame.assign(data + peer.off + 8, data + peer.off + 8 + length);
    batch.push_back(Delivery{src, std::move(frame)});
    peer.off += 8 + static_cast<std::size_t>(length);
  }
  if (peer.off == peer.len) {
    peer.off = 0;
    peer.len = 0;
  }
  return true;
}

void TcpBus::ReadEvent(const std::shared_ptr<PeerConn>& peer,
                       std::uint32_t events) {
  if (peer->closed) return;
  std::vector<Delivery> batch;
  bool drop = false;
  while (true) {
    // Make room for the next chunk: slide any partial frame to the
    // front, then grow the capacity buffer if still needed.
    if (peer->off > 0) {
      std::memmove(peer->inbuf.data(), peer->inbuf.data() + peer->off,
                   peer->len - peer->off);
      peer->len -= peer->off;
      peer->off = 0;
    }
    if (peer->inbuf.size() - peer->len < kReadChunk) {
      peer->inbuf.resize(peer->len + kReadChunk);
    }
    const ssize_t n = ::recv(peer->fd, peer->inbuf.data() + peer->len,
                             peer->inbuf.size() - peer->len, 0);
    if (n > 0) {
      peer->len += static_cast<std::size_t>(n);
      if (!ParseFrames(*peer, batch)) {
        drop = true;
        break;
      }
      continue;  // edge-triggered: drain until EAGAIN
    }
    if (n == 0) {
      drop = true;  // peer closed
      break;
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) drop = true;
    break;
  }
  if (!batch.empty()) deliver_(peer->dst, std::move(batch));
  if (drop || (events & (EPOLLERR | EPOLLHUP))) ClosePeer(peer);
}

void TcpBus::ClosePeer(const std::shared_ptr<PeerConn>& peer) {
  if (peer->closed) return;
  peer->closed = true;
  reactor_.RemoveAndClose(peer->fd, [peer] {
    peer->fd_closed.store(true);  // RemoveAndClose performed the close
  });
}

std::shared_ptr<TcpBus::Connection> TcpBus::Connect(NodeId src, NodeId dst) {
  std::uint16_t port = 0;
  {
    MutexLock lock(mutex_);
    auto it = listeners_.find(dst);
    if (it == listeners_.end()) return nullptr;
    port = it->second->port;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;  // degraded: the caller's op fails/retries cleanly
  }
  SetNoDelay(fd);
  SetNonBlocking(fd);
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  conn->src = src;
  conn->dst = dst;
  // Outgoing connections carry no inbound protocol traffic; readability
  // means EOF or reset, which the reactor turns into a dead connection.
  if (!reactor_.Add(fd, EPOLLIN | EPOLLRDHUP | EPOLLET,
                    [this, conn](std::uint32_t events) {
                      OutgoingEvent(conn, events);
                    })) {
    ::close(fd);
    return nullptr;
  }
  return conn;
}

bool TcpBus::Send(NodeId src, NodeId dst, BytesView frame) {
  if (!running_.load(std::memory_order_acquire)) return false;
  if (src >= tx_.size()) return false;
  Tx& tx = tx_[src];
  std::shared_ptr<Connection> conn;
  if (auto it = tx.conns.find(dst); it != tx.conns.end()) {
    conn = it->second;
    bool dead;
    {
      MutexLock lock(conn->mutex);
      dead = conn->dead;
    }
    if (dead) conn = nullptr;  // lazily reconnect below
  }
  if (!conn) {
    conn = Connect(src, dst);
    if (!conn) {
      tx.conns.erase(dst);
      return false;
    }
    tx.conns[dst] = conn;
  }

  // Frame [len][src][payload] into a pooled buffer and queue it; the
  // bytes hit the wire on Flush (or via the reactor when backlogged).
  Bytes buf = FramePool().Acquire();
  buf.resize(8);
  StoreU32(buf.data(), static_cast<std::uint32_t>(frame.size()));
  StoreU32(buf.data() + 4, src);
  buf.insert(buf.end(), frame.begin(), frame.end());
  {
    MutexLock lock(conn->mutex);
    if (conn->dead) return false;
    if (conn->pending_bytes + buf.size() > options_.max_pending_bytes) {
      MarkDeadLocked(conn);  // peer stopped reading; degrade, don't buffer
      return false;
    }
    conn->pending_bytes += buf.size();
    conn->pending.push_back(std::move(buf));
  }
  if (!conn->in_dirty) {
    conn->in_dirty = true;
    tx.dirty.push_back(std::move(conn));
  }
  return true;
}

void TcpBus::Flush(NodeId src) {
  if (src >= tx_.size()) return;
  Tx& tx = tx_[src];
  for (auto& conn : tx.dirty) {
    conn->in_dirty = false;
    MutexLock lock(conn->mutex);
    if (conn->dead || conn->epollout_armed) continue;  // reactor's turn
    if (FlushLocked(conn) == static_cast<int>(FlushResult::kError)) {
      MarkDeadLocked(conn);
    }
  }
  tx.dirty.clear();
}

/// Returns a FlushResult as int (keeps the enum private to this TU).
int TcpBus::FlushLocked(const std::shared_ptr<Connection>& conn) {
  while (!conn->pending.empty()) {
    iovec iov[kMaxIov];
    int iovcnt = 0;
    for (auto it = conn->pending.begin();
         it != conn->pending.end() && iovcnt < kMaxIov; ++it, ++iovcnt) {
      const std::size_t skip = (iovcnt == 0) ? conn->front_offset : 0;
      iov[iovcnt].iov_base = it->data() + skip;
      iov[iovcnt].iov_len = it->size() - skip;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->epollout_armed) {
          conn->epollout_armed = true;
          reactor_.Modify(conn->fd,
                          EPOLLIN | EPOLLRDHUP | EPOLLOUT | EPOLLET);
        }
        return static_cast<int>(FlushResult::kBlocked);
      }
      return static_cast<int>(FlushResult::kError);  // EPIPE/ECONNRESET/...
    }
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0) {
      Bytes& front = conn->pending.front();
      const std::size_t avail = front.size() - conn->front_offset;
      if (left >= avail) {
        left -= avail;
        conn->pending_bytes -= front.size();
        conn->front_offset = 0;
        FramePool().Release(std::move(front));
        conn->pending.pop_front();
      } else {
        conn->front_offset += left;  // partial write: resume here
        left = 0;
      }
    }
  }
  return static_cast<int>(FlushResult::kDrained);
}

void TcpBus::OutgoingEvent(const std::shared_ptr<Connection>& conn,
                           std::uint32_t events) {
  MutexLock lock(conn->mutex);
  if (conn->dead) return;
  if (events & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP)) {
    std::uint8_t scratch[256];
    ssize_t n;
    while ((n = ::recv(conn->fd, scratch, sizeof(scratch), 0)) > 0) {
    }
    const bool reset =
        n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR);
    if (reset || (events & (EPOLLERR | EPOLLHUP))) {
      MarkDeadLocked(conn);
      return;
    }
  }
  if (events & EPOLLOUT) {
    conn->epollout_armed = false;
    const int result = FlushLocked(conn);
    if (result == static_cast<int>(FlushResult::kError)) {
      MarkDeadLocked(conn);
    } else if (result == static_cast<int>(FlushResult::kDrained)) {
      reactor_.Modify(conn->fd, EPOLLIN | EPOLLRDHUP | EPOLLET);
    }
  }
}

void TcpBus::MarkDeadLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  conn->dead = true;
  conn->pending.clear();
  conn->pending_bytes = 0;
  conn->front_offset = 0;
  connections_dropped_.fetch_add(1, std::memory_order_relaxed);
  // Wake anything blocked on the socket, then hand the close to the
  // owning reactor loop so no handler races its own fd being reused.
  // The lambda keeps the connection alive until the close has run.
  ::shutdown(conn->fd, SHUT_RDWR);
  reactor_.RemoveAndClose(conn->fd, [conn] { conn->fd_closed.store(true); });
}

void TcpBus::DropConnection(NodeId src, NodeId dst) {
  if (src >= tx_.size()) return;
  auto it = tx_[src].conns.find(dst);
  if (it == tx_[src].conns.end()) return;
  const std::shared_ptr<Connection> conn = it->second;
  MutexLock lock(conn->mutex);
  MarkDeadLocked(conn);
}

void TcpBus::Stop() {
  if (stopped_.exchange(true)) return;
  running_.store(false);
  reactor_.Stop();
  // Loops are joined and leftover removal commands ran inline; every
  // fd not yet closed through the reactor is closed here.
  MutexLock lock(mutex_);
  for (auto& [node, listener] : listeners_) {
    CloseOnce(listener->fd_closed, listener->fd);
  }
  for (auto& peer : peers_) CloseOnce(peer->fd_closed, peer->fd);
  for (auto& tx : tx_) {
    for (auto& [dst, conn] : tx.conns) CloseOnce(conn->fd_closed, conn->fd);
  }
}

}  // namespace sbft
