// Fixture: consistent two-level lock order, declared via the
// lock_order anchor idiom (annotation-only namespace-scope mutexes
// mapped to families by `anchor-for:` comments, exactly as
// src/common/thread_annotations.hpp does). Both the direct nesting in
// First() and the interprocedural nesting in Second() -> Helper()
// follow the declared outer -> inner direction, so the analyzer must
// report nothing.

#define ACQUIRED_BEFORE(...)
#define ACQUIRED_AFTER(...)

namespace sbft {

class Mutex {
 public:
  void lock();
  void unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mutex);
  ~MutexLock();
};

namespace lock_order {
inline Mutex kOuter;  // anchor-for: sbft::Widget::a_
inline Mutex kInner;  // anchor-for: sbft::Widget::b_
}  // namespace lock_order

class Widget {
 public:
  void First() {
    MutexLock outer(a_);
    MutexLock inner(b_);
    ++total_;
  }

  void Second() {
    MutexLock outer(a_);
    Helper();
  }

 private:
  void Helper() {
    MutexLock guard(b_);
    ++total_;
  }

  Mutex a_ ACQUIRED_BEFORE(lock_order::kInner);
  Mutex b_ ACQUIRED_AFTER(lock_order::kOuter);
  long total_ = 0;
};

}  // namespace sbft
