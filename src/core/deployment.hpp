// Test/bench harness: a World wired with n register servers (some
// possibly Byzantine) and a set of clients, plus synchronous operation
// helpers that drive the simulation until an operation completes.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/byzantine.hpp"
#include "core/client.hpp"
#include "core/config.hpp"
#include "core/server.hpp"
#include "sim/world.hpp"

namespace sbft {

class Deployment {
 public:
  struct Options {
    ProtocolConfig config;
    std::uint64_t seed = 1;
    std::unique_ptr<DelayPolicy> delay;  // default UniformDelay(1,10)
    /// Map server index -> strategy for Byzantine servers.
    std::map<std::size_t, ByzantineStrategy> byzantine;
    std::size_t n_clients = 1;
  };

  explicit Deployment(Options options);

  [[nodiscard]] World& world() { return world_; }
  [[nodiscard]] const ProtocolConfig& config() const { return config_; }
  [[nodiscard]] std::size_t n_clients() const { return clients_.size(); }

  [[nodiscard]] RegisterClient& client(std::size_t i) { return *clients_[i]; }
  [[nodiscard]] NodeId client_node(std::size_t i) const {
    return client_ids_[i];
  }
  [[nodiscard]] RegisterServer& server(std::size_t i) { return *servers_[i]; }
  [[nodiscard]] NodeId server_node(std::size_t i) const {
    return server_ids_[i];
  }
  [[nodiscard]] const std::vector<NodeId>& server_nodes() const {
    return server_ids_;
  }
  [[nodiscard]] bool is_byzantine(std::size_t i) const {
    return byzantine_.count(i) != 0;
  }

  /// Result of a synchronously driven operation; `completed` false means
  /// the event cap was reached first (the op may be genuinely blocked —
  /// itself an observable in adversarial experiments).
  template <typename Outcome>
  struct Driven {
    bool completed = false;
    Outcome outcome;
    VirtualTime invoked_at = 0;
    VirtualTime returned_at = 0;
    std::uint64_t frames_sent = 0;  // network frames during the op (all traffic)
  };

  Driven<WriteOutcome> Write(std::size_t client, Value value,
                             std::uint64_t max_events = 1'000'000);
  Driven<ReadOutcome> Read(std::size_t client,
                           std::uint64_t max_events = 1'000'000);

  // --- Transient-fault helpers (E2) -----------------------------------

  /// Corrupt the local state of every *correct* server (Byzantine ones
  /// are already adversarial).
  void CorruptAllCorrectServers();
  void CorruptServer(std::size_t i);
  void CorruptClient(std::size_t i);
  /// Plant garbage frames in every channel between clients and servers.
  void CorruptAllChannels(std::size_t frames_per_channel = 2);

 private:
  ProtocolConfig config_;
  World world_;
  std::map<std::size_t, ByzantineStrategy> byzantine_;
  std::vector<RegisterServer*> servers_;
  std::vector<NodeId> server_ids_;
  std::vector<RegisterClient*> clients_;
  std::vector<NodeId> client_ids_;
};

}  // namespace sbft
