#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py's gating behavior.

Each case writes a synthetic baseline/fresh JSON pair to a temp dir,
invokes the script as a subprocess (the same way CI does), and asserts
on exit status and output. Run directly or via ctest (label: tools).

The script under test is located via the BENCH_COMPARE environment
variable, defaulting to tools/bench_compare.py relative to the repo
root this file lives in.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.environ.get(
    "BENCH_COMPARE",
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 os.pardir, os.pardir, "tools", "bench_compare.py"))


def run_compare(baseline_metrics, fresh_metrics, *extra_args):
    """Write the two metric lists as bench JSONs and run the script."""
    def doc(metrics):
        return {"bench": "synthetic",
                "metrics": [{"name": n, "value": v, "unit": u}
                            for (n, v, u) in metrics]}

    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "base.json")
        fresh_path = os.path.join(tmp, "fresh.json")
        with open(base_path, "w", encoding="utf-8") as f:
            json.dump(doc(baseline_metrics), f)
        with open(fresh_path, "w", encoding="utf-8") as f:
            json.dump(doc(fresh_metrics), f)
        proc = subprocess.run(
            [sys.executable, SCRIPT, base_path, fresh_path, *extra_args],
            capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout + proc.stderr


class BenchCompareTest(unittest.TestCase):
    def test_identical_runs_pass(self):
        metrics = [("a.ops_per_sec", 1000.0, "ops/s"),
                   ("a.completed_frac", 1.0, "frac"),
                   ("a.failed", 0.0, "ops")]
        code, out = run_compare(metrics, metrics)
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_count_regression_gates(self):
        code, out = run_compare([("a.failed", 0.0, "ops")],
                                [("a.failed", 2.0, "ops")])
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)

    def test_rate_regression_is_advisory(self):
        code, out = run_compare([("a.ops_per_sec", 1000.0, "ops/s")],
                                [("a.ops_per_sec", 400.0, "ops/s")])
        self.assertEqual(code, 0, out)
        self.assertIn("advisory", out)

    def test_rate_regression_gates_with_flag(self):
        code, out = run_compare([("a.ops_per_sec", 1000.0, "ops/s")],
                                [("a.ops_per_sec", 400.0, "ops/s")],
                                "--gate-rates")
        self.assertEqual(code, 1, out)

    def test_saturation_frac_drop_gates(self):
        # 1.0 -> 0.5: the cluster lost half the swept rates. Gated even
        # though the absolute saturation rate metric is advisory.
        code, out = run_compare(
            [("mailbox.sweep.saturation_frac", 1.0, "frac"),
             ("mailbox.sweep.saturation_ops_per_sec", 4000.0, "ops/s")],
            [("mailbox.sweep.saturation_frac", 0.5, "frac"),
             ("mailbox.sweep.saturation_ops_per_sec", 500.0, "ops/s")])
        self.assertEqual(code, 1, out)
        self.assertIn("saturation_frac", out)

    def test_new_violations_gate_from_zero_baseline(self):
        code, out = run_compare([("tcp.zipf_hot.violations", 0.0, "count")],
                                [("tcp.zipf_hot.violations", 1.0, "count")])
        self.assertEqual(code, 1, out)
        self.assertIn("violations", out)

    def test_stabilize_failed_gates(self):
        code, out = run_compare(
            [("mailbox.corruption.stabilize_failed", 0.0, "count")],
            [("mailbox.corruption.stabilize_failed", 1.0, "count")])
        self.assertEqual(code, 1, out)

    def test_violation_window_is_advisory(self):
        # Machine-dependent (_us): reported, not gated.
        code, out = run_compare(
            [("mailbox.corruption.violation_window_us", 1000.0, "us")],
            [("mailbox.corruption.violation_window_us", 50000.0, "us")])
        self.assertEqual(code, 0, out)
        self.assertIn("advisory", out)

    def test_violation_window_from_zero_is_advisory(self):
        # A 0 µs window that becomes positive is a semantic change (the
        # corruption arm started surfacing real stale reads) but its
        # magnitude is machine-dependent like any latency: advisory,
        # unlike count metrics (violations, failed) whose from-zero
        # increases gate. --gate-rates restores the gate.
        metrics0 = [("mailbox.corruption.violation_window_us", 0.0, "us")]
        metrics1 = [("mailbox.corruption.violation_window_us", 290e3, "us")]
        code, out = run_compare(metrics0, metrics1)
        self.assertEqual(code, 0, out)
        self.assertIn("advisory", out)
        code, out = run_compare(metrics0, metrics1, "--gate-rates")
        self.assertEqual(code, 1, out)

    def test_completed_frac_below_one_is_flagged(self):
        # A small dip is within the 25% gate but must be flagged as an
        # overload-regime point.
        code, out = run_compare([("a.sweep.p3.completed_frac", 1.0, "frac")],
                                [("a.sweep.p3.completed_frac", 0.97, "frac")])
        self.assertEqual(code, 0, out)
        self.assertIn("overload regime", out)

    def test_completed_frac_collapse_gates(self):
        code, out = run_compare([("a.sweep.p3.completed_frac", 1.0, "frac")],
                                [("a.sweep.p3.completed_frac", 0.5, "frac")])
        self.assertEqual(code, 1, out)

    def test_fresh_only_metrics_are_informational(self):
        # A bench grew a batched.* sweep the committed baseline predates.
        # The new points must be listed (with values, so they can be
        # promoted into the next baseline) but never gated — even ones
        # whose names pattern-match lower-is-better marks like p99.
        code, out = run_compare(
            [("tcp.n16.c256.ops_per_sec", 10000.0, "ops/s")],
            [("tcp.n16.c256.ops_per_sec", 10000.0, "ops/s"),
             ("batched.tcp.n16.c256.ops_per_sec", 18000.0, "ops/s"),
             ("batched.tcp.n16.c256.p99_us", 19712.0, "us"),
             ("batched.tcp.n16.c256.failed", 0.0, "ops")])
        self.assertEqual(code, 0, out)
        self.assertIn("new metrics (no baseline yet", out)
        self.assertIn("batched.tcp.n16.c256.ops_per_sec: 18000", out)
        self.assertIn("new metric", out)

    def test_missing_metric_is_advisory(self):
        code, out = run_compare([("a.failed", 0.0, "ops"),
                                 ("b.failed", 0.0, "ops")],
                                [("a.failed", 0.0, "ops")])
        self.assertEqual(code, 0, out)
        self.assertIn("missing from fresh run", out)

    def test_new_group_family_is_aggregated_not_gated(self):
        # Sharded arms land as a whole g<G>.* family. They must appear
        # as one family summary (with per-metric values for baseline
        # promotion) and never gate — including violation-marked names.
        code, out = run_compare(
            [("sharedflush.tcp.n16.c256.ops_per_sec", 30000.0, "ops/s")],
            [("sharedflush.tcp.n16.c256.ops_per_sec", 30000.0, "ops/s"),
             ("g4.tcp.n16.c256.ops_per_sec", 29000.0, "ops/s"),
             ("g4.tcp.n16.c256.failed", 0.0, "ops"),
             ("g4.tcp.n16.c256.regular_violations", 0.0, "violations"),
             ("g2.migrate.tcp.n16.c64.regular_violations", 0.0,
              "violations"),
             ("tcp.g2.sweep.p0.violations", 0.0, "count"),
             ("tcp.g2_migrate.violations", 0.0, "count")])
        self.assertEqual(code, 0, out)
        self.assertIn("new group family", out)
        self.assertIn("g4.tcp.* — new group family, 3 metrics", out)
        self.assertIn("g2.migrate.tcp.* — new group family, 1 metrics", out)
        self.assertIn("g4.tcp.n16.c256.ops_per_sec: 29000", out)
        # bench_load's backend-first spelling aggregates the same way.
        self.assertIn("tcp.g2.* — new group family, 1 metrics", out)
        self.assertIn("tcp.g2_migrate.* — new group family, 1 metrics", out)

    def test_committed_group_family_gates_like_any_metric(self):
        # Once the g<G>.* family IS in the baseline, its count metrics
        # gate normally — the family aggregation only covers the
        # no-baseline-yet case.
        code, out = run_compare(
            [("g2.tcp.n16.c256.regular_violations", 0.0, "violations")],
            [("g2.tcp.n16.c256.regular_violations", 3.0, "violations")])
        self.assertEqual(code, 1, out)
        self.assertIn("regular_violations", out)

    def test_subset_suppresses_missing_advisories(self):
        # A filtered arm run (--only / --scenario) produces a subset of
        # the baseline's metrics. With --subset the absences are
        # expected (summarized, not itemized), while produced metrics
        # still gate.
        base = [("tcp.g2.sweep.p0.failed", 0.0, "ops"),
                ("mailbox.sweep.p0.completed_frac", 1.0, "frac")]
        code, out = run_compare(
            base, [("tcp.g2.sweep.p0.failed", 0.0, "ops")], "--subset")
        self.assertEqual(code, 0, out)
        self.assertNotIn("missing from fresh run", out)
        self.assertIn("subset run: 1 baseline metric(s) not produced", out)
        code, out = run_compare(
            base, [("tcp.g2.sweep.p0.failed", 4.0, "ops")], "--subset")
        self.assertEqual(code, 1, out)

    def test_malformed_input_is_usage_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            bad = os.path.join(tmp, "bad.json")
            with open(bad, "w", encoding="utf-8") as f:
                f.write("{not json")
            proc = subprocess.run(
                [sys.executable, SCRIPT, bad, bad],
                capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
