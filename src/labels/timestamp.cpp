#include "labels/timestamp.hpp"

#include <sstream>

namespace sbft {

std::string Timestamp::ToString() const {
  std::ostringstream out;
  out << "ts{w" << writer_id << ":" << label.ToString() << "}";
  return out.str();
}

bool Precedes(const Timestamp& a, const Timestamp& b,
              const LabelParams& params) {
  if (Precedes(a.label, b.label, params)) return true;
  if (Precedes(b.label, a.label, params)) return false;
  if (a.label == b.label) return a.writer_id < b.writer_id;
  // Incomparable labels stay unordered. Identifiers must NOT order them
  // here: because the label order is not transitive, an old label can be
  // incomparable to a much newer one, and an id-based edge would let a
  // stale write spuriously "dominate" a fresh write in the WTsG. The
  // identifier ordering of Lemma 8 is applied only when electing among
  // undominated WTsG vertices — i.e. among genuinely concurrent writes
  // (see Wtsg::FindWitnessed).
  return false;
}

bool SelectionLess(const Timestamp& a, const Timestamp& b,
                   const LabelParams& params) {
  if (Precedes(a, b, params)) return true;
  if (Precedes(b, a, params)) return false;
  return a.CompareRepr(b) < 0;
}

}  // namespace sbft
