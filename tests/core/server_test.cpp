// Server automaton conformance (Figures 1(b), 2(b), 3(b)): per-message
// behaviour checked against the paper's pseudo-code, using a
// minimal two-node world (one server, one probe client).
#include "core/server.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "sim/world.hpp"

namespace sbft {
namespace {

// WriteMsg carries a view of its value; single-byte test values come
// from a static table so the bytes outlive every encoded script.
BytesView ByteVal(std::uint8_t b) {
  static const auto table = [] {
    std::array<std::uint8_t, 256> t{};
    for (std::size_t i = 0; i < t.size(); ++i) {
      t[i] = static_cast<std::uint8_t>(i);
    }
    return t;
  }();
  return BytesView(&table[b], 1);
}

// A client-side automaton that sends a fixed script of messages on start.
// Messages are encoded at construction time — value-bearing messages
// carry views, so the script must be serialized while its backing
// storage is still alive. Replies are decoded from privately retained
// frame copies so their views stay valid after the world recycles the
// in-flight buffer.
class Scripted final : public Automaton {
 public:
  Scripted(NodeId target, const std::vector<Message>& script)
      : target_(target) {
    frames_.reserve(script.size());
    for (const Message& message : script) {
      frames_.push_back(EncodeMessage(message));
    }
  }
  void OnStart(IEndpoint& endpoint) override {
    for (const Bytes& frame : frames_) {
      endpoint.Send(target_, frame);
    }
  }
  void OnFrame(NodeId, BytesView frame, IEndpoint&) override {
    reply_frames_.push_back(ToBytes(frame));
    auto decoded = DecodeMessage(reply_frames_.back());
    if (decoded.ok()) {
      replies.push_back(std::move(decoded).value());
    } else {
      reply_frames_.pop_back();
    }
  }
  std::vector<Message> replies;

 private:
  NodeId target_;
  std::vector<Bytes> frames_;
  // Backing storage for the views inside `replies`. Reallocation only
  // moves the Bytes objects; their heap buffers (what the views point
  // at) stay put.
  std::vector<Bytes> reply_frames_;
};

struct Rig {
  explicit Rig(ProtocolConfig config, std::vector<Message> script)
      : world() {
    auto server_owner = std::make_unique<RegisterServer>(config, 0);
    server = server_owner.get();
    const NodeId server_id = world.AddNode(std::move(server_owner));
    auto client_owner = std::make_unique<Scripted>(server_id,
                                                   std::move(script));
    client = client_owner.get();
    world.AddNode(std::move(client_owner));
  }
  World world;
  RegisterServer* server;
  Scripted* client;
};

Timestamp NextTs(const LabelingSystem& system, const Timestamp& from,
                 ClientId writer) {
  return Timestamp{system.Next(std::vector<Label>{from.label}), writer};
}

TEST(RegisterServerTest, GetTsAnswersWithCurrentTimestamp) {
  auto config = ProtocolConfig::ForServers(6);
  Rig rig(config, {Message(GetTsMsg{.op_label = 3})});
  rig.world.Run();
  ASSERT_EQ(rig.client->replies.size(), 1u);
  const auto* reply = std::get_if<TsReplyMsg>(&rig.client->replies[0]);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->op_label, 3u);
  EXPECT_EQ(reply->ts, rig.server->current().ts);
}

TEST(RegisterServerTest, WriteWithNewerTsAcksAndAdopts) {
  auto config = ProtocolConfig::ForServers(6);
  LabelingSystem system(config.k);
  const Timestamp newer = NextTs(system, Timestamp{system.Initial(), 0}, 7);
  Rig rig(config, {Message(WriteMsg{ByteVal(42), newer, 1})});
  rig.world.Run();
  ASSERT_EQ(rig.client->replies.size(), 1u);
  const auto* reply = std::get_if<WriteReplyMsg>(&rig.client->replies[0]);
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->ack);
  EXPECT_EQ(rig.server->current().value, Value{42});
  EXPECT_EQ(rig.server->current().ts, newer);
  // The displaced value landed in old_vals.
  ASSERT_EQ(rig.server->old_vals().size(), 1u);
}

TEST(RegisterServerTest, WriteWithStaleTsNacksButStillAdopts) {
  // Figure 1 server side: NACK when the ts does not follow the local
  // one, but the server updates its copy regardless.
  auto config = ProtocolConfig::ForServers(6);
  LabelingSystem system(config.k);
  Rng rng(5);
  const Timestamp incomparable{RandomValidLabel(rng, system.params()), 0};
  Rig rig(config, {Message(WriteMsg{ByteVal(7), incomparable, 1})});
  rig.world.Run();
  ASSERT_EQ(rig.client->replies.size(), 1u);
  const auto* reply = std::get_if<WriteReplyMsg>(&rig.client->replies[0]);
  ASSERT_NE(reply, nullptr);
  // Whether this ACKs depends on label comparability; with a random
  // label vs the canonical initial label, Precedes is almost surely
  // false — assert adoption, which is unconditional.
  EXPECT_EQ(rig.server->current().value, Value{7});
}

TEST(RegisterServerTest, HistoryWindowBounded) {
  auto config = ProtocolConfig::ForServers(6);
  LabelingSystem system(config.k);
  std::vector<Message> script;
  Timestamp ts{system.Initial(), 0};
  for (int i = 0; i < 20; ++i) {
    ts = NextTs(system, ts, 9);
    script.push_back(Message(
        WriteMsg{ByteVal(static_cast<std::uint8_t>(i)), ts, 1}));
  }
  Rig rig(config, script);
  rig.world.Run();
  EXPECT_LE(rig.server->old_vals().size(),
            static_cast<std::size_t>(config.history_window));
  // Newest history entry is the second-to-last write.
  EXPECT_EQ(rig.server->old_vals().front().value, Value{18});
  EXPECT_EQ(rig.server->current().value, Value{19});
}

TEST(RegisterServerTest, ReadRegistersRunningReaderAndReplies) {
  auto config = ProtocolConfig::ForServers(6);
  Rig rig(config, {Message(ReadMsg{.label = 2})});
  rig.world.Run();
  ASSERT_EQ(rig.client->replies.size(), 1u);
  const auto* reply = std::get_if<ReplyMsg>(&rig.client->replies[0]);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->label, 2u);
  EXPECT_EQ(rig.server->running_read_count(), 1u);
}

TEST(RegisterServerTest, CompleteReadDeregisters) {
  auto config = ProtocolConfig::ForServers(6);
  Rig rig(config, {Message(ReadMsg{.label = 2}),
                   Message(CompleteReadMsg{.label = 2})});
  rig.world.Run();
  EXPECT_EQ(rig.server->running_read_count(), 0u);
}

TEST(RegisterServerTest, ConcurrentWriteForwardedToRunningReader) {
  // Figure 1: on WRITE, the server pushes a fresh REPLY to registered
  // readers. Script: READ (registers), then WRITE; expect two ReplyMsg.
  auto config = ProtocolConfig::ForServers(6);
  LabelingSystem system(config.k);
  const Timestamp newer = NextTs(system, Timestamp{system.Initial(), 0}, 7);
  Rig rig(config, {Message(ReadMsg{.label = 1}),
                   Message(WriteMsg{ByteVal(5), newer, 2})});
  rig.world.Run();
  int reply_count = 0;
  bool saw_forwarded = false;
  for (const Message& message : rig.client->replies) {
    if (const auto* reply = std::get_if<ReplyMsg>(&message)) {
      ++reply_count;
      if (SameBytes(reply->value, Value{5}) && reply->label == 1u) {
        saw_forwarded = true;
      }
    }
  }
  EXPECT_EQ(reply_count, 2);
  EXPECT_TRUE(saw_forwarded);
}

TEST(RegisterServerTest, FlushReflected) {
  auto config = ProtocolConfig::ForServers(6);
  Rig rig(config, {Message(FlushMsg{.label = 3, .scope = OpScope::kWrite})});
  rig.world.Run();
  ASSERT_EQ(rig.client->replies.size(), 1u);
  const auto* ack = std::get_if<FlushAckMsg>(&rig.client->replies[0]);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->label, 3u);
  EXPECT_EQ(ack->scope, OpScope::kWrite);
}

TEST(RegisterServerTest, RunningReadTableBounded) {
  auto config = ProtocolConfig::ForServers(6);
  config.max_running_reads = 4;
  std::vector<Message> script;
  for (OpLabel l = 0; l < 20; ++l) script.push_back(Message(ReadMsg{l}));
  Rig rig(config, script);
  rig.world.Run();
  EXPECT_LE(rig.server->running_read_count(), 4u);
}

TEST(RegisterServerTest, GarbageFramesIgnored) {
  auto config = ProtocolConfig::ForServers(6);
  Rig rig(config, {});
  rig.world.InjectGarbageFrames(1, 0, 50);  // probe -> server garbage
  rig.world.Run();
  // Server may occasionally decode garbage into a valid message and
  // reply; the requirement is no crash and bounded state.
  EXPECT_LE(rig.server->old_vals().size(),
            static_cast<std::size_t>(config.history_window));
}

TEST(RegisterServerTest, CorruptStateThenSanitizedReplies) {
  auto config = ProtocolConfig::ForServers(6);
  Rig rig(config, {Message(GetTsMsg{.op_label = 1})});
  LabelingSystem system(config.k);
  rig.world.CorruptNode(0);  // server is node 0
  rig.world.Run();
  ASSERT_EQ(rig.client->replies.size(), 1u);
  const auto* reply = std::get_if<TsReplyMsg>(&rig.client->replies[0]);
  ASSERT_NE(reply, nullptr);
  // Exported timestamps are sanitized even when local state is garbage.
  EXPECT_TRUE(system.IsValid(reply->ts.label));
}

}  // namespace
}  // namespace sbft
