// Tests for the stabilizing data-link over the bounded fair-lossy
// non-FIFO channel. The headline property (pseudo-stabilization): from
// ANY initial configuration, the delivered sequence has a suffix that
// equals a suffix of the sent sequence, in order, exactly once.
#include "net/datalink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "net/lossy_channel.hpp"

namespace sbft {
namespace {

Bytes Msg(int i) {
  const std::string text = "msg-" + std::to_string(i);
  return Bytes(text.begin(), text.end());
}

struct LinkHarness {
  LinkHarness(std::size_t capacity, double drop, std::uint64_t seed)
      : forward({capacity, drop}, Rng(seed * 2 + 1)),
        backward({capacity, drop}, Rng(seed * 2 + 2)),
        sender(capacity),
        receiver(capacity, [this](Bytes m) { delivered.push_back(m); }) {}

  // One scheduler round: sender transmits, channels each deliver at most
  // one frame, receiver acks.
  void Tick() {
    if (auto frame = sender.Tick()) forward.Push(std::move(*frame));
    if (auto frame = forward.Pop()) {
      if (auto ack = receiver.OnFrame(*frame)) {
        backward.Push(std::move(*ack));
      }
    }
    if (auto frame = backward.Pop()) sender.OnFrame(*frame);
  }

  void RunRounds(int rounds) {
    for (int i = 0; i < rounds; ++i) Tick();
  }

  LossyChannel forward;
  LossyChannel backward;
  DataLinkSender sender;
  DataLinkReceiver receiver;
  std::vector<Bytes> delivered;
};

TEST(DataLink, FrameCodecRoundTrip) {
  DlFrame data{DlFrame::Kind::kData, 3, Bytes{1, 2}};
  auto decoded = DlFrame::Decode(data.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, DlFrame::Kind::kData);
  EXPECT_EQ(decoded->label, 3u);
  EXPECT_EQ(decoded->payload, (Bytes{1, 2}));
}

TEST(DataLink, FrameCodecRejectsGarbage) {
  Rng rng(61);
  int ok = 0;
  for (int i = 0; i < 2000; ++i) {
    auto decoded = DlFrame::Decode(RandomBytes(rng, rng.NextBelow(24)));
    if (decoded) ++ok;
  }
  EXPECT_LT(ok, 200);
}

TEST(DataLink, DeliversInOrderOverCleanStart) {
  LinkHarness link(/*capacity=*/4, /*drop=*/0.2, /*seed=*/1);
  for (int i = 0; i < 20; ++i) link.sender.Submit(Msg(i));
  link.RunRounds(20000);
  ASSERT_EQ(link.delivered.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(link.delivered[i], Msg(i));
  EXPECT_EQ(link.sender.completed(), 20u);
  EXPECT_TRUE(link.sender.idle());
}

class DataLinkStabilization
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(DataLinkStabilization, SuffixCorrectFromArbitraryState) {
  const auto [capacity, seed] = GetParam();
  LinkHarness link(capacity, /*drop=*/0.15, seed);
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + capacity);

  // Arbitrary initial configuration: garbage local state on both ends
  // and both channels full of garbage frames.
  link.sender.CorruptState(rng);
  link.receiver.CorruptState(rng);
  link.forward.PreloadGarbage(capacity);
  link.backward.PreloadGarbage(capacity);

  const int kMessages = 30;
  for (int i = 0; i < kMessages; ++i) link.sender.Submit(Msg(i));
  link.RunRounds(60000);

  // The sender's corrupted "active" message may consume one label cycle;
  // everything submitted must eventually complete.
  EXPECT_GE(link.sender.completed(), static_cast<std::size_t>(kMessages));

  // Pseudo-stabilization: some suffix of `delivered` must be a
  // contiguous in-order suffix of the submitted sequence ending at the
  // last message. Garbage deliveries are allowed only in the prefix.
  ASSERT_FALSE(link.delivered.empty());
  // Find the last delivery of Msg(kMessages-1); everything submitted
  // after stabilization must appear exactly once, in order.
  int expect = kMessages - 1;
  std::size_t index = link.delivered.size();
  while (index > 0 && expect >= 0) {
    --index;
    if (link.delivered[index] == Msg(expect)) --expect;
  }
  // We must have matched a long suffix of the sent sequence (allowing a
  // corrupted prefix of up to ~capacity messages to have been disturbed).
  EXPECT_LT(expect, static_cast<int>(capacity) + 2)
      << "too few in-order deliveries survived";

  // Exactly-once in the suffix: the last delivered message appears once.
  const auto last = Msg(kMessages - 1);
  EXPECT_EQ(std::count(link.delivered.begin(), link.delivered.end(), last), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DataLinkStabilization,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 4, 8),
                       ::testing::Values(1, 2, 3, 4, 5)),
    [](const auto& param_info) {
      return "c" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(DataLink, NoDeliveryWithoutEnoughWitnesses) {
  // With capacity c, fewer than c+1 receipts must never deliver: plant
  // c identical forged frames; the receiver must not act on them alone.
  const std::size_t capacity = 3;
  std::vector<Bytes> delivered;
  DataLinkReceiver receiver(capacity,
                            [&](Bytes m) { delivered.push_back(m); });
  DlFrame forged{DlFrame::Kind::kData, 7, Msg(99)};
  for (std::size_t i = 0; i < capacity; ++i) {
    (void)receiver.OnFrame(forged.Encode());
  }
  EXPECT_TRUE(delivered.empty());
  // The (c+1)-th receipt can only come from a live sender; then it
  // delivers (the property is about bounding stale frames, not about
  // authentication).
  (void)receiver.OnFrame(forged.Encode());
  EXPECT_EQ(delivered.size(), 1u);
}

TEST(DataLink, SenderIgnoresWrongLabelAcks) {
  DataLinkSender sender(2);
  sender.Submit(Msg(1));
  ASSERT_TRUE(sender.Tick().has_value());  // activates label 1
  DlFrame wrong{DlFrame::Kind::kAck, 0, {}};
  for (int i = 0; i < 10; ++i) sender.OnFrame(wrong.Encode());
  EXPECT_EQ(sender.completed(), 0u);
  EXPECT_FALSE(sender.idle());
}

TEST(DataLink, HighLossStillLive) {
  LinkHarness link(/*capacity=*/2, /*drop=*/0.6, /*seed=*/9);
  for (int i = 0; i < 5; ++i) link.sender.Submit(Msg(i));
  link.RunRounds(200000);
  EXPECT_EQ(link.sender.completed(), 5u);
  ASSERT_EQ(link.delivered.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(link.delivered[i], Msg(i));
}

}  // namespace
}  // namespace sbft
