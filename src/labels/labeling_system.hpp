// The k-stabilizing bounded labeling system (L, <, next()) of
// Definition 2, packaged as a value-semantic object carrying its
// parameters. See bounded_label.hpp for the construction.
#pragma once

#include <cstddef>
#include <span>

#include "labels/bounded_label.hpp"

namespace sbft {

class LabelingSystem {
 public:
  /// Precondition: k >= 2 (Definition 2 requires it).
  explicit LabelingSystem(std::uint32_t k);

  [[nodiscard]] const LabelParams& params() const { return params_; }

  /// Number of distinct labels |L| = m * C(m-1, k): finite by
  /// construction. Returned as double because it overflows 64 bits for
  /// large k; used only for reporting (bench E4).
  [[nodiscard]] double LabelSpaceSize() const;

  /// Serialized size of one label in bytes (constant for fixed k).
  [[nodiscard]] std::size_t LabelWireSize() const;

  /// The precedence relation. Invalid (corrupted) labels are
  /// incomparable to everything.
  [[nodiscard]] bool Precedes(const Label& a, const Label& b) const {
    return sbft::Precedes(a, b, params_);
  }

  /// next(L'): a label that dominates every input (Definition 2).
  /// Inputs are sanitized first, so this is total on arbitrary memory —
  /// the self-stabilization requirement. Precondition: at most k inputs
  /// (the protocol guarantees this by choosing k >= n).
  ///
  /// `distrusted` is a liveness-of-labels knob, not a correctness one:
  /// the sting scan starts just above the largest input sting after
  /// ignoring the `distrusted` largest (the register client passes f).
  /// Without it, a single Byzantine server reporting a near-maximal
  /// sting every round fast-forwards the label rotation, forcing full
  /// label reuse within the servers' history window — exactly the
  /// wrap-around ambiguity the paper's Assumption 2 discussion warns
  /// about. Domination of ALL inputs is enforced by the forbidden-set
  /// check regardless of where the scan starts.
  [[nodiscard]] Label Next(std::span<const Label> existing,
                           std::size_t distrusted = 0) const;

  [[nodiscard]] Label Initial() const { return InitialLabel(params_); }
  [[nodiscard]] Label Sanitize(Label label) const {
    return sbft::Sanitize(std::move(label), params_);
  }
  [[nodiscard]] bool IsValid(const Label& label) const {
    return sbft::IsValid(label, params_);
  }

 private:
  LabelParams params_;
};

}  // namespace sbft
