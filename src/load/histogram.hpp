// Log-linear latency histogram (HDR-histogram style): fixed memory,
// O(1) record, bounded relative error on quantiles.
//
// Layout: values below 2^kSubBits land in exact unit buckets; every
// power-of-two range [2^k, 2^(k+1)) above that is split into
// 2^(kSubBits-1) linear sub-buckets, so the worst-case relative
// quantization error is 2^-(kSubBits-1) (~3.1% at kSubBits = 6). Mean
// and max are tracked exactly on the side.
//
// The bench drivers record INTENDED-start latencies (schedule time ->
// completion) into one of these; see docs/LOAD_TESTING.md for why that
// is the coordinated-omission-free measurement. The math itself is
// pinned down by tests/load/histogram_test.cpp.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace sbft::load {

class LatencyHistogram {
 public:
  /// 2^kSubBits exact unit buckets, 2^(kSubBits-1) sub-buckets per
  /// higher power-of-two range.
  static constexpr int kSubBits = 6;
  static constexpr std::uint64_t kSub = 1ull << kSubBits;
  static constexpr std::uint64_t kHalfSub = kSub >> 1;
  /// Ranges [2^6, 2^7) .. [2^47, 2^48): covers ~8.9 years in
  /// microseconds, far beyond any latency this records.
  static constexpr int kRanges = 42;
  static constexpr std::size_t kBuckets =
      kSub + static_cast<std::size_t>(kRanges) * kHalfSub;

  void Record(std::uint64_t value_us) {
    counts_[IndexOf(value_us)]++;
    count_++;
    sum_ += value_us;
    max_ = std::max(max_, value_us);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Quantile q in [0, 1]: the representative value (bucket midpoint)
  /// of the bucket holding the ceil(q * count)-th smallest sample.
  /// Exact for values < 2^kSubBits, within the relative error bound
  /// above otherwise. Returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t Percentile(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        std::max<double>(1.0, q * static_cast<double>(count_) + 0.5));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= target) return ValueAt(i);
    }
    return ValueAt(kBuckets - 1);
  }

  /// Add every sample of `other` into this histogram.
  void Merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
  }

  /// Bucket index for a value (exposed for the math tests).
  [[nodiscard]] static std::size_t IndexOf(std::uint64_t value_us) {
    if (value_us < kSub) return static_cast<std::size_t>(value_us);
    // k = floor(log2(value)) >= kSubBits; sub-bucket width is 2^(k -
    // kSubBits + 1), giving kHalfSub sub-buckets per range.
    int k = std::bit_width(value_us) - 1;
    if (k >= kSubBits + kRanges) k = kSubBits + kRanges - 1;  // clamp
    const int shift = k - kSubBits + 1;
    const std::uint64_t base = 1ull << k;
    std::uint64_t sub = (value_us >= base ? value_us - base : 0) >> shift;
    if (sub >= kHalfSub) sub = kHalfSub - 1;  // clamped top range only
    return static_cast<std::size_t>(kSub +
                                    static_cast<std::uint64_t>(k - kSubBits) *
                                        kHalfSub +
                                    sub);
  }

  /// Representative (midpoint) value of a bucket index.
  [[nodiscard]] static std::uint64_t ValueAt(std::size_t index) {
    if (index < kSub) return index;
    const std::uint64_t rest = index - kSub;
    const int k = kSubBits + static_cast<int>(rest / kHalfSub);
    const std::uint64_t sub = rest % kHalfSub;
    const int shift = k - kSubBits + 1;
    const std::uint64_t lo = (1ull << k) + (sub << shift);
    return lo + (1ull << shift) / 2;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace sbft::load
