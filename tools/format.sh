#!/usr/bin/env bash
# Apply (default) or check (--check) the repo .clang-format over every
# first-party C++ file. Used by the CI lint job in check mode; run with
# no arguments before pushing to fix formatting locally.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

clang_format="${CLANG_FORMAT:-}"
if [[ -z "${clang_format}" ]]; then
  for candidate in clang-format clang-format-20 clang-format-19 \
                   clang-format-18 clang-format-17 clang-format-16 \
                   clang-format-15; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      clang_format="${candidate}"
      break
    fi
  done
fi
if [[ -z "${clang_format}" ]]; then
  echo "tools/format.sh: no clang-format on PATH (set CLANG_FORMAT=...)" >&2
  exit 2
fi

mapfile -t files < <(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
                                  'tests/**/*.cpp' 'tests/**/*.hpp' \
                                  'bench/**/*.cpp' 'bench/**/*.hpp' \
                                  'examples/**/*.cpp' 'examples/**/*.hpp')
if [[ "${1:-}" == "--check" ]]; then
  "${clang_format}" --dry-run --Werror "${files[@]}"
  echo "format: ${#files[@]} files clean"
else
  "${clang_format}" -i "${files[@]}"
  echo "format: ${#files[@]} files formatted"
fi
