#include "baselines/naive_quorum.hpp"

#include <algorithm>

namespace sbft {

void NqServer::OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<NqGetTsMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(NqTsReplyMsg{m->rid, ts_})));
  }
  if (const auto* m = std::get_if<NqWriteMsg>(&message)) {
    // One-shot adopt-if-newer, as in the Theorem 1 protocol class.
    Timestamp incoming{labels_.Sanitize(m->ts.label), m->ts.writer_id};
    if (Precedes(ts_, incoming, labels_.params())) {
      ts_ = incoming;
      value_ = ToBytes(m->value);  // copy the frame-borrowed view into state
    }
    endpoint.Send(from, EncodeMessage(Message(NqWriteAckMsg{m->rid})));
  }
  if (const auto* m = std::get_if<NqReadMsg>(&message)) {
    endpoint.Send(from,
                  EncodeMessage(Message(NqReadReplyMsg{m->rid, ts_, value_})));
  }
}

void NqServer::CorruptState(Rng& rng) {
  ts_ = Timestamp{RandomValidLabel(rng, labels_.params()),
                  static_cast<ClientId>(rng.NextBelow(8))};
  value_ = RandomBytes(rng, 1 + rng.NextBelow(8));
}

void NqScriptedServer::OnFrame(NodeId from, BytesView frame,
                               IEndpoint& endpoint) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<NqGetTsMsg>(&message)) {
    endpoint.Send(from,
                  EncodeMessage(Message(NqTsReplyMsg{m->rid, ts_for_get_ts})));
  }
  if (const auto* m = std::get_if<NqWriteMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(NqWriteAckMsg{m->rid})));
  }
  if (const auto* m = std::get_if<NqReadMsg>(&message)) {
    if (read_script.empty()) return;  // silent when out of script
    auto [ts, value] = read_script.front();
    if (read_script.size() > 1) read_script.pop_front();
    endpoint.Send(from,
                  EncodeMessage(Message(NqReadReplyMsg{m->rid, ts, value})));
  }
}

NqClient::NqClient(std::vector<NodeId> servers, std::uint32_t f,
                   std::uint32_t k, std::uint32_t client_id)
    : servers_(std::move(servers)),
      f_(f),
      labels_(k),
      client_id_(client_id) {
  last_write_ts_ = Timestamp{labels_.Initial(), client_id_};
  const std::size_t n = servers_.size();
  collected_ts_.resize(n);
  collected_bits_.assign(n, 0);
  write_replies_.assign(n, 0);
  read_ts_.resize(n);
  read_vals_.resize(n);
  read_bits_.assign(n, 0);
}

void NqClient::OnStart(IEndpoint& endpoint) { endpoint_ = &endpoint; }

std::optional<std::size_t> NqClient::ServerIndex(NodeId node) const {
  auto it = std::find(servers_.begin(), servers_.end(), node);
  if (it == servers_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - servers_.begin());
}

void NqClient::StartWrite(Value value, std::function<void(bool)> callback) {
  SBFT_ASSERT(endpoint_ != nullptr && idle());
  write_value_ = std::move(value);
  write_callback_ = std::move(callback);
  std::fill(collected_bits_.begin(), collected_bits_.end(), std::uint8_t{0});
  collected_count_ = 0;
  phase_ = Phase::kGetTs;
  ++rid_;
  endpoint_->Broadcast(servers_, EncodeMessage(Message(NqGetTsMsg{rid_})));
}

void NqClient::StartRead(std::function<void(const NqReadOutcome&)> callback) {
  SBFT_ASSERT(endpoint_ != nullptr && idle());
  read_callback_ = std::move(callback);
  std::fill(read_bits_.begin(), read_bits_.end(), std::uint8_t{0});
  read_count_ = 0;
  phase_ = Phase::kRead;
  ++rid_;
  endpoint_->Broadcast(servers_, EncodeMessage(Message(NqReadMsg{rid_})));
}

void NqClient::OnFrame(NodeId from, BytesView frame, IEndpoint&) {
  const auto index = ServerIndex(from);
  if (!index) return;
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<NqTsReplyMsg>(&message)) {
    if (phase_ != Phase::kGetTs || m->rid != rid_) return;
    if (!collected_bits_[*index]) {  // first reply per server wins
      collected_bits_[*index] = 1;
      collected_ts_[*index] =
          Timestamp{labels_.Sanitize(m->ts.label), m->ts.writer_id};
      ++collected_count_;
    }
    if (collected_count_ < Quorum()) return;
    std::vector<Label> inputs;
    inputs.reserve(collected_count_);
    for (std::size_t i = 0; i < collected_bits_.size(); ++i) {
      if (collected_bits_[i]) inputs.push_back(collected_ts_[i].label);
    }
    last_write_ts_ = Timestamp{labels_.Next(inputs), client_id_};
    phase_ = Phase::kWrite;
    std::fill(write_replies_.begin(), write_replies_.end(), std::uint8_t{0});
    write_reply_count_ = 0;
    endpoint_->Broadcast(
        servers_, EncodeMessage(Message(NqWriteMsg{rid_, last_write_ts_,
                                                   write_value_})));
  }
  if (const auto* m = std::get_if<NqWriteAckMsg>(&message)) {
    if (phase_ != Phase::kWrite || m->rid != rid_) return;
    if (!write_replies_[*index]) {
      write_replies_[*index] = 1;
      ++write_reply_count_;
    }
    if (write_reply_count_ >= Quorum()) {
      phase_ = Phase::kIdle;
      if (write_callback_) {
        auto callback = std::move(write_callback_);
        write_callback_ = nullptr;
        callback(true);
      }
    }
  }
  if (const auto* m = std::get_if<NqReadReplyMsg>(&message)) {
    if (phase_ != Phase::kRead || m->rid != rid_) return;
    if (!read_bits_[*index]) {
      read_bits_[*index] = 1;
      read_ts_[*index] =
          Timestamp{labels_.Sanitize(m->ts.label), m->ts.writer_id};
      // In-place assign reuses the slot's Bytes capacity across reads.
      read_vals_[*index].assign(m->value.begin(), m->value.end());
      ++read_count_;
    }
    if (read_count_ >= Quorum()) DecideRead();
  }
}

void NqClient::DecideRead() {
  // The TM_1R decision: a deterministic function of the timestamp
  // multiset — plurality vote, ties broken by canonical representation
  // order. (Theorem 1 shows *no* such function can be correct with
  // n <= 5f; this one is as good as any.)
  NqReadOutcome outcome;
  std::size_t best_count = 0;
  std::optional<Timestamp> best_ts;
  for (std::size_t i = 0; i < read_bits_.size(); ++i) {
    if (!read_bits_[i]) continue;
    std::size_t count = 0;
    for (std::size_t j = 0; j < read_bits_.size(); ++j) {
      if (read_bits_[j] && read_ts_[j] == read_ts_[i]) ++count;
    }
    const bool better =
        count > best_count ||
        (count == best_count &&
         (!best_ts || best_ts->CompareRepr(read_ts_[i]) < 0));
    if (better) {
      best_count = count;
      best_ts = read_ts_[i];
      outcome.value = read_vals_[i];
      outcome.ts = read_ts_[i];
    }
  }
  outcome.ok = best_ts.has_value();
  phase_ = Phase::kIdle;
  if (read_callback_) {
    auto callback = std::move(read_callback_);
    read_callback_ = nullptr;
    callback(outcome);
  }
}

}  // namespace sbft
