// Property tests for Definition 2: for any set L' of at most k labels,
// every l in L' satisfies l < next(L'). This is the load-bearing
// property of the whole bounded-timestamp design; we test it for valid,
// corrupted, and adversarially repeated inputs, and across long chains
// (label reuse / wrap-around).
#include "labels/labeling_system.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.hpp"

namespace sbft {
namespace {

class LabelingSystemProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(LabelingSystemProperty, NextDominatesAllValidInputs) {
  const auto [k, seed] = GetParam();
  LabelingSystem system(k);
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + k);
  for (int round = 0; round < 200; ++round) {
    const auto count = rng.NextBelow(k) + 1;
    std::vector<Label> inputs;
    for (std::uint64_t i = 0; i < count; ++i) {
      inputs.push_back(RandomValidLabel(rng, system.params()));
    }
    Label next = system.Next(inputs);
    EXPECT_TRUE(system.IsValid(next));
    for (const Label& l : inputs) {
      EXPECT_TRUE(system.Precedes(l, next))
          << l.ToString() << " !< " << next.ToString() << " k=" << k;
      EXPECT_FALSE(system.Precedes(next, l));
      EXPECT_NE(next, l);
    }
  }
}

TEST_P(LabelingSystemProperty, NextDominatesSanitizedGarbageInputs) {
  const auto [k, seed] = GetParam();
  LabelingSystem system(k);
  Rng rng(static_cast<std::uint64_t>(seed) * 104729 + k);
  for (int round = 0; round < 100; ++round) {
    const auto count = rng.NextBelow(k) + 1;
    std::vector<Label> inputs;
    for (std::uint64_t i = 0; i < count; ++i) {
      inputs.push_back(rng.NextBool(0.5)
                           ? RandomGarbageLabel(rng, system.params())
                           : RandomValidLabel(rng, system.params()));
    }
    Label next = system.Next(inputs);
    EXPECT_TRUE(system.IsValid(next));
    for (const Label& l : inputs) {
      // next() dominates the *sanitized* form of each input — the form
      // the protocol actually compares against after stabilization.
      EXPECT_TRUE(system.Precedes(system.Sanitize(l), next));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LabelingSystemProperty,
    ::testing::Combine(::testing::Values(2u, 3u, 6u, 11u, 16u, 31u),
                       ::testing::Values(1, 2, 3)),
    [](const auto& param_info) {
      return "k" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(LabelingSystem, LongChainStaysDominant) {
  // Simulates a single writer issuing many writes: each next() must
  // dominate the previous label, forever, despite the finite label set
  // (so labels are necessarily reused over time).
  LabelingSystem system(4);
  Label current = system.Initial();
  for (int i = 0; i < 20000; ++i) {
    Label next = system.Next(std::vector<Label>{current});
    ASSERT_TRUE(system.Precedes(current, next)) << "step " << i;
    current = next;
  }
}

TEST(LabelingSystem, ChainWithWindowOfRecentLabels) {
  // Harsher variant: dominate the last k labels simultaneously, which is
  // what the writer actually asks when collecting server timestamps.
  const std::uint32_t k = 5;
  LabelingSystem system(k);
  std::vector<Label> window{system.Initial()};
  for (int i = 0; i < 5000; ++i) {
    Label next = system.Next(window);
    for (const Label& l : window) {
      ASSERT_TRUE(system.Precedes(l, next)) << "step " << i;
    }
    window.push_back(next);
    if (window.size() > k) window.erase(window.begin());
  }
}

TEST(LabelingSystem, DuplicateInputsHandled) {
  LabelingSystem system(3);
  Label l = system.Initial();
  std::vector<Label> inputs{l, l, l};
  Label next = system.Next(inputs);
  EXPECT_TRUE(system.Precedes(l, next));
}

TEST(LabelingSystem, EmptyInputYieldsValidLabel) {
  LabelingSystem system(3);
  Label next = system.Next({});
  EXPECT_TRUE(system.IsValid(next));
}

TEST(LabelingSystem, RejectsKBelowTwo) {
  EXPECT_THROW(LabelingSystem(1), InvariantViolation);
}

TEST(LabelingSystem, LabelSpaceIsFiniteAndReported) {
  LabelingSystem small(2);  // m = 25, |L| = 25 * C(24,2) = 6900
  EXPECT_DOUBLE_EQ(small.LabelSpaceSize(), 6900.0);
  EXPECT_EQ(small.LabelWireSize(), 16u);

  LabelingSystem bigger(6);  // m = 169
  EXPECT_GT(bigger.LabelSpaceSize(), small.LabelSpaceSize());
  EXPECT_EQ(bigger.LabelWireSize(), 8u + 24u);
}

TEST(LabelingSystem, NextIsDeterministic) {
  LabelingSystem system(4);
  Rng rng(77);
  std::vector<Label> inputs;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(RandomValidLabel(rng, system.params()));
  }
  EXPECT_EQ(system.Next(inputs), system.Next(inputs));
}

}  // namespace
}  // namespace sbft
