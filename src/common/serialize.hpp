// Bounds-checked binary serialization.
//
// Everything that crosses a channel in sbftreg goes through BufWriter /
// BufReader. The reader is hardened: transient faults may replace channel
// contents with arbitrary bytes (§II of the paper), so decoding garbage
// must fail cleanly (sticky error flag) instead of crashing or reading
// out of bounds. Integers are little-endian; containers are
// length-prefixed with a sanity cap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace sbft {

/// Maximum element count accepted for any length-prefixed container.
/// Garbage frames routinely decode to absurd lengths; this cap bounds
/// allocation before the frame is rejected by higher-level validation.
constexpr std::uint32_t kMaxWireElements = 1u << 20;

namespace detail {
// Unsigned carrier type for an integral or enum T, computed lazily so
// the non-enum branch never instantiates underlying_type.
template <typename T, bool = std::is_enum_v<T>>
struct WireCarrier {
  using type = std::make_unsigned_t<T>;
};
template <typename T>
struct WireCarrier<T, true> {
  using type = std::make_unsigned_t<std::underlying_type_t<T>>;
};
template <typename T>
using WireCarrierT = typename WireCarrier<T>::type;
}  // namespace detail

class BufWriter {
 public:
  BufWriter() = default;

  /// Write into a caller-supplied buffer — typically drawn from a
  /// BufferPool so repeated encodes reuse capacity. The buffer is
  /// cleared; Take() hands it back with the encoded frame.
  explicit BufWriter(Bytes reuse) : buf_(std::move(reuse)) { buf_.clear(); }

  /// Pre-size for a frame whose length the caller can compute, so the
  /// encode runs without reallocation.
  void Reserve(std::size_t bytes) { buf_.reserve(buf_.size() + bytes); }

  template <typename T>
    requires std::is_integral_v<T> || std::is_enum_v<T>
  void Put(T value) {
    using U = detail::WireCarrierT<T>;
    auto u = static_cast<U>(value);
    // push_back, not resize+memcpy: pooled frame buffers retain their
    // capacity across encodes, so after warmup every byte lands on the
    // inline fast path instead of an out-of-line vector-growth call.
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(u & 0xFF));
      u = static_cast<U>(u >> 8);
    }
  }

  void PutBytes(BytesView data) {
    Put<std::uint32_t>(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Append pre-encoded material verbatim — no length prefix. Used to
  /// splice cached frame prefixes (e.g. a server's read reply, which is
  /// identical for every reader between state changes).
  void PutRaw(BytesView data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void PutString(const std::string& s) {
    PutBytes(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size()));
  }

  /// Works with any sized, iterable container (std::vector,
  /// SmallVector, ...).
  template <typename C, typename Fn>
  void PutVector(const C& items, Fn&& encode_one) {
    Put<std::uint32_t>(static_cast<std::uint32_t>(items.size()));
    for (const auto& item : items) encode_one(*this, item);
  }

  /// Length-prefixed run of little-endian integers — byte-identical to
  /// PutVector over Put<T>, but with ONE capacity operation for the
  /// whole run and direct stores instead of per-byte push_back. Used
  /// for label antisting sets, the most-encoded container in the
  /// protocol: a quorum reply carries ~7 labels of k integers each, so
  /// the per-byte capacity checks of Put<T> dominated encode profiles.
  template <typename T, typename C>
  void PutIntegralRun(const C& items) {
    static_assert(std::is_integral_v<T>);
    Put<std::uint32_t>(static_cast<std::uint32_t>(items.size()));
    const std::size_t old_size = buf_.size();
    buf_.resize(old_size + items.size() * sizeof(T));
    std::uint8_t* out = buf_.data() + old_size;
    for (const T item : items) {
      auto u = static_cast<std::make_unsigned_t<T>>(item);
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        *out++ = static_cast<std::uint8_t>(u & 0xFF);
        u = static_cast<std::make_unsigned_t<T>>(u >> 8);
      }
    }
  }

  /// Overwrite a fixed-width integer previously written at `offset`
  /// (same little-endian layout as Put). For prefixes whose value is
  /// only known once the rest of the frame has been encoded — e.g. the
  /// element count of an incrementally built batch frame. The offset
  /// must lie within already-written bytes.
  template <typename T>
    requires std::is_integral_v<T>
  void PatchAt(std::size_t offset, T value) {
    auto u = static_cast<std::make_unsigned_t<T>>(value);
    for (std::size_t i = 0; i < sizeof(u); ++i) {
      buf_[offset + i] = static_cast<std::uint8_t>(u & 0xFF);
      u = static_cast<std::make_unsigned_t<T>>(u >> 8);
    }
  }

  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class BufReader {
 public:
  explicit BufReader(BytesView data) : data_(data) {}

  template <typename T>
    requires std::is_integral_v<T> || std::is_enum_v<T>
  T Get() {
    using U = detail::WireCarrierT<T>;
    if (!Need(sizeof(U))) return T{};
    U u = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      u |= static_cast<U>(static_cast<U>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(U);
    return static_cast<T>(u);
  }

  /// Zero-copy: a view of the next length-prefixed run, borrowed from
  /// the frame being decoded. Valid only while the frame's storage is —
  /// copy (ToBytes) before storing into long-lived state.
  BytesView GetBytesView() {
    const auto size = Get<std::uint32_t>();
    if (failed_ || size > kMaxWireElements || !Need(size)) {
      failed_ = true;
      return {};
    }
    BytesView out = data_.subspan(pos_, size);
    pos_ += size;
    return out;
  }

  Bytes GetBytes() {
    BytesView view = GetBytesView();
    return Bytes(view.begin(), view.end());
  }

  std::string GetString() {
    Bytes raw = GetBytes();
    return std::string(raw.begin(), raw.end());
  }

  template <typename T, typename Fn>
  std::vector<T> GetVector(Fn&& decode_one) {
    const auto count = Get<std::uint32_t>();
    if (failed_ || count > kMaxWireElements) {
      failed_ = true;
      return {};
    }
    std::vector<T> out;
    // Cap the speculative reserve by the bytes actually left: every
    // element consumes at least one byte in every codec, so a garbage
    // length can never force an allocation larger than the frame.
    out.reserve(std::min<std::size_t>(count, remaining()));
    for (std::uint32_t i = 0; i < count && !failed_; ++i) {
      out.push_back(decode_one(*this));
    }
    return out;
  }

  /// GetVector into a caller-supplied container (anything with clear/
  /// reserve/push_back) — lets decoders fill inline-storage containers
  /// without a std::vector round trip.
  template <typename C, typename Fn>
  void GetInto(C& out, Fn&& decode_one) {
    out.clear();
    const auto count = Get<std::uint32_t>();
    if (failed_ || count > kMaxWireElements) {
      failed_ = true;
      return;
    }
    out.reserve(std::min<std::size_t>(count, remaining()));
    for (std::uint32_t i = 0; i < count && !failed_; ++i) {
      out.push_back(decode_one(*this));
    }
  }

  /// Counterpart of PutIntegralRun: decodes a length-prefixed run of
  /// little-endian integers with one bounds check for the whole run
  /// instead of one per element. Accepts the same frames GetInto over
  /// Get<T> would, and rejects the same ones (a count that overruns the
  /// buffer fails before any element is materialized).
  template <typename T, typename C>
  void GetIntegralRun(C& out) {
    static_assert(std::is_integral_v<T>);
    out.clear();
    const auto count = Get<std::uint32_t>();
    if (failed_ || count > kMaxWireElements ||
        !Need(static_cast<std::size_t>(count) * sizeof(T))) {
      failed_ = true;
      return;
    }
    out.resize(count);
    const std::uint8_t* in = data_.data() + pos_;
    for (std::uint32_t i = 0; i < count; ++i) {
      using U = std::make_unsigned_t<T>;
      U u = 0;
      for (std::size_t b = 0; b < sizeof(T); ++b) {
        u |= static_cast<U>(static_cast<U>(*in++) << (8 * b));
      }
      out[i] = static_cast<T>(u);
    }
    pos_ += static_cast<std::size_t>(count) * sizeof(T);
  }

  /// Current read offset. With Skip, lets a lazy decoder validate a
  /// region's framing and capture its byte range for later
  /// materialization instead of decoding it eagerly.
  [[nodiscard]] std::size_t pos() const { return pos_; }

  /// Advance past n bytes without materializing them — same bounds
  /// checks and sticky-failure semantics as any read.
  bool Skip(std::size_t n) {
    if (!Need(n)) return false;
    pos_ += n;
    return true;
  }

  /// True once any read ran past the buffer or a length prefix was
  /// implausible. Callers check this once after decoding a whole frame.
  [[nodiscard]] bool failed() const { return failed_; }

  /// True iff the whole buffer was consumed and nothing failed —
  /// trailing garbage also marks a frame invalid.
  [[nodiscard]] bool AtEndOk() const { return !failed_ && pos_ == data_.size(); }

  std::size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }

 private:
  bool Need(std::size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  BytesView data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace sbft
