// §VI final remark, executed: Byzantine *reader* clients cannot break
// the register — the read path never modifies correct-server state, the
// running_read table is bounded, and honest clients' operations remain
// regular. A Byzantine *writer* is outside the paper's model (writers
// only crash); the ForgedWriter strategy measures what it actually
// does: it can overwrite the register (servers adopt unconditionally —
// write access control is explicitly not part of the model), but it
// cannot corrupt protocol state or block honest operations.
#include <gtest/gtest.h>

#include <string>

#include "core/byzantine_client.hpp"
#include "core/deployment.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

struct Rig {
  explicit Rig(ByzantineClientStrategy strategy, std::uint64_t seed) {
    Deployment::Options options;
    options.config = ProtocolConfig::ForServers(6);
    options.config.max_running_reads = 16;
    options.seed = seed;
    options.n_clients = 2;
    deployment = std::make_unique<Deployment>(std::move(options));
    // Splice the Byzantine client into the same world.
    std::vector<NodeId> server_ids;
    for (std::size_t i = 0; i < 6; ++i) {
      server_ids.push_back(deployment->server_node(i));
    }
    deployment->world().AddNode(std::make_unique<ByzantineClient>(
        strategy, server_ids, deployment->config().k, seed * 13,
        /*rounds=*/64));
  }
  std::unique_ptr<Deployment> deployment;
};

class ByzantineClientSweep
    : public ::testing::TestWithParam<ByzantineClientStrategy> {};

TEST_P(ByzantineClientSweep, HonestReadersUnaffected) {
  const auto strategy = GetParam();
  if (strategy == ByzantineClientStrategy::kForgedWriter) {
    GTEST_SKIP() << "forged writers legitimately overwrite the register "
                    "(no write access control in the model); covered by "
                    "ForgedWriterOnlyOverwrites below";
  }
  Rig rig(strategy, 91);
  for (int i = 0; i < 8; ++i) {
    const Value value = Val("sane" + std::to_string(i));
    auto write = rig.deployment->Write(0, value);
    ASSERT_TRUE(write.completed) << ByzantineClientStrategyName(strategy);
    ASSERT_EQ(write.outcome.status, OpStatus::kOk);
    auto read = rig.deployment->Read(1);
    ASSERT_TRUE(read.completed);
    ASSERT_EQ(read.outcome.status, OpStatus::kOk);
    EXPECT_EQ(read.outcome.value, value)
        << "attacker: " << ByzantineClientStrategyName(strategy);
  }
}

TEST_P(ByzantineClientSweep, ServerStateStaysBounded) {
  const auto strategy = GetParam();
  Rig rig(strategy, 92);
  rig.deployment->world().Run(5'000'000);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_LE(rig.deployment->server(i).running_read_count(), 16u)
        << "server " << i << " vs "
        << ByzantineClientStrategyName(strategy);
    EXPECT_LE(rig.deployment->server(i).old_vals().size(),
              rig.deployment->config().history_window);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ByzantineClientSweep,
    ::testing::Values(ByzantineClientStrategy::kReadFlooder,
                      ByzantineClientStrategy::kGarbageSprayer,
                      ByzantineClientStrategy::kForgedWriter),
    [](const auto& param_info) {
      std::string name(ByzantineClientStrategyName(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ByzantineClientTest, ForgedWriterOnlyOverwrites) {
  // A forged writer can install values (as any writer could), but the
  // register keeps functioning: an honest write after the attack is
  // again visible to every honest reader.
  Rig rig(ByzantineClientStrategy::kForgedWriter, 93);
  rig.deployment->world().Run(5'000'000);  // let the attack play out
  const Value value = Val("after-the-storm");
  auto write = rig.deployment->Write(0, value);
  ASSERT_TRUE(write.completed);
  ASSERT_EQ(write.outcome.status, OpStatus::kOk);
  for (int i = 0; i < 3; ++i) {
    auto read = rig.deployment->Read(1);
    ASSERT_TRUE(read.completed);
    ASSERT_EQ(read.outcome.status, OpStatus::kOk);
    EXPECT_EQ(read.outcome.value, value);
  }
}

TEST(ByzantineClientTest, CrashedReaderLeavesBoundedResidue) {
  // A reader that crashes mid-read leaves its (reader, label) entry in
  // running_read tables; the entry is bounded and evicted by churn, and
  // nothing else is affected.
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 94;
  options.n_clients = 3;
  Deployment deployment(std::move(options));
  ASSERT_TRUE(deployment.Write(0, Val("base")).completed);

  // Client 2 starts a read, then crashes before it completes.
  deployment.client(2).StartRead([](const ReadOutcome&) {});
  deployment.world().RunUntil(
      [&] { return deployment.world().stats().frames_delivered > 40; },
      2'000);
  deployment.world().StopNode(deployment.client_node(2));
  deployment.world().Run();

  // Honest traffic continues unharmed.
  for (int i = 0; i < 5; ++i) {
    const Value value = Val("post-crash" + std::to_string(i));
    ASSERT_TRUE(deployment.Write(0, value).completed);
    auto read = deployment.Read(1);
    ASSERT_EQ(read.outcome.status, OpStatus::kOk);
    EXPECT_EQ(read.outcome.value, value);
  }
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_LE(deployment.server(i).running_read_count(),
              deployment.config().max_running_reads);
  }
}

TEST(ByzantineClientTest, CrashedWriterMidWriteDoesNotWedge) {
  // Writers may crash at any time (after the first write completes, in
  // the transient-fault case — Assumption 1). A mid-write crash leaves
  // a partially installed value; subsequent reads return either the old
  // or the partial value (both regular), and later writes supersede it.
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 95;
  options.n_clients = 2;
  Deployment deployment(std::move(options));
  ASSERT_TRUE(deployment.Write(0, Val("committed")).completed);

  deployment.client(0).StartWrite(Val("torn"), [](const WriteOutcome&) {});
  deployment.world().RunUntil(
      [&] { return deployment.world().stats().frames_delivered > 20; },
      1'000);
  deployment.world().StopNode(deployment.client_node(0));
  deployment.world().Run();

  auto read = deployment.Read(1);
  ASSERT_TRUE(read.completed);
  ASSERT_EQ(read.outcome.status, OpStatus::kOk);
  EXPECT_TRUE(read.outcome.value == Val("committed") ||
              read.outcome.value == Val("torn"))
      << std::string(read.outcome.value.begin(), read.outcome.value.end());

  // Client 1 can still write and its value wins.
  ASSERT_TRUE(deployment.Write(1, Val("recovered")).completed);
  auto read2 = deployment.Read(1);
  ASSERT_EQ(read2.outcome.status, OpStatus::kOk);
  EXPECT_EQ(read2.outcome.value, Val("recovered"));
}

}  // namespace
}  // namespace sbft
