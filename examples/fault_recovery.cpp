// Fault-recovery timeline: drives the register through every fault the
// paper's model allows — arbitrary initial state, corrupted channels,
// Byzantine servers, client corruption — and prints what each read
// returns, making the pseudo-stabilization point visible.
//
//   $ ./build/examples/fault_recovery
#include <cstdio>
#include <string>

#include "core/deployment.hpp"

using namespace sbft;

namespace {

std::string Show(const ReadOutcome& outcome) {
  switch (outcome.status) {
    case OpStatus::kOk: {
      std::string text(outcome.value.begin(), outcome.value.end());
      for (char& c : text) {
        if (c < 0x20 || c > 0x7E) c = '?';  // garbage bytes
      }
      return "\"" + text + "\"";
    }
    case OpStatus::kAborted:
      return "(abort)";
    case OpStatus::kFailed:
      return "(failed)";
  }
  return "?";
}

}  // namespace

int main() {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 0xFEED;
  options.n_clients = 2;
  options.byzantine[5] = ByzantineStrategy::kGarbage;
  Deployment deployment(std::move(options));

  std::printf("phase 0: pristine boot — no write has happened yet\n");
  for (int i = 0; i < 2; ++i) {
    auto read = deployment.Read(1);
    std::printf("  read -> %s  (initial value: empty)\n",
                Show(read.outcome).c_str());
  }

  std::printf("\nphase 1: TRANSIENT FAULT (all correct server state + "
              "channels + client state overwritten with garbage)\n");
  deployment.CorruptAllCorrectServers();
  deployment.CorruptAllChannels(3);
  deployment.CorruptClient(1);

  std::printf("  reads during the transitory phase (may abort or return "
              "garbage — pseudo-stabilization permits this):\n");
  for (int i = 0; i < 3; ++i) {
    auto read = deployment.Read(1);
    std::printf("  read -> %s\n", Show(read.outcome).c_str());
  }

  std::printf("\nphase 2: the first complete write (Assumption 1) — the "
              "stabilization point of Theorem 2\n");
  const std::string text = "post-fault state";
  auto write = deployment.Write(0, Value(text.begin(), text.end()));
  std::printf("  write -> %s (retries: %u)\n",
              write.outcome.status == OpStatus::kOk ? "ok" : "FAILED",
              write.outcome.retries);

  std::printf("\nphase 3: every subsequent read is regular (Lemma 7)\n");
  int correct = 0;
  const int kReads = 6;
  for (int i = 0; i < kReads; ++i) {
    auto read = deployment.Read(1);
    const bool good = read.outcome.status == OpStatus::kOk &&
                      read.outcome.value == Value(text.begin(), text.end());
    correct += good ? 1 : 0;
    std::printf("  read -> %s%s\n", Show(read.outcome).c_str(),
                good ? "" : "  <-- VIOLATION");
  }
  std::printf("\n%d/%d post-stabilization reads correct\n", correct, kReads);
  return correct == kReads ? 0 : 1;
}
