// Baseline 1: ABD-style crash-tolerant MWMR regular register.
//
// Majority quorums (n >= 2f+1 for f *crash* faults), unbounded
// sequence-number timestamps, single-phase reads (regular, no
// write-back). This is the classical construction the paper's related
// work contrasts with: correct under crash faults, but
//   * a Byzantine server trivially poisons reads (it reports the highest
//     timestamp with a garbage value and wins the max-ts rule), and
//   * it is not self-stabilizing (corrupted server state with a huge
//     timestamp is returned forever).
// Experiment E5 measures exactly these failures.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "labels/unbounded_timestamp.hpp"
#include "net/message.hpp"
#include "sim/world.hpp"

namespace sbft {

class AbdServer : public Automaton {
 public:
  AbdServer() = default;

  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;
  void CorruptState(Rng& rng) override;

  [[nodiscard]] const UnboundedTs& ts() const { return ts_; }
  [[nodiscard]] const Value& value() const { return value_; }
  void SetState(UnboundedTs ts, Value value) {
    ts_ = ts;
    value_ = std::move(value);
  }

 private:
  UnboundedTs ts_;
  Value value_;
};

struct AbdReadOutcome {
  bool ok = false;
  Value value;
  UnboundedTs ts;
};

class AbdClient : public Automaton {
 public:
  AbdClient(std::vector<NodeId> servers, std::uint32_t client_id);

  void OnStart(IEndpoint& endpoint) override;
  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;
  void CorruptState(Rng& rng) override;

  void StartWrite(Value value, std::function<void(bool)> callback);
  void StartRead(std::function<void(const AbdReadOutcome&)> callback);
  [[nodiscard]] bool idle() const { return phase_ == Phase::kIdle; }

 private:
  enum class Phase : std::uint8_t { kIdle, kGetTs, kWrite, kRead };

  [[nodiscard]] std::size_t Majority() const {
    return servers_.size() / 2 + 1;
  }
  [[nodiscard]] std::optional<std::size_t> ServerIndex(NodeId node) const;

  std::vector<NodeId> servers_;
  std::uint32_t client_id_;
  IEndpoint* endpoint_ = nullptr;

  Phase phase_ = Phase::kIdle;
  std::uint64_t rid_ = 0;  // unbounded operation identifier
  Value write_value_;
  std::function<void(bool)> write_callback_;
  std::function<void(const AbdReadOutcome&)> read_callback_;
  // Index-dense per-server state (vectors sized n + presence bits);
  // ascending-index iteration matches the ordered containers this
  // replaced, so decisions are unchanged. First reply per server wins.
  std::vector<UnboundedTs> collected_ts_;
  std::vector<std::uint8_t> collected_bits_;
  std::uint32_t collected_count_ = 0;
  std::vector<std::uint8_t> write_acks_;
  std::uint32_t write_ack_count_ = 0;
  std::vector<UnboundedTs> read_ts_;
  std::vector<Value> read_vals_;
  std::vector<std::uint8_t> read_bits_;
  std::uint32_t read_count_ = 0;
};

}  // namespace sbft
