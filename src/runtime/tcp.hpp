// Minimal TCP transport on 127.0.0.1 for the threaded runtime.
//
// Every node owns a listening socket on an ephemeral port; peers
// connect lazily on first send and keep the connection. Frames are
// length-prefixed: [u32 length][u32 sender id][payload]. A reader
// thread per accepted connection decodes frames and hands them to the
// cluster's delivery callback. Malformed frames (length out of bounds)
// close the connection — the peer will reconnect; the protocol layer
// tolerates loss-free FIFO per connection, which TCP provides.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "sim/types.hpp"

namespace sbft {

class TcpBus {
 public:
  using DeliverFn = std::function<void(NodeId src, NodeId dst, Bytes frame)>;

  explicit TcpBus(DeliverFn deliver) : deliver_(std::move(deliver)) {}
  ~TcpBus() { Stop(); }

  /// Create the listening socket for `node`; returns the bound port.
  /// Call once per node before Start().
  std::uint16_t AddNode(NodeId node);

  /// Spawn acceptor threads.
  void Start();
  void Stop();

  /// Send a frame from `src` to `dst` (connects lazily, thread-safe).
  /// Returns false if the bus is stopped or the connection failed.
  bool Send(NodeId src, NodeId dst, BytesView frame);

 private:
  struct Listener {
    int fd = -1;
    std::uint16_t port = 0;
    std::thread acceptor;
  };

  void AcceptLoop(NodeId node);
  void ReadLoop(NodeId node, int fd);

  DeliverFn deliver_;
  std::mutex mutex_;
  std::map<NodeId, Listener> listeners_;
  // Outgoing connections keyed by (src, dst); each has a write mutex
  // and a reusable write buffer (header + payload are coalesced into a
  // single send per frame, guarded by the same mutex).
  struct Connection {
    int fd = -1;
    std::unique_ptr<std::mutex> write_mutex = std::make_unique<std::mutex>();
    Bytes write_buf;
  };
  std::map<std::pair<NodeId, NodeId>, Connection> connections_;
  std::vector<std::thread> readers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace sbft
