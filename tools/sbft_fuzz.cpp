// sbft_fuzz: schedule-exploration fuzzer for the stabilizing BFT
// register. Three modes:
//
//   campaign (default)   seeded generate/run/check/shrink loop
//   --replay TOKEN       re-execute one scenario byte-for-byte
//   --corpus DIR         replay every *.token file in DIR
//
// Exit code 0 means "nothing unexpected": violations in sub-resilient
// (n = 5f) topologies are Theorem 1 made executable and are reported
// but expected. Exit code 1 means a genuine failure: a violation in a
// safe topology (n > 5f), a corpus scenario that no longer passes, or
// a token that fails to decode.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"

namespace {

using namespace sbft;
using namespace sbft::fuzz;

constexpr const char* kUsage = R"(usage: sbft_fuzz [options]

Campaign mode (default):
  --runs N               scenarios to execute (default 200)
  --seed S               campaign seed (default 1)
  --allow-sub-resilience also generate n = 5f topologies (Theorem 1
                         territory; their violations are expected)
  --max-f N              largest f to generate (default 2)
  --no-shrink            report violations without shrinking
  --shrink-budget N      re-runs allowed per shrink (default 300)
  --budget-seconds X     wall-clock cap; stops early when exceeded
  --jobs N               worker threads for scenario execution
                         (default 1; 0 = one per hardware core).
                         Results are identical for every N.
  --smoke                CI smoke preset: --budget-seconds 60 with an
                         effectively unbounded run count
  --verbose              per-run progress lines

Replay / corpus:
  --replay TOKEN         re-execute one replay token
  --trace                with --replay: print the full message trace
  --describe TOKEN       decode and print a token without running it
  --corpus DIR           replay every *.token file in DIR
  --write-corpus DIR     write the curated corpus tokens into DIR
)";

int Fail(const std::string& message) {
  std::cerr << "sbft_fuzz: " << message << "\n";
  return 2;
}

void PrintOutcome(const Scenario& scenario, const RunOutcome& outcome) {
  std::cout << scenario.Describe();
  std::cout << "result: "
            << (outcome.violation() ? "VIOLATION" : "no violation") << "\n";
  std::cout << "  all_completed=" << (outcome.all_completed ? "yes" : "no")
            << " stabilized_from=";
  if (outcome.stabilized_from == kTimeForever) {
    std::cout << "never";
  } else {
    std::cout << outcome.stabilized_from;
  }
  std::cout << " checked_reads=" << outcome.checked_reads
            << " reads_aborted=" << outcome.reads_aborted
            << " ops_failed=" << outcome.ops_failed << "\n";
  for (const auto& violation : outcome.report.violations) {
    std::cout << "  violation: " << violation << "\n";
  }
}

int RunReplay(const std::string& token, bool with_trace) {
  auto decoded = DecodeToken(token);
  if (!decoded.ok()) return Fail("bad token: " + decoded.error());
  const Scenario& scenario = decoded.value();
  RunOptions options;
  options.record_trace = with_trace;
  const RunOutcome outcome = RunScenario(scenario, options);
  PrintOutcome(scenario, outcome);
  if (with_trace) {
    std::cout << "--- trace ---\n" << outcome.trace;
    if (!outcome.trace.empty() && outcome.trace.back() != '\n') {
      std::cout << "\n";
    }
  }
  // Replaying a sub-resilient repro is expected to violate; a violation
  // in a safe topology is a real bug.
  return (outcome.violation() && !scenario.sub_resilient()) ? 1 : 0;
}

int RunDescribe(const std::string& token) {
  auto decoded = DecodeToken(token);
  if (!decoded.ok()) return Fail("bad token: " + decoded.error());
  std::cout << decoded.value().Describe();
  return 0;
}

int RunCorpusDir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".token") files.push_back(entry.path());
  }
  if (ec) return Fail("cannot read corpus dir " + dir + ": " + ec.message());
  if (files.empty()) return Fail("no *.token files in " + dir);
  std::sort(files.begin(), files.end());

  std::size_t failures = 0;
  for (const auto& path : files) {
    std::ifstream in(path);
    std::string token;
    // Token is the first non-comment, non-empty line; '#' lines carry
    // the human-readable description.
    for (std::string line; std::getline(in, line);) {
      if (line.empty() || line[0] == '#') continue;
      token = line;
      break;
    }
    auto decoded = DecodeToken(token);
    if (!decoded.ok()) {
      std::cout << path.filename().string() << ": DECODE FAILURE ("
                << decoded.error() << ")\n";
      failures++;
      continue;
    }
    const RunOutcome outcome = RunScenario(decoded.value());
    const bool bad = outcome.violation() && !decoded.value().sub_resilient();
    std::cout << path.filename().string() << ": "
              << (bad ? "FAIL" : "ok")
              << " (checked_reads=" << outcome.checked_reads << ")\n";
    if (bad) {
      for (const auto& violation : outcome.report.violations) {
        std::cout << "  violation: " << violation << "\n";
      }
      failures++;
    }
  }
  std::cout << files.size() << " corpus scenarios, " << failures
            << " failures\n";
  return failures == 0 ? 0 : 1;
}

int WriteCorpus(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Fail("cannot create " + dir + ": " + ec.message());
  const auto corpus = CuratedCorpus();
  std::size_t index = 0;
  for (const auto& entry : corpus) {
    std::ostringstream name;
    name << (index < 10 ? "0" : "") << index << "-" << entry.name
         << ".token";
    const fs::path path = fs::path(dir) / name.str();
    std::ofstream out(path);
    out << "# " << entry.comment << "\n"
        << "# " << entry.scenario.Summary() << "\n"
        << EncodeToken(entry.scenario) << "\n";
    if (!out) return Fail("cannot write " + path.string());
    std::cout << "wrote " << path.string() << "\n";
    index++;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignOptions options;
  options.runs = 200;
  options.out = &std::cout;

  std::string replay_token;
  std::string describe_token;
  std::string corpus_dir;
  std::string write_corpus_dir;
  bool with_trace = false;

  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "sbft_fuzz: " << flag << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };
  const auto need_number = [&](int& i, const char* flag) -> std::uint64_t {
    const char* text = need_value(i, flag);
    try {
      std::size_t used = 0;
      const std::uint64_t value = std::stoull(text, &used);
      if (used != std::strlen(text)) throw std::invalid_argument(text);
      return value;
    } catch (const std::exception&) {
      std::cerr << "sbft_fuzz: " << flag << " needs a number, got '" << text
                << "'\n";
      std::exit(2);
    }
  };
  const auto need_double = [&](int& i, const char* flag) -> double {
    const char* text = need_value(i, flag);
    try {
      std::size_t used = 0;
      const double value = std::stod(text, &used);
      if (used != std::strlen(text)) throw std::invalid_argument(text);
      return value;
    } catch (const std::exception&) {
      std::cerr << "sbft_fuzz: " << flag << " needs a number, got '" << text
                << "'\n";
      std::exit(2);
    }
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--runs") {
      options.runs = need_number(i, "--runs");
    } else if (arg == "--seed") {
      options.seed = need_number(i, "--seed");
    } else if (arg == "--allow-sub-resilience") {
      options.generator.allow_sub_resilience = true;
    } else if (arg == "--max-f") {
      options.generator.max_f =
          static_cast<std::uint32_t>(need_number(i, "--max-f"));
    } else if (arg == "--no-shrink") {
      options.do_shrink = false;
    } else if (arg == "--shrink-budget") {
      options.shrink_budget = need_number(i, "--shrink-budget");
    } else if (arg == "--budget-seconds") {
      options.budget_seconds = need_double(i, "--budget-seconds");
    } else if (arg == "--jobs") {
      options.jobs = need_number(i, "--jobs");
    } else if (arg == "--smoke") {
      options.budget_seconds = 60.0;
      options.runs = 1'000'000;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--replay") {
      replay_token = need_value(i, "--replay");
    } else if (arg == "--trace") {
      with_trace = true;
    } else if (arg == "--describe") {
      describe_token = need_value(i, "--describe");
    } else if (arg == "--corpus") {
      corpus_dir = need_value(i, "--corpus");
    } else if (arg == "--write-corpus") {
      write_corpus_dir = need_value(i, "--write-corpus");
    } else {
      std::cerr << "sbft_fuzz: unknown option " << arg << "\n" << kUsage;
      return 2;
    }
  }

  if (!describe_token.empty()) return RunDescribe(describe_token);
  if (!replay_token.empty()) return RunReplay(replay_token, with_trace);
  if (!write_corpus_dir.empty()) return WriteCorpus(write_corpus_dir);
  if (!corpus_dir.empty()) return RunCorpusDir(corpus_dir);

  const CampaignResult result = RunCampaign(options);
  std::cout << "campaign: " << result.runs_executed << " runs, "
            << result.violations.size() << " violations ("
            << result.safe_violations() << " in safe topologies, "
            << result.sub_resilience_violations()
            << " at the n=5f bound), " << result.stalled << " stalled, "
            << result.vacuous << " vacuous\n";
  return result.safe_violations() == 0 ? 0 : 1;
}
