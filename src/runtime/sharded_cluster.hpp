// Sharded deployment: G independent register groups behind a
// client-side consistent-hash router.
//
// Each group is a full RegisterCluster — its own n > 5f server
// population, quorum system, mux/shared-flush stack, mailbox namespace,
// and (on TCP) its own listener sockets and epoll reactor pool — so
// groups share NOTHING but the process: protocol work of different
// groups runs on different node threads and scales with cores. The
// router consistent-hashes 64-bit keys over the groups (core/
// shard_map.hpp) and forwards the async register API, so the load
// driver and benches drive a sharded deployment exactly as they drive
// one group.
//
// Live growth (AddGroup) bumps the shard-map epoch; ~1/(G+1) of the key
// space re-routes to the new group. Migration is drain-and-handoff per
// key: a migrated key's WRITES go to its new group immediately, while
// READS stay anchored to the group holding the key's latest complete
// write until the first write completes in the new group. The new
// group's register starts in its initial state — exactly a transient
// fault in the paper's model — and the anchor rule keeps the handoff
// invisible to the per-key regular-register checker: no read is routed
// at a group before that group holds a completed write for the key
// (the same Definition-1 suffix anchoring the fuzz checker applies per
// key). Correctness requires the mux per-register contract callers
// already obey: at most one in-flight operation per key, the next
// issued from (or after) the previous one's completion callback.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/shard_map.hpp"
#include "runtime/register_cluster.hpp"

namespace sbft {

class ShardedCluster {
 public:
  struct Options {
    /// Per-group deployment template (servers, transport, batching,
    /// shared flush, ...). Each group forks its own seed from
    /// `group.seed` so groups are independent but the whole deployment
    /// stays reproducible.
    RegisterCluster::Options group;
    std::size_t n_groups = 1;
    std::size_t vnodes_per_group = ShardMap::kDefaultVnodesPerGroup;
  };

  explicit ShardedCluster(const Options& options);
  ~ShardedCluster() { Stop(); }

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  void Start();
  void Stop();

  /// Async register API, routed by key. Callbacks run on the owning
  /// group's mux-client node thread. Same contract as RegisterCluster:
  /// one in-flight operation per key.
  void AsyncWrite(std::uint64_t key, Value value, WriteCallback callback);
  void AsyncRead(std::uint64_t key, ReadCallback callback);

  /// Synchronous wrappers (block on a future; the group's op_timeout
  /// maps expiry to kFailed).
  WriteOutcome Write(std::uint64_t key, Value value);
  ReadOutcome Read(std::uint64_t key);

  /// Grow the deployment by one group while traffic flows: builds and
  /// starts the group, then installs the next shard-map epoch. Returns
  /// the new group's id. Safe from any thread EXCEPT a node thread of
  /// this deployment's clusters (it blocks on the new group's startup).
  GroupId AddGroup();

  /// Transient-fault hook: corrupt server `server_index` of EVERY
  /// group (the per-group seed is shared so corruption agrees across
  /// the replicas of each group, as RegisterCluster::CorruptServer
  /// documents; registers fork per-id, so groups diverge naturally).
  void CorruptServer(std::size_t server_index, std::uint64_t seed);

  [[nodiscard]] std::size_t n_groups() const;
  [[nodiscard]] std::uint64_t epoch() const;
  /// Routing observables (tests / diagnostics): where writes of `key`
  /// go now, and where reads of `key` are currently anchored.
  [[nodiscard]] GroupId WriteGroupOf(std::uint64_t key) const;
  [[nodiscard]] GroupId ReadGroupOf(std::uint64_t key) const;
  /// Keys whose read anchor disagrees with the current map — i.e. keys
  /// still awaiting their first complete write post-migration.
  [[nodiscard]] std::size_t keys_awaiting_handoff() const;

  /// Aggregates over all groups (throughput / protocol-CPU accounting,
  /// quiescent-read like the per-cluster counters).
  [[nodiscard]] std::uint64_t frames_delivered() const;
  [[nodiscard]] std::uint64_t protocol_cpu_ns() const;
  [[nodiscard]] std::uint64_t node_flush_rounds() const;

  /// Direct group access for tests (index < n_groups()).
  [[nodiscard]] RegisterCluster& group(std::size_t index);

 private:
  [[nodiscard]] RegisterCluster* RouteWrite(std::uint64_t key,
                                            GroupId* group_out);
  [[nodiscard]] RegisterCluster* RouteRead(std::uint64_t key);
  /// A completed write anchors the key's reads at the group that served
  /// it (the drain-and-handoff flip).
  void RecordWriteHome(std::uint64_t key, GroupId group);

  static RegisterCluster::Options GroupOptions(const Options& options,
                                               std::size_t group_index);

  Options options_;
  /// Routing lock, taken with the load driver's run-state mutex held
  /// (StartOp -> AsyncWrite -> RouteWrite). Protocol calls and user
  /// callbacks always run after it is released, so it acquires
  /// nothing nested.
  mutable Mutex mutex_ ACQUIRED_AFTER(lock_order::kLoadDriver);
  /// Groups are append-only (AddGroup) and destroyed only by Stop();
  /// raw RegisterCluster pointers taken under the lock stay valid, so
  /// the actual protocol call runs outside it.
  std::vector<std::unique_ptr<RegisterCluster>> groups_ GUARDED_BY(mutex_);
  ShardMap map_ GUARDED_BY(mutex_);
  /// key -> group holding its latest COMPLETE write. Reads route here
  /// when present; absent keys follow the current map (never-written
  /// keys hold the initial value everywhere, so any group is regular
  /// for them). One entry per written key — the same order of state as
  /// the groups' own mux register tables. Correct across repeated
  /// AddGroup epochs: the anchor only moves when a write completes, so
  /// it always names the group that actually holds the data.
  std::unordered_map<std::uint64_t, GroupId> write_home_ GUARDED_BY(mutex_);
  bool started_ GUARDED_BY(mutex_) = false;
  bool stopped_ GUARDED_BY(mutex_) = false;
};

}  // namespace sbft
