// Bounded read-operation labels (Figure 3 of the paper).
//
// Each client owns a finite pool of labels used only to match replies to
// the read operation that solicited them. The client tracks, per
// (server, label), whether that server may still hold an undelivered
// message carrying the label (`recent_labels` matrix in the paper); the
// FLUSH / FLUSH_ACK round implemented by the reader automaton exploits
// channel FIFO-ness to prove a label has drained and can be reused.
//
// The pool itself is pure bookkeeping (no messaging) so it can be unit-
// and property-tested in isolation, and so the fault injector can
// corrupt it wholesale.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"

namespace sbft {

using ReadLabel = std::uint32_t;
using ServerIndex = std::size_t;

class ReadLabelPool {
 public:
  /// `n_servers` rows by `n_labels` label columns. The paper requires
  /// only n_labels >= 2 (a label different from the last one used must
  /// exist); more labels reduce flush latency after corruption.
  ReadLabelPool(std::size_t n_servers, std::size_t n_labels);

  [[nodiscard]] std::size_t n_servers() const { return pending_.size(); }
  [[nodiscard]] std::size_t n_labels() const { return n_labels_; }

  /// Figure 3 line 01: pick a candidate label different from the last
  /// one used. Among the eligible labels the one with the fewest pending
  /// entries is chosen (deterministic round-robin tie-break), because
  /// every pending entry is a server that may still emit stale traffic
  /// for the label — see the line-06 guard in the client.
  [[nodiscard]] ReadLabel PickCandidate() const;

  /// Record that `server` may have an in-flight message for `label`
  /// (client just sent READ with it — Figure 2 line 06).
  void MarkPending(ServerIndex server, ReadLabel label);

  /// Record that `server` is known to have no in-flight message for
  /// `label` (REPLY or FLUSH_ACK carrying it arrived — Figure 2 line 27
  /// and Figure 3 line 12).
  void ClearPending(ServerIndex server, ReadLabel label);

  [[nodiscard]] bool IsPending(ServerIndex server, ReadLabel label) const;

  /// Number of servers still marked pending for `label` (the "column
  /// count" of Figure 3 line 06).
  [[nodiscard]] std::size_t PendingCount(ReadLabel label) const;

  /// Commit to a label for the next read and remember it as "last used".
  void SetLast(ReadLabel label) { last_ = label % n_labels_; }
  [[nodiscard]] ReadLabel last() const { return last_; }

  /// Overwrite the whole matrix and `last` with arbitrary bits: models a
  /// transient fault hitting the client. The pool must recover through
  /// the flush protocol (tested by E8 / find_label tests).
  void Corrupt(Rng& rng);

  /// Clamp out-of-range state (e.g. after Corrupt) so accessors stay
  /// total. Called by the reader automaton before each operation; part
  /// of the stabilizing discipline of "sanitize before use".
  void SanitizeState();

 private:
  std::size_t n_labels_;
  ReadLabel last_ = 0;
  // pending_[server][label]
  std::vector<std::vector<bool>> pending_;
};

}  // namespace sbft
