// E1 / Theorem 1: the lower-bound table. For each f, replay the proof's
// adversarial schedule against a TM_1R register at n = 5f (violation
// expected) and n = 5f+1 (the same attack must fail), over several
// seeds. Regenerates the paper's central impossibility claim and shows
// the bound is tight.
#include <string>

#include "baselines/lower_bound_replay.hpp"
#include "bench_json.hpp"
#include "bench_util.hpp"

using namespace sbft;
using namespace sbft::bench;

int main(int argc, char** argv) {
  JsonReport report("lower_bound", ParseBenchArgs(argc, argv));
  Header("E1 (Theorem 1)",
         "regularity violations of a TM_1R register under the proof's "
         "adversarial schedule");
  Row("%-4s %-4s %-10s %-22s %-22s", "f", "n", "setting", "runs violated",
      "ops completed");

  for (std::uint32_t f = 1; f <= 4; ++f) {
    for (std::uint32_t extra = 0; extra <= 1; ++extra) {
      int violated = 0;
      int completed = 0;
      const int kRuns = report.smoke() ? 4 : 10;
      for (int seed = 1; seed <= kRuns; ++seed) {
        ReplayOptions options;
        options.f = f;
        options.extra_correct = extra;
        options.seed = static_cast<std::uint64_t>(seed);
        auto result = RunTheorem1Replay(options);
        completed += result.all_ops_completed ? 1 : 0;
        violated += result.violated() ? 1 : 0;
      }
      Row("%-4u %-4u %-10s %2d/%-19d %2d/%-19d", f, 5 * f + extra,
          extra == 0 ? "n=5f" : "n=5f+1", violated, kRuns, completed, kRuns);
      report.Metric("f" + std::to_string(f) +
                        (extra == 0 ? ".n5f" : ".n5f1") + ".violated_frac",
                    static_cast<double>(violated) / kRuns, "runs");
    }
  }
  Row("%s", "\nexpected shape: n=5f rows violate in every completed run; "
            "n=5f+1 rows never violate (tight bound).");
  return report.Flush() ? 0 : 1;
}
