// Replays every curated corpus token under tests/fuzz/corpus/ (path
// baked in via SBFT_FUZZ_CORPUS_DIR). Each token is a full scenario —
// topology, adversary mix, fault injections, workload — and every one
// uses a safe topology (n > 5f), so the protocol must produce zero
// post-stabilization violations on all of them, forever. A failure here
// means a protocol regression reachable by a schedule we have already
// seen, with the token as the ready-made repro.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"

#ifndef SBFT_FUZZ_CORPUS_DIR
#error "build must define SBFT_FUZZ_CORPUS_DIR"
#endif

namespace sbft::fuzz {
namespace {

struct CorpusFile {
  std::string name;
  std::string token;
};

std::vector<CorpusFile> LoadCorpus() {
  namespace fs = std::filesystem;
  std::vector<CorpusFile> files;
  for (const auto& entry : fs::directory_iterator(SBFT_FUZZ_CORPUS_DIR)) {
    if (entry.path().extension() != ".token") continue;
    std::ifstream in(entry.path());
    std::string token;
    for (std::string line; std::getline(in, line);) {
      if (line.empty() || line[0] == '#') continue;
      token = line;
      break;
    }
    files.push_back({entry.path().filename().string(), token});
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return files;
}

TEST(FuzzCorpus, HasAtLeastTenScenarios) {
  EXPECT_GE(LoadCorpus().size(), 10u);
}

TEST(FuzzCorpus, EveryTokenDecodesToSafeTopology) {
  for (const auto& file : LoadCorpus()) {
    auto decoded = DecodeToken(file.token);
    ASSERT_TRUE(decoded.ok()) << file.name << ": " << decoded.error();
    EXPECT_FALSE(decoded.value().sub_resilient())
        << file.name << " is n=5f; the corpus must stay replayable-green";
    // Tokens are stored normalized: decode(encode(s)) is the identity,
    // so the scenario that runs is exactly the scenario that was stored.
    EXPECT_EQ(EncodeToken(decoded.value()), file.token) << file.name;
  }
}

TEST(FuzzCorpus, ContainsAllFaultInjectionScenarioAtTightBound) {
  // The ISSUE-mandated anchor entry: n = 5f+1 exercising every
  // injection primitive at once. Identified structurally, not by name.
  bool found = false;
  for (const auto& file : LoadCorpus()) {
    auto decoded = DecodeToken(file.token);
    ASSERT_TRUE(decoded.ok()) << file.name;
    const Scenario& s = decoded.value();
    if (s.extra != 1) continue;
    bool corrupt_server = false, corrupt_client = false, garbage = false;
    for (const auto& fault : s.faults) {
      corrupt_server |= fault.kind == FaultKind::kCorruptServer;
      corrupt_client |= fault.kind == FaultKind::kCorruptClient;
      garbage |= fault.kind == FaultKind::kGarbageFrames;
    }
    found |= corrupt_server && corrupt_client && garbage;
  }
  EXPECT_TRUE(found) << "no n=5f+1 scenario injects corrupt-server + "
                        "corrupt-client + garbage-frames together";
}

TEST(FuzzCorpus, ReplaysWithZeroViolations) {
  const auto corpus = LoadCorpus();
  ASSERT_FALSE(corpus.empty());
  std::size_t covered = 0;
  for (const auto& file : corpus) {
    auto decoded = DecodeToken(file.token);
    ASSERT_TRUE(decoded.ok()) << file.name;
    const RunOutcome outcome = RunScenario(decoded.value());
    EXPECT_TRUE(outcome.all_completed) << file.name << " hit the event cap";
    EXPECT_FALSE(outcome.violation())
        << file.name << ": "
        << (outcome.report.violations.empty()
                ? std::string("(empty report)")
                : outcome.report.violations.front());
    if (outcome.checked_reads > 0) covered++;
  }
  // The corpus must actually prove something: the overwhelming majority
  // of entries must land reads inside the checked suffix.
  EXPECT_GE(covered, corpus.size() - 1);
}

}  // namespace
}  // namespace sbft::fuzz
