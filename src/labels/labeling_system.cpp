#include "labels/labeling_system.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace sbft {

LabelingSystem::LabelingSystem(std::uint32_t k) : params_{k} {
  SBFT_ASSERT(k >= 2);
}

double LabelingSystem::LabelSpaceSize() const {
  // m choices of sting times C(m-1, k) antisting sets.
  const double m = params_.Domain();
  double binom = 1.0;
  for (std::uint32_t i = 0; i < params_.k; ++i) {
    binom *= (m - 1.0 - i) / (i + 1.0);
  }
  return m * binom;
}

std::size_t LabelingSystem::LabelWireSize() const {
  // sting (4) + length prefix (4) + k antistings (4 each).
  return 8 + 4 * static_cast<std::size_t>(params_.k);
}

Label LabelingSystem::Next(std::span<const Label> existing,
                           std::size_t distrusted) const {
  SBFT_ASSERT(existing.size() <= params_.k);
  const std::uint32_t m = params_.Domain();

  // Sanitize inputs: after a transient fault servers may report garbage;
  // next() must still be defined (and dominate the sanitized forms).
  std::vector<Label> inputs;
  inputs.reserve(existing.size());
  for (const Label& label : existing) inputs.push_back(Sanitize(label));

  // The new antisting set starts as the set of input stings, so that
  // every input's sting lands in it (first half of l < next).
  std::vector<std::uint32_t> antistings;
  antistings.reserve(params_.k);
  for (const Label& label : inputs) antistings.push_back(label.sting);
  std::sort(antistings.begin(), antistings.end());
  antistings.erase(std::unique(antistings.begin(), antistings.end()),
                   antistings.end());

  // Forbidden stings: every input antisting (second half of l < next:
  // the new sting must avoid every A_i) plus the new antisting set
  // (structural invariant sting not-in own antistings).
  std::vector<std::uint32_t> forbidden = antistings;
  for (const Label& label : inputs) {
    forbidden.insert(forbidden.end(), label.antistings.begin(),
                     label.antistings.end());
  }
  std::sort(forbidden.begin(), forbidden.end());
  forbidden.erase(std::unique(forbidden.begin(), forbidden.end()),
                  forbidden.end());

  // |forbidden| <= k*k + k < m, so a sting exists. The scan starts just
  // above the largest input sting and wraps, rather than always taking
  // the smallest free element: a greedy smallest-first choice makes the
  // label sequence of a solo writer cycle with period ~3, so vertices of
  // writes still inside the old_vals history window would re-alias
  // fresh labels and create spurious precedence cycles in the WTsG. The
  // rotating choice stretches the cycle to ~m = k^2+k+1 labels, far
  // beyond any history window (the paper's Assumption 2 quiescence
  // discussion makes the same "labels wrap slowly relative to memory"
  // assumption).
  std::vector<std::uint32_t> stings_sorted;
  stings_sorted.reserve(inputs.size());
  for (const Label& label : inputs) stings_sorted.push_back(label.sting);
  std::sort(stings_sorted.begin(), stings_sorted.end());
  // Drop the `distrusted` largest stings (possible Byzantine lies) from
  // the rotation heuristic.
  const std::size_t drop = std::min(distrusted, stings_sorted.size());
  stings_sorted.resize(stings_sorted.size() - drop);
  std::uint32_t start =
      stings_sorted.empty() ? 0 : stings_sorted.back() + 1;
  std::uint32_t sting = 0;
  for (std::uint32_t i = 0; i < m; ++i) {
    const std::uint32_t candidate = (start + i) % m;
    if (!std::binary_search(forbidden.begin(), forbidden.end(), candidate)) {
      sting = candidate;
      break;
    }
  }

  // Pad the antisting set to exactly k elements (!= sting), scanning
  // DOWNWARD from just below the fresh sting. The padded elements then
  // cover the recently-used sting region (strengthening domination of
  // recent labels) and stay clear of the region the rotation is moving
  // into — padding with the smallest elements would park antistings
  // exactly where the rotation wraps, letting week-old labels spuriously
  // dominate fresh post-wrap ones.
  std::uint32_t offset = 2;
  while (antistings.size() < params_.k) {
    SBFT_ASSERT(offset < m + 2);
    const std::uint32_t candidate = (sting + m - offset) % m;
    ++offset;
    const bool used = candidate == sting ||
                      std::binary_search(antistings.begin(), antistings.end(),
                                         candidate);
    if (!used) {
      antistings.insert(
          std::upper_bound(antistings.begin(), antistings.end(), candidate),
          candidate);
    }
  }

  Label next;
  next.sting = sting;
  next.antistings.assign(antistings.begin(), antistings.end());
  SBFT_ASSERT(IsValid(next));
  return next;
}

}  // namespace sbft
