// Byzantine clients. The paper's closing remark (§VI): "when reader
// clients are Byzantine our protocol still verifies the MWMR regular
// register specification — the read protocol is performed in one phase
// so Byzantine readers cannot modify the value and the timestamp
// maintained by the correct servers."
//
// These automata attack the server-side surface a client can reach:
// flooding READs/FLUSHes with every label, never completing reads (so
// running_read tables would grow without the paper's boundedness), and
// spraying garbage frames and forged WRITEs. Correct servers must keep
// bounded state and honest clients must stay unaffected except for the
// extra traffic (tested in tests/core/byzantine_client_test.cpp).
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "labels/labeling_system.hpp"
#include "net/message.hpp"
#include "sim/world.hpp"

namespace sbft {

enum class ByzantineClientStrategy : std::uint8_t {
  /// Registers endless reads (READ with every label, never a
  /// COMPLETE_READ): tries to blow up running_read tables.
  kReadFlooder,
  /// Sprays undecodable garbage frames at every server.
  kGarbageSprayer,
  /// Issues forged WRITEs with random timestamps and values, plus
  /// random FLUSH/COMPLETE_READ noise. A Byzantine *writer* is outside
  /// the paper's model (writers may only crash), so this strategy is
  /// used to measure what actually breaks — see the test comments.
  kForgedWriter,
};

class ByzantineClient final : public Automaton {
 public:
  ByzantineClient(ByzantineClientStrategy strategy,
                  std::vector<NodeId> servers, std::uint32_t k,
                  std::uint64_t seed, std::size_t rounds = 32);

  void OnStart(IEndpoint& endpoint) override;
  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;

 private:
  void FireRound(IEndpoint& endpoint);

  ByzantineClientStrategy strategy_;
  std::vector<NodeId> servers_;
  LabelingSystem labels_;
  Rng noise_;
  std::size_t rounds_left_;
};

/// All strategies, for parameterized sweeps and fuzz scenario drawing.
inline constexpr ByzantineClientStrategy kAllByzantineClientStrategies[] = {
    ByzantineClientStrategy::kReadFlooder,
    ByzantineClientStrategy::kGarbageSprayer,
    ByzantineClientStrategy::kForgedWriter,
};

const char* ByzantineClientStrategyName(ByzantineClientStrategy strategy);

/// Registry lookup: inverse of ByzantineClientStrategyName.
std::optional<ByzantineClientStrategy> ByzantineClientStrategyFromName(
    std::string_view name);

}  // namespace sbft
