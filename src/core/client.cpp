#include "core/client.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace sbft {

RegisterClient::RegisterClient(ProtocolConfig config,
                               std::vector<NodeId> servers,
                               ClientId client_id)
    : config_(config),
      labels_(config.k),
      servers_(std::move(servers)),
      client_id_(client_id),
      read_pool_(servers_.size(), config.read_label_count),
      write_pool_(servers_.size(), config.write_label_count) {
  config_.Validate();
  SBFT_ASSERT(servers_.size() == config_.n);
  NodeId max_id = 0;
  for (const NodeId server : servers_) max_id = std::max(max_id, server);
  server_index_.assign(max_id + 1, kNoServer);
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    server_index_[servers_[i]] = static_cast<std::uint32_t>(i);
  }
  const std::size_t n = servers_.size();
  safe_.assign(n, 0);
  collected_ts_.assign(n, Timestamp{});
  collected_bits_.assign(n, 0);
  write_replied_.assign(n, 0);
  replies_.assign(n, VersionedValue{});
  reply_bits_.assign(n, 0);
  recent_raw_.assign(n, {});
  recent_len_.assign(n, 0);
  last_write_ts_ = Timestamp{labels_.Initial(), client_id_};
}

void RegisterClient::OnStart(IEndpoint& endpoint) { endpoint_ = &endpoint; }

std::optional<std::size_t> RegisterClient::ServerIndex(NodeId node) const {
  if (node >= server_index_.size() || server_index_[node] == kNoServer) {
    return std::nullopt;
  }
  return server_index_[node];
}

void RegisterClient::OnFrame(NodeId from, BytesView frame, IEndpoint&) {
  const auto index = ServerIndex(from);
  if (!index) return;  // not a register server: ignore
  // READ replies — the bulkiest and (under read load) most frequent
  // frames — take the lazy path: the old_vals history is validated but
  // not materialized unless DecideRead needs the union graph. A frame
  // this rejects is rejected by DecodeMessage below too.
  if (auto lazy = DecodeReplyLazy(frame)) {
    OnReply(*index, *lazy);
    return;
  }
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;  // garbage frame
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<FlushAckMsg>(&message)) {
    OnFlushAck(*index, *m);
  }
  if (const auto* m = std::get_if<TsReplyMsg>(&message)) {
    OnTsReply(*index, *m);
  }
  if (const auto* m = std::get_if<WriteReplyMsg>(&message)) {
    OnWriteReply(*index, *m);
  }
}

// --- Operation entry points -------------------------------------------

void RegisterClient::StartWrite(Value value, WriteCallback callback) {
  SBFT_ASSERT(endpoint_ != nullptr);
  SBFT_ASSERT(idle());
  write_value_ = std::move(value);
  write_callback_ = std::move(callback);
  retries_ = 0;
  BeginFlush(OpScope::kWrite);
}

void RegisterClient::StartRead(ReadCallback callback) {
  SBFT_ASSERT(endpoint_ != nullptr);
  SBFT_ASSERT(idle());
  read_callback_ = std::move(callback);
  BeginFlush(OpScope::kRead);
}

OpLabel RegisterClient::MakeOpLabel(OpScope scope, ReadLabel index) {
  if (!config_.epoch_extended_op_labels) return index;
  std::uint32_t& epoch =
      scope == OpScope::kRead ? read_epoch_ : write_epoch_;
  epoch = (epoch + 1) & 0x00FFFFFF;  // bounded: 24-bit wrap
  return (epoch << 8) | index;
}

void RegisterClient::BeginFlush(OpScope scope) {
  ReadLabelPool& pool = PoolFor(scope);
  pool.SanitizeState();  // stabilizing discipline: clamp corrupted state
  op_label_ = MakeOpLabel(scope, pool.PickCandidate());
  std::fill(safe_.begin(), safe_.end(), std::uint8_t{0});
  safe_count_ = 0;
  phase_ = scope == OpScope::kRead ? Phase::kReadFlush : Phase::kWriteFlush;

  if (flush_provider_ != nullptr) {
    // Shared-flush seam: the provider runs (or joins) a node-level
    // FLUSH round and feeds the acks back via DeliverFlushAck. The
    // FIFO argument is unchanged — multiplexed registers share one
    // channel per client-server pair, so a node-level ack proves drain
    // for this register's traffic too.
    flush_provider_->RequestFlush(op_label_, scope);
    return;
  }
  FlushMsg flush;
  flush.label = op_label_;
  flush.scope = scope;
  endpoint_->Broadcast(servers_, EncodeMessage(Message(flush)));
}

void RegisterClient::DeliverFlushAck(NodeId from, const FlushAckMsg& msg) {
  const auto index = ServerIndex(from);
  if (!index) return;
  OnFlushAck(*index, msg);
}

// --- FLUSH / FLUSH_ACK (Figure 3) --------------------------------------

void RegisterClient::OnFlushAck(std::size_t server, const FlushAckMsg& msg) {
  // The ack proves (by FIFO) that no message labelled msg.label from an
  // earlier operation is still in flight from this server. Out-of-range
  // (garbage) labels are ignored by ClearPending.
  PoolFor(msg.scope).ClearPending(server, PoolIndexOf(msg.label));
  MaybeAdvanceAfterFlush();

  const OpScope active_scope =
      IsWritePhase() ? OpScope::kWrite : OpScope::kRead;
  if (phase_ == Phase::kIdle || msg.scope != active_scope ||
      msg.label != op_label_) {
    return;  // stale ack from a previous flush round
  }
  if (safe_[server]) return;  // already safe: nothing new
  safe_[server] = 1;
  ++safe_count_;

  switch (phase_) {
    case Phase::kWriteFlush:
    case Phase::kReadFlush:
      MaybeAdvanceAfterFlush();
      break;
    case Phase::kRead: {
      // Figure 3 lines 13-15: a server turning safe while the read runs
      // is immediately queried.
      ReadMsg read;
      read.label = op_label_;
      read_pool_.MarkPending(server, PoolIndexOf(op_label_));
      endpoint_->Send(servers_[server], EncodeMessage(Message(read)));
      break;
    }
    case Phase::kGetTs:
    case Phase::kWrite:
      // GET_TS / WRITE were broadcast to all servers already; turning
      // safe only makes this server's replies count.
      break;
    case Phase::kIdle:
      break;
  }
}

void RegisterClient::MaybeAdvanceAfterFlush() {
  if (phase_ != Phase::kWriteFlush && phase_ != Phase::kReadFlush) return;
  if (safe_count_ < config_.Quorum()) return;
  // Figure 3 line 06: every server still marked pending for this label
  // may yet deliver a stale reply that would be indistinguishable from a
  // fresh one. At most f such servers are tolerable — the WTsG witness
  // threshold 2f+1 absorbs f Byzantine plus f stale-correct witnesses.
  // (With f silent Byzantine servers their bits never clear, so the
  // bound must be <= f, not < f as the paper's prose says — otherwise
  // find_read_label would deadlock; see DESIGN.md.)
  const OpScope scope =
      phase_ == Phase::kWriteFlush ? OpScope::kWrite : OpScope::kRead;
  if (PoolFor(scope).PendingCount(PoolIndexOf(op_label_)) > config_.f) {
    return;
  }
  AdvanceAfterFlush();
}

void RegisterClient::AdvanceAfterFlush() {
  if (phase_ == Phase::kWriteFlush) {
    write_pool_.SetLast(PoolIndexOf(op_label_));
    std::fill(collected_bits_.begin(), collected_bits_.end(),
              std::uint8_t{0});
    collected_count_ = 0;
    phase_ = Phase::kGetTs;
    GetTsMsg get_ts;
    get_ts.op_label = op_label_;
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      write_pool_.MarkPending(i, PoolIndexOf(op_label_));
    }
    endpoint_->Broadcast(servers_, EncodeMessage(Message(get_ts)));
  } else {
    read_pool_.SetLast(PoolIndexOf(op_label_));
    std::fill(reply_bits_.begin(), reply_bits_.end(), std::uint8_t{0});
    reply_count_ = 0;
    std::fill(recent_len_.begin(), recent_len_.end(), 0u);
    phase_ = Phase::kRead;
    ReadMsg read;
    read.label = op_label_;
    std::vector<NodeId> targets;
    targets.reserve(safe_count_);
    for (std::size_t server = 0; server < safe_.size(); ++server) {
      if (!safe_[server]) continue;
      read_pool_.MarkPending(server, PoolIndexOf(op_label_));
      targets.push_back(servers_[server]);
    }
    endpoint_->Broadcast(targets, EncodeMessage(Message(read)));
  }
}

// --- Write phases (Figure 1) -------------------------------------------

void RegisterClient::OnTsReply(std::size_t server, const TsReplyMsg& msg) {
  write_pool_.ClearPending(server, PoolIndexOf(msg.op_label));
  MaybeAdvanceAfterFlush();
  if (phase_ != Phase::kGetTs || msg.op_label != op_label_ ||
      !safe_[server]) {
    stats_.stale_replies_ignored++;
    return;
  }
  if (collected_bits_[server]) return;
  collected_bits_[server] = 1;
  collected_ts_[server] = msg.ts;
  ++collected_count_;
  if (collected_count_ < config_.Quorum()) return;

  // Enough timestamps: compute the write timestamp with next() over the
  // collected labels (all sanitized inside Next()).
  std::vector<Label> inputs;
  inputs.reserve(collected_count_);
  for (std::size_t i = 0; i < collected_bits_.size(); ++i) {
    if (collected_bits_[i]) inputs.push_back(collected_ts_[i].label);
  }
  last_write_ts_ = Timestamp{labels_.Next(inputs, config_.f), client_id_};

  phase_ = Phase::kWrite;
  std::fill(write_replied_.begin(), write_replied_.end(), std::uint8_t{0});
  write_replied_count_ = 0;
  ack_count_ = 0;
  WriteMsg write;
  write.value = write_value_;  // view of the member; encoded below
  write.ts = last_write_ts_;
  write.op_label = op_label_;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    write_pool_.MarkPending(i, PoolIndexOf(op_label_));
  }
  endpoint_->Broadcast(servers_, EncodeMessage(Message(write)));
}

void RegisterClient::OnWriteReply(std::size_t server,
                                  const WriteReplyMsg& msg) {
  write_pool_.ClearPending(server, PoolIndexOf(msg.op_label));
  MaybeAdvanceAfterFlush();
  if (phase_ != Phase::kWrite || msg.op_label != op_label_ ||
      !safe_[server]) {
    stats_.stale_replies_ignored++;
    return;
  }
  if (write_replied_[server]) return;
  write_replied_[server] = 1;
  ++write_replied_count_;
  if (msg.ack) ++ack_count_;

  if (ack_count_ >= config_.WitnessThreshold() &&
      write_replied_count_ >= config_.Quorum()) {
    FinishWrite(OpStatus::kOk);
    return;
  }
  // A quorum answered but the ACK threshold was missed: only possible
  // under write concurrency or a pre-stabilization state (another
  // writer bumped server timestamps between our GET_TS and WRITE).
  // Retrying re-reads the timestamps and recomputes next(). Waiting for
  // more replies instead would be unsound for liveness: a mute
  // Byzantine server inside the safe set can withhold its reply forever
  // (the paper's Lemma 1 covers only the single-writer case; see
  // DESIGN.md).
  if (write_replied_count_ >= config_.Quorum()) {
    RetryWrite();
  }
}

void RegisterClient::RetryWrite() {
  if (retries_ >= config_.write_retry_limit) {
    FinishWrite(OpStatus::kFailed);
    return;
  }
  ++retries_;
  stats_.write_retries++;
  BeginFlush(OpScope::kWrite);
}

void RegisterClient::FinishWrite(OpStatus status) {
  phase_ = Phase::kIdle;
  if (status == OpStatus::kOk) {
    stats_.writes_ok++;
  } else {
    stats_.writes_failed++;
  }
  WriteOutcome outcome;
  outcome.status = status;
  outcome.ts = last_write_ts_;
  outcome.retries = retries_;
  if (write_callback_) {
    auto callback = std::move(write_callback_);
    write_callback_ = nullptr;
    callback(outcome);
  }
}

// --- Read phase (Figure 2) ----------------------------------------------

void RegisterClient::OnReply(std::size_t server, const LazyReplyMsg& msg) {
  read_pool_.ClearPending(server, PoolIndexOf(msg.label));
  MaybeAdvanceAfterFlush();
  if (phase_ != Phase::kRead || msg.label != op_label_ ||
      !safe_[server]) {
    stats_.stale_replies_ignored++;
    return;
  }
  // Keep the latest report per server (servers forward concurrent
  // writes, superseding their earlier reply). The reply's values are
  // views into the frame — copied in place here, where they enter
  // client state, reusing the slot's Bytes capacity. The history is
  // kept as raw encoded bytes; DecideRead materializes it only for the
  // union graph.
  VersionedValue& vv = replies_[server];
  vv.value.assign(msg.value.begin(), msg.value.end());
  vv.ts = Timestamp{labels_.Sanitize(msg.ts.label), msg.ts.writer_id};
  if (!reply_bits_[server]) {
    reply_bits_[server] = 1;
    ++reply_count_;
  }

  recent_raw_[server].assign(msg.old_vals_raw.begin(),
                             msg.old_vals_raw.end());
  recent_len_[server] =
      std::min(msg.old_count, config_.history_window);  // clamp garbage

  if (reply_count_ >= config_.Quorum()) DecideRead();
}

void RegisterClient::DecideRead() {
  // Local graph first (Figure 2 line 09). The local graph counts only
  // *current* values, which makes it wrap-immune: after the last
  // complete write, only that write can reach 2f+1 current witnesses
  // (intersection argument of Lemma 7), no matter how bounded labels
  // have wrapped or what precedence cycles exist among historical
  // labels. At most one vertex can qualify (2*(2f+1) > n-f).
  Wtsg local(labels_.params());
  for (std::size_t server = 0; server < reply_bits_.size(); ++server) {
    if (reply_bits_[server]) local.AddWitness(server, replies_[server]);
  }
  const auto local_winner = local.FindWitnessed(config_.WitnessThreshold());

  ReadOutcome outcome;
  if (local_winner) {
    // Because servers adopt *convergently* (see server.cpp: concurrent
    // writes settle on the same winner at every server, ordered by
    // Lemma 8's identifiers), the unique locally certified vertex is
    // the same for every read that certifies one — no cross-read
    // reconciliation is needed here.
    SBFT_LOG_DEBUG << "t=" << endpoint_->Now() << " client " << client_id_
                   << " read decide(local): " << local.ToString() << " -> "
                   << local_winner->ts.ToString()
                   << " val=" << ToHex(local_winner->value);
    outcome.status = OpStatus::kOk;
    outcome.value = local_winner->value;
    outcome.ts = local_winner->ts;
    outcome.used_union_graph = false;
    FinishRead(outcome);
    return;
  }

  // Union graph (Figure 2 line 15): fold in the old_vals histories so
  // values displaced by concurrent writes keep their witnesses. Built
  // only when the local graph does not certify a winner — in the
  // uncontended steady state it always does, and the union fold is by
  // far the most expensive part of a read decision (one AddWitness
  // scan per history entry per server).
  Wtsg unioned(labels_.params());
  for (std::size_t server = 0; server < reply_bits_.size(); ++server) {
    if (reply_bits_[server]) unioned.AddWitness(server, replies_[server]);
  }
  for (std::size_t server = 0; server < reply_bits_.size(); ++server) {
    if (!reply_bits_[server]) continue;
    // Materialize this server's history from the raw run captured in
    // OnReply (already bounds-validated by DecodeReplyLazy).
    BufReader r(BytesView(recent_raw_[server]));
    (void)r.Get<std::uint32_t>();  // entry count; clamped copy below
    for (std::uint32_t i = 0; i < recent_len_[server] && !r.failed(); ++i) {
      const WireVersioned old = WireVersioned::DecodeFrom(r);
      if (r.failed()) break;
      const VersionedValue vv{
          ToBytes(old.value),
          Timestamp{labels_.Sanitize(old.ts.label), old.ts.writer_id}};
      unioned.AddWitness(server, vv);
    }
  }

  if (auto witnessed = unioned.FindWitnessed(config_.WitnessThreshold())) {
    SBFT_LOG_DEBUG << "t=" << endpoint_->Now() << " client " << client_id_ << " read decide(union): "
                   << unioned.ToString() << " -> "
                   << witnessed->ts.ToString() << " val="
                   << ToHex(witnessed->value);
    outcome.status = OpStatus::kOk;
    outcome.value = witnessed->value;
    outcome.ts = witnessed->ts;
    outcome.used_union_graph = true;
    FinishRead(outcome);
    return;
  }
  SBFT_LOG_DEBUG << "client " << client_id_ << " read abort: "
                 << unioned.ToString();

  outcome.status = OpStatus::kAborted;
  FinishRead(outcome);
}

void RegisterClient::FinishRead(const ReadOutcome& outcome) {
  // COMPLETE_READ to every safe server (Figure 2 lines 12/19).
  CompleteReadMsg complete;
  complete.label = op_label_;
  std::vector<NodeId> targets;
  targets.reserve(safe_count_);
  for (std::size_t server = 0; server < safe_.size(); ++server) {
    if (safe_[server]) targets.push_back(servers_[server]);
  }
  endpoint_->Broadcast(targets, EncodeMessage(Message(complete)));

  phase_ = Phase::kIdle;
  if (outcome.status == OpStatus::kOk) {
    stats_.reads_ok++;
    if (outcome.used_union_graph) stats_.reads_union_graph++;
  } else {
    stats_.reads_aborted++;
  }
  if (read_callback_) {
    auto callback = std::move(read_callback_);
    read_callback_ = nullptr;
    callback(outcome);
  }
}

// --- Transient faults ----------------------------------------------------

void RegisterClient::CorruptState(Rng& rng) {
  read_pool_.Corrupt(rng);
  write_pool_.Corrupt(rng);
  read_epoch_ = static_cast<std::uint32_t>(rng());
  write_epoch_ = static_cast<std::uint32_t>(rng());
  last_write_ts_ = Timestamp{RandomGarbageLabel(rng, labels_.params()),
                             client_id_};
  if (phase_ != Phase::kIdle) {
    // The in-flight operation is destroyed; report failure so external
    // drivers do not wait forever (see DESIGN.md).
    const bool was_write = IsWritePhase();
    phase_ = Phase::kIdle;
    std::fill(safe_.begin(), safe_.end(), std::uint8_t{0});
    safe_count_ = 0;
    std::fill(collected_bits_.begin(), collected_bits_.end(),
              std::uint8_t{0});
    collected_count_ = 0;
    std::fill(write_replied_.begin(), write_replied_.end(),
              std::uint8_t{0});
    write_replied_count_ = 0;
    std::fill(reply_bits_.begin(), reply_bits_.end(), std::uint8_t{0});
    reply_count_ = 0;
    std::fill(recent_len_.begin(), recent_len_.end(), 0u);
    if (was_write && write_callback_) {
      auto callback = std::move(write_callback_);
      write_callback_ = nullptr;
      callback(WriteOutcome{OpStatus::kFailed, last_write_ts_, retries_});
      stats_.writes_failed++;
    } else if (!was_write && read_callback_) {
      auto callback = std::move(read_callback_);
      read_callback_ = nullptr;
      callback(ReadOutcome{OpStatus::kFailed, {}, {}, false});
      stats_.reads_aborted++;
    }
  }
}

}  // namespace sbft
