#include "sim/world.hpp"

#include <algorithm>
#include <utility>

#include "common/buffer_pool.hpp"

namespace sbft {

// Endpoint binds one node id to the world; it exists so automata cannot
// reach the world's fault-injection or scheduling surface.
class World::Endpoint final : public IEndpoint {
 public:
  Endpoint(World& world, NodeId id, Rng rng)
      : world_(world), id_(id), rng_(rng) {}

  void Send(NodeId dst, Bytes frame) override {
    world_.EnqueueDelivery(id_, dst, Frame(std::move(frame)));
  }

  void Broadcast(std::span<const NodeId> dsts, Bytes frame) override {
    if (dsts.empty()) {
      FramePool().Release(std::move(frame));
      return;
    }
    if (dsts.size() == 1) {
      world_.EnqueueDelivery(id_, dsts.front(), Frame(std::move(frame)));
      return;
    }
    // One payload, shared by every delivery event (and by the trace).
    auto payload = std::make_shared<Bytes>(std::move(frame));
    for (NodeId dst : dsts) {
      world_.EnqueueDelivery(id_, dst, Frame(payload));
    }
  }

  void SetTimer(VirtualTime delay, int timer_id) override {
    Event event;
    event.time = world_.now_ + (delay < 1 ? 1 : delay);
    event.seq = world_.next_seq_++;
    event.kind = Event::Kind::kTimer;
    event.dst = id_;
    event.aux = timer_id;
    world_.queue_.push(std::move(event));
  }

  [[nodiscard]] VirtualTime Now() const override { return world_.now_; }
  [[nodiscard]] NodeId self() const override { return id_; }
  Rng& rng() override { return rng_; }

 private:
  World& world_;
  NodeId id_;
  Rng rng_;
};

World::~World() = default;

World::World(Options options) : rng_(options.seed) {
  delay_ = options.delay ? std::move(options.delay)
                         : std::make_unique<UniformDelay>(1, 10);
}

NodeId World::AddNode(std::unique_ptr<Automaton> automaton) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(automaton));
  endpoints_.push_back(std::make_unique<Endpoint>(*this, id, rng_.Fork()));
  stopped_.push_back(false);
  started_.push_back(false);
  GrowChannelTable(nodes_.size());
  return id;
}

void World::GrowChannelTable(std::size_t dim) {
  if (dim <= channel_dim_) return;
  std::vector<ChannelState> next(dim * dim);
  for (std::size_t s = 0; s < channel_dim_; ++s) {
    for (std::size_t d = 0; d < channel_dim_; ++d) {
      next[s * dim + d] = std::move(channel_table_[s * channel_dim_ + d]);
    }
  }
  // Channels configured before their endpoints were registered (held or
  // degraded ahead of AddNode) migrate from the sparse fallback.
  for (auto it = channel_fallback_.begin(); it != channel_fallback_.end();) {
    const auto [src, dst] = it->first;
    if (src < dim && dst < dim) {
      next[src * dim + dst] = std::move(it->second);
      it = channel_fallback_.erase(it);
    } else {
      ++it;
    }
  }
  channel_table_ = std::move(next);
  channel_dim_ = dim;
}

Automaton& World::node(NodeId id) {
  SBFT_ASSERT(id < nodes_.size());
  return *nodes_[id];
}

void World::EnqueueDelivery(NodeId src, NodeId dst, Frame frame) {
  if (src < stopped_.size() && stopped_[src]) return;  // crashed sender
  stats_.frames_sent++;
  stats_.bytes_sent += frame.size();
  if (trace_.enabled()) {
    TraceEvent event(now_, TraceKind::kSend, src, dst);
    event.SetPayload(frame.Share());
    trace_.Record(std::move(event));
  }

  ChannelState& channel = Channel(src, dst);
  if (channel.held) {
    channel.held_frames.push_back(std::move(frame));
    return;
  }
  if (channel.loss > 0.0 && rng_.NextBool(channel.loss)) {
    stats_.frames_dropped++;
    if (trace_.enabled()) {
      TraceEvent event(now_, TraceKind::kDrop, src, dst);
      event.SetPayload(frame.Share());
      trace_.Record(std::move(event));
    }
    return;
  }
  const VirtualTime delay = delay_->Sample(src, dst, now_, rng_);
  VirtualTime deliver_at = now_ + delay;
  if (!channel.unordered) {
    // FIFO: never schedule a frame before an earlier one on this channel.
    if (deliver_at <= channel.last_scheduled) {
      deliver_at = channel.last_scheduled + 1;
    }
    channel.last_scheduled = deliver_at;
  }

  Event event;
  event.time = deliver_at;
  event.seq = next_seq_++;
  event.kind = Event::Kind::kDeliver;
  event.src = src;
  event.dst = dst;
  event.frame = std::move(frame);
  queue_.push(std::move(event));
}

void World::StartPendingNodes() {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!started_[id]) {
      started_[id] = true;
      if (!stopped_[id]) nodes_[id]->OnStart(*endpoints_[id]);
    }
  }
}

bool World::Step() {
  StartPendingNodes();
  if (queue_.empty()) return false;
  Event event = queue_.pop();
  SBFT_ASSERT(event.time >= now_);
  now_ = event.time;

  switch (event.kind) {
    case Event::Kind::kDeliver: {
      if (event.dst >= nodes_.size() || stopped_[event.dst]) {
        stats_.frames_dropped++;
        if (trace_.enabled()) {
          TraceEvent drop(now_, TraceKind::kDrop, event.src, event.dst);
          drop.SetPayload(event.frame.Share());
          trace_.Record(std::move(drop));
        }
        break;
      }
      stats_.frames_delivered++;
      if (trace_.enabled()) {
        TraceEvent deliver(now_, TraceKind::kDeliver, event.src, event.dst);
        deliver.SetPayload(event.frame.Share());
        trace_.Record(std::move(deliver));
      }
      nodes_[event.dst]->OnFrame(event.src, event.frame.view(),
                                 *endpoints_[event.dst]);
      // The handler is done with the frame; recycle its storage for the
      // next encode (no-op when the trace still references the payload).
      event.frame.Recycle(FramePool());
      break;
    }
    case Event::Kind::kTimer: {
      if (event.dst >= nodes_.size() || stopped_[event.dst]) break;
      trace_.Record({now_, TraceKind::kTimerFired, kNoNode, event.dst});
      nodes_[event.dst]->OnTimer(event.aux, *endpoints_[event.dst]);
      break;
    }
    case Event::Kind::kCall: {
      // Free the slot before invoking: the callback may schedule more
      // calls, and the moved-from slot is already safe to reuse.
      const auto slot = static_cast<std::size_t>(event.aux);
      std::function<void()> fn = std::move(calls_[slot]);
      calls_[slot] = nullptr;
      free_call_slots_.push_back(static_cast<std::uint32_t>(slot));
      if (fn) fn();
      break;
    }
  }
  return true;
}

std::uint64_t World::Run(std::uint64_t max_events) {
  std::uint64_t processed = 0;
  while (processed < max_events && Step()) ++processed;
  return processed;
}

bool World::RunUntil(const std::function<bool()>& predicate,
                     std::uint64_t max_events) {
  StartPendingNodes();
  std::uint64_t processed = 0;
  while (!predicate()) {
    if (processed >= max_events || !Step()) return predicate();
    ++processed;
  }
  return true;
}

void World::ScheduleCall(VirtualTime delay, std::function<void()> fn) {
  std::uint32_t slot;
  if (!free_call_slots_.empty()) {
    slot = free_call_slots_.back();
    free_call_slots_.pop_back();
    calls_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(calls_.size());
    calls_.push_back(std::move(fn));
  }
  Event event;
  event.time = now_ + delay;
  event.seq = next_seq_++;
  event.kind = Event::Kind::kCall;
  event.aux = static_cast<std::int32_t>(slot);
  queue_.push(std::move(event));
}

void World::CorruptNode(NodeId id) {
  SBFT_ASSERT(id < nodes_.size());
  trace_.Record({now_, TraceKind::kNodeCorrupted, kNoNode, id});
  nodes_[id]->CorruptState(rng_);
}

void World::InjectGarbageFrames(NodeId src, NodeId dst, std::size_t count,
                                std::size_t max_frame_size) {
  trace_.Record({now_, TraceKind::kChannelCorrupted, src, dst});
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t size = 1 + rng_.NextBelow(max_frame_size);
    stats_.garbage_frames_injected++;
    // Goes through the normal path so FIFO and stats hold; attributed to
    // src because on a real link the garbage occupies that channel.
    EnqueueDelivery(src, dst, Frame(RandomBytes(rng_, size)));
  }
}

void World::ScrambleChannel(NodeId src, NodeId dst) {
  trace_.Record({now_, TraceKind::kChannelCorrupted, src, dst});
  // Drain the queue in scheduled order, garbling matching in-flight
  // frames. A scrambled frame is REPLACED, never mutated in place — a
  // broadcast payload may be shared with deliveries on other channels
  // (and with the trace), which must keep the original bytes.
  std::vector<Event> events = queue_.TakeAll();
  for (Event& event : events) {
    if (event.kind == Event::Kind::kDeliver && event.src == src &&
        event.dst == dst && !event.frame.empty()) {
      event.frame = Frame(RandomBytes(rng_, event.frame.size()));
    }
    queue_.push(std::move(event));
  }
}

void World::StopNode(NodeId id) {
  SBFT_ASSERT(id < nodes_.size());
  stopped_[id] = true;
  trace_.Record({now_, TraceKind::kNodeStopped, kNoNode, id});
}

bool World::IsStopped(NodeId id) const {
  return id < stopped_.size() && stopped_[id];
}

void World::DegradeChannel(NodeId src, NodeId dst, double loss,
                           bool unordered) {
  ChannelState& channel = Channel(src, dst);
  channel.loss = loss;
  channel.unordered = unordered;
}

void World::HoldChannel(NodeId src, NodeId dst, bool capture_in_flight) {
  Channel(src, dst).held = true;
  if (!capture_in_flight) return;
  // Pull scheduled deliveries on this channel back into the hold buffer.
  // TakeAll drains in (time, seq) order, so the captured frames enter
  // the buffer in their scheduled (FIFO) order.
  std::vector<Event> events = queue_.TakeAll();
  ChannelState& channel = Channel(src, dst);
  for (Event& event : events) {
    if (event.kind == Event::Kind::kDeliver && event.src == src &&
        event.dst == dst) {
      // The send was already counted; ReleaseChannel's re-enqueue path
      // compensates before re-counting, so no adjustment here.
      channel.held_frames.push_back(std::move(event.frame));
    } else {
      queue_.push(std::move(event));
    }
  }
}

void World::ReleaseChannel(NodeId src, NodeId dst) {
  ChannelState& channel = Channel(src, dst);
  if (!channel.held) return;
  channel.held = false;
  std::deque<Frame> frames = std::move(channel.held_frames);
  channel.held_frames.clear();
  for (Frame& frame : frames) {
    // Re-enqueue through the normal path (samples fresh delays but
    // preserves order via last_scheduled).
    stats_.frames_sent--;  // avoid double counting the original send
    stats_.bytes_sent -= frame.size();
    EnqueueDelivery(src, dst, std::move(frame));
  }
}

}  // namespace sbft
