#include "spec/history.hpp"

namespace sbft {

std::vector<const OpRecord*> History::Writes() const {
  std::vector<const OpRecord*> out;
  for (const OpRecord& op : ops_) {
    if (op.kind == OpRecord::Kind::kWrite) out.push_back(&op);
  }
  return out;
}

std::vector<const OpRecord*> History::Reads() const {
  std::vector<const OpRecord*> out;
  for (const OpRecord& op : ops_) {
    if (op.kind == OpRecord::Kind::kRead) out.push_back(&op);
  }
  return out;
}

}  // namespace sbft
