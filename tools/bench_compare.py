#!/usr/bin/env python3
"""Compare a fresh bench JSON against a committed baseline.

Usage:
    bench_compare.py BASELINE.json FRESH.json [--threshold 0.25]
                     [--gate-rates]

Every bench binary emits ``{"bench": ..., "metrics": [{name, value,
unit}, ...]}`` (see bench/bench_json.hpp). This tool pairs metrics by
name, infers the improvement direction from the name/unit, and flags
any metric that regressed by more than ``--threshold`` (default 25%).

Metrics come in two classes:

* **count-like** (allocs, bytes, frames per op, failed/stalled ops,
  completed_frac): deterministic properties of the code, comparable
  across machines. A regression here gates (exit 1).
* **rate-like** (ops/s, runs/s, p99 latency, speedups): functions of
  the machine the bench ran on. A CI runner is not the machine the
  committed baseline was recorded on, so by default these are reported
  as advisory only; pass --gate-rates for same-machine comparisons.

The open-loop load engine (BENCH_load.json) gates through the same
scheme: ``saturation_frac`` (fraction of the swept offered rates the
cluster sustained) and ``violations``/``stabilize_failed`` (checker
verdicts) are scale-invariant counts, while absolute saturation and
latency numbers stay advisory. Any fresh ``completed_frac`` below 1 is
additionally flagged as an overload-regime point: its latency metrics
describe a cluster shedding load and should not be read as a
steady-state measurement.

Metrics present only in the fresh run (a bench grew new points, e.g. a
``batched.*`` sweep) are listed in a ``new metrics`` section and never
gated: their fresh values are exactly what the next committed baseline
should record. Sharded arms are namespaced by group count — a leading
``g<G>.`` component (``g4.tcp.n16.c256.ops_per_sec``) — and the new-
metrics section aggregates each such family to one summary line, so a
whole new G-sweep reads as one unit instead of tripping per-metric
eyeballs (or, once committed, count gates against an older baseline).

``--subset`` declares the fresh run a deliberately filtered arm subset
(a bench invoked with ``--only``/``--scenario``, e.g. the CI sharded
smoke leg): baseline metrics missing from the fresh run are then
expected and suppressed instead of listed as advisories. Metrics the
fresh run DOES produce are still compared and gated as usual.

Exit status: 0 = no gating regression, 1 = at least one, 2 = usage or
input error.
"""

import argparse
import json
import re
import sys

# Leading metric-name components that name a sharded-arm family, in
# either naming convention: group-first as bench_throughput emits
# ("g4.tcp.", "g2.migrate.tcp.") or backend-first as bench_load emits
# ("tcp.g2.", "tcp.g2_migrate."). Used to aggregate whole families in
# the new-metrics section.
GROUP_FAMILY = re.compile(
    r"^(g\d+\.(?:migrate\.)?(?:tcp|mailbox)\."
    r"|(?:tcp|mailbox)\.g\d+(?:_migrate)?\.)")

# Substrings that mark a metric where SMALLER is better. Checked before
# the higher-is-better marks so e.g. "allocs_per_op" resolves correctly.
LOWER_IS_BETTER = ("allocs", "bytes", "p99", "latency", "_us", "failed",
                   "stalled", "vacuous", "frames_per_op", "violation")
# Substrings that mark a metric where LARGER is better. completed_frac
# (fraction of attempted ops that finished, 1.0 = all) and
# saturation_frac (fraction of swept offered rates sustained) are
# deliberately count-like: they are scale-invariant, so a smoke run
# gates cleanly against a full-run baseline.
HIGHER_IS_BETTER = ("per_sec", "speedup", "runs_per", "ops_per",
                    "roundtrips", "throughput", "completed", "saturation")
# Rate-like marks: machine-dependent, advisory unless --gate-rates.
RATE_LIKE = ("per_sec", "speedup", "p99", "latency", "_us", "runs_per",
             "roundtrips")


def direction(name: str, unit: str) -> str:
    """Return 'lower', 'higher', or 'unknown' for improvement."""
    key = (name + " " + unit).lower()
    for mark in LOWER_IS_BETTER:
        if mark in key:
            return "lower"
    for mark in HIGHER_IS_BETTER:
        if mark in key:
            return "higher"
    return "unknown"


def is_rate(name: str, unit: str) -> bool:
    key = (name + " " + unit).lower()
    return any(mark in key for mark in RATE_LIKE)


def load_metrics(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    return {m["name"]: (float(m["value"]), m.get("unit", ""))
            for m in doc.get("metrics", [])}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("fresh", help="freshly produced bench JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression that fails the gate "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--gate-rates", action="store_true",
                        help="gate machine-dependent rate metrics too "
                             "(same-machine comparisons only)")
    parser.add_argument("--subset", action="store_true",
                        help="fresh run is a filtered arm subset "
                             "(--only/--scenario); baseline metrics "
                             "missing from it are expected, not advisory")
    args = parser.parse_args()

    base = load_metrics(args.baseline)
    fresh = load_metrics(args.fresh)

    gating, advisories, rows = [], [], []
    missing = 0
    for name, (base_value, unit) in sorted(base.items()):
        if name not in fresh:
            missing += 1
            if not args.subset:
                advisories.append(f"{name}: missing from fresh run")
            continue
        fresh_value = fresh[name][0]
        sense = direction(name, unit)
        if sense == "unknown":
            rows.append((name, base_value, fresh_value, "-", "skipped"))
            continue
        if base_value == 0:
            # No relative delta from a zero baseline; any increase in a
            # lower-is-better count (e.g. failed ops) is a regression.
            # Rate-like metrics keep their advisory status here too: a
            # violation window of 0 µs that becomes positive is a
            # semantic change worth seeing, but its magnitude is
            # machine-dependent like any latency.
            if sense == "lower" and fresh_value > 0:
                line = f"{name}: 0 -> {fresh_value:g} " \
                       f"(was zero, {sense} is better)"
                if is_rate(name, unit) and not args.gate_rates:
                    advisories.append(line + "; rate-like, "
                                      "machine-dependent")
                    rows.append((name, base_value, fresh_value, "-",
                                 "ADVISORY regression"))
                else:
                    gating.append(line)
                    rows.append((name, base_value, fresh_value, "-",
                                 "REGRESSION"))
            else:
                rows.append((name, base_value, fresh_value, "-", "ok"))
            continue
        delta = (fresh_value - base_value) / abs(base_value)
        regressed = delta > args.threshold if sense == "lower" \
            else delta < -args.threshold
        verdict = "ok"
        if regressed:
            if is_rate(name, unit) and not args.gate_rates:
                verdict = "ADVISORY regression"
                advisories.append(
                    f"{name}: {base_value:g} -> {fresh_value:g} "
                    f"({delta:+.1%}, {sense} is better; rate-like, "
                    f"machine-dependent)")
            else:
                verdict = "REGRESSION"
                gating.append(
                    f"{name}: {base_value:g} -> {fresh_value:g} "
                    f"({delta:+.1%}, {sense} is better)")
        rows.append((name, base_value, fresh_value, f"{delta:+.1%}", verdict))

    new_metrics = sorted(set(fresh) - set(base))
    # Sharded arms arrive as whole per-group families (g2.*, g4.*,
    # g2.migrate.*): collapse each family to one row/summary entry and
    # keep only non-family metrics itemized.
    new_families = {}
    new_single = []
    for name in new_metrics:
        match = GROUP_FAMILY.match(name)
        if match:
            new_families.setdefault(match.group(1), []).append(name)
        else:
            new_single.append(name)
    for name in new_single:
        rows.append((name, float("nan"), fresh[name][0], "-", "new metric"))
    for family in sorted(new_families):
        rows.append((f"{family}* ({len(new_families[family])} metrics)",
                     float("nan"), float("nan"), "-", "new group family"))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'fresh':>12}  "
          f"{'delta':>8}  verdict")
    for name, base_value, fresh_value, delta, verdict in rows:
        print(f"{name:<{width}}  {base_value:>12.4g}  {fresh_value:>12.4g}  "
              f"{delta:>8}  {verdict}")

    overloaded = [(name, value) for name, (value, _) in sorted(fresh.items())
                  if name.endswith("completed_frac") and value < 1.0]
    if overloaded:
        print("\noverload regime (completed_frac < 1; latency numbers at "
              "these points describe a cluster shedding load):")
        for name, value in overloaded:
            print(f"  - {name}: {value:g}")

    if new_metrics:
        # A bench grew new measurement points (e.g. a batched.* sweep).
        # Nothing to compare them against yet, so they are informational:
        # their fresh values are the baseline entries the next committed
        # BENCH_*.json should carry. Never gated — a brand-new metric
        # cannot have regressed.
        print(f"\nnew metrics (no baseline yet; fresh values become the "
              f"baseline on the next refresh): {len(new_metrics)}")
        for name in new_single:
            value, unit = fresh[name]
            print(f"  + {name}: {value:g} {unit}".rstrip())
        for family, names in sorted(new_families.items()):
            print(f"  + {family}* — new group family, {len(names)} metrics:")
            for name in names:
                value, unit = fresh[name]
                print(f"      {name}: {value:g} {unit}".rstrip())

    if args.subset and missing:
        print(f"\nsubset run: {missing} baseline metric(s) not produced "
              f"by this filtered run (expected; not gated)")

    if advisories:
        print("\nadvisory (not gated):")
        for line in advisories:
            print(f"  - {line}")
    if gating:
        print(f"\nFAIL: {len(gating)} metric(s) regressed past "
              f"{args.threshold:.0%}:")
        for line in gating:
            print(f"  - {line}")
        return 1
    print(f"\nOK: no gated regression past {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
