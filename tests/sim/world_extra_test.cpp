// Additional simulator tests: in-flight capture, stats accounting,
// delay policies, determinism across adversarial operations.
#include <gtest/gtest.h>

#include <memory>

#include "sim/world.hpp"

namespace sbft {
namespace {

class Sink final : public Automaton {
 public:
  void OnFrame(NodeId, BytesView frame, IEndpoint&) override {
    received.emplace_back(frame.begin(), frame.end());
  }
  std::vector<Bytes> received;
};

class BurstOnStart final : public Automaton {
 public:
  BurstOnStart(NodeId peer, int count) : peer_(peer), count_(count) {}
  void OnStart(IEndpoint& endpoint) override {
    for (int i = 0; i < count_; ++i) {
      endpoint.Send(peer_, Bytes{static_cast<std::uint8_t>(i)});
    }
  }
  void OnFrame(NodeId, BytesView, IEndpoint&) override {}

 private:
  NodeId peer_;
  int count_;
};

TEST(WorldExtra, CaptureInFlightFreezesScheduledFrames) {
  World world(World::Options{1, std::make_unique<FixedDelay>(50)});
  auto sink_owner = std::make_unique<Sink>();
  Sink* sink = sink_owner.get();
  const NodeId dst = world.AddNode(std::move(sink_owner));
  const NodeId src = world.AddNode(std::make_unique<BurstOnStart>(dst, 5));

  // Enqueue the sends (OnStart), then freeze with capture.
  world.RunUntil([&] { return world.stats().frames_sent == 5; }, 0);
  world.HoldChannel(src, dst, /*capture_in_flight=*/true);
  world.Run();
  EXPECT_TRUE(sink->received.empty());

  world.ReleaseChannel(src, dst);
  world.Run();
  ASSERT_EQ(sink->received.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sink->received[i], Bytes{static_cast<std::uint8_t>(i)});
  }
}

TEST(WorldExtra, StatsBalanceAfterHoldReleaseCycle) {
  World world;
  auto sink_owner = std::make_unique<Sink>();
  const NodeId dst = world.AddNode(std::move(sink_owner));
  const NodeId src = world.AddNode(std::make_unique<BurstOnStart>(dst, 7));
  world.RunUntil([&] { return world.stats().frames_sent == 7; }, 0);
  world.HoldChannel(src, dst, true);
  world.ReleaseChannel(src, dst);
  world.Run();
  // No double counting through the capture/release path.
  EXPECT_EQ(world.stats().frames_sent, 7u);
  EXPECT_EQ(world.stats().frames_delivered, 7u);
  EXPECT_EQ(world.stats().frames_dropped, 0u);
}

TEST(WorldExtra, FixedDelayIsExact) {
  World world(World::Options{1, std::make_unique<FixedDelay>(25)});
  auto sink_owner = std::make_unique<Sink>();
  Sink* sink = sink_owner.get();
  const NodeId dst = world.AddNode(std::move(sink_owner));
  world.AddNode(std::make_unique<BurstOnStart>(dst, 1));
  world.Run();
  EXPECT_EQ(sink->received.size(), 1u);
  EXPECT_EQ(world.now(), 25u);
}

TEST(WorldExtra, ChannelOverrideDelayApplies) {
  auto policy = std::make_unique<ChannelOverrideDelay>(
      std::make_unique<FixedDelay>(5));
  ChannelOverrideDelay* policy_ptr = policy.get();
  World world(World::Options{1, std::move(policy)});
  auto sink_owner = std::make_unique<Sink>();
  Sink* sink = sink_owner.get();
  const NodeId dst = world.AddNode(std::move(sink_owner));
  const NodeId src = world.AddNode(std::make_unique<BurstOnStart>(dst, 1));
  policy_ptr->SetOverride(src, dst, 500);
  world.Run();
  EXPECT_EQ(sink->received.size(), 1u);
  EXPECT_EQ(world.now(), 500u);

  policy_ptr->ClearOverride(src, dst);
  Rng rng(1);
  EXPECT_EQ(policy_ptr->Sample(src, dst, 0, rng), 5u);
}

TEST(WorldExtra, UniformDelayRespectsBounds) {
  UniformDelay delay(3, 9);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const VirtualTime d = delay.Sample(0, 1, 0, rng);
    EXPECT_GE(d, 3u);
    EXPECT_LE(d, 9u);
  }
}

TEST(WorldExtra, DegenerateDelaysClampedToOne) {
  FixedDelay zero(0);
  Rng rng(1);
  EXPECT_EQ(zero.Sample(0, 1, 0, rng), 1u);
  UniformDelay inverted(7, 2);  // hi < lo
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(inverted.Sample(0, 1, 0, rng), 7u);
  }
}

TEST(WorldExtra, GarbageInjectionCountsAndDelivers) {
  World world;
  auto sink_owner = std::make_unique<Sink>();
  Sink* sink = sink_owner.get();
  const NodeId dst = world.AddNode(std::move(sink_owner));
  world.InjectGarbageFrames(5, dst, 12, 16);
  world.Run();
  EXPECT_EQ(sink->received.size(), 12u);
  EXPECT_EQ(world.stats().garbage_frames_injected, 12u);
  for (const Bytes& frame : sink->received) {
    EXPECT_GE(frame.size(), 1u);
    EXPECT_LE(frame.size(), 16u);
  }
}

TEST(WorldExtra, DeterministicUnderHoldsAndCorruption) {
  auto run_once = [] {
    World world(World::Options{77, std::make_unique<UniformDelay>(1, 9)});
    auto sink_owner = std::make_unique<Sink>();
    Sink* sink = sink_owner.get();
    const NodeId dst = world.AddNode(std::move(sink_owner));
    const NodeId src = world.AddNode(std::make_unique<BurstOnStart>(dst, 20));
    world.RunUntil([&] { return world.stats().frames_sent == 20; }, 0);
    world.HoldChannel(src, dst, true);
    world.InjectGarbageFrames(src, dst, 3);
    world.ReleaseChannel(src, dst);
    world.Run();
    return std::make_pair(sink->received, world.now());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(WorldExtra, StepReturnsFalseWhenDrained) {
  World world;
  world.AddNode(std::make_unique<Sink>());
  world.Run();
  EXPECT_FALSE(world.Step());
}

TEST(WorldExtra, RunUntilReturnsFalseOnCapOrDrain) {
  World world;
  auto sink_owner = std::make_unique<Sink>();
  Sink* sink = sink_owner.get();
  const NodeId dst = world.AddNode(std::move(sink_owner));
  world.AddNode(std::make_unique<BurstOnStart>(dst, 2));
  EXPECT_FALSE(
      world.RunUntil([&] { return sink->received.size() >= 10; }, 1'000));
}

}  // namespace
}  // namespace sbft
