#!/usr/bin/env python3
"""Determinism gate for tools/sbft_analyze.py (ctest label: lint).

Runs the whole-program analyzer twice over src/ with different
PYTHONHASHSEED values and requires byte-identical stdout and exit code
0 both times. A diff means some check iterates a hash-ordered container
on its way to output — exactly the bug class the analyzer polices in
the C++ tree, so the tool holds itself to the same bar.
"""

import argparse
import os
import subprocess
import sys


def run(analyzer: str, repo_root: str, hashseed: str):
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    return subprocess.run(
        [sys.executable, analyzer, "--repo-root", repo_root,
         "--frontend", "internal", os.path.join(repo_root, "src")],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--analyzer", required=True)
    parser.add_argument("--repo-root", required=True)
    args = parser.parse_args()

    first = run(args.analyzer, args.repo_root, "0")
    second = run(args.analyzer, args.repo_root, "1")

    failures = 0
    for label, result in (("run 1", first), ("run 2", second)):
        if result.returncode != 0:
            print(f"FAIL: {label} exited {result.returncode} "
                  f"(expected clean tree):")
            print(result.stdout)
            print(result.stderr)
            failures += 1
    if first.stdout != second.stdout:
        print("FAIL: analyzer output differs across hash seeds:")
        print("--- PYTHONHASHSEED=0\n" + first.stdout)
        print("--- PYTHONHASHSEED=1\n" + second.stdout)
        failures += 1

    if not failures:
        print("ok: two runs, identical findings, exit 0")
        print(first.stdout.strip())
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
