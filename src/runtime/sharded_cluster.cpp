#include "runtime/sharded_cluster.hpp"

#include <future>
#include <utility>

#include "common/error.hpp"

namespace sbft {

RegisterCluster::Options ShardedCluster::GroupOptions(
    const Options& options, std::size_t group_index) {
  RegisterCluster::Options group = options.group;
  // Fork the seed so groups draw independent randomness (ports, rng
  // streams) while the deployment stays reproducible from one seed.
  group.seed = options.group.seed * 8191 + group_index;
  return group;
}

ShardedCluster::ShardedCluster(const Options& options) : options_(options) {
  SBFT_ASSERT(options.n_groups >= 1);
  // The sharded layer routes by 64-bit key over the mux register
  // namespace; the one-node-per-client topology has no key namespace.
  SBFT_ASSERT(options.group.multiplex);
  // Build the groups BEFORE taking the router lock: group construction
  // reaches the transport's bus mutex (RegisterCluster -> AddNode ->
  // TcpBus::AddNode), and the router lock is declared to order before
  // nothing transport-side (docs/ARCHITECTURE.md lock-order DAG). A
  // constructor has no concurrency anyway — the lock below only
  // publishes the assembled state, as AddGroup already does.
  std::vector<std::unique_ptr<RegisterCluster>> groups;
  groups.reserve(options.n_groups);
  for (std::size_t g = 0; g < options.n_groups; ++g) {
    groups.push_back(
        std::make_unique<RegisterCluster>(GroupOptions(options, g)));
  }
  MutexLock lock(mutex_);
  map_ = ShardMap::Initial(options.n_groups, options.vnodes_per_group);
  groups_ = std::move(groups);
}

void ShardedCluster::Start() {
  std::vector<RegisterCluster*> groups;
  {
    MutexLock lock(mutex_);
    if (started_) return;
    started_ = true;
    for (auto& group : groups_) groups.push_back(group.get());
  }
  for (RegisterCluster* group : groups) group->Start();
}

void ShardedCluster::Stop() {
  // Destruction must run outside the lock: group Stop() joins node
  // threads that may be blocked in RouteWrite/RecordWriteHome.
  std::vector<std::unique_ptr<RegisterCluster>> groups;
  {
    MutexLock lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    groups.swap(groups_);
  }
  for (auto& group : groups) group->Stop();
}

RegisterCluster* ShardedCluster::RouteWrite(std::uint64_t key,
                                            GroupId* group_out) {
  MutexLock lock(mutex_);
  SBFT_ASSERT(started_ && !stopped_);
  const GroupId g = map_.GroupOf(key);
  *group_out = g;
  return groups_[g].get();
}

RegisterCluster* ShardedCluster::RouteRead(std::uint64_t key) {
  MutexLock lock(mutex_);
  SBFT_ASSERT(started_ && !stopped_);
  const auto it = write_home_.find(key);
  const GroupId g = it != write_home_.end() ? it->second : map_.GroupOf(key);
  return groups_[g].get();
}

void ShardedCluster::RecordWriteHome(std::uint64_t key, GroupId group) {
  MutexLock lock(mutex_);
  if (stopped_) return;
  write_home_[key] = group;
}

void ShardedCluster::AsyncWrite(std::uint64_t key, Value value,
                                WriteCallback callback) {
  GroupId g = 0;
  RegisterCluster* group = RouteWrite(key, &g);
  // The anchor flips BEFORE the user callback runs: a read issued from
  // the write's completion callback must already route to the group
  // that just acknowledged the write.
  group->AsyncWrite(
      key, std::move(value),
      [this, key, g, callback = std::move(callback)](
          const WriteOutcome& outcome) {
        if (outcome.status == OpStatus::kOk) RecordWriteHome(key, g);
        callback(outcome);
      });
}

void ShardedCluster::AsyncRead(std::uint64_t key, ReadCallback callback) {
  RouteRead(key)->AsyncRead(key, std::move(callback));
}

WriteOutcome ShardedCluster::Write(std::uint64_t key, Value value) {
  auto done = std::make_shared<std::promise<WriteOutcome>>();
  auto future = done->get_future();
  AsyncWrite(key, std::move(value), [done](const WriteOutcome& outcome) {
    done->set_value(outcome);
  });
  if (future.wait_for(options_.group.op_timeout) !=
      std::future_status::ready) {
    return WriteOutcome{};  // kFailed
  }
  return future.get();
}

ReadOutcome ShardedCluster::Read(std::uint64_t key) {
  auto done = std::make_shared<std::promise<ReadOutcome>>();
  auto future = done->get_future();
  AsyncRead(key, [done](const ReadOutcome& outcome) {
    done->set_value(outcome);
  });
  if (future.wait_for(options_.group.op_timeout) !=
      std::future_status::ready) {
    return ReadOutcome{};  // kFailed
  }
  return future.get();
}

GroupId ShardedCluster::AddGroup() {
  std::size_t index = 0;
  {
    MutexLock lock(mutex_);
    SBFT_ASSERT(started_ && !stopped_);
    index = groups_.size();
  }
  // Build and start the new group OUTSIDE the lock (TCP startup binds
  // listeners and spawns threads — far too slow to serialize against
  // the routing fast path). Concurrent AddGroup calls are the caller's
  // bug; the index check below turns a race into a crash, not silent
  // misrouting.
  auto group = std::make_unique<RegisterCluster>(GroupOptions(options_, index));
  group->Start();
  {
    MutexLock lock(mutex_);
    SBFT_ASSERT(!stopped_);
    SBFT_ASSERT(groups_.size() == index);
    groups_.push_back(std::move(group));
    // Installing the map is the atomic handoff: ops routed before this
    // line use the old epoch, ops after it the new one. Migrated keys'
    // reads keep following write_home_ until a write completes in the
    // new group.
    map_ = map_.WithGroupAdded();
  }
  return static_cast<GroupId>(index);
}

void ShardedCluster::CorruptServer(std::size_t server_index,
                                   std::uint64_t seed) {
  std::vector<RegisterCluster*> groups;
  {
    MutexLock lock(mutex_);
    SBFT_ASSERT(started_ && !stopped_);
    for (auto& group : groups_) groups.push_back(group.get());
  }
  for (RegisterCluster* group : groups) {
    group->CorruptServer(server_index, seed);
  }
}

std::size_t ShardedCluster::n_groups() const {
  MutexLock lock(mutex_);
  return groups_.size();
}

std::uint64_t ShardedCluster::epoch() const {
  MutexLock lock(mutex_);
  return map_.epoch();
}

GroupId ShardedCluster::WriteGroupOf(std::uint64_t key) const {
  MutexLock lock(mutex_);
  return map_.GroupOf(key);
}

GroupId ShardedCluster::ReadGroupOf(std::uint64_t key) const {
  MutexLock lock(mutex_);
  const auto it = write_home_.find(key);
  return it != write_home_.end() ? it->second : map_.GroupOf(key);
}

std::size_t ShardedCluster::keys_awaiting_handoff() const {
  MutexLock lock(mutex_);
  std::size_t waiting = 0;
  for (const auto& [key, home] : write_home_) {
    if (home != map_.GroupOf(key)) ++waiting;
  }
  return waiting;
}

std::uint64_t ShardedCluster::frames_delivered() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& group : groups_) {
    total += group->cluster().frames_delivered();
  }
  return total;
}

std::uint64_t ShardedCluster::protocol_cpu_ns() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& group : groups_) {
    total += group->cluster().protocol_cpu_ns();
  }
  return total;
}

std::uint64_t ShardedCluster::node_flush_rounds() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& group : groups_) total += group->node_flush_rounds();
  return total;
}

RegisterCluster& ShardedCluster::group(std::size_t index) {
  MutexLock lock(mutex_);
  SBFT_ASSERT(index < groups_.size());
  return *groups_[index];
}

}  // namespace sbft
