#include "load/driver.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>
#include <utility>

#include "common/thread_annotations.hpp"

namespace sbft::load {
namespace {

using Clock = std::chrono::steady_clock;

OpRecord::Result MapStatus(OpStatus status) {
  switch (status) {
    case OpStatus::kOk:
      return OpRecord::Result::kOk;
    case OpStatus::kAborted:
      return OpRecord::Result::kAborted;
    case OpStatus::kFailed:
      return OpRecord::Result::kFailed;
  }
  return OpRecord::Result::kFailed;
}

/// Mutable run state shared between the pacing thread and the node
/// threads that run completion callbacks. Lock order: this mutex may
/// be held across mailbox pushes (AsyncWrite/AsyncRead), but node
/// threads never hold a mailbox lock while calling back in — so the
/// order is acyclic.
struct RunState {
  struct KeyState {
    std::deque<std::size_t> queue;  // schedule indices awaiting launch
    bool busy = false;              // one in-flight op per key
  };

  RunState(std::size_t n_keys, std::size_t n_ops)
      : keys(n_keys), records(n_ops), launched_flag(n_ops, false) {}

  /// Outermost lock of the runtime stack: StartOp runs under it and
  /// reaches the shard router's map mutex and the destination
  /// mailbox mutex (AsyncWrite -> RouteWrite -> PostToNode).
  Mutex mutex ACQUIRED_BEFORE(lock_order::kShardRouter,
                              lock_order::kMailbox);
  CondVar drained;
  std::vector<KeyState> keys GUARDED_BY(mutex);
  std::vector<OpRecord> records GUARDED_BY(mutex);
  std::vector<bool> launched_flag GUARDED_BY(mutex);
  std::size_t launched GUARDED_BY(mutex) = 0;
  std::size_t queued GUARDED_BY(mutex) = 0;
  std::size_t returned GUARDED_BY(mutex) = 0;
  std::size_t ok GUARDED_BY(mutex) = 0;
  std::size_t aborted GUARDED_BY(mutex) = 0;
  std::size_t failed GUARDED_BY(mutex) = 0;
  std::uint64_t last_return_us GUARDED_BY(mutex) = 0;
  std::uint64_t first_write_done_us GUARDED_BY(mutex) = ~0ull;
  LatencyHistogram write_latency GUARDED_BY(mutex);
  LatencyHistogram read_latency GUARDED_BY(mutex);
  /// Drain window over: late callbacks must not touch the state the
  /// result was (or is being) built from.
  bool closed GUARDED_BY(mutex) = false;
};

class Engine {
 public:
  explicit Engine(const Scenario& scenario)
      : scenario_(scenario),
        schedule_(BuildSchedule(scenario)),
        state_(scenario.n_keys, schedule_.size()),
        cluster_(ShardedOptionsFor(scenario)) {}

  LoadResult Run();

 private:
  void Pace();
  void FireCorruption(const CorruptionSpec& spec, std::size_t index);
  void MaybeAddGroup(std::uint64_t next_at_us);
  void StartOp(std::size_t index) REQUIRES(state_.mutex);
  void Finish(std::size_t index, OpStatus status, const Bytes* read_value);
  void SleepUntilUs(std::uint64_t us) {
    std::this_thread::sleep_until(start_ + std::chrono::microseconds(us));
  }
  [[nodiscard]] std::uint64_t NowUs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

  const Scenario scenario_;
  const std::vector<ScheduledOp> schedule_;
  RunState state_;
  Clock::time_point start_;
  std::vector<std::uint64_t> corruption_times_;
  bool group_added_ = false;
  std::uint64_t group_add_time_us_ = ~0ull;
  // Last member: destroyed (and its node threads joined) first, so no
  // completion callback can observe a partially-destroyed Engine.
  ShardedCluster cluster_;
};

void Engine::StartOp(std::size_t index) {
  const ScheduledOp& op = schedule_[index];
  OpRecord& rec = state_.records[index];
  rec.kind = op.is_write ? OpRecord::Kind::kWrite : OpRecord::Kind::kRead;
  rec.client = op.key;
  rec.invoked_at = NowUs();  // actual launch: oracle-sound precedence
  if (op.is_write) rec.value = ValueFor(op);
  state_.launched_flag[index] = true;
  ++state_.launched;
  if (op.is_write) {
    cluster_.AsyncWrite(op.key, ValueFor(op),
                        [this, index](const WriteOutcome& outcome) {
                          Finish(index, outcome.status, nullptr);
                        });
  } else {
    cluster_.AsyncRead(op.key, [this, index](const ReadOutcome& outcome) {
      Finish(index, outcome.status, &outcome.value);
    });
  }
}

void Engine::Finish(std::size_t index, OpStatus status,
                    const Bytes* read_value) {
  const std::uint64_t now = NowUs();
  MutexLock lock(state_.mutex);
  if (state_.closed) return;
  const ScheduledOp& op = schedule_[index];
  OpRecord& rec = state_.records[index];
  rec.returned_at = now;
  rec.result = MapStatus(status);
  if (read_value != nullptr && status == OpStatus::kOk) {
    rec.value = *read_value;
  }
  ++state_.returned;
  switch (rec.result) {
    case OpRecord::Result::kOk:
      ++state_.ok;
      break;
    case OpRecord::Result::kAborted:
      ++state_.aborted;
      break;
    default:
      ++state_.failed;
      break;
  }
  state_.last_return_us = std::max(state_.last_return_us, now);
  if (status == OpStatus::kOk) {
    if (op.is_write) {
      state_.first_write_done_us = std::min(state_.first_write_done_us, now);
    }
    // Coordinated-omission-free latency: charged from the INTENDED
    // arrival, so time spent queued behind a slow predecessor counts.
    const std::uint64_t latency = now > op.at_us ? now - op.at_us : 0;
    (op.is_write ? state_.write_latency : state_.read_latency)
        .Record(latency);
  }
  RunState::KeyState& key = state_.keys[op.key];
  if (!key.queue.empty()) {
    const std::size_t next = key.queue.front();
    key.queue.pop_front();
    --state_.queued;
    StartOp(next);
  } else {
    key.busy = false;
  }
  state_.drained.NotifyAll();
}

void Engine::FireCorruption(const CorruptionSpec& spec, std::size_t index) {
  std::vector<std::size_t> servers = spec.servers;
  if (servers.empty()) {
    for (std::size_t s = 0; s < scenario_.n_servers; ++s)
      servers.push_back(s);
  }
  // Coordinated corruption: every server in the event shares one seed,
  // so the injected garbage AGREES across replicas. Agreeing garbage is
  // witnessed at >= 2f+1 and answers reads (kOk with a fabricated
  // value) instead of aborting them — the worst case Theorem 2 bounds,
  // and the one that actually exercises MeasureStabilization's
  // violation window. (Distinct per-server seeds made every post-fault
  // read abort, so the window always measured 0 — ROADMAP item 4.)
  const std::uint64_t seed = scenario_.seed * 7919 + index * 131 + 1;
  for (std::size_t s : servers) {
    cluster_.CorruptServer(s, seed);
  }
  corruption_times_.push_back(NowUs());
}

void Engine::MaybeAddGroup(std::uint64_t next_at_us) {
  if (group_added_ || scenario_.group_add_at_us == 0 ||
      scenario_.group_add_at_us > next_at_us) {
    return;
  }
  SleepUntilUs(scenario_.group_add_at_us);
  // AddGroup blocks the pacing thread while the new group's node
  // threads come up (milliseconds on TCP). Ops arriving meanwhile are
  // charged from their INTENDED start anyway, so the stall shows up
  // honestly as queueing latency — the cost of scaling out under load.
  cluster_.AddGroup();
  group_added_ = true;
  group_add_time_us_ = NowUs();
}

void Engine::Pace() {
  std::vector<CorruptionSpec> corruptions = scenario_.corruptions;
  std::stable_sort(corruptions.begin(), corruptions.end(),
                   [](const CorruptionSpec& a, const CorruptionSpec& b) {
                     return a.at_us < b.at_us;
                   });
  std::size_t next_corruption = 0;
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    while (next_corruption < corruptions.size() &&
           corruptions[next_corruption].at_us <= schedule_[i].at_us) {
      SleepUntilUs(corruptions[next_corruption].at_us);
      FireCorruption(corruptions[next_corruption], next_corruption);
      ++next_corruption;
    }
    MaybeAddGroup(schedule_[i].at_us);
    SleepUntilUs(schedule_[i].at_us);
    MutexLock lock(state_.mutex);
    RunState::KeyState& key = state_.keys[schedule_[i].key];
    if (key.busy) {
      key.queue.push_back(i);
      ++state_.queued;
    } else {
      key.busy = true;
      StartOp(i);
    }
  }
  while (next_corruption < corruptions.size()) {
    SleepUntilUs(corruptions[next_corruption].at_us);
    FireCorruption(corruptions[next_corruption], next_corruption);
    ++next_corruption;
  }
  MaybeAddGroup(~0ull);  // schedule ended before the growth point
}

LoadResult Engine::Run() {
  cluster_.Start();
  start_ = Clock::now();
  Pace();
  const std::uint64_t deadline = NowUs() + scenario_.drain_timeout_us;

  LoadResult result;
  {
    MutexLock lock(state_.mutex);
    while (!(state_.returned == state_.launched && state_.queued == 0)) {
      const std::uint64_t now = NowUs();
      if (now >= deadline) break;
      state_.drained.WaitFor(state_.mutex,
                             std::chrono::microseconds(deadline - now));
    }
    state_.closed = true;

    result.scheduled = schedule_.size();
    result.launched = state_.launched;
    result.ok = state_.ok;
    result.aborted = state_.aborted;
    result.failed = state_.failed;
    result.pending = state_.launched - state_.returned;
    result.unlaunched = schedule_.size() - state_.launched;
    result.completed_frac =
        schedule_.empty() ? 1.0
                          : static_cast<double>(state_.returned) /
                                static_cast<double>(schedule_.size());
    result.run_duration_us =
        std::max(state_.last_return_us, scenario_.TotalDurationUs());
    result.achieved_ops_per_sec =
        result.run_duration_us == 0
            ? 0.0
            : static_cast<double>(state_.ok) * 1e6 /
                  static_cast<double>(result.run_duration_us);
    result.first_write_done_us = state_.first_write_done_us;
    result.write_latency = state_.write_latency;
    result.read_latency = state_.read_latency;
    for (std::size_t i = 0; i < schedule_.size(); ++i) {
      if (state_.launched_flag[i]) result.history.Add(state_.records[i]);
    }
  }
  result.corruption_times_us = corruption_times_;
  result.group_add_time_us = group_add_time_us_;
  result.final_groups = cluster_.n_groups();
  result.final_epoch = cluster_.epoch();
  result.keys_awaiting_handoff = cluster_.keys_awaiting_handoff();
  cluster_.Stop();
  return result;
}

}  // namespace

LoadResult RunOpenLoop(const Scenario& scenario) {
  Engine engine(scenario);
  return engine.Run();
}

}  // namespace sbft::load
