#include "fuzz/runner.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include <map>
#include <string>

#include "core/deployment.hpp"
#include "core/mux.hpp"
#include "net/message.hpp"
#include "spec/workload.hpp"

namespace sbft::fuzz {
namespace {

// Seed separation: each randomness consumer forks off the scenario seed
// through a distinct salt so shrinking one dimension (e.g. dropping a
// Byzantine client) does not perturb the others more than necessary.
constexpr std::uint64_t kWorkloadSeedSalt = 0x3C6EF372FE94F82Bull;

std::string DescribeFrame(BytesView frame) {
  auto decoded = DecodeMessage(frame);
  return decoded.ok() ? MessageTypeName(decoded.value()) : "garbage";
}

void ApplyFault(World& world, Deployment& deployment,
                const FaultInjection& fault) {
  switch (fault.kind) {
    case FaultKind::kCorruptServer:
      world.CorruptNode(deployment.server_node(fault.a));
      break;
    case FaultKind::kCorruptClient:
      world.CorruptNode(deployment.client_node(fault.a));
      break;
    case FaultKind::kGarbageFrames:
      world.InjectGarbageFrames(deployment.client_node(fault.a),
                                deployment.server_node(fault.b),
                                fault.count);
      world.InjectGarbageFrames(deployment.server_node(fault.b),
                                deployment.client_node(fault.a),
                                fault.count);
      break;
    case FaultKind::kScrambleChannel:
      world.ScrambleChannel(deployment.client_node(fault.a),
                            deployment.server_node(fault.b));
      world.ScrambleChannel(deployment.server_node(fault.b),
                            deployment.client_node(fault.a));
      break;
  }
}

// ---- Mux / shared-FLUSH scenarios ------------------------------------

/// Register hosting logical client `c` (offset mirrors the runtime's
/// RegisterCluster: register 0 stays free).
RegisterId MuxRegisterOf(std::size_t client) { return client + 1; }

/// Per-key regularity: each logical client owns its own register, so
/// the history splits by OpRecord::client and every slice must satisfy
/// CheckRegular independently (the fuzz library deliberately re-derives
/// this partition instead of linking the load library).
///
/// The Definition 1 suffix anchors per register, not globally: key k's
/// guarantee starts at the first complete write ON k invoked after the
/// last fault. A key never written post-fault has no anchor — its reads
/// may legally return whatever the transient left behind (including the
/// initial value), so nothing on it is checked.
CheckReport CheckMuxRegularPerKey(const History& history,
                                  const CheckOptions& base,
                                  VirtualTime last_fault_time) {
  std::map<std::uint32_t, History> split;
  for (const OpRecord& op : history.ops()) {
    split[op.client].Add(OpRecord(op));
  }
  CheckReport merged;
  for (const auto& [key, sub] : split) {
    CheckOptions per_key = base;
    per_key.stabilized_from = kTimeForever;
    for (const OpRecord& op : sub.ops()) {
      if (op.kind == OpRecord::Kind::kWrite &&
          op.result == OpRecord::Result::kOk &&
          op.invoked_at > last_fault_time) {
        per_key.stabilized_from =
            std::min(per_key.stabilized_from, op.returned_at);
      }
    }
    if (base.max_violations != 0) {
      if (merged.violations.size() >= base.max_violations) break;
      per_key.max_violations = base.max_violations - merged.violations.size();
    }
    const CheckReport report = CheckRegular(sub, per_key);
    for (const std::string& violation : report.violations) {
      merged.AddViolation("key " + std::to_string(key) + ": " + violation);
    }
  }
  return merged;
}

/// Closed-loop workload over one MuxClient: logical client c drives
/// sequential ops on register c+1; distinct clients interleave in
/// virtual time exactly like the plain Driver in spec/workload.cpp.
/// Heap-held and shared_ptr-captured for the same reason: closures left
/// in the world queue after an event-cap stop must stay safe.
struct MuxDriver : std::enable_shared_from_this<MuxDriver> {
  MuxDriver(World& w, MuxClient& c, const WorkloadOptions& opts,
            std::size_t n_clients)
      : world(w),
        client(c),
        options(opts),
        rng(opts.seed),
        remaining(n_clients, opts.ops_per_client),
        seq(n_clients, 0) {}

  World& world;
  MuxClient& client;
  WorkloadOptions options;
  Rng rng;
  std::vector<std::uint32_t> remaining;
  std::vector<std::uint32_t> seq;
  std::size_t outstanding = 0;
  WorkloadResult result;

  [[nodiscard]] bool AllDone() const {
    return outstanding == 0 &&
           std::all_of(remaining.begin(), remaining.end(),
                       [](std::uint32_t r) { return r == 0; });
  }

  void ScheduleNext(std::size_t c) {
    auto self = shared_from_this();
    world.ScheduleCall(1 + rng.NextBelow(options.max_think_time),
                       [self, c] { self->LaunchNext(c); });
  }

  void LaunchNext(std::size_t c) {
    if (remaining[c] == 0) return;
    // A corrupted mux client destroys in-flight ops without running
    // their callbacks; a non-idle register here means exactly that
    // (this loop never overlaps its own ops), so the lane stops like
    // the plain driver's.
    if (!client.idle(MuxRegisterOf(c))) return;
    remaining[c]--;
    outstanding++;
    const VirtualTime invoked_at = world.now();
    auto self = shared_from_this();
    if (rng.NextBool(options.write_fraction)) {
      const std::string text =
          "c" + std::to_string(c) + "#" + std::to_string(seq[c]++);
      const Value value(text.begin(), text.end());
      client.StartWrite(
          MuxRegisterOf(c), value,
          [self, c, value, invoked_at](const WriteOutcome& out) {
            OpRecord record;
            record.kind = OpRecord::Kind::kWrite;
            record.result = out.status == OpStatus::kOk
                                ? OpRecord::Result::kOk
                                : OpRecord::Result::kFailed;
            record.client = static_cast<std::uint32_t>(c);
            record.invoked_at = invoked_at;
            record.returned_at = self->world.now();
            record.value = value;
            self->result.history.Add(std::move(record));
            if (out.status == OpStatus::kOk) {
              self->result.first_write_done =
                  std::min(self->result.first_write_done, self->world.now());
            }
            self->outstanding--;
            self->ScheduleNext(c);
          });
    } else {
      client.StartRead(
          MuxRegisterOf(c), [self, c, invoked_at](const ReadOutcome& out) {
            OpRecord record;
            record.kind = OpRecord::Kind::kRead;
            record.result = out.status == OpStatus::kOk
                                ? OpRecord::Result::kOk
                                : out.status == OpStatus::kAborted
                                      ? OpRecord::Result::kAborted
                                      : OpRecord::Result::kFailed;
            record.client = static_cast<std::uint32_t>(c);
            record.invoked_at = invoked_at;
            record.returned_at = self->world.now();
            record.value = out.value;
            self->result.history.Add(std::move(record));
            self->outstanding--;
            self->ScheduleNext(c);
          });
    }
  }
};

/// Scenario execution in mux mode (scenario.mux_window > 0): MuxServer
/// replicas, one MuxClient with batching + shared FLUSH rounds, per-key
/// regularity. Fault operands map naturally — all logical clients live
/// in the one mux client node.
RunOutcome RunMuxScenario(const Scenario& scenario,
                          const RunOptions& options) {
  const ProtocolConfig config = scenario.Config();

  auto delay = std::make_unique<ChannelOverrideDelay>(
      std::make_unique<UniformDelay>(scenario.delay_lo, scenario.delay_hi));
  ChannelOverrideDelay* overrides = delay.get();
  World world(World::Options{scenario.seed, std::move(delay)});
  world.trace().Enable(options.record_trace);

  std::map<std::uint32_t, ByzantineStrategy> byz;
  for (const auto& spec : scenario.byz_servers) {
    byz[spec.server] = spec.strategy;
  }

  std::vector<NodeId> server_ids;
  for (std::size_t i = 0; i < config.n; ++i) {
    MuxServer::ServerFactory factory;
    const auto it = byz.find(static_cast<std::uint32_t>(i));
    if (it != byz.end()) {
      factory = [strategy = it->second, config, i,
                 seed = scenario.seed * 131 + i](RegisterId) {
        return MakeByzantineServer(strategy, config, i, seed);
      };
    }
    auto server = std::make_unique<MuxServer>(config, i,
                                              /*max_registers=*/1024,
                                              std::move(factory));
    if (it != byz.end() && scenario.mux_flush_equivocate != 0) {
      // The per-register-Byzantine servers are ALSO the node-flush
      // equivocators, so the <= f adversary bound holds automatically.
      std::uint64_t salt = scenario.seed ^ (0x9E3779B97F4A7C15ull + i);
      server->SetFlushAckMutator(MakeFlushEquivocator(SplitMix64(salt)));
    }
    server_ids.push_back(world.AddNode(std::move(server)));
  }

  MuxBatchOptions batch;
  batch.max_ops = scenario.mux_window;
  batch.max_delay = 50;  // sim ticks; same scale as the delay policy
  batch.shared_flush = true;
  auto client_owner = std::make_unique<MuxClient>(
      config, server_ids, static_cast<ClientId>(config.n),
      /*max_registers=*/1024, batch);
  MuxClient* mux = client_owner.get();
  const NodeId client_node = world.AddNode(std::move(client_owner));
  world.RunUntil([] { return true; }, 0);  // OnStart caches endpoints

  // Directed slowdowns: every logical client shares the mux node, so
  // client operands collapse onto it (the per-channel direction is
  // still meaningful — there is one channel pair per server).
  for (const auto& slow : scenario.slowdowns) {
    const NodeId server = server_ids[slow.server];
    if (slow.client_to_server) {
      overrides->SetOverride(client_node, server, slow.delay);
    } else {
      overrides->SetOverride(server, client_node, slow.delay);
    }
  }

  std::uint64_t byz_client_salt = scenario.seed ^ 0xB12A97CE5EEDull;
  for (const auto& spec : scenario.byz_clients) {
    world.AddNode(std::make_unique<ByzantineClient>(
        spec.strategy, server_ids, config.k, SplitMix64(byz_client_salt),
        spec.rounds));
  }

  const auto apply_fault = [&world, &server_ids,
                            client_node](const FaultInjection& fault) {
    switch (fault.kind) {
      case FaultKind::kCorruptServer:
        world.CorruptNode(server_ids[fault.a]);
        break;
      case FaultKind::kCorruptClient:
        world.CorruptNode(client_node);
        break;
      case FaultKind::kGarbageFrames:
        world.InjectGarbageFrames(client_node, server_ids[fault.b],
                                  fault.count);
        world.InjectGarbageFrames(server_ids[fault.b], client_node,
                                  fault.count);
        break;
      case FaultKind::kScrambleChannel:
        world.ScrambleChannel(client_node, server_ids[fault.b]);
        world.ScrambleChannel(server_ids[fault.b], client_node);
        break;
    }
  };
  VirtualTime last_fault_time = 0;
  for (const auto& fault : scenario.faults) {
    last_fault_time = std::max(last_fault_time, fault.at);
    if (fault.at == 0) {
      apply_fault(fault);
    } else {
      const FaultInjection scheduled = fault;
      world.ScheduleCall(fault.at,
                         [apply_fault, scheduled] { apply_fault(scheduled); });
    }
  }

  WorkloadOptions workload;
  workload.ops_per_client = scenario.ops_per_client;
  workload.write_fraction = scenario.write_percent / 100.0;
  workload.max_think_time = scenario.max_think_time;
  std::uint64_t workload_salt = scenario.seed + kWorkloadSeedSalt;
  workload.seed = SplitMix64(workload_salt);
  workload.max_events = scenario.max_events;

  auto driver =
      std::make_shared<MuxDriver>(world, *mux, workload, scenario.n_clients);
  for (std::size_t c = 0; c < scenario.n_clients; ++c) {
    driver->ScheduleNext(c);
  }
  const bool all_completed =
      world.RunUntil([&] { return driver->AllDone(); }, workload.max_events);

  RunOutcome outcome;
  outcome.all_completed = all_completed;
  outcome.history = std::move(driver->result.history);

  // Global anchor for reporting; the checker and checked_reads count
  // re-anchor per key (each key is its own register instance).
  outcome.stabilized_from = kTimeForever;
  std::map<std::uint32_t, VirtualTime> key_anchor;
  for (const OpRecord& op : outcome.history.ops()) {
    if (op.kind == OpRecord::Kind::kWrite &&
        op.result == OpRecord::Result::kOk &&
        op.invoked_at > last_fault_time) {
      auto [it, inserted] = key_anchor.emplace(op.client, op.returned_at);
      if (!inserted) it->second = std::min(it->second, op.returned_at);
      outcome.stabilized_from =
          std::min(outcome.stabilized_from, op.returned_at);
    }
  }
  for (const OpRecord& op : outcome.history.ops()) {
    if (op.result == OpRecord::Result::kFailed) outcome.ops_failed++;
    if (op.kind != OpRecord::Kind::kRead) continue;
    if (op.result == OpRecord::Result::kAborted) outcome.reads_aborted++;
    const auto anchor = key_anchor.find(op.client);
    if (op.result == OpRecord::Result::kOk && anchor != key_anchor.end() &&
        op.invoked_at >= anchor->second) {
      outcome.checked_reads++;
    }
  }

  CheckOptions check;
  check.max_violations = options.max_violations;
  const bool servers_corrupted =
      std::any_of(scenario.faults.begin(), scenario.faults.end(),
                  [](const FaultInjection& fault) {
                    return fault.kind == FaultKind::kCorruptServer;
                  });
  if (!servers_corrupted) check.grandfathered_values = {Value{}};
  outcome.report =
      CheckMuxRegularPerKey(outcome.history, check, last_fault_time);

  if (options.record_trace) {
    outcome.trace = FormatTrace(world.trace().events(), DescribeFrame);
  }
  return outcome;
}

}  // namespace

RunOutcome RunScenario(const Scenario& input, const RunOptions& options) {
  Scenario scenario = input;
  scenario.Normalize();
  if (scenario.mux_window > 0) return RunMuxScenario(scenario, options);

  Deployment::Options deploy;
  deploy.config = scenario.Config();
  deploy.seed = scenario.seed;
  deploy.n_clients = scenario.n_clients;
  for (const auto& spec : scenario.byz_servers) {
    deploy.byzantine[spec.server] = spec.strategy;
  }
  auto delay = std::make_unique<ChannelOverrideDelay>(
      std::make_unique<UniformDelay>(scenario.delay_lo, scenario.delay_hi));
  ChannelOverrideDelay* overrides = delay.get();
  deploy.delay = std::move(delay);

  Deployment deployment(std::move(deploy));
  World& world = deployment.world();
  world.trace().Enable(options.record_trace);

  for (const auto& slow : scenario.slowdowns) {
    const NodeId client = deployment.client_node(slow.client);
    const NodeId server = deployment.server_node(slow.server);
    if (slow.client_to_server) {
      overrides->SetOverride(client, server, slow.delay);
    } else {
      overrides->SetOverride(server, client, slow.delay);
    }
  }

  // Byzantine clients are extra automata outside the deployment; they
  // attack the same server set the honest clients use.
  std::uint64_t byz_client_salt = scenario.seed ^ 0xB12A97CE5EEDull;
  for (const auto& spec : scenario.byz_clients) {
    world.AddNode(std::make_unique<ByzantineClient>(
        spec.strategy, deployment.server_nodes(), deployment.config().k,
        SplitMix64(byz_client_salt), spec.rounds));
  }

  VirtualTime last_fault_time = 0;
  for (const auto& fault : scenario.faults) {
    last_fault_time = std::max(last_fault_time, fault.at);
    if (fault.at == 0) {
      ApplyFault(world, deployment, fault);
    } else {
      const FaultInjection scheduled = fault;
      world.ScheduleCall(fault.at, [&world, &deployment, scheduled] {
        ApplyFault(world, deployment, scheduled);
      });
    }
  }

  WorkloadOptions workload;
  workload.ops_per_client = scenario.ops_per_client;
  workload.write_fraction = scenario.write_percent / 100.0;
  workload.max_think_time = scenario.max_think_time;
  std::uint64_t workload_salt = scenario.seed + kWorkloadSeedSalt;
  workload.seed = SplitMix64(workload_salt);
  workload.max_events = scenario.max_events;

  WorkloadResult result = RunConcurrentWorkload(deployment, workload);

  RunOutcome outcome;
  outcome.all_completed = result.all_completed;
  outcome.history = std::move(result.history);

  // Re-anchor the Definition 1 suffix past the last injected fault: the
  // paper's guarantee starts at the first complete write issued after
  // transient faults cease.
  outcome.stabilized_from = kTimeForever;
  for (const OpRecord& op : outcome.history.ops()) {
    if (op.kind == OpRecord::Kind::kWrite &&
        op.result == OpRecord::Result::kOk &&
        op.invoked_at > last_fault_time) {
      outcome.stabilized_from =
          std::min(outcome.stabilized_from, op.returned_at);
    }
  }

  for (const OpRecord& op : outcome.history.ops()) {
    if (op.result == OpRecord::Result::kFailed) outcome.ops_failed++;
    if (op.kind != OpRecord::Kind::kRead) continue;
    if (op.result == OpRecord::Result::kAborted) outcome.reads_aborted++;
    if (op.result == OpRecord::Result::kOk &&
        op.invoked_at >= outcome.stabilized_from) {
      outcome.checked_reads++;
    }
  }

  CheckOptions check;
  check.stabilized_from = outcome.stabilized_from;
  check.max_violations = options.max_violations;
  // Without server corruption the pre-write register content really is
  // the pristine initial value, which reads overlapping the stabilizing
  // write may legally return (Validity's second disjunct). Corruption
  // replaces it with garbage, so nothing is grandfathered then — any
  // unwritten value returned post-stabilization is a violation.
  const bool servers_corrupted =
      std::any_of(scenario.faults.begin(), scenario.faults.end(),
                  [](const FaultInjection& fault) {
                    return fault.kind == FaultKind::kCorruptServer;
                  });
  if (!servers_corrupted) check.grandfathered_values = {Value{}};
  outcome.report = CheckRegular(outcome.history, check);

  if (options.record_trace) {
    outcome.trace = FormatTrace(world.trace().events(), DescribeFrame);
  }
  return outcome;
}

}  // namespace sbft::fuzz
