// Greedy scenario shrinking: reduce a violating scenario to a locally
// minimal repro while preserving the violation.
//
// Classic delta-debugging adapted to the scenario grammar: candidate
// edits (drop a whole fault burst, drop one Byzantine server, remove a
// slowdown, halve the workload, drop a client, shrink the topology) are
// tried in a fixed order; an edit is kept iff the edited scenario still
// violates the specification when re-run. The result is not globally
// minimal — the checker only promises a local fixpoint within the run
// budget — but in practice a 40-operand cocktail shrinks to the 3-4
// ingredients that matter, which is what a human needs for triage.
#pragma once

#include <cstddef>

#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"

namespace sbft::fuzz {

struct ShrinkOptions {
  /// Budget on re-executions (each candidate edit costs one run).
  std::size_t max_runs = 300;
  RunOptions run;
};

struct ShrinkResult {
  Scenario scenario;       // locally minimal, still violating
  std::size_t attempts = 0;  // candidate runs spent
  std::size_t accepted = 0;  // edits that preserved the violation
};

/// Precondition: RunScenario(scenario).violation() is true (the caller
/// just observed it). Returns the shrunk scenario; if nothing could be
/// removed, returns the input unchanged.
[[nodiscard]] ShrinkResult Shrink(const Scenario& scenario,
                                  const ShrinkOptions& options = {});

}  // namespace sbft::fuzz
