// BufferPool invariants: reuse preserves capacity, Release never grows
// the pool past its bounds, and the steady-state encode loop the pool
// exists for (acquire -> fill -> release) stops allocating.
#include "common/buffer_pool.hpp"

#include <gtest/gtest.h>

namespace sbft {
namespace {

TEST(BufferPool, AcquireReusesReleasedCapacity) {
  BufferPool pool;
  Bytes buf = pool.Acquire();
  buf.assign(128, 0xAB);
  const auto* storage = buf.data();
  pool.Release(std::move(buf));
  ASSERT_EQ(pool.size(), 1u);

  Bytes again = pool.Acquire();
  EXPECT_EQ(again.data(), storage);  // same heap block came back
  EXPECT_TRUE(again.empty());        // ...but cleared
  EXPECT_GE(again.capacity(), 128u);
}

TEST(BufferPool, ReleaseDropsCapacityFreeBuffers) {
  BufferPool pool;
  pool.Release(Bytes{});  // nothing worth keeping
  EXPECT_EQ(pool.size(), 0u);
}

TEST(BufferPool, ReleaseDropsOversizedBuffers) {
  BufferPool pool(/*max_buffers=*/4, /*max_retained_capacity=*/64);
  Bytes big;
  big.reserve(65);
  pool.Release(std::move(big));
  EXPECT_EQ(pool.size(), 0u);

  Bytes ok;
  ok.reserve(64);
  pool.Release(std::move(ok));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(BufferPool, ReleaseBoundedByMaxBuffers) {
  BufferPool pool(/*max_buffers=*/2);
  for (int i = 0; i < 5; ++i) {
    Bytes buf;
    buf.reserve(16);
    pool.Release(std::move(buf));
  }
  EXPECT_EQ(pool.size(), 2u);
}

TEST(BufferPool, StatsCountReuse) {
  BufferPool pool;
  Bytes first = pool.Acquire();  // miss: pool empty
  first.reserve(32);
  pool.Release(std::move(first));
  (void)pool.Acquire();  // hit
  EXPECT_EQ(pool.stats().acquired, 2u);
  EXPECT_EQ(pool.stats().reused, 1u);
  EXPECT_EQ(pool.stats().recycled, 1u);
}

TEST(BufferPool, SteadyStateLoopHitsEveryAcquire) {
  BufferPool pool;
  // Warm-up allocates once; afterwards every cycle is a pool hit.
  for (int i = 0; i < 100; ++i) {
    Bytes buf = pool.Acquire();
    buf.assign(200, static_cast<std::uint8_t>(i));
    pool.Release(std::move(buf));
  }
  EXPECT_EQ(pool.stats().acquired, 100u);
  EXPECT_EQ(pool.stats().reused, 99u);
}

TEST(BufferPool, FramePoolIsPerThreadSingleton) {
  BufferPool& a = FramePool();
  BufferPool& b = FramePool();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace sbft
