// Stabilization time under traffic: how long after a transient
// corruption the register is regular again, measured black-box from an
// operation history.
//
// The paper's guarantee (Theorem 2) is a SUFFIX property: after the
// first complete post-fault write, reads are regular. CheckRegular
// exposes exactly that via stabilized_from — reads invoked before it
// are excused. Raising stabilized_from only excuses MORE reads, so
// "does the history check out from T onward" is monotone in T, and the
// earliest clean T is found by binary search over the post-corruption
// read invocation times. T minus the corruption instant is the
// measured violation window — the number bench_load's corruption
// scenarios report and trend.
#pragma once

#include <cstdint>

#include "spec/history.hpp"
#include "spec/regular_checker.hpp"

namespace sbft::load {

struct StabilizationReport {
  /// True when some clean suffix still JUDGES at least one
  /// post-corruption read (an all-excused suffix would be vacuous).
  bool stabilized = false;
  /// Earliest T with a clean check; reads invoked at/after T are fully
  /// regular. Meaningful only when stabilized.
  std::uint64_t stabilized_at_us = 0;
  /// stabilized_at_us - corruption_at_us (0 when the corruption never
  /// disturbed regularity at all).
  std::uint64_t violation_window_us = 0;
  /// Ok-reads invoked at/after the corruption instant, and how many of
  /// them fall inside the violation window (are excused).
  std::size_t reads_after_corruption = 0;
  std::size_t excused_reads = 0;
};

/// CheckRegular for the MULTIPLEXED topology: each OpRecord::client is
/// its own independent register (the load driver maps key k to client
/// k), so the history is partitioned by client and each partition is
/// checked on its own. Feeding the combined history to CheckRegular
/// directly would report phantom staleness — a read of key A
/// "superseded" by a write to key B.
[[nodiscard]] CheckReport CheckRegularPerKey(const History& history,
                                             const CheckOptions& options = {});

/// Measure the stabilization point after a corruption injected at
/// `corruption_at_us`. `base` supplies grandfathered_values (and any
/// other checker knobs); stabilized_from and max_violations are
/// overridden internally. Registers are independent (per-key check as
/// above); the reported threshold is the earliest T from which EVERY
/// key's suffix is clean.
[[nodiscard]] StabilizationReport MeasureStabilization(
    const History& history, std::uint64_t corruption_at_us,
    const CheckOptions& base = {});

}  // namespace sbft::load
