// Twin of bad_unordered_iteration.cpp: point lookups into the
// unordered map are fine (no traversal order involved), and ordered
// traversal goes through a std::map mirror. Must pass clean.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace sbft {

std::vector<std::uint32_t> SerializeCounts(
    const std::map<std::string, std::uint32_t>& ordered,
    const std::unordered_map<std::string, std::uint32_t>& index) {
  std::vector<std::uint32_t> out;
  for (const auto& [key, count] : ordered) {
    auto it = index.find(key);
    if (it != index.end()) out.push_back(it->second + count);
  }
  return out;
}

}  // namespace sbft
