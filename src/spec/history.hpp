// Operation histories for black-box consistency checking.
//
// A History is the projection of an execution onto operation invocation
// and return events (the fictional-global-clock view of §II-A). The
// checker is black-box: it never looks at protocol internals, only at
// operation boundaries and returned values, so the same checker
// validates the paper's protocol and every baseline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "sim/types.hpp"

namespace sbft {

struct OpRecord {
  enum class Kind : std::uint8_t { kWrite, kRead };
  enum class Result : std::uint8_t {
    kOk,       // completed with a value
    kAborted,  // read aborted (explicitly allowed pre-stabilization)
    kFailed,   // write failed / client destroyed
    kPending,  // never returned within the observation window
  };

  Kind kind = Kind::kWrite;
  Result result = Result::kPending;
  std::uint32_t client = 0;
  VirtualTime invoked_at = 0;
  VirtualTime returned_at = 0;  // meaningful when result != kPending
  Bytes value;                  // written value, or value returned by read

  /// op precedes other iff it returned before the other was invoked
  /// (§II-A precedence).
  [[nodiscard]] bool PrecedesRt(const OpRecord& other) const {
    return result != Result::kPending && returned_at < other.invoked_at;
  }
  [[nodiscard]] bool ConcurrentWith(const OpRecord& other) const {
    return !PrecedesRt(other) && !other.PrecedesRt(*this);
  }
};

class History {
 public:
  void Add(OpRecord record) { ops_.push_back(std::move(record)); }
  [[nodiscard]] const std::vector<OpRecord>& ops() const { return ops_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  void Clear() { ops_.clear(); }

  [[nodiscard]] std::vector<const OpRecord*> Writes() const;
  [[nodiscard]] std::vector<const OpRecord*> Reads() const;

 private:
  std::vector<OpRecord> ops_;
};

}  // namespace sbft
