// Fixture: uses an object's address as its identity in a trace key.
// Must trip [address-as-value] — ASLR makes it differ every run.
#include <cstdint>

namespace sbft {

struct Op {
  int kind;
};

std::uintptr_t TraceKey(const Op& op) {
  return reinterpret_cast<std::uintptr_t>(&op);
}

}  // namespace sbft
