// Fixture: mixes the OS thread id into protocol state. Must trip
// [thread-id] — thread identity differs run to run.
#include <functional>
#include <thread>

namespace sbft {

std::size_t ShardOf(std::size_t shards) {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % shards;
}

}  // namespace sbft
