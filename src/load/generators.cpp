#include "load/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sbft::load {

PoissonProcess::PoissonProcess(double rate_per_sec, Rng rng)
    : rate_per_sec_(rate_per_sec), rng_(rng) {
  SBFT_ASSERT(rate_per_sec > 0.0);
}

std::uint64_t PoissonProcess::NextArrivalUs() {
  // Inverse-CDF exponential sample. NextDouble() is in [0, 1), so the
  // argument of log is in (0, 1] and the gap is finite and >= 0.
  const double u = rng_.NextDouble();
  const double gap_sec = -std::log1p(-u) / rate_per_sec_;
  now_us_ += gap_sec * 1e6;
  return static_cast<std::uint64_t>(now_us_);
}

void PoissonProcess::SetRate(double rate_per_sec) {
  SBFT_ASSERT(rate_per_sec > 0.0);
  rate_per_sec_ = rate_per_sec;
}

void PoissonProcess::ResetTo(std::uint64_t us) {
  now_us_ = static_cast<double>(us);
}

ZipfGenerator::ZipfGenerator(std::size_t n, double skew, Rng rng)
    : skew_(skew), rng_(rng) {
  SBFT_ASSERT(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding in the final bucket
}

std::size_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

std::uint64_t ProfileDurationUs(const std::vector<RatePhase>& phases) {
  std::uint64_t total = 0;
  for (const RatePhase& phase : phases) total += phase.duration_us;
  return total;
}

}  // namespace sbft::load
