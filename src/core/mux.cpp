#include "core/mux.hpp"

#include <algorithm>
#include <optional>

#include "common/buffer_pool.hpp"
#include "common/hash.hpp"

namespace sbft {
namespace {

// Endpoint adaptor: outgoing inner frames get wrapped with the register
// id. Used per-call on the server side (RegisterServer never stores the
// endpoint) and persistently on the client side via OuterRef.
class WrapEndpoint final : public IEndpoint {
 public:
  WrapEndpoint(IEndpoint& outer, RegisterId id) : outer_(&outer), id_(id) {}

  void Send(NodeId dst, Bytes frame) override {
    // Envelope the already-encoded inner frame in place — no MuxMsg
    // variant construction, no second encode of the inner message.
    outer_->Send(dst, EncodeMuxEnvelope(id_, frame));
    FramePool().Release(std::move(frame));
  }

  void Broadcast(std::span<const NodeId> dsts, Bytes frame) override {
    // Envelope once; the outer endpoint fans the single wrapped frame
    // out (shared payload in the sim/threaded backends).
    outer_->Broadcast(dsts, EncodeMuxEnvelope(id_, frame));
    FramePool().Release(std::move(frame));
  }
  void SetTimer(VirtualTime delay, int timer_id) override {
    outer_->SetTimer(delay, timer_id);
  }
  [[nodiscard]] VirtualTime Now() const override { return outer_->Now(); }
  [[nodiscard]] NodeId self() const override { return outer_->self(); }
  Rng& rng() override { return outer_->rng(); }

 private:
  IEndpoint* outer_;
  RegisterId id_;
};

// Endpoint adaptor for batch dispatch: outgoing inner frames accumulate
// in the collector keyed by (destination, register) instead of leaving
// immediately, so one physical frame per link carries the replies of
// every sub-op in the incoming batch.
class CollectEndpoint final : public IEndpoint {
 public:
  CollectEndpoint(IEndpoint& outer, MuxBatchCollector& collector,
                  RegisterId id)
      : outer_(&outer), collector_(&collector), id_(id) {}

  void Send(NodeId dst, Bytes frame) override {
    collector_->Add(dst, id_, frame);
    FramePool().Release(std::move(frame));
  }
  void Broadcast(std::span<const NodeId> dsts, Bytes frame) override {
    collector_->AddBroadcast(dsts, id_, frame);
    FramePool().Release(std::move(frame));
  }
  void SetTimer(VirtualTime delay, int timer_id) override {
    outer_->SetTimer(delay, timer_id);
  }
  [[nodiscard]] VirtualTime Now() const override { return outer_->Now(); }
  [[nodiscard]] NodeId self() const override { return outer_->self(); }
  Rng& rng() override { return outer_->rng(); }

 private:
  IEndpoint* outer_;
  MuxBatchCollector* collector_;
  RegisterId id_;
};

void TouchLru(
    std::list<RegisterId>& lru,
    std::unordered_map<RegisterId, std::list<RegisterId>::iterator>& pos,
    RegisterId id) {
  // The per-register phases of one protocol round arrive back-to-back
  // (batch dispatch interleaves registers, but each register's frames
  // cluster), so the id is often already at the front.
  if (!lru.empty() && lru.front() == id) return;
  if (auto it = pos.find(id); it != pos.end()) {
    lru.splice(lru.begin(), lru, it->second);  // O(1); iterator stays valid
  } else {
    lru.push_front(id);
    pos.emplace(id, lru.begin());
  }
}

/// The mux client's one timer: the batch window's max-delay bound.
/// No inner automaton uses timers, so the id only has to be stable.
constexpr int kMuxBatchTimerId = 7001;

}  // namespace

RegisterId RegisterIdOf(std::string_view key) { return Fnv1a(key); }

// --- MuxBatchCollector ---------------------------------------------------

void MuxBatchCollector::Add(NodeId dst, RegisterId id, BytesView inner) {
  MuxBatchBuilder& builder = builders_[dst];
  if (builder.empty()) ++pending_frames_;
  builder.Add(id, inner);
}

void MuxBatchCollector::AddBroadcast(std::span<const NodeId> dsts,
                                     RegisterId id, BytesView inner) {
  for (const NodeId dst : dsts) Add(dst, id, inner);
}

void MuxBatchCollector::Flush(IEndpoint& out) {
  if (pending_frames_ == 0) return;
  for (auto& [dst, builder] : builders_) {
    if (builder.empty()) continue;
    out.Send(dst, builder.Take());
  }
  pending_frames_ = 0;
}

// --- MuxServer -----------------------------------------------------------

MuxServer::MuxServer(ProtocolConfig config, std::size_t server_index,
                     std::size_t max_registers, ServerFactory factory)
    : config_(config),
      index_(server_index),
      max_registers_(max_registers),
      factory_(std::move(factory)) {
  SBFT_ASSERT(max_registers_ >= 1);
  registers_.reserve(max_registers_);
  lru_pos_.reserve(max_registers_);
  if (!factory_) {
    factory_ = [this](RegisterId) {
      return std::make_unique<RegisterServer>(config_, index_);
    };
  }
}

RegisterServer* MuxServer::Find(RegisterId id) {
  auto it = registers_.find(id);
  return it == registers_.end() ? nullptr : it->second.get();
}

RegisterServer& MuxServer::GetOrCreate(RegisterId id) {
  auto it = registers_.find(id);
  if (it == registers_.end()) {
    if (registers_.size() >= max_registers_ && !lru_.empty()) {
      // Evict the coldest register. It re-enters later in its initial
      // state, which the protocol treats like a transient fault.
      const RegisterId cold = lru_.back();
      registers_.erase(cold);
      lru_.pop_back();
      lru_pos_.erase(cold);
    }
    it = registers_.emplace(id, factory_(id)).first;
  }
  TouchLru(lru_, lru_pos_, id);
  return *it->second;
}

void MuxServer::OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  if (const auto* flush = std::get_if<NodeFlushMsg>(&decoded.value())) {
    // Node-level FLUSH: echo the whole item vector in one ack frame.
    // The honest per-register handler (RegisterServer::HandleFlush) is
    // a pure echo, so one node-level echo is semantically identical
    // for every register in the window — and skips the per-register
    // dispatch, LRU touch, and frame encode entirely, which is where
    // the amortization's CPU win on the server side comes from. By
    // FIFO, this ack leaving after the probe proves that everything
    // sent to us earlier on this channel — for ANY register — has been
    // processed, which is exactly what the inner label discipline
    // needs from a flush ack.
    NodeFlushAckMsg ack;
    ack.items = std::move(std::get<NodeFlushMsg>(decoded.value()).items);
    if (flush_ack_mutator_) flush_ack_mutator_(ack.items);
    ++node_flushes_acked_;
    endpoint.Send(from, EncodeMessage(Message(ack)));
    return;
  }
  if (const auto* mux = std::get_if<MuxMsg>(&decoded.value())) {
    WrapEndpoint wrapped(endpoint, mux->register_id);
    GetOrCreate(mux->register_id).OnFrame(from, mux->inner, wrapped);
    return;
  }
  const auto* batch = std::get_if<MuxBatchMsg>(&decoded.value());
  if (batch == nullptr) return;  // bare frames are not for a mux server
  // Apply the whole vector of register sub-ops; replies collected while
  // dispatching leave as one batch frame per destination, so the reply
  // side of the round is as coalesced as the request side.
  for (const MuxItem& item : batch->items) {
    CollectEndpoint collect(endpoint, collector_, item.register_id);
    GetOrCreate(item.register_id).OnFrame(from, item.inner, collect);
  }
  // Inside a runtime batch the flush waits for OnBatchEnd, merging the
  // replies of every frame drained in this wakeup.
  if (batch_depth_ == 0) collector_.Flush(endpoint);
}

void MuxServer::OnBatchStart(IEndpoint&) { ++batch_depth_; }

void MuxServer::OnBatchEnd(IEndpoint& endpoint) {
  SBFT_ASSERT(batch_depth_ > 0);
  if (--batch_depth_ == 0) collector_.Flush(endpoint);
}

void MuxServer::CorruptState(Rng& rng) {
  // One base draw, then a per-register fork keyed by the register id:
  // two replicas corrupted with the same seed produce the SAME garbage
  // for the same register no matter which other registers each table
  // happens to hold. Coordinated-corruption scenarios rely on this —
  // garbage that agrees across servers is witnessed at >= 2f+1 and so
  // ANSWERS reads (exercising the violation window) instead of
  // aborting them.
  const std::uint64_t base = rng();
  for (auto& [id, server] : registers_) {
    Rng fork(base ^ (id * 0x9E3779B97F4A7C15ull));
    server->CorruptState(fork);
  }
}

// --- MuxClient -----------------------------------------------------------

// Persistent per-register endpoint: routes outgoing frames back through
// the owning MuxClient, which either envelopes them immediately or, when
// a batch scope is open, coalesces them into the round's batch frames.
// Inner clients cache this at OnStart, so the indirection is what lets
// the same RegisterClient flip between paths per round.
class MuxClient::RouteEndpoint final : public IEndpoint {
 public:
  RouteEndpoint(MuxClient& owner, RegisterId id) : owner_(&owner), id_(id) {}

  void Send(NodeId dst, Bytes frame) override {
    owner_->RouteSend(id_, dst, std::move(frame));
  }
  void Broadcast(std::span<const NodeId> dsts, Bytes frame) override {
    owner_->RouteBroadcast(id_, dsts, std::move(frame));
  }
  void SetTimer(VirtualTime delay, int timer_id) override {
    owner_->endpoint_->SetTimer(delay, timer_id);
  }
  [[nodiscard]] VirtualTime Now() const override {
    return owner_->endpoint_->Now();
  }
  [[nodiscard]] NodeId self() const override {
    return owner_->endpoint_->self();
  }
  Rng& rng() override { return owner_->endpoint_->rng(); }

 private:
  MuxClient* owner_;
  RegisterId id_;
};

// Per-register shared-flush seam: the inner client's FLUSH rounds route
// back through the owning MuxClient, which batches them into node-level
// windows. The provider lives in the same Entry as the client, so
// lifetimes match exactly (like RouteEndpoint).
class MuxClient::RouteFlushProvider final : public FlushProvider {
 public:
  RouteFlushProvider(MuxClient& owner, RegisterId id)
      : owner_(&owner), id_(id) {}

  void RequestFlush(OpLabel label, OpScope scope) override {
    owner_->RouteFlush(id_, label, scope);
  }

 private:
  MuxClient* owner_;
  RegisterId id_;
};

// RAII batch scope: frames sent while at least one scope is open
// coalesce in the collector; the outermost close starts queued ops (so
// their first phase joins the same round) and flushes one batch frame
// per destination.
struct MuxClient::BatchScope {
  explicit BatchScope(MuxClient& owner) : client(owner) {
    ++client.scope_depth_;
  }
  ~BatchScope() {
    if (--client.scope_depth_ == 0) client.FlushRound();
  }
  BatchScope(const BatchScope&) = delete;
  BatchScope& operator=(const BatchScope&) = delete;

  MuxClient& client;
};

MuxClient::MuxClient(ProtocolConfig config, std::vector<NodeId> servers,
                     ClientId client_id, std::size_t max_registers,
                     MuxBatchOptions batch)
    : config_(config),
      servers_(std::move(servers)),
      client_id_(client_id),
      max_registers_(max_registers),
      batch_(batch) {
  SBFT_ASSERT(max_registers_ >= 1);
  // One rehash up front instead of several during warm-up (the table
  // reaches max_registers_ in steady state under high concurrency).
  clients_.reserve(max_registers_);
  lru_pos_.reserve(max_registers_);
}

void MuxClient::OnStart(IEndpoint& endpoint) { endpoint_ = &endpoint; }

RegisterClient& MuxClient::GetOrCreate(RegisterId id) {
  SBFT_ASSERT(endpoint_ != nullptr);
  auto it = clients_.find(id);
  if (it == clients_.end()) {
    if (clients_.size() >= max_registers_) {
      // Evict the coldest IDLE register client (an in-flight operation
      // must never lose its callback). If everything is busy, exceed
      // the cap rather than wedge.
      for (auto lru_it = lru_.rbegin(); lru_it != lru_.rend(); ++lru_it) {
        const RegisterId cold = *lru_it;
        auto candidate = clients_.find(cold);
        if (candidate != clients_.end() && candidate->second.client->idle()) {
          clients_.erase(candidate);
          lru_.erase(std::next(lru_it).base());
          lru_pos_.erase(cold);
          break;
        }
      }
    }
    Entry entry;
    entry.endpoint = std::make_unique<RouteEndpoint>(*this, id);
    entry.client = std::make_unique<RegisterClient>(config_, servers_,
                                                    client_id_);
    // RegisterClient caches the endpoint passed to OnStart; the router
    // lives in the same Entry, so lifetimes match exactly.
    entry.client->OnStart(*entry.endpoint);
    if (batch_.shared_flush) {
      entry.flush_provider = std::make_unique<RouteFlushProvider>(*this, id);
      entry.client->SetFlushProvider(entry.flush_provider.get());
    }
    it = clients_.emplace(id, std::move(entry)).first;
  }
  TouchLru(lru_, lru_pos_, id);
  return *it->second.client;
}

void MuxClient::OnFrame(NodeId from, BytesView frame, IEndpoint&) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  if (const auto* ack = std::get_if<NodeFlushAckMsg>(&decoded.value())) {
    OnNodeFlushAck(from, *ack);
    return;
  }
  if (const auto* mux = std::get_if<MuxMsg>(&decoded.value())) {
    std::optional<BatchScope> scope;
    if (batching()) scope.emplace(*this);
    DispatchInner(from, mux->register_id, mux->inner);
    return;
  }
  const auto* batch = std::get_if<MuxBatchMsg>(&decoded.value());
  if (batch == nullptr) return;
  // One incoming frame carries one protocol phase of many ops. The
  // scope stays open across the whole dispatch, so every frame our
  // automata send in response coalesces into the next round's batch
  // frames — and ops submitted by completion callbacks fired here join
  // that same round instead of waiting out the batch window.
  std::optional<BatchScope> scope;
  if (batching()) scope.emplace(*this);
  for (const MuxItem& item : batch->items) {
    DispatchInner(from, item.register_id, item.inner);
  }
}

void MuxClient::DispatchInner(NodeId from, RegisterId id, BytesView inner) {
  auto it = clients_.find(id);
  if (it == clients_.end()) return;  // reply for an evicted register
  it->second.client->OnFrame(from, inner, *it->second.endpoint);
}

void MuxClient::OnTimer(int timer_id, IEndpoint&) {
  if (timer_id != kMuxBatchTimerId) return;
  timer_armed_ = false;
  if (!pending_.empty()) FlushRound();
}

void MuxClient::OnBatchStart(IEndpoint&) {
  if (batching()) ++scope_depth_;
}

void MuxClient::OnBatchEnd(IEndpoint&) {
  if (!batching()) return;
  SBFT_ASSERT(scope_depth_ > 0);
  if (--scope_depth_ == 0) FlushRound();
}

void MuxClient::RouteSend(RegisterId id, NodeId dst, Bytes frame) {
  if (scope_depth_ > 0) {
    collector_.Add(dst, id, frame);
  } else {
    // Envelope the already-encoded inner frame in place — no MuxMsg
    // variant construction, no second encode of the inner message.
    endpoint_->Send(dst, EncodeMuxEnvelope(id, frame));
  }
  FramePool().Release(std::move(frame));
}

void MuxClient::RouteBroadcast(RegisterId id, std::span<const NodeId> dsts,
                               Bytes frame) {
  if (scope_depth_ > 0) {
    collector_.AddBroadcast(dsts, id, frame);
  } else {
    // Envelope once; the outer endpoint fans the single wrapped frame
    // out (shared payload in the sim/threaded backends).
    endpoint_->Broadcast(dsts, EncodeMuxEnvelope(id, frame));
  }
  FramePool().Release(std::move(frame));
}

void MuxClient::OnNodeFlushAck(NodeId from, const NodeFlushAckMsg& ack) {
  // Distribute the node-level ack element-wise. Each item becomes the
  // per-register FlushAckMsg the inner automaton would have received
  // from `from` directly, so the threshold/stale-filtering/late-ack
  // semantics run verbatim inside RegisterClient. A Byzantine server
  // can equivocate labels or scopes per item; the inner stale-ack
  // filter drops anything that does not match the register's in-flight
  // label, exactly as it would for a forged per-register FLUSH_ACK.
  // The scope makes the READs that late acks trigger (Figure 3 lines
  // 13-15) coalesce into this round's batch frames.
  std::optional<BatchScope> scope;
  if (batching()) scope.emplace(*this);
  for (const FlushItem& item : ack.items) {
    auto it = clients_.find(item.register_id);
    if (it == clients_.end()) continue;  // evicted or never ours
    FlushAckMsg inner;
    inner.label = item.label;
    inner.scope = item.scope;
    it->second.client->DeliverFlushAck(from, inner);
  }
}

void MuxClient::RouteFlush(RegisterId id, OpLabel label, OpScope scope) {
  flush_.Request(id, label, scope);
  if (scope_depth_ > 0) return;  // the closing scope emits the window
  // No open window (shared flush without batching, or an op started
  // outside any scope): the one-item round leaves immediately.
  SBFT_ASSERT(endpoint_ != nullptr);
  flush_.CloseWindow(*endpoint_, servers_);
}

void MuxClient::StartWrite(RegisterId id, Value value,
                           WriteCallback callback) {
  if (!batching()) {
    GetOrCreate(id).StartWrite(std::move(value), std::move(callback));
    return;
  }
  PendingOp op;
  op.id = id;
  op.is_write = true;
  op.value = std::move(value);
  op.write_cb = std::move(callback);
  Enqueue(std::move(op));
}

void MuxClient::StartRead(RegisterId id, ReadCallback callback) {
  if (!batching()) {
    GetOrCreate(id).StartRead(std::move(callback));
    return;
  }
  PendingOp op;
  op.id = id;
  op.read_cb = std::move(callback);
  Enqueue(std::move(op));
}

void MuxClient::Enqueue(PendingOp op) {
  pending_.push_back(std::move(op));
  if (scope_depth_ > 0) return;  // the closing scope drains and flushes
  if (pending_.size() >= batch_.max_ops || batch_.max_delay == 0) {
    // Zero delay means "never trade latency for depth": an op arriving
    // outside any scope starts its round now. Ops arriving in the same
    // mailbox drain still coalesce — the runtime's OnBatchStart/End
    // bracket keeps a scope open across the whole drain, so they take
    // the early return above.
    FlushRound();
  } else {
    ArmTimer();
  }
}

void MuxClient::FlushRound() {
  if (endpoint_ == nullptr) return;  // batch boundary before OnStart
  // Start queued ops inside a reopened scope so their first-phase
  // broadcasts land in the frames flushed below.
  ++scope_depth_;
  DrainPending();
  --scope_depth_;
  // Close the shared-flush window first: every register that started an
  // op this round contributed one FlushItem, and the single NodeFlush
  // probe precedes the batch frames on each channel. Ordering between
  // the two is immaterial for the FIFO argument — the stale traffic a
  // flush must drain was sent in strictly earlier rounds — but a fixed
  // order keeps batched runs deterministic.
  flush_.CloseWindow(*endpoint_, servers_);
  collector_.Flush(*endpoint_);
}

void MuxClient::DrainPending() {
  draining_.clear();
  draining_.swap(pending_);
  for (PendingOp& op : draining_) {
    RegisterClient& client = GetOrCreate(op.id);
    if (!client.idle()) {
      // Same-register ops stay sequential: back in the queue for a
      // later round.
      pending_.push_back(std::move(op));
      continue;
    }
    if (op.is_write) {
      client.StartWrite(std::move(op.value), std::move(op.write_cb));
    } else {
      client.StartRead(std::move(op.read_cb));
    }
  }
  draining_.clear();
  // Requeued ops (a same-register predecessor is still in flight) wait
  // for the predecessor's replies, which arrive inside a batch scope
  // and re-run this drain at scope close. Only a positive max_delay
  // additionally bounds their wait with a timer: arming a zero-delay
  // timer here would fire at the current time and re-drain the same
  // non-idle ops forever (a busy-spin on the threaded backends, a
  // same-instant livelock in the sim).
  if (!pending_.empty() && batch_.max_delay > 0) ArmTimer();
}

void MuxClient::ArmTimer() {
  if (timer_armed_) return;
  SBFT_ASSERT(endpoint_ != nullptr);
  endpoint_->SetTimer(batch_.max_delay, kMuxBatchTimerId);
  timer_armed_ = true;
}

bool MuxClient::idle(RegisterId id) {
  for (const PendingOp& op : pending_) {
    if (op.id == id) return false;
  }
  auto it = clients_.find(id);
  return it == clients_.end() || it->second.client->idle();
}

void MuxClient::CorruptState(Rng& rng) {
  // One base draw, then a per-register fork keyed by the register id
  // (same scheme as MuxServer::CorruptState): the garbage each inner
  // client receives is independent of the hash table's iteration order.
  const std::uint64_t base = rng();
  for (auto& [id, entry] : clients_) {
    Rng fork(base ^ (id * 0x9E3779B97F4A7C15ull));
    entry.client->CorruptState(fork);
  }
  // The ops whose flush requests were waiting in the open window were
  // just destroyed (inner CorruptState fails in-flight ops); drop the
  // window rather than probe for dead labels.
  flush_.Clear();
}

}  // namespace sbft
