#include "net/datalink.hpp"

namespace sbft {

Bytes DlFrame::Encode() const {
  BufWriter w;
  w.Put<Kind>(kind);
  w.Put<std::uint32_t>(label);
  w.PutBytes(payload);
  return w.Take();
}

std::optional<DlFrame> DlFrame::Decode(BytesView raw) {
  BufReader r(raw);
  DlFrame frame;
  frame.kind = r.Get<Kind>();
  frame.label = r.Get<std::uint32_t>();
  frame.payload = r.GetBytes();
  if (!r.AtEndOk()) return std::nullopt;
  if (frame.kind != Kind::kData && frame.kind != Kind::kAck) {
    return std::nullopt;
  }
  return frame;
}

std::optional<Bytes> DataLinkSender::Tick() {
  if (!active_) {
    if (pending_.empty()) return std::nullopt;
    current_ = std::move(pending_.front());
    pending_.pop_front();
    active_ = true;
    label_ = (label_ + 1) % LabelSpace();
    acks_ = 0;
  }
  DlFrame frame;
  frame.kind = DlFrame::Kind::kData;
  frame.label = label_;
  frame.payload = current_;
  return frame.Encode();
}

void DataLinkSender::OnFrame(BytesView raw) {
  const auto frame = DlFrame::Decode(raw);
  if (!frame || frame->kind != DlFrame::Kind::kAck) return;
  if (!active_ || frame->label != label_) return;
  // At most `capacity_` stale ACKs can carry the current label, so
  // capacity_+1 receipts prove the receiver delivered the current
  // message (it only acknowledges after delivering).
  if (++acks_ >= capacity_ + 1) {
    active_ = false;
    current_.clear();
    ++completed_;
  }
}

void DataLinkSender::CorruptState(Rng& rng) {
  label_ = static_cast<std::uint32_t>(rng.NextBelow(LabelSpace()));
  acks_ = rng.NextBelow(capacity_ + 1);
  active_ = rng.NextBool(0.5);
  if (active_) current_ = RandomBytes(rng, 1 + rng.NextBelow(16));
}

std::optional<Bytes> DataLinkReceiver::OnFrame(BytesView raw) {
  const auto frame = DlFrame::Decode(raw);
  if (!frame || frame->kind != DlFrame::Kind::kData) return std::nullopt;

  if (has_delivered_ && frame->label == delivered_label_ &&
      frame->payload == delivered_payload_) {
    // Already delivered: acknowledge so the sender can finish.
    DlFrame ack;
    ack.kind = DlFrame::Kind::kAck;
    ack.label = frame->label;
    return ack.Encode();
  }

  if (!counting_ || frame->label != count_label_ ||
      frame->payload != count_payload_) {
    // New candidate pair; restart the count. Stale frames can reset the
    // count only finitely often (at most `capacity_` of them exist), so
    // the genuine retransmission stream always wins eventually.
    counting_ = true;
    count_label_ = frame->label;
    count_payload_ = frame->payload;
    count_ = 0;
  }
  if (++count_ >= capacity_ + 1) {
    counting_ = false;
    has_delivered_ = true;
    delivered_label_ = count_label_;
    delivered_payload_ = count_payload_;
    deliver_(count_payload_);
    DlFrame ack;
    ack.kind = DlFrame::Kind::kAck;
    ack.label = count_label_;
    return ack.Encode();
  }
  return std::nullopt;
}

void DataLinkReceiver::CorruptState(Rng& rng) {
  counting_ = rng.NextBool(0.5);
  count_label_ = static_cast<std::uint32_t>(rng());
  count_payload_ = RandomBytes(rng, 1 + rng.NextBelow(8));
  count_ = rng.NextBelow(capacity_ + 2);
  has_delivered_ = rng.NextBool(0.5);
  delivered_label_ = static_cast<std::uint32_t>(rng());
  delivered_payload_ = RandomBytes(rng, 1 + rng.NextBelow(8));
}

}  // namespace sbft
