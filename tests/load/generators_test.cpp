// Workload-shape generators: determinism per seed (the acceptance
// criterion for the open-loop engine — a schedule is a replayable
// artifact), empirical distribution shapes, and the scenario compiler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "load/generators.hpp"
#include "load/scenario.hpp"

namespace sbft::load {
namespace {

TEST(PoissonProcess, DeterministicPerSeed) {
  PoissonProcess a(1000.0, Rng(42));
  PoissonProcess b(1000.0, Rng(42));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextArrivalUs(), b.NextArrivalUs()) << "diverged at " << i;
  }
  PoissonProcess c(1000.0, Rng(43));
  bool any_diff = false;
  PoissonProcess a2(1000.0, Rng(42));
  for (int i = 0; i < 100; ++i) {
    any_diff |= (a2.NextArrivalUs() != c.NextArrivalUs());
  }
  EXPECT_TRUE(any_diff);
}

TEST(PoissonProcess, ArrivalsMonotone) {
  PoissonProcess p(500.0, Rng(7));
  std::uint64_t prev = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t at = p.NextArrivalUs();
    ASSERT_GE(at, prev);
    prev = at;
  }
}

TEST(PoissonProcess, EmpiricalMeanMatchesRate) {
  // 20k exponential gaps at 1000/s: mean gap 1000us. Standard error is
  // 1000/sqrt(20000) ~ 7us; a 5% tolerance is ~7 sigma.
  const int kDraws = 20000;
  PoissonProcess p(1000.0, Rng(1));
  std::uint64_t last = 0;
  for (int i = 0; i < kDraws; ++i) last = p.NextArrivalUs();
  const double mean_gap =
      static_cast<double>(last) / static_cast<double>(kDraws);
  EXPECT_NEAR(mean_gap, 1000.0, 50.0);
}

TEST(PoissonProcess, ResetToRestartsClock) {
  PoissonProcess p(1000.0, Rng(5));
  for (int i = 0; i < 10; ++i) p.NextArrivalUs();
  p.ResetTo(500'000);
  const std::uint64_t next = p.NextArrivalUs();
  EXPECT_GE(next, 500'000u);
  // At 1000/s a gap beyond 50ms has probability e^-50.
  EXPECT_LT(next, 550'000u);
}

TEST(ZipfGenerator, DeterministicPerSeed) {
  ZipfGenerator a(64, 1.0, Rng(9));
  ZipfGenerator b(64, 1.0, Rng(9));
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(ZipfGenerator, SkewZeroIsUniform) {
  const std::size_t kN = 16;
  const int kDraws = 32000;
  ZipfGenerator z(kN, 0.0, Rng(3));
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) counts[z.Next()]++;
  // Expected 2000 per rank, sigma ~ 43; +/-15% is > 6 sigma.
  for (std::size_t k = 0; k < kN; ++k) {
    EXPECT_NEAR(counts[k], kDraws / static_cast<int>(kN),
                kDraws * 15 / (static_cast<int>(kN) * 100))
        << "rank " << k;
  }
}

TEST(ZipfGenerator, RankFrequencyShape) {
  // skew 1: P(rank k) ~ 1/(k+1), so rank 0 draws ~2x rank 1 and ~4x
  // rank 3. Check the ratios with a generous tolerance.
  const int kDraws = 200000;
  ZipfGenerator z(32, 1.0, Rng(11));
  std::vector<int> counts(32, 0);
  for (int i = 0; i < kDraws; ++i) counts[z.Next()]++;
  ASSERT_GT(counts[1], 0);
  ASSERT_GT(counts[3], 0);
  const double r01 = static_cast<double>(counts[0]) / counts[1];
  const double r03 = static_cast<double>(counts[0]) / counts[3];
  EXPECT_NEAR(r01, 2.0, 0.3);
  EXPECT_NEAR(r03, 4.0, 0.6);
  // Monotone non-increasing over the head of the distribution (with
  // sampling slack on the tail).
  for (int k = 0; k < 4; ++k) EXPECT_GE(counts[k], counts[k + 1]);
}

TEST(ProfileDuration, SumsPhases) {
  EXPECT_EQ(ProfileDurationUs({}), 0u);
  EXPECT_EQ(ProfileDurationUs({{1000, 1.0}, {2500, 2.0}}), 3500u);
}

TEST(BuildSchedule, DeterministicPerSeed) {
  // The engine's acceptance criterion: identical scenario -> identical
  // offered load, at the schedule level, independent of machine state.
  Scenario scenario = ZipfHotScenario(2000.0, 500'000, 77);
  const auto a = BuildSchedule(scenario);
  const auto b = BuildSchedule(scenario);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].at_us, b[i].at_us);
    ASSERT_EQ(a[i].key, b[i].key);
    ASSERT_EQ(a[i].is_write, b[i].is_write);
    ASSERT_EQ(a[i].seq, b[i].seq);
  }
  scenario.seed = 78;
  const auto c = BuildSchedule(scenario);
  bool any_diff = c.size() != a.size();
  for (std::size_t i = 0; !any_diff && i < std::min(a.size(), c.size()); ++i) {
    any_diff = a[i].at_us != c[i].at_us || a[i].key != c[i].key;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BuildSchedule, SortedWithUniqueWriteValues) {
  const Scenario scenario = BaselineScenario(3000.0, 400'000, 5);
  const auto schedule = BuildSchedule(scenario);
  std::uint64_t prev = 0;
  std::set<std::pair<std::uint32_t, std::uint32_t>> write_ids;
  for (const ScheduledOp& op : schedule) {
    ASSERT_GE(op.at_us, prev);
    ASSERT_LT(op.at_us, scenario.duration_us);
    ASSERT_LT(op.key, scenario.n_keys);
    prev = op.at_us;
    if (op.is_write) {
      ASSERT_TRUE(write_ids.insert({op.key, op.seq}).second)
          << "duplicate write value " << op.key << "#" << op.seq;
    }
  }
}

TEST(BuildSchedule, RespectsReadFraction) {
  Scenario scenario = ReadHeavyScenario(4000.0, 1'000'000, 6);
  const auto schedule = BuildSchedule(scenario);
  std::size_t reads = 0;
  for (const ScheduledOp& op : schedule) reads += op.is_write ? 0 : 1;
  const double frac =
      static_cast<double>(reads) / static_cast<double>(schedule.size());
  EXPECT_NEAR(frac, 0.9, 0.03);
}

TEST(BuildSchedule, FlashCrowdDensity) {
  // Middle fifth runs at 4x the base rate: its arrival density must be
  // roughly 4x the surrounding phases'.
  const Scenario scenario = FlashCrowdScenario(1000.0, 1'000'000, 8);
  const auto schedule = BuildSchedule(scenario);
  std::size_t base_ops = 0, spike_ops = 0;
  for (const ScheduledOp& op : schedule) {
    if (op.at_us >= 400'000 && op.at_us < 600'000) {
      ++spike_ops;
    } else {
      ++base_ops;
    }
  }
  // base: 800ms at 1000/s = ~800 ops; spike: 200ms at 4000/s = ~800.
  const double density_ratio =
      (static_cast<double>(spike_ops) / 200'000.0) /
      (static_cast<double>(base_ops) / 800'000.0);
  EXPECT_NEAR(density_ratio, 4.0, 0.8);
}

TEST(BuildSchedule, MixChangeKeepsArrivalTimes) {
  // Child streams are independent: changing the read/write mix must
  // not reshuffle WHEN operations happen.
  Scenario a = BaselineScenario(2000.0, 300'000, 12);
  Scenario b = a;
  b.read_fraction = 0.9;
  const auto sa = BuildSchedule(a);
  const auto sb = BuildSchedule(b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i].at_us, sb[i].at_us);
    ASSERT_EQ(sa[i].key, sb[i].key);
  }
}

TEST(ValueForOp, EncodesKeyAndSeq) {
  ScheduledOp op;
  op.key = 7;
  op.seq = 42;
  const Value value = ValueFor(op);
  const std::string text(value.begin(), value.end());
  EXPECT_EQ(text, "k7#42");
}

}  // namespace
}  // namespace sbft::load
