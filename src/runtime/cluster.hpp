// Threaded runtime: the same Automaton objects that run in the
// deterministic simulator run here on real OS threads, communicating
// through mailboxes (in-process mode) or TCP sockets on loopback.
//
// Design: one thread per node consumes its mailbox and drives the
// automaton — handlers therefore stay single-threaded exactly as in the
// simulator (no locks inside protocol code). Client operations are
// injected as tasks onto the owning node's thread via RunOnNode, and
// synchronous wrappers (BlockingWrite/BlockingRead in node_client.hpp)
// wait on a future.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/link_shaper.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/tcp.hpp"
#include "sim/world.hpp"

namespace sbft {

class ThreadCluster {
 public:
  struct Options {
    /// Use TCP sockets on 127.0.0.1 instead of in-process mailboxes for
    /// the transport (mailboxes still deliver to the node thread).
    bool use_tcp = false;
    /// Epoll reactor threads for the TCP transport (ignored otherwise).
    std::size_t reactor_threads = 1;
    std::uint64_t seed = 1;
    /// Slow/lossy link emulation applied to every inter-node frame at
    /// delivery time (both transports); disabled when all-zero.
    LinkShaping shaping;
  };

  explicit ThreadCluster(Options options);
  ThreadCluster() : ThreadCluster(Options{}) {}
  ~ThreadCluster();

  ThreadCluster(const ThreadCluster&) = delete;
  ThreadCluster& operator=(const ThreadCluster&) = delete;

  /// Register a node before Start().
  NodeId AddNode(std::unique_ptr<Automaton> automaton);

  /// Spawn node threads (and TCP listeners when enabled) and run
  /// OnStart hooks on each node's own thread.
  void Start();

  /// Close mailboxes, join node threads, then tear down sockets — in
  /// that order, so the transport outlives every thread that can still
  /// call Send/Flush on it. Idempotent.
  void Stop();

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Automaton& node(NodeId id) { return *nodes_.at(id); }

  /// Run `fn` on the node's thread (with exclusive access to its
  /// automaton) and wait for it to finish.
  void RunOnNode(NodeId id, std::function<void()> fn);

  /// Fire-and-forget variant (no join); used by completion callbacks.
  void PostToNode(NodeId id, std::function<void()> fn);

  /// True when the calling thread IS node `id`'s thread (i.e. we are
  /// inside its NodeLoop — a handler, task, or completion callback).
  /// Callers may then touch the node's automaton directly instead of
  /// posting: it is the same exclusive context a mailbox task would
  /// run in, minus the allocation and mutex round-trip.
  [[nodiscard]] bool OnNodeThread(NodeId id) const;

  /// Total frames delivered across all nodes (throughput accounting).
  [[nodiscard]] std::uint64_t frames_delivered() const {
    return frames_delivered_.load(std::memory_order_relaxed);
  }

  /// Thread-CPU nanoseconds spent inside automaton dispatch — from
  /// frame decode through handlers to reply encode, summed over all
  /// node threads. Mailbox waits and socket syscalls sit outside the
  /// measured bracket, so this isolates protocol CPU from transport
  /// and scheduling cost (the numerator of bench_throughput's
  /// protocol_cpu_us_per_op metric).
  [[nodiscard]] std::uint64_t protocol_cpu_ns() const {
    return protocol_cpu_ns_.load(std::memory_order_relaxed);
  }

 private:
  class Endpoint;

  void NodeLoop(NodeId id);
  void Deliver(NodeId src, NodeId dst, Bytes frame);
  void DeliverBroadcast(NodeId src, std::span<const NodeId> dsts, Bytes frame);

  /// Push one delivered frame to `dst`'s mailbox (the tail of every
  /// delivery path; also the LinkShaper's forward target).
  void PushFrame(NodeId src, NodeId dst, Frame frame);
  /// True when the shaper consumed the frame (it will be pushed later,
  /// or was dropped by a lossy link).
  bool Shape(NodeId src, NodeId dst, Frame& frame);

  Options options_;
  std::vector<std::unique_ptr<Automaton>> nodes_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::thread> threads_;
  std::unique_ptr<TcpBus> tcp_;
  std::unique_ptr<LinkShaper> shaper_;
  std::atomic<std::uint64_t> frames_delivered_{0};
  std::atomic<std::uint64_t> protocol_cpu_ns_{0};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace sbft
