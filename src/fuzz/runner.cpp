#include "fuzz/runner.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/deployment.hpp"
#include "net/message.hpp"
#include "spec/workload.hpp"

namespace sbft::fuzz {
namespace {

// Seed separation: each randomness consumer forks off the scenario seed
// through a distinct salt so shrinking one dimension (e.g. dropping a
// Byzantine client) does not perturb the others more than necessary.
constexpr std::uint64_t kWorkloadSeedSalt = 0x3C6EF372FE94F82Bull;

std::string DescribeFrame(BytesView frame) {
  auto decoded = DecodeMessage(frame);
  return decoded.ok() ? MessageTypeName(decoded.value()) : "garbage";
}

void ApplyFault(World& world, Deployment& deployment,
                const FaultInjection& fault) {
  switch (fault.kind) {
    case FaultKind::kCorruptServer:
      world.CorruptNode(deployment.server_node(fault.a));
      break;
    case FaultKind::kCorruptClient:
      world.CorruptNode(deployment.client_node(fault.a));
      break;
    case FaultKind::kGarbageFrames:
      world.InjectGarbageFrames(deployment.client_node(fault.a),
                                deployment.server_node(fault.b),
                                fault.count);
      world.InjectGarbageFrames(deployment.server_node(fault.b),
                                deployment.client_node(fault.a),
                                fault.count);
      break;
    case FaultKind::kScrambleChannel:
      world.ScrambleChannel(deployment.client_node(fault.a),
                            deployment.server_node(fault.b));
      world.ScrambleChannel(deployment.server_node(fault.b),
                            deployment.client_node(fault.a));
      break;
  }
}

}  // namespace

RunOutcome RunScenario(const Scenario& input, const RunOptions& options) {
  Scenario scenario = input;
  scenario.Normalize();

  Deployment::Options deploy;
  deploy.config = scenario.Config();
  deploy.seed = scenario.seed;
  deploy.n_clients = scenario.n_clients;
  for (const auto& spec : scenario.byz_servers) {
    deploy.byzantine[spec.server] = spec.strategy;
  }
  auto delay = std::make_unique<ChannelOverrideDelay>(
      std::make_unique<UniformDelay>(scenario.delay_lo, scenario.delay_hi));
  ChannelOverrideDelay* overrides = delay.get();
  deploy.delay = std::move(delay);

  Deployment deployment(std::move(deploy));
  World& world = deployment.world();
  world.trace().Enable(options.record_trace);

  for (const auto& slow : scenario.slowdowns) {
    const NodeId client = deployment.client_node(slow.client);
    const NodeId server = deployment.server_node(slow.server);
    if (slow.client_to_server) {
      overrides->SetOverride(client, server, slow.delay);
    } else {
      overrides->SetOverride(server, client, slow.delay);
    }
  }

  // Byzantine clients are extra automata outside the deployment; they
  // attack the same server set the honest clients use.
  std::uint64_t byz_client_salt = scenario.seed ^ 0xB12A97CE5EEDull;
  for (const auto& spec : scenario.byz_clients) {
    world.AddNode(std::make_unique<ByzantineClient>(
        spec.strategy, deployment.server_nodes(), deployment.config().k,
        SplitMix64(byz_client_salt), spec.rounds));
  }

  VirtualTime last_fault_time = 0;
  for (const auto& fault : scenario.faults) {
    last_fault_time = std::max(last_fault_time, fault.at);
    if (fault.at == 0) {
      ApplyFault(world, deployment, fault);
    } else {
      const FaultInjection scheduled = fault;
      world.ScheduleCall(fault.at, [&world, &deployment, scheduled] {
        ApplyFault(world, deployment, scheduled);
      });
    }
  }

  WorkloadOptions workload;
  workload.ops_per_client = scenario.ops_per_client;
  workload.write_fraction = scenario.write_percent / 100.0;
  workload.max_think_time = scenario.max_think_time;
  std::uint64_t workload_salt = scenario.seed + kWorkloadSeedSalt;
  workload.seed = SplitMix64(workload_salt);
  workload.max_events = scenario.max_events;

  WorkloadResult result = RunConcurrentWorkload(deployment, workload);

  RunOutcome outcome;
  outcome.all_completed = result.all_completed;
  outcome.history = std::move(result.history);

  // Re-anchor the Definition 1 suffix past the last injected fault: the
  // paper's guarantee starts at the first complete write issued after
  // transient faults cease.
  outcome.stabilized_from = kTimeForever;
  for (const OpRecord& op : outcome.history.ops()) {
    if (op.kind == OpRecord::Kind::kWrite &&
        op.result == OpRecord::Result::kOk &&
        op.invoked_at > last_fault_time) {
      outcome.stabilized_from =
          std::min(outcome.stabilized_from, op.returned_at);
    }
  }

  for (const OpRecord& op : outcome.history.ops()) {
    if (op.result == OpRecord::Result::kFailed) outcome.ops_failed++;
    if (op.kind != OpRecord::Kind::kRead) continue;
    if (op.result == OpRecord::Result::kAborted) outcome.reads_aborted++;
    if (op.result == OpRecord::Result::kOk &&
        op.invoked_at >= outcome.stabilized_from) {
      outcome.checked_reads++;
    }
  }

  CheckOptions check;
  check.stabilized_from = outcome.stabilized_from;
  check.max_violations = options.max_violations;
  // Without server corruption the pre-write register content really is
  // the pristine initial value, which reads overlapping the stabilizing
  // write may legally return (Validity's second disjunct). Corruption
  // replaces it with garbage, so nothing is grandfathered then — any
  // unwritten value returned post-stabilization is a violation.
  const bool servers_corrupted =
      std::any_of(scenario.faults.begin(), scenario.faults.end(),
                  [](const FaultInjection& fault) {
                    return fault.kind == FaultKind::kCorruptServer;
                  });
  if (!servers_corrupted) check.grandfathered_values = {Value{}};
  outcome.report = CheckRegular(outcome.history, check);

  if (options.record_trace) {
    outcome.trace = FormatTrace(world.trace().events(), DescribeFrame);
  }
  return outcome;
}

}  // namespace sbft::fuzz
