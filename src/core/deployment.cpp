#include "core/deployment.hpp"

namespace sbft {

Deployment::Deployment(Options options)
    : config_(options.config),
      world_(World::Options{options.seed, std::move(options.delay)}),
      byzantine_(std::move(options.byzantine)) {
  config_.Validate();
  SBFT_ASSERT(byzantine_.size() <= config_.f);

  for (std::size_t i = 0; i < config_.n; ++i) {
    std::unique_ptr<RegisterServer> server;
    if (auto it = byzantine_.find(i); it != byzantine_.end()) {
      server = MakeByzantineServer(it->second, config_, i,
                                   options.seed * 1000 + i);
    } else {
      server = std::make_unique<RegisterServer>(config_, i);
    }
    servers_.push_back(server.get());
    server_ids_.push_back(world_.AddNode(std::move(server)));
  }
  for (std::size_t i = 0; i < options.n_clients; ++i) {
    auto client = std::make_unique<RegisterClient>(
        config_, server_ids_, static_cast<ClientId>(config_.n + i));
    clients_.push_back(client.get());
    client_ids_.push_back(world_.AddNode(std::move(client)));
  }
  // Ensure OnStart runs (endpoints get cached) before ops are driven.
  world_.RunUntil([] { return true; }, 0);
}

Deployment::Driven<WriteOutcome> Deployment::Write(std::size_t client,
                                                   Value value,
                                                   std::uint64_t max_events) {
  Driven<WriteOutcome> driven;
  driven.invoked_at = world_.now();
  const std::uint64_t frames_before = world_.stats().frames_sent;
  bool done = false;
  clients_[client]->StartWrite(std::move(value),
                               [&](const WriteOutcome& outcome) {
                                 driven.outcome = outcome;
                                 driven.returned_at = world_.now();
                                 done = true;
                               });
  driven.completed = world_.RunUntil([&] { return done; }, max_events);
  driven.frames_sent = world_.stats().frames_sent - frames_before;
  return driven;
}

Deployment::Driven<ReadOutcome> Deployment::Read(std::size_t client,
                                                 std::uint64_t max_events) {
  Driven<ReadOutcome> driven;
  driven.invoked_at = world_.now();
  const std::uint64_t frames_before = world_.stats().frames_sent;
  bool done = false;
  clients_[client]->StartRead([&](const ReadOutcome& outcome) {
    driven.outcome = outcome;
    driven.returned_at = world_.now();
    done = true;
  });
  driven.completed = world_.RunUntil([&] { return done; }, max_events);
  driven.frames_sent = world_.stats().frames_sent - frames_before;
  return driven;
}

void Deployment::CorruptAllCorrectServers() {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (!is_byzantine(i)) world_.CorruptNode(server_ids_[i]);
  }
}

void Deployment::CorruptServer(std::size_t i) {
  world_.CorruptNode(server_ids_[i]);
}

void Deployment::CorruptClient(std::size_t i) {
  world_.CorruptNode(client_ids_[i]);
}

void Deployment::CorruptAllChannels(std::size_t frames_per_channel) {
  for (NodeId server : server_ids_) {
    for (NodeId client : client_ids_) {
      world_.InjectGarbageFrames(server, client, frames_per_channel);
      world_.InjectGarbageFrames(client, server, frames_per_channel);
    }
  }
}

}  // namespace sbft
