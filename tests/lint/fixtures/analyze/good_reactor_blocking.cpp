// Fixture: reactor handler that never blocks. The registered lambda
// drains under a plain mutex (bounded critical section) and defers
// slow work instead of waiting for it; the only wait primitive in the
// file is the bounded WaitFor, and it lives on a non-reactor thread.
// Expected: clean.

namespace sbft {

class Mutex {
 public:
  void lock();
  void unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mutex);
  ~MutexLock();
};

class CondVar {
 public:
  template <class Duration>
  void WaitFor(Mutex& mutex, Duration timeout);
  void NotifyOne();
};

class Reactor {
 public:
  template <class Handler>
  void Add(int fd, Handler handler);
};

class Server {
 public:
  void Start(int fd) {
    reactor_.Add(fd, [this] { OnReadable(); });
  }

  // Runs on the pacing thread, not a reactor thread: the bounded wait
  // here is fine and must not be attributed to the handler above.
  void PacerTick(int budget_ms) {
    MutexLock guard(mutex_);
    ready_.WaitFor(mutex_, budget_ms);
  }

 private:
  void OnReadable() {
    MutexLock guard(mutex_);
    pending_ += 1;
    ready_.NotifyOne();
  }

  Reactor reactor_;
  Mutex mutex_;
  CondVar ready_;
  long pending_ = 0;
};

}  // namespace sbft
