#include "spec/workload.hpp"

#include <algorithm>
#include <memory>
#include <string>

namespace sbft {
namespace {

Value TaggedValue(std::size_t client, std::uint32_t seq) {
  const std::string text =
      "c" + std::to_string(client) + "#" + std::to_string(seq);
  return Value(text.begin(), text.end());
}

OpRecord::Result FromStatus(OpStatus status) {
  switch (status) {
    case OpStatus::kOk:
      return OpRecord::Result::kOk;
    case OpStatus::kAborted:
      return OpRecord::Result::kAborted;
    case OpStatus::kFailed:
      return OpRecord::Result::kFailed;
  }
  return OpRecord::Result::kFailed;
}

// All driver state lives on the heap and is captured by shared_ptr in
// every scheduled closure: if the event cap interrupts the workload,
// closures left in the world's queue must stay safe to run later.
struct Driver : std::enable_shared_from_this<Driver> {
  Driver(Deployment& dep, const WorkloadOptions& opts)
      : deployment(dep),
        options(opts),
        rng(opts.seed),
        remaining(dep.n_clients(), opts.ops_per_client),
        seq(dep.n_clients(), 0) {}

  Deployment& deployment;
  WorkloadOptions options;
  Rng rng;
  std::vector<std::uint32_t> remaining;
  std::vector<std::uint32_t> seq;
  std::size_t outstanding = 0;
  WorkloadResult result;

  [[nodiscard]] bool AllDone() const {
    return outstanding == 0 &&
           std::all_of(remaining.begin(), remaining.end(),
                       [](std::uint32_t r) { return r == 0; });
  }

  void ScheduleNext(std::size_t client) {
    auto self = shared_from_this();
    deployment.world().ScheduleCall(
        1 + rng.NextBelow(options.max_think_time),
        [self, client] { self->LaunchNext(client); });
  }

  void LaunchNext(std::size_t client) {
    if (remaining[client] == 0) return;
    if (!deployment.client(client).idle()) return;  // destroyed op pending
    remaining[client]--;
    outstanding++;
    const VirtualTime invoked_at = deployment.world().now();
    auto self = shared_from_this();

    if (rng.NextBool(options.write_fraction)) {
      const Value value = TaggedValue(client, seq[client]++);
      deployment.client(client).StartWrite(
          value, [self, client, value, invoked_at](const WriteOutcome& out) {
            OpRecord record;
            record.kind = OpRecord::Kind::kWrite;
            record.result = FromStatus(out.status);
            record.client = static_cast<std::uint32_t>(client);
            record.invoked_at = invoked_at;
            record.returned_at = self->deployment.world().now();
            record.value = value;
            self->result.history.Add(std::move(record));
            if (out.status == OpStatus::kOk) {
              self->result.first_write_done = std::min(
                  self->result.first_write_done,
                  self->deployment.world().now());
            }
            self->outstanding--;
            self->ScheduleNext(client);
          });
    } else {
      deployment.client(client).StartRead(
          [self, client, invoked_at](const ReadOutcome& out) {
            OpRecord record;
            record.kind = OpRecord::Kind::kRead;
            record.result = FromStatus(out.status);
            record.client = static_cast<std::uint32_t>(client);
            record.invoked_at = invoked_at;
            record.returned_at = self->deployment.world().now();
            record.value = out.value;
            self->result.history.Add(std::move(record));
            self->outstanding--;
            self->ScheduleNext(client);
          });
    }
  }
};

}  // namespace

WorkloadResult RunConcurrentWorkload(Deployment& deployment,
                                     const WorkloadOptions& options) {
  auto driver = std::make_shared<Driver>(deployment, options);
  for (std::size_t client = 0; client < deployment.n_clients(); ++client) {
    driver->ScheduleNext(client);
  }
  driver->result.all_completed = deployment.world().RunUntil(
      [&] { return driver->AllDone(); }, options.max_events);
  return driver->result;
}

}  // namespace sbft
