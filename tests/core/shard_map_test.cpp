// Consistent-hash shard map: routing must be deterministic across
// platforms and runs (the ring is pure FNV-1a arithmetic), stable
// under growth (adding a group moves only ~1/(G+1) of the key space,
// and every moved key moves TO the new group), and balanced (virtual
// nodes keep per-group key shares close to even).
#include "core/shard_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace sbft {
namespace {

constexpr std::size_t kKeys = 100'000;

TEST(ShardMap, InitialShape) {
  const ShardMap map = ShardMap::Initial(4);
  EXPECT_FALSE(map.empty());
  EXPECT_EQ(map.epoch(), 0u);
  EXPECT_EQ(map.n_groups(), 4u);
  EXPECT_EQ(map.vnodes_per_group(), ShardMap::kDefaultVnodesPerGroup);
  EXPECT_TRUE(ShardMap().empty());
}

TEST(ShardMap, RoutingIsDeterministicAcrossInstances) {
  const ShardMap a = ShardMap::Initial(4);
  const ShardMap b = ShardMap::Initial(4);
  for (std::uint64_t key = 0; key < 10'000; ++key) {
    ASSERT_EQ(a.GroupOf(key), b.GroupOf(key)) << key;
  }
}

// Golden routing values: the cross-PLATFORM determinism pin. The ring
// is pure FNV-1a/HashCombine arithmetic (no std::hash, no pointers),
// so these exact assignments must reproduce on any toolchain. If this
// test ever fails after a hash change, every deployed router would
// disagree with every old one — treat the constants as frozen.
TEST(ShardMap, GoldenRoutingValues) {
  const ShardMap g4 = ShardMap::Initial(4);
  const GroupId expected_g4[16] = {3, 2, 1, 2, 1, 1, 3, 3,
                                   1, 1, 3, 1, 2, 0, 0, 0};
  for (std::uint64_t key = 0; key < 16; ++key) {
    EXPECT_EQ(g4.GroupOf(key), expected_g4[key]) << key;
  }
  const ShardMap g2 = ShardMap::Initial(2);
  const GroupId expected_g2[16] = {0, 0, 1, 1, 1, 1, 0, 0,
                                   1, 1, 1, 1, 0, 0, 0, 0};
  for (std::uint64_t key = 0; key < 16; ++key) {
    EXPECT_EQ(g2.GroupOf(key), expected_g2[key]) << key;
  }
}

TEST(ShardMap, GroupAddMovesOnlyToTheNewGroup) {
  const ShardMap before = ShardMap::Initial(4);
  const ShardMap after = before.WithGroupAdded();
  EXPECT_EQ(after.epoch(), 1u);
  EXPECT_EQ(after.n_groups(), 5u);

  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const GroupId old_group = before.GroupOf(key);
    const GroupId new_group = after.GroupOf(key);
    if (old_group != new_group) {
      // Stability: a key never moves BETWEEN old groups on growth —
      // the only vnodes inserted belong to the new group.
      EXPECT_EQ(new_group, 4u) << key;
      ++moved;
    }
  }
  // Expected movement is 1/(G+1) = 20%. The ring is finite, so allow
  // a generous band; the disaster this guards against is naive
  // modulo-hashing, which moves ~80%.
  const double frac = static_cast<double>(moved) / kKeys;
  EXPECT_GT(frac, 0.10) << "growth moved implausibly few keys";
  EXPECT_LT(frac, 0.35) << "growth moved far more than 1/(G+1)";
}

TEST(ShardMap, RepeatedGrowthKeepsEpochAndStability) {
  ShardMap map = ShardMap::Initial(1);
  for (std::uint64_t e = 1; e <= 4; ++e) {
    const ShardMap next = map.WithGroupAdded();
    EXPECT_EQ(next.epoch(), e);
    EXPECT_EQ(next.n_groups(), e + 1);
    for (std::uint64_t key = 0; key < 10'000; ++key) {
      const GroupId old_group = map.GroupOf(key);
      const GroupId new_group = next.GroupOf(key);
      EXPECT_TRUE(new_group == old_group ||
                  new_group == static_cast<GroupId>(e))
          << "key " << key << " moved between old groups at epoch " << e;
    }
    map = next;
  }
}

TEST(ShardMap, VirtualNodesBalanceTheRing) {
  const ShardMap map = ShardMap::Initial(4);
  std::vector<std::size_t> share(4, 0);
  for (std::uint64_t key = 0; key < kKeys; ++key) ++share[map.GroupOf(key)];
  const double mean = static_cast<double>(kKeys) / 4.0;
  for (std::size_t g = 0; g < 4; ++g) {
    const double ratio = static_cast<double>(share[g]) / mean;
    // 64 vnodes/group keeps shares within ~±40% of even; a single
    // vnode per group can skew 3x+ (which this would catch).
    EXPECT_GT(ratio, 0.6) << "group " << g << " starved";
    EXPECT_LT(ratio, 1.4) << "group " << g << " overloaded";
  }
}

}  // namespace
}  // namespace sbft
