// ProtocolConfig: derived quantities and validation.
#include "core/config.hpp"

#include <gtest/gtest.h>

namespace sbft {
namespace {

TEST(ProtocolConfig, ForServersPicksMaxToleratedF) {
  EXPECT_EQ(ProtocolConfig::ForServers(6).f, 1u);
  EXPECT_EQ(ProtocolConfig::ForServers(10).f, 1u);  // 10 <= 5*2
  EXPECT_EQ(ProtocolConfig::ForServers(11).f, 2u);
  EXPECT_EQ(ProtocolConfig::ForServers(16).f, 3u);
  EXPECT_EQ(ProtocolConfig::ForServers(31).f, 6u);
  // Below 6 servers no Byzantine server is tolerable.
  EXPECT_EQ(ProtocolConfig::ForServers(5).f, 0u);
}

TEST(ProtocolConfig, QuorumAndWitnessMath) {
  auto config = ProtocolConfig::ForServers(11);
  EXPECT_EQ(config.Quorum(), 9u);            // n - f
  EXPECT_EQ(config.WitnessThreshold(), 5u);  // 2f + 1
  // The tightness identity behind Lemma 7's intersection argument:
  // (n-2f) + (n-2f) - (n-f) == 2f+1 exactly when n == 5f+1.
  EXPECT_EQ(2 * (config.n - 2 * config.f) - (config.n - config.f),
            config.WitnessThreshold());
}

TEST(ProtocolConfig, ValidateRejectsBadBounds) {
  ProtocolConfig config = ProtocolConfig::ForServers(6);
  config.f = 2;  // n = 6 <= 5*2
  EXPECT_THROW(config.Validate(), InvariantViolation);
  config.allow_unsafe = true;
  EXPECT_NO_THROW(config.Validate());

  ProtocolConfig small_k = ProtocolConfig::ForServers(6);
  small_k.k = 3;  // k < n
  EXPECT_THROW(small_k.Validate(), InvariantViolation);

  ProtocolConfig tiny_pool = ProtocolConfig::ForServers(6);
  tiny_pool.read_label_count = 1;
  EXPECT_THROW(tiny_pool.Validate(), InvariantViolation);

  ProtocolConfig no_window = ProtocolConfig::ForServers(6);
  no_window.history_window = 0;
  EXPECT_THROW(no_window.Validate(), InvariantViolation);
}

TEST(ProtocolConfig, HistoryWindowDefaultsToN) {
  EXPECT_EQ(ProtocolConfig::ForServers(6).history_window, 6u);
  EXPECT_EQ(ProtocolConfig::ForServers(21).history_window, 21u);
}

TEST(ProtocolConfig, PaperBoundIsTightInValidate) {
  for (std::uint32_t f = 1; f <= 6; ++f) {
    ProtocolConfig config;
    config.n = 5 * f + 1;
    config.f = f;
    config.k = config.n;
    EXPECT_NO_THROW(config.Validate()) << "n=5f+1 must validate, f=" << f;
    config.n = 5 * f;
    config.k = config.n < 2 ? 2 : config.n;
    EXPECT_THROW(config.Validate(), InvariantViolation)
        << "n=5f must be rejected, f=" << f;
  }
}

}  // namespace
}  // namespace sbft
