#!/usr/bin/env python3
"""Thread-safety analysis gate, run as a ctest (label: lint) when a
clang++ is on PATH (CMake skips registering it otherwise — gcc has no
thread-safety analysis).

Two directions:
  * positive — every runtime/net translation unit must pass
    `clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety-analysis`
    (the annotations in src/runtime are consistent);
  * negative — tests/lint/mislocked_mailbox.cpp, which reads a
    GUARDED_BY queue without its mutex, must FAIL with a thread-safety
    diagnostic. This is the proof that the analysis is actually armed:
    if the annotation macros ever compile away under clang, the
    mis-locked file starts compiling and this test goes red.
"""

import argparse
import subprocess
import sys

POSITIVE_TUS = [
    "runtime/reactor.cpp",
    "runtime/tcp.cpp",
    "runtime/cluster.cpp",
    "runtime/register_cluster.cpp",
    "runtime/sharded_cluster.cpp",
    "runtime/link_shaper.cpp",
    "load/driver.cpp",
    "core/shard_map.cpp",
    "net/message.cpp",
    "net/datalink.cpp",
    "core/mux.cpp",
    "core/mux_flush.cpp",
    "common/logging.cpp",
    "sim/parallel.cpp",
]

FLAGS = [
    "-std=c++20",
    "-fsyntax-only",
    "-Wthread-safety",
    "-Werror=thread-safety-analysis",
    "-Werror=thread-safety-attributes",
    "-Werror=thread-safety-precise",
]


def run_clang(clang: str, src_dir: str, tu: str):
    return subprocess.run(
        [clang, *FLAGS, "-I", src_dir, tu],
        capture_output=True,
        text=True,
        check=False,
    )


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--clang", required=True)
    parser.add_argument("--src", required=True, help="repo src/ directory")
    parser.add_argument("--fixture-dir", required=True,
                        help="directory holding mislocked_mailbox.cpp")
    args = parser.parse_args()

    failures = 0
    for tu in POSITIVE_TUS:
        result = run_clang(args.clang, args.src, f"{args.src}/{tu}")
        if result.returncode != 0:
            print(f"POSITIVE FAIL: {tu} does not pass -Wthread-safety:")
            print(result.stderr)
            failures += 1
        else:
            print(f"ok: {tu} clean under -Wthread-safety")

    negative = f"{args.fixture_dir}/mislocked_mailbox.cpp"
    result = run_clang(args.clang, args.src, negative)
    if result.returncode == 0:
        print("NEGATIVE FAIL: mislocked_mailbox.cpp compiled — the "
              "thread-safety analysis is not armed")
        failures += 1
    elif "thread-safety" not in result.stderr and "guarded by" not in result.stderr:
        print("NEGATIVE FAIL: mislocked_mailbox.cpp failed for the wrong "
              "reason (expected a thread-safety diagnostic):")
        print(result.stderr)
        failures += 1
    else:
        print("ok: mislocked_mailbox.cpp rejected with a thread-safety "
              "diagnostic, as required")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
