#include "fuzz/scenario.hpp"

#include <algorithm>
#include <sstream>

#include "common/hash.hpp"
#include "common/serialize.hpp"

namespace sbft::fuzz {
namespace {

constexpr char kTokenPrefix[] = "SBFZ1:";
constexpr std::size_t kTokenPrefixLen = sizeof(kTokenPrefix) - 1;

// Generator/decoder bounds. These are sanity caps on the scenario
// *grammar*, not protocol limits: a token claiming f=1000 is a mangled
// paste, not an interesting execution.
constexpr std::uint32_t kMaxF = 6;
constexpr std::uint32_t kMaxExtra = 8;
constexpr std::uint32_t kMaxClients = 8;
constexpr std::uint32_t kMaxOpsPerClient = 200;
constexpr std::size_t kMaxListLength = 64;

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

ProtocolConfig Scenario::Config() const {
  ProtocolConfig config;
  config.n = n();
  config.f = f;
  config.k = config.n < 2 ? 2 : config.n;
  config.history_window = config.n;
  config.allow_unsafe = sub_resilient();
  config.Validate();
  return config;
}

void Scenario::Normalize() {
  f = std::clamp<std::uint32_t>(f, 1, kMaxF);
  extra = std::min(extra, kMaxExtra);
  n_clients = std::clamp<std::uint32_t>(n_clients, 1, kMaxClients);
  delay_lo = std::max<VirtualTime>(delay_lo, 1);
  delay_hi = std::max(delay_hi, delay_lo);
  ops_per_client = std::clamp<std::uint32_t>(ops_per_client, 1,
                                             kMaxOpsPerClient);
  write_percent = std::min<std::uint32_t>(write_percent, 100);
  max_think_time = std::clamp<VirtualTime>(max_think_time, 1, 1000);
  max_events = std::clamp<std::uint64_t>(max_events, 10'000, 50'000'000);

  // Byzantine servers: in-range, unique, at most f (Deployment enforces
  // the f bound; the map keyed by index enforces uniqueness).
  for (auto& spec : byz_servers) spec.server %= n();
  std::sort(byz_servers.begin(), byz_servers.end(),
            [](const ByzantineServerSpec& x, const ByzantineServerSpec& y) {
              return x.server < y.server;
            });
  byz_servers.erase(
      std::unique(byz_servers.begin(), byz_servers.end(),
                  [](const ByzantineServerSpec& x,
                     const ByzantineServerSpec& y) {
                    return x.server == y.server;
                  }),
      byz_servers.end());
  if (byz_servers.size() > f) byz_servers.resize(f);

  if (byz_clients.size() > kMaxListLength) byz_clients.resize(kMaxListLength);
  for (auto& spec : byz_clients) {
    spec.rounds = std::clamp<std::uint32_t>(spec.rounds, 1, 256);
  }

  if (slowdowns.size() > kMaxListLength) slowdowns.resize(kMaxListLength);
  for (auto& slow : slowdowns) {
    slow.client %= n_clients;
    slow.server %= n();
    slow.delay = std::clamp<VirtualTime>(slow.delay, 1, 10'000);
  }

  mux_window = std::min<std::uint32_t>(mux_window, 32);
  mux_flush_equivocate = mux_window > 0 && mux_flush_equivocate != 0 ? 1 : 0;

  if (faults.size() > kMaxListLength) faults.resize(kMaxListLength);
  for (auto& fault : faults) {
    fault.at = std::min<VirtualTime>(fault.at, 1'000'000);
    switch (fault.kind) {
      case FaultKind::kCorruptServer:
        fault.a %= n();
        fault.b = 0;
        fault.count = 0;
        break;
      case FaultKind::kCorruptClient:
        fault.a %= n_clients;
        fault.b = 0;
        fault.count = 0;
        break;
      case FaultKind::kGarbageFrames:
        fault.a %= n_clients;
        fault.b %= n();
        fault.count = std::clamp<std::uint32_t>(fault.count, 1, 16);
        break;
      case FaultKind::kScrambleChannel:
        fault.a %= n_clients;
        fault.b %= n();
        fault.count = 0;
        break;
    }
  }
}

std::string Scenario::Summary() const {
  std::ostringstream out;
  out << "n=" << n() << " f=" << f << (sub_resilient() ? " (=5f)" : "")
      << " clients=" << n_clients << " byz=" << byz_servers.size()
      << " byzcli=" << byz_clients.size() << " slow=" << slowdowns.size()
      << " faults=" << faults.size() << " ops=" << ops_per_client
      << " seed=" << seed;
  if (mux_window > 0) {
    out << " mux=" << mux_window << (mux_flush_equivocate != 0 ? "+eqv" : "");
  }
  return out.str();
}

std::string Scenario::Describe() const {
  std::ostringstream out;
  out << "scenario " << Summary() << "\n";
  out << "  delay: uniform[" << delay_lo << "," << delay_hi << "]\n";
  for (const auto& spec : byz_servers) {
    out << "  byzantine server s" << spec.server << ": "
        << ByzantineStrategyName(spec.strategy) << "\n";
  }
  for (const auto& spec : byz_clients) {
    out << "  byzantine client: " << ByzantineClientStrategyName(spec.strategy)
        << " (" << spec.rounds << " rounds)\n";
  }
  for (const auto& slow : slowdowns) {
    out << "  slow channel: "
        << (slow.client_to_server ? "c" : "s")
        << (slow.client_to_server ? slow.client : slow.server) << "->"
        << (slow.client_to_server ? "s" : "c")
        << (slow.client_to_server ? slow.server : slow.client)
        << " delay=" << slow.delay << "\n";
  }
  for (const auto& fault : faults) {
    out << "  fault t=" << fault.at << ": ";
    switch (fault.kind) {
      case FaultKind::kCorruptServer:
        out << "corrupt server s" << fault.a;
        break;
      case FaultKind::kCorruptClient:
        out << "corrupt client c" << fault.a;
        break;
      case FaultKind::kGarbageFrames:
        out << "garbage frames c" << fault.a << "<->s" << fault.b << " x"
            << fault.count;
        break;
      case FaultKind::kScrambleChannel:
        out << "scramble channel c" << fault.a << "<->s" << fault.b;
        break;
    }
    out << "\n";
  }
  out << "  workload: " << ops_per_client << " ops/client, "
      << write_percent << "% writes, think<=" << max_think_time
      << ", max_events=" << max_events << "\n";
  if (mux_window > 0) {
    out << "  mux: one MuxClient, batch window " << mux_window
        << ", shared FLUSH rounds"
        << (mux_flush_equivocate != 0
                ? ", Byzantine servers equivocate node-flush acks"
                : "")
        << "\n";
  }
  return out.str();
}

std::string EncodeToken(const Scenario& scenario) {
  BufWriter w;
  w.Put<std::uint64_t>(scenario.seed);
  w.Put<std::uint32_t>(scenario.f);
  w.Put<std::uint32_t>(scenario.extra);
  w.Put<std::uint32_t>(scenario.n_clients);
  w.Put<std::uint64_t>(scenario.delay_lo);
  w.Put<std::uint64_t>(scenario.delay_hi);
  w.PutVector(scenario.slowdowns,
              [](BufWriter& bw, const ChannelSlowdown& s) {
                bw.Put<std::uint32_t>(s.client);
                bw.Put<std::uint32_t>(s.server);
                bw.Put<std::uint8_t>(s.client_to_server ? 1 : 0);
                bw.Put<std::uint64_t>(s.delay);
              });
  w.PutVector(scenario.byz_servers,
              [](BufWriter& bw, const ByzantineServerSpec& s) {
                bw.Put<std::uint32_t>(s.server);
                bw.Put(s.strategy);
              });
  w.PutVector(scenario.byz_clients,
              [](BufWriter& bw, const ByzantineClientSpec& s) {
                bw.Put(s.strategy);
                bw.Put<std::uint32_t>(s.rounds);
              });
  w.PutVector(scenario.faults, [](BufWriter& bw, const FaultInjection& f) {
    bw.Put(f.kind);
    bw.Put<std::uint64_t>(f.at);
    bw.Put<std::uint32_t>(f.a);
    bw.Put<std::uint32_t>(f.b);
    bw.Put<std::uint32_t>(f.count);
  });
  w.Put<std::uint32_t>(scenario.ops_per_client);
  w.Put<std::uint32_t>(scenario.write_percent);
  w.Put<std::uint64_t>(scenario.max_think_time);
  w.Put<std::uint64_t>(scenario.max_events);
  w.Put<std::uint32_t>(scenario.mux_window);
  w.Put<std::uint32_t>(scenario.mux_flush_equivocate);

  Bytes payload = w.Take();
  const std::uint64_t checksum = Fnv1a(payload);

  std::string token = kTokenPrefix;
  static const char* hex = "0123456789abcdef";
  auto put_byte = [&](std::uint8_t b) {
    token.push_back(hex[b >> 4]);
    token.push_back(hex[b & 0xF]);
  };
  for (std::uint8_t b : payload) put_byte(b);
  for (int i = 0; i < 8; ++i) {
    put_byte(static_cast<std::uint8_t>((checksum >> (8 * i)) & 0xFF));
  }
  return token;
}

Result<Scenario> DecodeToken(const std::string& token) {
  using R = Result<Scenario>;
  if (token.rfind(kTokenPrefix, 0) != 0) {
    return R::Err("bad token prefix (expected SBFZ1:)");
  }
  const std::string_view hex_part =
      std::string_view(token).substr(kTokenPrefixLen);
  if (hex_part.size() % 2 != 0 || hex_part.size() < 16) {
    return R::Err("token truncated");
  }
  Bytes raw;
  raw.reserve(hex_part.size() / 2);
  for (std::size_t i = 0; i < hex_part.size(); i += 2) {
    const int hi = HexDigit(hex_part[i]);
    const int lo = HexDigit(hex_part[i + 1]);
    if (hi < 0 || lo < 0) return R::Err("non-hex character in token");
    raw.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  const std::size_t payload_size = raw.size() - 8;
  std::uint64_t checksum = 0;
  for (int i = 0; i < 8; ++i) {
    checksum |= static_cast<std::uint64_t>(raw[payload_size + i]) << (8 * i);
  }
  const BytesView payload(raw.data(), payload_size);
  if (Fnv1a(payload) != checksum) return R::Err("token checksum mismatch");

  BufReader r(payload);
  Scenario s;
  s.seed = r.Get<std::uint64_t>();
  s.f = r.Get<std::uint32_t>();
  s.extra = r.Get<std::uint32_t>();
  s.n_clients = r.Get<std::uint32_t>();
  s.delay_lo = r.Get<std::uint64_t>();
  s.delay_hi = r.Get<std::uint64_t>();
  s.slowdowns = r.GetVector<ChannelSlowdown>([](BufReader& br) {
    ChannelSlowdown slow;
    slow.client = br.Get<std::uint32_t>();
    slow.server = br.Get<std::uint32_t>();
    slow.client_to_server = br.Get<std::uint8_t>() != 0;
    slow.delay = br.Get<std::uint64_t>();
    return slow;
  });
  s.byz_servers = r.GetVector<ByzantineServerSpec>([](BufReader& br) {
    ByzantineServerSpec spec;
    spec.server = br.Get<std::uint32_t>();
    spec.strategy = br.Get<ByzantineStrategy>();
    return spec;
  });
  s.byz_clients = r.GetVector<ByzantineClientSpec>([](BufReader& br) {
    ByzantineClientSpec spec;
    spec.strategy = br.Get<ByzantineClientStrategy>();
    spec.rounds = br.Get<std::uint32_t>();
    return spec;
  });
  s.faults = r.GetVector<FaultInjection>([](BufReader& br) {
    FaultInjection fault;
    fault.kind = br.Get<FaultKind>();
    fault.at = br.Get<std::uint64_t>();
    fault.a = br.Get<std::uint32_t>();
    fault.b = br.Get<std::uint32_t>();
    fault.count = br.Get<std::uint32_t>();
    return fault;
  });
  s.ops_per_client = r.Get<std::uint32_t>();
  s.write_percent = r.Get<std::uint32_t>();
  s.max_think_time = r.Get<std::uint64_t>();
  s.max_events = r.Get<std::uint64_t>();
  // Mux extension: pre-extension tokens end here and decode with the
  // fields at their defaults (mux off), so old replay lines keep
  // working; new tokens always carry both fields.
  if (r.remaining() > 0) {
    s.mux_window = r.Get<std::uint32_t>();
    s.mux_flush_equivocate = r.Get<std::uint32_t>();
  }
  if (!r.AtEndOk()) return R::Err("token payload malformed");

  // Enum range validation (Get<> happily materializes any byte).
  if (s.f < 1 || s.f > kMaxF || s.extra > kMaxExtra ||
      s.n_clients < 1 || s.n_clients > kMaxClients) {
    return R::Err("token topology out of range");
  }
  for (const auto& spec : s.byz_servers) {
    if (std::string_view(ByzantineStrategyName(spec.strategy)) == "unknown") {
      return R::Err("unknown byzantine server strategy in token");
    }
  }
  for (const auto& spec : s.byz_clients) {
    if (std::string_view(ByzantineClientStrategyName(spec.strategy)) ==
        "unknown") {
      return R::Err("unknown byzantine client strategy in token");
    }
  }
  for (const auto& fault : s.faults) {
    if (static_cast<std::uint8_t>(fault.kind) >
        static_cast<std::uint8_t>(FaultKind::kScrambleChannel)) {
      return R::Err("unknown fault kind in token");
    }
  }
  s.Normalize();
  return R::Ok(std::move(s));
}

}  // namespace sbft::fuzz
