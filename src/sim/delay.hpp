// Delay policies: the adversary's lever over asynchrony.
//
// The system model is fully asynchronous, so a correct protocol must work
// for *every* delay assignment. Tests and benches exercise uniform
// random delays, fixed delays, and scripted per-channel delays (the
// Theorem 1 replay slows specific servers at specific operations).
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/types.hpp"

namespace sbft {

class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;
  /// Latency (in ticks, >= 1) for a frame entering channel src->dst now.
  virtual VirtualTime Sample(NodeId src, NodeId dst, VirtualTime now,
                             Rng& rng) = 0;
};

/// Every frame takes exactly `delay` ticks.
class FixedDelay final : public DelayPolicy {
 public:
  explicit FixedDelay(VirtualTime delay) : delay_(delay < 1 ? 1 : delay) {}
  VirtualTime Sample(NodeId, NodeId, VirtualTime, Rng&) override {
    return delay_;
  }

 private:
  VirtualTime delay_;
};

/// Uniform in [lo, hi]; the workhorse for randomized testing.
class UniformDelay final : public DelayPolicy {
 public:
  UniformDelay(VirtualTime lo, VirtualTime hi)
      : lo_(lo < 1 ? 1 : lo), hi_(hi < lo_ ? lo_ : hi) {}
  VirtualTime Sample(NodeId, NodeId, VirtualTime, Rng& rng) override {
    return static_cast<VirtualTime>(
        rng.NextInRange(static_cast<std::int64_t>(lo_),
                        static_cast<std::int64_t>(hi_)));
  }

 private:
  VirtualTime lo_;
  VirtualTime hi_;
};

/// Per-channel overrides on top of a base policy; used by scripted
/// adversaries ("server s4 is slow in responding"). Node ids are dense
/// from 0, so overrides live in a flat dim×dim table probed on every
/// Sample; 0 means "no override" (SetOverride clamps delays to >= 1).
class ChannelOverrideDelay final : public DelayPolicy {
 public:
  explicit ChannelOverrideDelay(std::unique_ptr<DelayPolicy> base)
      : base_(std::move(base)) {}

  void SetOverride(NodeId src, NodeId dst, VirtualTime delay) {
    const std::size_t need = static_cast<std::size_t>(std::max(src, dst)) + 1;
    if (need > dim_) Grow(need);
    overrides_[src * dim_ + dst] = delay < 1 ? 1 : delay;
  }
  void ClearOverride(NodeId src, NodeId dst) {
    if (src < dim_ && dst < dim_) overrides_[src * dim_ + dst] = 0;
  }

  VirtualTime Sample(NodeId src, NodeId dst, VirtualTime now,
                     Rng& rng) override {
    if (src < dim_ && dst < dim_) {
      if (const VirtualTime fixed = overrides_[src * dim_ + dst]; fixed > 0) {
        return fixed;
      }
    }
    return base_->Sample(src, dst, now, rng);
  }

 private:
  void Grow(std::size_t dim) {
    std::vector<VirtualTime> next(dim * dim, 0);
    for (std::size_t s = 0; s < dim_; ++s) {
      for (std::size_t d = 0; d < dim_; ++d) {
        next[s * dim + d] = overrides_[s * dim_ + d];
      }
    }
    overrides_ = std::move(next);
    dim_ = dim;
  }

  std::unique_ptr<DelayPolicy> base_;
  std::vector<VirtualTime> overrides_;  // dim×dim, row = src; 0 = unset
  std::size_t dim_ = 0;
};

}  // namespace sbft
