// E10: messaging hot-path cost. Counts heap allocations and bytes per
// operation on the E2 throughput workload shape (n=6, f=1, sequential
// write+read pairs on a clean deployment), plus a pure encode/decode
// microbench. This is the measurement the zero-copy messaging spine is
// judged against: the pre-refactor baseline lives in EXPERIMENTS.md and
// the acceptance bar is >= 30% fewer allocations per op with frames/sec
// no worse.
//
// Allocation counting overrides global operator new/delete in this
// translation unit only. The sim world is single-threaded, so deltas
// around the measured loop are exact, not sampled.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "common/buffer_pool.hpp"
#include "core/deployment.hpp"
#include "net/message.hpp"
#include "sim/world.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_calls{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

struct AllocSnapshot {
  std::uint64_t calls;
  std::uint64_t bytes;
};

AllocSnapshot SnapAllocs() {
  return {g_alloc_calls.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed)};
}

void* CountedAlloc(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

using namespace sbft;
using namespace sbft::bench;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Sequential write+read pairs on a clean n=6 deployment — the E2
/// workload shape without corruption, so every op takes the fast path.
void RunOps(JsonReport& report, std::uint64_t ops) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 42;
  options.n_clients = 1;
  Deployment deployment(std::move(options));

  // Warm up: populate label pools, server windows, channel state.
  for (int i = 0; i < 32; ++i) {
    (void)deployment.Write(0, Value{static_cast<std::uint8_t>(i)});
    (void)deployment.Read(0);
  }

  const std::uint64_t frames_before = deployment.world().stats().frames_sent;
  const AllocSnapshot before = SnapAllocs();
  const double t0 = Now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    auto write = deployment.Write(0, Value{static_cast<std::uint8_t>(i)});
    auto read = deployment.Read(0);
    if (!write.completed || !read.completed) {
      Row("op %llu did not complete; deployment wedged",
          static_cast<unsigned long long>(i));
      std::exit(1);
    }
  }
  const double elapsed = Now() - t0;
  const AllocSnapshot after = SnapAllocs();
  const std::uint64_t frames =
      deployment.world().stats().frames_sent - frames_before;

  const double total_ops = static_cast<double>(2 * ops);  // write + read
  const double allocs_per_op =
      static_cast<double>(after.calls - before.calls) / total_ops;
  const double bytes_per_op =
      static_cast<double>(after.bytes - before.bytes) / total_ops;
  const double frames_per_op = static_cast<double>(frames) / total_ops;
  const double ops_per_sec = total_ops / elapsed;
  const double frames_per_sec = static_cast<double>(frames) / elapsed;

  Row("%-26s %12.1f", "allocs/op", allocs_per_op);
  Row("%-26s %12.1f", "alloc bytes/op", bytes_per_op);
  Row("%-26s %12.1f", "frames/op", frames_per_op);
  Row("%-26s %12.0f", "ops/sec", ops_per_sec);
  Row("%-26s %12.0f", "frames/sec", frames_per_sec);

  report.Metric("hotpath.allocs_per_op", allocs_per_op, "allocs");
  report.Metric("hotpath.alloc_bytes_per_op", bytes_per_op, "bytes");
  report.Metric("hotpath.frames_per_op", frames_per_op, "frames");
  report.Metric("hotpath.ops_per_sec", ops_per_sec, "ops/s");
  report.Metric("hotpath.frames_per_sec", frames_per_sec, "frames/s");
}

/// Token-ring echo automaton for the raw scheduler microbench: every
/// delivered frame is immediately re-sent to the next node, so each
/// processed event is exactly one calendar-queue push + pop + dispatch
/// with a live pooled frame.
class EchoRing final : public Automaton {
 public:
  EchoRing(NodeId ring_size, bool seeds_token)
      : ring_size_(ring_size), seeds_token_(seeds_token) {}

  void OnStart(IEndpoint& endpoint) override {
    if (seeds_token_) {
      endpoint.Send((endpoint.self() + 1) % ring_size_, Bytes{0x42});
    }
  }

  void OnFrame(NodeId /*from*/, BytesView frame,
               IEndpoint& endpoint) override {
    Bytes out = FramePool().Acquire();
    out.assign(frame.begin(), frame.end());
    endpoint.Send((endpoint.self() + 1) % ring_size_, std::move(out));
  }

 private:
  NodeId ring_size_;
  bool seeds_token_;
};

/// Raw event-loop throughput: n=8 ring, 4 tokens in flight, no protocol
/// logic — sim.events_per_sec isolates the scheduler (queue + channel
/// table + dispatch) from quorum work, which is what the calendar-queue
/// overhaul is judged against.
void RunSimEvents(JsonReport& report, std::uint64_t events) {
  World world(World::Options{7, nullptr});
  constexpr NodeId kRing = 8;
  for (NodeId i = 0; i < kRing; ++i) {
    world.AddNode(std::make_unique<EchoRing>(kRing, i < 4));
  }
  world.Run(512);  // warm up: frame pool, channel table, bucket ring

  const double t0 = Now();
  const std::uint64_t processed = world.Run(events);
  const double elapsed = Now() - t0;
  const double events_per_sec = static_cast<double>(processed) / elapsed;

  Row("%-26s %12.0f", "sim events/sec", events_per_sec);
  report.Metric("sim.events_per_sec", events_per_sec, "events/s");
}

/// Pure codec cost: encode + decode of a representative quorum message
/// (ReplyMsg with a full old_vals window), no sim in the loop.
void RunCodec(JsonReport& report, std::uint64_t iters) {
  auto make_ts = [](std::uint32_t sting, ClientId writer) {
    Timestamp ts;
    ts.label.sting = sting;
    ts.label.antistings = {1, 2, 3, 4, 5, 6};  // k = n = 6 antistings
    ts.writer_id = writer;
    return ts;
  };
  // Owned storage outliving the ReplyMsg views below.
  const Value current_val{0xAA, 0xBB, 0xCC, 0xDD};
  const Value old_val{0x01, 0x02, 0x03, 0x04};
  ReplyMsg reply;
  reply.label = 7;
  reply.ts = make_ts(12, 4);
  reply.value = current_val;
  for (std::uint32_t i = 0; i < 6; ++i) {
    reply.old_vals.push_back(WireVersioned{old_val, make_ts(i, 2)});
  }
  const Message message = reply;

  const AllocSnapshot before = SnapAllocs();
  const double t0 = Now();
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    Bytes frame = EncodeMessage(message);
    auto decoded = DecodeMessage(frame);
    sink += frame.size() + (decoded.ok() ? 1 : 0);
  }
  const double elapsed = Now() - t0;
  const AllocSnapshot after = SnapAllocs();

  const double allocs_per_rt =
      static_cast<double>(after.calls - before.calls) /
      static_cast<double>(iters);
  const double rt_per_sec = static_cast<double>(iters) / elapsed;

  Row("%-26s %12.1f", "codec allocs/round-trip", allocs_per_rt);
  Row("%-26s %12.0f", "codec round-trips/sec", rt_per_sec);
  Row("%-26s %12llu", "(sink)", static_cast<unsigned long long>(sink % 1000));

  report.Metric("codec.allocs_per_roundtrip", allocs_per_rt, "allocs");
  report.Metric("codec.roundtrips_per_sec", rt_per_sec, "rt/s");
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report("hotpath", ParseBenchArgs(argc, argv));
  const std::uint64_t ops = report.smoke() ? 100 : 2000;
  const std::uint64_t codec_iters = report.smoke() ? 20'000 : 500'000;
  const std::uint64_t sim_events = report.smoke() ? 200'000 : 2'000'000;

  Header("E10 (hot path)",
         "allocation count + frame throughput on the E2 workload shape "
         "(n=6, f=1, clean run, sequential write+read pairs)");
  RunOps(report, ops);
  RunSimEvents(report, sim_events);
  RunCodec(report, codec_iters);
  return report.Flush() ? 0 : 1;
}
