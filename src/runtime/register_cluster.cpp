#include "runtime/register_cluster.hpp"

#include <future>

namespace sbft {

RegisterCluster::RegisterCluster(Options options)
    : config_(options.config),
      cluster_(ThreadCluster::Options{options.use_tcp, options.seed}),
      op_timeout_(options.op_timeout) {
  config_.Validate();
  std::vector<NodeId> server_ids;
  for (std::size_t i = 0; i < config_.n; ++i) {
    std::unique_ptr<RegisterServer> server;
    if (auto it = options.byzantine.find(i); it != options.byzantine.end()) {
      server = MakeByzantineServer(it->second, config_, i,
                                   options.seed * 131 + i);
    } else {
      server = std::make_unique<RegisterServer>(config_, i);
    }
    server_ids.push_back(cluster_.AddNode(std::move(server)));
  }
  for (std::size_t i = 0; i < options.n_clients; ++i) {
    auto client = std::make_unique<RegisterClient>(
        config_, server_ids, static_cast<ClientId>(config_.n + i));
    clients_.push_back(client.get());
    client_ids_.push_back(cluster_.AddNode(std::move(client)));
  }
}

WriteOutcome RegisterCluster::Write(std::size_t client, Value value) {
  auto done = std::make_shared<std::promise<WriteOutcome>>();
  auto future = done->get_future();
  cluster_.PostToNode(client_ids_[client],
                      [this, client, value = std::move(value), done] {
                        clients_[client]->StartWrite(
                            value, [done](const WriteOutcome& outcome) {
                              done->set_value(outcome);
                            });
                      });
  if (future.wait_for(op_timeout_) != std::future_status::ready) {
    return WriteOutcome{};  // kFailed
  }
  return future.get();
}

ReadOutcome RegisterCluster::Read(std::size_t client) {
  auto done = std::make_shared<std::promise<ReadOutcome>>();
  auto future = done->get_future();
  cluster_.PostToNode(client_ids_[client], [this, client, done] {
    clients_[client]->StartRead([done](const ReadOutcome& outcome) {
      done->set_value(outcome);
    });
  });
  if (future.wait_for(op_timeout_) != std::future_status::ready) {
    return ReadOutcome{};  // kFailed
  }
  return future.get();
}

}  // namespace sbft
