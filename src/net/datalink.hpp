// Self-stabilizing data-link over a bounded, fair-lossy, non-FIFO
// channel — the substrate assumed away in §II of the paper ("this
// behavior can be ensured by using a stabilization preserving data-link
// protocol built on top of bounded, non-reliable but fair, non-FIFO
// communication channels [8]").
//
// Simplified capacity-counting variant of Dolev, Dubois, Potop-Butucaru,
// Tixeuil (IPL 2011), sound for channels that lose/reorder but never
// duplicate (see lossy_channel.hpp):
//
//   * the sender transmits DATA(label, payload) repeatedly for the
//     current message; labels cycle through {0..c+1};
//   * the receiver counts receipts of the *identical* (label, payload)
//     pair; because at most c frames can be in flight, c+1 identical
//     receipts guarantee at least one was sent for the current message,
//     so the receiver delivers the payload and starts acknowledging;
//   * the receiver answers each further DATA for a delivered pair with
//     ACK(label); the sender completes after c+1 ACK(label) receipts
//     (again: at most c can be stale) and moves to the next message.
//
// Pseudo-stabilizing: from an arbitrary initial configuration (garbage
// in both directions, garbage local state) a bounded prefix of spurious
// deliveries may occur; once the initial garbage drains, the link
// delivers exactly the sent sequence, in order, exactly once (tested in
// datalink_test.cpp, measured in bench E8).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace sbft {

/// Frames exchanged by the link (self-describing, garbage-tolerant).
struct DlFrame {
  enum class Kind : std::uint8_t { kData = 1, kAck = 2 };
  Kind kind = Kind::kData;
  std::uint32_t label = 0;
  Bytes payload;  // empty for ACK

  [[nodiscard]] Bytes Encode() const;
  static std::optional<DlFrame> Decode(BytesView raw);
};

class DataLinkSender {
 public:
  /// `capacity` must match the underlying channel's bound c.
  explicit DataLinkSender(std::size_t capacity) : capacity_(capacity) {}

  /// Queue an application message for reliable FIFO delivery.
  void Submit(Bytes message) { pending_.push_back(std::move(message)); }

  /// Produce the frame to transmit now (retransmission included), or
  /// nullopt when idle. Call once per tick; fairness of the channel plus
  /// unbounded ticks gives liveness.
  [[nodiscard]] std::optional<Bytes> Tick();

  /// Feed every frame arriving on the reverse channel.
  void OnFrame(BytesView raw);

  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] bool idle() const { return !active_ && pending_.empty(); }

  /// Transient fault: garble all local state.
  void CorruptState(Rng& rng);

 private:
  [[nodiscard]] std::uint32_t LabelSpace() const {
    return static_cast<std::uint32_t>(capacity_) + 2;
  }

  std::size_t capacity_;
  std::deque<Bytes> pending_;
  bool active_ = false;
  Bytes current_;
  std::uint32_t label_ = 0;
  std::size_t acks_ = 0;
  std::size_t completed_ = 0;
};

class DataLinkReceiver {
 public:
  DataLinkReceiver(std::size_t capacity,
                   std::function<void(Bytes)> deliver)
      : capacity_(capacity), deliver_(std::move(deliver)) {}

  /// Feed every frame from the forward channel; returns the ACK frame to
  /// send back, if any.
  [[nodiscard]] std::optional<Bytes> OnFrame(BytesView raw);

  void CorruptState(Rng& rng);

 private:
  std::size_t capacity_;
  std::function<void(Bytes)> deliver_;
  // Receipt counting for the candidate (label, payload) pair.
  bool counting_ = false;
  std::uint32_t count_label_ = 0;
  Bytes count_payload_;
  std::size_t count_ = 0;
  // Last delivered pair (acknowledged, never redelivered).
  bool has_delivered_ = false;
  std::uint32_t delivered_label_ = 0;
  Bytes delivered_payload_;
};

}  // namespace sbft
