// E7: wall-clock throughput and latency on the threaded runtime
// (real OS threads; in-process mailboxes vs TCP loopback), n sweep and
// logical-client sweep. This is the "threads/sockets" arm of the
// reproduction — absolute numbers are machine-dependent; the shapes to
// check are the mailbox-vs-TCP gap, the linear-in-n message cost
// showing up as latency, and throughput scaling with pipelined clients.
//
// Every arm drives the multiplexed topology (one MuxClient node hosts
// all logical clients as independent registers) with an asynchronous
// closed loop: each logical client keeps exactly one operation in
// flight and issues the next from the completion callback. Per-op
// latency is charged from the op's INTENDED start — the previous op's
// completion stamp, taken inside the completion callback — so the
// callback-to-injection gap is part of the next op's latency rather
// than silently omitted (the coordinated-omission trap: stamping at
// send time lets a stalled client under-report exactly when the
// system is slow). p50/p99 therefore include queueing and are
// comparable across the mailbox and tcp transports, and come from the
// shared log-linear histogram (load/histogram.hpp, ~3% worst-case
// quantization), whose math tests/load/histogram_test.cpp pins down.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "load/histogram.hpp"
#include "runtime/register_cluster.hpp"

using namespace sbft;
using namespace sbft::bench;

namespace {

using Clock = std::chrono::steady_clock;

struct Numbers {
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  long completed = 0;
  long failed = 0;
  /// Thread-CPU microseconds inside automaton dispatch per completed
  /// op, summed over all node threads (ThreadCluster::protocol_cpu_ns):
  /// the protocol-floor observable, with mailbox waits and socket
  /// syscalls excluded. Comparable across transports and batch modes.
  double protocol_cpu_us_per_op = 0;
};

/// Closed-loop load generator over RegisterCluster's async API. Each
/// logical client runs `pairs` write+read pairs; all completion
/// callbacks run on the (single) mux client node thread, so the
/// histogram — only ever touched there — needs no locking.
class ClosedLoop {
 public:
  ClosedLoop(RegisterCluster& cluster, std::size_t n_clients, int pairs)
      : cluster_(cluster), n_clients_(n_clients), pairs_(pairs) {}

  Numbers Run() {
    const auto t_begin = Clock::now();
    // Every client's first op is intended to start at the loop start;
    // injection order skew across clients is queueing, and counts.
    for (std::size_t c = 0; c < n_clients_; ++c) InjectWrite(c, 0, t_begin);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [this] { return done_clients_ == n_clients_; });
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t_begin).count();

    Numbers numbers;
    numbers.completed = static_cast<long>(histogram_.count());
    numbers.failed = failed_.load();
    numbers.ops_per_sec = static_cast<double>(numbers.completed) / seconds;
    numbers.p50_us = static_cast<double>(histogram_.Percentile(0.5));
    numbers.p99_us = static_cast<double>(histogram_.Percentile(0.99));
    return numbers;
  }

 private:
  void InjectWrite(std::size_t c, int i, Clock::time_point intended) {
    const std::string text = "c" + std::to_string(c) + "#" + std::to_string(i);
    Value value(text.begin(), text.end());
    cluster_.AsyncWrite(c, std::move(value),
                        [this, c, i, intended](const WriteOutcome& outcome) {
                          // One stamp: this op's completion AND the
                          // next op's intended start.
                          const auto now = Clock::now();
                          Record(intended, now, outcome.status);
                          InjectRead(c, i, now);
                        });
  }

  void InjectRead(std::size_t c, int i, Clock::time_point intended) {
    cluster_.AsyncRead(c, [this, c, i,
                           intended](const ReadOutcome& outcome) {
      const auto now = Clock::now();
      Record(intended, now, outcome.status);
      if (i + 1 < pairs_) {
        InjectWrite(c, i + 1, now);
        return;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      ++done_clients_;
      done_cv_.notify_one();
    });
  }

  void Record(Clock::time_point intended, Clock::time_point now,
              OpStatus status) {
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(now - intended)
            .count();
    histogram_.Record(us > 0 ? static_cast<std::uint64_t>(us) : 0);
    if (status != OpStatus::kOk) failed_.fetch_add(1);
  }

  RegisterCluster& cluster_;
  std::size_t n_clients_;
  int pairs_;
  load::LatencyHistogram histogram_;
  std::atomic<long> failed_{0};
  std::mutex mutex_;
  std::condition_variable done_cv_;
  std::size_t done_clients_ = 0;
};

Numbers RunArm(std::uint32_t n, std::size_t n_clients, bool use_tcp,
               int pairs_per_client, std::size_t batch_max_ops,
               bool shared_flush, std::size_t reactor_threads) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(n);
  options.use_tcp = use_tcp;
  options.reactor_threads = reactor_threads;
  options.multiplex = true;
  options.n_clients = n_clients;
  options.batch_max_ops = batch_max_ops;  // 0 = unbatched
  options.batch_max_delay_us = 200;
  options.shared_flush = shared_flush;
  RegisterCluster cluster(std::move(options));
  cluster.Start();
  ClosedLoop loop(cluster, n_clients, pairs_per_client);
  Numbers numbers = loop.Run();
  const std::uint64_t cpu_ns = cluster.cluster().protocol_cpu_ns();
  cluster.Stop();
  if (numbers.completed > 0) {
    numbers.protocol_cpu_us_per_op =
        static_cast<double>(cpu_ns) / 1000.0 /
        static_cast<double>(numbers.completed);
  }
  return numbers;
}

/// Pairs per logical client: a fixed total-op budget divided across
/// clients (clamped), so sweeps finish in bounded wall-clock while the
/// big-c points still run thousands of ops.
int PairsFor(bool use_tcp, std::size_t n_clients, bool smoke) {
  const int budget = smoke ? (use_tcp ? 64 : 96) : (use_tcp ? 1024 : 1536);
  const int cap = smoke ? 24 : (use_tcp ? 128 : 192);
  const int floor = smoke ? 2 : 8;
  return std::clamp(budget / static_cast<int>(n_clients), floor, cap);
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report("throughput", ParseBenchArgs(argc, argv));
  Header("E7", "threaded runtime throughput (ops = writes+reads)");
  Row("%-4s %-8s %-15s | %-12s %-10s %-10s %-7s", "n", "clients", "transport",
      "ops/s", "p50 us", "p99 us", "failed");

  struct Point {
    bool use_tcp;
    std::uint32_t n;
    std::size_t clients;
    std::size_t batch = 0;  // batch_max_ops; 0 = unbatched
    bool shared_flush = false;
  };
  std::vector<Point> points;
  std::set<std::string> seen;
  auto add = [&](bool use_tcp, std::uint32_t n, std::size_t clients,
                 std::size_t batch = 0, bool shared_flush = false) {
    const std::string key = std::string(use_tcp ? "tcp" : "mailbox") + "." +
                            std::to_string(n) + "." + std::to_string(clients) +
                            "." + std::to_string(batch) +
                            (shared_flush ? ".sf" : "");
    if (seen.insert(key).second) {
      points.push_back({use_tcp, n, clients, batch, shared_flush});
    }
  };
  // Legacy trajectory points: n sweep at low client counts.
  for (std::uint32_t n : {6u, 11u, 16u}) {
    add(false, n, 1);
    add(false, n, 2);
  }
  // TCP arm kept small at c=1: sockets * n^2 on one box. n=16 is the
  // worst case the trajectory tracks (256 sockets, the paper's largest
  // sweep point); its failed count guards against accept-backlog drops.
  for (std::uint32_t n : {6u, 11u, 16u}) {
    add(true, n, 1);
  }

  // High-concurrency sweep at n=16: pipelined logical clients over the
  // mux envelope, both transports.
  const std::vector<std::size_t> sweep =
      report.clients().empty() ? std::vector<std::size_t>{1, 8, 64, 256}
                               : report.clients();
  for (std::size_t clients : sweep) {
    add(false, 16, clients);
    add(true, 16, clients);
  }
  // Protocol-round batching arms (metric prefix "batched."): the same
  // n=16 concurrency sweep with frames of concurrent per-register
  // rounds coalesced into shared MuxBatch frames. The window matches
  // the client count up to 64 — every closed-loop generation shares
  // one round; past 64 a capped window keeps several smaller rounds
  // pipelined instead of one giant serialized round (measured faster
  // at c256). Skipped below c=8: a batch window over a lone
  // closed-loop client only adds the max_delay timer wait.
  for (std::size_t clients : sweep) {
    if (clients < 8) continue;
    add(false, 16, clients, std::min<std::size_t>(clients, 64));
    add(true, 16, clients, std::min<std::size_t>(clients, 64));
  }
  // Shared-FLUSH arms (metric prefix "sharedflush."): batching plus one
  // node-level FLUSH round per window (core/mux_flush.hpp) — the
  // per-op protocol floor drops from ~2 rounds to ~1 + 1/W.
  for (std::size_t clients : sweep) {
    if (clients < 8) continue;
    add(false, 16, clients, std::min<std::size_t>(clients, 64), true);
    add(true, 16, clients, std::min<std::size_t>(clients, 64), true);
  }

  for (const Point& point : points) {
    const int pairs = PairsFor(point.use_tcp, point.clients, report.smoke());
    const Numbers numbers =
        RunArm(point.n, point.clients, point.use_tcp, pairs, point.batch,
               point.shared_flush, report.reactor_threads());
    const std::string transport =
        std::string(point.shared_flush ? "sharedflush."
                    : point.batch > 0  ? "batched."
                                       : "") +
        (point.use_tcp ? "tcp" : "mailbox");
    Row("%-4u %-8zu %-15s | %-12.0f %-10.0f %-10.0f %-7ld", point.n,
        point.clients, transport.c_str(), numbers.ops_per_sec, numbers.p50_us,
        numbers.p99_us, numbers.failed);
    const std::string key = transport + ".n" + std::to_string(point.n) +
                            ".c" + std::to_string(point.clients);
    report.Metric(key + ".ops_per_sec", numbers.ops_per_sec, "ops/s");
    report.Metric(key + ".p50_us", numbers.p50_us, "us");
    report.Metric(key + ".p99_us", numbers.p99_us, "us");
    report.Metric(key + ".failed", static_cast<double>(numbers.failed),
                  "ops");
    report.Metric(key + ".protocol_cpu_us_per_op",
                  numbers.protocol_cpu_us_per_op, "us/op");
    // Scale-invariant completeness: 1.0 means every attempted op
    // finished, so smoke and full runs compare against one baseline.
    const double frac =
        numbers.completed == 0
            ? 0.0
            : static_cast<double>(numbers.completed - numbers.failed) /
                  static_cast<double>(numbers.completed);
    report.Metric(key + ".completed_frac", frac, "frac");
  }

  Row("%s", "\nexpected shape: latency grows roughly linearly with n "
            "(Theta(n) frames/op on one core); pipelined clients raise "
            "throughput until a core saturates, then p99 grows with c "
            "while ops/s plateaus; no failed ops at any sweep point.");
  return report.Flush() ? 0 : 1;
}
