// Twin of bad_nondet_random.cpp: all randomness flows from the seeded
// generator the scenario owns. Must pass clean.
#include <cstdint>

namespace sbft {

template <typename Rng>
unsigned PickServer(Rng& rng, unsigned n) {
  return static_cast<unsigned>(rng()) % n;
}

}  // namespace sbft
