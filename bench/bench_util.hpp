// Shared helpers for the experiment binaries: fixed-width table
// printing and percentile math. Each bench prints the table(s) recorded
// in EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace sbft::bench {

inline void Header(const std::string& id, const std::string& title) {
  std::printf("\n=== %s: %s ===\n", id.c_str(), title.c_str());
}

inline void Row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vfprintf(stdout, format, args);
  va_end(args);
  std::printf("\n");
}

inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[static_cast<std::size_t>(p * (values.size() - 1))];
}

inline double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace sbft::bench
