// E9: fuzz-harness throughput — scenarios/second of the full
// generate -> run -> check loop, per topology mix. This is the number
// that sizes CI budgets: a 60-second smoke explores (60 * rate)
// schedules, and the 200-run acceptance campaign costs 200 / rate
// seconds. Also reports coverage quality (vacuous-run fraction) so a
// generator change that silently stops producing checkable suffixes
// shows up as an experiment regression, not just a quieter fuzzer.
#include <chrono>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "fuzz/campaign.hpp"

using namespace sbft;
using namespace sbft::bench;
using namespace sbft::fuzz;

int main(int argc, char** argv) {
  JsonReport report("fuzz", ParseBenchArgs(argc, argv));
  Header("E9", "fuzz campaign throughput (seeded, 150 runs per row)");
  Row("%-24s | %-10s %-12s %-10s %-10s", "generator mix", "runs/s",
      "violations", "stalled", "vacuous");

  struct Mix {
    const char* name;
    const char* key;
    GeneratorOptions options;
  } mixes[] = {
      {"safe f<=2 (default)", "safe_f2", {}},
      {"safe f<=4", "safe_f4", {.allow_sub_resilience = false, .max_f = 4}},
      {"sub-resilience f<=2", "subres_f2", {.allow_sub_resilience = true}},
  };

  for (const Mix& mix : mixes) {
    CampaignOptions options;
    options.seed = 1;
    options.runs = report.smoke() ? 30 : 150;
    options.generator = mix.options;
    options.do_shrink = false;  // measure the explore loop, not triage
    const auto start = std::chrono::steady_clock::now();
    const CampaignResult result = RunCampaign(options);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double rate =
        static_cast<double>(result.runs_executed) / elapsed.count();
    Row("%-24s | %-10.0f %-12zu %-10zu %-10zu", mix.name, rate,
        result.violations.size(), result.stalled, result.vacuous);
    report.Metric(std::string(mix.key) + ".runs_per_sec", rate, "runs/s");
    report.Metric(std::string(mix.key) + ".violations",
                  static_cast<double>(result.violations.size()), "runs");
    report.Metric(std::string(mix.key) + ".vacuous",
                  static_cast<double>(result.vacuous), "runs");
  }
  Row("%s", "\nexpected shape: hundreds of runs/s unsanitized (tens under "
            "ASan); violations only in the sub-resilience row; vacuous "
            "fraction < 10%.");

  // E11 arm: the same default campaign swept over worker counts. The
  // sims are independent, so runs/s should scale near-linearly until
  // the core count; campaign output is identical at every jobs value
  // (pinned by the fuzz parallel determinism test), so this row only
  // measures wall-clock.
  Header("E11", "parallel sweep engine: campaign throughput vs --jobs");
  Row("%-8s | %-10s %-10s", "jobs", "runs/s", "speedup");
  double jobs1_rate = 0.0;
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    CampaignOptions options;
    options.seed = 1;
    options.runs = report.smoke() ? 30 : 150;
    options.do_shrink = false;
    options.jobs = jobs;
    const auto start = std::chrono::steady_clock::now();
    const CampaignResult result = RunCampaign(options);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double rate =
        static_cast<double>(result.runs_executed) / elapsed.count();
    if (jobs == 1) jobs1_rate = rate;
    const double speedup = jobs1_rate > 0 ? rate / jobs1_rate : 0.0;
    Row("%-8zu | %-10.0f %-10.2f", jobs, rate, speedup);
    report.Metric("jobs" + std::to_string(jobs) + ".runs_per_sec", rate,
                  "runs/s");
    if (jobs == 8) report.Metric("speedup.jobs8_over_jobs1", speedup, "x");
  }
  Row("%s", "\nexpected shape: speedup near-linear up to the machine's "
            "core count, flat beyond it (single-core runners report ~1.0 "
            "throughout).");
  return report.Flush() ? 0 : 1;
}
