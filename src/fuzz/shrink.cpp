#include "fuzz/shrink.hpp"

#include <functional>
#include <utility>
#include <vector>

namespace sbft::fuzz {
namespace {

struct Shrinker {
  ShrinkOptions options;
  ShrinkResult result;

  [[nodiscard]] bool BudgetLeft() const {
    return result.attempts < options.max_runs;
  }

  /// Run a candidate; adopt it if the violation survives.
  bool Try(Scenario candidate) {
    if (!BudgetLeft()) return false;
    candidate.Normalize();
    if (candidate == result.scenario) return false;
    result.attempts++;
    if (!RunScenario(candidate, options.run).violation()) return false;
    result.scenario = std::move(candidate);
    result.accepted++;
    return true;
  }

  /// Try emptying a list wholesale, then dropping single elements
  /// (back-to-front so indices stay stable). Returns true on progress.
  template <typename T>
  bool ShrinkList(std::vector<T> Scenario::* list) {
    bool progress = false;
    if (!(result.scenario.*list).empty()) {
      Scenario candidate = result.scenario;
      (candidate.*list).clear();
      progress |= Try(std::move(candidate));
    }
    for (std::size_t i = (result.scenario.*list).size(); i-- > 0;) {
      if ((result.scenario.*list).size() <= 1) break;  // clear covered it
      Scenario candidate = result.scenario;
      (candidate.*list).erase((candidate.*list).begin() +
                              static_cast<std::ptrdiff_t>(i));
      progress |= Try(std::move(candidate));
    }
    return progress;
  }

  bool Pass() {
    bool progress = false;
    // Big, structural reductions first: whole adversary dimensions.
    progress |= ShrinkList(&Scenario::faults);
    progress |= ShrinkList(&Scenario::byz_clients);
    progress |= ShrinkList(&Scenario::byz_servers);
    progress |= ShrinkList(&Scenario::slowdowns);

    // Fewer clients (operand indices re-wrap via Normalize).
    while (result.scenario.n_clients > 1 && BudgetLeft()) {
      Scenario candidate = result.scenario;
      candidate.n_clients--;
      if (!Try(std::move(candidate))) break;
      progress = true;
    }

    // Shorter workload: halve toward 1, then linear steps.
    while (result.scenario.ops_per_client > 1 && BudgetLeft()) {
      Scenario candidate = result.scenario;
      candidate.ops_per_client = std::max(1u, candidate.ops_per_client / 2);
      if (!Try(std::move(candidate))) break;
      progress = true;
    }
    while (result.scenario.ops_per_client > 1 && BudgetLeft()) {
      Scenario candidate = result.scenario;
      candidate.ops_per_client--;
      if (!Try(std::move(candidate))) break;
      progress = true;
    }

    // Mux mode off entirely (a violation that survives without the mux
    // layer is a core-protocol bug), then the equivocator alone, then a
    // smaller batch window.
    if (result.scenario.mux_window > 0 && BudgetLeft()) {
      Scenario candidate = result.scenario;
      candidate.mux_window = 0;
      progress |= Try(std::move(candidate));
    }
    if (result.scenario.mux_flush_equivocate != 0 && BudgetLeft()) {
      Scenario candidate = result.scenario;
      candidate.mux_flush_equivocate = 0;
      progress |= Try(std::move(candidate));
    }
    while (result.scenario.mux_window > 1 && BudgetLeft()) {
      Scenario candidate = result.scenario;
      candidate.mux_window /= 2;
      if (!Try(std::move(candidate))) break;
      progress = true;
    }

    // Smaller topology (keeps the 5f relationship: only f shrinks).
    while (result.scenario.f > 1 && BudgetLeft()) {
      Scenario candidate = result.scenario;
      candidate.f--;
      if (!Try(std::move(candidate))) break;
      progress = true;
    }
    return progress;
  }
};

}  // namespace

ShrinkResult Shrink(const Scenario& scenario, const ShrinkOptions& options) {
  Shrinker shrinker;
  shrinker.options = options;
  shrinker.result.scenario = scenario;
  shrinker.result.scenario.Normalize();
  while (shrinker.BudgetLeft() && shrinker.Pass()) {
  }
  return shrinker.result;
}

}  // namespace sbft::fuzz
