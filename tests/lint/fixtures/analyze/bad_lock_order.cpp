// Fixture: seeded lock-order inversion cycle, interprocedural.
//
// First() acquires a_ then b_ (edge a_ -> b_). Second() acquires b_
// and, still holding it, calls Helper(), which acquires a_ (edge
// b_ -> a_). Two threads running First() and Second() concurrently
// deadlock; tools/sbft_analyze.py must report the cycle statically.
// Expected: exactly one check trips — lock-order.

namespace sbft {

class Mutex {
 public:
  void lock();
  void unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mutex);
  ~MutexLock();
};

class Widget {
 public:
  void First() {
    MutexLock outer(a_);
    MutexLock inner(b_);
    ++total_;
  }

  void Second() {
    MutexLock outer(b_);
    Helper();
  }

 private:
  void Helper() {
    MutexLock guard(a_);
    ++total_;
  }

  Mutex a_;
  Mutex b_;
  long total_ = 0;
};

}  // namespace sbft
