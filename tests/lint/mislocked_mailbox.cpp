// Negative-compile fixture: the same Mutex + GUARDED_BY discipline the
// runtime's Mailbox uses, with the queue deliberately read WITHOUT the
// mutex. Under `clang++ -Wthread-safety -Werror=thread-safety-analysis`
// this file must FAIL to compile — tests/lint/negative_compile.py
// asserts exactly that, which keeps the annotation machinery honest
// (an accidentally no-op'd macro would make this file compile and the
// test fail).
//
// This file is intentionally NOT part of any CMake target.
#include <deque>

#include "runtime/mailbox.hpp"

namespace sbft {

class MislockedMailbox {
 public:
  bool Push(int item) {
    MutexLock lock(mutex_);
    if (closed_) return false;
    items_.push_back(item);
    return true;
  }

  // BUG (on purpose): reads the guarded queue with no lock held.
  [[nodiscard]] std::size_t UnsafeSize() const { return items_.size(); }

 private:
  mutable Mutex mutex_;
  std::deque<int> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

// Anchor so -fsyntax-only sees the class used.
std::size_t Poke(const MislockedMailbox& mailbox) {
  return mailbox.UnsafeSize();
}

}  // namespace sbft
