// Wire messages for the core protocol (Figures 1-3) and the baseline
// protocols, plus the frame codec.
//
// A frame is [type: u8][payload]; decoding returns Result so garbage
// frames (transient channel corruption, Byzantine noise) degrade to a
// clean decode error. Even a *successfully* decoded frame may carry
// semantic garbage — handlers validate every field before use.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "labels/read_label_pool.hpp"
#include "labels/timestamp.hpp"
#include "labels/unbounded_timestamp.hpp"

namespace sbft {

/// Register values are opaque bytes.
using Value = Bytes;

/// A (value, timestamp) pair as stored in servers' old_vals history and
/// shipped inside REPLY messages.
struct VersionedValue {
  Value value;
  Timestamp ts;

  friend bool operator==(const VersionedValue&, const VersionedValue&) =
      default;
  void Encode(BufWriter& w) const;
  static VersionedValue Decode(BufReader& r);
};

/// Which bounded-label pool a FLUSH round is draining. The paper flushes
/// read labels (Figure 3); we apply the identical mechanism to write
/// operation labels (see DESIGN.md, "Writer stale-reply disambiguation").
enum class OpScope : std::uint8_t { kRead = 0, kWrite = 1 };

using OpLabel = std::uint32_t;

// --- Core protocol messages (Figures 1-3) ----------------------------

/// Writer phase 1: request the server's current timestamp.
struct GetTsMsg {
  OpLabel op_label = 0;
};
/// Server's answer to GET_TS.
struct TsReplyMsg {
  Timestamp ts;
  OpLabel op_label = 0;
};
/// Writer phase 2: the effective write.
struct WriteMsg {
  Value value;
  Timestamp ts;
  OpLabel op_label = 0;
};
/// ACK (ts accepted as new) or NACK (ts did not follow the local one);
/// either way the server adopted the write (Figure 1 server side).
struct WriteReplyMsg {
  bool ack = false;
  OpLabel op_label = 0;
};
/// Reader request (Figure 2 line 05).
struct ReadMsg {
  OpLabel label = 0;
};
/// Server reply: current value+ts and the recent-writes history used to
/// build the union WTsG (Figure 2(b) line 02).
struct ReplyMsg {
  Value value;
  Timestamp ts;
  std::vector<VersionedValue> old_vals;
  OpLabel label = 0;
};
/// Reader completion notice (Figure 2 lines 12/19).
struct CompleteReadMsg {
  OpLabel label = 0;
};
/// FIFO flush probe (Figure 3 line 04).
struct FlushMsg {
  OpLabel label = 0;
  OpScope scope = OpScope::kRead;
};
/// Reflected flush probe (Figure 3(b)).
struct FlushAckMsg {
  OpLabel label = 0;
  OpScope scope = OpScope::kRead;
};

// --- Baseline: ABD-style crash-only register --------------------------

struct AbdReadMsg {
  std::uint64_t rid = 0;
};
struct AbdReadReplyMsg {
  std::uint64_t rid = 0;
  UnboundedTs ts;
  Value value;
};
struct AbdWriteMsg {
  std::uint64_t rid = 0;
  UnboundedTs ts;
  Value value;
};
struct AbdWriteAckMsg {
  std::uint64_t rid = 0;
};
struct AbdGetTsMsg {
  std::uint64_t rid = 0;
};
struct AbdTsReplyMsg {
  std::uint64_t rid = 0;
  UnboundedTs ts;
};

// --- Baseline: non-stabilizing BFT register, unbounded ts ([14]) ------

struct BuGetTsMsg {
  std::uint64_t rid = 0;
};
struct BuTsReplyMsg {
  std::uint64_t rid = 0;
  UnboundedTs ts;
};
struct BuWriteMsg {
  std::uint64_t rid = 0;
  UnboundedTs ts;
  Value value;
};
struct BuWriteAckMsg {
  std::uint64_t rid = 0;
};
struct BuReadMsg {
  std::uint64_t rid = 0;
};
struct BuReadReplyMsg {
  std::uint64_t rid = 0;
  UnboundedTs ts;
  Value value;
};

// --- Baseline: naive TM_1R quorum register (Theorem 1 replay) ---------

struct NqGetTsMsg {
  std::uint64_t rid = 0;
};
struct NqTsReplyMsg {
  std::uint64_t rid = 0;
  Timestamp ts;
};
struct NqWriteMsg {
  std::uint64_t rid = 0;
  Timestamp ts;
  Value value;
};
struct NqWriteAckMsg {
  std::uint64_t rid = 0;
};
struct NqReadMsg {
  std::uint64_t rid = 0;
};
struct NqReadReplyMsg {
  std::uint64_t rid = 0;
  Timestamp ts;
  Value value;
};

// --- Multiplexing envelope (multi-register storage service) -----------

/// Wraps an inner protocol frame with a register identifier, letting one
/// server process host many independent registers (core/mux.hpp). The
/// identifier is typically a 64-bit key hash.
struct MuxMsg {
  std::uint64_t register_id = 0;
  Bytes inner;
};

using Message = std::variant<
    GetTsMsg, TsReplyMsg, WriteMsg, WriteReplyMsg, ReadMsg, ReplyMsg,
    CompleteReadMsg, FlushMsg, FlushAckMsg,
    AbdReadMsg, AbdReadReplyMsg, AbdWriteMsg, AbdWriteAckMsg, AbdGetTsMsg,
    AbdTsReplyMsg,
    BuGetTsMsg, BuTsReplyMsg, BuWriteMsg, BuWriteAckMsg, BuReadMsg,
    BuReadReplyMsg,
    NqGetTsMsg, NqTsReplyMsg, NqWriteMsg, NqWriteAckMsg, NqReadMsg,
    NqReadReplyMsg, MuxMsg>;

/// Frame codec. Encode never fails; Decode fails on unknown type bytes,
/// truncation, implausible lengths, or trailing garbage.
[[nodiscard]] Bytes EncodeMessage(const Message& message);
[[nodiscard]] Result<Message> DecodeMessage(BytesView frame);

/// Human-readable tag, for traces and test diagnostics.
[[nodiscard]] std::string MessageTypeName(const Message& message);

}  // namespace sbft
