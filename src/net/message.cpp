#include "net/message.hpp"

#include <array>
#include <type_traits>

#include "common/buffer_pool.hpp"
#include "common/serialize.hpp"

namespace sbft {
namespace {

// Explicit wire tags (stable across refactors of the variant order).
enum class Tag : std::uint8_t {
  kGetTs = 1,
  kTsReply = 2,
  kWrite = 3,
  kWriteReply = 4,
  kRead = 5,
  kReply = 6,
  kCompleteRead = 7,
  kFlush = 8,
  kFlushAck = 9,
  kAbdRead = 20,
  kAbdReadReply = 21,
  kAbdWrite = 22,
  kAbdWriteAck = 23,
  kAbdGetTs = 24,
  kAbdTsReply = 25,
  kBuGetTs = 30,
  kBuTsReply = 31,
  kBuWrite = 32,
  kBuWriteAck = 33,
  kBuRead = 34,
  kBuReadReply = 35,
  kNqGetTs = 40,
  kNqTsReply = 41,
  kNqWrite = 42,
  kNqWriteAck = 43,
  kNqRead = 44,
  kNqReadReply = 45,
  kMux = 60,
  kMuxBatch = 61,
  kNodeFlush = 62,
  kNodeFlushAck = 63,
};

// The registry: each variant alternative maps to its tag here; encode
// and decode bodies live on the structs (EncodeInto / DecodeFrom).
template <typename T>
struct WireTag;
template <> struct WireTag<GetTsMsg> { static constexpr Tag value = Tag::kGetTs; };
template <> struct WireTag<TsReplyMsg> { static constexpr Tag value = Tag::kTsReply; };
template <> struct WireTag<WriteMsg> { static constexpr Tag value = Tag::kWrite; };
template <> struct WireTag<WriteReplyMsg> { static constexpr Tag value = Tag::kWriteReply; };
template <> struct WireTag<ReadMsg> { static constexpr Tag value = Tag::kRead; };
template <> struct WireTag<ReplyMsg> { static constexpr Tag value = Tag::kReply; };
template <> struct WireTag<CompleteReadMsg> { static constexpr Tag value = Tag::kCompleteRead; };
template <> struct WireTag<FlushMsg> { static constexpr Tag value = Tag::kFlush; };
template <> struct WireTag<FlushAckMsg> { static constexpr Tag value = Tag::kFlushAck; };
template <> struct WireTag<AbdReadMsg> { static constexpr Tag value = Tag::kAbdRead; };
template <> struct WireTag<AbdReadReplyMsg> { static constexpr Tag value = Tag::kAbdReadReply; };
template <> struct WireTag<AbdWriteMsg> { static constexpr Tag value = Tag::kAbdWrite; };
template <> struct WireTag<AbdWriteAckMsg> { static constexpr Tag value = Tag::kAbdWriteAck; };
template <> struct WireTag<AbdGetTsMsg> { static constexpr Tag value = Tag::kAbdGetTs; };
template <> struct WireTag<AbdTsReplyMsg> { static constexpr Tag value = Tag::kAbdTsReply; };
template <> struct WireTag<BuGetTsMsg> { static constexpr Tag value = Tag::kBuGetTs; };
template <> struct WireTag<BuTsReplyMsg> { static constexpr Tag value = Tag::kBuTsReply; };
template <> struct WireTag<BuWriteMsg> { static constexpr Tag value = Tag::kBuWrite; };
template <> struct WireTag<BuWriteAckMsg> { static constexpr Tag value = Tag::kBuWriteAck; };
template <> struct WireTag<BuReadMsg> { static constexpr Tag value = Tag::kBuRead; };
template <> struct WireTag<BuReadReplyMsg> { static constexpr Tag value = Tag::kBuReadReply; };
template <> struct WireTag<NqGetTsMsg> { static constexpr Tag value = Tag::kNqGetTs; };
template <> struct WireTag<NqTsReplyMsg> { static constexpr Tag value = Tag::kNqTsReply; };
template <> struct WireTag<NqWriteMsg> { static constexpr Tag value = Tag::kNqWrite; };
template <> struct WireTag<NqWriteAckMsg> { static constexpr Tag value = Tag::kNqWriteAck; };
template <> struct WireTag<NqReadMsg> { static constexpr Tag value = Tag::kNqRead; };
template <> struct WireTag<NqReadReplyMsg> { static constexpr Tag value = Tag::kNqReadReply; };
template <> struct WireTag<MuxMsg> { static constexpr Tag value = Tag::kMux; };
template <> struct WireTag<MuxBatchMsg> { static constexpr Tag value = Tag::kMuxBatch; };
template <> struct WireTag<NodeFlushMsg> { static constexpr Tag value = Tag::kNodeFlush; };
template <> struct WireTag<NodeFlushAckMsg> { static constexpr Tag value = Tag::kNodeFlushAck; };

// Tag-indexed decode table, one entry per possible tag byte. Built at
// static-init time by folding over the Message variant — a type absent
// from the variant cannot be decoded, a duplicate tag asserts below.
using DecodeFn = Message (*)(BufReader&);

std::array<DecodeFn, 256> BuildDecodeTable() {
  std::array<DecodeFn, 256> table{};
  auto add = [&table]<typename T>() {
    auto& slot = table[static_cast<std::size_t>(WireTag<T>::value)];
    SBFT_ASSERT(slot == nullptr);  // duplicate wire tag
    slot = [](BufReader& r) -> Message { return Message(T::DecodeFrom(r)); };
  };
  [&add]<std::size_t... I>(std::index_sequence<I...>) {
    (add.template operator()<std::variant_alternative_t<I, Message>>(), ...);
  }(std::make_index_sequence<std::variant_size_v<Message>>{});
  return table;
}

const std::array<DecodeFn, 256>& DecodeTable() {
  static const std::array<DecodeFn, 256> table = BuildDecodeTable();
  return table;
}

}  // namespace

void WireVersioned::EncodeInto(BufWriter& w) const {
  w.PutBytes(value);
  ts.Encode(w);
}
WireVersioned WireVersioned::DecodeFrom(BufReader& r) {
  WireVersioned v;
  v.value = r.GetBytesView();
  v.ts = Timestamp::Decode(r);
  return v;
}

void GetTsMsg::EncodeInto(BufWriter& w) const { w.Put<OpLabel>(op_label); }
GetTsMsg GetTsMsg::DecodeFrom(BufReader& r) {
  GetTsMsg m;
  m.op_label = r.Get<OpLabel>();
  return m;
}

void TsReplyMsg::EncodeInto(BufWriter& w) const {
  ts.Encode(w);
  w.Put<OpLabel>(op_label);
}
TsReplyMsg TsReplyMsg::DecodeFrom(BufReader& r) {
  TsReplyMsg m;
  m.ts = Timestamp::Decode(r);
  m.op_label = r.Get<OpLabel>();
  return m;
}

void WriteMsg::EncodeInto(BufWriter& w) const {
  w.PutBytes(value);
  ts.Encode(w);
  w.Put<OpLabel>(op_label);
}
WriteMsg WriteMsg::DecodeFrom(BufReader& r) {
  WriteMsg m;
  m.value = r.GetBytesView();
  m.ts = Timestamp::Decode(r);
  m.op_label = r.Get<OpLabel>();
  return m;
}

void WriteReplyMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint8_t>(ack ? 1 : 0);
  w.Put<OpLabel>(op_label);
}
WriteReplyMsg WriteReplyMsg::DecodeFrom(BufReader& r) {
  WriteReplyMsg m;
  m.ack = r.Get<std::uint8_t>() != 0;
  m.op_label = r.Get<OpLabel>();
  return m;
}

void ReadMsg::EncodeInto(BufWriter& w) const { w.Put<OpLabel>(label); }
ReadMsg ReadMsg::DecodeFrom(BufReader& r) {
  ReadMsg m;
  m.label = r.Get<OpLabel>();
  return m;
}

void ReplyMsg::EncodeInto(BufWriter& w) const {
  w.PutBytes(value);
  ts.Encode(w);
  w.PutVector(old_vals,
              [](BufWriter& bw, const WireVersioned& v) { v.EncodeInto(bw); });
  w.Put<OpLabel>(label);
}
ReplyMsg ReplyMsg::DecodeFrom(BufReader& r) {
  ReplyMsg m;
  m.value = r.GetBytesView();
  m.ts = Timestamp::Decode(r);
  m.old_vals = r.GetVector<WireVersioned>(
      [](BufReader& br) { return WireVersioned::DecodeFrom(br); });
  m.label = r.Get<OpLabel>();
  return m;
}

void CompleteReadMsg::EncodeInto(BufWriter& w) const { w.Put<OpLabel>(label); }
CompleteReadMsg CompleteReadMsg::DecodeFrom(BufReader& r) {
  CompleteReadMsg m;
  m.label = r.Get<OpLabel>();
  return m;
}

void FlushMsg::EncodeInto(BufWriter& w) const {
  w.Put<OpLabel>(label);
  w.Put<OpScope>(scope);
}
FlushMsg FlushMsg::DecodeFrom(BufReader& r) {
  FlushMsg m;
  m.label = r.Get<OpLabel>();
  m.scope = r.Get<OpScope>();
  return m;
}

void FlushAckMsg::EncodeInto(BufWriter& w) const {
  w.Put<OpLabel>(label);
  w.Put<OpScope>(scope);
}
FlushAckMsg FlushAckMsg::DecodeFrom(BufReader& r) {
  FlushAckMsg m;
  m.label = r.Get<OpLabel>();
  m.scope = r.Get<OpScope>();
  return m;
}

void AbdReadMsg::EncodeInto(BufWriter& w) const { w.Put<std::uint64_t>(rid); }
AbdReadMsg AbdReadMsg::DecodeFrom(BufReader& r) {
  AbdReadMsg m;
  m.rid = r.Get<std::uint64_t>();
  return m;
}

void AbdReadReplyMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(rid);
  ts.Encode(w);
  w.PutBytes(value);
}
AbdReadReplyMsg AbdReadReplyMsg::DecodeFrom(BufReader& r) {
  AbdReadReplyMsg m;
  m.rid = r.Get<std::uint64_t>();
  m.ts = UnboundedTs::Decode(r);
  m.value = r.GetBytesView();
  return m;
}

void AbdWriteMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(rid);
  ts.Encode(w);
  w.PutBytes(value);
}
AbdWriteMsg AbdWriteMsg::DecodeFrom(BufReader& r) {
  AbdWriteMsg m;
  m.rid = r.Get<std::uint64_t>();
  m.ts = UnboundedTs::Decode(r);
  m.value = r.GetBytesView();
  return m;
}

void AbdWriteAckMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(rid);
}
AbdWriteAckMsg AbdWriteAckMsg::DecodeFrom(BufReader& r) {
  AbdWriteAckMsg m;
  m.rid = r.Get<std::uint64_t>();
  return m;
}

void AbdGetTsMsg::EncodeInto(BufWriter& w) const { w.Put<std::uint64_t>(rid); }
AbdGetTsMsg AbdGetTsMsg::DecodeFrom(BufReader& r) {
  AbdGetTsMsg m;
  m.rid = r.Get<std::uint64_t>();
  return m;
}

void AbdTsReplyMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(rid);
  ts.Encode(w);
}
AbdTsReplyMsg AbdTsReplyMsg::DecodeFrom(BufReader& r) {
  AbdTsReplyMsg m;
  m.rid = r.Get<std::uint64_t>();
  m.ts = UnboundedTs::Decode(r);
  return m;
}

void BuGetTsMsg::EncodeInto(BufWriter& w) const { w.Put<std::uint64_t>(rid); }
BuGetTsMsg BuGetTsMsg::DecodeFrom(BufReader& r) {
  BuGetTsMsg m;
  m.rid = r.Get<std::uint64_t>();
  return m;
}

void BuTsReplyMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(rid);
  ts.Encode(w);
}
BuTsReplyMsg BuTsReplyMsg::DecodeFrom(BufReader& r) {
  BuTsReplyMsg m;
  m.rid = r.Get<std::uint64_t>();
  m.ts = UnboundedTs::Decode(r);
  return m;
}

void BuWriteMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(rid);
  ts.Encode(w);
  w.PutBytes(value);
}
BuWriteMsg BuWriteMsg::DecodeFrom(BufReader& r) {
  BuWriteMsg m;
  m.rid = r.Get<std::uint64_t>();
  m.ts = UnboundedTs::Decode(r);
  m.value = r.GetBytesView();
  return m;
}

void BuWriteAckMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(rid);
}
BuWriteAckMsg BuWriteAckMsg::DecodeFrom(BufReader& r) {
  BuWriteAckMsg m;
  m.rid = r.Get<std::uint64_t>();
  return m;
}

void BuReadMsg::EncodeInto(BufWriter& w) const { w.Put<std::uint64_t>(rid); }
BuReadMsg BuReadMsg::DecodeFrom(BufReader& r) {
  BuReadMsg m;
  m.rid = r.Get<std::uint64_t>();
  return m;
}

void BuReadReplyMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(rid);
  ts.Encode(w);
  w.PutBytes(value);
}
BuReadReplyMsg BuReadReplyMsg::DecodeFrom(BufReader& r) {
  BuReadReplyMsg m;
  m.rid = r.Get<std::uint64_t>();
  m.ts = UnboundedTs::Decode(r);
  m.value = r.GetBytesView();
  return m;
}

void NqGetTsMsg::EncodeInto(BufWriter& w) const { w.Put<std::uint64_t>(rid); }
NqGetTsMsg NqGetTsMsg::DecodeFrom(BufReader& r) {
  NqGetTsMsg m;
  m.rid = r.Get<std::uint64_t>();
  return m;
}

void NqTsReplyMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(rid);
  ts.Encode(w);
}
NqTsReplyMsg NqTsReplyMsg::DecodeFrom(BufReader& r) {
  NqTsReplyMsg m;
  m.rid = r.Get<std::uint64_t>();
  m.ts = Timestamp::Decode(r);
  return m;
}

void NqWriteMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(rid);
  ts.Encode(w);
  w.PutBytes(value);
}
NqWriteMsg NqWriteMsg::DecodeFrom(BufReader& r) {
  NqWriteMsg m;
  m.rid = r.Get<std::uint64_t>();
  m.ts = Timestamp::Decode(r);
  m.value = r.GetBytesView();
  return m;
}

void NqWriteAckMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(rid);
}
NqWriteAckMsg NqWriteAckMsg::DecodeFrom(BufReader& r) {
  NqWriteAckMsg m;
  m.rid = r.Get<std::uint64_t>();
  return m;
}

void NqReadMsg::EncodeInto(BufWriter& w) const { w.Put<std::uint64_t>(rid); }
NqReadMsg NqReadMsg::DecodeFrom(BufReader& r) {
  NqReadMsg m;
  m.rid = r.Get<std::uint64_t>();
  return m;
}

void NqReadReplyMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(rid);
  ts.Encode(w);
  w.PutBytes(value);
}
NqReadReplyMsg NqReadReplyMsg::DecodeFrom(BufReader& r) {
  NqReadReplyMsg m;
  m.rid = r.Get<std::uint64_t>();
  m.ts = Timestamp::Decode(r);
  m.value = r.GetBytesView();
  return m;
}

void MuxMsg::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(register_id);
  w.PutBytes(inner);
}
MuxMsg MuxMsg::DecodeFrom(BufReader& r) {
  MuxMsg m;
  m.register_id = r.Get<std::uint64_t>();
  m.inner = r.GetBytesView();
  return m;
}

void MuxItem::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(register_id);
  w.PutBytes(inner);
}
MuxItem MuxItem::DecodeFrom(BufReader& r) {
  MuxItem m;
  m.register_id = r.Get<std::uint64_t>();
  m.inner = r.GetBytesView();
  return m;
}

void MuxBatchMsg::EncodeInto(BufWriter& w) const {
  w.PutVector(items,
              [](BufWriter& bw, const MuxItem& item) { item.EncodeInto(bw); });
}
MuxBatchMsg MuxBatchMsg::DecodeFrom(BufReader& r) {
  MuxBatchMsg m;
  m.items =
      r.GetVector<MuxItem>([](BufReader& br) { return MuxItem::DecodeFrom(br); });
  return m;
}

void FlushItem::EncodeInto(BufWriter& w) const {
  w.Put<std::uint64_t>(register_id);
  w.Put<OpLabel>(label);
  w.Put<OpScope>(scope);
}
FlushItem FlushItem::DecodeFrom(BufReader& r) {
  FlushItem m;
  m.register_id = r.Get<std::uint64_t>();
  m.label = r.Get<OpLabel>();
  m.scope = r.Get<OpScope>();
  return m;
}

void NodeFlushMsg::EncodeInto(BufWriter& w) const {
  w.PutVector(items,
              [](BufWriter& bw, const FlushItem& item) { item.EncodeInto(bw); });
}
NodeFlushMsg NodeFlushMsg::DecodeFrom(BufReader& r) {
  NodeFlushMsg m;
  m.items = r.GetVector<FlushItem>(
      [](BufReader& br) { return FlushItem::DecodeFrom(br); });
  return m;
}

void NodeFlushAckMsg::EncodeInto(BufWriter& w) const {
  w.PutVector(items,
              [](BufWriter& bw, const FlushItem& item) { item.EncodeInto(bw); });
}
NodeFlushAckMsg NodeFlushAckMsg::DecodeFrom(BufReader& r) {
  NodeFlushAckMsg m;
  m.items = r.GetVector<FlushItem>(
      [](BufReader& br) { return FlushItem::DecodeFrom(br); });
  return m;
}

void EncodeMessageInto(const Message& message, BufWriter& w) {
  std::visit(
      [&w](const auto& m) {
        w.Put<Tag>(WireTag<std::decay_t<decltype(m)>>::value);
        m.EncodeInto(w);
      },
      message);
}

Bytes EncodeMessage(const Message& message) {
  BufWriter w(FramePool().Acquire());
  EncodeMessageInto(message, w);
  return w.Take();
}

Bytes EncodeMuxEnvelope(std::uint64_t register_id, BytesView inner) {
  BufWriter w(FramePool().Acquire());
  w.Reserve(sizeof(Tag) + sizeof(std::uint64_t) + sizeof(std::uint32_t) +
            inner.size());
  w.Put<Tag>(Tag::kMux);
  w.Put<std::uint64_t>(register_id);
  w.PutBytes(inner);
  return w.Take();
}

void MuxBatchBuilder::Add(std::uint64_t register_id, BytesView inner) {
  if (count_ == 0) {
    // Lazy frame start: the builder only holds a pooled buffer while a
    // frame is in flight, and Take() leaves it ready for the next one.
    writer_ = BufWriter(FramePool().Acquire());
    writer_.Put<Tag>(Tag::kMuxBatch);
    writer_.Put<std::uint32_t>(0);  // count, patched in Take()
  }
  writer_.Put<std::uint64_t>(register_id);
  writer_.PutBytes(inner);
  ++count_;
}

Bytes MuxBatchBuilder::Take() {
  SBFT_ASSERT(count_ > 0);
  writer_.PatchAt<std::uint32_t>(sizeof(Tag), count_);
  count_ = 0;
  return writer_.Take();
}

Result<Message> DecodeMessage(BytesView frame) {
  BufReader r(frame);
  const auto tag = r.Get<std::uint8_t>();
  if (r.failed()) return Result<Message>::Err("empty frame");

  const DecodeFn decode = DecodeTable()[tag];
  if (decode == nullptr) return Result<Message>::Err("unknown message tag");
  Message out = decode(r);
  if (!r.AtEndOk()) {
    return Result<Message>::Err("malformed frame for tag " +
                                std::to_string(static_cast<int>(tag)));
  }
  return Result<Message>::Ok(std::move(out));
}

std::optional<LazyReplyMsg> DecodeReplyLazy(BytesView frame) {
  BufReader r(frame);
  if (r.Get<std::uint8_t>() != static_cast<std::uint8_t>(Tag::kReply) ||
      r.failed()) {
    return std::nullopt;
  }
  LazyReplyMsg m;
  m.value = r.GetBytesView();
  m.ts = Timestamp::Decode(r);
  // Bounds-walk the old_vals run entry by entry — the same checks
  // ReplyMsg::DecodeFrom applies, minus materialization. Each entry is
  // value bytes, a label (sting + antisting run), and a writer id.
  const std::size_t region_begin = r.pos();
  const auto count = r.Get<std::uint32_t>();
  if (r.failed() || count > kMaxWireElements) return std::nullopt;
  for (std::uint32_t i = 0; i < count; ++i) {
    (void)r.GetBytesView();                    // value
    (void)r.Get<std::uint32_t>();              // label sting
    const auto antistings = r.Get<std::uint32_t>();
    if (r.failed() || antistings > kMaxWireElements ||
        !r.Skip(static_cast<std::size_t>(antistings) *
                sizeof(std::uint32_t))) {
      return std::nullopt;
    }
    (void)r.Get<ClientId>();                   // writer id
    if (r.failed()) return std::nullopt;
  }
  m.old_vals_raw = frame.subspan(region_begin, r.pos() - region_begin);
  m.old_count = count;
  m.label = r.Get<OpLabel>();
  if (!r.AtEndOk()) return std::nullopt;
  return m;
}

std::string MessageTypeName(const Message& message) {
  struct Namer {
    std::string operator()(const GetTsMsg&) { return "GET_TS"; }
    std::string operator()(const TsReplyMsg&) { return "TS_REPLY"; }
    std::string operator()(const WriteMsg&) { return "WRITE"; }
    std::string operator()(const WriteReplyMsg& m) {
      return m.ack ? "ACK" : "NACK";
    }
    std::string operator()(const ReadMsg&) { return "READ"; }
    std::string operator()(const ReplyMsg&) { return "REPLY"; }
    std::string operator()(const CompleteReadMsg&) { return "COMPLETE_READ"; }
    std::string operator()(const FlushMsg&) { return "FLUSH"; }
    std::string operator()(const FlushAckMsg&) { return "FLUSH_ACK"; }
    std::string operator()(const AbdReadMsg&) { return "ABD_READ"; }
    std::string operator()(const AbdReadReplyMsg&) { return "ABD_READ_REPLY"; }
    std::string operator()(const AbdWriteMsg&) { return "ABD_WRITE"; }
    std::string operator()(const AbdWriteAckMsg&) { return "ABD_WRITE_ACK"; }
    std::string operator()(const AbdGetTsMsg&) { return "ABD_GET_TS"; }
    std::string operator()(const AbdTsReplyMsg&) { return "ABD_TS_REPLY"; }
    std::string operator()(const BuGetTsMsg&) { return "BU_GET_TS"; }
    std::string operator()(const BuTsReplyMsg&) { return "BU_TS_REPLY"; }
    std::string operator()(const BuWriteMsg&) { return "BU_WRITE"; }
    std::string operator()(const BuWriteAckMsg&) { return "BU_WRITE_ACK"; }
    std::string operator()(const BuReadMsg&) { return "BU_READ"; }
    std::string operator()(const BuReadReplyMsg&) { return "BU_READ_REPLY"; }
    std::string operator()(const NqGetTsMsg&) { return "NQ_GET_TS"; }
    std::string operator()(const NqTsReplyMsg&) { return "NQ_TS_REPLY"; }
    std::string operator()(const NqWriteMsg&) { return "NQ_WRITE"; }
    std::string operator()(const NqWriteAckMsg&) { return "NQ_WRITE_ACK"; }
    std::string operator()(const NqReadMsg&) { return "NQ_READ"; }
    std::string operator()(const NqReadReplyMsg&) { return "NQ_READ_REPLY"; }
    std::string operator()(const MuxMsg&) { return "MUX"; }
    std::string operator()(const MuxBatchMsg&) { return "MUX_BATCH"; }
    std::string operator()(const NodeFlushMsg&) { return "NODE_FLUSH"; }
    std::string operator()(const NodeFlushAckMsg&) { return "NODE_FLUSH_ACK"; }
  };
  return std::visit(Namer{}, message);
}

}  // namespace sbft
