// Threaded deployment of the register: n servers (optionally Byzantine)
// plus clients, each on its own OS thread, over in-process mailboxes or
// TCP loopback. Mirrors core/deployment.hpp for the real-concurrency
// setting (experiment E7, tcp_cluster example).
#pragma once

#include <chrono>
#include <map>

#include "core/byzantine.hpp"
#include "core/client.hpp"
#include "runtime/cluster.hpp"

namespace sbft {

class RegisterCluster {
 public:
  struct Options {
    ProtocolConfig config;
    bool use_tcp = false;
    std::size_t n_clients = 1;
    std::map<std::size_t, ByzantineStrategy> byzantine;
    std::uint64_t seed = 1;
    /// Per-operation timeout; expired operations report kFailed (the
    /// asynchronous protocol never gives up on its own).
    std::chrono::milliseconds op_timeout{10'000};
  };

  explicit RegisterCluster(Options options);
  ~RegisterCluster() { Stop(); }

  void Start() { cluster_.Start(); }
  void Stop() { cluster_.Stop(); }

  /// Synchronous operations, safe to call from any external thread
  /// (each client must be driven by one external thread at a time).
  WriteOutcome Write(std::size_t client, Value value);
  ReadOutcome Read(std::size_t client);

  [[nodiscard]] const ProtocolConfig& config() const { return config_; }
  [[nodiscard]] ThreadCluster& cluster() { return cluster_; }
  [[nodiscard]] std::size_t n_clients() const { return clients_.size(); }

 private:
  ProtocolConfig config_;
  ThreadCluster cluster_;
  std::chrono::milliseconds op_timeout_;
  std::vector<RegisterClient*> clients_;
  std::vector<NodeId> client_ids_;
};

}  // namespace sbft
