// Fixture: clock value seeding state in the deterministic zone. The
// token-level rule cannot tell this apart from harmless elapsed-time
// reporting; the flow-aware check must: the steady_clock read flows
// into Seed() (state) and into a member (state), not into
// count()/comparison (reporting). Expected: exactly one check trips —
// wall-clock-flow.

#include <chrono>
#include <cstdint>

namespace sbft {

class Rng {
 public:
  void Seed(std::uint64_t seed);
};

class Campaign {
 public:
  void Start() {
    auto started = std::chrono::steady_clock::now();
    rng_.Seed(started.time_since_epoch().count());
    epoch_ = started;
  }

 private:
  Rng rng_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace sbft
