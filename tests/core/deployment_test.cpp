// The Deployment harness itself: id layout, fault helpers, accounting.
#include "core/deployment.hpp"

#include <gtest/gtest.h>

namespace sbft {
namespace {

TEST(DeploymentHarness, NodeIdLayout) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.n_clients = 2;
  Deployment deployment(std::move(options));
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(deployment.server_node(i), static_cast<NodeId>(i));
  }
  EXPECT_EQ(deployment.client_node(0), 6u);
  EXPECT_EQ(deployment.client_node(1), 7u);
  EXPECT_EQ(deployment.n_clients(), 2u);
}

TEST(DeploymentHarness, ByzantineMapRespected) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.byzantine[4] = ByzantineStrategy::kSilent;
  Deployment deployment(std::move(options));
  EXPECT_TRUE(deployment.is_byzantine(4));
  EXPECT_FALSE(deployment.is_byzantine(0));
}

TEST(DeploymentHarness, TooManyByzantineRejected) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);  // f = 1
  options.byzantine[0] = ByzantineStrategy::kSilent;
  options.byzantine[1] = ByzantineStrategy::kSilent;
  EXPECT_THROW(Deployment{std::move(options)}, InvariantViolation);
}

TEST(DeploymentHarness, FramesSentAccountingPerOp) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  Deployment deployment(std::move(options));
  auto write = deployment.Write(0, Value{1});
  EXPECT_GT(write.frames_sent, 0u);
  const auto total = deployment.world().stats().frames_sent;
  auto read = deployment.Read(0);
  EXPECT_GT(read.frames_sent, 0u);
  EXPECT_GE(deployment.world().stats().frames_sent,
            total + read.frames_sent);
}

TEST(DeploymentHarness, CorruptAllCorrectServersSkipsByzantine) {
  // The Byzantine server is an adversary, not a corruption target; the
  // helper must leave it alone (its CorruptState is often a no-op
  // anyway, but the contract matters for experiment bookkeeping).
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.byzantine[2] = ByzantineStrategy::kStaleReplay;
  Deployment deployment(std::move(options));
  const auto before = deployment.server(2).current();
  deployment.CorruptAllCorrectServers();
  EXPECT_EQ(deployment.server(2).current(), before);
}

TEST(DeploymentHarness, EventCapSurfacesAsIncomplete) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  Deployment deployment(std::move(options));
  // Hold every server's replies: the write cannot complete and the
  // driver must report completed == false instead of hanging.
  for (std::size_t s = 0; s < 6; ++s) {
    deployment.world().HoldChannel(deployment.server_node(s),
                                   deployment.client_node(0));
  }
  auto write = deployment.Write(0, Value{1}, /*max_events=*/10'000);
  EXPECT_FALSE(write.completed);
}

}  // namespace
}  // namespace sbft
