#include "core/server.hpp"

#include <algorithm>
#include <utility>

#include "common/buffer_pool.hpp"

namespace sbft {

RegisterServer::RegisterServer(ProtocolConfig config, std::size_t server_index)
    : config_(config), labels_(config.k), index_(server_index) {
  config_.Validate();
  current_.ts = Timestamp{labels_.Initial(), 0};
}

void RegisterServer::OnFrame(NodeId from, BytesView frame,
                             IEndpoint& endpoint) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;  // garbage frame: drop (transient corruption)
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<GetTsMsg>(&message)) {
    HandleGetTs(from, *m, endpoint);
  }
  if (const auto* m = std::get_if<WriteMsg>(&message)) {
    HandleWrite(from, *m, endpoint);
  }
  if (const auto* m = std::get_if<ReadMsg>(&message)) {
    HandleRead(from, *m, endpoint);
  }
  if (const auto* m = std::get_if<CompleteReadMsg>(&message)) {
    HandleCompleteRead(from, *m, endpoint);
  }
  if (const auto* m = std::get_if<FlushMsg>(&message)) {
    HandleFlush(from, *m, endpoint);
  }
  // Messages of other protocols (baselines) are ignored.
}

void RegisterServer::HandleGetTs(NodeId from, const GetTsMsg& msg,
                                 IEndpoint& endpoint) {
  // Sanitize before exporting: a corrupted local label must not force
  // the writer to cope with structural garbage.
  TsReplyMsg reply;
  reply.ts = Timestamp{labels_.Sanitize(current_.ts.label),
                       current_.ts.writer_id};
  reply.op_label = msg.op_label;
  endpoint.Send(from, EncodeMessage(Message(std::move(reply))));
}

void RegisterServer::HandleWrite(NodeId from, const WriteMsg& msg,
                                 IEndpoint& endpoint) {
  // ACK iff the incoming timestamp follows the local one (Figure 1
  // server side).
  Timestamp incoming{labels_.Sanitize(msg.ts.label), msg.ts.writer_id};
  Timestamp local{labels_.Sanitize(current_.ts.label), current_.ts.writer_id};

  WriteReplyMsg reply;
  reply.ack = Precedes(local, incoming, labels_.params());
  reply.op_label = msg.op_label;
  endpoint.Send(from, EncodeMessage(Message(reply)));

  // Adoption. The paper says "in any case, any server updates its local
  // copy" — unconditional adoption is what makes a corrupted server
  // recover. Literal last-arrival-wins, however, leaves the population
  // permanently split after two concurrent writes with incomparable
  // labels (different reads then certify different branches — a
  // Consistency violation; DESIGN.md gap #4). We therefore adopt
  // *convergently*: reject only when the incoming timestamp is strictly
  // older under the deterministic pairwise order (label precedence,
  // identifiers for equal or incomparable labels — Lemma 8's ordering).
  // Every server then settles on the same member of a concurrent pair
  // regardless of arrival order. Stabilization is preserved: a write
  // whose next() folded in this server's (sanitized) label always
  // dominates it and is adopted, so a garbage-stuck server is unstuck
  // by the next write that samples it.
  bool adopt = true;
  if (labels_.IsValid(incoming.label) && labels_.IsValid(local.label)) {
    if (Precedes(incoming.label, local.label, labels_.params())) {
      adopt = false;  // strictly older by label
    } else if (Precedes(local.label, incoming.label, labels_.params())) {
      adopt = true;
    } else {
      // Equal or incomparable labels: identifiers decide; ties adopt
      // (identical timestamp, e.g. a retransmission).
      adopt = incoming.writer_id >= local.writer_id;
    }
  }
  // The write's value is a view into the frame; copy it as it enters
  // server state.
  if (adopt) {
    old_vals_.push_front(std::move(current_));
    current_ = VersionedValue{ToBytes(msg.value), incoming};
  } else {
    // Keep the rejected value witnessed in history: a read racing the
    // losing branch of a concurrent pair may still need to certify it
    // through the union graph.
    old_vals_.push_front(VersionedValue{ToBytes(msg.value), incoming});
  }
  while (old_vals_.size() > config_.history_window) old_vals_.pop_back();
  reply_prefix_valid_ = false;  // state changed on every branch above

  // Forward the new value to every reader currently registered
  // (Figure 1: "the server forwards the new written value to all the
  // concurrent readers stored in running_read_i"). Each reader's reply
  // differs only in its trailing op label, so all of them splice the
  // shared cached prefix.
  if (!config_.forward_to_running_reads) return;
  if (running_reads_.empty()) return;
  RebuildReplyPrefix();
  for (const auto& [reader, label] : running_reads_) {
    endpoint.Send(reader, ReplyFrameFor(label));
  }
}

void RegisterServer::HandleRead(NodeId from, const ReadMsg& msg,
                                IEndpoint& endpoint) {
  // Register the reader (bounded table, evicting oldest: the paper
  // bounds it by the client population; garbage entries from transient
  // faults get evicted by churn).
  const auto entry = std::make_pair(from, msg.label);
  if (std::find(running_reads_.begin(), running_reads_.end(), entry) ==
      running_reads_.end()) {
    running_reads_.push_back(entry);
    while (running_reads_.size() > config_.max_running_reads) {
      running_reads_.pop_front();
    }
  }

  if (!reply_prefix_valid_) RebuildReplyPrefix();
  endpoint.Send(from, ReplyFrameFor(msg.label));
}

Bytes RegisterServer::ReplyFrameFor(OpLabel label) {
  BufWriter w(FramePool().Acquire());
  w.Reserve(reply_prefix_.size() + sizeof(OpLabel));
  w.PutRaw(reply_prefix_);
  w.Put<OpLabel>(label);
  return w.Take();
}

void RegisterServer::RebuildReplyPrefix() {
  // Sanitize before exporting, as HandleGetTs does: a corrupted local
  // label must not hand readers structural garbage. Encoding through
  // the regular codec with a placeholder label and truncating it keeps
  // the cached bytes byte-identical to the unbatched encode (the op
  // label is the final, fixed-width field of ReplyMsg).
  ReplyMsg reply;
  reply.value = current_.value;
  reply.ts = Timestamp{labels_.Sanitize(current_.ts.label),
                       current_.ts.writer_id};
  reply.old_vals.reserve(old_vals_.size());
  for (const VersionedValue& v : old_vals_) {
    reply.old_vals.push_back(AsWire(v));
  }
  reply.label = 0;
  Bytes frame = EncodeMessage(Message(std::move(reply)));
  SBFT_ASSERT(frame.size() >= sizeof(OpLabel));
  frame.resize(frame.size() - sizeof(OpLabel));
  reply_prefix_ = std::move(frame);
  reply_prefix_valid_ = true;
}

void RegisterServer::HandleCompleteRead(NodeId from,
                                        const CompleteReadMsg& msg,
                                        IEndpoint&) {
  const auto entry = std::make_pair(from, msg.label);
  auto it = std::find(running_reads_.begin(), running_reads_.end(), entry);
  if (it != running_reads_.end()) running_reads_.erase(it);
}

void RegisterServer::HandleFlush(NodeId from, const FlushMsg& msg,
                                 IEndpoint& endpoint) {
  FlushAckMsg ack;
  ack.label = msg.label;
  ack.scope = msg.scope;
  endpoint.Send(from, EncodeMessage(Message(ack)));
}

void RegisterServer::CorruptState(Rng& rng) {
  // Arbitrary local state: garbage value, garbage (possibly invalid)
  // label, garbage history and garbage reader table.
  current_.value = RandomBytes(rng, 1 + rng.NextBelow(8));
  current_.ts = Timestamp{RandomGarbageLabel(rng, labels_.params()),
                          static_cast<ClientId>(rng())};
  old_vals_.clear();
  const auto history = rng.NextBelow(config_.history_window + 1);
  for (std::uint64_t i = 0; i < history; ++i) {
    old_vals_.push_back(
        VersionedValue{RandomBytes(rng, 1 + rng.NextBelow(8)),
                       Timestamp{RandomGarbageLabel(rng, labels_.params()),
                                 static_cast<ClientId>(rng())}});
  }
  running_reads_.clear();
  const auto readers = rng.NextBelow(4);
  for (std::uint64_t i = 0; i < readers; ++i) {
    running_reads_.emplace_back(static_cast<NodeId>(rng.NextBelow(64)),
                                static_cast<OpLabel>(rng.NextBelow(8)));
  }
  reply_prefix_valid_ = false;
}

}  // namespace sbft
