#include "sim/trace.hpp"

#include <sstream>

namespace sbft {
namespace {

const char* KindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend:
      return "send";
    case TraceKind::kDeliver:
      return "deliver";
    case TraceKind::kDrop:
      return "drop";
    case TraceKind::kTimerFired:
      return "timer";
    case TraceKind::kNodeCorrupted:
      return "corrupt-node";
    case TraceKind::kChannelCorrupted:
      return "corrupt-channel";
    case TraceKind::kNodeStopped:
      return "stop-node";
  }
  return "unknown";
}

void PutNode(std::ostringstream& out, NodeId id) {
  if (id == kNoNode) {
    out << "-";
  } else {
    out << "n" << id;
  }
}

}  // namespace

std::string FormatTraceEvent(const TraceEvent& event,
                             const PayloadDescriber& describe) {
  std::ostringstream out;
  out << "t=" << event.time << " " << KindName(event.kind) << " ";
  PutNode(out, event.src);
  out << "->";
  PutNode(out, event.dst);
  if (event.frame_size > 0) {
    out << " [" << event.frame_size << "B";
    if (describe && event.payload) out << " " << describe(event.frame());
    out << "]";
  }
  return out.str();
}

std::string FormatTrace(const std::vector<TraceEvent>& events,
                        const PayloadDescriber& describe) {
  std::ostringstream out;
  for (const TraceEvent& event : events) {
    out << FormatTraceEvent(event, describe) << "\n";
  }
  return out.str();
}

}  // namespace sbft
