// Fixture: reporting-only clock use (the src/fuzz/campaign.cpp
// pattern that used to need a whole-file sbft_lint allowlist entry).
// The clock feeds elapsed/budget arithmetic, count() and comparisons —
// never a call that could seed scenario state. Expected: clean.

#include <chrono>
#include <cstdint>

namespace sbft {

class Campaign {
 public:
  bool BudgetExpired(std::uint64_t budget_seconds) {
    auto started = std::chrono::steady_clock::now();
    RunOne();
    auto elapsed = std::chrono::steady_clock::now() - started;
    auto elapsed_s =
        std::chrono::duration_cast<std::chrono::seconds>(elapsed);
    return static_cast<std::uint64_t>(elapsed_s.count()) >= budget_seconds;
  }

 private:
  void RunOne();
};

}  // namespace sbft
