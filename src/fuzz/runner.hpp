// Deterministic scenario execution: Scenario in, checked history out.
//
// The runner is the bridge between the fuzz grammar and the simulator:
// it deploys the scenario's topology, plants the Byzantine mix, arms
// the delay overrides and fault injections, drives the randomized
// workload, and judges the resulting history with the regular-register
// checker. Everything is derived from the Scenario fields alone, so a
// replayed token reproduces the original execution byte-for-byte.
#pragma once

#include <string>

#include "fuzz/scenario.hpp"
#include "spec/history.hpp"
#include "spec/regular_checker.hpp"

namespace sbft::fuzz {

struct RunOptions {
  /// Record and export the full message trace (expensive; replay only).
  bool record_trace = false;
  /// Passed through to CheckOptions::max_violations.
  std::size_t max_violations = 8;
};

struct RunOutcome {
  /// False when the event cap interrupted the workload (a liveness
  /// observation, reported separately from safety violations).
  bool all_completed = true;
  /// Start of the judged suffix: the return time of the first complete
  /// write invoked after the last fault injection (Definition 1 /
  /// Theorem 2 re-anchored past the final transient fault). kTimeForever
  /// when no such write completed — the check is then vacuous.
  VirtualTime stabilized_from = 0;
  CheckReport report;
  History history;
  /// Reads judged inside the stabilized window (coverage signal: a run
  /// where this is 0 proved nothing).
  std::size_t checked_reads = 0;
  std::size_t reads_aborted = 0;
  std::size_t ops_failed = 0;
  /// Message trace (RunOptions::record_trace only), one event per line.
  std::string trace;

  [[nodiscard]] bool violation() const { return !report.ok; }
};

/// Execute `scenario` start to finish. The scenario is normalized first;
/// pass only scenarios whose Normalize() is a no-op (generator output
/// and decoded tokens both are) if token-exact reproduction matters.
[[nodiscard]] RunOutcome RunScenario(const Scenario& scenario,
                                     const RunOptions& options = {});

}  // namespace sbft::fuzz
