#include "baselines/bft_unbounded.hpp"

#include <algorithm>
#include <limits>

namespace sbft {

void BuServer::OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<BuGetTsMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(BuTsReplyMsg{m->rid, ts_})));
  } else if (const auto* m = std::get_if<BuWriteMsg>(&message)) {
    if (ts_ < m->ts) {
      ts_ = m->ts;
      value_ = ToBytes(m->value);  // copy the frame-borrowed view into state
    }
    endpoint.Send(from, EncodeMessage(Message(BuWriteAckMsg{m->rid})));
  } else if (const auto* m = std::get_if<BuReadMsg>(&message)) {
    endpoint.Send(from,
                  EncodeMessage(Message(BuReadReplyMsg{m->rid, ts_, value_})));
  }
}

void BuServer::CorruptState(Rng& rng) {
  ts_.seq = rng();
  if (rng.NextBool(0.5)) ts_.seq |= 0xF000000000000000ull;
  ts_.writer_id = static_cast<std::uint32_t>(rng());
  value_ = RandomBytes(rng, 1 + rng.NextBelow(8));
}

void BuByzantineServer::OnFrame(NodeId from, BytesView frame,
                                IEndpoint& endpoint) {
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();
  const UnboundedTs huge{std::numeric_limits<std::uint64_t>::max(),
                         static_cast<std::uint32_t>(rng_())};
  if (const auto* m = std::get_if<BuGetTsMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(BuTsReplyMsg{m->rid, huge})));
  } else if (const auto* m = std::get_if<BuWriteMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(BuWriteAckMsg{m->rid})));
  } else if (const auto* m = std::get_if<BuReadMsg>(&message)) {
    endpoint.Send(from, EncodeMessage(Message(BuReadReplyMsg{
                            m->rid, huge, RandomBytes(rng_, 4)})));
  }
}

BuClient::BuClient(std::vector<NodeId> servers, std::uint32_t f,
                   std::uint32_t client_id)
    : servers_(std::move(servers)), f_(f), client_id_(client_id) {
  SBFT_ASSERT(servers_.size() >= 3 * static_cast<std::size_t>(f) + 1);
}

void BuClient::OnStart(IEndpoint& endpoint) { endpoint_ = &endpoint; }

std::optional<std::size_t> BuClient::ServerIndex(NodeId node) const {
  auto it = std::find(servers_.begin(), servers_.end(), node);
  if (it == servers_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - servers_.begin());
}

void BuClient::StartWrite(Value value, std::function<void(bool)> callback) {
  SBFT_ASSERT(endpoint_ != nullptr && idle());
  write_value_ = std::move(value);
  write_callback_ = std::move(callback);
  collected_ts_.clear();
  phase_ = Phase::kGetTs;
  ++rid_;
  endpoint_->Broadcast(servers_, EncodeMessage(Message(BuGetTsMsg{rid_})));
}

void BuClient::StartRead(std::function<void(const BuReadOutcome&)> callback) {
  SBFT_ASSERT(endpoint_ != nullptr && idle());
  read_callback_ = std::move(callback);
  read_replies_.clear();
  phase_ = Phase::kRead;
  ++rid_;
  endpoint_->Broadcast(servers_, EncodeMessage(Message(BuReadMsg{rid_})));
}

void BuClient::OnFrame(NodeId from, BytesView frame, IEndpoint&) {
  const auto index = ServerIndex(from);
  if (!index) return;
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) return;
  const Message& message = decoded.value();

  if (const auto* m = std::get_if<BuTsReplyMsg>(&message)) {
    if (phase_ != Phase::kGetTs || m->rid != rid_) return;
    collected_ts_.emplace(*index, m->ts);
    if (collected_ts_.size() < Quorum()) return;
    // Mask Byzantine inflation: up to f of the reported timestamps may
    // be arbitrarily large lies, so advance from the (f+1)-th largest
    // (standard in BFT storage; cf. non-skipping timestamps). This
    // defends against lying servers but NOT against transient
    // corruption of f+1 or more correct servers — the unbounded
    // timestamp then saturates and the register never recovers, which
    // is the failure mode experiment E5 contrasts with bounded labels.
    std::vector<UnboundedTs> sorted;
    sorted.reserve(collected_ts_.size());
    for (const auto& [idx, ts] : collected_ts_) sorted.push_back(ts);
    std::sort(sorted.begin(), sorted.end(),
              [](const UnboundedTs& a, const UnboundedTs& b) { return b < a; });
    const UnboundedTs base = sorted[f_];
    UnboundedTs new_ts{base.seq == std::numeric_limits<std::uint64_t>::max()
                           ? base.seq
                           : base.seq + 1,
                       client_id_};
    phase_ = Phase::kWrite;
    write_acks_.clear();
    endpoint_->Broadcast(
        servers_, EncodeMessage(Message(BuWriteMsg{rid_, new_ts,
                                                   write_value_})));
  } else if (const auto* m = std::get_if<BuWriteAckMsg>(&message)) {
    if (phase_ != Phase::kWrite || m->rid != rid_) return;
    write_acks_.insert(*index);
    if (write_acks_.size() >= Quorum()) {
      phase_ = Phase::kIdle;
      if (write_callback_) {
        auto callback = std::move(write_callback_);
        write_callback_ = nullptr;
        callback(true);
      }
    }
  } else if (const auto* m = std::get_if<BuReadReplyMsg>(&message)) {
    if (phase_ != Phase::kRead || m->rid != rid_) return;
    read_replies_.emplace(*index, std::make_pair(m->ts, ToBytes(m->value)));
    if (read_replies_.size() >= Quorum()) {
      // Certify: identical (ts, value) reported by >= f+1 servers; take
      // the maximal certified pair.
      BuReadOutcome outcome;
      for (const auto& [idx, reply] : read_replies_) {
        std::size_t witnesses = 0;
        for (const auto& [idx2, reply2] : read_replies_) {
          if (reply2 == reply) ++witnesses;
        }
        if (witnesses >= f_ + 1 && (!outcome.ok || outcome.ts < reply.first)) {
          outcome.ok = true;
          outcome.ts = reply.first;
          outcome.value = reply.second;
        }
      }
      phase_ = Phase::kIdle;
      if (read_callback_) {
        auto callback = std::move(read_callback_);
        read_callback_ = nullptr;
        callback(outcome);
      }
    }
  }
}

void BuClient::CorruptState(Rng& rng) {
  rid_ = rng();
  if (phase_ != Phase::kIdle) {
    phase_ = Phase::kIdle;
    if (write_callback_) {
      auto callback = std::move(write_callback_);
      write_callback_ = nullptr;
      callback(false);
    }
    if (read_callback_) {
      auto callback = std::move(read_callback_);
      read_callback_ = nullptr;
      callback(BuReadOutcome{});
    }
  }
}

}  // namespace sbft
