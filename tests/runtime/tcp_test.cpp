// TcpBus unit tests: framing, lazy connect, bidirectional traffic,
// queue-and-flush batching, clean shutdown, and error degradation.
#include "runtime/tcp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace sbft {
namespace {

struct Collector {
  void Deliver(NodeId dst, std::vector<TcpBus::Delivery>&& batch) {
    std::lock_guard<std::mutex> lock(mutex);
    for (auto& delivery : batch) {
      received.push_back({delivery.src, dst, std::move(delivery.frame)});
    }
  }
  struct Item {
    NodeId src;
    NodeId dst;
    Bytes frame;
  };
  std::mutex mutex;
  std::vector<Item> received;

  std::size_t Count() {
    std::lock_guard<std::mutex> lock(mutex);
    return received.size();
  }
  bool WaitFor(std::size_t n, int ms = 5000) {
    for (int waited = 0; waited < ms; ++waited) {
      if (Count() >= n) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Count() >= n;
  }
};

TcpBus::DeliverFn Into(Collector& collector) {
  return [&collector](NodeId dst, std::vector<TcpBus::Delivery>&& batch) {
    collector.Deliver(dst, std::move(batch));
  };
}

TEST(TcpBus, RoundTripOneFrame) {
  Collector collector;
  TcpBus bus(Into(collector));
  bus.AddNode(0);
  bus.AddNode(1);
  bus.Start();

  ASSERT_TRUE(bus.Send(0, 1, Bytes{1, 2, 3}));
  bus.Flush(0);
  ASSERT_TRUE(collector.WaitFor(1));
  EXPECT_EQ(collector.received[0].src, 0u);
  EXPECT_EQ(collector.received[0].dst, 1u);
  EXPECT_EQ(collector.received[0].frame, (Bytes{1, 2, 3}));
  bus.Stop();
}

TEST(TcpBus, ManyFramesPreserveOrderPerConnection) {
  Collector collector;
  TcpBus bus(Into(collector));
  bus.AddNode(0);
  bus.AddNode(1);
  bus.Start();
  // Queue the whole burst, then flush once: the frames coalesce into
  // very few sendmsg calls but must still arrive in order.
  for (std::uint8_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(bus.Send(0, 1, Bytes{i}));
  }
  bus.Flush(0);
  ASSERT_TRUE(collector.WaitFor(50));
  for (std::uint8_t i = 0; i < 50; ++i) {
    EXPECT_EQ(collector.received[i].frame, Bytes{i});  // TCP is FIFO
  }
  bus.Stop();
}

TEST(TcpBus, BidirectionalAndEmptyFrames) {
  Collector collector;
  TcpBus bus(Into(collector));
  bus.AddNode(0);
  bus.AddNode(1);
  bus.Start();
  ASSERT_TRUE(bus.Send(0, 1, Bytes{}));
  ASSERT_TRUE(bus.Send(1, 0, Bytes{9}));
  bus.Flush(0);
  bus.Flush(1);
  ASSERT_TRUE(collector.WaitFor(2));
  bus.Stop();
}

TEST(TcpBus, FlushCoalescesInterleavedDestinations) {
  Collector collector;
  TcpBus bus(Into(collector));
  bus.AddNode(0);
  bus.AddNode(1);
  bus.AddNode(2);
  bus.Start();
  for (std::uint8_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(bus.Send(0, 1 + (i % 2), Bytes{i}));
  }
  bus.Flush(0);
  ASSERT_TRUE(collector.WaitFor(20));
  // Per-destination order must hold even though sends interleaved.
  std::vector<std::uint8_t> to1, to2;
  {
    std::lock_guard<std::mutex> lock(collector.mutex);
    for (const auto& item : collector.received) {
      (item.dst == 1 ? to1 : to2).push_back(item.frame.at(0));
    }
  }
  ASSERT_EQ(to1.size(), 10u);
  ASSERT_EQ(to2.size(), 10u);
  EXPECT_TRUE(std::is_sorted(to1.begin(), to1.end()));
  EXPECT_TRUE(std::is_sorted(to2.begin(), to2.end()));
  bus.Stop();
}

TEST(TcpBus, SendToUnknownNodeFails) {
  Collector collector;
  TcpBus bus(Into(collector));
  bus.AddNode(0);
  bus.Start();
  EXPECT_FALSE(bus.Send(0, 99, Bytes{1}));
  bus.Stop();
}

TEST(TcpBus, SendAfterStopFails) {
  Collector collector;
  TcpBus bus(Into(collector));
  bus.AddNode(0);
  bus.AddNode(1);
  bus.Start();
  bus.Stop();
  EXPECT_FALSE(bus.Send(0, 1, Bytes{1}));
}

TEST(TcpBus, StopIsIdempotent) {
  Collector collector;
  TcpBus bus(Into(collector));
  bus.AddNode(0);
  bus.Start();
  bus.Stop();
  bus.Stop();  // must not hang or crash
}

TEST(TcpBus, DroppedConnectionDegradesAndReconnects) {
  Collector collector;
  TcpBus bus(Into(collector));
  bus.AddNode(0);
  bus.AddNode(1);
  bus.Start();
  ASSERT_TRUE(bus.Send(0, 1, Bytes{1}));
  bus.Flush(0);
  ASSERT_TRUE(collector.WaitFor(1));

  bus.DropConnection(0, 1);
  EXPECT_GE(bus.connections_dropped(), 1u);

  // The next send lazily reconnects; traffic resumes without a crash.
  bool sent = false;
  for (int attempt = 0; attempt < 100 && !sent; ++attempt) {
    sent = bus.Send(0, 1, Bytes{2});
    if (!sent) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(sent);
  bus.Flush(0);
  ASSERT_TRUE(collector.WaitFor(2));
  EXPECT_EQ(collector.received[1].frame, Bytes{2});
  bus.Stop();
}

TEST(TcpBus, StopWithQueuedUnflushedWrites) {
  Collector collector;
  TcpBus bus(Into(collector));
  bus.AddNode(0);
  bus.AddNode(1);
  bus.Start();
  for (std::uint8_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(bus.Send(0, 1, Bytes{i}));
  }
  // No Flush: Stop must tear down cleanly with bytes still queued.
  bus.Stop();
}

TEST(TcpBus, MultipleReactorThreads) {
  Collector collector;
  TcpBus::Options options;
  options.reactor_threads = 3;
  TcpBus bus(Into(collector), options);
  const std::size_t kNodes = 4;
  for (NodeId id = 0; id < kNodes; ++id) bus.AddNode(id);
  bus.Start();
  for (NodeId src = 0; src < kNodes; ++src) {
    for (NodeId dst = 0; dst < kNodes; ++dst) {
      if (src == dst) continue;
      ASSERT_TRUE(bus.Send(src, dst, Bytes{static_cast<std::uint8_t>(src),
                                           static_cast<std::uint8_t>(dst)}));
    }
    bus.Flush(src);
  }
  ASSERT_TRUE(collector.WaitFor(kNodes * (kNodes - 1)));
  bus.Stop();
}

}  // namespace
}  // namespace sbft
