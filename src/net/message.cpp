#include "net/message.hpp"

namespace sbft {
namespace {

// Explicit wire tags (stable across refactors of the variant order).
enum class Tag : std::uint8_t {
  kGetTs = 1,
  kTsReply = 2,
  kWrite = 3,
  kWriteReply = 4,
  kRead = 5,
  kReply = 6,
  kCompleteRead = 7,
  kFlush = 8,
  kFlushAck = 9,
  kAbdRead = 20,
  kAbdReadReply = 21,
  kAbdWrite = 22,
  kAbdWriteAck = 23,
  kAbdGetTs = 24,
  kAbdTsReply = 25,
  kBuGetTs = 30,
  kBuTsReply = 31,
  kBuWrite = 32,
  kBuWriteAck = 33,
  kBuRead = 34,
  kBuReadReply = 35,
  kNqGetTs = 40,
  kNqTsReply = 41,
  kNqWrite = 42,
  kNqWriteAck = 43,
  kNqRead = 44,
  kNqReadReply = 45,
  kMux = 60,
};

void EncodeBody(BufWriter& w, const GetTsMsg& m) {
  w.Put<Tag>(Tag::kGetTs);
  w.Put<OpLabel>(m.op_label);
}
void EncodeBody(BufWriter& w, const TsReplyMsg& m) {
  w.Put<Tag>(Tag::kTsReply);
  m.ts.Encode(w);
  w.Put<OpLabel>(m.op_label);
}
void EncodeBody(BufWriter& w, const WriteMsg& m) {
  w.Put<Tag>(Tag::kWrite);
  w.PutBytes(m.value);
  m.ts.Encode(w);
  w.Put<OpLabel>(m.op_label);
}
void EncodeBody(BufWriter& w, const WriteReplyMsg& m) {
  w.Put<Tag>(Tag::kWriteReply);
  w.Put<std::uint8_t>(m.ack ? 1 : 0);
  w.Put<OpLabel>(m.op_label);
}
void EncodeBody(BufWriter& w, const ReadMsg& m) {
  w.Put<Tag>(Tag::kRead);
  w.Put<OpLabel>(m.label);
}
void EncodeBody(BufWriter& w, const ReplyMsg& m) {
  w.Put<Tag>(Tag::kReply);
  w.PutBytes(m.value);
  m.ts.Encode(w);
  w.PutVector(m.old_vals,
              [](BufWriter& bw, const VersionedValue& v) { v.Encode(bw); });
  w.Put<OpLabel>(m.label);
}
void EncodeBody(BufWriter& w, const CompleteReadMsg& m) {
  w.Put<Tag>(Tag::kCompleteRead);
  w.Put<OpLabel>(m.label);
}
void EncodeBody(BufWriter& w, const FlushMsg& m) {
  w.Put<Tag>(Tag::kFlush);
  w.Put<OpLabel>(m.label);
  w.Put<OpScope>(m.scope);
}
void EncodeBody(BufWriter& w, const FlushAckMsg& m) {
  w.Put<Tag>(Tag::kFlushAck);
  w.Put<OpLabel>(m.label);
  w.Put<OpScope>(m.scope);
}
void EncodeBody(BufWriter& w, const AbdReadMsg& m) {
  w.Put<Tag>(Tag::kAbdRead);
  w.Put<std::uint64_t>(m.rid);
}
void EncodeBody(BufWriter& w, const AbdReadReplyMsg& m) {
  w.Put<Tag>(Tag::kAbdReadReply);
  w.Put<std::uint64_t>(m.rid);
  m.ts.Encode(w);
  w.PutBytes(m.value);
}
void EncodeBody(BufWriter& w, const AbdWriteMsg& m) {
  w.Put<Tag>(Tag::kAbdWrite);
  w.Put<std::uint64_t>(m.rid);
  m.ts.Encode(w);
  w.PutBytes(m.value);
}
void EncodeBody(BufWriter& w, const AbdWriteAckMsg& m) {
  w.Put<Tag>(Tag::kAbdWriteAck);
  w.Put<std::uint64_t>(m.rid);
}
void EncodeBody(BufWriter& w, const AbdGetTsMsg& m) {
  w.Put<Tag>(Tag::kAbdGetTs);
  w.Put<std::uint64_t>(m.rid);
}
void EncodeBody(BufWriter& w, const AbdTsReplyMsg& m) {
  w.Put<Tag>(Tag::kAbdTsReply);
  w.Put<std::uint64_t>(m.rid);
  m.ts.Encode(w);
}
void EncodeBody(BufWriter& w, const BuGetTsMsg& m) {
  w.Put<Tag>(Tag::kBuGetTs);
  w.Put<std::uint64_t>(m.rid);
}
void EncodeBody(BufWriter& w, const BuTsReplyMsg& m) {
  w.Put<Tag>(Tag::kBuTsReply);
  w.Put<std::uint64_t>(m.rid);
  m.ts.Encode(w);
}
void EncodeBody(BufWriter& w, const BuWriteMsg& m) {
  w.Put<Tag>(Tag::kBuWrite);
  w.Put<std::uint64_t>(m.rid);
  m.ts.Encode(w);
  w.PutBytes(m.value);
}
void EncodeBody(BufWriter& w, const BuWriteAckMsg& m) {
  w.Put<Tag>(Tag::kBuWriteAck);
  w.Put<std::uint64_t>(m.rid);
}
void EncodeBody(BufWriter& w, const BuReadMsg& m) {
  w.Put<Tag>(Tag::kBuRead);
  w.Put<std::uint64_t>(m.rid);
}
void EncodeBody(BufWriter& w, const BuReadReplyMsg& m) {
  w.Put<Tag>(Tag::kBuReadReply);
  w.Put<std::uint64_t>(m.rid);
  m.ts.Encode(w);
  w.PutBytes(m.value);
}
void EncodeBody(BufWriter& w, const NqGetTsMsg& m) {
  w.Put<Tag>(Tag::kNqGetTs);
  w.Put<std::uint64_t>(m.rid);
}
void EncodeBody(BufWriter& w, const NqTsReplyMsg& m) {
  w.Put<Tag>(Tag::kNqTsReply);
  w.Put<std::uint64_t>(m.rid);
  m.ts.Encode(w);
}
void EncodeBody(BufWriter& w, const NqWriteMsg& m) {
  w.Put<Tag>(Tag::kNqWrite);
  w.Put<std::uint64_t>(m.rid);
  m.ts.Encode(w);
  w.PutBytes(m.value);
}
void EncodeBody(BufWriter& w, const NqWriteAckMsg& m) {
  w.Put<Tag>(Tag::kNqWriteAck);
  w.Put<std::uint64_t>(m.rid);
}
void EncodeBody(BufWriter& w, const NqReadMsg& m) {
  w.Put<Tag>(Tag::kNqRead);
  w.Put<std::uint64_t>(m.rid);
}
void EncodeBody(BufWriter& w, const NqReadReplyMsg& m) {
  w.Put<Tag>(Tag::kNqReadReply);
  w.Put<std::uint64_t>(m.rid);
  m.ts.Encode(w);
  w.PutBytes(m.value);
}
void EncodeBody(BufWriter& w, const MuxMsg& m) {
  w.Put<Tag>(Tag::kMux);
  w.Put<std::uint64_t>(m.register_id);
  w.PutBytes(m.inner);
}

template <typename T>
Message DecodeRid(BufReader& r) {
  T m;
  m.rid = r.Get<std::uint64_t>();
  return m;
}

}  // namespace

void VersionedValue::Encode(BufWriter& w) const {
  w.PutBytes(value);
  ts.Encode(w);
}

VersionedValue VersionedValue::Decode(BufReader& r) {
  VersionedValue v;
  v.value = r.GetBytes();
  v.ts = Timestamp::Decode(r);
  return v;
}

Bytes EncodeMessage(const Message& message) {
  BufWriter w;
  std::visit([&w](const auto& m) { EncodeBody(w, m); }, message);
  return w.Take();
}

Result<Message> DecodeMessage(BytesView frame) {
  BufReader r(frame);
  const auto tag = r.Get<Tag>();
  if (r.failed()) return Result<Message>::Err("empty frame");

  Message out;
  switch (tag) {
    case Tag::kGetTs: {
      GetTsMsg m;
      m.op_label = r.Get<OpLabel>();
      out = m;
      break;
    }
    case Tag::kTsReply: {
      TsReplyMsg m;
      m.ts = Timestamp::Decode(r);
      m.op_label = r.Get<OpLabel>();
      out = m;
      break;
    }
    case Tag::kWrite: {
      WriteMsg m;
      m.value = r.GetBytes();
      m.ts = Timestamp::Decode(r);
      m.op_label = r.Get<OpLabel>();
      out = m;
      break;
    }
    case Tag::kWriteReply: {
      WriteReplyMsg m;
      m.ack = r.Get<std::uint8_t>() != 0;
      m.op_label = r.Get<OpLabel>();
      out = m;
      break;
    }
    case Tag::kRead: {
      ReadMsg m;
      m.label = r.Get<OpLabel>();
      out = m;
      break;
    }
    case Tag::kReply: {
      ReplyMsg m;
      m.value = r.GetBytes();
      m.ts = Timestamp::Decode(r);
      m.old_vals = r.GetVector<VersionedValue>(
          [](BufReader& br) { return VersionedValue::Decode(br); });
      m.label = r.Get<OpLabel>();
      out = m;
      break;
    }
    case Tag::kCompleteRead: {
      CompleteReadMsg m;
      m.label = r.Get<OpLabel>();
      out = m;
      break;
    }
    case Tag::kFlush: {
      FlushMsg m;
      m.label = r.Get<OpLabel>();
      m.scope = r.Get<OpScope>();
      out = m;
      break;
    }
    case Tag::kFlushAck: {
      FlushAckMsg m;
      m.label = r.Get<OpLabel>();
      m.scope = r.Get<OpScope>();
      out = m;
      break;
    }
    case Tag::kAbdRead:
      out = DecodeRid<AbdReadMsg>(r);
      break;
    case Tag::kAbdReadReply: {
      AbdReadReplyMsg m;
      m.rid = r.Get<std::uint64_t>();
      m.ts = UnboundedTs::Decode(r);
      m.value = r.GetBytes();
      out = m;
      break;
    }
    case Tag::kAbdWrite: {
      AbdWriteMsg m;
      m.rid = r.Get<std::uint64_t>();
      m.ts = UnboundedTs::Decode(r);
      m.value = r.GetBytes();
      out = m;
      break;
    }
    case Tag::kAbdWriteAck:
      out = DecodeRid<AbdWriteAckMsg>(r);
      break;
    case Tag::kAbdGetTs:
      out = DecodeRid<AbdGetTsMsg>(r);
      break;
    case Tag::kAbdTsReply: {
      AbdTsReplyMsg m;
      m.rid = r.Get<std::uint64_t>();
      m.ts = UnboundedTs::Decode(r);
      out = m;
      break;
    }
    case Tag::kBuGetTs:
      out = DecodeRid<BuGetTsMsg>(r);
      break;
    case Tag::kBuTsReply: {
      BuTsReplyMsg m;
      m.rid = r.Get<std::uint64_t>();
      m.ts = UnboundedTs::Decode(r);
      out = m;
      break;
    }
    case Tag::kBuWrite: {
      BuWriteMsg m;
      m.rid = r.Get<std::uint64_t>();
      m.ts = UnboundedTs::Decode(r);
      m.value = r.GetBytes();
      out = m;
      break;
    }
    case Tag::kBuWriteAck:
      out = DecodeRid<BuWriteAckMsg>(r);
      break;
    case Tag::kBuRead:
      out = DecodeRid<BuReadMsg>(r);
      break;
    case Tag::kBuReadReply: {
      BuReadReplyMsg m;
      m.rid = r.Get<std::uint64_t>();
      m.ts = UnboundedTs::Decode(r);
      m.value = r.GetBytes();
      out = m;
      break;
    }
    case Tag::kNqGetTs:
      out = DecodeRid<NqGetTsMsg>(r);
      break;
    case Tag::kNqTsReply: {
      NqTsReplyMsg m;
      m.rid = r.Get<std::uint64_t>();
      m.ts = Timestamp::Decode(r);
      out = m;
      break;
    }
    case Tag::kNqWrite: {
      NqWriteMsg m;
      m.rid = r.Get<std::uint64_t>();
      m.ts = Timestamp::Decode(r);
      m.value = r.GetBytes();
      out = m;
      break;
    }
    case Tag::kNqWriteAck:
      out = DecodeRid<NqWriteAckMsg>(r);
      break;
    case Tag::kNqRead:
      out = DecodeRid<NqReadMsg>(r);
      break;
    case Tag::kNqReadReply: {
      NqReadReplyMsg m;
      m.rid = r.Get<std::uint64_t>();
      m.ts = Timestamp::Decode(r);
      m.value = r.GetBytes();
      out = m;
      break;
    }
    case Tag::kMux: {
      MuxMsg m;
      m.register_id = r.Get<std::uint64_t>();
      m.inner = r.GetBytes();
      out = std::move(m);
      break;
    }
    default:
      return Result<Message>::Err("unknown message tag");
  }
  if (!r.AtEndOk()) {
    return Result<Message>::Err("malformed frame for tag " +
                                std::to_string(static_cast<int>(tag)));
  }
  return Result<Message>::Ok(std::move(out));
}

std::string MessageTypeName(const Message& message) {
  struct Namer {
    std::string operator()(const GetTsMsg&) { return "GET_TS"; }
    std::string operator()(const TsReplyMsg&) { return "TS_REPLY"; }
    std::string operator()(const WriteMsg&) { return "WRITE"; }
    std::string operator()(const WriteReplyMsg& m) {
      return m.ack ? "ACK" : "NACK";
    }
    std::string operator()(const ReadMsg&) { return "READ"; }
    std::string operator()(const ReplyMsg&) { return "REPLY"; }
    std::string operator()(const CompleteReadMsg&) { return "COMPLETE_READ"; }
    std::string operator()(const FlushMsg&) { return "FLUSH"; }
    std::string operator()(const FlushAckMsg&) { return "FLUSH_ACK"; }
    std::string operator()(const AbdReadMsg&) { return "ABD_READ"; }
    std::string operator()(const AbdReadReplyMsg&) { return "ABD_READ_REPLY"; }
    std::string operator()(const AbdWriteMsg&) { return "ABD_WRITE"; }
    std::string operator()(const AbdWriteAckMsg&) { return "ABD_WRITE_ACK"; }
    std::string operator()(const AbdGetTsMsg&) { return "ABD_GET_TS"; }
    std::string operator()(const AbdTsReplyMsg&) { return "ABD_TS_REPLY"; }
    std::string operator()(const BuGetTsMsg&) { return "BU_GET_TS"; }
    std::string operator()(const BuTsReplyMsg&) { return "BU_TS_REPLY"; }
    std::string operator()(const BuWriteMsg&) { return "BU_WRITE"; }
    std::string operator()(const BuWriteAckMsg&) { return "BU_WRITE_ACK"; }
    std::string operator()(const BuReadMsg&) { return "BU_READ"; }
    std::string operator()(const BuReadReplyMsg&) { return "BU_READ_REPLY"; }
    std::string operator()(const NqGetTsMsg&) { return "NQ_GET_TS"; }
    std::string operator()(const NqTsReplyMsg&) { return "NQ_TS_REPLY"; }
    std::string operator()(const NqWriteMsg&) { return "NQ_WRITE"; }
    std::string operator()(const NqWriteAckMsg&) { return "NQ_WRITE_ACK"; }
    std::string operator()(const NqReadMsg&) { return "NQ_READ"; }
    std::string operator()(const NqReadReplyMsg&) { return "NQ_READ_REPLY"; }
    std::string operator()(const MuxMsg&) { return "MUX"; }
  };
  return std::visit(Namer{}, message);
}

}  // namespace sbft
