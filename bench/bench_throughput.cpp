// E7/E15: wall-clock throughput and latency on the threaded runtime
// (real OS threads; in-process mailboxes vs TCP loopback), n sweep,
// logical-client sweep, and sharded scale-out arms. This is the
// "threads/sockets" arm of the reproduction — absolute numbers are
// machine-dependent; the shapes to check are the mailbox-vs-TCP gap,
// the linear-in-n message cost showing up as latency, throughput
// scaling with pipelined clients, and (g<G>.* arms) aggregate
// throughput across G independent register groups behind the
// consistent-hash router.
//
// Every arm drives the multiplexed topology (one MuxClient node hosts
// all logical clients as independent registers) with an asynchronous
// closed loop: each logical client keeps exactly one operation in
// flight and issues the next from the completion callback. Per-op
// latency is charged from the op's INTENDED start — the previous op's
// completion stamp, taken inside the completion callback — so the
// callback-to-injection gap is part of the next op's latency rather
// than silently omitted (the coordinated-omission trap: stamping at
// send time lets a stalled client under-report exactly when the
// system is slow). p50/p99 therefore include queueing and are
// comparable across the mailbox and tcp transports, and come from the
// shared log-linear histogram (load/histogram.hpp, ~3% worst-case
// quantization), whose math tests/load/histogram_test.cpp pins down.
//
// Sharded arms additionally record the full operation history and run
// the per-key regular-register checker over it (g2.migrate.* does so
// THROUGH a live AddGroup epoch bump), reporting the violation count
// as a gated metric: scale-out must not cost regularity.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "load/histogram.hpp"
#include "load/stabilization.hpp"
#include "runtime/sharded_cluster.hpp"

using namespace sbft;
using namespace sbft::bench;

namespace {

using Clock = std::chrono::steady_clock;

struct Numbers {
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  long completed = 0;
  long failed = 0;
  /// Thread-CPU microseconds inside automaton dispatch per completed
  /// op, summed over all node threads (ThreadCluster::protocol_cpu_ns):
  /// the protocol-floor observable, with mailbox waits and socket
  /// syscalls excluded. Comparable across transports and batch modes.
  double protocol_cpu_us_per_op = 0;
  /// Per-key regular-register violations over the recorded history;
  /// -1 = this arm did not record a history (non-sharded arms).
  long regular_violations = -1;
};

/// Closed-loop load generator over the async register API (works for
/// both RegisterCluster and ShardedCluster — same AsyncWrite/AsyncRead
/// shape). Each logical client runs `pairs` write+read pairs.
/// Completion callbacks arrive on the mux client node thread — ONE
/// thread for a single cluster, G threads for a sharded deployment —
/// so the histogram and the optional history are mutex-guarded (an
/// uncontended lock per completed op, noise against the ~tens-of-µs
/// protocol round).
template <typename Cluster>
class ClosedLoop {
 public:
  /// `progress`, when set, is called with the running completed-op
  /// count after each completion (outside the internal lock) — the
  /// hook the migration arm uses to trigger AddGroup mid-run.
  ClosedLoop(Cluster& cluster, std::size_t n_clients, int pairs,
             bool record_history = false,
             std::function<void(long)> progress = nullptr)
      : cluster_(cluster),
        n_clients_(n_clients),
        pairs_(pairs),
        record_history_(record_history),
        progress_(std::move(progress)) {}

  Numbers Run() {
    t_begin_ = Clock::now();
    // Every client's first op is intended to start at the loop start;
    // injection order skew across clients is queueing, and counts.
    for (std::size_t c = 0; c < n_clients_; ++c) InjectWrite(c, 0, t_begin_);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [this] { return done_clients_ == n_clients_; });
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t_begin_).count();

    Numbers numbers;
    numbers.completed = static_cast<long>(histogram_.count());
    numbers.failed = failed_.load();
    numbers.ops_per_sec = static_cast<double>(numbers.completed) / seconds;
    numbers.p50_us = static_cast<double>(histogram_.Percentile(0.5));
    numbers.p99_us = static_cast<double>(histogram_.Percentile(0.99));
    return numbers;
  }

  /// The recorded history (empty unless record_history). Stable once
  /// Run() returned — every client has finished.
  [[nodiscard]] const History& history() const { return history_; }

 private:
  void InjectWrite(std::size_t c, int i, Clock::time_point intended) {
    const std::string text = "c" + std::to_string(c) + "#" + std::to_string(i);
    Value value(text.begin(), text.end());
    cluster_.AsyncWrite(c, value,
                        [this, c, i, intended, value](
                            const WriteOutcome& outcome) mutable {
                          // One stamp: this op's completion AND the
                          // next op's intended start.
                          const auto now = Clock::now();
                          Record(c, /*is_write=*/true, intended, now,
                                 outcome.status, std::move(value));
                          InjectRead(c, i, now);
                        });
  }

  void InjectRead(std::size_t c, int i, Clock::time_point intended) {
    cluster_.AsyncRead(c, [this, c, i,
                           intended](const ReadOutcome& outcome) {
      const auto now = Clock::now();
      Record(c, /*is_write=*/false, intended, now, outcome.status,
             outcome.value);
      if (i + 1 < pairs_) {
        InjectWrite(c, i + 1, now);
        return;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      ++done_clients_;
      done_cv_.notify_one();
    });
  }

  void Record(std::size_t c, bool is_write, Clock::time_point intended,
              Clock::time_point now, OpStatus status, Value value) {
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(now - intended)
            .count();
    long completed = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      histogram_.Record(us > 0 ? static_cast<std::uint64_t>(us) : 0);
      completed = static_cast<long>(histogram_.count());
      if (record_history_) {
        OpRecord rec;
        rec.kind = is_write ? OpRecord::Kind::kWrite : OpRecord::Kind::kRead;
        rec.result = status == OpStatus::kOk ? OpRecord::Result::kOk
                     : status == OpStatus::kAborted
                         ? OpRecord::Result::kAborted
                         : OpRecord::Result::kFailed;
        rec.client = static_cast<std::uint32_t>(c);
        rec.invoked_at = StampUs(intended);
        rec.returned_at = StampUs(now);
        if (is_write || status == OpStatus::kOk) rec.value = std::move(value);
        history_.Add(std::move(rec));
      }
    }
    if (status != OpStatus::kOk) failed_.fetch_add(1);
    if (progress_) progress_(completed);
  }

  [[nodiscard]] std::uint64_t StampUs(Clock::time_point t) const {
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(t - t_begin_)
            .count();
    return us > 0 ? static_cast<std::uint64_t>(us) : 0;
  }

  Cluster& cluster_;
  std::size_t n_clients_;
  int pairs_;
  bool record_history_;
  std::function<void(long)> progress_;
  Clock::time_point t_begin_;
  load::LatencyHistogram histogram_;
  History history_;
  std::atomic<long> failed_{0};
  std::mutex mutex_;
  std::condition_variable done_cv_;
  std::size_t done_clients_ = 0;
};

Numbers RunArm(std::uint32_t n, std::size_t n_clients, bool use_tcp,
               int pairs_per_client, std::size_t batch_max_ops,
               bool shared_flush, std::size_t reactor_threads) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(n);
  options.use_tcp = use_tcp;
  options.reactor_threads = reactor_threads;
  options.multiplex = true;
  options.n_clients = n_clients;
  options.batch_max_ops = batch_max_ops;  // 0 = unbatched
  options.batch_max_delay_us = 200;
  options.shared_flush = shared_flush;
  RegisterCluster cluster(std::move(options));
  cluster.Start();
  ClosedLoop<RegisterCluster> loop(cluster, n_clients, pairs_per_client);
  Numbers numbers = loop.Run();
  const std::uint64_t cpu_ns = cluster.cluster().protocol_cpu_ns();
  cluster.Stop();
  if (numbers.completed > 0) {
    numbers.protocol_cpu_us_per_op =
        static_cast<double>(cpu_ns) / 1000.0 /
        static_cast<double>(numbers.completed);
  }
  return numbers;
}

/// Sharded arm: `groups` independent register groups (each its own
/// n-server quorum system with batching + shared FLUSH) behind the
/// consistent-hash router, closed loop over `n_clients` keys spread
/// across them. With `migrate`, starts at ONE group and fires
/// AddGroup from a side thread once half the op budget completed —
/// the live scale-out measurement. Always records the history and
/// runs the per-key checker.
Numbers RunShardedArm(std::uint32_t n, std::size_t groups,
                      std::size_t n_clients, bool use_tcp,
                      int pairs_per_client, std::size_t reactor_threads,
                      bool migrate) {
  ShardedCluster::Options options;
  options.group.config = ProtocolConfig::ForServers(n);
  options.group.use_tcp = use_tcp;
  options.group.reactor_threads = reactor_threads;
  options.group.multiplex = true;
  options.group.n_clients = n_clients;
  options.group.batch_max_ops = std::min<std::size_t>(n_clients, 64);
  options.group.batch_max_delay_us = 200;
  options.group.shared_flush = true;
  options.n_groups = migrate ? 1 : groups;
  ShardedCluster cluster(options);
  cluster.Start();

  // Migration trigger: AddGroup blocks on the new group's startup, so
  // it must not run on a node thread (the completion callbacks). A
  // side thread waits for the halfway mark and fires it once.
  std::mutex trigger_mutex;
  std::condition_variable trigger_cv;
  long trigger_completed = 0;
  bool trigger_stop = false;
  std::thread adder;
  std::function<void(long)> progress;
  if (migrate) {
    const long halfway =
        static_cast<long>(n_clients) * static_cast<long>(pairs_per_client);
    progress = [&](long completed) {
      std::lock_guard<std::mutex> lock(trigger_mutex);
      trigger_completed = completed;
      trigger_cv.notify_one();
    };
    adder = std::thread([&, halfway] {
      std::unique_lock<std::mutex> lock(trigger_mutex);
      trigger_cv.wait(lock, [&] {
        return trigger_stop || trigger_completed >= halfway;
      });
      if (trigger_stop) return;
      lock.unlock();
      cluster.AddGroup();
    });
  }

  ClosedLoop<ShardedCluster> loop(cluster, n_clients, pairs_per_client,
                                  /*record_history=*/true,
                                  std::move(progress));
  Numbers numbers = loop.Run();
  if (adder.joinable()) {
    {
      std::lock_guard<std::mutex> lock(trigger_mutex);
      trigger_stop = true;
      trigger_cv.notify_one();
    }
    adder.join();
  }
  const std::uint64_t cpu_ns = cluster.protocol_cpu_ns();
  cluster.Stop();
  if (numbers.completed > 0) {
    numbers.protocol_cpu_us_per_op =
        static_cast<double>(cpu_ns) / 1000.0 /
        static_cast<double>(numbers.completed);
  }
  // Scale-out must not cost regularity: each key's closed loop starts
  // with a write, so no grandfathered initial value is needed, and the
  // migration arm's reads must stay regular straight through the epoch
  // bump (the drain-and-handoff anchor rule under test).
  CheckOptions check;
  check.max_violations = 8;
  const CheckReport report = load::CheckRegularPerKey(loop.history(), check);
  numbers.regular_violations = static_cast<long>(report.violations.size());
  return numbers;
}

/// Pairs per logical client: a fixed total-op budget divided across
/// clients (clamped), so sweeps finish in bounded wall-clock while the
/// big-c points still run thousands of ops.
int PairsFor(bool use_tcp, std::size_t n_clients, bool smoke) {
  const int budget = smoke ? (use_tcp ? 64 : 96) : (use_tcp ? 1024 : 1536);
  const int cap = smoke ? 24 : (use_tcp ? 128 : 192);
  const int floor = smoke ? 2 : 8;
  return std::clamp(budget / static_cast<int>(n_clients), floor, cap);
}

struct Point {
  bool use_tcp;
  std::uint32_t n;
  std::size_t clients;
  std::size_t batch = 0;  // batch_max_ops; 0 = unbatched
  bool shared_flush = false;
  /// 0 = the --reactor-threads argument; >0 = pinned (first-class rtN
  /// arms that measure the multi-reactor path inside the default run).
  std::size_t reactor_threads = 0;
  std::size_t groups = 1;  // >1 = sharded arm
  bool migrate = false;    // g2.migrate: 1 -> 2 groups mid-run
};

/// Metric-key prefix of an arm, e.g. "sharedflush.tcp.n16.rt2.c64" or
/// "g4.tcp.n16.c256". The g<G> family prefix is what bench_compare
/// groups sharded arms by.
std::string KeyFor(const Point& point) {
  std::string key;
  if (point.migrate) {
    key += "g2.migrate.";
  } else if (point.groups > 1) {
    key += "g" + std::to_string(point.groups) + ".";
  } else if (point.shared_flush) {
    key += "sharedflush.";
  } else if (point.batch > 0) {
    key += "batched.";
  }
  key += point.use_tcp ? "tcp" : "mailbox";
  key += ".n" + std::to_string(point.n);
  if (point.reactor_threads > 0) {
    key += ".rt" + std::to_string(point.reactor_threads);
  }
  key += ".c" + std::to_string(point.clients);
  return key;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report("throughput", ParseBenchArgs(argc, argv));
  Header("E7", "threaded runtime throughput (ops = writes+reads)");
  Row("%-4s %-8s %-22s | %-12s %-10s %-10s %-7s", "n", "clients",
      "transport", "ops/s", "p50 us", "p99 us", "failed");

  std::vector<Point> points;
  std::set<std::string> seen;
  auto add = [&](const Point& point) {
    if (seen.insert(KeyFor(point)).second) points.push_back(point);
  };
  auto add_single = [&](bool use_tcp, std::uint32_t n, std::size_t clients,
                        std::size_t batch = 0, bool shared_flush = false,
                        std::size_t reactor_threads = 0) {
    add({use_tcp, n, clients, batch, shared_flush, reactor_threads});
  };
  // Legacy trajectory points: n sweep at low client counts.
  for (std::uint32_t n : {6u, 11u, 16u}) {
    add_single(false, n, 1);
    add_single(false, n, 2);
  }
  // TCP arm kept small at c=1: sockets * n^2 on one box. n=16 is the
  // worst case the trajectory tracks (256 sockets, the paper's largest
  // sweep point); its failed count guards against accept-backlog drops.
  for (std::uint32_t n : {6u, 11u, 16u}) {
    add_single(true, n, 1);
  }

  // High-concurrency sweep at n=16: pipelined logical clients over the
  // mux envelope, both transports.
  const std::vector<std::size_t> sweep =
      report.clients().empty() ? std::vector<std::size_t>{1, 8, 64, 256}
                               : report.clients();
  for (std::size_t clients : sweep) {
    add_single(false, 16, clients);
    add_single(true, 16, clients);
  }
  // Protocol-round batching arms (metric prefix "batched."): the same
  // n=16 concurrency sweep with frames of concurrent per-register
  // rounds coalesced into shared MuxBatch frames. The window matches
  // the client count up to 64 — every closed-loop generation shares
  // one round; past 64 a capped window keeps several smaller rounds
  // pipelined instead of one giant serialized round (measured faster
  // at c256). Skipped below c=8: a batch window over a lone
  // closed-loop client only adds the max_delay timer wait.
  for (std::size_t clients : sweep) {
    if (clients < 8) continue;
    add_single(false, 16, clients, std::min<std::size_t>(clients, 64));
    add_single(true, 16, clients, std::min<std::size_t>(clients, 64));
  }
  // Shared-FLUSH arms (metric prefix "sharedflush."): batching plus one
  // node-level FLUSH round per window (core/mux_flush.hpp) — the
  // per-op protocol floor drops from ~2 rounds to ~1 + 1/W.
  for (std::size_t clients : sweep) {
    if (clients < 8) continue;
    add_single(false, 16, clients, std::min<std::size_t>(clients, 64), true);
    add_single(true, 16, clients, std::min<std::size_t>(clients, 64), true);
  }
  // First-class multi-reactor arms (".rt2"): the shared-FLUSH tcp
  // sweep again with two epoll reactor threads, so the multi-reactor
  // path is measured inside the default run rather than only by a
  // separate CI leg.
  for (std::size_t clients : sweep) {
    if (clients < 8) continue;
    add_single(true, 16, clients, std::min<std::size_t>(clients, 64), true,
               /*reactor_threads=*/2);
  }
  // Sharded scale-out arms (metric prefix "g<G>."): EQUAL total
  // clients spread over G independent groups — the E15 G-scaling
  // curve against the sharedflush.tcp.n16.c256 single-group baseline.
  // On a single-core box these measure router + composition overhead
  // (every group's node threads timeshare one core); linear aggregate
  // scaling needs one core per group's worth of protocol work.
  add({true, 16, 256, 0, true, 0, /*groups=*/2});
  add({true, 16, 256, 0, true, 0, /*groups=*/4});
  add({false, 16, 256, 0, true, 0, /*groups=*/4});
  // Live growth arm ("g2.migrate."): starts at one group, adds the
  // second at half the op budget; the per-key checker must pass
  // straight through the epoch bump.
  add({true, 16, 64, 0, true, 0, /*groups=*/2, /*migrate=*/true});

  for (const Point& point : points) {
    const std::string key = KeyFor(point);
    if (!report.WantArm(key)) continue;
    const int pairs = PairsFor(point.use_tcp, point.clients, report.smoke());
    const std::size_t reactor_threads = point.reactor_threads > 0
                                            ? point.reactor_threads
                                            : report.reactor_threads();
    const Numbers numbers =
        point.groups > 1 || point.migrate
            ? RunShardedArm(point.n, point.groups, point.clients,
                            point.use_tcp, pairs, reactor_threads,
                            point.migrate)
            : RunArm(point.n, point.clients, point.use_tcp, pairs,
                     point.batch, point.shared_flush, reactor_threads);
    const std::string label =
        key.substr(0, key.rfind(".n" + std::to_string(point.n)));
    Row("%-4u %-8zu %-22s | %-12.0f %-10.0f %-10.0f %-7ld", point.n,
        point.clients,
        (label.empty() ? (point.use_tcp ? "tcp" : "mailbox") : label).c_str(),
        numbers.ops_per_sec, numbers.p50_us, numbers.p99_us, numbers.failed);
    report.Metric(key + ".ops_per_sec", numbers.ops_per_sec, "ops/s");
    report.Metric(key + ".p50_us", numbers.p50_us, "us");
    report.Metric(key + ".p99_us", numbers.p99_us, "us");
    report.Metric(key + ".failed", static_cast<double>(numbers.failed),
                  "ops");
    report.Metric(key + ".protocol_cpu_us_per_op",
                  numbers.protocol_cpu_us_per_op, "us/op");
    // Scale-invariant completeness: 1.0 means every attempted op
    // finished, so smoke and full runs compare against one baseline.
    const double frac =
        numbers.completed == 0
            ? 0.0
            : static_cast<double>(numbers.completed - numbers.failed) /
                  static_cast<double>(numbers.completed);
    report.Metric(key + ".completed_frac", frac, "frac");
    if (numbers.regular_violations >= 0) {
      report.Metric(key + ".regular_violations",
                    static_cast<double>(numbers.regular_violations),
                    "violations");
    }
    if (report.cooldown_ms() > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(report.cooldown_ms()));
    }
  }

  // Provenance: which sweep mode produced these numbers (0 = arms ran
  // back-to-back; >0 = cool-down pause between arms, comparable to
  // isolated runs). Committed baselines carry this so a reader knows
  // how each point was taken.
  report.Metric("sweep.cooldown_ms",
                static_cast<double>(report.cooldown_ms()), "ms");

  Row("%s", "\nexpected shape: latency grows roughly linearly with n "
            "(Theta(n) frames/op on one core); pipelined clients raise "
            "throughput until a core saturates, then p99 grows with c "
            "while ops/s plateaus; no failed ops at any sweep point; "
            "g<G> aggregate ops/s scales with spare cores (flat on a "
            "single-core box) with zero regular_violations.");
  return report.Flush() ? 0 : 1;
}
