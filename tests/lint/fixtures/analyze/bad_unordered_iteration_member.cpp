// Fixture: range-for over an unordered member container. Iteration
// order varies run to run (and across libstdc++ versions), so anything
// derived from it — traces, verdicts, serialized output — is
// nondeterministic. Expected: exactly one check trips —
// unordered-iteration.

#include <cstdint>
#include <unordered_map>

namespace sbft {

class Tracer {
 public:
  std::uint64_t Checksum() {
    std::uint64_t sum = 0;
    for (const auto& entry : events_) {
      sum = sum * 31 + entry.second;
    }
    return sum;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> events_;
};

}  // namespace sbft
