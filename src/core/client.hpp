// The client automaton: writer (Figure 1) and reader (Figures 2-3)
// state machines, plus the bounded-label FLUSH discipline applied to
// both operation kinds (see DESIGN.md, "Writer stale-reply
// disambiguation").
//
// One RegisterClient performs both reads and writes (MWMR, §IV-D): every
// write timestamp carries this client's id. Operations are sequential
// per client — StartRead/StartWrite require idle().
//
// Operation flow:
//   write(v):  FLUSH round (acquire op label, build safe set)
//              -> GET_TS to all, collect n-f timestamps from safe servers
//              -> ts := (next(collected), my id)
//              -> WRITE(v, ts) to all, wait n-f replies from safe with
//                 >= 2f+1 ACKs.
//   read():    FLUSH round (find_read_label, Figure 3)
//              -> READ to safe servers (late FLUSH_ACKs extend the set,
//                 Figure 3 lines 13-15)
//              -> at n-f replies: local WTsG; if some vertex has weight
//                 >= 2f+1 return it, else union WTsG with old_vals
//                 histories, else abort (Figure 2 lines 09-22)
//              -> COMPLETE_READ to safe servers.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/wtsg.hpp"
#include "labels/labeling_system.hpp"
#include "labels/read_label_pool.hpp"
#include "net/message.hpp"
#include "sim/world.hpp"

namespace sbft {

enum class OpStatus : std::uint8_t {
  kOk = 0,
  /// Read could not certify any value (Figure 2 line 18) — legal only
  /// while servers are in a transitory phase (Lemma 7).
  kAborted = 1,
  /// Write exhausted its retry budget, or the op was destroyed by a
  /// transient fault on this client.
  kFailed = 2,
};

struct ReadOutcome {
  OpStatus status = OpStatus::kFailed;
  Value value;
  Timestamp ts;
  /// True when the value came from the union graph (a write was in
  /// flight); false when the local graph sufficed.
  bool used_union_graph = false;
};

struct WriteOutcome {
  OpStatus status = OpStatus::kFailed;
  Timestamp ts;
  std::uint32_t retries = 0;
};

using ReadCallback = std::function<void(const ReadOutcome&)>;
using WriteCallback = std::function<void(const WriteOutcome&)>;

/// Seam for hoisting the FLUSH round out of the client automaton (see
/// docs/ARCHITECTURE.md, "Shared FLUSH rounds"). When installed, the
/// client asks the provider for its flush round instead of broadcasting
/// FlushMsg itself; the provider must eventually deliver per-server
/// FlushAckMsg{label, scope} acks back through DeliverFlushAck. The
/// label discipline — Figure 3 ack threshold, pending-count bound,
/// late-ack safe-set extension — stays inside the client untouched; the
/// provider only owns the transport of the probe and its echo.
class FlushProvider {
 public:
  virtual ~FlushProvider() = default;
  virtual void RequestFlush(OpLabel label, OpScope scope) = 0;
};

class RegisterClient : public Automaton {
 public:
  /// `servers` lists the node ids of the n register servers, in server-
  /// index order. `client_id` is this client's writer identity.
  RegisterClient(ProtocolConfig config, std::vector<NodeId> servers,
                 ClientId client_id);

  void OnStart(IEndpoint& endpoint) override;
  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;
  void CorruptState(Rng& rng) override;

  /// Begin a write. Precondition: idle() and the world has started this
  /// node (OnStart ran).
  void StartWrite(Value value, WriteCallback callback);
  /// Begin a read. Same preconditions.
  void StartRead(ReadCallback callback);

  [[nodiscard]] bool idle() const { return phase_ == Phase::kIdle; }
  [[nodiscard]] ClientId client_id() const { return client_id_; }

  /// Install (or clear, with nullptr) the shared-flush seam. The
  /// provider must outlive the client or be cleared first.
  void SetFlushProvider(FlushProvider* provider) {
    flush_provider_ = provider;
  }
  /// Deliver a flush ack on behalf of server node `from`, exactly as if
  /// a FlushAckMsg frame had arrived from it — the entry point a
  /// FlushProvider uses to distribute a node-level ack back to the
  /// per-register automata. Non-server node ids are ignored.
  void DeliverFlushAck(NodeId from, const FlushAckMsg& msg);

  struct Stats {
    std::uint64_t writes_ok = 0;
    std::uint64_t writes_failed = 0;
    std::uint64_t write_retries = 0;
    std::uint64_t reads_ok = 0;
    std::uint64_t reads_aborted = 0;
    std::uint64_t reads_union_graph = 0;
    std::uint64_t stale_replies_ignored = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kWriteFlush,
    kGetTs,
    kWrite,
    kReadFlush,
    kRead,
  };

  [[nodiscard]] bool IsWritePhase() const {
    return phase_ == Phase::kWriteFlush || phase_ == Phase::kGetTs ||
           phase_ == Phase::kWrite;
  }
  [[nodiscard]] std::optional<std::size_t> ServerIndex(NodeId node) const;
  ReadLabelPool& PoolFor(OpScope scope) {
    return scope == OpScope::kRead ? read_pool_ : write_pool_;
  }
  /// Wire op labels are (epoch << 8) | pool_index when epoch extension
  /// is on (config_.epoch_extended_op_labels); the pool tracks pending
  /// state by index. Bounded: epochs wrap at 24 bits.
  [[nodiscard]] ReadLabel PoolIndexOf(OpLabel label) const {
    return label & 0xFF;
  }
  [[nodiscard]] OpLabel MakeOpLabel(OpScope scope, ReadLabel index);

  void BeginFlush(OpScope scope);
  void OnFlushAck(std::size_t server, const FlushAckMsg& msg);
  /// Figure 3 line 06: leave the flush phase only when >= n-f servers
  /// acknowledged AND at most f servers may still hold stale traffic
  /// for the chosen label (the pending column). Re-evaluated whenever
  /// either condition may have improved.
  void MaybeAdvanceAfterFlush();
  void AdvanceAfterFlush();
  void OnTsReply(std::size_t server, const TsReplyMsg& msg);
  void OnWriteReply(std::size_t server, const WriteReplyMsg& msg);
  void OnReply(std::size_t server, const LazyReplyMsg& msg);
  void DecideRead();
  void FinishRead(const ReadOutcome& outcome);
  void FinishWrite(OpStatus status);
  void RetryWrite();

  static constexpr std::uint32_t kNoServer =
      std::numeric_limits<std::uint32_t>::max();

  ProtocolConfig config_;
  LabelingSystem labels_;
  std::vector<NodeId> servers_;
  /// NodeId -> server index (kNoServer when the id is not a server).
  std::vector<std::uint32_t> server_index_;
  ClientId client_id_;
  IEndpoint* endpoint_ = nullptr;
  FlushProvider* flush_provider_ = nullptr;

  ReadLabelPool read_pool_;
  ReadLabelPool write_pool_;
  std::uint32_t read_epoch_ = 0;   // bounded: wraps at 2^24
  std::uint32_t write_epoch_ = 0;
  Timestamp last_write_ts_;

  // Current operation. Per-server quorum state is index-dense (vectors
  // sized n with presence bits), replacing the std::map/std::set
  // bookkeeping: iteration stays in ascending server order — the order
  // the ordered containers produced — so decisions are bit-identical,
  // but the hot path stops allocating tree nodes. Value slots keep
  // their Bytes capacity across operations.
  Phase phase_ = Phase::kIdle;
  OpLabel op_label_ = 0;
  std::vector<std::uint8_t> safe_;
  std::uint32_t safe_count_ = 0;
  // write
  Value write_value_;
  WriteCallback write_callback_;
  std::vector<Timestamp> collected_ts_;
  std::vector<std::uint8_t> collected_bits_;
  std::uint32_t collected_count_ = 0;
  std::vector<std::uint8_t> write_replied_;
  std::uint32_t write_replied_count_ = 0;
  std::uint32_t ack_count_ = 0;
  std::uint32_t retries_ = 0;
  // read
  ReadCallback read_callback_;
  std::vector<VersionedValue> replies_;
  std::vector<std::uint8_t> reply_bits_;
  std::uint32_t reply_count_ = 0;
  /// Per server: the reply's encoded old_vals run (count-prefixed),
  /// copied verbatim out of the frame. Materialized — decoded,
  /// sanitized, folded into the union WTsG — only when the local graph
  /// fails to certify; see DecideRead. The Bytes keep their capacity
  /// across operations, so a steady read load stops allocating.
  std::vector<Bytes> recent_raw_;
  std::vector<std::uint32_t> recent_len_;  // entry count per server

  Stats stats_;
};

}  // namespace sbft
