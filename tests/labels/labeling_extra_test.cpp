// Additional labeling-system properties: rotation behaviour, the
// distrusted-inputs knob, and adversarial-input robustness — the
// machinery behind DESIGN.md gap #3.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "labels/labeling_system.hpp"

namespace sbft {
namespace {

TEST(LabelingExtra, SoloWriterRotationPeriodIsLong) {
  // The sting must cycle with period close to the domain size, so that
  // labels of writes still in any history window never re-alias.
  LabelingSystem system(6);
  Label current = system.Initial();
  std::vector<Label> seen{current};
  const std::uint32_t horizon = system.params().Domain() / 2;
  for (std::uint32_t i = 0; i < horizon; ++i) {
    current = system.Next(std::vector<Label>{current});
    for (const Label& old : seen) {
      ASSERT_NE(current, old) << "label reused after only " << i
                              << " writes (domain "
                              << system.params().Domain() << ")";
    }
    seen.push_back(current);
  }
}

TEST(LabelingExtra, DistrustedIgnoresByzantineStingInflation) {
  // A lying input reporting a near-maximal sting must not fast-forward
  // the rotation when distrusted=1; without the knob it does.
  LabelingSystem system(6);
  const std::uint32_t m = system.params().Domain();
  Label honest = system.Initial();
  Label liar;
  liar.sting = m - 1;
  liar.antistings = honest.antistings;  // structurally valid
  ASSERT_TRUE(system.IsValid(liar));

  Label trusting = system.Next(std::vector<Label>{honest, liar});
  Label distrusting =
      system.Next(std::vector<Label>{honest, liar}, /*distrusted=*/1);

  // Both must dominate both inputs (correctness is unconditional)...
  for (const Label* input : {&honest, &liar}) {
    EXPECT_TRUE(system.Precedes(*input, trusting));
    EXPECT_TRUE(system.Precedes(*input, distrusting));
  }
  // ...but only the trusting one jumped near the wrap point.
  EXPECT_LT(distrusting.sting, m / 2);
  EXPECT_TRUE(trusting.sting >= m - 1 || trusting.sting < honest.sting + 2)
      << trusting.ToString();
}

TEST(LabelingExtra, RepeatedByzantinePressureDoesNotShortenCycle) {
  // With distrusted = f, a persistent liar cannot force label reuse
  // within a history-window-sized horizon.
  LabelingSystem system(11);
  Rng rng(7);
  Label liar{.sting = system.params().Domain() - 1, .antistings = {}};
  liar = system.Sanitize(liar);
  Label current = system.Initial();
  std::vector<Label> window;
  for (int i = 0; i < 200; ++i) {
    Label next =
        system.Next(std::vector<Label>{current, liar}, /*distrusted=*/1);
    for (const Label& recent : window) {
      ASSERT_NE(next, recent) << "reuse at step " << i;
    }
    window.push_back(next);
    if (window.size() > 22) window.erase(window.begin());  // 2n window
    current = next;
  }
}

TEST(LabelingExtra, AntistingPaddingCoversRecentStings) {
  // The padding scans downward from the fresh sting, so consecutive
  // labels' stings land in their successors' antisting sets — which is
  // what makes recent chains totally ordered in practice.
  LabelingSystem system(6);
  Label a = system.Initial();
  Label b = system.Next(std::vector<Label>{a});
  Label c = system.Next(std::vector<Label>{b});
  // c's antistings contain b's sting (required) AND usually a's (from
  // padding the recent region):
  EXPECT_TRUE(std::binary_search(c.antistings.begin(), c.antistings.end(),
                                 b.sting));
  EXPECT_TRUE(system.Precedes(a, c) || !system.Precedes(c, a))
      << "old label must never dominate a fresh one in a short chain";
}

TEST(LabelingExtra, NextToleratesFullKInputLoad) {
  LabelingSystem system(31);
  Rng rng(9);
  std::vector<Label> inputs;
  for (int i = 0; i < 31; ++i) {
    inputs.push_back(RandomValidLabel(rng, system.params()));
  }
  Label next = system.Next(inputs, /*distrusted=*/6);
  EXPECT_TRUE(system.IsValid(next));
  for (const Label& input : inputs) {
    EXPECT_TRUE(system.Precedes(input, next));
  }
}

TEST(LabelingExtra, DistrustLargerThanInputsIsSafe) {
  LabelingSystem system(4);
  Label l = system.Initial();
  Label next = system.Next(std::vector<Label>{l}, /*distrusted=*/10);
  EXPECT_TRUE(system.IsValid(next));
  EXPECT_TRUE(system.Precedes(l, next));
}

}  // namespace
}  // namespace sbft
