// Multi-register storage service: many independent registers multiplexed
// over one server/client population.
//
// The paper emulates a single register; a cloud storage service needs a
// namespace of them. Composition is by envelope: every inner protocol
// frame travels inside MuxMsg{register_id, inner}, and each side hosts a
// table of per-register automata behind an endpoint adaptor that
// re-wraps outgoing frames with the same register id. The inner automata
// are the UNCHANGED RegisterServer / RegisterClient — all correctness
// and stabilization arguments apply per register verbatim, because the
// registers share nothing but the transport.
//
// Bounded state: the server-side table is capped (LRU-evicting an idle
// register re-admits it later in its initial state — equivalent to a
// transient fault on that register, which the protocol tolerates by
// design).
#pragma once

#include <functional>
#include <list>
#include <map>
#include <memory>

#include "core/byzantine.hpp"
#include "core/client.hpp"
#include "core/server.hpp"

namespace sbft {

using RegisterId = std::uint64_t;

/// Derive a register id from a string key (FNV-1a). Collisions alias
/// keys onto the same register — acceptable for a 64-bit space.
RegisterId RegisterIdOf(std::string_view key);

class MuxServer : public Automaton {
 public:
  /// `factory` builds the per-register server (honest by default;
  /// Byzantine factories let tests attack individual registers).
  using ServerFactory =
      std::function<std::unique_ptr<RegisterServer>(RegisterId)>;

  MuxServer(ProtocolConfig config, std::size_t server_index,
            std::size_t max_registers = 1024, ServerFactory factory = {});

  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;
  void CorruptState(Rng& rng) override;

  [[nodiscard]] std::size_t register_count() const { return registers_.size(); }
  /// nullptr if the register was never touched (or was evicted).
  [[nodiscard]] RegisterServer* Find(RegisterId id);

 private:
  RegisterServer& GetOrCreate(RegisterId id);

  ProtocolConfig config_;
  std::size_t index_;
  std::size_t max_registers_;
  ServerFactory factory_;
  std::map<RegisterId, std::unique_ptr<RegisterServer>> registers_;
  std::list<RegisterId> lru_;  // front = most recent
  /// Position of each id inside lru_, so a touch is an O(1) splice
  /// instead of an O(n) list walk (hot with hundreds of live registers).
  std::map<RegisterId, std::list<RegisterId>::iterator> lru_pos_;
};

class MuxClient : public Automaton {
 public:
  MuxClient(ProtocolConfig config, std::vector<NodeId> servers,
            ClientId client_id, std::size_t max_registers = 1024);

  void OnStart(IEndpoint& endpoint) override;
  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override;
  void CorruptState(Rng& rng) override;

  /// Operations on independent registers may run concurrently; two
  /// operations on the SAME register must be sequential (as for a
  /// plain RegisterClient).
  void StartWrite(RegisterId id, Value value, WriteCallback callback);
  void StartRead(RegisterId id, ReadCallback callback);
  [[nodiscard]] bool idle(RegisterId id);

  // String-key convenience (KV store facade).
  void Put(std::string_view key, Value value, WriteCallback callback) {
    StartWrite(RegisterIdOf(key), std::move(value), std::move(callback));
  }
  void Get(std::string_view key, ReadCallback callback) {
    StartRead(RegisterIdOf(key), std::move(callback));
  }

 private:
  /// An inner client plus the wrapped endpoint it cached at OnStart
  /// (the wrapper must live exactly as long as the client).
  struct Entry {
    std::unique_ptr<IEndpoint> endpoint;
    std::unique_ptr<RegisterClient> client;
  };

  RegisterClient& GetOrCreate(RegisterId id);

  ProtocolConfig config_;
  std::vector<NodeId> servers_;
  ClientId client_id_;
  std::size_t max_registers_;
  IEndpoint* endpoint_ = nullptr;
  std::map<RegisterId, Entry> clients_;
  std::list<RegisterId> lru_;
  std::map<RegisterId, std::list<RegisterId>::iterator> lru_pos_;
};

}  // namespace sbft
