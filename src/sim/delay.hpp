// Delay policies: the adversary's lever over asynchrony.
//
// The system model is fully asynchronous, so a correct protocol must work
// for *every* delay assignment. Tests and benches exercise uniform
// random delays, fixed delays, and scripted per-channel delays (the
// Theorem 1 replay slows specific servers at specific operations).
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "common/rng.hpp"
#include "sim/types.hpp"

namespace sbft {

class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;
  /// Latency (in ticks, >= 1) for a frame entering channel src->dst now.
  virtual VirtualTime Sample(NodeId src, NodeId dst, VirtualTime now,
                             Rng& rng) = 0;
};

/// Every frame takes exactly `delay` ticks.
class FixedDelay final : public DelayPolicy {
 public:
  explicit FixedDelay(VirtualTime delay) : delay_(delay < 1 ? 1 : delay) {}
  VirtualTime Sample(NodeId, NodeId, VirtualTime, Rng&) override {
    return delay_;
  }

 private:
  VirtualTime delay_;
};

/// Uniform in [lo, hi]; the workhorse for randomized testing.
class UniformDelay final : public DelayPolicy {
 public:
  UniformDelay(VirtualTime lo, VirtualTime hi)
      : lo_(lo < 1 ? 1 : lo), hi_(hi < lo_ ? lo_ : hi) {}
  VirtualTime Sample(NodeId, NodeId, VirtualTime, Rng& rng) override {
    return static_cast<VirtualTime>(
        rng.NextInRange(static_cast<std::int64_t>(lo_),
                        static_cast<std::int64_t>(hi_)));
  }

 private:
  VirtualTime lo_;
  VirtualTime hi_;
};

/// Per-channel overrides on top of a base policy; used by scripted
/// adversaries ("server s4 is slow in responding").
class ChannelOverrideDelay final : public DelayPolicy {
 public:
  explicit ChannelOverrideDelay(std::unique_ptr<DelayPolicy> base)
      : base_(std::move(base)) {}

  void SetOverride(NodeId src, NodeId dst, VirtualTime delay) {
    overrides_[{src, dst}] = delay < 1 ? 1 : delay;
  }
  void ClearOverride(NodeId src, NodeId dst) {
    overrides_.erase({src, dst});
  }

  VirtualTime Sample(NodeId src, NodeId dst, VirtualTime now,
                     Rng& rng) override {
    if (auto it = overrides_.find({src, dst}); it != overrides_.end()) {
      return it->second;
    }
    return base_->Sample(src, dst, now, rng);
  }

 private:
  std::unique_ptr<DelayPolicy> base_;
  std::map<std::pair<NodeId, NodeId>, VirtualTime> overrides_;
};

}  // namespace sbft
