// Open-loop workload driver for the threaded register cluster.
//
// Closed-loop drivers (bench_throughput) only ever ask the system for
// as much as it just delivered — a saturated cluster quietly measures
// itself at its own pace. The open-loop driver instead fixes the
// OFFERED load: operations start at pre-computed Poisson arrival times
// whether or not earlier ones finished, the way independent clients
// behave. Each logical key admits one in-flight operation (the mux
// client's per-register contract), so an overloaded key builds a
// queue; the latency of a queued operation is charged from its
// INTENDED arrival time, not from when it finally launched — the
// coordinated-omission-free measurement (docs/LOAD_TESTING.md).
//
// The driver also injects the scenario's transient corruptions
// mid-run (RegisterCluster::CorruptServer) and hands back a History
// whose timestamps feed CheckRegular / MeasureStabilization, making
// "time to stabilize under traffic" a measurable quantity.
#pragma once

#include <cstdint>

#include "load/histogram.hpp"
#include "load/scenario.hpp"
#include "spec/history.hpp"

namespace sbft::load {

/// Everything one open-loop run produced. Counters partition
/// `scheduled`: ok + aborted + failed returned; pending launched but
/// never returned within the drain window; unlaunched still queued
/// behind a slow key when the drain window closed.
struct LoadResult {
  std::size_t scheduled = 0;
  std::size_t launched = 0;
  std::size_t ok = 0;
  std::size_t aborted = 0;
  std::size_t failed = 0;
  std::size_t pending = 0;
  std::size_t unlaunched = 0;

  /// Fraction of scheduled operations that RETURNED (any verdict) —
  /// the load-shedding signal: < 1 means the cluster could not keep up
  /// with the offered rate inside the drain window.
  double completed_frac = 0.0;
  /// Ok operations per wall-clock second over the measured window.
  double achieved_ops_per_sec = 0.0;
  /// Run start to last return (or drain deadline), microseconds.
  std::uint64_t run_duration_us = 0;
  /// Return time of the earliest successful write (stabilization point
  /// of Theorem 2 for corruption-free runs); ~0 if no write succeeded.
  std::uint64_t first_write_done_us = ~0ull;
  /// Actual injection stamps of the scenario's corruptions, run-
  /// relative microseconds (same clock as the History).
  std::vector<std::uint64_t> corruption_times_us;
  /// When the scenario grew the deployment (group_add_at_us): the stamp
  /// at which the new shard-map epoch was installed (~0 if never), the
  /// deployment's final group count / epoch, and how many migrated keys
  /// were still read-anchored to their old group at run end.
  std::uint64_t group_add_time_us = ~0ull;
  std::size_t final_groups = 0;
  std::uint64_t final_epoch = 0;
  std::size_t keys_awaiting_handoff = 0;

  /// Intended-start latencies (schedule time -> completion) of ok ops.
  LatencyHistogram write_latency;
  LatencyHistogram read_latency;

  /// Launched operations only, timestamps in run-relative microseconds
  /// (invoked_at = actual launch, for oracle soundness).
  History history;
};

/// Run `scenario` against a freshly built ShardedCluster (n_groups
/// register groups behind the consistent-hash router; one group is the
/// classic deployment) and return the measurement. The schedule is deterministic per scenario seed;
/// the measured side (latencies, verdicts) is whatever the machine
/// does with it.
[[nodiscard]] LoadResult RunOpenLoop(const Scenario& scenario);

}  // namespace sbft::load
