// Calendar (bucket) priority queue for discrete-event simulation.
//
// The sim's event population is dominated by near-future deliveries
// (UniformDelay keeps most gaps within a few ticks), so a modular ring
// of per-tick buckets gives O(1) amortized push/pop; a sorted overflow
// lane holds the rare far-future stragglers (long timers, think-time
// calls) until the window slides over them. Bucket vectors retain their
// capacity when emptied, so the steady state allocates no event storage
// at all — the ring doubles as the event free-list.
//
// Ordering contract (identical to the std::priority_queue it replaced):
// pop() returns events in strictly increasing (time, seq). Determinism
// depends on it — trace hashes are pinned by the SBFZ1 corpus.
//
// Invariants:
//   * every bucketed event's time lies in [cursor_, cursor_ + kBuckets),
//     so each non-empty bucket holds exactly one time value;
//   * within a bucket, events are sorted by seq (pushes normally arrive
//     in seq order; the rare out-of-order re-push inserts);
//   * every overflow event's time is > cursor_ (pop migrates due
//     overflow events into the ring before advancing past them);
//   * cursor_ never moves backward except through Rebuild(), the safety
//     net for drain-and-refill callers that re-push below the cursor.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sim/types.hpp"

namespace sbft {

/// E must expose `VirtualTime time` and `std::uint64_t seq` members and
/// be movable. Seqs must be unique across live events.
template <typename E>
class CalendarQueue {
 public:
  /// Ring width in ticks. Delays beyond this fall to the overflow lane;
  /// 512 comfortably covers the base delays, directed slowdowns and
  /// think times the generators produce.
  static constexpr std::size_t kBuckets = 512;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void push(E event) {
    if (event.time < cursor_) {
      if (size_ == 0) {
        cursor_ = event.time;  // empty queue: just rebase the window
      } else {
        Rebuild(std::move(event));
        return;
      }
    }
    ++size_;
    if (event.time - cursor_ < kBuckets) {
      InsertBucket(std::move(event));
    } else {
      InsertOverflow(std::move(event));
    }
  }

  /// Remove and return the minimum (time, seq) event. Precondition:
  /// !empty().
  E pop() {
    SBFT_ASSERT(size_ > 0);
    if (size_ == overflow_.size()) {
      // Ring empty: jump the window straight to the earliest straggler.
      cursor_ = overflow_.back().time;
    }
    for (VirtualTime t = cursor_;; ++t) {
      // Migrate overflow events the window has reached. Previous pops
      // migrated everything before t, so due events are exactly at t.
      while (!overflow_.empty() && overflow_.back().time <= t) {
        E event = std::move(overflow_.back());
        overflow_.pop_back();
        InsertBucket(std::move(event));
      }
      Bucket& bucket = buckets_[t & kMask];
      if (bucket.head < bucket.events.size()) {
        SBFT_ASSERT(bucket.events[bucket.head].time == t);
        E event = std::move(bucket.events[bucket.head]);
        if (++bucket.head == bucket.events.size()) {
          bucket.events.clear();  // keeps capacity: the free-list
          bucket.head = 0;
        }
        --size_;
        cursor_ = t;
        return event;
      }
      SBFT_ASSERT(t - cursor_ <= kBuckets);  // some bucket must be live
    }
  }

  /// Drain every event, sorted by (time, seq) — the order a pop loop
  /// would produce. Used by drain-and-refill surgery (scramble, hold
  /// with in-flight capture); the cursor stays put, so re-pushing any
  /// subset is valid.
  std::vector<E> TakeAll() {
    std::vector<E> raw;
    raw.reserve(size_);
    for (Bucket& bucket : buckets_) {
      for (std::size_t i = bucket.head; i < bucket.events.size(); ++i) {
        raw.push_back(std::move(bucket.events[i]));
      }
      bucket.events.clear();
      bucket.head = 0;
    }
    for (auto it = overflow_.rbegin(); it != overflow_.rend(); ++it) {
      raw.push_back(std::move(*it));
    }
    overflow_.clear();
    size_ = 0;
    // Sort a permutation rather than the events themselves (events can
    // be heavy; this path is cold surgery, not the hot loop).
    std::vector<std::size_t> order(raw.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&raw](std::size_t a, std::size_t b) {
                return raw[a].time != raw[b].time
                           ? raw[a].time < raw[b].time
                           : raw[a].seq < raw[b].seq;
              });
    std::vector<E> all;
    all.reserve(raw.size());
    for (const std::size_t i : order) all.push_back(std::move(raw[i]));
    return all;
  }

 private:
  static constexpr std::size_t kMask = kBuckets - 1;
  static_assert((kBuckets & kMask) == 0, "ring size must be a power of two");

  struct Bucket {
    std::vector<E> events;  // sorted by seq; single time value
    std::size_t head = 0;   // pop cursor into `events`
  };

  void InsertBucket(E event) {
    Bucket& bucket = buckets_[event.time & kMask];
    auto& events = bucket.events;
    if (events.empty() || events.back().seq < event.seq) {
      events.push_back(std::move(event));  // the common, in-order path
      return;
    }
    // Out-of-order seq (overflow migration or re-push): keep the bucket
    // seq-sorted. Migrated events always predate live bucket entries,
    // so the insert position can never fall before `head`.
    auto pos = std::upper_bound(
        events.begin() + static_cast<std::ptrdiff_t>(bucket.head),
        events.end(), event.seq,
        [](std::uint64_t seq, const E& e) { return seq < e.seq; });
    events.insert(pos, std::move(event));
  }

  /// Overflow lane: kept sorted descending by (time, seq) so the
  /// minimum sits at the back. Far-future events are rare enough that
  /// the O(n) insert is cheaper than heap churn on the hot type.
  void InsertOverflow(E event) {
    auto pos = std::upper_bound(
        overflow_.begin(), overflow_.end(), event,
        [](const E& a, const E& b) {
          return a.time != b.time ? a.time > b.time : a.seq > b.seq;
        });
    overflow_.insert(pos, std::move(event));
  }

  /// Safety net: a push below the cursor (possible only through external
  /// drain-and-refill misuse) rebases the window at the new minimum and
  /// refills. O(n log n), never hit on the sim hot path.
  void Rebuild(E event) {
    std::vector<E> all = TakeAll();
    cursor_ = event.time;  // < previous cursor <= every drained time
    push(std::move(event));
    for (E& e : all) push(std::move(e));
  }

  std::vector<Bucket> buckets_{kBuckets};
  std::vector<E> overflow_;  // sorted descending; minimum at back()
  VirtualTime cursor_ = 0;   // window start; last popped time
  std::size_t size_ = 0;
};

}  // namespace sbft
